// Uniprocessor vs SMP: the paper's headline claim, measured.
//
// The same vi attack that almost never works on one CPU becomes certain
// on two: on a uniprocessor the attacker only runs when the victim is
// suspended inside its window (Equation 1's first term), while on an SMP
// the attacker spins on its own CPU and merely has to be faster than the
// window (formula (1)).
//
// Run: go run ./examples/uniprocessor_vs_smp
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"tocttou/internal/attack"
	"tocttou/internal/core"
	"tocttou/internal/machine"
	"tocttou/internal/model"
	"tocttou/internal/report"
	"tocttou/internal/victim"
)

func main() {
	const rounds = 200
	tbl := &report.Table{
		Title:   fmt.Sprintf("vi attack success rate (%d rounds per cell)", rounds),
		Headers: []string{"file size", "uniprocessor", "SMP 2-way", "Eq.1 UP prediction"},
	}

	up := machine.Uniprocessor()
	for _, kb := range []int64{100, 400, 1000} {
		upRes := run(up, kb, rounds)
		smpRes := run(machine.SMP2(), kb, rounds)
		pred := model.UniprocessorSuspension(
			viWindow(up, kb<<10),
			up.Quantum,
			model.StallProbability(kb<<10, up.Latency.WriteStallProbPerKB),
		)
		tbl.AddRow(
			fmt.Sprintf("%d KB", kb),
			fmt.Sprintf("%.1f%%", upRes.Rate()*100),
			fmt.Sprintf("%.1f%%", smpRes.Rate()*100),
			fmt.Sprintf("%.1f%%", pred*100),
		)
	}
	if err := tbl.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nPaper Fig. 6 vs §5: low single digits to ~18% on one CPU; 100% on two.")
}

func run(m machine.Profile, kb int64, rounds int) core.CampaignResult {
	res, err := core.RunCampaign(core.Scenario{
		Machine: m, Victim: victim.NewVi(), Attacker: attack.NewV1(),
		UseSyscall: "chown", FileSize: kb << 10, Seed: 40 + kb,
	}, rounds)
	if err != nil {
		log.Fatal(err)
	}
	return res
}

// viWindow estimates vi's vulnerability window analytically from the
// calibrated victim parameters.
func viWindow(m machine.Profile, size int64) time.Duration {
	v := victim.NewVi()
	chunks := (size + v.ChunkSize - 1) / v.ChunkSize
	perChunk := m.ScaleCompute(v.PerChunkCompute) + m.Latency.WriteBase +
		time.Duration(float64(m.Latency.WritePerKB)*float64(v.ChunkSize)/1024)
	return m.ScaleCompute(v.PostOpenCompute+v.PreChownCompute) + time.Duration(chunks)*perChunk
}
