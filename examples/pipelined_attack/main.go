// Pipelining the attack across CPUs (paper §7).
//
// unlink spends most of its time physically truncating the file, but the
// name is free as soon as the dentry is detached. A second attacker
// thread on another core can therefore plant the symlink while the first
// is still truncating. This example measures the redirection-complete
// time for the sequential and pipelined attackers across file sizes.
//
// Run: go run ./examples/pipelined_attack
package main

import (
	"fmt"
	"log"
	"os"

	"tocttou/internal/attack"
	"tocttou/internal/core"
	"tocttou/internal/machine"
	"tocttou/internal/prog"
	"tocttou/internal/report"
	"tocttou/internal/sim"
	"tocttou/internal/trace"
	"tocttou/internal/victim"
)

func main() {
	bc := &report.BarChart{
		Title: "time from detection to completed name redirection (multi-core)",
		Unit:  "µs",
	}
	tbl := &report.Table{Headers: []string{"file size", "sequential done", "pipelined done", "speedup"}}

	for _, kb := range []int64{20, 100, 500} {
		seqDone, seqSpans := measure(kb, attack.NewV2())
		parDone, parSpans := measure(kb, attack.NewPipelined())
		tbl.AddRow(
			fmt.Sprintf("%d KB", kb),
			fmt.Sprintf("%.1f µs", seqDone),
			fmt.Sprintf("%.1f µs", parDone),
			fmt.Sprintf("%.1fx", seqDone/parDone),
		)
		bc.Bars = append(bc.Bars,
			report.Bar{Label: fmt.Sprintf("%dKB sequential", kb), Segments: seqSpans},
			report.Bar{Label: fmt.Sprintf("%dKB pipelined", kb), Segments: parSpans},
		)
	}
	if err := bc.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	if err := tbl.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nPaper Fig. 11: the parallel symlink finishes well before unlink's truncation.")
}

func measure(kb int64, att prog.Program) (float64, []report.Segment) {
	sc := core.Scenario{
		Machine: machine.MultiCore(), Victim: victim.NewGedit(), Attacker: att,
		UseSyscall: "chmod", FileSize: kb << 10, Seed: 70 + kb, Trace: true,
	}
	target := core.DefaultPaths().Target
	for i := 0; i < 512; i++ {
		r, err := core.RunRound(sc)
		if err != nil {
			log.Fatal(err)
		}
		lg := trace.New(r.Events)
		if !r.LD.Detected {
			sc.Seed += 9973
			continue
		}
		statEnter := r.LD.StatEnter
		statExit, _ := lg.FirstSyscallExit(r.AttackerPID, "stat", target, statEnter)
		ulEnter, ulExit, ok := lg.SyscallSpan(r.AttackerPID, "unlink", target, statEnter)
		if !ok {
			sc.Seed += 9973
			continue
		}
		slEnter, slExit, ok := okSymlink(lg, r.AttackerPID, target, statEnter)
		if !ok {
			sc.Seed += 9973
			continue
		}
		rel := func(t sim.Time) float64 { return t.Sub(statEnter).Seconds() * 1e6 }
		segs := []report.Segment{
			{Name: "stat", Start: 0, End: rel(statExit)},
			{Name: "unlink", Start: rel(ulEnter), End: rel(ulExit)},
			{Name: "symlink", Start: rel(slEnter), End: rel(slExit)},
		}
		return rel(slExit), segs
	}
	log.Fatalf("no usable round for %dKB", kb)
	return 0, nil
}

func okSymlink(lg *trace.Log, pid int32, path string, from sim.Time) (sim.Time, sim.Time, bool) {
	var enter sim.Time
	var have bool
	for _, e := range lg.Events {
		if e.T < from || e.PID != pid || e.Label != "symlink" || e.Path != path {
			continue
		}
		if e.Kind == sim.EvSyscallEnter {
			enter, have = e.T, true
		}
		if e.Kind == sim.EvSyscallExit && have && e.Arg == 0 {
			return enter, e.T, true
		}
	}
	return 0, 0, false
}
