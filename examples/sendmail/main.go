// The paper's opening example, end to end: a sendmail-style delivery
// agent checks that the mailbox is not a symlink and then appends the
// message — and the mailbox owner flip-flops the name between a real
// file and a symlink to /etc/passwd, hoping a flip lands in the gap.
//
// The attacker cannot observe the victim's check, so this attack is
// blind — which makes the machine comparison the purest demonstration of
// the paper's thesis: on one CPU the flip can essentially never land
// inside the running victim's gap; with a second CPU it can.
//
// Run: go run ./examples/sendmail
package main

import (
	"fmt"
	"log"
	"os"

	"tocttou/internal/attack"
	"tocttou/internal/core"
	"tocttou/internal/fs"
	"tocttou/internal/machine"
	"tocttou/internal/report"
	"tocttou/internal/victim"
)

func main() {
	const rounds = 300
	tbl := &report.Table{
		Title: fmt.Sprintf("mailbox flip-flop attack, %d delivery attempts per machine", rounds),
		Headers: []string{
			"machine", "/etc/passwd captured", "caught by symlink check", "delivered safely",
		},
	}
	for _, m := range []machine.Profile{machine.Uniprocessor(), machine.SMP2(), machine.MultiCore()} {
		sc := core.Scenario{
			Machine:  m,
			Victim:   victim.NewMailer(),
			Attacker: attack.NewFlipFlop(),
			FileSize: 4 << 10,
			Seed:     91,
			SuccessCheck: func(f *fs.FS, p core.Paths, _ int) bool {
				info, err := f.LookupInfo(p.Passwd)
				return err == nil && info.Size > p.PasswdSize
			},
		}
		captured, refused := 0, 0
		for i := 0; i < rounds; i++ {
			sc.Seed += 7919
			r, err := core.RunRound(sc)
			if err != nil {
				log.Fatal(err)
			}
			switch {
			case r.Success:
				captured++
			case r.VictimErr == victim.ErrDeliveryRefused:
				refused++
			}
		}
		safe := rounds - captured - refused
		tbl.AddRow(m.Name,
			fmt.Sprintf("%d (%.1f%%)", captured, float64(captured)/rounds*100),
			fmt.Sprintf("%d (%.1f%%)", refused, float64(refused)/rounds*100),
			fmt.Sprintf("%d (%.1f%%)", safe, float64(safe)/rounds*100),
		)
	}
	if err := tbl.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nEvery capture is a forged /etc/passwd entry appended as root (paper §1).")
}
