// Quickstart: run one TOCTTOU race and inspect its outcome.
//
// This example reproduces a single vi attack round on the paper's 2-way
// SMP — the scenario where the paper finds 100% attack success — and
// prints the outcome, the vulnerability window, and the L/D quantities of
// the probabilistic model.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"tocttou/internal/attack"
	"tocttou/internal/core"
	"tocttou/internal/machine"
	"tocttou/internal/model"
	"tocttou/internal/victim"
)

func main() {
	sc := core.Scenario{
		Machine:    machine.SMP2(), // 2 × Xeon 1.7 GHz (paper §5)
		Victim:     victim.NewVi(), // vi 6.1's <open, chown> save path
		Attacker:   attack.NewV1(), // the naive stat-loop attacker (Fig. 2)
		UseSyscall: "chown",        // the call that closes vi's window
		FileSize:   100 << 10,      // a 100 KB document
		Seed:       2026,           // rounds are fully deterministic per seed
		Trace:      true,           // collect events for L/D analysis
	}

	round, err := core.RunRound(sc)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("one vi save, one attacker, two CPUs:")
	fmt.Printf("  attack succeeded:      %v\n", round.Success)
	fmt.Printf("  vulnerability window:  %.1f µs (open .. chown)\n", float64(round.Window)/1e3)
	fmt.Printf("  attacker detected at:  %v\n", round.LD.StatEnter)
	fmt.Printf("  L (laxity)          =  %.1f µs\n", round.LD.Lmicros())
	fmt.Printf("  D (detection loop)  =  %.1f µs\n", round.LD.Dmicros())
	fmt.Printf("  formula (1) L/D     =  %.0f%% predicted success\n",
		model.LDRate(round.LD.Lmicros(), round.LD.Dmicros())*100)

	// Now the statistics: a short campaign over fresh seeds.
	campaign, err := core.RunCampaign(sc, 100)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n100-round campaign: %s\n", campaign.Proportion())
	fmt.Printf("L = %.1f ± %.1f µs, D = %.1f ± %.1f µs\n",
		campaign.L.Mean(), campaign.L.Stdev(), campaign.D.Mean(), campaign.D.Stdev())
	fmt.Println("\nPaper §5: \"the success rate of 100% for all file sizes\" on the SMP.")
}
