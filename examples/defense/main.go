// Defending the race: EDGI-style invariant guarding (extension).
//
// The paper's §8 surveys defenses and points to EDGI (Pu & Wei, ISSSE'06)
// as a complete one. This example installs the simplified EDGI guard from
// internal/defense into the simulated kernel and shows the multiprocessor
// attacks the paper makes near-certain being denied — plus what Monitor
// mode observes without enforcement.
//
// Run: go run ./examples/defense
package main

import (
	"fmt"
	"log"
	"os"

	"tocttou/internal/attack"
	"tocttou/internal/core"
	"tocttou/internal/defense"
	"tocttou/internal/fs"
	"tocttou/internal/machine"
	"tocttou/internal/prog"
	"tocttou/internal/report"
	"tocttou/internal/victim"
)

func main() {
	const rounds = 200
	tbl := &report.Table{
		Title:   fmt.Sprintf("attack success with and without the EDGI guard (%d rounds)", rounds),
		Headers: []string{"scenario", "no defense", "EDGI enforce", "attacks denied"},
	}

	cases := []struct {
		name string
		sc   core.Scenario
	}{
		{"vi 100KB on SMP", core.Scenario{
			Machine: machine.SMP2(), Victim: victim.NewVi(), Attacker: attack.NewV1(),
			UseSyscall: "chown", FileSize: 100 << 10, Seed: 81,
		}},
		{"gedit v1 on SMP", geditScenario(machine.SMP2(), attack.NewV1(), 82)},
		{"gedit v2 on multi-core", geditScenario(machine.MultiCore(), attack.NewV2(), 83)},
	}
	for _, c := range cases {
		base, err := core.RunCampaign(c.sc, rounds)
		if err != nil {
			log.Fatal(err)
		}
		guarded := c.sc
		guarded.NewGuard = func() fs.Guard { return defense.New(defense.Enforce) }
		enf, err := core.RunCampaign(guarded, rounds)
		if err != nil {
			log.Fatal(err)
		}
		tbl.AddRow(c.name,
			fmt.Sprintf("%.1f%%", base.Rate()*100),
			fmt.Sprintf("%.1f%%", enf.Rate()*100),
			fmt.Sprintf("%d/%d rounds", enf.AttackErrors, rounds))
	}
	if err := tbl.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nwhat Monitor mode sees in a single guarded round:")
	g := defense.New(defense.Monitor)
	sc := geditScenario(machine.SMP2(), attack.NewV1(), 84)
	sc.NewGuard = func() fs.Guard { return g }
	round, err := core.RunRound(sc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  invariants established: %d\n", g.Established)
	fmt.Printf("  violations observed:    %d\n", g.Violations)
	fmt.Printf("  attack succeeded:       %v (monitor does not block)\n", round.Success)
}

func geditScenario(m machine.Profile, att prog.Program, seed int64) core.Scenario {
	return core.Scenario{
		Machine: m, Victim: victim.NewGedit(), Attacker: att,
		UseSyscall: "chmod", FileSize: 2 << 10, Seed: seed,
	}
}
