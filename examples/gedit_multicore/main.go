// gedit on a multi-core: why the attacker's implementation matters.
//
// The gedit window on the paper's multi-core is only ~3 µs of computation
// between rename and chmod. The naive attacker (program 1, Fig. 4) takes
// a page-fault trap on its first unlink — fatal at this scale. Program 2
// (Fig. 9) keeps the stub page and branch warm by unlinking a dummy file
// every iteration, and starts winning. This example measures both and
// renders a failed-v1 and successful-v2 timeline like Figures 8 and 10.
//
// Run: go run ./examples/gedit_multicore
package main

import (
	"fmt"
	"log"

	"tocttou/internal/attack"
	"tocttou/internal/core"
	"tocttou/internal/machine"
	"tocttou/internal/prog"
	"tocttou/internal/trace"
	"tocttou/internal/victim"
)

func main() {
	m := machine.MultiCore()
	scenario := func(att prog.Program, seed int64) core.Scenario {
		return core.Scenario{
			Machine: m, Victim: victim.NewGedit(), Attacker: att,
			UseSyscall: "chmod", FileSize: 2 << 10, Seed: seed, Trace: true,
		}
	}

	const rounds = 300
	v1, err := core.RunCampaign(scenario(attack.NewV1(), 61), rounds)
	if err != nil {
		log.Fatal(err)
	}
	v2, err := core.RunCampaign(scenario(attack.NewV2(), 62), rounds)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("gedit attack on %s (%d rounds each):\n", m.Name, rounds)
	fmt.Printf("  program 1 (naive, traps in-window): %s\n", v1.Proportion())
	fmt.Printf("  program 2 (pre-faulted, Fig. 9):    %s\n", v2.Proportion())
	fmt.Printf("  detection gap D: v1 = %.1fµs vs v2 = %.1fµs (the trap + cold branch)\n\n",
		v1.D.Mean(), v2.D.Mean())

	// A failed v1 round, like the paper's Figure 8.
	show("FAILED program-1 round (paper Fig. 8)", scenario(attack.NewV1(), 63),
		func(r core.Round) bool { return !r.Success && r.LD.Detected })

	// A successful v2 round, like the paper's Figure 10.
	show("SUCCESSFUL program-2 round (paper Fig. 10)", scenario(attack.NewV2(), 64),
		func(r core.Round) bool { return r.Success })
}

func show(title string, sc core.Scenario, want func(core.Round) bool) {
	for i := 0; i < 512; i++ {
		r, err := core.RunRound(sc)
		if err != nil {
			log.Fatal(err)
		}
		if !want(r) {
			sc.Seed += 104729
			continue
		}
		fmt.Printf("--- %s (seed %d) ---\n", title, sc.Seed)
		log2 := trace.New(r.Events)
		lanes := trace.BuildTimeline(log2, map[int32]string{
			r.VictimPID: "gedit", r.AttackerPID: "attacker",
		})
		fmt.Print(trace.RenderASCII(lanes, r.LD.T1.Add(-25*1000), r.LD.T1.Add(60*1000), 100))
		fmt.Println()
		return
	}
	log.Fatalf("no round matching %q found", title)
}
