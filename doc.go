// Package tocttou is a reproduction of "Multiprocessors May Reduce System
// Dependability under File-Based Race Condition Attacks" (Wei & Pu,
// DSN 2007) as a Go library.
//
// It contains a deterministic virtual-time simulation of the operating
// system machinery that decides TOCTTOU races — CPUs and a preemptive
// scheduler, a Unix-style file system with per-inode semaphores, and
// demand-paged libc stubs — plus syscall-level replicas of the paper's
// victims (vi, gedit) and attackers (naive, pre-faulted, pipelined), the
// paper's probabilistic success model, and a harness that regenerates
// every table and figure in the paper's evaluation.
//
// Entry points:
//
//   - internal/core: build a Scenario, run rounds and campaigns.
//   - internal/experiments: one driver per paper table/figure.
//   - cmd/tocttou: CLI over the experiment registry.
//   - cmd/traceview: single-round timelines like the paper's Figs. 8/10.
//   - examples/: six runnable walkthroughs.
//
// The benchmark harness in bench_test.go regenerates the evaluation:
//
//	go test -bench=. -benchmem
package tocttou
