GO ?= go

.PHONY: check vet build test race bench bench-baseline bench-sweep bench-guard golden golden-check

# check is the gate every change must pass: vet, build, the full test
# suite, and a race-detector pass over the parallel campaign worker pool
# and the simulator's coroutine handoff protocol.
check: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/core/ -run 'Campaign|Sweep|Adaptive|FindRound|OnRound|Aborted|Explore|Fault|Checkpoint|Watchdog|Panic'
	$(GO) test -race ./internal/experiments/ -run 'Sweep|Adaptive|Fault|Checkpoint'
	$(GO) test -race ./internal/sim/ ./internal/metrics/ ./internal/trace/ ./internal/explore/ ./internal/fault/ ./internal/fs/

# bench runs the per-layer microbenchmarks (see DESIGN.md's Performance
# section for the benchstat comparison workflow).
bench:
	$(GO) test -bench . -benchmem -run '^$$' ./internal/sim/ ./internal/fs/ ./internal/core/

# bench-baseline refreshes the machine-readable per-round cost baseline.
bench-baseline:
	$(GO) run ./cmd/tocttou -bench-baseline

# bench-sweep regenerates BENCH_2.json: the Fig 6 sweep timed three ways
# (pre-sweep baseline, serial campaign loop, sweep scheduler) plus the
# adaptive budget's savings.
bench-sweep:
	$(GO) run ./cmd/tocttou -sweep -adaptive

# bench-guard re-times the Fig 6 sweep against the committed BENCH_2.json
# and fails if it is more than 10% slower at any recorded GOMAXPROCS.
# Wall-time baselines only transfer between comparable hosts; regenerate
# the record with bench-sweep when moving machines.
bench-guard:
	$(GO) run ./cmd/tocttou -bench-guard

# golden refreshes the committed experiment snapshots. Run it after a
# deliberate output change and review the diff before committing.
GOLDEN_EXPERIMENTS = fig6,headline,eq1-exact,faultsweep
golden:
	$(GO) run ./cmd/tocttou -experiment $(GOLDEN_EXPERIMENTS) -golden testdata/golden

# golden-check regenerates the snapshots into a scratch directory and
# diffs them against the committed ones, failing on any drift.
golden-check:
	@tmp=$$(mktemp -d) && \
	$(GO) run ./cmd/tocttou -experiment $(GOLDEN_EXPERIMENTS) -golden $$tmp && \
	diff -ru testdata/golden $$tmp && \
	rm -rf $$tmp && \
	echo "golden-check: snapshots match"
