GO ?= go

.PHONY: check vet build test race bench bench-baseline bench-sweep bench-guard golden golden-check

# check is the gate every change must pass: vet, build, the full test
# suite, and a race-detector pass over the parallel campaign worker pool
# and the simulator's coroutine handoff protocol.
check: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/core/ -run 'Campaign|Sweep|Adaptive|FindRound|OnRound|Aborted|Explore|Fault|Checkpoint|Watchdog|Panic|Fork'
	$(GO) test -race ./internal/experiments/ -run 'Sweep|Adaptive|Fault|Checkpoint'
	$(GO) test -race ./internal/sim/ ./internal/metrics/ ./internal/trace/ ./internal/explore/ ./internal/fault/ ./internal/fs/

# bench runs the per-layer microbenchmarks (see DESIGN.md's Performance
# section for the benchstat comparison workflow).
bench:
	$(GO) test -bench . -benchmem -run '^$$' ./internal/sim/ ./internal/fs/ ./internal/core/

# bench-baseline refreshes the machine-readable per-round cost baseline.
bench-baseline:
	$(GO) run ./cmd/tocttou -bench-baseline

# bench-sweep regenerates BENCH_3.json: the Fig 6 sweep timed three ways
# (pre-sweep baseline, serial campaign loop, sweep scheduler) plus the
# adaptive budget's savings. BENCH_2.json is the pre-fork record and is
# kept for the trajectory; do not regenerate it.
bench-sweep:
	$(GO) run ./cmd/tocttou -sweep -adaptive -sweep-out BENCH_3.json

# bench-guard re-times the Fig 6 sweep against the committed BENCH_3.json
# (the prefix-forking baseline) and fails if it is more than 30% slower at
# any recorded GOMAXPROCS. The tolerance is sized to the recording host's
# measured best-of spread (quiet runs ~100ms, contended runs up to ~147ms
# on the 1-CPU container) — a real regression from forking's removal is
# ~3x, far outside it. Wall-time baselines only transfer between
# comparable hosts; regenerate the record with bench-sweep when moving
# machines.
bench-guard:
	$(GO) run ./cmd/tocttou -bench-guard -bench-against BENCH_3.json -bench-tolerance 0.30

# golden refreshes the committed experiment snapshots. Run it after a
# deliberate output change and review the diff before committing.
GOLDEN_EXPERIMENTS = fig6,headline,eq1-exact,faultsweep
golden:
	$(GO) run ./cmd/tocttou -experiment $(GOLDEN_EXPERIMENTS) -golden testdata/golden

# golden-check regenerates the snapshots into a scratch directory and
# diffs them against the committed ones, failing on any drift.
golden-check:
	@tmp=$$(mktemp -d) && \
	$(GO) run ./cmd/tocttou -experiment $(GOLDEN_EXPERIMENTS) -golden $$tmp && \
	diff -ru testdata/golden $$tmp && \
	rm -rf $$tmp && \
	echo "golden-check: snapshots match"
