GO ?= go

.PHONY: check vet build test race bench bench-baseline bench-sweep bench-guard bench-profile golden golden-check scenario-check serve-check chaos-check

# check is the gate every change must pass: vet, build, the full test
# suite, and a race-detector pass over the parallel campaign worker pool
# and the simulator's coroutine handoff protocol.
check: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/core/ -run 'Campaign|Sweep|Adaptive|FindRound|OnRound|Aborted|Explore|Fault|Checkpoint|Watchdog|Panic|Fork|Coalesced|Memo|Horizon|EINTR'
	$(GO) test -race ./internal/experiments/ -run 'Sweep|Adaptive|Fault|Checkpoint'
	$(GO) test -race ./internal/scenario/ -run 'Fleet|Equivalent|Checkpoint'
	$(GO) test -race ./internal/campaignd/
	$(GO) test -race ./internal/workerpool/
	$(GO) test -race ./internal/sim/ ./internal/metrics/ ./internal/trace/ ./internal/explore/ ./internal/fault/ ./internal/fs/

# bench runs the per-layer microbenchmarks (see DESIGN.md's Performance
# section for the benchstat comparison workflow).
bench:
	$(GO) test -bench . -benchmem -run '^$$' ./internal/sim/ ./internal/fs/ ./internal/core/

# bench-baseline refreshes the machine-readable per-round cost baseline.
bench-baseline:
	$(GO) run ./cmd/tocttou -bench-baseline

# bench-sweep regenerates BENCH_4.json: the Fig 6 sweep timed three ways
# (pre-sweep baseline, serial campaign loop, sweep scheduler), the
# coalesced-vs-stepped bracket, allocs/op, and the adaptive budget's
# savings. BENCH_2.json (pre-fork) and BENCH_3.json (pre-coalescing) are
# kept for the trajectory; do not regenerate them.
bench-sweep:
	$(GO) run ./cmd/tocttou -sweep -adaptive -sweep-out BENCH_4.json

# bench-guard re-times the Fig 6 sweep against the committed BENCH_4.json
# (the stretch-coalescing baseline) and fails if it is more than 45%
# slower at any recorded GOMAXPROCS. The tolerance is sized to the
# recording host's measured best-of spread (quiet runs ~79ms, contended
# runs up to ~124ms on the 1-CPU container) — a real regression from
# losing coalescing or forking is ~3x, far outside it. Wall-time
# baselines only transfer between comparable hosts; regenerate the
# record with bench-sweep when moving machines.
bench-guard:
	$(GO) run ./cmd/tocttou -bench-guard -bench-against BENCH_4.json -bench-tolerance 0.45

# bench-profile captures CPU and heap profiles of the Fig 6 sweep for
# `go tool pprof`. The sweep mode re-times the full grid, so the profile
# covers the production round path end to end (fork, coalesce, fold).
bench-profile:
	$(GO) run ./cmd/tocttou -sweep -sweep-out /tmp/bench-profile-sweep.json \
		-cpuprofile bench-cpu.prof -memprofile bench-mem.prof
	@echo "bench-profile: wrote bench-cpu.prof and bench-mem.prof (inspect with: go tool pprof bench-cpu.prof)"

# golden refreshes the committed experiment snapshots. Run it after a
# deliberate output change and review the diff before committing.
GOLDEN_EXPERIMENTS = fig6,headline,eq1-exact,faultsweep
golden:
	$(GO) run ./cmd/tocttou -experiment $(GOLDEN_EXPERIMENTS) -golden testdata/golden

# golden-check regenerates the snapshots into a scratch directory and
# diffs them against the committed ones, failing on any drift.
golden-check:
	@tmp=$$(mktemp -d) && \
	$(GO) run ./cmd/tocttou -experiment $(GOLDEN_EXPERIMENTS) -golden $$tmp && \
	diff -ru testdata/golden $$tmp && \
	rm -rf $$tmp && \
	echo "golden-check: snapshots match"

# scenario-check proves the declarative layer's equivalence contract: the
# shipped fig6/faultsweep scenario files must reproduce the committed
# experiment goldens byte-for-byte (same campaigns, same rendering), and
# the 600-victim generated fleet must run to completion with its
# assertions passing.
scenario-check:
	@tmp=$$(mktemp -d) && \
	$(GO) run ./cmd/tocttou -scenario examples/scenarios/fig6.yaml -golden $$tmp && \
	$(GO) run ./cmd/tocttou -scenario examples/scenarios/faultsweep.yaml -golden $$tmp && \
	diff -u testdata/golden/fig6.txt $$tmp/fig6.txt && \
	diff -u testdata/golden/faultsweep.txt $$tmp/faultsweep.txt && \
	$(GO) run ./cmd/tocttou -scenario examples/scenarios/fleet.yaml -golden $$tmp && \
	rm -rf $$tmp && \
	echo "scenario-check: scenario output matches the experiment goldens"

# serve-check is the campaign service's end-to-end gate — the identical
# script CI's service job runs: loopback smoke (submit fig6, watch, diff
# against the golden), the spec-error round-trip, and the kill -9
# mid-campaign + bit-identical-resume drill. Logs land in a temp dir
# (override with SERVE_CHECK_LOGS=dir).
serve-check:
	bash scripts/serve_check.sh

# chaos-check is the worker fleet's chaos gate — the identical script
# CI's chaos job runs: tocttoud under -workers with a TOCTTOU_CHAOS
# schedule that kills every initial worker (crash, torn write, stall,
# crash-between-commit-and-ack) must still produce a fig6 report
# byte-identical to the golden with no double-counted lease, and a
# poison point must be quarantined while the other points complete.
# Logs land in a temp dir (override with CHAOS_CHECK_LOGS=dir).
chaos-check:
	bash scripts/chaos_check.sh
