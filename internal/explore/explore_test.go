package explore

import (
	"math/big"
	"strings"
	"testing"
	"time"

	"tocttou/internal/sim"
)

// TestExploreHandTree checks the engine against a hand-computed tree that
// never touches the kernel: win iff a p=1/4 Bernoulli fires OR a uniform
// 3-way pick lands on alternative 2.
//
//	P(win) = 1/4 + 3/4 * 1/3 = 1/2.
func TestExploreHandTree(t *testing.T) {
	run := func(ch sim.Chooser) (bool, error) {
		if ch.Choose(nil, sim.Choice{Kind: sim.ChooseStall, N: 2, PNum: sim.ProbScale / 4}) == 1 {
			return true, nil
		}
		return ch.Choose(nil, sim.Choice{Kind: sim.ChooseDispatch, N: 3}) == 2, nil
	}
	res, err := Explore(run, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if want := big.NewRat(1, 2); res.PWin.Cmp(want) != 0 {
		t.Fatalf("PWin = %s, want %s", res.PWin.RatString(), want.RatString())
	}
	if res.Paths != 4 { // fire; no-fire × {0,1,2}
		t.Fatalf("Paths = %d, want 4", res.Paths)
	}
	if res.Win == nil || res.Lose == nil {
		t.Fatal("missing witnesses")
	}
	// Minimal winning path is the 1-decision Bernoulli fire.
	if len(res.Win.Decisions) != 1 || res.Win.Decisions[0].Index != 1 {
		t.Fatalf("Win witness = %+v, want the 1-decision stall fire", res.Win.Decisions)
	}
	if want := big.NewRat(1, 4); res.Win.Prob.Cmp(want) != 0 {
		t.Fatalf("Win prob = %s, want 1/4", res.Win.Prob.RatString())
	}
}

// TestExploreClassMerge checks that equal class tokens fold alternatives
// into one weighted representative without changing the result.
func TestExploreClassMerge(t *testing.T) {
	// 4-way uniform pick with alternatives {0,3} distinguishable and
	// {1,2} interchangeable; win on alternatives 1 and 2: P = 1/2.
	class := []uint64{10, 20, 20, 30}
	run := func(ch sim.Chooser) (bool, error) {
		i := ch.Choose(nil, sim.Choice{Kind: sim.ChooseDispatch, N: 4, Class: class})
		return i == 1 || i == 2, nil
	}
	pruned, err := Explore(run, Options{})
	if err != nil {
		t.Fatal(err)
	}
	naive, err := Explore(run, Options{Naive: true})
	if err != nil {
		t.Fatal(err)
	}
	if pruned.PWin.Cmp(naive.PWin) != 0 {
		t.Fatalf("pruned %s != naive %s", pruned.PWin.RatString(), naive.PWin.RatString())
	}
	if want := big.NewRat(1, 2); pruned.PWin.Cmp(want) != 0 {
		t.Fatalf("PWin = %s, want 1/2", pruned.PWin.RatString())
	}
	if pruned.Paths != 3 || naive.Paths != 4 {
		t.Fatalf("paths pruned/naive = %d/%d, want 3/4", pruned.Paths, naive.Paths)
	}
	if pruned.Merged != 1 || naive.Merged != 0 {
		t.Fatalf("merged pruned/naive = %d/%d, want 1/0", pruned.Merged, naive.Merged)
	}
}

// TestExploreDeterministicRun: a run with no choice points is one path of
// probability 1.
func TestExploreDeterministicRun(t *testing.T) {
	res, err := Explore(func(sim.Chooser) (bool, error) { return true, nil }, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Paths != 1 || res.PWin.Cmp(big.NewRat(1, 1)) != 0 || res.Lose != nil {
		t.Fatalf("got paths=%d PWin=%s", res.Paths, res.PWin.RatString())
	}
}

// TestExploreMaxPaths: exceeding the cap is a loud error.
func TestExploreMaxPaths(t *testing.T) {
	run := func(ch sim.Chooser) (bool, error) {
		a := ch.Choose(nil, sim.Choice{Kind: sim.ChooseDispatch, N: 4})
		b := ch.Choose(nil, sim.Choice{Kind: sim.ChooseDispatch, N: 4})
		return a == b, nil
	}
	_, err := Explore(run, Options{MaxPaths: 8})
	if err == nil || !strings.Contains(err.Error(), "MaxPaths") {
		t.Fatalf("err = %v, want MaxPaths error", err)
	}
}

// TestExploreNondeterministicReplay: a run whose choice sequence depends
// on something other than the chooser's answers must be rejected.
func TestExploreNondeterministicReplay(t *testing.T) {
	calls := 0
	run := func(ch sim.Chooser) (bool, error) {
		calls++
		n := 2
		if calls > 1 {
			n = 3 // diverges from the recorded prefix
		}
		ch.Choose(nil, sim.Choice{Kind: sim.ChooseDispatch, N: n})
		return false, nil
	}
	_, err := Explore(run, Options{})
	if err == nil || !strings.Contains(err.Error(), "nondeterministic") {
		t.Fatalf("err = %v, want nondeterministic-replay error", err)
	}
}

// syntheticWorkload drives a real kernel round with ≤3 threads over a
// handful of 1ms quanta: two interchangeable workers (same closure, same
// schedule class) and one distinct thread, all contending on one
// semaphore, with bounded noise-injection slots. Returns whether thread
// "a" finished after both workers — a predicate symmetric under swapping
// the interchangeable pair, as merging requires.
func syntheticWorkload(pruneNoops bool) RunFunc {
	return func(ch sim.Chooser) (bool, error) {
		cfg := sim.Config{
			CPUs:    1,
			Quantum: time.Millisecond,
			Chooser: ch,
			NoiseSlots: sim.NoiseSlotConfig{
				Period:     700 * time.Microsecond,
				Burst:      400 * time.Microsecond,
				Prob:       0.25,
				Bound:      2,
				PruneNoops: pruneNoops,
			},
			MaxTime: 50 * time.Millisecond,
		}
		k := sim.New(cfg)
		sem := sim.NewSem("res")
		var order []string
		proc := k.NewProcess("p", 0, 0)
		worker := func(t *sim.Task) {
			t.Compute(800 * time.Microsecond)
			sem.Acquire(t)
			t.Compute(300 * time.Microsecond)
			sem.Release(t)
			order = append(order, "b")
		}
		k.Spawn(proc, "a", func(t *sim.Task) {
			sem.Acquire(t)
			t.Compute(600 * time.Microsecond)
			sem.Release(t)
			t.Compute(900 * time.Microsecond)
			order = append(order, "a")
		})
		for i := 0; i < 2; i++ {
			k.Spawn(proc, "b", worker).SetScheduleClass(7)
		}
		if err := k.Run(); err != nil {
			return false, err
		}
		return len(order) == 3 && order[2] == "a", nil
	}
}

// TestExploreSyntheticNaiveVsPruned is the pruning property test: on a
// small window (3 threads, a few quanta) DPOR-style pruned exploration and
// naive full enumeration must compute the identical win probability —
// exact rational equality, not a tolerance.
func TestExploreSyntheticNaiveVsPruned(t *testing.T) {
	pruned, err := Explore(syntheticWorkload(true), Options{})
	if err != nil {
		t.Fatal(err)
	}
	naive, err := Explore(syntheticWorkload(false), Options{Naive: true})
	if err != nil {
		t.Fatal(err)
	}
	if pruned.PWin.Cmp(naive.PWin) != 0 {
		t.Fatalf("pruned PWin %s != naive PWin %s", pruned.PWin.RatString(), naive.PWin.RatString())
	}
	if pruned.Paths >= naive.Paths {
		t.Fatalf("pruning saved nothing: pruned %d paths vs naive %d", pruned.Paths, naive.Paths)
	}
	if pruned.Merged == 0 {
		t.Fatal("expected class merges on the interchangeable worker pair")
	}
	// The probability must be strictly between 0 and 1: both outcomes
	// reachable, so the equality above compares a nontrivial quantity.
	if pruned.PWin.Sign() <= 0 || pruned.PWin.Cmp(big.NewRat(1, 1)) >= 0 {
		t.Fatalf("degenerate PWin %s", pruned.PWin.RatString())
	}
}
