// Package explore is a stateless model checker for the simulation kernel:
// it exhaustively enumerates every scheduling/model choice point a
// sim.Chooser is consulted for (dispatch picks at quantum boundaries,
// semaphore wake order, noise-injection slots, storage stalls, the
// victim's startup phase) over a bounded round, in the style of stateless
// systematic-testing tools — each path is a fresh run of the program with
// a scripted prefix, so no simulator state is ever saved or restored.
//
// Every leaf carries an exact rational probability (the product of its
// decisions' weights: 1/N per uniform pick, fixed-point p per Bernoulli
// branch), so the summed attacker win probability is exact, not sampled.
// DPOR-style pruning folds provably-equivalent alternatives — dispatch
// picks among interchangeable threads (Choice.Class tokens) and no-op
// noise slots (pruned kernel-side) — into one weighted representative;
// Options.Naive disables both so tests can verify the folds preserve the
// distribution bit for bit.
package explore

import (
	"fmt"
	"math/big"

	"tocttou/internal/sim"
)

// Decision is one resolved choice point on an explored path.
type Decision struct {
	Kind sim.ChoiceKind
	// N is the alternative count the kernel offered.
	N int
	// Index is the alternative taken.
	Index int
}

// Witness is a replayable schedule: the decision taken at every choice
// point of one explored path, with the path's exact probability.
type Witness struct {
	Decisions []Decision
	Prob      *big.Rat
}

// Script returns the raw alternative indices in consult order, ready for a
// sim.ScriptChooser replay.
func (w *Witness) Script() []int {
	s := make([]int, len(w.Decisions))
	for i, d := range w.Decisions {
		s[i] = d.Index
	}
	return s
}

// RunFunc executes one bounded round driven by ch and reports whether the
// attacker won. It must be deterministic given the chooser's answers: the
// same answer prefix must reproduce the same choice-point sequence.
type RunFunc func(ch sim.Chooser) (win bool, err error)

// Options tunes an exploration.
type Options struct {
	// Naive disables equivalence-class merging, enumerating every
	// alternative of every choice point individually.
	Naive bool
	// MaxPaths aborts exploration when the executed path count exceeds it
	// (0 = default 1<<20). Bounded windows keep trees small; the cap is a
	// runaway guard, not a sampling knob — exceeding it is an error, never
	// a silent truncation.
	MaxPaths int
}

const defaultMaxPaths = 1 << 20

// Result is the outcome of an exhaustive exploration.
type Result struct {
	// PWin is the exact attacker win probability: the sum of the path
	// probabilities of all winning leaves.
	PWin *big.Rat
	// Paths is the number of leaves executed (after merging).
	Paths int
	// ChoicePoints is the number of distinct choice-tree nodes visited.
	ChoicePoints int
	// Merged counts alternatives folded into class representatives.
	Merged int
	// MaxDepth is the longest decision sequence seen.
	MaxDepth int
	// Win and Lose are minimal (fewest-decision, first-found) witnesses;
	// nil when no path with that outcome exists.
	Win, Lose *Witness
}

// alt is one representative alternative at a choice point, weighted
// num/den (its merged class multiplicity over N, or its fixed-point
// Bernoulli probability over sim.ProbScale).
type alt struct {
	index    int
	num, den int64
}

// point records one choice point on the current DFS path.
type point struct {
	kind sim.ChoiceKind
	n    int
	alts []alt
	next int // index into alts of the branch the current path takes
}

// engine is the DFS driver; it is also the sim.Chooser handed to RunFunc.
// points[:prefix] replay the decisions of the path under exploration;
// consults beyond the prefix discover fresh choice points depth-first
// (always alternative 0 of the representative list).
type engine struct {
	naive  bool
	points []point
	depth  int
	prefix int
	merged int
	nodes  int
	err    error
}

// Choose implements sim.Chooser.
func (e *engine) Choose(_ *sim.Kernel, c sim.Choice) int {
	d := e.depth
	e.depth++
	if d < e.prefix {
		p := &e.points[d]
		if p.kind != c.Kind || p.n != c.N {
			if e.err == nil {
				e.err = fmt.Errorf("explore: nondeterministic replay at choice %d: recorded %s/%d, run offered %s/%d",
					d, p.kind, p.n, c.Kind, c.N)
			}
			return 0
		}
		return p.alts[p.next].index
	}
	e.nodes++
	p := point{kind: c.Kind, n: c.N, alts: e.buildAlts(c)}
	e.points = append(e.points, p)
	return p.alts[0].index
}

// buildAlts lists the representative alternatives of a choice point with
// their exact weights.
func (e *engine) buildAlts(c sim.Choice) []alt {
	if c.PNum > 0 {
		// Bernoulli: the kernel only consults for 0 < p < 1, so both
		// branches have positive weight. No-occur first: minimal
		// witnesses then prefer quiet schedules.
		return []alt{
			{index: 0, num: int64(sim.ProbScale - c.PNum), den: sim.ProbScale},
			{index: 1, num: int64(c.PNum), den: sim.ProbScale},
		}
	}
	alts := make([]alt, 0, c.N)
	if e.naive || c.Class == nil {
		for i := 0; i < c.N; i++ {
			alts = append(alts, alt{index: i, num: 1, den: int64(c.N)})
		}
		return alts
	}
	// Fold alternatives sharing an equivalence token into their first
	// occurrence, accumulating its multiplicity. Linear scan: tie groups
	// are tiny.
	for i := 0; i < c.N; i++ {
		tok := c.Class[i]
		found := false
		for j := range alts {
			if c.Class[alts[j].index] == tok {
				alts[j].num++
				e.merged++
				found = true
				break
			}
		}
		if !found {
			alts = append(alts, alt{index: i, num: 1, den: int64(c.N)})
		}
	}
	return alts
}

// pathProb returns the exact probability of the current path.
func pathProb(points []point) *big.Rat {
	prob := new(big.Rat).SetInt64(1)
	var term big.Rat
	for i := range points {
		a := points[i].alts[points[i].next]
		prob.Mul(prob, term.SetFrac64(a.num, a.den))
	}
	return prob
}

// snapshot captures the current path as a witness.
func snapshot(points []point, prob *big.Rat) *Witness {
	w := &Witness{Decisions: make([]Decision, len(points)), Prob: prob}
	for i := range points {
		w.Decisions[i] = Decision{
			Kind:  points[i].kind,
			N:     points[i].n,
			Index: points[i].alts[points[i].next].index,
		}
	}
	return w
}

// Explore exhaustively enumerates run's choice tree by depth-first search
// with prefix replay and returns the exact win probability. As a built-in
// soundness check it verifies the leaf probabilities sum to exactly 1 —
// any unweighted merge, missed branch, or nondeterministic replay breaks
// that invariant loudly instead of skewing the result.
func Explore(run RunFunc, opt Options) (*Result, error) {
	maxPaths := opt.MaxPaths
	if maxPaths <= 0 {
		maxPaths = defaultMaxPaths
	}
	e := &engine{naive: opt.Naive}
	res := &Result{PWin: new(big.Rat)}
	total := new(big.Rat)
	one := new(big.Rat).SetInt64(1)
	for {
		e.depth = 0
		e.prefix = len(e.points)
		win, err := run(e)
		if err != nil {
			return nil, fmt.Errorf("explore: path %d failed: %w", res.Paths, err)
		}
		if e.err != nil {
			return nil, e.err
		}
		if e.depth < e.prefix {
			return nil, fmt.Errorf("explore: nondeterministic replay: path %d consulted %d choice points, previous path recorded %d",
				res.Paths, e.depth, e.prefix)
		}
		res.Paths++
		if res.Paths > maxPaths {
			return nil, fmt.Errorf("explore: exceeded MaxPaths=%d — shrink the window (fewer phase slots, tighter stall/preemption bounds) or raise the cap", maxPaths)
		}
		if len(e.points) > res.MaxDepth {
			res.MaxDepth = len(e.points)
		}
		prob := pathProb(e.points)
		total.Add(total, prob)
		wit := &res.Lose
		if win {
			res.PWin.Add(res.PWin, prob)
			wit = &res.Win
		}
		if *wit == nil || len(e.points) < len((*wit).Decisions) {
			*wit = snapshot(e.points, prob)
		}
		// Backtrack to the deepest point with an unexplored alternative.
		i := len(e.points) - 1
		for i >= 0 && e.points[i].next+1 >= len(e.points[i].alts) {
			i--
		}
		if i < 0 {
			break
		}
		e.points[i].next++
		e.points = e.points[:i+1]
	}
	res.ChoicePoints = e.nodes
	res.Merged = e.merged
	if total.Cmp(one) != 0 {
		return nil, fmt.Errorf("explore: leaf probabilities sum to %s, not 1 — inconsistently weighted choice point", total.RatString())
	}
	return res, nil
}
