package scenario

import (
	"strings"
	"testing"
	"time"
)

// minimalSpec is the smallest valid scenario; the rejection tests below
// each break exactly one thing relative to shapes like it.
const minimalSpec = `
name: smoke
machine: up
rounds: 10
seed: 1
victim: vi
attacker: v1
sizes_kb: [100]
`

func mustParse(t *testing.T, src string) *Spec {
	t.Helper()
	spec, err := Parse([]byte(src), false)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return spec
}

func TestSpecMinimalDefaults(t *testing.T) {
	spec := mustParse(t, minimalSpec)
	if spec.SeedStride != 7919 {
		t.Errorf("default seed_stride = %d, want 7919", spec.SeedStride)
	}
	if spec.Syscall != "chown" {
		t.Errorf("vi's default syscall = %q, want chown", spec.Syscall)
	}
	if spec.Report != "table" {
		t.Errorf("default report = %q, want table", spec.Report)
	}
	gedit := strings.Replace(minimalSpec, "victim: vi", "victim: gedit", 1)
	gedit = strings.Replace(gedit, "attacker: v1", "attacker: v2", 1)
	if spec := mustParse(t, gedit); spec.Syscall != "chmod" {
		t.Errorf("gedit's default syscall = %q, want chmod", spec.Syscall)
	}
}

// TestSpecRejections is the parse-time validation contract: every
// malformed spec here must fail before any round runs, with an error
// naming the offending path (and line, where the source carries one).
func TestSpecRejections(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want []string
	}{
		{"unknown top-level key",
			minimalSpec + "frobnicate: 1\n",
			[]string{"unknown key \"frobnicate\"", "line 9"}},
		{"missing name",
			"machine: up\nrounds: 10\nseed: 1\nvictim: vi\nattacker: v1\nsizes_kb: [100]\n",
			[]string{"name", "required"}},
		{"missing machine",
			"name: x\nrounds: 10\nseed: 1\nvictim: vi\nattacker: v1\nsizes_kb: [100]\n",
			[]string{"machine", "required"}},
		{"missing rounds",
			"name: x\nmachine: up\nseed: 1\nvictim: vi\nattacker: v1\nsizes_kb: [100]\n",
			[]string{"rounds", "required"}},
		{"missing seed",
			"name: x\nmachine: up\nrounds: 10\nvictim: vi\nattacker: v1\nsizes_kb: [100]\n",
			[]string{"seed", "required"}},
		{"zero rounds",
			strings.Replace(minimalSpec, "rounds: 10", "rounds: 0", 1),
			[]string{"rounds", "must be > 0"}},
		{"zero seed_stride",
			minimalSpec + "seed_stride: 0\n",
			[]string{"seed_stride", "non-zero"}},
		{"unknown machine",
			strings.Replace(minimalSpec, "machine: up", "machine: quantum", 1),
			[]string{"machine", "unknown machine \"quantum\"", "line 3"}},
		{"unknown victim",
			strings.Replace(minimalSpec, "victim: vi", "victim: emacs", 1),
			[]string{"victim", "unknown victim \"emacs\""}},
		{"unknown attacker",
			strings.Replace(minimalSpec, "attacker: v1", "attacker: v9", 1),
			[]string{"attacker", "unknown attacker \"v9\""}},
		{"unknown syscall",
			minimalSpec + "syscall: fork\n",
			[]string{"syscall", "unknown syscall \"fork\""}},
		{"bad report",
			minimalSpec + "report: pie-chart\n",
			[]string{"report", "unknown report"}},
		{"negative size",
			strings.Replace(minimalSpec, "sizes_kb: [100]", "sizes_kb: [100, -5]", 1),
			[]string{"sizes_kb[1]", "must be > 0"}},
		{"empty sizes",
			strings.Replace(minimalSpec, "sizes_kb: [100]", "sizes_kb: []", 1),
			[]string{"sizes_kb", "at least one"}},
		{"bad size range",
			strings.Replace(minimalSpec, "sizes_kb: [100]", "sizes_kb: {from: 200, to: 100, step: 50}", 1),
			[]string{"sizes_kb", "from <= to"}},
		{"rounds not an integer",
			strings.Replace(minimalSpec, "rounds: 10", "rounds: many", 1),
			[]string{"rounds", "expected an integer"}},
		{"fault rate out of range",
			minimalSpec + "fault_rates: [0, 1.5]\nfaults:\n  seed: 1\n",
			[]string{"fault_rates[1]", "[0, 1]"}},
		{"fault_rates without faults block",
			minimalSpec + "fault_rates: [0.1]\n",
			[]string{"fault_rates", "requires a faults block"}},
		{"absolute rate under a rates axis",
			minimalSpec + "fault_rates: [0.1]\nfaults:\n  seed: 1\n  fs_rate: 0.5\n",
			[]string{"faults.fs_rate", "fs_scale"}},
		{"scale without a rates axis",
			minimalSpec + "faults:\n  seed: 1\n  fs_scale: 1\n",
			[]string{"faults.fs_scale", "fault_rates"}},
		{"fs_rate out of range",
			minimalSpec + "faults:\n  seed: 1\n  fs_rate: 2\n",
			[]string{"faults.fs_rate", "[0, 1]"}},
		{"faults without seed",
			minimalSpec + "faults:\n  fs_rate: 0.1\n",
			[]string{"faults.seed", "required"}},
		{"unknown faults key",
			minimalSpec + "faults:\n  seed: 1\n  chaos: maximal\n",
			[]string{"faults", "unknown key \"chaos\""}},
		{"negative watchdog",
			minimalSpec + "watchdog_ms: -1\n",
			[]string{"watchdog_ms", ">= 0"}},
		{"unknown policy",
			minimalSpec + "policies: [give-up, shrug]\n",
			[]string{"policies[1]", "unknown policy \"shrug\""}},
		{"duplicate policy",
			minimalSpec + "policies: [retry, retry]\n",
			[]string{"policies[1]", "duplicate policy"}},
		{"custom policy without name",
			minimalSpec + "policies:\n  - retries: 3\n",
			[]string{"policies[0].name", "required"}},
		{"policies on a robustness-free pair",
			strings.Replace(minimalSpec, "attacker: v1", "attacker: v2", 1) + "policies: [give-up]\n",
			[]string{"policies", "vi", "v1"}},
		{"fig6 with wrong victim",
			strings.Replace(minimalSpec, "victim: vi", "victim: gedit", 1) + "report: fig6\n",
			[]string{"report", "fig6"}},
		{"faultsweep without axes",
			minimalSpec + "report: faultsweep\n",
			[]string{"report", "faultsweep"}},
		{"assertion without bounds",
			minimalSpec + "assertions:\n  - metric: success_rate\n",
			[]string{"assertions[0]", "min, max, or both"}},
		{"assertion min above max",
			minimalSpec + "assertions:\n  - metric: success_rate\n    min: 0.9\n    max: 0.1\n",
			[]string{"assertions[0]", "never pass"}},
		{"assertion unknown metric",
			minimalSpec + "assertions:\n  - metric: vibes\n    min: 1\n",
			[]string{"assertions[0].metric", "unknown metric \"vibes\""}},
		{"assertion point out of range",
			minimalSpec + "assertions:\n  - metric: success_rate\n    point: 7\n    max: 1\n",
			[]string{"assertions[0].point", "out of range", "1 points"}},
		{"assertion mean metric without point",
			minimalSpec + "assertions:\n  - metric: l_mean_us\n    max: 100\n",
			[]string{"assertions[0].metric", "point selector"}},
		{"assertion template without fleet",
			minimalSpec + "assertions:\n  - metric: success_rate\n    template: nope\n    max: 1\n",
			[]string{"assertions[0].template", "fleet"}},
		{"fleet missing jitter_seed",
			"name: x\nmachine: up\nrounds: 2\nseed: 1\nfleet:\n  total: 10\n  templates:\n    - name: a\n      weight: 1\n      victim: vi\n      attacker: v1\n      size_kb: 20\n",
			[]string{"fleet.jitter_seed", "required"}},
		{"fleet zero weight",
			"name: x\nmachine: up\nrounds: 2\nseed: 1\nfleet:\n  total: 10\n  jitter_seed: 1\n  templates:\n    - name: a\n      weight: 0\n      victim: vi\n      attacker: v1\n      size_kb: 20\n",
			[]string{"fleet.templates[0].weight", "must be > 0"}},
		{"fleet duplicate template names",
			"name: x\nmachine: up\nrounds: 2\nseed: 1\nfleet:\n  total: 10\n  jitter_seed: 1\n  templates:\n    - name: a\n      weight: 1\n      victim: vi\n      attacker: v1\n      size_kb: 20\n    - name: a\n      weight: 2\n      victim: gedit\n      attacker: v2\n      size_kb: 20\n",
			[]string{"fleet.templates[1].name", "duplicate template name \"a\""}},
		{"fleet bad size range",
			"name: x\nmachine: up\nrounds: 2\nseed: 1\nfleet:\n  total: 10\n  jitter_seed: 1\n  templates:\n    - name: a\n      weight: 1\n      victim: vi\n      attacker: v1\n      size_kb:\n        min: 50\n        max: 20\n",
			[]string{"fleet.templates[0].size_kb", "min <= max"}},
		{"fleet conflicts with workload keys",
			minimalSpec + "fleet:\n  total: 10\n  jitter_seed: 1\n  templates:\n    - name: a\n      weight: 1\n      victim: vi\n      attacker: v1\n      size_kb: 20\n",
			[]string{"conflicts with fleet"}},
		{"fleet unknown assertion template",
			"name: x\nmachine: up\nrounds: 2\nseed: 1\nfleet:\n  total: 10\n  jitter_seed: 1\n  templates:\n    - name: a\n      weight: 1\n      victim: vi\n      attacker: v1\n      size_kb: 20\nassertions:\n  - metric: success_rate\n    template: b\n    max: 1\n",
			[]string{"unknown template \"b\""}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse([]byte(tc.src), false)
			if err == nil {
				t.Fatalf("expected an error for:\n%s", tc.src)
			}
			for _, want := range tc.want {
				if !strings.Contains(err.Error(), want) {
					t.Errorf("error %q does not mention %q", err, want)
				}
			}
		})
	}
}

// TestSpecCustomPolicy pins the custom-policy mapping form.
func TestSpecCustomPolicy(t *testing.T) {
	spec := mustParse(t, minimalSpec+`policies:
  - give-up
  - name: patient
    retries: 9
    backoff_us: 5
    fallback: true
`)
	if len(spec.Policies) != 2 {
		t.Fatalf("got %d policies", len(spec.Policies))
	}
	p := spec.Policies[1]
	if p.Label != "patient" || p.Robust.Retries != 9 ||
		p.Robust.Backoff != 5*time.Microsecond || !p.Robust.Fallback {
		t.Errorf("custom policy decoded wrong: %+v", p)
	}
}

// TestSpecJSONInput pins the JSON front end end-to-end through Parse.
func TestSpecJSONInput(t *testing.T) {
	spec, err := Parse([]byte(`{
		"name": "json-smoke", "machine": "smp", "rounds": 5, "seed": 3,
		"victim": "vi", "attacker": "v1", "sizes_kb": [40, 80]
	}`), true)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(strings.ToLower(spec.Machine.Name), "smp") {
		t.Errorf("machine = %q, want the SMP profile", spec.Machine.Name)
	}
	if len(spec.SizesKB) != 2 || spec.SizesKB[1] != 80 {
		t.Errorf("sizes = %v", spec.SizesKB)
	}
	if _, err := Parse([]byte(`{"name": "x", "machine": "up"}`), true); err == nil {
		t.Error("JSON spec missing rounds: expected an error")
	}
}
