package scenario

// Scenario specification: the declarative schema, its strict decoder, and
// parse-time validation. Every error names the offending path (and source
// line, for YAML input) so a malformed file fails the invocation before a
// single round runs. See DESIGN.md's "Declarative scenarios" chapter for
// the schema reference.

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"tocttou/internal/machine"
	"tocttou/internal/prog"
)

// Spec is a fully decoded and validated scenario file.
type Spec struct {
	Name        string
	Description string
	// Report selects the rendering: "table" (generic, the default),
	// "fig6", or "faultsweep" (the experiment-equivalent renderings).
	Report     string
	Machine    machine.Profile
	Rounds     int
	Seed       int64
	SeedStride int64
	Trace      bool

	// Single-workload axes (absent under Fleet).
	Victim   string
	Attacker string
	Syscall  string
	SizesKB  []int

	// Optional grid axes.
	Policies   []Policy
	FaultRates []float64

	Faults   *FaultSpec
	Watchdog time.Duration

	Fleet      *FleetSpec
	Assertions []Assertion
}

// Policy is a resolved robustness policy (built-in by name, or custom).
type Policy struct {
	Label  string
	Robust prog.Robustness
}

// FaultSpec configures the per-point fault plan. With a fault_rates axis
// the *_scale fields multiply each axis rate; without one the *_rate
// fields are absolute probabilities.
type FaultSpec struct {
	Seed              int64
	FSRate            float64
	SemIntrRate       float64
	KillVictimRate    float64
	KillAttackerRate  float64
	FSScale           float64
	SemIntrScale      float64
	KillVictimScale   float64
	KillAttackerScale float64
	SemIntrDelay      time.Duration
	KillWindow        time.Duration
	Restart           bool
	RestartDelay      time.Duration
	scaled            bool // true when *_scale fields drive the plan
}

// FleetSpec generates a deterministic fleet of parameter-jittered victims
// from weighted templates.
type FleetSpec struct {
	Total      int
	JitterSeed int64
	Templates  []Template
}

// Template is one weighted victim/attacker shape in a fleet.
type Template struct {
	Name      string
	Weight    int
	Victim    string
	Attacker  string
	Syscall   string
	SizeMinKB int
	SizeMaxKB int
}

// Assertion is one pass/fail bound on the campaign outcome.
type Assertion struct {
	// Metric names what is measured; see metricNames.
	Metric string
	// Point selects one grid point by index; -1 selects the aggregate.
	Point int
	// Template restricts the aggregate to one fleet template's members.
	Template string
	Min      float64
	Max      float64
	HasMin   bool
	HasMax   bool
	line     int
}

// victimNames and attackerNames are the referencable programs.
var victimNames = map[string]bool{
	"vi": true, "gedit": true, "rpm": true, "vi-fixed": true, "gedit-fixed": true,
}
var attackerNames = map[string]bool{
	"v1": true, "v2": true, "pipelined": true, "flipflop": true, "idle": true,
}

// aggregateMetrics are valid for any selection; pointMetrics additionally
// require a point selector (their per-point summaries don't aggregate).
var aggregateMetrics = map[string]bool{
	"success_rate": true, "successes": true, "rounds": true,
	"victim_errors": true, "attack_errors": true,
	"fs_errors_per_round": true, "sem_interrupts_per_round": true,
	"kills_per_round": true, "restarts_per_round": true,
}
var pointMetrics = map[string]bool{
	"l_mean_us": true, "d_mean_us": true, "window_mean_us": true,
}

// Load reads, parses, and validates a scenario file. Files ending in
// ".json" are decoded as JSON; everything else as the YAML subset. Any
// returned error names the file, the offending path, and (for YAML) the
// source line.
func Load(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	return LoadBytes(path, data)
}

// LoadBytes parses and validates scenario bytes exactly as Load would
// parse the file at path: the extension selects the format and every
// error names path, the offending key, and (for YAML) the source line.
// It is the seam the campaign service decodes submissions through, so a
// server-side rejection carries the identical message a local
// `tocttou -scenario` run prints.
func LoadBytes(path string, data []byte) (*Spec, error) {
	spec, err := Parse(data, strings.HasSuffix(path, ".json"))
	if err != nil {
		return nil, fmt.Errorf("scenario %s: %w", path, err)
	}
	return spec, nil
}

// Parse decodes and validates scenario bytes (exported for tests and
// embedding; Load is the file-path front end).
func Parse(data []byte, asJSON bool) (*Spec, error) {
	var root *node
	var err error
	if asJSON {
		root, err = parseJSON(data)
	} else {
		root, err = parseYAML(data)
	}
	if err != nil {
		return nil, err
	}
	return decodeSpec(root)
}

// specErr formats a validation error with path and, when known, line.
func specErr(n *node, path, format string, args ...any) error {
	msg := fmt.Sprintf(format, args...)
	if n != nil && n.line > 0 {
		return fmt.Errorf("line %d: %s: %s", n.line, path, msg)
	}
	return fmt.Errorf("%s: %s", path, msg)
}

// mapR reads a mapping strictly: every key must be consumed, and finish
// rejects the first unknown key by name and line.
type mapR struct {
	n    *node
	path string
	used map[string]bool
}

func asMap(n *node, path string) (*mapR, error) {
	if n == nil || n.kind != mapNode {
		return nil, specErr(n, path, "expected a mapping, got %s", kindOf(n))
	}
	return &mapR{n: n, path: path, used: make(map[string]bool)}, nil
}

func kindOf(n *node) nodeKind {
	if n == nil {
		return nullNode
	}
	return n.kind
}

func (m *mapR) get(key string) *node {
	m.used[key] = true
	return m.n.vals[key]
}

func (m *mapR) child(key string) string {
	if m.path == "" {
		return key
	}
	return m.path + "." + key
}

func (m *mapR) finish() error {
	for _, key := range m.n.keys {
		if !m.used[key] {
			kn := &node{line: m.n.keyLine[key]}
			where := m.path
			if where == "" {
				where = "scenario"
			}
			return specErr(kn, where, "unknown key %q", key)
		}
	}
	return nil
}

// Scalar converters. Each rejects the wrong node shape with a path error.

func decodeString(n *node, path string) (string, error) {
	if kindOf(n) != scalarNode {
		return "", specErr(n, path, "expected a string, got %s", kindOf(n))
	}
	return n.scalar, nil
}

func decodeInt(n *node, path string) (int64, error) {
	if kindOf(n) != scalarNode || n.quoted {
		return 0, specErr(n, path, "expected an integer, got %s", kindOf(n))
	}
	v, err := strconv.ParseInt(n.scalar, 10, 64)
	if err != nil {
		return 0, specErr(n, path, "expected an integer, got %q", n.scalar)
	}
	return v, nil
}

func decodeFloat(n *node, path string) (float64, error) {
	if kindOf(n) != scalarNode || n.quoted {
		return 0, specErr(n, path, "expected a number, got %s", kindOf(n))
	}
	v, err := strconv.ParseFloat(n.scalar, 64)
	if err != nil {
		return 0, specErr(n, path, "expected a number, got %q", n.scalar)
	}
	return v, nil
}

func decodeBool(n *node, path string) (bool, error) {
	if kindOf(n) != scalarNode || n.quoted {
		return false, specErr(n, path, "expected true or false, got %s", kindOf(n))
	}
	switch n.scalar {
	case "true":
		return true, nil
	case "false":
		return false, nil
	}
	return false, specErr(n, path, "expected true or false, got %q", n.scalar)
}

func decodeSeq(n *node, path string) ([]*node, error) {
	if kindOf(n) != seqNode {
		return nil, specErr(n, path, "expected a sequence, got %s", kindOf(n))
	}
	return n.items, nil
}

// decodeSpec walks the node tree into a Spec, validating as it goes.
func decodeSpec(root *node) (*Spec, error) {
	m, err := asMap(root, "")
	if err != nil {
		return nil, err
	}
	spec := &Spec{SeedStride: 7919, Syscall: "", Report: "table"}

	nameNode := m.get("name")
	if nameNode == nil {
		return nil, specErr(root, "name", "required")
	}
	if spec.Name, err = decodeString(nameNode, "name"); err != nil {
		return nil, err
	}
	if !validName(spec.Name) {
		return nil, specErr(nameNode, "name", "must be non-empty [a-z0-9-_] (got %q)", spec.Name)
	}
	if d := m.get("description"); d != nil {
		if spec.Description, err = decodeString(d, "description"); err != nil {
			return nil, err
		}
	}
	if r := m.get("report"); r != nil {
		if spec.Report, err = decodeString(r, "report"); err != nil {
			return nil, err
		}
		switch spec.Report {
		case "table", "fig6", "faultsweep":
		default:
			return nil, specErr(r, "report", "unknown report %q (have table, fig6, faultsweep)", spec.Report)
		}
	}

	machNode := m.get("machine")
	if machNode == nil {
		return nil, specErr(root, "machine", "required")
	}
	machName, err := decodeString(machNode, "machine")
	if err != nil {
		return nil, err
	}
	prof, ok := machine.ByName(machName)
	if !ok {
		return nil, specErr(machNode, "machine", "unknown machine %q (have up, smp, multicore)", machName)
	}
	spec.Machine = prof

	roundsNode := m.get("rounds")
	if roundsNode == nil {
		return nil, specErr(root, "rounds", "required")
	}
	rounds, err := decodeInt(roundsNode, "rounds")
	if err != nil {
		return nil, err
	}
	if rounds <= 0 {
		return nil, specErr(roundsNode, "rounds", "must be > 0, got %d", rounds)
	}
	spec.Rounds = int(rounds)

	seedNode := m.get("seed")
	if seedNode == nil {
		return nil, specErr(root, "seed", "required")
	}
	if spec.Seed, err = decodeInt(seedNode, "seed"); err != nil {
		return nil, err
	}
	if st := m.get("seed_stride"); st != nil {
		if spec.SeedStride, err = decodeInt(st, "seed_stride"); err != nil {
			return nil, err
		}
		if spec.SeedStride == 0 {
			return nil, specErr(st, "seed_stride", "must be non-zero (every grid point needs its own seed)")
		}
	}
	if tr := m.get("trace"); tr != nil {
		if spec.Trace, err = decodeBool(tr, "trace"); err != nil {
			return nil, err
		}
	}

	if v := m.get("victim"); v != nil {
		if spec.Victim, err = decodeString(v, "victim"); err != nil {
			return nil, err
		}
		if !victimNames[spec.Victim] {
			return nil, specErr(v, "victim", "unknown victim %q (have vi, gedit, rpm, vi-fixed, gedit-fixed)", spec.Victim)
		}
	}
	if a := m.get("attacker"); a != nil {
		if spec.Attacker, err = decodeString(a, "attacker"); err != nil {
			return nil, err
		}
		if !attackerNames[spec.Attacker] {
			return nil, specErr(a, "attacker", "unknown attacker %q (have v1, v2, pipelined, flipflop, idle)", spec.Attacker)
		}
	}
	if s := m.get("syscall"); s != nil {
		if spec.Syscall, err = decodeString(s, "syscall"); err != nil {
			return nil, err
		}
		if spec.Syscall != "chown" && spec.Syscall != "chmod" {
			return nil, specErr(s, "syscall", "unknown syscall %q (have chown, chmod)", spec.Syscall)
		}
	}

	if spec.SizesKB, err = decodeSizes(m); err != nil {
		return nil, err
	}
	if spec.Policies, err = decodePolicies(m.get("policies"), m.child("policies")); err != nil {
		return nil, err
	}
	if fr := m.get("fault_rates"); fr != nil {
		items, err := decodeSeq(fr, "fault_rates")
		if err != nil {
			return nil, err
		}
		if len(items) == 0 {
			return nil, specErr(fr, "fault_rates", "needs at least one rate")
		}
		for i, item := range items {
			p := fmt.Sprintf("fault_rates[%d]", i)
			rate, err := decodeFloat(item, p)
			if err != nil {
				return nil, err
			}
			if rate < 0 || rate > 1 {
				return nil, specErr(item, p, "must be in [0, 1], got %v", rate)
			}
			spec.FaultRates = append(spec.FaultRates, rate)
		}
	}
	if f := m.get("faults"); f != nil {
		if spec.Faults, err = decodeFaults(f, "faults", len(spec.FaultRates) > 0); err != nil {
			return nil, err
		}
	}
	if w := m.get("watchdog_ms"); w != nil {
		ms, err := decodeInt(w, "watchdog_ms")
		if err != nil {
			return nil, err
		}
		if ms < 0 {
			return nil, specErr(w, "watchdog_ms", "must be >= 0, got %d", ms)
		}
		spec.Watchdog = time.Duration(ms) * time.Millisecond
	}
	if fl := m.get("fleet"); fl != nil {
		if spec.Fleet, err = decodeFleet(fl, "fleet"); err != nil {
			return nil, err
		}
	}
	if as := m.get("assertions"); as != nil {
		if spec.Assertions, err = decodeAssertions(as, "assertions"); err != nil {
			return nil, err
		}
	}
	if err := m.finish(); err != nil {
		return nil, err
	}
	if err := spec.validate(root); err != nil {
		return nil, err
	}
	return spec, nil
}

func validName(s string) bool {
	if s == "" {
		return false
	}
	for _, c := range s {
		if !('a' <= c && c <= 'z' || '0' <= c && c <= '9' || c == '-' || c == '_') {
			return false
		}
	}
	return true
}

// decodeSizes reads sizes_kb: either an explicit list or a
// {from, to, step} range.
func decodeSizes(m *mapR) ([]int, error) {
	n := m.get("sizes_kb")
	if n == nil {
		return nil, nil
	}
	if n.kind == mapNode {
		r, err := asMap(n, "sizes_kb")
		if err != nil {
			return nil, err
		}
		get := func(key string) (int64, error) {
			kn := r.get(key)
			if kn == nil {
				return 0, specErr(n, "sizes_kb."+key, "required in a size range")
			}
			return decodeInt(kn, "sizes_kb."+key)
		}
		from, err := get("from")
		if err != nil {
			return nil, err
		}
		to, err := get("to")
		if err != nil {
			return nil, err
		}
		step, err := get("step")
		if err != nil {
			return nil, err
		}
		if err := r.finish(); err != nil {
			return nil, err
		}
		if from <= 0 || to < from || step <= 0 {
			return nil, specErr(n, "sizes_kb", "range needs 0 < from <= to and step > 0 (got from=%d to=%d step=%d)", from, to, step)
		}
		var sizes []int
		for kb := from; kb <= to; kb += step {
			sizes = append(sizes, int(kb))
		}
		return sizes, nil
	}
	items, err := decodeSeq(n, "sizes_kb")
	if err != nil {
		return nil, err
	}
	if len(items) == 0 {
		return nil, specErr(n, "sizes_kb", "needs at least one size")
	}
	sizes := make([]int, len(items))
	for i, item := range items {
		p := fmt.Sprintf("sizes_kb[%d]", i)
		kb, err := decodeInt(item, p)
		if err != nil {
			return nil, err
		}
		if kb <= 0 {
			return nil, specErr(item, p, "must be > 0 KB, got %d", kb)
		}
		sizes[i] = int(kb)
	}
	return sizes, nil
}

// decodePolicies reads the policies axis: built-in names or custom
// {name, retries, backoff_us, fallback} mappings.
func decodePolicies(n *node, path string) ([]Policy, error) {
	if n == nil {
		return nil, nil
	}
	items, err := decodeSeq(n, path)
	if err != nil {
		return nil, err
	}
	if len(items) == 0 {
		return nil, specErr(n, path, "needs at least one policy")
	}
	builtins := make(map[string]prog.Robustness)
	builtins["give-up"] = prog.Robustness{}
	builtins["retry"] = prog.Robustness{Retries: 4, Backoff: 20 * time.Microsecond}
	builtins["retry+fallback"] = prog.Robustness{Retries: 4, Backoff: 20 * time.Microsecond, Fallback: true}
	var out []Policy
	seen := make(map[string]bool)
	for i, item := range items {
		p := fmt.Sprintf("%s[%d]", path, i)
		var pol Policy
		switch kindOf(item) {
		case scalarNode:
			rb, ok := builtins[item.scalar]
			if !ok {
				return nil, specErr(item, p, "unknown policy %q (have give-up, retry, retry+fallback, or a custom mapping)", item.scalar)
			}
			pol = Policy{Label: item.scalar, Robust: rb}
		case mapNode:
			m, err := asMap(item, p)
			if err != nil {
				return nil, err
			}
			nameNode := m.get("name")
			if nameNode == nil {
				return nil, specErr(item, p+".name", "required for a custom policy")
			}
			if pol.Label, err = decodeString(nameNode, p+".name"); err != nil {
				return nil, err
			}
			if r := m.get("retries"); r != nil {
				v, err := decodeInt(r, p+".retries")
				if err != nil {
					return nil, err
				}
				if v < 0 {
					return nil, specErr(r, p+".retries", "must be >= 0, got %d", v)
				}
				pol.Robust.Retries = int(v)
			}
			if b := m.get("backoff_us"); b != nil {
				v, err := decodeInt(b, p+".backoff_us")
				if err != nil {
					return nil, err
				}
				if v < 0 {
					return nil, specErr(b, p+".backoff_us", "must be >= 0, got %d", v)
				}
				pol.Robust.Backoff = time.Duration(v) * time.Microsecond
			}
			if fb := m.get("fallback"); fb != nil {
				if pol.Robust.Fallback, err = decodeBool(fb, p+".fallback"); err != nil {
					return nil, err
				}
			}
			if err := m.finish(); err != nil {
				return nil, err
			}
		default:
			return nil, specErr(item, p, "expected a policy name or mapping, got %s", kindOf(item))
		}
		if seen[pol.Label] {
			return nil, specErr(item, p, "duplicate policy %q", pol.Label)
		}
		seen[pol.Label] = true
		out = append(out, pol)
	}
	return out, nil
}

// decodeFaults reads the fault plan block. scaled selects which rate
// fields are legal: *_scale with a fault_rates axis, *_rate without.
func decodeFaults(n *node, path string, scaled bool) (*FaultSpec, error) {
	m, err := asMap(n, path)
	if err != nil {
		return nil, err
	}
	fs := &FaultSpec{scaled: scaled}
	seedNode := m.get("seed")
	if seedNode == nil {
		return nil, specErr(n, path+".seed", "required (the fault stream must be pinned for reproducibility)")
	}
	if fs.Seed, err = decodeInt(seedNode, path+".seed"); err != nil {
		return nil, err
	}
	rate := func(key string, dst *float64, max float64) error {
		rn := m.get(key)
		if rn == nil {
			return nil
		}
		p := path + "." + key
		v, err := decodeFloat(rn, p)
		if err != nil {
			return err
		}
		if v < 0 || v > max {
			return specErr(rn, p, "must be in [0, %v], got %v", max, v)
		}
		*dst = v
		return nil
	}
	if scaled {
		for _, key := range []string{"fs_rate", "sem_intr_rate", "kill_victim_rate", "kill_attacker_rate"} {
			if rn := m.get(key); rn != nil {
				return nil, specErr(rn, path+"."+key, "absolute rates conflict with the fault_rates axis; use %s_scale", strings.TrimSuffix(key, "_rate"))
			}
		}
		// Scales may exceed 1 (a rate axis entry of 0.1 with scale 2 is
		// rate 0.2) but the product is re-checked at compile time.
		if err := rate("fs_scale", &fs.FSScale, 1e9); err != nil {
			return nil, err
		}
		if err := rate("sem_intr_scale", &fs.SemIntrScale, 1e9); err != nil {
			return nil, err
		}
		if err := rate("kill_victim_scale", &fs.KillVictimScale, 1e9); err != nil {
			return nil, err
		}
		if err := rate("kill_attacker_scale", &fs.KillAttackerScale, 1e9); err != nil {
			return nil, err
		}
	} else {
		for _, key := range []string{"fs_scale", "sem_intr_scale", "kill_victim_scale", "kill_attacker_scale"} {
			if rn := m.get(key); rn != nil {
				return nil, specErr(rn, path+"."+key, "scales require a fault_rates axis; use %s_rate", strings.TrimSuffix(key, "_scale"))
			}
		}
		if err := rate("fs_rate", &fs.FSRate, 1); err != nil {
			return nil, err
		}
		if err := rate("sem_intr_rate", &fs.SemIntrRate, 1); err != nil {
			return nil, err
		}
		if err := rate("kill_victim_rate", &fs.KillVictimRate, 1); err != nil {
			return nil, err
		}
		if err := rate("kill_attacker_rate", &fs.KillAttackerRate, 1); err != nil {
			return nil, err
		}
	}
	dur := func(key string, unit time.Duration, dst *time.Duration) error {
		dn := m.get(key)
		if dn == nil {
			return nil
		}
		p := path + "." + key
		v, err := decodeInt(dn, p)
		if err != nil {
			return err
		}
		if v < 0 {
			return specErr(dn, p, "must be >= 0, got %d", v)
		}
		*dst = time.Duration(v) * unit
		return nil
	}
	if err := dur("sem_intr_delay_us", time.Microsecond, &fs.SemIntrDelay); err != nil {
		return nil, err
	}
	if err := dur("kill_window_ms", time.Millisecond, &fs.KillWindow); err != nil {
		return nil, err
	}
	if err := dur("restart_delay_us", time.Microsecond, &fs.RestartDelay); err != nil {
		return nil, err
	}
	if r := m.get("restart"); r != nil {
		if fs.Restart, err = decodeBool(r, path+".restart"); err != nil {
			return nil, err
		}
	}
	return fs, m.finish()
}

// decodeFleet reads the fleet generator block.
func decodeFleet(n *node, path string) (*FleetSpec, error) {
	m, err := asMap(n, path)
	if err != nil {
		return nil, err
	}
	fl := &FleetSpec{}
	totalNode := m.get("total")
	if totalNode == nil {
		return nil, specErr(n, path+".total", "required")
	}
	total, err := decodeInt(totalNode, path+".total")
	if err != nil {
		return nil, err
	}
	if total <= 0 {
		return nil, specErr(totalNode, path+".total", "must be > 0, got %d", total)
	}
	fl.Total = int(total)
	jsNode := m.get("jitter_seed")
	if jsNode == nil {
		return nil, specErr(n, path+".jitter_seed", "required (the jitter stream must be pinned for reproducibility)")
	}
	if fl.JitterSeed, err = decodeInt(jsNode, path+".jitter_seed"); err != nil {
		return nil, err
	}
	tmplNode := m.get("templates")
	if tmplNode == nil {
		return nil, specErr(n, path+".templates", "required")
	}
	items, err := decodeSeq(tmplNode, path+".templates")
	if err != nil {
		return nil, err
	}
	if len(items) == 0 {
		return nil, specErr(tmplNode, path+".templates", "needs at least one template")
	}
	seen := make(map[string]*node)
	for i, item := range items {
		p := fmt.Sprintf("%s.templates[%d]", path, i)
		t, err := decodeTemplate(item, p)
		if err != nil {
			return nil, err
		}
		if seen[t.Name] != nil {
			return nil, specErr(item, p+".name", "duplicate template name %q", t.Name)
		}
		seen[t.Name] = item
		fl.Templates = append(fl.Templates, t)
	}
	return fl, m.finish()
}

func decodeTemplate(n *node, path string) (Template, error) {
	var t Template
	m, err := asMap(n, path)
	if err != nil {
		return t, err
	}
	nameNode := m.get("name")
	if nameNode == nil {
		return t, specErr(n, path+".name", "required")
	}
	if t.Name, err = decodeString(nameNode, path+".name"); err != nil {
		return t, err
	}
	if !validName(t.Name) {
		return t, specErr(nameNode, path+".name", "must be non-empty [a-z0-9-_] (got %q)", t.Name)
	}
	weightNode := m.get("weight")
	if weightNode == nil {
		return t, specErr(n, path+".weight", "required")
	}
	w, err := decodeInt(weightNode, path+".weight")
	if err != nil {
		return t, err
	}
	if w <= 0 {
		return t, specErr(weightNode, path+".weight", "must be > 0, got %d", w)
	}
	t.Weight = int(w)
	vNode := m.get("victim")
	if vNode == nil {
		return t, specErr(n, path+".victim", "required")
	}
	if t.Victim, err = decodeString(vNode, path+".victim"); err != nil {
		return t, err
	}
	if !victimNames[t.Victim] {
		return t, specErr(vNode, path+".victim", "unknown victim %q", t.Victim)
	}
	aNode := m.get("attacker")
	if aNode == nil {
		return t, specErr(n, path+".attacker", "required")
	}
	if t.Attacker, err = decodeString(aNode, path+".attacker"); err != nil {
		return t, err
	}
	if !attackerNames[t.Attacker] {
		return t, specErr(aNode, path+".attacker", "unknown attacker %q", t.Attacker)
	}
	if s := m.get("syscall"); s != nil {
		if t.Syscall, err = decodeString(s, path+".syscall"); err != nil {
			return t, err
		}
		if t.Syscall != "chown" && t.Syscall != "chmod" {
			return t, specErr(s, path+".syscall", "unknown syscall %q (have chown, chmod)", t.Syscall)
		}
	}
	szNode := m.get("size_kb")
	if szNode == nil {
		return t, specErr(n, path+".size_kb", "required (a fixed KB count or {min, max})")
	}
	switch kindOf(szNode) {
	case scalarNode:
		kb, err := decodeInt(szNode, path+".size_kb")
		if err != nil {
			return t, err
		}
		if kb <= 0 {
			return t, specErr(szNode, path+".size_kb", "must be > 0 KB, got %d", kb)
		}
		t.SizeMinKB, t.SizeMaxKB = int(kb), int(kb)
	case mapNode:
		r, err := asMap(szNode, path+".size_kb")
		if err != nil {
			return t, err
		}
		minNode, maxNode := r.get("min"), r.get("max")
		if minNode == nil || maxNode == nil {
			return t, specErr(szNode, path+".size_kb", "a jitter range needs both min and max")
		}
		mn, err := decodeInt(minNode, path+".size_kb.min")
		if err != nil {
			return t, err
		}
		mx, err := decodeInt(maxNode, path+".size_kb.max")
		if err != nil {
			return t, err
		}
		if err := r.finish(); err != nil {
			return t, err
		}
		if mn <= 0 || mx < mn {
			return t, specErr(szNode, path+".size_kb", "needs 0 < min <= max (got min=%d max=%d)", mn, mx)
		}
		t.SizeMinKB, t.SizeMaxKB = int(mn), int(mx)
	default:
		return t, specErr(szNode, path+".size_kb", "expected a KB count or {min, max}, got %s", kindOf(szNode))
	}
	return t, m.finish()
}

// decodeAssertions reads the pass/fail bounds.
func decodeAssertions(n *node, path string) ([]Assertion, error) {
	items, err := decodeSeq(n, path)
	if err != nil {
		return nil, err
	}
	var out []Assertion
	for i, item := range items {
		p := fmt.Sprintf("%s[%d]", path, i)
		m, err := asMap(item, p)
		if err != nil {
			return nil, err
		}
		a := Assertion{Point: -1, line: item.line}
		metricNode := m.get("metric")
		if metricNode == nil {
			return nil, specErr(item, p+".metric", "required")
		}
		if a.Metric, err = decodeString(metricNode, p+".metric"); err != nil {
			return nil, err
		}
		if !aggregateMetrics[a.Metric] && !pointMetrics[a.Metric] {
			return nil, specErr(metricNode, p+".metric", "unknown metric %q (have %s)", a.Metric, metricList())
		}
		if pt := m.get("point"); pt != nil {
			v, err := decodeInt(pt, p+".point")
			if err != nil {
				return nil, err
			}
			if v < 0 {
				return nil, specErr(pt, p+".point", "must be >= 0, got %d", v)
			}
			a.Point = int(v)
		}
		if tm := m.get("template"); tm != nil {
			if a.Template, err = decodeString(tm, p+".template"); err != nil {
				return nil, err
			}
		}
		if a.Point >= 0 && a.Template != "" {
			return nil, specErr(item, p, "point and template selectors are mutually exclusive")
		}
		if pointMetrics[a.Metric] && a.Point < 0 {
			return nil, specErr(metricNode, p+".metric", "%s is a per-point summary; add a point selector", a.Metric)
		}
		if mn := m.get("min"); mn != nil {
			if a.Min, err = decodeFloat(mn, p+".min"); err != nil {
				return nil, err
			}
			a.HasMin = true
		}
		if mx := m.get("max"); mx != nil {
			if a.Max, err = decodeFloat(mx, p+".max"); err != nil {
				return nil, err
			}
			a.HasMax = true
		}
		if !a.HasMin && !a.HasMax {
			return nil, specErr(item, p, "needs min, max, or both")
		}
		if a.HasMin && a.HasMax && a.Min > a.Max {
			return nil, specErr(item, p, "min %v > max %v can never pass", a.Min, a.Max)
		}
		if err := m.finish(); err != nil {
			return nil, err
		}
		out = append(out, a)
	}
	return out, nil
}

func metricList() string {
	names := make([]string, 0, len(aggregateMetrics)+len(pointMetrics))
	for _, n := range []string{
		"success_rate", "successes", "rounds", "victim_errors", "attack_errors",
		"fs_errors_per_round", "sem_interrupts_per_round", "kills_per_round",
		"restarts_per_round", "l_mean_us", "d_mean_us", "window_mean_us",
	} {
		names = append(names, n)
	}
	return strings.Join(names, ", ")
}

// validate performs the cross-field checks that individual decoders
// cannot: axis compatibility, report requirements, and assertion
// selectors against the compiled grid size.
func (s *Spec) validate(root *node) error {
	if s.Fleet != nil {
		for _, key := range []string{"victim", "attacker", "syscall", "sizes_kb", "policies", "fault_rates"} {
			if root.vals[key] != nil {
				return specErr(&node{line: root.keyLine[key]}, key, "conflicts with fleet (templates carry the workload axes)")
			}
		}
		if s.Report != "table" {
			return specErr(&node{line: root.keyLine["report"]}, "report", "%q requires a fixed grid; fleet scenarios use the default table report", s.Report)
		}
	} else {
		if s.Victim == "" {
			return specErr(root, "victim", "required (or use a fleet)")
		}
		if s.Attacker == "" {
			return specErr(root, "attacker", "required (or use a fleet)")
		}
		if len(s.SizesKB) == 0 {
			return specErr(root, "sizes_kb", "required (or use a fleet)")
		}
	}
	if s.Syscall == "" {
		switch s.Victim {
		case "gedit", "gedit-fixed":
			s.Syscall = "chmod"
		default:
			s.Syscall = "chown"
		}
	}
	if len(s.Policies) > 0 && (s.Victim != "vi" || s.Attacker != "v1") {
		return specErr(&node{line: root.keyLine["policies"]}, "policies",
			"robustness policies apply only to victim vi with attacker v1 (got %s/%s)", s.Victim, s.Attacker)
	}
	if len(s.FaultRates) > 0 && s.Faults == nil {
		return specErr(&node{line: root.keyLine["fault_rates"]}, "fault_rates", "requires a faults block with the plan's *_scale fields")
	}
	switch s.Report {
	case "fig6":
		if len(s.Policies) > 0 || len(s.FaultRates) > 0 {
			return specErr(&node{line: root.keyLine["report"]}, "report", "fig6 charts a pure size axis; drop policies/fault_rates")
		}
		if s.Victim != "vi" || s.Attacker != "v1" {
			return specErr(&node{line: root.keyLine["report"]}, "report", "fig6 is the vi/v1 sweep (got %s/%s)", s.Victim, s.Attacker)
		}
	case "faultsweep":
		if len(s.Policies) == 0 || len(s.FaultRates) == 0 {
			return specErr(&node{line: root.keyLine["report"]}, "report", "faultsweep needs both policies and fault_rates axes")
		}
		if len(s.SizesKB) != 1 {
			return specErr(&node{line: root.keyLine["report"]}, "report", "faultsweep uses exactly one file size, got %d", len(s.SizesKB))
		}
	}
	npoints := s.gridSize()
	for i, a := range s.Assertions {
		p := fmt.Sprintf("assertions[%d]", i)
		if a.Point >= npoints {
			return specErr(&node{line: a.line}, p+".point", "index %d out of range (the scenario compiles to %d points)", a.Point, npoints)
		}
		if a.Template != "" {
			if s.Fleet == nil {
				return specErr(&node{line: a.line}, p+".template", "template selectors require a fleet")
			}
			found := false
			for _, t := range s.Fleet.Templates {
				if t.Name == a.Template {
					found = true
					break
				}
			}
			if !found {
				return specErr(&node{line: a.line}, p+".template", "unknown template %q", a.Template)
			}
		}
	}
	return nil
}

// gridSize is the number of sweep points the spec compiles to.
func (s *Spec) gridSize() int {
	if s.Fleet != nil {
		return s.Fleet.Total
	}
	n := len(s.SizesKB)
	if len(s.Policies) > 0 {
		n *= len(s.Policies)
	}
	if len(s.FaultRates) > 0 {
		n *= len(s.FaultRates)
	}
	return n
}
