package scenario

// Hand-rolled loader for the scenario file format. The repo takes no
// dependencies, so this implements the small YAML subset the scenario
// schema needs rather than pulling in a YAML library:
//
//   - block maps ("key: value", "key:" + indented block)
//   - block sequences ("- item", including the compact "- key: value"
//     map-item form)
//   - flow sequences ("[a, b, c]") and flow maps ("{a: 1, b: 2}")
//   - single- and double-quoted strings, "#" comments, blank lines
//
// Indentation must be spaces (a tab in indentation is an error, as in
// YAML proper), and every node remembers its source line so validation
// errors can name the offending path AND line. Files ending in ".json"
// are decoded as JSON into the same node tree (line numbers unavailable).

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

type nodeKind int

const (
	nullNode nodeKind = iota
	scalarNode
	mapNode
	seqNode
)

func (k nodeKind) String() string {
	switch k {
	case nullNode:
		return "null"
	case scalarNode:
		return "scalar"
	case mapNode:
		return "mapping"
	case seqNode:
		return "sequence"
	}
	return "unknown"
}

// node is one parsed value. line is 1-based; 0 means "unknown" (JSON
// input), and error formatting omits it.
type node struct {
	line    int
	kind    nodeKind
	scalar  string
	quoted  bool // scalar came quoted: always a string, never a number/bool
	keys    []string
	vals    map[string]*node
	keyLine map[string]int
	items   []*node
}

// srcLine is one logical (non-blank, comment-stripped) input line.
type srcLine struct {
	indent  int
	content string
	line    int
}

type yamlParser struct {
	lines []srcLine
	i     int
}

// parseYAML parses a whole document into a node tree.
func parseYAML(data []byte) (*node, error) {
	lines, err := logicalLines(data)
	if err != nil {
		return nil, err
	}
	if len(lines) == 0 {
		return &node{kind: nullNode}, nil
	}
	p := &yamlParser{lines: lines}
	n, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	if p.i != len(p.lines) {
		l := p.lines[p.i]
		return nil, fmt.Errorf("line %d: unexpected content %q after the document", l.line, l.content)
	}
	return n, nil
}

// logicalLines splits the input, strips comments, and drops blanks.
func logicalLines(data []byte) ([]srcLine, error) {
	var out []srcLine
	for i, raw := range strings.Split(string(data), "\n") {
		lineno := i + 1
		indent := 0
		for indent < len(raw) && raw[indent] == ' ' {
			indent++
		}
		if indent < len(raw) && raw[indent] == '\t' {
			return nil, fmt.Errorf("line %d: tab in indentation (use spaces)", lineno)
		}
		content := stripComment(raw[indent:])
		if content == "" {
			continue
		}
		if content == "---" {
			continue // document start marker
		}
		out = append(out, srcLine{indent: indent, content: content, line: lineno})
	}
	return out, nil
}

// stripComment removes a trailing "# ..." comment, honoring quotes. A '#'
// only opens a comment at the start of the content or after whitespace.
func stripComment(s string) string {
	inS, inD := false, false
	for i := 0; i < len(s); i++ {
		switch c := s[i]; {
		case c == '\'' && !inD:
			inS = !inS
		case c == '"' && !inS:
			inD = !inD
		case c == '#' && !inS && !inD && (i == 0 || s[i-1] == ' ' || s[i-1] == '\t'):
			return strings.TrimRight(s[:i], " \t")
		}
	}
	return strings.TrimRight(s, " \t")
}

// keySplit splits "key: rest" at the first top-level colon followed by a
// space (or end of line). Colons inside quotes or flow brackets don't
// count, so "label: 'a: b'" and "sizes: [1, 2]" split correctly.
func keySplit(s string) (key, rest string, ok bool) {
	depth := 0
	inS, inD := false, false
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '\'' && !inD:
			inS = !inS
		case c == '"' && !inS:
			inD = !inD
		case inS || inD:
		case c == '[' || c == '{':
			depth++
		case c == ']' || c == '}':
			depth--
		case c == ':' && depth == 0 && (i+1 == len(s) || s[i+1] == ' '):
			return strings.TrimSpace(s[:i]), strings.TrimSpace(s[i+1:]), true
		}
	}
	return "", "", false
}

func isSeqItem(content string) bool {
	return content == "-" || strings.HasPrefix(content, "- ")
}

// parseBlock parses the value starting at the current line, whose indent
// defines the block's indent.
func (p *yamlParser) parseBlock() (*node, error) {
	l := p.lines[p.i]
	if isSeqItem(l.content) {
		return p.parseSeq(l.indent)
	}
	if _, _, ok := keySplit(l.content); ok {
		return p.parseMap(l.indent)
	}
	p.i++
	return parseInline(l.content, l.line)
}

func (p *yamlParser) parseMap(indent int) (*node, error) {
	n := &node{
		kind:    mapNode,
		line:    p.lines[p.i].line,
		vals:    make(map[string]*node),
		keyLine: make(map[string]int),
	}
	for p.i < len(p.lines) {
		l := p.lines[p.i]
		if l.indent < indent {
			break
		}
		if l.indent > indent {
			return nil, fmt.Errorf("line %d: unexpected indentation", l.line)
		}
		if isSeqItem(l.content) {
			return nil, fmt.Errorf("line %d: sequence item in a mapping (expected \"key: value\")", l.line)
		}
		key, rest, ok := keySplit(l.content)
		if !ok || key == "" {
			return nil, fmt.Errorf("line %d: expected \"key: value\", got %q", l.line, l.content)
		}
		key = unquoteScalarKey(key)
		if _, dup := n.vals[key]; dup {
			return nil, fmt.Errorf("line %d: duplicate key %q", l.line, key)
		}
		p.i++
		var val *node
		var err error
		if rest == "" {
			if p.i < len(p.lines) && p.lines[p.i].indent > indent {
				val, err = p.parseBlock()
			} else {
				val = &node{kind: nullNode, line: l.line}
			}
		} else {
			val, err = parseInline(rest, l.line)
		}
		if err != nil {
			return nil, err
		}
		n.keys = append(n.keys, key)
		n.vals[key] = val
		n.keyLine[key] = l.line
	}
	return n, nil
}

func (p *yamlParser) parseSeq(indent int) (*node, error) {
	n := &node{kind: seqNode, line: p.lines[p.i].line}
	for p.i < len(p.lines) {
		l := p.lines[p.i]
		if l.indent < indent {
			break
		}
		if l.indent > indent {
			return nil, fmt.Errorf("line %d: unexpected indentation", l.line)
		}
		if !isSeqItem(l.content) {
			break
		}
		var item *node
		var err error
		if l.content == "-" {
			p.i++
			if p.i < len(p.lines) && p.lines[p.i].indent > indent {
				item, err = p.parseBlock()
			} else {
				item = &node{kind: nullNode, line: l.line}
			}
		} else {
			// Compact form: the item's value starts on the dash line. The
			// content after "- " becomes a virtual line indented at its own
			// column, so "- key: value" plus deeper keys parse as one map.
			rest := strings.TrimLeft(l.content[1:], " ")
			restIndent := l.indent + (len(l.content) - len(rest))
			p.lines[p.i] = srcLine{indent: restIndent, content: rest, line: l.line}
			item, err = p.parseBlock()
		}
		if err != nil {
			return nil, err
		}
		n.items = append(n.items, item)
	}
	return n, nil
}

// parseInline parses a value that fits on one line: a flow collection, a
// quoted string, or a plain scalar.
func parseInline(s string, line int) (*node, error) {
	s = strings.TrimSpace(s)
	switch {
	case s == "" || s == "~" || s == "null":
		return &node{kind: nullNode, line: line}, nil
	case s[0] == '[' || s[0] == '{':
		f := &flowParser{s: s, line: line}
		n, err := f.parseValue()
		if err != nil {
			return nil, err
		}
		f.skipSpaces()
		if f.i != len(f.s) {
			return nil, fmt.Errorf("line %d: trailing content %q after flow value", line, f.s[f.i:])
		}
		return n, nil
	case s[0] == '"' || s[0] == '\'':
		f := &flowParser{s: s, line: line}
		n, err := f.parseQuoted()
		if err != nil {
			return nil, err
		}
		if f.i != len(f.s) {
			return nil, fmt.Errorf("line %d: trailing content %q after quoted string", line, f.s[f.i:])
		}
		return n, nil
	default:
		return &node{kind: scalarNode, scalar: s, line: line}, nil
	}
}

func unquoteScalarKey(key string) string {
	if len(key) >= 2 && (key[0] == '"' || key[0] == '\'') && key[len(key)-1] == key[0] {
		return key[1 : len(key)-1]
	}
	return key
}

// flowParser parses "[...]", "{...}", and quoted strings.
type flowParser struct {
	s    string
	i    int
	line int
}

func (f *flowParser) skipSpaces() {
	for f.i < len(f.s) && (f.s[f.i] == ' ' || f.s[f.i] == '\t') {
		f.i++
	}
}

func (f *flowParser) errf(format string, args ...any) error {
	return fmt.Errorf("line %d: %s", f.line, fmt.Sprintf(format, args...))
}

func (f *flowParser) parseValue() (*node, error) {
	f.skipSpaces()
	if f.i >= len(f.s) {
		return nil, f.errf("unexpected end of flow value")
	}
	switch f.s[f.i] {
	case '[':
		return f.parseFlowSeq()
	case '{':
		return f.parseFlowMap()
	case '"', '\'':
		return f.parseQuoted()
	default:
		start := f.i
		for f.i < len(f.s) && !strings.ContainsRune(",]}", rune(f.s[f.i])) {
			f.i++
		}
		sc := strings.TrimSpace(f.s[start:f.i])
		if sc == "" || sc == "~" || sc == "null" {
			return &node{kind: nullNode, line: f.line}, nil
		}
		return &node{kind: scalarNode, scalar: sc, line: f.line}, nil
	}
}

func (f *flowParser) parseFlowSeq() (*node, error) {
	n := &node{kind: seqNode, line: f.line}
	f.i++ // '['
	f.skipSpaces()
	if f.i < len(f.s) && f.s[f.i] == ']' {
		f.i++
		return n, nil
	}
	for {
		item, err := f.parseValue()
		if err != nil {
			return nil, err
		}
		n.items = append(n.items, item)
		f.skipSpaces()
		if f.i >= len(f.s) {
			return nil, f.errf("unterminated flow sequence")
		}
		switch f.s[f.i] {
		case ',':
			f.i++
		case ']':
			f.i++
			return n, nil
		default:
			return nil, f.errf("expected ',' or ']' in flow sequence, got %q", f.s[f.i])
		}
	}
}

func (f *flowParser) parseFlowMap() (*node, error) {
	n := &node{
		kind:    mapNode,
		line:    f.line,
		vals:    make(map[string]*node),
		keyLine: make(map[string]int),
	}
	f.i++ // '{'
	f.skipSpaces()
	if f.i < len(f.s) && f.s[f.i] == '}' {
		f.i++
		return n, nil
	}
	for {
		f.skipSpaces()
		start := f.i
		for f.i < len(f.s) && f.s[f.i] != ':' && f.s[f.i] != '}' {
			f.i++
		}
		if f.i >= len(f.s) || f.s[f.i] != ':' {
			return nil, f.errf("expected \"key: value\" in flow mapping")
		}
		key := unquoteScalarKey(strings.TrimSpace(f.s[start:f.i]))
		if key == "" {
			return nil, f.errf("empty key in flow mapping")
		}
		if _, dup := n.vals[key]; dup {
			return nil, f.errf("duplicate key %q", key)
		}
		f.i++ // ':'
		val, err := f.parseValue()
		if err != nil {
			return nil, err
		}
		n.keys = append(n.keys, key)
		n.vals[key] = val
		n.keyLine[key] = f.line
		f.skipSpaces()
		if f.i >= len(f.s) {
			return nil, f.errf("unterminated flow mapping")
		}
		switch f.s[f.i] {
		case ',':
			f.i++
		case '}':
			f.i++
			return n, nil
		default:
			return nil, f.errf("expected ',' or '}' in flow mapping, got %q", f.s[f.i])
		}
	}
}

func (f *flowParser) parseQuoted() (*node, error) {
	quote := f.s[f.i]
	f.i++
	var sb strings.Builder
	for f.i < len(f.s) {
		c := f.s[f.i]
		switch {
		case c == quote && quote == '\'' && f.i+1 < len(f.s) && f.s[f.i+1] == '\'':
			sb.WriteByte('\'') // YAML single-quote escape: ''
			f.i += 2
		case c == quote:
			f.i++
			return &node{kind: scalarNode, scalar: sb.String(), quoted: true, line: f.line}, nil
		case c == '\\' && quote == '"' && f.i+1 < len(f.s):
			switch e := f.s[f.i+1]; e {
			case 'n':
				sb.WriteByte('\n')
			case 't':
				sb.WriteByte('\t')
			case '"', '\\', '/':
				sb.WriteByte(e)
			default:
				return nil, f.errf("unsupported escape \\%c in double-quoted string", e)
			}
			f.i += 2
		default:
			sb.WriteByte(c)
			f.i++
		}
	}
	return nil, f.errf("unterminated quoted string")
}

// parseJSON decodes a JSON document into the same node tree. JSON has no
// line information here, so nodes carry line 0 and errors name paths only.
func parseJSON(data []byte) (*node, error) {
	var v any
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.UseNumber()
	if err := dec.Decode(&v); err != nil {
		return nil, fmt.Errorf("json: %w", err)
	}
	return jsonNode(v), nil
}

func jsonNode(v any) *node {
	switch t := v.(type) {
	case nil:
		return &node{kind: nullNode}
	case map[string]any:
		n := &node{kind: mapNode, vals: make(map[string]*node), keyLine: make(map[string]int)}
		keys := make([]string, 0, len(t))
		for k := range t {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			n.keys = append(n.keys, k)
			n.vals[k] = jsonNode(t[k])
		}
		return n
	case []any:
		n := &node{kind: seqNode}
		for _, item := range t {
			n.items = append(n.items, jsonNode(item))
		}
		return n
	case string:
		return &node{kind: scalarNode, scalar: t, quoted: true}
	case bool:
		return &node{kind: scalarNode, scalar: strconv.FormatBool(t)}
	case json.Number:
		return &node{kind: scalarNode, scalar: t.String()}
	default:
		return &node{kind: scalarNode, scalar: fmt.Sprint(t)}
	}
}
