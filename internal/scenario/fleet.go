package scenario

// Fleet generation: stamping out hundreds-to-thousands of
// parameter-jittered victims from weighted templates. All jitter draws
// come from one splitmix64 stream seeded by fleet.jitter_seed and are
// consumed entirely at compile time, before any round runs — so the
// jitter stream is disjoint from the scheduling, noise, and fault
// streams by construction (those draw from per-round streams derived
// from Scenario.Seed, which the generator only assigns, never samples).

import (
	"fmt"

	"tocttou/internal/core"
)

// splitmix64 is the jitter PRNG: tiny, stdlib-free, and with a
// well-known reference output, so the fleet a spec generates is
// reproducible from the file alone on any platform.
type splitmix64 struct{ state uint64 }

func (s *splitmix64) next() uint64 {
	s.state += 0x9E3779B97F4A7C15
	z := s.state
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return z
}

// intn draws a uniform integer in [0, n) by rejection, avoiding the
// modulo bias a bare % n would add for n not dividing 2^64.
func (s *splitmix64) intn(n int) int {
	bound := uint64(n)
	limit := -bound % bound // (2^64 - bound) mod bound: rejection zone size
	for {
		v := s.next()
		if v >= limit || limit == 0 {
			return int(v % bound)
		}
	}
}

// compileFleet lowers a fleet spec: member k picks a weighted template,
// jitters its file size, and runs at seed spec.Seed + k*spec.SeedStride.
func compileFleet(s *Spec) (*Compiled, error) {
	fl := s.Fleet
	c := &Compiled{Spec: s}
	totalWeight := 0
	for _, t := range fl.Templates {
		totalWeight += t.Weight
	}
	rng := &splitmix64{state: uint64(fl.JitterSeed)}
	for k := 0; k < fl.Total; k++ {
		draw := rng.intn(totalWeight)
		var tmpl Template
		for _, t := range fl.Templates {
			if draw < t.Weight {
				tmpl = t
				break
			}
			draw -= t.Weight
		}
		kb := tmpl.SizeMinKB
		if tmpl.SizeMaxKB > tmpl.SizeMinKB {
			kb += rng.intn(tmpl.SizeMaxKB - tmpl.SizeMinKB + 1)
		}
		vict, att, err := buildPrograms(tmpl.Victim, tmpl.Attacker, Policy{}, false)
		if err != nil {
			return nil, fmt.Errorf("fleet member %d (template %s): %w", k, tmpl.Name, err)
		}
		use := tmpl.Syscall
		if use == "" {
			use = defaultSyscall(tmpl.Victim)
		}
		sc := core.Scenario{
			Machine:    s.Machine,
			Victim:     vict,
			Attacker:   att,
			UseSyscall: use,
			FileSize:   int64(kb) << 10,
			Seed:       s.Seed + int64(k)*s.SeedStride,
			Trace:      s.Trace,
			Watchdog:   s.Watchdog,
		}
		if s.Faults != nil {
			plan, err := s.Faults.plan(0)
			if err != nil {
				return nil, fmt.Errorf("fleet member %d: %w", k, err)
			}
			sc.Faults = plan
		}
		c.Points = append(c.Points, core.SweepPoint{Scenario: sc, Rounds: s.Rounds})
		c.Meta = append(c.Meta, PointMeta{
			Label:    fmt.Sprintf("%s#%d %s/%s %dKB", tmpl.Name, k, tmpl.Victim, tmpl.Attacker, kb),
			Victim:   tmpl.Victim,
			Attacker: tmpl.Attacker,
			SizeKB:   kb,
			Template: tmpl.Name,
		})
	}
	return c, nil
}
