package scenario

// Equivalence suite: the shipped fig6/faultsweep scenario files must be
// the hand-wired experiments in declarative clothing. Two layers:
// structural (the full-fidelity files compile to exactly the grids the
// experiments build — machine, seeds, sizes, fault plans, watchdogs)
// and behavioral (reduced-budget twins produce bit-identical campaign
// results AND byte-identical renderings). The full-budget byte-for-byte
// golden diff runs in CI via `make scenario-check`.

import (
	"bytes"
	"path/filepath"
	"testing"
	"time"

	"tocttou/internal/experiments"
	"tocttou/internal/fault"
	"tocttou/internal/machine"
)

func loadExample(t *testing.T, name string) *Spec {
	t.Helper()
	spec, err := Load(filepath.Join("..", "..", "examples", "scenarios", name))
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

// TestFig6ScenarioStructure pins the shipped fig6.yaml to the exact grid
// the fig6 experiment hand-wires.
func TestFig6ScenarioStructure(t *testing.T) {
	spec := loadExample(t, "fig6.yaml")
	c, err := Compile(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Points) != 10 {
		t.Fatalf("fig6.yaml compiles to %d points, want 10", len(c.Points))
	}
	uni := machine.Uniprocessor()
	for i, p := range c.Points {
		sc := p.Scenario
		wantKB := 100 * (i + 1)
		if sc.FileSize != int64(wantKB)<<10 {
			t.Errorf("point %d: FileSize %d, want %d KB", i, sc.FileSize, wantKB)
		}
		if sc.Seed != 1007+int64(i)*7919 {
			t.Errorf("point %d: Seed %d, want %d", i, sc.Seed, 1007+int64(i)*7919)
		}
		if sc.Machine.Name != uni.Name {
			t.Errorf("point %d: machine %q, want %q", i, sc.Machine.Name, uni.Name)
		}
		if sc.UseSyscall != "chown" || sc.Trace || sc.Watchdog != 0 || sc.Faults.Enabled() {
			t.Errorf("point %d: stray knobs set: %+v", i, sc)
		}
		if p.Rounds != 500 {
			t.Errorf("point %d: rounds %d, want 500", i, p.Rounds)
		}
	}
}

// TestFaultSweepScenarioStructure pins faultsweep.yaml to the experiment's
// (rate × policy) grid, including the exact fault plan.
func TestFaultSweepScenarioStructure(t *testing.T) {
	spec := loadExample(t, "faultsweep.yaml")
	c, err := Compile(spec)
	if err != nil {
		t.Fatal(err)
	}
	rates := []float64{0, 0.002, 0.01, 0.05, 0.2}
	policies := experiments.Policies()
	if len(c.Points) != len(rates)*len(policies) {
		t.Fatalf("faultsweep.yaml compiles to %d points, want %d", len(c.Points), len(rates)*len(policies))
	}
	for ri, rate := range rates {
		for pi, pol := range policies {
			idx := ri*len(policies) + pi
			sc := c.Points[idx].Scenario
			if sc.Seed != 6007+int64(idx)*7121 {
				t.Errorf("point %d: Seed %d, want %d", idx, sc.Seed, 6007+int64(idx)*7121)
			}
			want := fault.Plan{
				Seed:             9973,
				FSRate:           rate,
				SemIntrRate:      rate,
				SemIntrDelay:     time.Microsecond,
				KillVictimRate:   rate / 2,
				KillAttackerRate: rate / 2,
				KillWindow:       4 * time.Millisecond,
				Restart:          true,
			}
			if sc.Faults.Seed != want.Seed || sc.Faults.FSRate != want.FSRate ||
				sc.Faults.SemIntrRate != want.SemIntrRate ||
				sc.Faults.SemIntrDelay != want.SemIntrDelay ||
				sc.Faults.KillVictimRate != want.KillVictimRate ||
				sc.Faults.KillAttackerRate != want.KillAttackerRate ||
				sc.Faults.KillWindow != want.KillWindow ||
				sc.Faults.Restart != want.Restart ||
				sc.Faults.RestartDelay != 0 {
				t.Errorf("point %d: fault plan %+v, want %+v", idx, sc.Faults, want)
			}
			if sc.Watchdog != 5*time.Second || sc.FileSize != 100<<10 {
				t.Errorf("point %d: watchdog %v size %d", idx, sc.Watchdog, sc.FileSize)
			}
			if c.Meta[idx].Policy != pol.Label || c.Meta[idx].Rate != rate {
				t.Errorf("point %d: meta %+v", idx, c.Meta[idx])
			}
		}
	}
}

// TestFig6ScenarioEquivalentToExperiment runs a reduced-budget twin of
// the shipped file against experiments.Fig6 with the same overrides:
// bit-identical campaign results, byte-identical rendering.
func TestFig6ScenarioEquivalentToExperiment(t *testing.T) {
	spec := loadExample(t, "fig6.yaml")
	spec.Rounds = 40
	spec.SizesKB = []int{100, 300}
	spec.Assertions = nil

	out, err := Run(spec, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := experiments.Fig6(experiments.Options{Rounds: 40, Sizes: []int{100, 300}})
	if err != nil {
		t.Fatal(err)
	}
	fig6 := res.(*experiments.Fig6Result)
	if len(fig6.Rows) != len(out.Results) {
		t.Fatalf("row counts differ: %d vs %d", len(fig6.Rows), len(out.Results))
	}
	for i, row := range fig6.Rows {
		if out.Results[i] != row.Result {
			t.Errorf("point %d: scenario result %+v != experiment result %+v", i, out.Results[i], row.Result)
		}
	}
	var got, want bytes.Buffer
	if err := out.Render(&got); err != nil {
		t.Fatal(err)
	}
	// The experiment's Rounds header reflects its own budget.
	if err := fig6.Render(&want); err != nil {
		t.Fatal(err)
	}
	if got.String() != want.String() {
		t.Errorf("renderings differ:\n--- scenario ---\n%s\n--- experiment ---\n%s", got.String(), want.String())
	}
}

// TestFaultSweepScenarioEquivalentToExperiment is the same contract for
// the faultsweep pair.
func TestFaultSweepScenarioEquivalentToExperiment(t *testing.T) {
	spec := loadExample(t, "faultsweep.yaml")
	spec.Rounds = 30
	spec.FaultRates = []float64{0, 0.05}

	out, err := Run(spec, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := experiments.FaultSweep(experiments.Options{Rounds: 30, FaultRates: []float64{0, 0.05}})
	if err != nil {
		t.Fatal(err)
	}
	fsw := res.(*experiments.FaultSweepResult)
	if len(fsw.Rows) != len(out.Results) {
		t.Fatalf("row counts differ: %d vs %d", len(fsw.Rows), len(out.Results))
	}
	for i, row := range fsw.Rows {
		if out.Results[i] != row.Result {
			t.Errorf("point %d (%s p=%.3f): results differ", i, row.Policy, row.Rate)
		}
	}
	var got, want bytes.Buffer
	if err := out.Render(&got); err != nil {
		t.Fatal(err)
	}
	if err := fsw.Render(&want); err != nil {
		t.Fatal(err)
	}
	if got.String() != want.String() {
		t.Errorf("renderings differ:\n--- scenario ---\n%s\n--- experiment ---\n%s", got.String(), want.String())
	}
}

// TestScenarioCheckpointComposes pins that -scenario × -checkpoint rides
// the sweep engine's crash-safe path: a checkpointed scenario run matches
// the direct run bit-for-bit, and a rerun resumes from the file without
// re-simulating (memoized restores count, nothing executes twice).
func TestScenarioCheckpointComposes(t *testing.T) {
	spec := loadExample(t, "fig6.yaml")
	spec.Rounds = 25
	spec.SizesKB = []int{100, 200}
	spec.Assertions = nil

	direct, err := Run(spec, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ckpt := filepath.Join(t.TempDir(), "scenario.ckpt")
	first, err := Run(spec, RunOptions{Checkpoint: ckpt})
	if err != nil {
		t.Fatal(err)
	}
	for i := range direct.Results {
		if direct.Results[i] != first.Results[i] {
			t.Errorf("point %d: checkpointed result differs from direct", i)
		}
	}
	second, err := Run(spec, RunOptions{Checkpoint: ckpt})
	if err != nil {
		t.Fatal(err)
	}
	if second.Stats.RoundsExecuted != 0 {
		t.Errorf("resumed run executed %d rounds, want 0 (all restored)", second.Stats.RoundsExecuted)
	}
	for i := range direct.Results {
		if direct.Results[i] != second.Results[i] {
			t.Errorf("point %d: resumed result differs from direct", i)
		}
	}
}
