package scenario

// Compilation: a validated Spec lowers to the exact []core.SweepPoint a
// hand-wired experiment would build, so the sweep engine's memoization,
// coalescing, checkpointing, and adaptive budgets apply unchanged — and
// so the shipped fig6/faultsweep scenarios produce byte-identical
// campaigns to their Go-wired twins.

import (
	"fmt"

	"tocttou/internal/attack"
	"tocttou/internal/core"
	"tocttou/internal/fault"
	"tocttou/internal/prog"
	"tocttou/internal/victim"
)

// PointMeta labels one compiled sweep point for rendering and assertion
// selection.
type PointMeta struct {
	Label    string
	Victim   string
	Attacker string
	SizeKB   int
	// Rate is the fault_rates axis value (0 without the axis).
	Rate float64
	// Policy is the policies axis label ("" without the axis).
	Policy string
	// Template is the fleet template name ("" outside fleets).
	Template string
}

// Compiled is a scenario lowered to sweep points.
type Compiled struct {
	Spec   *Spec
	Points []core.SweepPoint
	Meta   []PointMeta
}

// Compile lowers a validated spec to its sweep grid. The grid order is
// fault_rates (outer) × policies × sizes (inner); point i runs at seed
// spec.Seed + i*spec.SeedStride, matching the hand-wired experiments'
// stride layout exactly.
func Compile(s *Spec) (*Compiled, error) {
	if s.Fleet != nil {
		return compileFleet(s)
	}
	c := &Compiled{Spec: s}
	rates := s.FaultRates
	if len(rates) == 0 {
		rates = []float64{0}
	}
	policies := s.Policies
	if len(policies) == 0 {
		policies = []Policy{{}}
	}
	for ri, rate := range rates {
		for pi, pol := range policies {
			for si, kb := range s.SizesKB {
				idx := (ri*len(policies)+pi)*len(s.SizesKB) + si
				vict, att, err := buildPrograms(s.Victim, s.Attacker, pol, len(s.Policies) > 0)
				if err != nil {
					return nil, err
				}
				sc := core.Scenario{
					Machine:    s.Machine,
					Victim:     vict,
					Attacker:   att,
					UseSyscall: s.Syscall,
					FileSize:   int64(kb) << 10,
					Seed:       s.Seed + int64(idx)*s.SeedStride,
					Trace:      s.Trace,
					Watchdog:   s.Watchdog,
				}
				if s.Faults != nil {
					plan, err := s.Faults.plan(rate)
					if err != nil {
						return nil, fmt.Errorf("point %d: %w", idx, err)
					}
					sc.Faults = plan
				}
				label := fmt.Sprintf("%s/%s %dKB", s.Victim, s.Attacker, kb)
				if len(s.FaultRates) > 0 {
					label = fmt.Sprintf("p=%.3f %s", rate, label)
				}
				if len(s.Policies) > 0 {
					label += " " + pol.Label
				}
				c.Points = append(c.Points, core.SweepPoint{Scenario: sc, Rounds: s.Rounds})
				c.Meta = append(c.Meta, PointMeta{
					Label:    label,
					Victim:   s.Victim,
					Attacker: s.Attacker,
					SizeKB:   kb,
					Rate:     rate,
					Policy:   pol.Label,
				})
			}
		}
	}
	return c, nil
}

// buildPrograms instantiates the named victim and attacker, applying the
// robustness policy when the policies axis is active (validation already
// restricted that axis to the vi/v1 pair, the programs carrying Robust).
func buildPrograms(victimName, attackerName string, pol Policy, applyPolicy bool) (prog.Program, prog.Program, error) {
	var vict prog.Program
	switch victimName {
	case "vi":
		v := victim.NewVi()
		if applyPolicy {
			v.Robust = pol.Robust
		}
		vict = v
	case "gedit":
		vict = victim.NewGedit()
	case "rpm":
		vict = victim.NewAlwaysSuspended()
	case "vi-fixed":
		vict = victim.NewViFixed()
	case "gedit-fixed":
		vict = victim.NewGeditFixed()
	default:
		return nil, nil, fmt.Errorf("unknown victim %q", victimName)
	}
	var att prog.Program
	switch attackerName {
	case "v1":
		a := attack.NewV1()
		if applyPolicy {
			a.Robust = pol.Robust
		}
		att = a
	case "v2":
		att = attack.NewV2()
	case "pipelined":
		att = attack.NewPipelined()
	case "flipflop":
		att = attack.NewFlipFlop()
	case "idle":
		att = attack.Idle{}
	default:
		return nil, nil, fmt.Errorf("unknown attacker %q", attackerName)
	}
	return vict, att, nil
}

// defaultSyscall mirrors the spec-level default for fleet templates.
func defaultSyscall(victimName string) string {
	switch victimName {
	case "gedit", "gedit-fixed":
		return "chmod"
	}
	return "chown"
}

// plan instantiates the per-point fault plan. Under a fault_rates axis
// the *_scale fields multiply the axis rate; scaled products that leave
// [0, 1] are compile-time errors (the parser cannot see the product).
func (f *FaultSpec) plan(rate float64) (fault.Plan, error) {
	p := fault.Plan{
		Seed:         f.Seed,
		SemIntrDelay: f.SemIntrDelay,
		KillWindow:   f.KillWindow,
		Restart:      f.Restart,
		RestartDelay: f.RestartDelay,
	}
	if f.scaled {
		p.FSRate = rate * f.FSScale
		p.SemIntrRate = rate * f.SemIntrScale
		p.KillVictimRate = rate * f.KillVictimScale
		p.KillAttackerRate = rate * f.KillAttackerScale
		for name, v := range map[string]float64{
			"fs_scale":            p.FSRate,
			"sem_intr_scale":      p.SemIntrRate,
			"kill_victim_scale":   p.KillVictimRate,
			"kill_attacker_scale": p.KillAttackerRate,
		} {
			if v < 0 || v > 1 {
				return fault.Plan{}, fmt.Errorf("faults.%s × rate %v = %v outside [0, 1]", name, rate, v)
			}
		}
	} else {
		p.FSRate = f.FSRate
		p.SemIntrRate = f.SemIntrRate
		p.KillVictimRate = f.KillVictimRate
		p.KillAttackerRate = f.KillAttackerRate
	}
	return p, nil
}
