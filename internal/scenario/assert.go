package scenario

// Assertion evaluation: pass/fail bounds on the campaign outcome,
// evaluated after the sweep completes. The first failing assertion turns
// into an *AssertionError naming the assertion, its selection, the
// measured value, and the violated bound — the CLI exits non-zero on it.

import (
	"fmt"

	"tocttou/internal/core"
)

// AssertionError reports the first failed assertion.
type AssertionError struct {
	// Index is the assertion's position in the spec's assertions list.
	Index     int
	Assertion Assertion
	// Value is the measured metric.
	Value float64
}

func (e *AssertionError) Error() string {
	a := e.Assertion
	where := "aggregate"
	switch {
	case a.Point >= 0:
		where = fmt.Sprintf("point %d", a.Point)
	case a.Template != "":
		where = fmt.Sprintf("template %q", a.Template)
	}
	bound := ""
	switch {
	case a.HasMin && e.Value < a.Min:
		bound = fmt.Sprintf("below min %v", a.Min)
	case a.HasMax && e.Value > a.Max:
		bound = fmt.Sprintf("above max %v", a.Max)
	}
	return fmt.Sprintf("assertion %d failed: %s over %s = %v, %s", e.Index, a.Metric, where, e.Value, bound)
}

// CheckAssertions evaluates every assertion against the outcome and
// returns the first failure (nil when all pass).
func (o *Outcome) CheckAssertions() error {
	for i, a := range o.Spec.Assertions {
		v, err := o.evalMetric(a)
		if err != nil {
			return fmt.Errorf("assertion %d: %w", i, err)
		}
		if (a.HasMin && v < a.Min) || (a.HasMax && v > a.Max) {
			return &AssertionError{Index: i, Assertion: a, Value: v}
		}
	}
	return nil
}

// evalMetric measures one assertion's metric over its selection. The
// aggregate metrics sum the selected points' counters before forming
// rates, so a template selector measures the template's pooled behavior
// rather than an average of per-member rates.
func (o *Outcome) evalMetric(a Assertion) (float64, error) {
	var sel []int
	switch {
	case a.Point >= 0:
		if a.Point >= len(o.Results) {
			return 0, fmt.Errorf("point %d out of range (%d points)", a.Point, len(o.Results))
		}
		sel = []int{a.Point}
	case a.Template != "":
		for i, m := range o.Compiled.Meta {
			if m.Template == a.Template {
				sel = append(sel, i)
			}
		}
		if len(sel) == 0 {
			return 0, fmt.Errorf("template %q selected no points", a.Template)
		}
	default:
		sel = make([]int, len(o.Results))
		for i := range sel {
			sel[i] = i
		}
	}

	if pointMetrics[a.Metric] {
		res := o.Results[sel[0]]
		switch a.Metric {
		case "l_mean_us":
			return res.L.Mean(), nil
		case "d_mean_us":
			return res.D.Mean(), nil
		case "window_mean_us":
			return res.Window.Mean(), nil
		}
	}

	var sum core.CampaignResult
	for _, i := range sel {
		r := o.Results[i]
		sum.Rounds += r.Rounds
		sum.Successes += r.Successes
		sum.VictimErrors += r.VictimErrors
		sum.AttackErrors += r.AttackErrors
		sum.Faults.Add(r.Faults)
	}
	n := float64(sum.Rounds)
	switch a.Metric {
	case "success_rate":
		if n == 0 {
			return 0, nil
		}
		return float64(sum.Successes) / n, nil
	case "successes":
		return float64(sum.Successes), nil
	case "rounds":
		return n, nil
	case "victim_errors":
		return float64(sum.VictimErrors), nil
	case "attack_errors":
		return float64(sum.AttackErrors), nil
	case "fs_errors_per_round":
		return perRound(float64(sum.Faults.FSErrors), n), nil
	case "sem_interrupts_per_round":
		return perRound(float64(sum.Faults.SemInterrupts), n), nil
	case "kills_per_round":
		return perRound(float64(sum.Faults.Kills), n), nil
	case "restarts_per_round":
		return perRound(float64(sum.Faults.Restarts), n), nil
	}
	return 0, fmt.Errorf("unknown metric %q", a.Metric)
}

func perRound(total, rounds float64) float64 {
	if rounds == 0 {
		return 0
	}
	return total / rounds
}
