package scenario

// Fleet determinism suite: the shipped fleet.yaml (600 jittered victims)
// must generate the same fleet from the file alone — same template
// picks, same size jitter, same per-member seeds — and its campaign
// must be bit-identical regardless of GOMAXPROCS. CI additionally runs
// this under -race at GOMAXPROCS 1 and 8.

import (
	"reflect"
	"runtime"
	"strings"
	"testing"
)

// TestFleetGenerationDeterministic pins the compile-time jitter stream:
// two compilations of the same file agree exactly, member parameters
// stay inside their template's declared ranges, every template is
// realized, and per-member seeds follow the spec stride.
func TestFleetGenerationDeterministic(t *testing.T) {
	spec := loadExample(t, "fleet.yaml")
	a, err := Compile(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Compile(loadExample(t, "fleet.yaml"))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Points) != spec.Fleet.Total || len(a.Points) < 500 {
		t.Fatalf("fleet compiled to %d points, want %d (>= 500)", len(a.Points), spec.Fleet.Total)
	}
	if !reflect.DeepEqual(a.Meta, b.Meta) {
		t.Error("two compilations of the same file generated different fleets")
	}
	byName := make(map[string]Template)
	for _, tm := range spec.Fleet.Templates {
		byName[tm.Name] = tm
	}
	counts := make(map[string]int)
	for k, m := range a.Meta {
		tmpl, ok := byName[m.Template]
		if !ok {
			t.Fatalf("member %d references unknown template %q", k, m.Template)
		}
		counts[m.Template]++
		if m.SizeKB < tmpl.SizeMinKB || m.SizeKB > tmpl.SizeMaxKB {
			t.Errorf("member %d: size %dKB outside template %s's [%d, %d]",
				k, m.SizeKB, tmpl.Name, tmpl.SizeMinKB, tmpl.SizeMaxKB)
		}
		if got, want := a.Points[k].Scenario.Seed, spec.Seed+int64(k)*spec.SeedStride; got != want {
			t.Errorf("member %d: seed %d, want %d", k, got, want)
		}
		if a.Points[k].Scenario.Machine.Name != spec.Machine.Name {
			t.Errorf("member %d: machine %q", k, a.Points[k].Scenario.Machine.Name)
		}
	}
	for name, tmpl := range byName {
		if counts[name] == 0 {
			t.Errorf("template %q (weight %d) drew no members in %d picks", name, tmpl.Weight, spec.Fleet.Total)
		}
	}
	// vi-small outweighs patched 5:2; the realized split must reflect it.
	if counts["vi-small"] <= counts["patched"] {
		t.Errorf("weights ignored: vi-small %d members vs patched %d", counts["vi-small"], counts["patched"])
	}
}

// TestFleetRunBitIdenticalAcrossGOMAXPROCS runs the shipped 600-victim
// fleet serially and maximally parallel: every campaign result must be
// bit-identical (CampaignResult is a pure comparable value, so == is the
// full-field check), and the shipped assertions must pass.
func TestFleetRunBitIdenticalAcrossGOMAXPROCS(t *testing.T) {
	if testing.Short() {
		t.Skip("600-member fleet campaign in -short mode")
	}
	runAt := func(procs int) *Outcome {
		t.Helper()
		old := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(old)
		out, err := Run(loadExample(t, "fleet.yaml"), RunOptions{})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	serial := runAt(1)
	parallel := runAt(8)
	if len(serial.Results) != len(parallel.Results) {
		t.Fatalf("result counts differ: %d vs %d", len(serial.Results), len(parallel.Results))
	}
	for i := range serial.Results {
		if serial.Results[i] != parallel.Results[i] {
			t.Errorf("member %d: GOMAXPROCS=1 and GOMAXPROCS=8 results differ", i)
		}
	}
	if err := serial.CheckAssertions(); err != nil {
		t.Errorf("shipped fleet assertions failed: %v", err)
	}
}

// TestAssertionFailureNamesFirst pins the non-zero-exit contract's error
// shape: the first failing assertion is reported by index, metric,
// selection, measured value, and violated bound.
func TestAssertionFailureNamesFirst(t *testing.T) {
	spec := mustParse(t, minimalSpec+`assertions:
  - metric: rounds
    min: 10
  - metric: rounds
    max: 5
  - metric: success_rate
    min: 2
`)
	out, err := Run(spec, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	err = out.CheckAssertions()
	if err == nil {
		t.Fatal("expected the max-rounds assertion to fail")
	}
	ae, ok := err.(*AssertionError)
	if !ok {
		t.Fatalf("got %T (%v), want *AssertionError", err, err)
	}
	if ae.Index != 1 || ae.Value != 10 {
		t.Errorf("failure = %+v, want index 1 (the FIRST failing assertion) at value 10", ae)
	}
	for _, want := range []string{"assertion 1", "rounds", "above max 5"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not mention %q", err, want)
		}
	}
}
