package scenario

// Execution and rendering: a compiled scenario runs through the same
// sweep engine as the hand-wired experiments, then renders either the
// generic table or — for report: fig6 / faultsweep — the exact
// experiment rendering, so scenario output can be diffed byte-for-byte
// against the experiment goldens.

import (
	"fmt"
	"io"

	"tocttou/internal/core"
	"tocttou/internal/experiments"
	"tocttou/internal/report"
)

// RunOptions tunes a scenario execution.
type RunOptions struct {
	// Checkpoint, when non-empty, runs the sweep crash-safely through
	// core.RunSweepPointsCheckpoint with this state file.
	Checkpoint string
}

// Outcome is a completed scenario run.
type Outcome struct {
	Spec     *Spec
	Compiled *Compiled
	Results  []core.CampaignResult
	Stats    core.SweepStats
}

// Run compiles and executes the scenario.
func Run(spec *Spec, opt RunOptions) (*Outcome, error) {
	c, err := Compile(spec)
	if err != nil {
		return nil, fmt.Errorf("scenario %s: %w", spec.Name, err)
	}
	var results []core.CampaignResult
	var stats core.SweepStats
	if opt.Checkpoint != "" {
		results, stats, err = core.RunSweepPointsCheckpoint(c.Points, core.SweepOptions{}, opt.Checkpoint)
	} else {
		results, stats, err = core.RunSweepPoints(c.Points, core.SweepOptions{})
	}
	if err != nil {
		return nil, fmt.Errorf("scenario %s: %w", spec.Name, err)
	}
	return &Outcome{Spec: spec, Compiled: c, Results: results, Stats: stats}, nil
}

// Render writes the outcome's report.
func (o *Outcome) Render(w io.Writer) error {
	switch o.Spec.Report {
	case "fig6":
		return o.renderFig6(w)
	case "faultsweep":
		return o.renderFaultSweep(w)
	}
	return o.renderTable(w)
}

// renderFig6 reuses the experiment's rendering verbatim: same table,
// same chart, same model-prediction column.
func (o *Outcome) renderFig6(w io.Writer) error {
	res := &experiments.Fig6Result{Rounds: o.Spec.Rounds}
	for i, m := range o.Compiled.Meta {
		res.Rows = append(res.Rows, experiments.SweepRow{
			SizeKB:    m.SizeKB,
			Result:    o.Results[i],
			Predicted: experiments.Fig6Prediction(o.Spec.Machine, m.SizeKB),
		})
	}
	return res.Render(w)
}

// renderFaultSweep reuses the faultsweep experiment's rendering; the
// chart's policy series derive from row order, so custom policy sets
// chart just like the built-in grid.
func (o *Outcome) renderFaultSweep(w io.Writer) error {
	res := &experiments.FaultSweepResult{Rounds: o.Spec.Rounds}
	for i, m := range o.Compiled.Meta {
		res.Rows = append(res.Rows, experiments.FaultRow{
			Rate:   m.Rate,
			Policy: m.Policy,
			Result: o.Results[i],
		})
	}
	return res.Render(w)
}

// renderTable is the generic report: one row per point, plus a pooled
// per-template section for fleets (the per-member table of a 600-victim
// fleet is data, not a summary — the template aggregates are the
// headline there).
func (o *Outcome) renderTable(w io.Writer) error {
	s := o.Spec
	fmt.Fprintf(w, "scenario %s — %d points × %d rounds\n", s.Name, len(o.Results), s.Rounds)
	if s.Description != "" {
		fmt.Fprintf(w, "%s\n", s.Description)
	}
	fmt.Fprintln(w)

	hasFaults := s.Faults != nil
	if s.Fleet != nil {
		if err := o.renderTemplateAggregates(w, hasFaults); err != nil {
			return err
		}
		fmt.Fprintln(w)
		fmt.Fprintln(w, "per-member results:")
	}
	tbl := &report.Table{Headers: pointHeaders(hasFaults)}
	for i, m := range o.Compiled.Meta {
		tbl.AddRow(pointRow(fmt.Sprintf("%d", i), m.Label, o.Results[i], hasFaults)...)
	}
	return tbl.Render(w)
}

func pointHeaders(faults bool) []string {
	h := []string{"point", "label", "success", "rate", "victim-fail", "attack-err"}
	if faults {
		h = append(h, "fs-err/rnd", "eintr/rnd", "kill/rnd", "restart/rnd")
	}
	return h
}

func pointRow(id, label string, res core.CampaignResult, faults bool) []string {
	row := []string{
		id, label,
		fmt.Sprintf("%d/%d", res.Successes, res.Rounds),
		fmt.Sprintf("%.1f%%", res.Rate()*100),
		fmt.Sprintf("%d", res.VictimErrors),
		fmt.Sprintf("%d", res.AttackErrors),
	}
	if faults {
		n := float64(res.Rounds)
		row = append(row,
			fmt.Sprintf("%.2f", float64(res.Faults.FSErrors)/n),
			fmt.Sprintf("%.2f", float64(res.Faults.SemInterrupts)/n),
			fmt.Sprintf("%.2f", float64(res.Faults.Kills)/n),
			fmt.Sprintf("%.2f", float64(res.Faults.Restarts)/n),
		)
	}
	return row
}

// renderTemplateAggregates pools each template's members into one row,
// in the spec's template order.
func (o *Outcome) renderTemplateAggregates(w io.Writer, hasFaults bool) error {
	fmt.Fprintf(w, "fleet: %d members from %d templates (jitter seed %d)\n\n",
		o.Spec.Fleet.Total, len(o.Spec.Fleet.Templates), o.Spec.Fleet.JitterSeed)
	tbl := &report.Table{Headers: append([]string{"template", "members"}, pointHeaders(hasFaults)[2:]...)}
	for _, t := range o.Spec.Fleet.Templates {
		var sum core.CampaignResult
		members := 0
		for i, m := range o.Compiled.Meta {
			if m.Template != t.Name {
				continue
			}
			members++
			r := o.Results[i]
			sum.Rounds += r.Rounds
			sum.Successes += r.Successes
			sum.VictimErrors += r.VictimErrors
			sum.AttackErrors += r.AttackErrors
			sum.Faults.Add(r.Faults)
		}
		row := pointRow(t.Name, "", sum, hasFaults)
		// pointRow's first two columns are id+label; collapse to
		// template name + member count for the aggregate view.
		row[1] = fmt.Sprintf("%d", members)
		tbl.AddRow(row...)
	}
	return tbl.Render(w)
}
