package scenario

import (
	"strings"
	"testing"
)

// TestYAMLBlockStructures pins the structural subset the parser accepts:
// nested block maps, block sequences (including compact "- key: value"
// items), flow collections, quoting, and comments.
func TestYAMLBlockStructures(t *testing.T) {
	src := `
# leading comment
name: demo            # trailing comment
count: 42
rate: 0.25
nested:
  inner: yes-indeed
  deeper:
    leaf: 7
list:
  - alpha
  - beta
compact:
  - name: first
    weight: 1
  - name: second
    weight: 2
flow_seq: [1, 2, 3]
flow_map: {a: 1, b: two}
quoted_single: 'it''s'
quoted_double: "tab\there"
hash_in_value: a#b
empty:
`
	root, err := parseYAML([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	if root.kind != mapNode {
		t.Fatalf("root kind = %v, want map", root.kind)
	}
	get := func(key string) *node {
		t.Helper()
		n := root.vals[key]
		if n == nil {
			t.Fatalf("missing key %q", key)
		}
		return n
	}
	if v := get("name"); v.scalar != "demo" {
		t.Errorf("name = %q (trailing comment must strip)", v.scalar)
	}
	if v := get("count"); v.scalar != "42" {
		t.Errorf("count = %q", v.scalar)
	}
	if v := get("nested").vals["deeper"].vals["leaf"]; v.scalar != "7" {
		t.Errorf("nested.deeper.leaf = %q", v.scalar)
	}
	if items := get("list").items; len(items) != 2 || items[1].scalar != "beta" {
		t.Errorf("list = %v", items)
	}
	compact := get("compact").items
	if len(compact) != 2 {
		t.Fatalf("compact has %d items, want 2", len(compact))
	}
	if compact[1].vals["name"].scalar != "second" || compact[1].vals["weight"].scalar != "2" {
		t.Errorf("compact[1] decoded wrong: %v", compact[1].vals)
	}
	if items := get("flow_seq").items; len(items) != 3 || items[2].scalar != "3" {
		t.Errorf("flow_seq = %v", items)
	}
	if v := get("flow_map").vals["b"]; v == nil || v.scalar != "two" {
		t.Errorf("flow_map.b = %v", v)
	}
	if v := get("quoted_single"); v.scalar != "it's" || !v.quoted {
		t.Errorf("quoted_single = %q quoted=%v", v.scalar, v.quoted)
	}
	if v := get("quoted_double"); v.scalar != "tab\there" {
		t.Errorf("quoted_double = %q", v.scalar)
	}
	if v := get("hash_in_value"); v.scalar != "a#b" {
		t.Errorf("hash_in_value = %q ('#' mid-word is not a comment)", v.scalar)
	}
	if v := get("empty"); v.kind != nullNode {
		t.Errorf("empty key kind = %v, want null", v.kind)
	}
}

// TestYAMLLineNumbers pins that nodes carry their source line — the
// whole point of hand-rolling the parser is error messages that name
// where in the file the problem is.
func TestYAMLLineNumbers(t *testing.T) {
	src := "name: x\nnested:\n  leaf: 1\nlist:\n  - a\n"
	root, err := parseYAML([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	if got := root.vals["name"].line; got != 1 {
		t.Errorf("name on line %d, want 1", got)
	}
	if got := root.vals["nested"].vals["leaf"].line; got != 3 {
		t.Errorf("nested.leaf on line %d, want 3", got)
	}
	if got := root.vals["list"].items[0].line; got != 5 {
		t.Errorf("list[0] on line %d, want 5", got)
	}
	if got := root.keyLine["nested"]; got != 2 {
		t.Errorf("keyLine[nested] = %d, want 2", got)
	}
}

// TestYAMLParseErrors pins the rejection set, each error naming its line.
func TestYAMLParseErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
	}{
		{"tab indent", "name: x\n\tbad: y\n", "tab"},
		{"duplicate key", "a: 1\na: 2\n", "duplicate key"},
		{"unterminated single quote", "a: 'oops\n", "quote"},
		{"unterminated flow seq", "a: [1, 2\n", "unterminated flow sequence"},
		{"unterminated flow map", "a: {x: 1\n", "unterminated flow mapping"},
		{"overindented key", "a: 1\n    b: 2\n", ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := parseYAML([]byte(tc.src))
			if err == nil {
				t.Fatalf("parseYAML(%q): expected an error", tc.src)
			}
			if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
			if !strings.Contains(err.Error(), "line") {
				t.Errorf("error %q does not name a line", err)
			}
		})
	}
}

// TestJSONRoundTrip pins the JSON front end: the same node shapes come
// out, with numbers kept verbatim via json.Number.
func TestJSONRoundTrip(t *testing.T) {
	src := `{"name": "demo", "count": 42, "rate": 0.002, "list": [1, "two"], "flag": true}`
	root, err := parseJSON([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	if v := root.vals["name"]; v.scalar != "demo" || !v.quoted {
		t.Errorf("name = %q quoted=%v", v.scalar, v.quoted)
	}
	if v := root.vals["rate"]; v.scalar != "0.002" || v.quoted {
		t.Errorf("rate = %q quoted=%v (numbers must stay unquoted scalars)", v.scalar, v.quoted)
	}
	if v := root.vals["flag"]; v.scalar != "true" {
		t.Errorf("flag = %q", v.scalar)
	}
	if items := root.vals["list"].items; len(items) != 2 || !items[1].quoted {
		t.Errorf("list = %v", items)
	}
	if _, err := parseJSON([]byte(`{"a": `)); err == nil {
		t.Error("truncated JSON: expected an error")
	}
}
