// Package machine defines calibrated profiles of the paper's three
// testbeds: the uniprocessor baseline of §4, the 2-way Xeon SMP of §5-6.1,
// and the Pentium-D multi-core of §6.2. A profile bundles a scheduler
// configuration, a file-system latency profile, and the victim/attacker
// timing parameters the paper reports (page-fault trap cost, gedit's
// rename→chmod compute gap).
//
// Calibration philosophy: the absolute microsecond values are inputs taken
// from the paper's own measurements; everything else — who wins each race,
// success rates, L and D distributions — is emergent from the simulation.
package machine

import (
	"time"

	"tocttou/internal/fs"
	"tocttou/internal/sim"
)

// Profile describes one simulated machine.
type Profile struct {
	// Name identifies the machine in reports.
	Name string
	// CPUs is the processor count.
	CPUs int
	// SpeedFactor scales CPU-bound latencies relative to the 3.2 GHz
	// base calibration (1.88 for the 1.7 GHz Xeons).
	SpeedFactor float64
	// Quantum is the scheduler time slice.
	Quantum time.Duration
	// CtxSwitch is the context-switch/dispatch latency.
	CtxSwitch time.Duration
	// TickPeriod and TickCost model the timer interrupt.
	TickPeriod time.Duration
	TickCost   time.Duration
	// Noise models background kernel activity per CPU.
	Noise sim.NoiseConfig
	// Jitter is the relative latency noise applied to modeled costs.
	Jitter float64
	// TrapCost is the page-fault service time for a cold libc stub page
	// (6 µs on the multi-core per §6.2.1).
	TrapCost time.Duration
	// GeditRenameChmodGap is gedit's user-space computation between
	// rename returning and chmod being issued: 43 µs on the SMP (§6.1)
	// vs 3 µs on the multi-core (§6.2.1) — the paper's key asymmetry.
	GeditRenameChmodGap time.Duration
	// Latency is the file-system cost calibration.
	Latency fs.LatencyProfile
}

// SimConfig derives the kernel configuration (callers fill Seed/Tracer).
func (p Profile) SimConfig(seed int64, tracer sim.Tracer) sim.Config {
	return sim.Config{
		CPUs:       p.CPUs,
		Quantum:    p.Quantum,
		CtxSwitch:  p.CtxSwitch,
		TickPeriod: p.TickPeriod,
		TickCost:   p.TickCost,
		Noise:      p.Noise,
		Jitter:     p.Jitter,
		Seed:       seed,
		Tracer:     tracer,
	}
}

// ScaleCompute scales a base (3.2 GHz) user-space compute cost to this
// machine's speed.
func (p Profile) ScaleCompute(base time.Duration) time.Duration {
	return time.Duration(float64(base) * p.SpeedFactor)
}

// MultiCore models the Dell Precision 380 of §6.2: Pentium D 3.2 GHz
// dual-core with Hyper-Threading (4 logical CPUs).
func MultiCore() Profile {
	return Profile{
		Name:        "multicore-3.2GHz-4way",
		CPUs:        4,
		SpeedFactor: 1.0,
		Quantum:     100 * time.Millisecond,
		CtxSwitch:   1500 * time.Nanosecond,
		TickPeriod:  time.Millisecond,
		TickCost:    1200 * time.Nanosecond,
		Noise: sim.NoiseConfig{
			MeanInterval: 2500 * time.Microsecond,
			MeanDuration: 20 * time.Microsecond,
		},
		Jitter:              0.06,
		TrapCost:            6 * time.Microsecond,
		GeditRenameChmodGap: 3 * time.Microsecond,
		Latency:             fs.DefaultProfile(),
	}
}

// xeonFactor is the SMP's clock handicap relative to the base calibration.
const xeonFactor = 1.88

// SMP2 models the §5 testbed: 2 × Intel Xeon 1.7 GHz.
func SMP2() Profile {
	return Profile{
		Name:        "smp-1.7GHz-2way",
		CPUs:        2,
		SpeedFactor: xeonFactor,
		Quantum:     100 * time.Millisecond,
		CtxSwitch:   2800 * time.Nanosecond,
		TickPeriod:  time.Millisecond,
		TickCost:    2300 * time.Nanosecond,
		Noise: sim.NoiseConfig{
			MeanInterval: 2 * time.Millisecond,
			MeanDuration: 30 * time.Microsecond,
		},
		Jitter:              0.07,
		TrapCost:            11 * time.Microsecond,
		GeditRenameChmodGap: 43 * time.Microsecond,
		Latency:             fs.DefaultProfile().Scale(xeonFactor),
	}
}

// Uniprocessor models the §4 baseline: the same 1.7 GHz-class machine with
// a single CPU. Its storage-stall model is enabled: on one CPU the victim
// blocking on I/O mid-window is one of the two ways the attacker ever runs.
func Uniprocessor() Profile {
	p := SMP2()
	p.Name = "uniprocessor-1.7GHz"
	p.CPUs = 1
	p.Latency.WriteStallProbPerKB = 0.000015
	p.Latency.StallMedian = 5 * time.Millisecond
	return p
}

// ByName returns a profile by its short name: "up", "smp", or "multicore".
func ByName(name string) (Profile, bool) {
	switch name {
	case "up", "uniprocessor":
		return Uniprocessor(), true
	case "smp", "smp2":
		return SMP2(), true
	case "multicore", "mc":
		return MultiCore(), true
	default:
		return Profile{}, false
	}
}
