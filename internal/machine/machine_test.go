package machine

import (
	"testing"
	"time"
)

func TestProfilesMatchPaperTestbeds(t *testing.T) {
	up := Uniprocessor()
	smp := SMP2()
	mc := MultiCore()

	if up.CPUs != 1 {
		t.Errorf("uniprocessor CPUs = %d", up.CPUs)
	}
	if smp.CPUs != 2 {
		t.Errorf("SMP CPUs = %d", smp.CPUs)
	}
	if mc.CPUs != 4 {
		t.Errorf("multi-core CPUs = %d (2 dual cores with HT)", mc.CPUs)
	}
	// §6.1 vs §6.2.1: the gedit rename→chmod gap is 43µs vs 3µs.
	if smp.GeditRenameChmodGap != 43*time.Microsecond {
		t.Errorf("SMP gedit gap = %v, want 43µs", smp.GeditRenameChmodGap)
	}
	if mc.GeditRenameChmodGap != 3*time.Microsecond {
		t.Errorf("multi-core gedit gap = %v, want 3µs", mc.GeditRenameChmodGap)
	}
	// §6.2.1: the trap costs 6µs on the multi-core.
	if mc.TrapCost != 6*time.Microsecond {
		t.Errorf("multi-core trap = %v, want 6µs", mc.TrapCost)
	}
	if up.Latency.WriteStallProbPerKB <= 0 {
		t.Error("uniprocessor must model storage stalls")
	}
	if smp.Latency.WriteStallProbPerKB != 0 {
		t.Error("SMP profile should not rely on storage stalls")
	}
}

func TestScaleCompute(t *testing.T) {
	smp := SMP2()
	got := smp.ScaleCompute(100 * time.Microsecond)
	want := time.Duration(188 * time.Microsecond)
	if got != want {
		t.Errorf("scaled = %v, want %v", got, want)
	}
	mc := MultiCore()
	if mc.ScaleCompute(time.Millisecond) != time.Millisecond {
		t.Error("base machine must scale by 1.0")
	}
}

func TestLatencyScalingConsistency(t *testing.T) {
	smp := SMP2()
	mc := MultiCore()
	ratio := float64(smp.Latency.Lookup) / float64(mc.Latency.Lookup)
	if ratio < 1.87 || ratio > 1.89 {
		t.Errorf("lookup ratio = %v, want 1.88 (clock scaling)", ratio)
	}
	// Storage parameters must NOT scale with clock speed.
	if smp.Latency.StallMedian != mc.Latency.StallMedian {
		t.Error("stall median should not scale with CPU speed")
	}
}

func TestSimConfig(t *testing.T) {
	p := SMP2()
	cfg := p.SimConfig(42, nil)
	if cfg.CPUs != 2 || cfg.Seed != 42 || cfg.Quantum != p.Quantum {
		t.Errorf("cfg = %+v", cfg)
	}
	if cfg.Jitter <= 0 {
		t.Error("machine jitter must be positive: races must be statistical")
	}
	if cfg.Noise.MeanInterval <= 0 {
		t.Error("background noise must be configured (§5 failed 1-byte rounds)")
	}
}

func TestByName(t *testing.T) {
	for name, cpus := range map[string]int{
		"up": 1, "uniprocessor": 1, "smp": 2, "smp2": 2, "multicore": 4, "mc": 4,
	} {
		p, ok := ByName(name)
		if !ok || p.CPUs != cpus {
			t.Errorf("ByName(%q) = %+v, %v", name, p.Name, ok)
		}
	}
	if _, ok := ByName("quantum-computer"); ok {
		t.Error("unknown machine must not resolve")
	}
}
