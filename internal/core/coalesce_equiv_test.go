package core

import (
	"fmt"
	"reflect"
	"runtime"
	"testing"
	"time"

	"tocttou/internal/attack"
	"tocttou/internal/fault"
	"tocttou/internal/machine"
	"tocttou/internal/prog"
	"tocttou/internal/victim"
)

// The coalesced ≡ stepped equivalence suite: stretch coalescing and the
// interrupt fold are performance paths only, so forcing
// DisableCoalesce must change nothing observable — round outcomes, the
// JSONL-visible event stream, kernel counters, fault tallies, and the
// float-order-sensitive metric folds of whole campaigns are all compared
// bit for bit, across machines, programs, sizes, and fault plans.

// steppedTwin is sc with every coalescing fast path forced off.
func steppedTwin(sc Scenario) Scenario {
	sc.DisableCoalesce = true
	return sc
}

// assertRoundEquiv runs one round coalesced and stepped and compares
// every field of the two Rounds, event by event.
func assertRoundEquiv(t *testing.T, label string, sc Scenario) {
	t.Helper()
	a, aerr := RunRound(sc)
	b, berr := RunRound(steppedTwin(sc))
	if (aerr == nil) != (berr == nil) ||
		(aerr != nil && aerr.Error() != berr.Error()) {
		t.Fatalf("%s: errors diverge: coalesced %v, stepped %v", label, aerr, berr)
	}
	if aerr != nil {
		return
	}
	if len(a.Events) != len(b.Events) {
		t.Fatalf("%s: event count diverges: coalesced %d, stepped %d", label, len(a.Events), len(b.Events))
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatalf("%s: trace diverges at event %d:\ncoalesced: %+v\nstepped:   %+v", label, i, a.Events[i], b.Events[i])
		}
	}
	if av, bv := fmt.Sprint(a.VictimErr), fmt.Sprint(b.VictimErr); av != bv {
		t.Errorf("%s: victim error diverges: coalesced %s, stepped %s", label, av, bv)
	}
	if av, bv := fmt.Sprint(a.AttackerErr), fmt.Sprint(b.AttackerErr); av != bv {
		t.Errorf("%s: attacker error diverges: coalesced %s, stepped %s", label, av, bv)
	}
	a.Events, b.Events = nil, nil
	a.VictimErr, a.AttackerErr = nil, nil
	b.VictimErr, b.AttackerErr = nil, nil
	if !reflect.DeepEqual(a, b) {
		t.Errorf("%s: round diverges:\ncoalesced: %+v\nstepped:   %+v", label, a, b)
	}
}

func TestCoalescedRoundsBitIdenticalToStepped(t *testing.T) {
	machines := map[string]machine.Profile{
		"uni":  machine.Uniprocessor(),
		"smp2": machine.SMP2(),
		"mc":   machine.MultiCore(),
	}
	for mname, m := range machines {
		for _, kb := range []int64{1, 100 << 10, 1000 << 10} {
			for _, traced := range []bool{false, true} {
				for s := int64(0); s < 3; s++ {
					sc := viSc(m, kb, 15101+s*7919, traced)
					assertRoundEquiv(t, fmt.Sprintf("vi/%s/%dB/traced=%v/seed=%d", mname, kb, traced, sc.Seed), sc)
				}
			}
		}
	}
	// The gedit save path writes through the same chunked-write stretch
	// with a different syscall mix, against both attacker variants.
	for _, atk := range []struct {
		name string
		p    prog.Program
	}{{"v1", attack.NewV1()}, {"v2", attack.NewV2()}} {
		sc := viSc(machine.SMP2(), 400<<10, 15201, false)
		sc.Victim = victim.NewGedit()
		sc.Attacker = atk.p
		sc.UseSyscall = "chmod"
		assertRoundEquiv(t, "gedit/"+atk.name, sc)
	}
}

func TestCoalescedFaultCampaignsBitIdenticalToStepped(t *testing.T) {
	// Every fault channel, at campaign scale: errno injection bends the
	// fs paths mid-stretch, EINTR delivery interrupts semaphore waits the
	// quiet-stretch proof depends on, and kills unwind threads that may
	// be mid-stretch. Campaign equality covers the metric folds
	// (Welford summaries, histograms) bit for bit.
	plans := map[string]fault.Plan{
		"errno": {Seed: 1303, FSRate: 0.05},
		"eintr": {Seed: 1307, SemIntrRate: 0.5, SemIntrDelay: time.Microsecond},
		"kill":  {Seed: 1309, KillVictimRate: 0.1, KillAttackerRate: 0.1, KillWindow: 4 * time.Millisecond, Restart: true},
	}
	const rounds = 150
	for pname, plan := range plans {
		for _, traced := range []bool{false, true} {
			sc := viSc(machine.SMP2(), 100<<10, 16101, traced)
			sc.Faults = plan
			sc.Watchdog = 5 * time.Second
			for _, procs := range []int{1, runtime.NumCPU()} {
				prev := runtime.GOMAXPROCS(procs)
				co, err1 := RunCampaign(sc, rounds)
				st, err2 := RunCampaign(steppedTwin(sc), rounds)
				runtime.GOMAXPROCS(prev)
				if err1 != nil || err2 != nil {
					t.Fatalf("%s traced=%v: campaign errors: coalesced %v, stepped %v", pname, traced, err1, err2)
				}
				if co != st {
					t.Errorf("%s traced=%v GOMAXPROCS=%d: campaign diverges:\ncoalesced: %+v\nstepped:   %+v",
						pname, traced, procs, co, st)
				}
			}
			// And one fully-compared round per plan, trace included.
			assertRoundEquiv(t, "fault/"+pname, sc)
		}
	}
}

func TestCoalescedForkedRoundAddsZeroAllocs(t *testing.T) {
	// The coalescing fast path is pure arithmetic on stack-local state:
	// a steady-state forked round must allocate nothing beyond what the
	// stepped path already does (the fs model's error values, round-
	// dependent but identical either way), and that residual stays tiny.
	measure := func(disable bool) float64 {
		sc := benchScenario()
		sc.FileSize = 1000 << 10
		sc.DisableCoalesce = disable
		var st roundState
		seed := int64(0)
		sc.Seed = 1007
		if _, err := runRound(sc, &st); err != nil {
			t.Fatal(err)
		}
		return testing.AllocsPerRun(300, func() {
			seed++
			sc.Seed = 1007 + seed*SeedStride
			if _, err := runRound(sc, &st); err != nil {
				t.Fatal(err)
			}
		})
	}
	coalesced, stepped := measure(false), measure(true)
	if coalesced > stepped {
		t.Errorf("coalescing added allocations: %.2f/round coalesced vs %.2f/round stepped", coalesced, stepped)
	}
	if coalesced > 2 {
		t.Errorf("coalesced forked round allocates %.2f/round, want <= 2", coalesced)
	}
}

func TestHorizonExactlyOnStretchLastEvent(t *testing.T) {
	// The sharpest truncation boundary: a horizon landing one nanosecond
	// before, exactly on, and one nanosecond after the round's final
	// event. Events at exactly MaxTime still process; the first event
	// past it trips the budget — the coalesced path must agree at all
	// three offsets, including when the cut falls inside a write stretch.
	base := viSc(machine.Uniprocessor(), 1000<<10, 17101, false)
	ref, err := RunRound(base)
	if err != nil {
		t.Fatal(err)
	}
	for _, delta := range []time.Duration{-time.Nanosecond, 0, time.Nanosecond} {
		sc := base
		sc.Horizon = time.Duration(ref.End) + delta
		assertRoundEquiv(t, fmt.Sprintf("horizon=end%+d", delta), sc)
	}
}

func TestHorizonMidWriteStretchBitIdentical(t *testing.T) {
	// Horizons landing inside the big-file chunked-write stretch — the
	// deepest coalesced region — at several depths.
	base := viSc(machine.Uniprocessor(), 1000<<10, 17201, false)
	ref, err := RunRound(base)
	if err != nil {
		t.Fatal(err)
	}
	for _, frac := range []int64{3, 5, 7, 9} {
		sc := base
		sc.Horizon = time.Duration(ref.End) * time.Duration(frac) / 10
		assertRoundEquiv(t, fmt.Sprintf("horizon=%d0%%", frac), sc)
	}
}

func TestWatchdogExpiryMidStretchBitIdentical(t *testing.T) {
	// A watchdog that expires mid-round is a round *error*, not a
	// truncation; both paths must fail identically, at the same virtual
	// instant, whether the expiry lands inside a coalesced stretch or
	// between stretches.
	base := viSc(machine.Uniprocessor(), 1000<<10, 17301, false)
	ref, err := RunRound(base)
	if err != nil {
		t.Fatal(err)
	}
	for _, frac := range []int64{4, 6, 8} {
		sc := base
		sc.Watchdog = time.Duration(ref.End) * time.Duration(frac) / 10
		a, aerr := RunRound(sc)
		b, berr := RunRound(steppedTwin(sc))
		if aerr == nil || berr == nil {
			t.Fatalf("watchdog=%d0%%: expected both paths to abort, got coalesced (%v, err %v), stepped (%v, err %v)",
				frac, a.Success, aerr, b.Success, berr)
		}
		if aerr.Error() != berr.Error() {
			t.Errorf("watchdog=%d0%%: abort errors diverge: coalesced %v, stepped %v", frac, aerr, berr)
		}
	}
}

func TestEINTRDeliveryAroundTickBoundary(t *testing.T) {
	// EINTR deliveries scheduled one tick period (±1µs) after the wait
	// begins land just past a coalesced advance, at the instants where
	// the stretch has just retired a segment bracketing a tick fire. The
	// delivered interrupt must unwind the wait identically either way.
	const tick = time.Millisecond // machine profiles run HZ=1000
	for _, delay := range []time.Duration{tick - time.Microsecond, tick, tick + time.Microsecond} {
		sc := viSc(machine.SMP2(), 200<<10, 17401, true)
		sc.Faults = fault.Plan{Seed: 1311, SemIntrRate: 1.0, SemIntrDelay: delay}
		sc.Watchdog = 5 * time.Second
		assertRoundEquiv(t, fmt.Sprintf("eintr-delay=%v", delay), sc)
	}
}
