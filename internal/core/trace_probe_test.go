package core

import (
	"testing"

	"tocttou/internal/attack"
	"tocttou/internal/machine"
	"tocttou/internal/sim"
	"tocttou/internal/victim"
)

// TestTraceProbe dumps the interesting part of one gedit round for
// calibration. Run: go test ./internal/core/ -run TraceProbe -v -probe
func TestTraceProbe(t *testing.T) {
	if !probeEnabled {
		t.Skip("probe disabled")
	}
	sc := Scenario{
		Machine: machine.MultiCore(), Victim: victim.NewGedit(), Attacker: attack.NewV2(),
		UseSyscall: "chmod", FileSize: 2 << 10, Seed: 53, Trace: true,
	}
	r, err := RunRound(sc)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("success=%v LD=%+v", r.Success, r.LD)
	if !r.LD.WindowFound {
		t.Fatal("no window")
	}
	from := r.LD.T1.Add(-40 * 1000)
	to := r.LD.T1.Add(60 * 1000)
	for _, e := range r.Events {
		if e.T < from || e.T > to {
			continue
		}
		if e.Kind == sim.EvTick || e.Kind == sim.EvNoise {
			continue
		}
		t.Logf("%s", e.String())
	}
}
