package core

import (
	"fmt"
	"hash/fnv"
	"time"

	"tocttou/internal/fault"
)

// In-process sweep-point memoization. A sweep's points are frequently not
// all distinct — ablation grids repeat their control column, and
// explorer-driven re-sweeps repeat converged points verbatim. Every round
// is a pure function of its scenario and seed, so two points with
// identical result-determining configuration and identical round budgets
// provably produce identical CampaignResults; RunSweepPoints therefore
// executes only the first of each duplicate class and copies its result
// to the rest (CampaignResult is a pure value — fixed arrays, no
// pointers — so the copies share no storage). This is the first concrete
// step toward a campaign-as-a-service result cache: the dedupe key is
// exactly the cache key such a service would use.
//
// Memoization must never change what a caller observes, so it stands
// down whenever per-point execution is observable: a round callback
// installed (each executed round must be reported), adaptive stopping
// enabled (PointsStopped accounting is per executed point), the
// crash-test stop knob set, or a point carrying code the key cannot
// capture (success-check, guard, or chooser hooks, or a program whose
// dynamic type is not comparable). The onPointDone completion hook is
// the one observer memoization composes with: a duplicate point
// completes the moment its representative does, so RunSweepPoints fans
// the representative's completion out to every duplicate — the
// checkpoint writer therefore flushes memoized points like executed
// ones. Execution-shaping results are still exact for memoized sweeps:
// duplicate points simply contribute no RoundsExecuted/RoundsCommitted,
// which SweepStats.PointsMemoized makes visible.

// planKey is fault.Plan flattened into a comparable value (FSOps, the
// one slice field, collapses to a canonical string).
type planKey struct {
	seed         int64
	fsRate       float64
	fsOps        string
	semIntrRate  float64
	semIntrDelay time.Duration
	killVictim   float64
	killAttacker float64
	killWindow   time.Duration
	restart      bool
	restartDelay time.Duration
}

func planKeyOf(pl fault.Plan) planKey {
	ops := ""
	for _, op := range pl.FSOps {
		ops += fmt.Sprintf("%d,", op)
	}
	return planKey{
		seed:         pl.Seed,
		fsRate:       pl.FSRate,
		fsOps:        ops,
		semIntrRate:  pl.SemIntrRate,
		semIntrDelay: pl.SemIntrDelay,
		killVictim:   pl.KillVictimRate,
		killAttacker: pl.KillAttackerRate,
		killWindow:   pl.KillWindow,
		restart:      pl.Restart,
		restartDelay: pl.RestartDelay,
	}
}

// memoKey is a sweep point's full result-determining identity: the
// prefix signature (machine, programs, fixture, scheduling knobs) plus
// everything per-round the signature deliberately excludes, plus the
// round budget. Two points with equal keys run bit-identical campaigns.
type memoKey struct {
	sig    prefixSig
	rounds int
	seed   int64
	sys    string
	trace  bool
	plan   planKey
}

// fingerprint is the key's FNV-1a hash — the dedupe bucket. Exact key
// equality is still checked within a bucket, so a hash collision costs
// only a missed dedupe, never a wrong result.
func (k memoKey) fingerprint() uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%+v", k)
	return h.Sum64()
}

// memoKeyOf builds a point's memo key, or reports that the point is not
// memoizable (it carries code whose behavior the key cannot capture).
func memoKeyOf(p SweepPoint) (memoKey, bool) {
	sc := p.Scenario
	if sc.SuccessCheck != nil || sc.NewGuard != nil || sc.Chooser != nil ||
		sc.Victim == nil || sc.Attacker == nil ||
		!comparableProg(sc.Victim) || !comparableProg(sc.Attacker) {
		return memoKey{}, false
	}
	sc = sc.withDefaults()
	return memoKey{
		sig:    sigOf(sc),
		rounds: p.Rounds,
		seed:   sc.Seed,
		sys:    sc.UseSyscall,
		trace:  sc.Trace,
		plan:   planKeyOf(sc.Faults),
	}, true
}

// memoPlan maps a sweep with duplicate points onto its unique
// representatives.
type memoPlan struct {
	rep    []int // original index -> its representative's original index
	uniq   []int // representative original indices, in original order
	toUniq []int // representative original index -> position in uniq (-1 elsewhere)
}

// memoObservable reports whether the options make per-point execution
// observable in a way memoization cannot reproduce. onPointDone is
// deliberately absent: completions of duplicates are fanned out by
// RunSweepPoints, so the hook composes with memoization (checkpointed
// sweeps dedupe like plain ones).
func memoObservable(opt SweepOptions) bool {
	return opt.OnRound != nil || opt.stopAfterPoints != 0 || opt.Adaptive.enabled()
}

// memoizeSweep plans the dedupe, or returns nil when memoization is
// inapplicable or would save nothing (the common all-distinct case costs
// one fingerprint per point and no allocation beyond the key map).
func memoizeSweep(points []SweepPoint, opt SweepOptions) *memoPlan {
	if memoObservable(opt) || len(points) < 2 {
		return nil
	}
	type slot struct {
		key memoKey
		idx int
	}
	groups := make(map[uint64][]slot, len(points))
	rep := make([]int, len(points))
	dups := 0
	for i, p := range points {
		key, ok := memoKeyOf(p)
		if !ok {
			rep[i] = i
			continue
		}
		fp := key.fingerprint()
		rep[i] = i
		for _, s := range groups[fp] {
			if s.key == key {
				rep[i] = s.idx
				dups++
				break
			}
		}
		if rep[i] == i {
			groups[fp] = append(groups[fp], slot{key, i})
		}
	}
	if dups == 0 {
		return nil
	}
	plan := &memoPlan{rep: rep, toUniq: make([]int, len(points))}
	for i := range plan.toUniq {
		plan.toUniq[i] = -1
	}
	for i, r := range rep {
		if r == i {
			plan.toUniq[i] = len(plan.uniq)
			plan.uniq = append(plan.uniq, i)
		}
	}
	return plan
}

// duplicates maps each representative's original index to the original
// indices of the points it stands in for, in original order. Only
// representatives with at least one duplicate appear.
func (p *memoPlan) duplicates() map[int][]int {
	d := make(map[int][]int)
	for i, r := range p.rep {
		if r != i {
			d[r] = append(d[r], i)
		}
	}
	return d
}
