package core

import (
	"testing"
	"time"

	"tocttou/internal/attack"
	"tocttou/internal/defense"
	"tocttou/internal/fs"
	"tocttou/internal/machine"
	"tocttou/internal/victim"
)

// These integration tests assert the calibration bands from DESIGN.md:
// the qualitative shape of every headline result in the paper. Round
// counts are chosen so the bands hold with margin at the fixed seeds.

func campaign(t *testing.T, sc Scenario, rounds int) CampaignResult {
	t.Helper()
	res, err := RunCampaign(sc, rounds)
	if err != nil {
		t.Fatalf("campaign: %v", err)
	}
	return res
}

func viSc(m machine.Profile, size int64, seed int64, traced bool) Scenario {
	return Scenario{
		Machine: m, Victim: victim.NewVi(), Attacker: attack.NewV1(),
		UseSyscall: "chown", FileSize: size, Seed: seed, Trace: traced,
	}
}

func TestViUniprocessorLowSingleDigitsAt100KB(t *testing.T) {
	res := campaign(t, viSc(machine.Uniprocessor(), 100<<10, 501, false), 300)
	if r := res.Rate(); r > 0.08 {
		t.Errorf("rate = %.1f%%, want low single digits (paper ~1.5-2%%)", r*100)
	}
}

func TestViUniprocessorRisesWithFileSize(t *testing.T) {
	small := campaign(t, viSc(machine.Uniprocessor(), 100<<10, 502, false), 300)
	large := campaign(t, viSc(machine.Uniprocessor(), 1000<<10, 503, false), 300)
	if large.Rate() < 0.08 || large.Rate() > 0.30 {
		t.Errorf("1MB rate = %.1f%%, want ~10-25%% (paper ~18%%)", large.Rate()*100)
	}
	if large.Rate() <= small.Rate() {
		t.Errorf("success must rise with file size: %.1f%% -> %.1f%%",
			small.Rate()*100, large.Rate()*100)
	}
}

func TestViSMPNearCertainFor100KB(t *testing.T) {
	res := campaign(t, viSc(machine.SMP2(), 100<<10, 504, false), 200)
	if res.Rate() < 0.99 {
		t.Errorf("rate = %.1f%%, want ~100%% (paper: 100%% for 20KB-1MB)", res.Rate()*100)
	}
}

func TestViSMPOneByteMatchesTable1(t *testing.T) {
	res := campaign(t, viSc(machine.SMP2(), 1, 505, true), 400)
	if r := res.Rate(); r < 0.90 || r > 0.995 {
		t.Errorf("rate = %.1f%%, want ≈96%% (Table 1)", r*100)
	}
	if l := res.L.Mean(); l < 50 || l > 75 {
		t.Errorf("L = %.1fµs, want ≈61.6µs (Table 1)", l)
	}
	if d := res.D.Mean(); d < 32 || d > 50 {
		t.Errorf("D = %.1fµs, want ≈41.1µs (Table 1)", d)
	}
	if res.L.Mean() <= res.D.Mean() {
		t.Error("L must exceed D for the near-certain attack")
	}
}

func TestGeditUniprocessorNearZero(t *testing.T) {
	sc := Scenario{
		Machine: machine.Uniprocessor(), Victim: victim.NewGedit(), Attacker: attack.NewV1(),
		UseSyscall: "chmod", FileSize: 2 << 10, Seed: 506,
	}
	res := campaign(t, sc, 300)
	if res.Rate() > 0.01 {
		t.Errorf("rate = %.1f%%, want ~0%% (paper §4.2: no successes)", res.Rate()*100)
	}
}

func TestGeditSMPMatchesTable2(t *testing.T) {
	sc := Scenario{
		Machine: machine.SMP2(), Victim: victim.NewGedit(), Attacker: attack.NewV1(),
		UseSyscall: "chmod", FileSize: 2 << 10, Seed: 507, Trace: true,
	}
	res := campaign(t, sc, 400)
	if r := res.Rate(); r < 0.65 || r > 0.95 {
		t.Errorf("rate = %.1f%%, want ≈83%% (paper §6.1)", r*100)
	}
	// The conservative L under-predicts, as the paper's Table 2 notes:
	// clamp(L/D) must be clearly below the observed rate.
	if pred := res.L.Mean() / res.D.Mean(); pred > res.Rate()-0.15 {
		t.Errorf("conservative L/D = %.2f should under-predict observed %.2f", pred, res.Rate())
	}
	if d := res.D.Mean(); d < 30 || d > 50 {
		t.Errorf("D = %.1fµs, want ≈33-41µs band", d)
	}
}

func TestGeditMulticoreTrapKillsNaiveAttacker(t *testing.T) {
	v1 := campaign(t, Scenario{
		Machine: machine.MultiCore(), Victim: victim.NewGedit(), Attacker: attack.NewV1(),
		UseSyscall: "chmod", FileSize: 2 << 10, Seed: 508, Trace: true,
	}, 300)
	v2 := campaign(t, Scenario{
		Machine: machine.MultiCore(), Victim: victim.NewGedit(), Attacker: attack.NewV2(),
		UseSyscall: "chmod", FileSize: 2 << 10, Seed: 509, Trace: true,
	}, 300)
	if v1.Rate() > 0.05 {
		t.Errorf("v1 rate = %.1f%%, want ~0%% (§6.2.1)", v1.Rate()*100)
	}
	if v2.Rate() < 0.30 {
		t.Errorf("v2 rate = %.1f%%, want many successes (§6.2.2)", v2.Rate()*100)
	}
	if v2.Rate() < v1.Rate()+0.25 {
		t.Errorf("pre-faulting must transform the outcome: v1=%.1f%% v2=%.1f%%",
			v1.Rate()*100, v2.Rate()*100)
	}
	// v2's detection gap D must be much smaller than v1's (no trap).
	if v1.D.N() > 0 && v2.D.N() > 0 && v2.D.Mean() > v1.D.Mean()-5 {
		t.Errorf("v2 D=%.1fµs should be well below v1 D=%.1fµs", v2.D.Mean(), v1.D.Mean())
	}
}

func TestAlwaysSuspendedVictimFallsOnUniprocessor(t *testing.T) {
	sc := Scenario{
		Machine: machine.Uniprocessor(), Victim: victim.NewAlwaysSuspended(), Attacker: attack.NewV1(),
		UseSyscall: "chown", FileSize: 100 << 10, Seed: 510,
	}
	res := campaign(t, sc, 200)
	if res.Rate() < 0.97 {
		t.Errorf("rate = %.1f%%, want ~100%% (P(susp)=1, §3.2)", res.Rate()*100)
	}
}

func TestPipelinedAttackerSucceedsOnMulticore(t *testing.T) {
	sc := Scenario{
		Machine: machine.MultiCore(), Victim: victim.NewGedit(), Attacker: attack.NewPipelined(),
		UseSyscall: "chmod", FileSize: 100 << 10, Seed: 511,
	}
	res := campaign(t, sc, 200)
	if res.Rate() < 0.30 {
		t.Errorf("pipelined rate = %.1f%%, want substantial (§7)", res.Rate()*100)
	}
}

func TestDefenseDrivesAttackToZero(t *testing.T) {
	sc := viSc(machine.SMP2(), 100<<10, 512, false)
	sc.NewGuard = func() fs.Guard { return defense.New(defense.Enforce) }
	res := campaign(t, sc, 150)
	if res.Rate() > 0.01 {
		t.Errorf("guarded rate = %.1f%%, want ~0%%", res.Rate()*100)
	}
	if res.AttackErrors < 100 {
		t.Errorf("attack errors = %d, want most rounds denied", res.AttackErrors)
	}
}

func TestRoundDeterminism(t *testing.T) {
	sc := viSc(machine.SMP2(), 1, 513, true)
	a, err := RunRound(sc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunRound(sc)
	if err != nil {
		t.Fatal(err)
	}
	if a.Success != b.Success || a.LD.D != b.LD.D || a.LD.L != b.LD.L || a.End != b.End {
		t.Errorf("same seed produced different rounds: %+v vs %+v", a.LD, b.LD)
	}
	if len(a.Events) != len(b.Events) {
		t.Errorf("trace lengths differ: %d vs %d", len(a.Events), len(b.Events))
	}
}

func TestCampaignDeterministicAcrossParallelism(t *testing.T) {
	sc := viSc(machine.SMP2(), 1, 514, false)
	a := campaign(t, sc, 60)
	b := campaign(t, sc, 60)
	if a.Successes != b.Successes {
		t.Errorf("campaign successes differ: %d vs %d", a.Successes, b.Successes)
	}
}

func TestRoundReportsWindow(t *testing.T) {
	sc := viSc(machine.SMP2(), 100<<10, 515, true)
	r, err := RunRound(sc)
	if err != nil {
		t.Fatal(err)
	}
	if !r.WindowOK {
		t.Fatal("window not observed")
	}
	if r.Window < 1500*time.Microsecond || r.Window > 2100*time.Microsecond {
		t.Errorf("window = %v, want ≈1.7ms for 100KB on SMP", r.Window)
	}
}

func TestScenarioValidation(t *testing.T) {
	if _, err := RunRound(Scenario{Machine: machine.SMP2()}); err == nil {
		t.Error("missing victim/attacker must error")
	}
	if _, err := RunCampaign(viSc(machine.SMP2(), 1, 1, false), 0); err == nil {
		t.Error("zero rounds must error")
	}
}

func TestAttackerKilledAfterVictimExit(t *testing.T) {
	// A round where the attacker never detects (gedit on UP) must still
	// terminate: the harness kills the attacker when the victim exits.
	sc := Scenario{
		Machine: machine.Uniprocessor(), Victim: victim.NewGedit(), Attacker: attack.NewV1(),
		UseSyscall: "chmod", FileSize: 2 << 10, Seed: 516,
	}
	done := make(chan error, 1)
	go func() {
		_, err := RunRound(sc)
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("round did not terminate")
	}
}
