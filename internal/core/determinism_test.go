package core

import (
	"runtime"
	"testing"

	"tocttou/internal/machine"
)

// These tests are the regression harness for the allocation-free hot path:
// the zero-boxing event queue, the recycled kernel/FS round contexts, and
// the parallel campaign runner must all be invisible in the results. A
// campaign is a pure function of its scenario — any divergence between
// repeated runs, serial and parallel execution, or fresh and recycled
// round contexts is a bug in the reuse machinery, not noise.

const determinismRounds = 200

// errEq compares program-level errors by message: equivalent failures in
// separate runs are distinct values.
func errEq(a, b error) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	return a == nil || a.Error() == b.Error()
}

func deterministicViSMP() Scenario {
	// Traced, so the L/D and window measurement paths (the heaviest
	// consumers of the trace buffer that round-context reuse recycles)
	// are exercised too.
	return viSc(machine.SMP2(), 100<<10, 7001, true)
}

func TestCampaignDeterministicAcrossRuns(t *testing.T) {
	sc := deterministicViSMP()
	a := campaign(t, sc, determinismRounds)
	b := campaign(t, sc, determinismRounds)
	if a != b {
		t.Fatalf("identical campaigns diverged:\n a: %+v\n b: %+v", a, b)
	}
}

func TestCampaignDeterministicSerialVsParallel(t *testing.T) {
	sc := deterministicViSMP()
	parallel := campaign(t, sc, determinismRounds)

	prev := runtime.GOMAXPROCS(1)
	serial := campaign(t, sc, determinismRounds)
	runtime.GOMAXPROCS(prev)

	if parallel != serial {
		t.Fatalf("campaign result depends on parallelism:\n gomaxprocs=n: %+v\n gomaxprocs=1: %+v", parallel, serial)
	}
}

func TestReusedRoundContextMatchesFresh(t *testing.T) {
	// Drive one reused context through a sequence of rounds and replay
	// each round with a fresh kernel/FS/tracer; every observable field
	// must agree (Events alias the reused buffer, so they are compared
	// per-round before the next reuse overwrites them).
	sc := deterministicViSMP()
	var st roundState
	for i := 0; i < 25; i++ {
		rsc := sc
		rsc.Seed = sc.Seed + int64(i+1)*SeedStride
		reused, err := runRound(rsc, &st)
		if err != nil {
			t.Fatalf("round %d (reused): %v", i, err)
		}
		fresh, err := RunRound(rsc)
		if err != nil {
			t.Fatalf("round %d (fresh): %v", i, err)
		}
		if len(reused.Events) != len(fresh.Events) {
			t.Fatalf("round %d: trace length differs: reused %d, fresh %d",
				i, len(reused.Events), len(fresh.Events))
		}
		for j := range fresh.Events {
			if reused.Events[j] != fresh.Events[j] {
				t.Fatalf("round %d: trace diverges at event %d:\nreused: %+v\n fresh: %+v",
					i, j, reused.Events[j], fresh.Events[j])
			}
		}
		if !errEq(reused.VictimErr, fresh.VictimErr) || !errEq(reused.AttackerErr, fresh.AttackerErr) {
			t.Fatalf("round %d: program errors differ:\nreused: %v / %v\n fresh: %v / %v",
				i, reused.VictimErr, reused.AttackerErr, fresh.VictimErr, fresh.AttackerErr)
		}
		if reused.Success != fresh.Success || reused.LD != fresh.LD ||
			reused.Window != fresh.Window || reused.WindowOK != fresh.WindowOK ||
			reused.VictimSuspended != fresh.VictimSuspended ||
			reused.VictimPID != fresh.VictimPID || reused.AttackerPID != fresh.AttackerPID ||
			reused.End != fresh.End || reused.Kernel != fresh.Kernel {
			t.Fatalf("round %d: reused context changed the outcome:\nreused: %+v\n fresh: %+v",
				i, reused, fresh)
		}
	}
}
