package core

import "flag"

// probeEnabled gates the calibration probe, which is a tuning aid rather
// than a correctness test.
var probeEnabled bool

func init() {
	flag.BoolVar(&probeEnabled, "probe", false, "run the calibration probe")
}
