package core

import (
	"errors"
	"sync/atomic"
	"testing"

	"tocttou/internal/fault"
	"tocttou/internal/fs"
	"tocttou/internal/machine"
)

// These tests pin down sweep-point memoization (memo.go): duplicate
// points must yield bit-identical results while being simulated once,
// and memoization must stand down — executing everything — whenever
// per-point execution is observable or a point's identity cannot be
// captured in the key.

func TestSweepMemoizationDedupesIdenticalPoints(t *testing.T) {
	a := viSc(machine.Uniprocessor(), 50<<10, 41011, false)
	b := viSc(machine.SMP2(), 20<<10, 41013, true)
	c := viSc(machine.MultiCore(), 4<<10, 41017, false)
	// Duplicate FSOps slices with distinct backing arrays must still
	// merge: the key canonicalizes the one slice field.
	a.Faults = fault.Plan{Seed: 7, FSRate: 0.02, FSOps: []fs.Op{fs.OpOpen, fs.OpWrite}}
	aDup := a
	aDup.Faults.FSOps = []fs.Op{fs.OpOpen, fs.OpWrite}

	points := []SweepPoint{
		{Scenario: a, Rounds: 30},
		{Scenario: b, Rounds: 20},
		{Scenario: aDup, Rounds: 30},
		{Scenario: c, Rounds: 25},
		{Scenario: b, Rounds: 20},
		{Scenario: a, Rounds: 30},
	}
	direct, dStats, err := runSweepPointsDirect(points, SweepOptions{})
	if err != nil {
		t.Fatalf("direct sweep: %v", err)
	}
	memo, mStats, err := RunSweepPoints(points, SweepOptions{})
	if err != nil {
		t.Fatalf("memoized sweep: %v", err)
	}
	for i := range points {
		if memo[i] != direct[i] {
			t.Errorf("point %d: memoized result diverged from direct:\n got: %+v\nwant: %+v", i, memo[i], direct[i])
		}
	}
	if mStats.PointsMemoized != 3 {
		t.Errorf("PointsMemoized = %d, want 3", mStats.PointsMemoized)
	}
	if want := 30 + 20 + 25; mStats.RoundsExecuted != want || mStats.RoundsCommitted != want {
		t.Errorf("memoized stats = %+v, want %d rounds executed and committed (uniques only)", mStats, want)
	}
	if want := 30*2 + 20*2 + 25 + 30; dStats.RoundsExecuted != want {
		t.Errorf("direct stats = %+v, want the full %d rounds executed", dStats, want)
	}
}

func TestSweepMemoizationKeySeparatesConfigs(t *testing.T) {
	base := viSc(machine.SMP2(), 20<<10, 42011, false)
	for name, mutate := range map[string]func(*SweepPoint){
		"rounds":    func(p *SweepPoint) { p.Rounds = 13 },
		"seed":      func(p *SweepPoint) { p.Scenario.Seed += 1 },
		"size":      func(p *SweepPoint) { p.Scenario.FileSize = 21 << 10 },
		"trace":     func(p *SweepPoint) { p.Scenario.Trace = true },
		"faultSeed": func(p *SweepPoint) { p.Scenario.Faults.Seed = 3 },
		"faultKill": func(p *SweepPoint) { p.Scenario.Faults.KillVictimRate = 0.1 },
		"faultOps":  func(p *SweepPoint) { p.Scenario.Faults.FSOps = []fs.Op{fs.OpOpen} },
		"coalesce":  func(p *SweepPoint) { p.Scenario.DisableCoalesce = true },
	} {
		points := []SweepPoint{
			{Scenario: base, Rounds: 12},
			{Scenario: base, Rounds: 12},
		}
		mutate(&points[1])
		if plan := memoizeSweep(points, SweepOptions{}); plan != nil {
			t.Errorf("%s: points differing in %s were merged", name, name)
		}
	}
	// Sanity: with no mutation the same pair does merge.
	points := []SweepPoint{
		{Scenario: base, Rounds: 12},
		{Scenario: base, Rounds: 12},
	}
	if plan := memoizeSweep(points, SweepOptions{}); plan == nil {
		t.Fatal("identical pair was not merged")
	}
}

func TestSweepMemoizationStandsDown(t *testing.T) {
	base := viSc(machine.SMP2(), 20<<10, 43011, false)
	dup := []SweepPoint{
		{Scenario: base, Rounds: 12},
		{Scenario: base, Rounds: 12},
	}
	if memoizeSweep(dup, SweepOptions{OnRound: func(int, int, Round) {}}) != nil {
		t.Error("memoized despite OnRound callback")
	}
	if memoizeSweep(dup, SweepOptions{onPointDone: func(int, CampaignResult) {}}) == nil {
		t.Error("onPointDone alone suppressed memoization; completions fan out, so it must compose")
	}
	if memoizeSweep(dup, SweepOptions{stopAfterPoints: 1}) != nil {
		t.Error("memoized despite stopAfterPoints")
	}
	if memoizeSweep(dup, SweepOptions{Adaptive: AdaptiveStop{MinRounds: 4, HalfWidth: 0.05}}) != nil {
		t.Error("memoized despite adaptive stopping")
	}
	hooked := append([]SweepPoint(nil), dup...)
	hooked[0].Scenario.SuccessCheck = func(*fs.FS, Paths, int) bool { return false }
	hooked[1].Scenario.SuccessCheck = func(*fs.FS, Paths, int) bool { return false }
	if memoizeSweep(hooked, SweepOptions{}) != nil {
		t.Error("memoized points carrying SuccessCheck hooks")
	}

	// And the stand-down is observable end to end: with OnRound set,
	// every budgeted round of both duplicate points is reported.
	// (Calls for different points may be concurrent, hence the atomic.)
	var seen atomic.Int64
	_, stats, err := RunSweepPoints(dup, SweepOptions{OnRound: func(int, int, Round) { seen.Add(1) }})
	if err != nil {
		t.Fatalf("sweep with OnRound: %v", err)
	}
	if seen.Load() != 24 || stats.PointsMemoized != 0 || stats.RoundsExecuted != 24 {
		t.Errorf("OnRound saw %d rounds, stats %+v; want 24 rounds and no memoization", seen.Load(), stats)
	}
}

func TestSweepMemoizationRemapsErrorPoint(t *testing.T) {
	healthy := viSc(machine.SMP2(), 4<<10, 44011, false)
	points := []SweepPoint{
		{Scenario: healthy, Rounds: 10},
		{Scenario: healthy, Rounds: 10}, // memoized away: shifts unique indices
		{Scenario: failingScenario(44013), Rounds: 10},
	}
	_, _, err := RunSweepPoints(points, SweepOptions{})
	if err == nil {
		t.Fatal("sweep with a failing point succeeded, want error")
	}
	var se *SweepError
	if !errors.As(err, &se) {
		t.Fatalf("error %v is not a *SweepError", err)
	}
	if se.Point != 2 {
		t.Errorf("failing point = %d, want the original index 2", se.Point)
	}
}
