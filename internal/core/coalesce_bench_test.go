package core

import "testing"

// benchRoundWith times forked rounds of the Fig 6 sweep's largest point
// (1000KB — the one dominated by chunked-write simulation) with stretch
// coalescing either enabled or forced off, so the two benchmarks bracket
// exactly the win the coalescing fast path buys.
func benchRoundWith(b *testing.B, disable bool) {
	sc := benchScenario()
	sc.FileSize = 1000 << 10
	sc.Seed = 1007 + 9*7919 // the sweep's 1000KB point seed
	sc.DisableCoalesce = disable
	var st roundState
	if _, err := runRound(sc, &st); err != nil {
		b.Fatal(err)
	}
	if !st.prefix.valid {
		b.Fatal("prefix not captured; scenario unexpectedly not forkable")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc.Seed = 1007 + int64(i+1)*SeedStride
		if _, err := runRound(sc, &st); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBigFileRoundCoalesced is the production configuration: chunked
// writes retire through Stretch coalescing wherever the stretch is
// provably uncontended.
func BenchmarkBigFileRoundCoalesced(b *testing.B) { benchRoundWith(b, false) }

// BenchmarkBigFileRoundStepped forces Config.DisableCoalesce, stepping
// every chunk through the event loop — the pre-coalescing cost model the
// equivalence suite compares against bit for bit.
func BenchmarkBigFileRoundStepped(b *testing.B) { benchRoundWith(b, true) }
