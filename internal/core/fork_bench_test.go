package core

import (
	"testing"

	"tocttou/internal/attack"
	"tocttou/internal/machine"
	"tocttou/internal/victim"
)

// benchScenario is the Fig 6 sweep's first point: the configuration the
// throughput acceptance gate (BENCH_3.json / make bench-guard) times.
func benchScenario() Scenario {
	return Scenario{
		Machine:    machine.Uniprocessor(),
		Victim:     victim.NewVi(),
		Attacker:   attack.NewV1(),
		UseSyscall: "chown",
		FileSize:   100 << 10,
		Seed:       1007,
	}
}

// BenchmarkForkedRound times rounds through the prefix-forking path a
// sweep worker takes from the second round of a point onward: every
// iteration is one Kernel.Fork + FS.Fork + full simulated round.
func BenchmarkForkedRound(b *testing.B) {
	sc := benchScenario()
	var st roundState
	if _, err := runRound(sc, &st); err != nil {
		b.Fatal(err)
	}
	if !st.prefix.valid {
		b.Fatal("prefix not captured; scenario unexpectedly not forkable")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc.Seed = 1007 + int64(i+1)*SeedStride
		if _, err := runRound(sc, &st); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkClassicRound times the same scenario through the classic
// rebuild-everything path (fresh kernel, fixture, goroutines per round)
// for comparison against BenchmarkForkedRound.
func BenchmarkClassicRound(b *testing.B) {
	sc := benchScenario()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc.Seed = 1007 + int64(i+1)*SeedStride
		if _, err := RunRound(sc); err != nil {
			b.Fatal(err)
		}
	}
}

// TestForkedRoundAllocBudget pins the per-round allocation count of the
// forked path. The budget is deliberately tight: the forking machinery
// exists to make rounds (nearly) allocation-free, and a regression here
// silently erodes the throughput the acceptance benchmarks gate on.
func TestForkedRoundAllocBudget(t *testing.T) {
	sc := benchScenario()
	var st roundState
	if _, err := runRound(sc, &st); err != nil {
		t.Fatal(err)
	}
	seed := int64(1)
	avg := testing.AllocsPerRun(50, func() {
		sc.Seed = 1007 + seed*SeedStride
		seed++
		if _, err := runRound(sc, &st); err != nil {
			t.Fatal(err)
		}
	})
	const budget = 54
	if avg > budget {
		t.Fatalf("forked round allocates %.1f objects/round, budget %d", avg, budget)
	}
	t.Logf("forked round: %.1f allocs/round (budget %d)", avg, budget)
}
