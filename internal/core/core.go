// Package core orchestrates TOCTTOU attack experiments: it assembles a
// simulated machine, file system, victim, and attacker into a round,
// runs rounds into campaigns, and measures the paper's quantities
// (success rate, L, D, window length) from the traces.
//
// This is the library's primary entry point: construct a Scenario, then
// call RunRound for a single traced race or RunCampaign for statistics.
package core

import (
	"errors"
	"fmt"
	"time"

	"tocttou/internal/fault"
	"tocttou/internal/fs"
	"tocttou/internal/machine"
	"tocttou/internal/prog"
	"tocttou/internal/sim"
	"tocttou/internal/stats"
	"tocttou/internal/trace"
	"tocttou/internal/userland"
)

// Paths is the round's file-system fixture layout.
type Paths struct {
	// Home is the attacker's home directory (attacker-owned, mode 0755).
	Home string
	// Target is the contested file the victim edits (attacker-owned).
	Target string
	// Backup is the victim's backup name for the original.
	Backup string
	// Temp is gedit's scratch file.
	Temp string
	// Passwd is the privileged file (root-owned); a round succeeds when
	// its owner becomes the attacker.
	Passwd string
	// Dummy is attacker v2's warm-up path.
	Dummy string
	// PasswdSize is the privileged file's size.
	PasswdSize int64
}

// DefaultPaths returns the standard fixture.
func DefaultPaths() Paths {
	return Paths{
		Home:       "/home/alice",
		Target:     "/home/alice/report.txt",
		Backup:     "/home/alice/report.txt~",
		Temp:       "/home/alice/.goutputstream-report",
		Passwd:     "/etc/passwd",
		Dummy:      "/home/alice/dummy",
		PasswdSize: 2048,
	}
}

// Scenario fully describes an experiment configuration.
type Scenario struct {
	// Machine is the calibrated hardware/OS profile.
	Machine machine.Profile
	// Victim runs as root; Attacker runs as the normal user.
	Victim   prog.Program
	Attacker prog.Program
	// UseSyscall names the victim call that closes the race for L/D
	// analysis: "chown" for vi's pair, "chmod" for gedit's (§6.1).
	UseSyscall string
	// FileSize is the edited document's size in bytes.
	FileSize int64
	// VictimStartupMax bounds the uniform pre-save delay modeling editor
	// activity before the save. Zero selects a default: one quantum on a
	// uniprocessor (uniform window phase), 2ms on multiprocessors.
	VictimStartupMax time.Duration
	// AttackerUID and AttackerGID identify the normal user (default
	// 1000/1000 when zero).
	AttackerUID int
	AttackerGID int
	// Seed makes the round deterministic.
	Seed int64
	// Trace enables event collection (needed for L/D and timelines).
	Trace bool
	// TrackContent stores file bytes in the simulated FS.
	TrackContent bool
	// UnsynchronizedLookups forwards the fs ablation knob of the same
	// name (DESIGN.md decision 3); for ablation benchmarks only.
	UnsynchronizedLookups bool
	// LoadThreads spawns that many CPU-bound background threads,
	// modeling system load: on a loaded machine the attacker competes
	// for the CPU freed by a suspended victim — Equation 1's
	// P(attack scheduled | victim suspended) term.
	LoadThreads int
	// AttackerNice sets the attacker thread's scheduling priority
	// (lower wins). The paper's §3.2 notes priority as one of the
	// factors behind P(attack scheduled).
	AttackerNice int
	// SuccessCheck overrides the success criterion. The default reports
	// success when the privileged file's owner became the attacker; the
	// sendmail-style append attack instead checks for injected content.
	SuccessCheck func(f *fs.FS, p Paths, attackerUID int) bool
	// NewGuard optionally builds a kernel defense for each round (see
	// internal/defense). A fresh guard per round keeps campaign rounds
	// independent and parallel-safe.
	NewGuard func() fs.Guard
	// Chooser, when non-nil, replaces every stochastic element of the
	// round with an explicit choice point: the victim's startup phase
	// (see PhaseSlots), dispatch ties, semaphore wake order, storage
	// stalls (fixed median duration, bounded by StallBound), and
	// background noise (see NoiseSlots). Implementations must be safe
	// for concurrent use when the scenario runs in a campaign
	// (sim.RandomChooser and other stateless choosers are).
	Chooser sim.Chooser
	// PhaseSlots discretizes the victim's uniform startup delay into
	// that many equally likely slots (midpoints of [0, VictimStartupMax))
	// when a Chooser is set. Zero keeps the continuous RNG draw.
	PhaseSlots int
	// NoiseSlots forwards the bounded noise-injection model to the
	// kernel when a Chooser is set (see sim.NoiseSlotConfig).
	NoiseSlots sim.NoiseSlotConfig
	// StallBound caps chooser-driven storage stalls per round
	// (sim.Config.StallBound); 0 = unbounded.
	StallBound int
	// DisableCoalesce forces every round onto the fully stepped event-loop
	// path (sim.Config.DisableCoalesce), bypassing the stretch coalescing
	// fast-forward. Outcomes are bit-identical either way — the
	// equivalence suite flips this knob to prove it.
	DisableCoalesce bool
	// Horizon, when positive, truncates the round at that virtual time
	// and evaluates the outcome as-is (the attack either already landed
	// or it lost). Exploration uses it to bound the schedule tree of
	// loaded scenarios, where delay branches otherwise stretch rounds —
	// and stack choice points — without limit.
	Horizon time.Duration
	// Faults, when enabled, arms the deterministic fault-injection plan
	// for every round: injected fs errnos, EINTR-style semaphore-wait
	// interruptions, and mid-round kills (see internal/fault). A disabled
	// plan (the zero value) leaves the round on the exact fault-free code
	// path and consumes no randomness.
	Faults fault.Plan
	// Watchdog, when positive, aborts any round that is still running
	// after that much virtual time and reports a diagnostic error naming
	// the seed — catching runaway rounds (a victim retry loop that never
	// converges, say) long before the kernel's 10-minute MaxTime default.
	// Ignored when Horizon is set: a horizon already bounds the round and
	// evaluates the truncated outcome instead of failing.
	Watchdog time.Duration
	// Paths overrides the fixture layout when non-zero.
	Paths *Paths
}

func (sc Scenario) withDefaults() Scenario {
	if sc.AttackerUID == 0 {
		sc.AttackerUID = 1000
	}
	if sc.AttackerGID == 0 {
		sc.AttackerGID = 1000
	}
	if sc.UseSyscall == "" {
		sc.UseSyscall = "chown"
	}
	if sc.VictimStartupMax == 0 {
		if sc.Machine.CPUs == 1 {
			sc.VictimStartupMax = sc.Machine.Quantum
		} else {
			sc.VictimStartupMax = 2 * time.Millisecond
		}
	}
	if sc.Paths == nil {
		sc.Paths = &defaultPaths
	}
	return sc
}

// defaultPaths backs withDefaults' nil-Paths case so defaulting a scenario
// does not allocate per round. Nothing in the tree writes through a
// Scenario's Paths pointer; the shared value is effectively immutable.
var defaultPaths = DefaultPaths()

// Round is the outcome of one simulated race.
type Round struct {
	// Success reports whether the victim's chown landed on the
	// privileged file — the attacker owns /etc/passwd.
	Success bool
	// LD carries the L/D measurement (zero unless the scenario traced).
	LD trace.LDResult
	// Window is the vulnerability window length, if observed.
	Window time.Duration
	// WindowOK reports whether the window was observed (requires Trace).
	WindowOK bool
	// VictimSuspended reports whether the victim lost its CPU inside the
	// vulnerability window — Equation 1's P(victim suspended) event,
	// measured (requires Trace and an observed window).
	VictimSuspended bool
	// VictimErr and AttackerErr record program-level errors (a victim's
	// chown failing because the attacker raced poorly, etc.). They do
	// not invalidate the round.
	VictimErr   error
	AttackerErr error
	// Kernel is the simulated kernel's counter block for the round:
	// dispatches, preemptions, semaphore contention, traps, interrupt and
	// noise occupancy, and per-CPU busy time. Always populated — the
	// counters are maintained inline by the kernel, tracer or not.
	Kernel sim.KernelStats
	// Events is the raw trace when tracing was enabled.
	Events []sim.Event
	// VictimPID and AttackerPID identify the processes in the trace.
	VictimPID   int32
	AttackerPID int32
	// End is the virtual time at which the round completed.
	End sim.Time
	// Faults tallies the injected faults the round actually delivered
	// (all-zero unless the scenario armed a fault plan).
	Faults fault.Counters
}

// RunRound executes one seeded race and reports its outcome.
func RunRound(sc Scenario) (Round, error) { return runRound(sc, nil) }

// roundState is a reusable per-worker simulation context: the kernel, the
// file system, and the trace buffer survive across rounds so a campaign's
// steady state allocates almost nothing per round. A nil *roundState means
// "build everything fresh" (the RunRound path). Reuse changes no outcome:
// sim.Kernel.Reset and fs.FS.Reset restore the exact observable state of
// freshly constructed instances.
type roundState struct {
	k      *sim.Kernel
	f      *fs.FS
	tracer sim.SliceTracer
	// prefix caches the point's setup prefix for copy-on-write forking
	// (see fork.go). It survives across rounds and is rebuilt whenever the
	// scenario's prefix signature changes.
	prefix prefixState
}

func runRound(sc Scenario, st *roundState) (Round, error) {
	sc = sc.withDefaults()
	if sc.Victim == nil || sc.Attacker == nil {
		return Round{}, fmt.Errorf("core: scenario requires a victim and an attacker")
	}
	if forkable(sc, st) {
		return runPrefixedRound(sc, st)
	}
	return runClassicRound(sc, st)
}

// runClassicRound executes one round by building everything — kernel
// configuration, fixture tree, processes, thread closures — from scratch
// (modulo the roundState's recycled allocations). It is the reference
// execution path; kept separate from runRound so the closures built here
// don't force the Scenario to escape on the prefix-forking fast path.
func runClassicRound(sc Scenario, st *roundState) (Round, error) {
	var tracer *sim.SliceTracer
	var simTracer sim.Tracer
	if sc.Trace {
		if st != nil {
			st.tracer.Reset()
			tracer = &st.tracer
		} else {
			tracer = &sim.SliceTracer{}
		}
		simTracer = tracer
	}
	simCfg := sc.Machine.SimConfig(sc.Seed, simTracer)
	simCfg.Chooser = sc.Chooser
	simCfg.NoiseSlots = sc.NoiseSlots
	simCfg.StallBound = sc.StallBound
	simCfg.DisableCoalesce = sc.DisableCoalesce
	if sc.Horizon > 0 {
		simCfg.MaxTime = sc.Horizon
	} else if sc.Watchdog > 0 {
		simCfg.MaxTime = sc.Watchdog
	}
	fsCfg := fs.Config{
		Latency:               sc.Machine.Latency,
		TrackContent:          sc.TrackContent,
		UnsynchronizedLookups: sc.UnsynchronizedLookups,
	}
	// The fault injector rides the per-round configs: its stream is its
	// own (mixed from the plan seed and the round seed), so arming it
	// perturbs neither the kernel RNG nor any scheduling decision.
	var inj *fault.Injector
	if sc.Faults.Enabled() {
		if err := sc.Faults.Validate(); err != nil {
			return Round{}, fmt.Errorf("core: fault plan: %w", err)
		}
		inj = sc.Faults.NewInjector(sc.Seed)
		simCfg.Interrupter = inj
		fsCfg.Faults = inj
	}
	var k *sim.Kernel
	var f *fs.FS
	switch {
	case st == nil:
		k = sim.New(simCfg)
		f = fs.New(fsCfg)
	case st.k == nil:
		st.k = sim.New(simCfg)
		st.f = fs.New(fsCfg)
		k, f = st.k, st.f
	default:
		st.k.Reset(simCfg)
		st.f.Reset(fsCfg)
		k, f = st.k, st.f
	}
	if sc.NewGuard != nil {
		f.SetGuard(sc.NewGuard())
	}
	p := *sc.Paths
	buildFixture(f, p, sc)

	env := prog.Env{
		Target:   p.Target,
		Backup:   p.Backup,
		Temp:     p.Temp,
		Passwd:   p.Passwd,
		Dummy:    p.Dummy,
		FileSize: sc.FileSize,
		OwnerUID: sc.AttackerUID,
		OwnerGID: sc.AttackerGID,
		Machine:  sc.Machine,
	}

	victimProc := k.NewProcess(sc.Victim.Name(), 0, 0)
	attackerProc := k.NewProcess(sc.Attacker.Name(), sc.AttackerUID, sc.AttackerGID)
	victimImg := userland.NewImage(sc.Machine.TrapCost, true)
	attackerImg := userland.NewImage(sc.Machine.TrapCost, false)

	var startup time.Duration
	if sc.Chooser != nil && sc.PhaseSlots > 0 {
		// Discretized phase: a uniform pick among slot midpoints, so
		// exploration enumerates the phases exactly and a RandomChooser
		// campaign samples the identical distribution.
		slot := k.ChooseIndex(sim.ChoosePhase, sc.PhaseSlots, nil)
		startup = time.Duration(int64(2*slot+1) * int64(sc.VictimStartupMax) / int64(2*sc.PhaseSlots))
	} else {
		startup = stats.UniformDuration(k.RNG(), 0, sc.VictimStartupMax)
	}
	var victimErr, attackerErr error
	k.Spawn(victimProc, "victim", func(t *sim.Task) {
		// Editor activity before the save: randomizes the window's phase
		// relative to scheduler quanta.
		t.Compute(startup)
		victimErr = sc.Victim.Run(userland.Bind(t, f, victimImg), env)
	})
	attackerThread := k.Spawn(attackerProc, "attacker", func(t *sim.Task) {
		attackerErr = sc.Attacker.Run(userland.Bind(t, f, attackerImg), env)
	})
	attackerThread.SetNice(sc.AttackerNice)
	var loadProc *sim.Process
	if sc.LoadThreads > 0 {
		loadProc = k.NewProcess("load", 2000, 2000)
		for i := 0; i < sc.LoadThreads; i++ {
			hog := k.Spawn(loadProc, hogName(i), func(t *sim.Task) {
				for !t.Killed() {
					t.Compute(200 * time.Microsecond)
				}
			})
			// The hogs run identical closures, so exploration may merge
			// dispatch picks among hogs with equal remaining compute.
			hog.SetScheduleClass(1)
		}
	}
	// The call is gated on inj so the fault-free path never pays the
	// heap copies of the scenario and env captured by faultd's closures.
	var faultProc *sim.Process
	var restart *faultRestart
	if inj != nil {
		faultProc, restart = armFaultKills(k, f, sc, inj, victimProc, attackerProc, victimImg, env, &victimErr)
	}
	if faultProc == nil {
		k.OnProcessExit(func(proc *sim.Process) {
			if proc == victimProc {
				// The save completed; the window (if any) is closed.
				k.KillProcess(attackerProc)
				if loadProc != nil {
					k.KillProcess(loadProc)
				}
			}
		})
	} else {
		k.OnProcessExit(faultExitHook(k, victimProc, attackerProc, loadProc, faultProc, restart))
	}
	if err := runKernel(sc, k); err != nil {
		return Round{}, err
	}
	return collectRound(sc, k, f, tracer, inj, p, victimProc, attackerProc, victimErr, attackerErr)
}

// runKernel runs the booted round to completion and classifies the
// kernel's termination error under the scenario's horizon/watchdog policy.
func runKernel(sc Scenario, k *sim.Kernel) error {
	err := k.Run()
	if err == nil {
		return nil
	}
	// Hitting a configured horizon is a truncated round, not a failure;
	// hitting the watchdog is a diagnosed runaway.
	switch {
	case sc.Horizon > 0 && errors.Is(err, sim.ErrMaxTime):
		// Truncated round: evaluate the outcome as-is.
		return nil
	case sc.Watchdog > 0 && errors.Is(err, sim.ErrMaxTime):
		return fmt.Errorf(
			"core: watchdog: round (seed %d, victim %q, attacker %q) still running after %v of virtual time: %w",
			sc.Seed, sc.Victim.Name(), sc.Attacker.Name(), sc.Watchdog, err)
	default:
		return fmt.Errorf("core: round simulation: %w", err)
	}
}

// collectRound assembles the Round outcome after the kernel has finished.
func collectRound(sc Scenario, k *sim.Kernel, f *fs.FS, tracer *sim.SliceTracer,
	inj *fault.Injector, p Paths, victimProc, attackerProc *sim.Process,
	victimErr, attackerErr error) (Round, error) {
	round := Round{
		VictimErr:   victimErr,
		AttackerErr: attackerErr,
		VictimPID:   int32(victimProc.PID),
		AttackerPID: int32(attackerProc.PID),
		End:         k.Now(),
		Kernel:      k.Stats(),
	}
	if inj != nil {
		round.Faults = inj.Counters
	}
	if sc.SuccessCheck != nil {
		round.Success = sc.SuccessCheck(f, p, sc.AttackerUID)
	} else {
		info, err := f.LookupInfo(p.Passwd)
		if err != nil {
			return Round{}, fmt.Errorf("core: fixture corrupted, %s vanished: %w", p.Passwd, err)
		}
		round.Success = info.UID == sc.AttackerUID
	}
	if tracer != nil {
		round.Events = tracer.Events
		log := trace.New(tracer.Events)
		round.LD = trace.MeasureLD(log, trace.LDParams{
			VictimPID:   round.VictimPID,
			AttackerPID: round.AttackerPID,
			Target:      p.Target,
			UseSyscall:  sc.UseSyscall,
		})
		round.Window, round.WindowOK = log.WindowDuration(round.VictimPID, p.Target, sc.UseSyscall)
		if round.LD.WindowFound && round.LD.T3 > 0 {
			round.VictimSuspended = log.SuspendedInWindow(round.VictimPID, round.LD.T1, round.LD.T3)
		}
	}
	return round, nil
}

// faultRestart coordinates an injected victim kill with its supervised
// restart: while pending, the round's normal process-exit cleanup stands
// down (the victim's death is a crash, not a completed save).
type faultRestart struct{ pending bool }

// armFaultKills draws the round's injected-kill decisions and, when one
// fires, spawns a root "faultd" process whose threads deliver the kills at
// their drawn virtual-time instants. The draws happen in a fixed order
// (victim first, then attacker) so the injector's RNG stream is consumed
// identically on every host. Returns the faultd process (nil when no kill
// fires — the common case, which leaves the round's process set and its
// exit hook on the exact fault-free path) and the restart coordinator (nil
// unless a supervised victim kill is armed). Callers gate the call on a
// non-nil injector: the closures below capture sc and env, which moves
// both to the heap in this function's prologue — a cost fault-free rounds
// must not pay.
func armFaultKills(k *sim.Kernel, f *fs.FS, sc Scenario, inj *fault.Injector,
	victimProc, attackerProc *sim.Process, victimImg *userland.Image,
	env prog.Env, victimErr *error) (*sim.Process, *faultRestart) {
	vAt, vKill := inj.DrawKill(sc.Faults.KillVictimRate)
	aAt, aKill := inj.DrawKill(sc.Faults.KillAttackerRate)
	if !vKill && !aKill {
		return nil, nil
	}
	faultProc := k.NewProcess("faultd", 0, 0)
	var restart *faultRestart
	if vKill {
		if sc.Faults.Restart {
			restart = &faultRestart{}
		}
		rs := restart
		k.Spawn(faultProc, "faultd-victim", func(t *sim.Task) {
			t.Sleep(vAt)
			if !victimProc.Alive() {
				return // the save already completed; nothing left to kill
			}
			if rs != nil {
				rs.pending = true
			}
			inj.Counters.Kills++
			t.Trace(sim.Event{Kind: sim.EvFault, Label: "kill:victim"})
			k.KillProcess(victimProc)
			if rs == nil {
				return // unsupervised crash: the exit hook ends the round
			}
			t.Sleep(inj.RestartDelayOrDefault())
			inj.Counters.Restarts++
			t.Trace(sim.Event{Kind: sim.EvFault, Label: "restart:victim"})
			k.Spawn(victimProc, "victim", func(t *sim.Task) {
				*victimErr = sc.Victim.Run(userland.Bind(t, f, victimImg), env)
			})
			rs.pending = false
		})
	}
	if aKill {
		k.Spawn(faultProc, "faultd-attacker", func(t *sim.Task) {
			t.Sleep(aAt)
			if !attackerProc.Alive() {
				return
			}
			inj.Counters.Kills++
			t.Trace(sim.Event{Kind: sim.EvFault, Label: "kill:attacker"})
			k.KillProcess(attackerProc)
		})
	}
	return faultProc, restart
}

// hogNames caches debug names for the usual handful of load threads so a
// loaded round does not Sprintf per spawned hog.
var hogNames = [...]string{
	"hog0", "hog1", "hog2", "hog3", "hog4", "hog5", "hog6", "hog7",
	"hog8", "hog9", "hog10", "hog11", "hog12", "hog13", "hog14", "hog15",
}

func hogName(i int) string {
	if i < len(hogNames) {
		return hogNames[i]
	}
	return fmt.Sprintf("hog%d", i)
}

// buildFixture populates the file system for a round.
func buildFixture(f *fs.FS, p Paths, sc Scenario) {
	f.MustMkdirAll("/etc", 0o755, 0, 0)
	f.MustWriteFile(p.Passwd, p.PasswdSize, 0o644, 0, 0)
	f.MustMkdirAll(p.Home, 0o755, sc.AttackerUID, sc.AttackerGID)
	f.MustWriteFile(p.Target, sc.FileSize, 0o644, sc.AttackerUID, sc.AttackerGID)
	f.MustMkdirAll("/tmp", 0o777|fs.ModeSticky, 0, 0)
}
