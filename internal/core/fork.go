package core

import (
	"fmt"
	"reflect"
	"time"

	"tocttou/internal/fault"
	"tocttou/internal/fs"
	"tocttou/internal/machine"
	"tocttou/internal/prog"
	"tocttou/internal/sim"
	"tocttou/internal/stats"
	"tocttou/internal/userland"
)

// Prefix forking. Every round of a sweep point shares an identical setup
// prefix — machine config, fixture tree, process registrations, thread
// bodies — and diverges only at the first random draw. A reusable worker
// state therefore builds that prefix once (the first round of a point runs
// it classically and snapshots the boot), and stamps every later round out
// of the captured images: sim.Kernel.Fork replays the boot registrations
// onto recycled thread shells and fs.FS.Fork restores the fixture tree in
// place, skipping the per-round fixture build, process/thread construction,
// and goroutine creation entirely.
//
// Equivalence to the classic path is structural, not re-proved per round:
// the fork replays the same registration calls in the same order, and the
// only sequencing difference — the victim's startup draw happens after the
// replayed spawns instead of before them — is invisible because Spawn
// consumes sequence numbers but never the kernel RNG, so the startup draw
// is the round's first RNG use either way.

// prefixSig is the identity of a round's setup prefix: two scenarios with
// equal signatures boot bit-identical kernels and file systems. Everything
// per-round — Seed, Trace, Faults, SuccessCheck, UseSyscall — is excluded.
// Paths is compared by value (withDefaults materializes a fresh pointer
// per round). The struct must stay comparable.
type prefixSig struct {
	machine      machine.Profile
	victim       prog.Program
	attacker     prog.Program
	fileSize     int64
	startupMax   time.Duration
	uid, gid     int
	trackContent bool
	unsync       bool
	loadThreads  int
	attackerNice int
	noiseSlots   sim.NoiseSlotConfig
	stallBound   int
	noCoalesce   bool
	horizon      time.Duration
	watchdog     time.Duration
	paths        Paths
}

// sigOf extracts the prefix signature of a defaulted scenario.
func sigOf(sc Scenario) prefixSig {
	return prefixSig{
		machine:      sc.Machine,
		victim:       sc.Victim,
		attacker:     sc.Attacker,
		fileSize:     sc.FileSize,
		startupMax:   sc.VictimStartupMax,
		uid:          sc.AttackerUID,
		gid:          sc.AttackerGID,
		trackContent: sc.TrackContent,
		unsync:       sc.UnsynchronizedLookups,
		loadThreads:  sc.LoadThreads,
		attackerNice: sc.AttackerNice,
		noiseSlots:   sc.NoiseSlots,
		stallBound:   sc.StallBound,
		noCoalesce:   sc.DisableCoalesce,
		horizon:      sc.Horizon,
		watchdog:     sc.Watchdog,
		paths:        *sc.Paths,
	}
}

// comparableProg reports whether the program's dynamic type supports ==
// (signature comparison would panic otherwise). All in-tree programs are
// pointer-typed and qualify.
func comparableProg(p prog.Program) bool {
	t := reflect.TypeOf(p)
	return t != nil && t.Comparable()
}

// forkable reports whether the round can use the prefix-forking path.
// Guard rounds must rebuild per round (the guard observes the fixture
// build), and chooser rounds may resolve choice points during boot, so
// both provably bypass forking and run the classic path.
func forkable(sc Scenario, st *roundState) bool {
	return st != nil && sc.Chooser == nil && sc.NewGuard == nil &&
		comparableProg(sc.Victim) && comparableProg(sc.Attacker)
}

// prefixState is the captured setup prefix a worker reuses across the
// rounds of a sweep point. The spawned thread bodies read their per-round
// inputs through cells on this struct, so the closures captured at build
// time stay valid for every forked round.
type prefixState struct {
	valid bool
	sig   prefixSig

	kimg *sim.Image
	fimg *fs.Image

	victimProc   *sim.Process
	attackerProc *sim.Process
	loadProc     *sim.Process
	victimImg    *userland.Image
	attackerImg  *userland.Image
	victimLibc   *userland.Libc
	attackerLibc *userland.Libc
	env          prog.Env
	paths        Paths
	exitHook     func(*sim.Process)

	cells roundCells
}

// roundCells carries the values that change from round to round but are
// read by the prefix-captured closures.
type roundCells struct {
	startup     time.Duration
	victimErr   error
	attackerErr error
}

// hogBody is the load-thread body: a pure CPU burner in 200µs slices,
// identical to the classic inline closure but capture-free so the prefix
// image can share it across rounds.
func hogBody(t *sim.Task) {
	for !t.Killed() {
		t.Compute(200 * time.Microsecond)
	}
}

// runPrefixedRound executes one round through the prefix-forking path: the
// first round of a point (or a signature change) boots classically and
// snapshots the boot; every later round forks the snapshot. sc must
// already be defaulted and validated.
func runPrefixedRound(sc Scenario, st *roundState) (Round, error) {
	px := &st.prefix
	var tracer *sim.SliceTracer
	var simTracer sim.Tracer
	if sc.Trace {
		st.tracer.Reset()
		tracer = &st.tracer
		simTracer = tracer
	}
	var inj *fault.Injector
	if sc.Faults.Enabled() {
		if err := sc.Faults.Validate(); err != nil {
			return Round{}, fmt.Errorf("core: fault plan: %w", err)
		}
		inj = sc.Faults.NewInjector(sc.Seed)
	}
	sig := sigOf(sc)
	if st.k == nil || !px.valid || px.sig != sig {
		if err := buildPrefix(sc, st, sig, simTracer, inj); err != nil {
			return Round{}, err
		}
	} else {
		k, f := st.k, st.f
		var intr sim.Interrupter
		var hook fs.FaultHook
		if inj != nil {
			intr = inj
			hook = inj
		}
		k.Fork(px.kimg, sim.ForkConfig{Seed: sc.Seed, Tracer: simTracer, Interrupter: intr})
		f.Fork(px.fimg, hook)
		// The replay may have moved the registrations onto pooled shells
		// (always on the first fork after a classic boot); re-resolve the
		// prefix's process handles from registration order. The captured
		// closures read these through px, so they follow automatically.
		px.victimProc = k.Process(0)
		px.attackerProc = k.Process(1)
		if sc.LoadThreads > 0 {
			px.loadProc = k.Process(2)
		}
		px.victimImg.Reset(sc.Machine.TrapCost, true)
		px.attackerImg.Reset(sc.Machine.TrapCost, false)
		px.cells.victimErr, px.cells.attackerErr = nil, nil
		px.cells.startup = stats.UniformDuration(k.RNG(), 0, sc.VictimStartupMax)
	}
	k := st.k
	var faultProc *sim.Process
	var restart *faultRestart
	if inj != nil {
		faultProc, restart = armFaultKills(k, st.f, sc, inj,
			px.victimProc, px.attackerProc, px.victimImg, px.env, &px.cells.victimErr)
	}
	if faultProc == nil {
		k.OnProcessExit(px.exitHook)
	} else {
		k.OnProcessExit(faultExitHook(k, px.victimProc, px.attackerProc, px.loadProc, faultProc, restart))
	}
	if err := runKernel(sc, k); err != nil {
		return Round{}, err
	}
	return collectRound(sc, k, st.f, tracer, inj, px.paths,
		px.victimProc, px.attackerProc, px.cells.victimErr, px.cells.attackerErr)
}

// buildPrefix boots one round classically on the worker's reusable kernel
// and file system — the identical call sequence runRound's classic body
// performs — and captures the boot into the prefix images just before Run.
// The caller then finishes this same round; forked rounds replay the
// captured boot instead.
func buildPrefix(sc Scenario, st *roundState, sig prefixSig, simTracer sim.Tracer, inj *fault.Injector) error {
	px := &st.prefix
	px.valid = false
	simCfg := sc.Machine.SimConfig(sc.Seed, simTracer)
	simCfg.NoiseSlots = sc.NoiseSlots
	simCfg.StallBound = sc.StallBound
	simCfg.DisableCoalesce = sc.DisableCoalesce
	if sc.Horizon > 0 {
		simCfg.MaxTime = sc.Horizon
	} else if sc.Watchdog > 0 {
		simCfg.MaxTime = sc.Watchdog
	}
	fsCfg := fs.Config{
		Latency:               sc.Machine.Latency,
		TrackContent:          sc.TrackContent,
		UnsynchronizedLookups: sc.UnsynchronizedLookups,
	}
	if inj != nil {
		simCfg.Interrupter = inj
		fsCfg.Faults = inj
	}
	if st.k == nil {
		st.k = sim.New(simCfg)
		st.f = fs.New(fsCfg)
	} else {
		st.k.Reset(simCfg)
		st.f.Reset(fsCfg)
	}
	k, f := st.k, st.f
	px.paths = *sc.Paths
	buildFixture(f, px.paths, sc)
	px.env = prog.Env{
		Target:   px.paths.Target,
		Backup:   px.paths.Backup,
		Temp:     px.paths.Temp,
		Passwd:   px.paths.Passwd,
		Dummy:    px.paths.Dummy,
		FileSize: sc.FileSize,
		OwnerUID: sc.AttackerUID,
		OwnerGID: sc.AttackerGID,
		Machine:  sc.Machine,
	}
	px.victimProc = k.NewProcess(sc.Victim.Name(), 0, 0)
	px.attackerProc = k.NewProcess(sc.Attacker.Name(), sc.AttackerUID, sc.AttackerGID)
	if px.victimImg == nil {
		px.victimImg = userland.NewImage(sc.Machine.TrapCost, true)
		px.attackerImg = userland.NewImage(sc.Machine.TrapCost, false)
		px.victimLibc = &userland.Libc{}
		px.attackerLibc = &userland.Libc{}
	} else {
		px.victimImg.Reset(sc.Machine.TrapCost, true)
		px.attackerImg.Reset(sc.Machine.TrapCost, false)
	}
	px.cells.victimErr, px.cells.attackerErr = nil, nil
	// Classic draw order: startup before the spawns. Forked rounds draw
	// after the replayed spawns, which consume no randomness — the draw is
	// the first RNG use either way.
	px.cells.startup = stats.UniformDuration(k.RNG(), 0, sc.VictimStartupMax)
	victim, attacker := sc.Victim, sc.Attacker
	k.Spawn(px.victimProc, "victim", func(t *sim.Task) {
		t.Compute(px.cells.startup)
		px.cells.victimErr = victim.Run(px.victimLibc.Rebind(t, st.f, px.victimImg), px.env)
	})
	attackerThread := k.Spawn(px.attackerProc, "attacker", func(t *sim.Task) {
		px.cells.attackerErr = attacker.Run(px.attackerLibc.Rebind(t, st.f, px.attackerImg), px.env)
	})
	attackerThread.SetNice(sc.AttackerNice)
	px.loadProc = nil
	if sc.LoadThreads > 0 {
		px.loadProc = k.NewProcess("load", 2000, 2000)
		for i := 0; i < sc.LoadThreads; i++ {
			hog := k.Spawn(px.loadProc, hogName(i), hogBody)
			hog.SetScheduleClass(1)
		}
	}
	kimg, err := k.Snapshot()
	if err != nil {
		return fmt.Errorf("core: prefix snapshot: %w", err)
	}
	px.kimg = kimg
	px.fimg = f.Snapshot()
	px.exitHook = func(proc *sim.Process) {
		if proc == px.victimProc {
			k.KillProcess(px.attackerProc)
			if px.loadProc != nil {
				k.KillProcess(px.loadProc)
			}
		}
	}
	px.sig = sig
	px.valid = true
	return nil
}

// faultExitHook is the process-exit hook for rounds with an armed kill
// plan, split out so the forked and classic paths share one definition.
func faultExitHook(k *sim.Kernel, victimProc, attackerProc, loadProc, faultProc *sim.Process, restart *faultRestart) func(*sim.Process) {
	return func(proc *sim.Process) {
		if proc != victimProc {
			return
		}
		if restart != nil && restart.pending {
			// Injected crash with a supervised restart pending: the
			// round continues once the victim relaunches.
			return
		}
		// The save completed (or the victim died unsupervised); the
		// round is over either way.
		k.KillProcess(attackerProc)
		if loadProc != nil {
			k.KillProcess(loadProc)
		}
		k.KillProcess(faultProc)
	}
}
