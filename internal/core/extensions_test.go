package core

import (
	"testing"
	"time"

	"tocttou/internal/attack"
	"tocttou/internal/fs"
	"tocttou/internal/machine"
	"tocttou/internal/victim"
)

func TestSuccessCheckOverride(t *testing.T) {
	// The sendmail scenario's criterion: the privileged file grew.
	sc := Scenario{
		Machine: machine.SMP2(), Victim: victim.NewMailer(), Attacker: attack.Idle{},
		FileSize: 4 << 10, Seed: 600,
		SuccessCheck: func(f *fs.FS, p Paths, _ int) bool {
			info, err := f.LookupInfo(p.Passwd)
			return err == nil && info.Size > p.PasswdSize
		},
	}
	r, err := RunRound(sc)
	if err != nil {
		t.Fatal(err)
	}
	if r.Success {
		t.Error("idle attacker + mailer must not grow the privileged file")
	}
}

func TestLoadThreadsSpawnAndDie(t *testing.T) {
	sc := viSc(machine.SMP2(), 1, 601, false)
	sc.LoadThreads = 3
	done := make(chan struct{})
	var r Round
	var err error
	go func() {
		r, err = RunRound(sc)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("round with load threads did not terminate")
	}
	if err != nil {
		t.Fatal(err)
	}
	_ = r
}

func TestLoadDegradesSMPAttack(t *testing.T) {
	// Equation 1's P(attack scheduled): with a long editor phase and CPU
	// hogs contending for the second processor, the tiny 1-byte window is
	// often missed; unloaded it almost never is.
	base := viSc(machine.SMP2(), 1, 602, false)
	base.VictimStartupMax = 350 * time.Millisecond
	unloaded := campaign(t, base, 80)

	loaded := base
	loaded.Seed = 603
	loaded.LoadThreads = 3
	loadedRes := campaign(t, loaded, 80)

	if unloaded.Rate() < 0.90 {
		t.Errorf("unloaded rate = %.1f%%, want ~96%%", unloaded.Rate()*100)
	}
	if loadedRes.Rate() > unloaded.Rate()-0.25 {
		t.Errorf("load must cost the attacker dearly: %.1f%% vs %.1f%%",
			loadedRes.Rate()*100, unloaded.Rate()*100)
	}
}

func TestAttackerPriorityRestoresDedicatedCPU(t *testing.T) {
	loaded := viSc(machine.SMP2(), 1, 604, false)
	loaded.VictimStartupMax = 350 * time.Millisecond
	loaded.LoadThreads = 3
	plain := campaign(t, loaded, 80)

	prioritized := loaded
	prioritized.Seed = 605
	prioritized.AttackerNice = -10
	elite := campaign(t, prioritized, 80)

	if elite.Rate() < plain.Rate()+0.2 {
		t.Errorf("priority must restore the attack: %.1f%% vs %.1f%%",
			elite.Rate()*100, plain.Rate()*100)
	}
}

func TestSuspensionMeasurementOnUniprocessor(t *testing.T) {
	// On one CPU, success requires suspension: every successful round
	// must have VictimSuspended set, and P(susp) ≈ success rate.
	sc := viSc(machine.Uniprocessor(), 500<<10, 606, true)
	res := campaign(t, sc, 150)
	if res.WindowRounds != 150 {
		t.Fatalf("windows observed = %d, want all", res.WindowRounds)
	}
	ps := res.PSuspended()
	rate := res.Rate()
	if diff := ps - rate; diff < -0.05 || diff > 0.12 {
		t.Errorf("P(susp) = %.2f vs success %.2f: should track closely on one CPU", ps, rate)
	}
}

func TestSendmailRoundOutcomes(t *testing.T) {
	sc := Scenario{
		Machine: machine.SMP2(), Victim: victim.NewMailer(), Attacker: attack.NewFlipFlop(),
		FileSize: 4 << 10, Seed: 607,
		SuccessCheck: func(f *fs.FS, p Paths, _ int) bool {
			info, err := f.LookupInfo(p.Passwd)
			return err == nil && info.Size > p.PasswdSize
		},
	}
	res := campaign(t, sc, 200)
	if res.Rate() < 0.02 {
		t.Errorf("SMP flip-flop rate = %.1f%%, want a real foothold", res.Rate()*100)
	}
	upSc := sc
	upSc.Machine = machine.Uniprocessor()
	upSc.Seed = 608
	upRes := campaign(t, upSc, 200)
	if upRes.Rate() > 0.02 {
		t.Errorf("uniprocessor flip-flop rate = %.1f%%, want ~0", upRes.Rate()*100)
	}
}
