package core

// Tests for the public sweep seams the campaign service stands on: the
// OnPointDone completion hook (exact-once, original indices, memo
// fan-out, checkpoint replay) and graceful Interrupt-channel stops.

import (
	"errors"
	"path/filepath"
	"sync"
	"testing"

	"tocttou/internal/machine"
)

// completionLog records OnPointDone firings thread-safely.
type completionLog struct {
	mu   sync.Mutex
	done map[int]CampaignResult
	dups []int
}

func (l *completionLog) hook() func(int, CampaignResult) {
	l.done = make(map[int]CampaignResult)
	return func(p int, res CampaignResult) {
		l.mu.Lock()
		defer l.mu.Unlock()
		if _, seen := l.done[p]; seen {
			l.dups = append(l.dups, p)
		}
		l.done[p] = res
	}
}

func (l *completionLog) check(t *testing.T, label string, want []CampaignResult) {
	t.Helper()
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.dups) != 0 {
		t.Fatalf("%s: OnPointDone fired more than once for points %v", label, l.dups)
	}
	if len(l.done) != len(want) {
		t.Fatalf("%s: OnPointDone fired for %d of %d points", label, len(l.done), len(want))
	}
	for i, res := range want {
		got, ok := l.done[i]
		if !ok {
			t.Fatalf("%s: point %d never reached OnPointDone", label, i)
		}
		if got != res {
			t.Fatalf("%s: point %d OnPointDone result diverged from the sweep's", label, i)
		}
	}
}

func TestOnPointDoneFiresExactlyOncePerPoint(t *testing.T) {
	// Point 2 duplicates point 0 (same scenario value, same programs), so
	// the hook must also fan out through the memoization plan with the
	// duplicate's own index.
	dup := viSc(machine.Uniprocessor(), 100<<10, 97001, false)
	points := []SweepPoint{
		{Scenario: dup, Rounds: 25},
		{Scenario: viSc(machine.SMP2(), 100<<10, 97003, false), Rounds: 25},
		{Scenario: dup, Rounds: 25},
		{Scenario: faultViSc(97005), Rounds: 25},
	}
	var log completionLog
	res, stats, err := RunSweepPoints(points, SweepOptions{OnPointDone: log.hook()})
	if err != nil {
		t.Fatalf("sweep: %v", err)
	}
	if stats.PointsMemoized != 1 {
		t.Fatalf("PointsMemoized = %d, want 1 (point 2 duplicates point 0)", stats.PointsMemoized)
	}
	log.check(t, "plain sweep", res)
}

func TestInterruptStopsSweepGracefully(t *testing.T) {
	points := checkpointTestPoints()
	want, _, err := RunSweepPoints(points, SweepOptions{})
	if err != nil {
		t.Fatalf("reference sweep: %v", err)
	}

	path := filepath.Join(t.TempDir(), "sweep.ckpt")

	// Drain mid-sweep: the first completed point closes the interrupt
	// channel, exactly as a SIGTERM-draining server would.
	interrupt := make(chan struct{})
	var once sync.Once
	var first completionLog
	firstHook := first.hook()
	opt := SweepOptions{
		Interrupt: interrupt,
		OnPointDone: func(p int, res CampaignResult) {
			firstHook(p, res)
			once.Do(func() { close(interrupt) })
		},
	}
	_, _, err = RunSweepPointsCheckpoint(points, opt, path)
	if !errors.Is(err, ErrSweepInterrupted) {
		t.Fatalf("interrupted sweep err = %v, want ErrSweepInterrupted", err)
	}
	first.mu.Lock()
	committed := len(first.done)
	first.mu.Unlock()
	if committed == 0 {
		t.Fatal("interrupt fired with no completions observed")
	}
	if committed == len(points) {
		t.Skip("every point completed before the interrupt landed; nothing mid-sweep to resume")
	}

	// Resume: restored points replay through OnPointDone (ascending,
	// before simulation), the rest run — every point exactly once, and
	// the merged results bit-identical to the uninterrupted sweep.
	var resumed completionLog
	got, stats, err := RunSweepPointsCheckpoint(points, SweepOptions{OnPointDone: resumed.hook()}, path)
	if err != nil {
		t.Fatalf("resumed sweep: %v", err)
	}
	resultsEqual(t, "resume after interrupt", got, want)
	resumed.check(t, "resume after interrupt", got)
	if stats.RoundsExecuted == 0 {
		t.Error("resume executed nothing; the interrupt should have left points unfinished")
	}
}

func TestInterruptAlreadyClosedCommitsNothing(t *testing.T) {
	interrupt := make(chan struct{})
	close(interrupt)
	var log completionLog
	_, stats, err := RunSweepPoints(
		[]SweepPoint{{Scenario: viSc(machine.Uniprocessor(), 100<<10, 97101, false), Rounds: 10}},
		SweepOptions{Interrupt: interrupt, OnPointDone: log.hook()},
	)
	if !errors.Is(err, ErrSweepInterrupted) {
		t.Fatalf("err = %v, want ErrSweepInterrupted", err)
	}
	if stats.RoundsCommitted != 0 || len(log.done) != 0 {
		t.Fatalf("pre-closed interrupt still committed %d rounds, %d completions", stats.RoundsCommitted, len(log.done))
	}
}

func TestCheckpointOnPointDoneUsesOriginalIndices(t *testing.T) {
	// A completed checkpoint plus a fresh tail: the sub-sweep runs with
	// dense indices internally, but the hook must see grid coordinates.
	points := checkpointTestPoints()
	path := filepath.Join(t.TempDir(), "sweep.ckpt")
	crash := SweepOptions{stopAfterPoints: 2}
	if _, _, err := RunSweepPointsCheckpoint(points, crash, path); !errors.Is(err, ErrSweepInterrupted) {
		t.Fatalf("crash run err = %v, want ErrSweepInterrupted", err)
	}
	var log completionLog
	got, _, err := RunSweepPointsCheckpoint(points, SweepOptions{OnPointDone: log.hook()}, path)
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	log.check(t, "checkpoint resume", got)
}
