package core

import (
	"runtime"
	"testing"

	"tocttou/internal/machine"
	"tocttou/internal/metrics"
)

// The metrics summary is part of a campaign's result, so it inherits the
// engine's determinism contract: identical scenarios must yield Points
// equal under == — same Welford summaries bit for bit, same histogram
// counts — regardless of GOMAXPROCS or worker interleaving, in both the
// single-campaign and sweep paths.

// requirePopulated fails unless the point actually observed kernel
// activity and (for traced scenarios) latencies — guarding against a
// determinism test that passes because both sides are all-zero.
func requirePopulated(t *testing.T, p metrics.Point, traced bool) {
	t.Helper()
	if p.Rounds == 0 || p.Dispatches.Mean() == 0 || p.Ticks.Mean() == 0 || p.BusyUs.Mean() == 0 {
		t.Fatalf("metrics point is unpopulated: %+v", p)
	}
	if traced {
		if p.WindowHist.N() == 0 || p.DHist.N() == 0 || p.LHist.N() == 0 {
			t.Fatalf("traced metrics point has empty histograms: window=%d D=%d L=%d",
				p.WindowHist.N(), p.DHist.N(), p.LHist.N())
		}
	}
}

func TestCampaignMetricsDeterministicAcrossGOMAXPROCS(t *testing.T) {
	sc := deterministicViSMP()
	parallel := campaign(t, sc, determinismRounds)

	prev := runtime.GOMAXPROCS(1)
	serial := campaign(t, sc, determinismRounds)
	runtime.GOMAXPROCS(prev)

	requirePopulated(t, parallel.Metrics, true)
	if parallel.Metrics != serial.Metrics {
		t.Fatalf("campaign metrics depend on parallelism:\n gomaxprocs=n: %+v\n gomaxprocs=1: %+v",
			parallel.Metrics, serial.Metrics)
	}
}

func TestSweepMetricsDeterministicAcrossGOMAXPROCS(t *testing.T) {
	// Several traced points at different sizes and seeds, like Fig 7 runs.
	scs := []Scenario{
		viSc(machine.SMP2(), 50<<10, 7001, true),
		viSc(machine.SMP2(), 200<<10, 7901, true),
		viSc(machine.Uniprocessor(), 100<<10, 8803, true),
	}
	const rounds = 120

	parallel, err := RunSweep(scs, rounds, SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	prev := runtime.GOMAXPROCS(1)
	serial, serr := RunSweep(scs, rounds, SweepOptions{})
	runtime.GOMAXPROCS(prev)
	if serr != nil {
		t.Fatal(serr)
	}

	for i := range scs {
		requirePopulated(t, parallel[i].Metrics, false)
		if parallel[i].Metrics != serial[i].Metrics {
			t.Fatalf("sweep point %d metrics depend on parallelism:\n gomaxprocs=n: %+v\n gomaxprocs=1: %+v",
				i, parallel[i].Metrics, serial[i].Metrics)
		}
	}
}

func TestCampaignMetricsMatchBaselineRunner(t *testing.T) {
	// The pre-sweep serial runner folds rounds in plain index order; the
	// sweep's reorder buffer must reproduce its metrics exactly.
	sc := deterministicViSMP()
	base, err := RunCampaignBaseline(sc, determinismRounds)
	if err != nil {
		t.Fatal(err)
	}
	swept := campaign(t, sc, determinismRounds)
	if base.Metrics != swept.Metrics {
		t.Fatalf("sweep metrics diverge from the serial baseline:\n baseline: %+v\n    sweep: %+v",
			base.Metrics, swept.Metrics)
	}
}

func TestCampaignMetricsUntracedCountersStillPopulate(t *testing.T) {
	// Without tracing there are no latency histograms, but the kernel
	// counter block is always on.
	sc := viSc(machine.SMP2(), 100<<10, 7001, false)
	res := campaign(t, sc, 50)
	requirePopulated(t, res.Metrics, false)
	if res.Metrics.Traced() {
		t.Fatalf("untraced campaign claims latency data: %+v", res.Metrics)
	}
	if res.Metrics.WindowHist.N() != 0 || res.Metrics.LHist.N() != 0 {
		t.Fatal("untraced campaign must have empty latency histograms")
	}
}
