package core

import (
	"testing"

	"tocttou/internal/machine"
)

// BenchmarkRoundFresh measures one traced vi SMP round built from scratch
// — the RunRound path, paying for a new kernel, FS, and trace buffer.
func BenchmarkRoundFresh(b *testing.B) {
	b.ReportAllocs()
	sc := viSc(machine.SMP2(), 100<<10, 1, true)
	for i := 0; i < b.N; i++ {
		sc.Seed = int64(i + 1)
		if _, err := RunRound(sc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRoundReused measures the same round through a reused
// roundState — the campaign steady state, where the kernel, FS tree, and
// trace buffer are recycled. The delta against BenchmarkRoundFresh is the
// payoff of round-context reuse.
func BenchmarkRoundReused(b *testing.B) {
	b.ReportAllocs()
	sc := viSc(machine.SMP2(), 100<<10, 1, true)
	var st roundState
	for i := 0; i < b.N; i++ {
		sc.Seed = int64(i + 1)
		if _, err := runRound(sc, &st); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCampaignViSMP measures a small parallel campaign end to end and
// reports per-round cost, the quantity BENCH_1.json records.
func BenchmarkCampaignViSMP(b *testing.B) {
	b.ReportAllocs()
	const rounds = 100
	sc := viSc(machine.SMP2(), 100<<10, 1, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunCampaign(sc, rounds); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*rounds), "ns/round")
}
