package core

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tocttou/internal/machine"
)

// checkpointTestPoints mixes plain, traced, and faulty scenarios so the
// restored results exercise every CampaignResult field the JSON encoding
// must carry (Welford summaries, kernel stats, fault counters).
func checkpointTestPoints() []SweepPoint {
	return []SweepPoint{
		{Scenario: viSc(machine.Uniprocessor(), 100<<10, 95001, false), Rounds: 30},
		{Scenario: viSc(machine.SMP2(), 100<<10, 95003, true), Rounds: 30},
		{Scenario: faultViSc(95005), Rounds: 30},
		{Scenario: viSc(machine.SMP2(), 1, 95007, true), Rounds: 30},
		{Scenario: faultViSc(95009), Rounds: 30},
		{Scenario: viSc(machine.MultiCore(), 50<<10, 95011, false), Rounds: 30},
	}
}

func resultsEqual(t *testing.T, label string, got, want []CampaignResult) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d results, want %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: point %d diverged:\ngot:  %+v\nwant: %+v", label, i, got[i], want[i])
		}
	}
}

func TestCheckpointResumeBitIdentical(t *testing.T) {
	points := checkpointTestPoints()
	want, _, err := RunSweepPoints(points, SweepOptions{})
	if err != nil {
		t.Fatalf("reference sweep: %v", err)
	}

	path := filepath.Join(t.TempDir(), "sweep.ckpt")

	// Crash mid-sweep: stop deliberately after three committed points.
	crash := SweepOptions{stopAfterPoints: 3}
	_, _, err = RunSweepPointsCheckpoint(points, crash, path)
	if !errors.Is(err, ErrSweepInterrupted) {
		t.Fatalf("interrupted sweep err = %v, want ErrSweepInterrupted", err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("no checkpoint written before the crash: %v", err)
	}

	// Resume: only the missing points run, and the merged results are
	// bit-identical to the uninterrupted sweep.
	got, stats, err := RunSweepPointsCheckpoint(points, SweepOptions{}, path)
	if err != nil {
		t.Fatalf("resumed sweep: %v", err)
	}
	resultsEqual(t, "resume", got, want)
	total := 0
	for _, p := range points {
		total += p.Rounds
	}
	if stats.RoundsExecuted >= total {
		t.Errorf("resume executed %d of %d rounds; restored points must not re-run", stats.RoundsExecuted, total)
	}
	if stats.RoundsExecuted == 0 {
		t.Error("resume executed nothing; the crash should have left points unfinished")
	}

	// A third run restores everything and simulates nothing.
	again, stats, err := RunSweepPointsCheckpoint(points, SweepOptions{}, path)
	if err != nil {
		t.Fatalf("completed-checkpoint rerun: %v", err)
	}
	resultsEqual(t, "rerun", again, want)
	if stats.RoundsExecuted != 0 {
		t.Errorf("completed checkpoint still executed %d rounds", stats.RoundsExecuted)
	}
}

func TestCheckpointEmptyPathIsPlainSweep(t *testing.T) {
	points := checkpointTestPoints()[:2]
	want, _, err := RunSweepPoints(points, SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := RunSweepPointsCheckpoint(points, SweepOptions{}, "")
	if err != nil {
		t.Fatal(err)
	}
	resultsEqual(t, "empty path", got, want)
}

func TestCheckpointMismatchedSweepRejected(t *testing.T) {
	points := checkpointTestPoints()[:2]
	path := filepath.Join(t.TempDir(), "sweep.ckpt")
	if _, _, err := RunSweepPointsCheckpoint(points, SweepOptions{}, path); err != nil {
		t.Fatalf("initial sweep: %v", err)
	}

	cases := []struct {
		name   string
		mutate func(ps []SweepPoint)
	}{
		{"file size", func(ps []SweepPoint) { ps[0].Scenario.FileSize += 1024 }},
		{"seed", func(ps []SweepPoint) { ps[1].Scenario.Seed++ }},
		{"budget", func(ps []SweepPoint) { ps[0].Rounds++ }},
		{"fault plan", func(ps []SweepPoint) { ps[1].Scenario.Faults.FSRate = 0.5 }},
		{"watchdog", func(ps []SweepPoint) { ps[0].Scenario.Watchdog = 1 }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			changed := append([]SweepPoint(nil), points...)
			c.mutate(changed)
			_, _, err := RunSweepPointsCheckpoint(changed, SweepOptions{}, path)
			if err == nil || !strings.Contains(err.Error(), "different sweep configuration") {
				t.Errorf("mismatched resume err = %v, want configuration rejection", err)
			}
		})
	}

	// Point-count changes are rejected too.
	_, _, err := RunSweepPointsCheckpoint(points[:1], SweepOptions{}, path)
	if err == nil || !strings.Contains(err.Error(), "different sweep configuration") {
		t.Errorf("shorter resume err = %v, want configuration rejection", err)
	}
}

func TestCheckpointCorruptFileRejected(t *testing.T) {
	points := checkpointTestPoints()[:1]
	path := filepath.Join(t.TempDir(), "sweep.ckpt")
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := RunSweepPointsCheckpoint(points, SweepOptions{}, path); err == nil {
		t.Error("corrupt checkpoint accepted")
	}
}

func TestCheckpointUnwritablePathFailsRun(t *testing.T) {
	// A checkpoint that cannot be flushed must fail the run rather than
	// silently dropping crash safety.
	points := checkpointTestPoints()[:1]
	path := filepath.Join(t.TempDir(), "no-such-dir", "sweep.ckpt")
	_, _, err := RunSweepPointsCheckpoint(points, SweepOptions{}, path)
	if err == nil || !strings.Contains(err.Error(), "checkpoint") {
		t.Errorf("unwritable checkpoint err = %v, want flush failure", err)
	}
}
