package core

import (
	"errors"
	"runtime"
	"strings"
	"testing"

	"tocttou/internal/machine"
	"tocttou/internal/prog"
	"tocttou/internal/userland"
)

// These tests pin down the sweep engine's contract: interleaving many
// campaigns on the shared pool must be invisible in the results (bit-
// identical to a serial per-round fold), adaptive stopping must be
// deterministic and equal a fixed-budget campaign of the committed
// length, and a failing round must cancel the sweep promptly without
// leaking pool goroutines.

// serialCampaign is the reference implementation: the pre-sweep serial
// fold, one RunRound per derived seed, committed in index order.
func serialCampaign(t *testing.T, sc Scenario, rounds int) CampaignResult {
	t.Helper()
	var res CampaignResult
	for i := 0; i < rounds; i++ {
		rsc := sc
		rsc.Seed += int64(i+1) * SeedStride
		r, err := RunRound(rsc)
		if err != nil {
			t.Fatalf("serial round %d: %v", i, err)
		}
		res.addRound(r)
	}
	return res
}

// sweepTestPoints mixes machines, sizes, and tracing so the sweep
// interleaves heterogeneous work (traced rounds stress the reorder
// buffer's L/D summaries, which are float-order-sensitive).
func sweepTestPoints() []Scenario {
	return []Scenario{
		viSc(machine.Uniprocessor(), 200<<10, 31013, false),
		viSc(machine.SMP2(), 100<<10, 31013+7919, true),
		viSc(machine.SMP2(), 1, 31013+2*7919, true),
		viSc(machine.MultiCore(), 50<<10, 31013+3*7919, false),
	}
}

func TestRunSweepMatchesSerialFold(t *testing.T) {
	scs := sweepTestPoints()
	const rounds = 80
	want := make([]CampaignResult, len(scs))
	for i, sc := range scs {
		want[i] = serialCampaign(t, sc, rounds)
	}
	for _, procs := range []int{1, runtime.NumCPU()} {
		prev := runtime.GOMAXPROCS(procs)
		got, err := RunSweep(scs, rounds, SweepOptions{})
		runtime.GOMAXPROCS(prev)
		if err != nil {
			t.Fatalf("GOMAXPROCS=%d: RunSweep: %v", procs, err)
		}
		for i := range scs {
			if got[i] != want[i] {
				t.Errorf("GOMAXPROCS=%d point %d: sweep diverged from serial fold:\n got: %+v\nwant: %+v",
					procs, i, got[i], want[i])
			}
		}
	}
}

func TestRunSweepPointsPerPointBudgets(t *testing.T) {
	scs := sweepTestPoints()
	budgets := []int{25, 60, 10, 45}
	points := make([]SweepPoint, len(scs))
	total := 0
	for i, sc := range scs {
		points[i] = SweepPoint{Scenario: sc, Rounds: budgets[i]}
		total += budgets[i]
	}
	res, stats, err := RunSweepPoints(points, SweepOptions{})
	if err != nil {
		t.Fatalf("RunSweepPoints: %v", err)
	}
	for i, b := range budgets {
		if res[i].Rounds != b {
			t.Errorf("point %d: committed %d rounds, budget %d", i, res[i].Rounds, b)
		}
		if want := serialCampaign(t, scs[i], b); res[i] != want {
			t.Errorf("point %d: sweep diverged from serial fold:\n got: %+v\nwant: %+v", i, res[i], want)
		}
	}
	if stats.RoundsCommitted != total || stats.RoundsExecuted != total || stats.PointsStopped != 0 {
		t.Errorf("stats = %+v, want all %d rounds committed and executed, none stopped", stats, total)
	}
}

func TestRunSweepRejectsNonPositiveRounds(t *testing.T) {
	if _, err := RunSweep(sweepTestPoints()[:1], 0, SweepOptions{}); err == nil {
		t.Fatal("RunSweep with rounds=0 succeeded, want error")
	}
	if _, _, err := RunCampaignRounds(sweepTestPoints()[0], -3, false); err == nil {
		t.Fatal("RunCampaignRounds with rounds=-3 succeeded, want error")
	}
}

func TestOnRoundOrderedEventsStripped(t *testing.T) {
	scs := sweepTestPoints()
	const rounds = 40
	next := make([]int, len(scs))
	opt := SweepOptions{OnRound: func(point, round int, r Round) {
		// Concurrent calls happen only across points; within a point the
		// fold lock serializes them in index order.
		if round != next[point] {
			t.Errorf("point %d: observed round %d, want %d (in-order commit)", point, round, next[point])
		}
		next[point]++
		if r.Events != nil {
			t.Errorf("point %d round %d: Events leaked through OnRound", point, round)
		}
	}}
	if _, err := RunSweep(scs, rounds, opt); err != nil {
		t.Fatalf("RunSweep: %v", err)
	}
	for p, n := range next {
		if n != rounds {
			t.Errorf("point %d: observed %d rounds, want %d", p, n, rounds)
		}
	}
}

func TestCampaignKeepMatchesPerRoundReplay(t *testing.T) {
	sc := viSc(machine.SMP2(), 50<<10, 40321, true)
	const rounds = 30
	res, kept, err := RunCampaignRounds(sc, rounds, true)
	if err != nil {
		t.Fatalf("RunCampaignRounds: %v", err)
	}
	if len(kept) != rounds {
		t.Fatalf("kept %d rounds, want %d", len(kept), rounds)
	}
	if want := serialCampaign(t, sc, rounds); res != want {
		t.Fatalf("summary diverged from serial fold:\n got: %+v\nwant: %+v", res, want)
	}
	for i, k := range kept {
		rsc := sc
		rsc.Seed += int64(i+1) * SeedStride
		fresh, err := RunRound(rsc)
		if err != nil {
			t.Fatalf("replay round %d: %v", i, err)
		}
		if k.Events != nil {
			t.Fatalf("kept round %d retains Events", i)
		}
		fresh.Events = nil
		if k.Success != fresh.Success || k.LD != fresh.LD || k.End != fresh.End ||
			k.Window != fresh.Window || k.WindowOK != fresh.WindowOK {
			t.Fatalf("kept round %d differs from fresh replay:\nkept:  %+v\nfresh: %+v", i, k, fresh)
		}
	}
}

func TestAdaptiveStopDeterministicPrefix(t *testing.T) {
	// vi 100KB on the SMP succeeds ~100% of the time, so the Wilson
	// interval collapses almost immediately: the point must stop at some
	// committed length well short of the budget, and its result must be
	// exactly the fixed-budget campaign of that length.
	sc := viSc(machine.SMP2(), 100<<10, 50789, false)
	const budget = 400
	run := func() (CampaignResult, SweepStats) {
		res, stats, err := RunSweepPoints(
			[]SweepPoint{{Scenario: sc, Rounds: budget}},
			SweepOptions{Adaptive: AdaptiveStop{HalfWidth: 0.05}},
		)
		if err != nil {
			t.Fatalf("adaptive sweep: %v", err)
		}
		return res[0], stats
	}
	a, stats := run()
	if stats.PointsStopped != 1 {
		t.Fatalf("PointsStopped = %d, want 1 (stats %+v)", stats.PointsStopped, stats)
	}
	if a.Rounds >= budget {
		t.Fatalf("adaptive point committed %d rounds, want < %d", a.Rounds, budget)
	}
	if a.Rounds < 50 {
		t.Fatalf("adaptive point committed %d rounds, want >= MinRounds default 50", a.Rounds)
	}
	if b, _ := run(); a != b {
		t.Fatalf("adaptive stopping is nondeterministic:\n a: %+v\n b: %+v", a, b)
	}
	// The committed prefix property: same result as a fixed-budget
	// campaign with exactly that many rounds.
	if fixed := serialCampaign(t, sc, a.Rounds); a != fixed {
		t.Fatalf("adaptive result differs from %d-round fixed campaign:\nadaptive: %+v\n   fixed: %+v",
			a.Rounds, a, fixed)
	}
}

// sabotageVictim deletes the privileged file, which the default success
// check reports as a fixture-corruption round error.
type sabotageVictim struct{}

func (sabotageVictim) Name() string { return "sabotage" }

func (sabotageVictim) Run(c *userland.Libc, env prog.Env) error {
	return c.Unlink(env.Passwd)
}

func failingScenario(seed int64) Scenario {
	sc := viSc(machine.SMP2(), 4<<10, seed, false)
	sc.Victim = sabotageVictim{}
	return sc
}

func TestSweepFailFastCancelsPromptly(t *testing.T) {
	const budget = 5000
	_, stats, err := RunSweepPoints(
		[]SweepPoint{{Scenario: failingScenario(60077), Rounds: budget}},
		SweepOptions{},
	)
	if err == nil {
		t.Fatal("sweep over a failing scenario succeeded, want error")
	}
	var se *SweepError
	if !errors.As(err, &se) {
		t.Fatalf("error %v is not a *SweepError", err)
	}
	if se.Point != 0 {
		t.Errorf("failing point = %d, want 0", se.Point)
	}
	// Fail-fast: only rounds already in flight when the first failure
	// landed may still run; nothing close to the full budget does.
	if stats.RoundsExecuted >= 100 {
		t.Errorf("executed %d rounds of a failing campaign, want prompt cancellation (< 100)", stats.RoundsExecuted)
	}
}

func TestCampaignRoundsFailFast(t *testing.T) {
	// Regression for the pre-sweep behavior: RunCampaignRounds used to
	// report a round error only after running every remaining round.
	_, _, err := RunCampaignRounds(failingScenario(61253), 5000, false)
	if err == nil {
		t.Fatal("failing campaign succeeded, want error")
	}
	if !strings.Contains(err.Error(), "core: round ") {
		t.Errorf("error %q does not name the failing round", err)
	}
}

func TestAbortedSweepsLeakNoGoroutines(t *testing.T) {
	abort := func() {
		_, _, err := RunSweepPoints(
			[]SweepPoint{{Scenario: failingScenario(62483), Rounds: 5000}},
			SweepOptions{},
		)
		if err == nil {
			t.Fatal("failing sweep succeeded, want error")
		}
	}
	abort() // warm up the persistent pool workers
	before := runtime.NumGoroutine()
	for i := 0; i < 20; i++ {
		abort()
	}
	// The pool's workers are persistent by design; aborted sweeps must
	// not strand anything beyond them.
	if after := runtime.NumGoroutine(); after > before+2 {
		t.Errorf("goroutines grew from %d to %d across 20 aborted sweeps", before, after)
	}
}

func TestSweepErrorReportsEarliestFailure(t *testing.T) {
	// A healthy point ahead of a failing one: the error must name the
	// failing point even though the healthy point's rounds interleave.
	points := []SweepPoint{
		{Scenario: viSc(machine.SMP2(), 4<<10, 63029, false), Rounds: 50},
		{Scenario: failingScenario(63031), Rounds: 50},
	}
	_, _, err := RunSweepPoints(points, SweepOptions{})
	if err == nil {
		t.Fatal("sweep with a failing point succeeded, want error")
	}
	var se *SweepError
	if !errors.As(err, &se) {
		t.Fatalf("error %v is not a *SweepError", err)
	}
	if se.Point != 1 {
		t.Errorf("failing point = %d, want 1", se.Point)
	}
}

func TestFindRoundMatchesSerialScan(t *testing.T) {
	// Uniprocessor success is a few-percent event, so the first match
	// sits tens of candidates in — deep enough that several batches and
	// the early-exit path are exercised.
	sc := viSc(machine.Uniprocessor(), 200<<10, 70123, true)
	want := func(r Round) bool { return r.Success }
	const stride, tries = 9973, 512

	// Reference: the old serial first-match scan.
	serialIdx := -1
	for i := 0; i < tries; i++ {
		rsc := sc
		rsc.Seed += int64(i) * stride
		r, err := RunRound(rsc)
		if err != nil {
			t.Fatalf("serial scan %d: %v", i, err)
		}
		if want(r) {
			serialIdx = i
			break
		}
	}
	if serialIdx < 0 {
		t.Skip("no matching round in range; pick a different seed")
	}
	t.Logf("serial scan matched candidate %d", serialIdx)
	if serialIdx == 0 {
		t.Fatal("first candidate matches; pick a seed whose match is deeper so batching is exercised")
	}

	r, seed, n, err := FindRound(sc, tries, stride, want)
	if err != nil {
		t.Fatalf("FindRound: %v", err)
	}
	if n != serialIdx+1 || seed != sc.Seed+int64(serialIdx)*stride {
		t.Fatalf("FindRound chose candidate %d (seed %d), serial scan chose %d (seed %d)",
			n-1, seed, serialIdx, sc.Seed+int64(serialIdx)*stride)
	}
	if !want(r) {
		t.Fatal("FindRound returned a round not matching the predicate")
	}
	if len(r.Events) == 0 {
		t.Fatal("FindRound winner has no Events; the caller owns a fresh re-simulation")
	}
}

func TestFindRoundNoMatch(t *testing.T) {
	sc := viSc(machine.SMP2(), 20<<10, 71233, false)
	_, _, _, err := FindRound(sc, 16, 9973, func(Round) bool { return false })
	if err == nil {
		t.Fatal("FindRound with an unsatisfiable predicate succeeded, want error")
	}
}
