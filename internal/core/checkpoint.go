package core

// Crash-safe sweep checkpointing. A checkpoint file holds the committed
// per-point results of an interrupted sweep: every time a point finishes
// (the onPointDone hook, which fires exactly once per completed point, in
// commit order, and never for points cut short by cancellation), the full
// set of completed results is re-serialized and atomically swapped into
// place via a temp file + rename. Resuming validates a fingerprint of the
// sweep configuration, restores the completed points verbatim, and runs
// only the remainder. Because each point's result depends solely on its
// own scenario and seed (workers share nothing across points but the
// pool), the merged output is bit-identical to an uninterrupted run.

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"sort"
	"sync"
)

// checkpointVersion guards the on-disk schema.
const checkpointVersion = 1

// checkpointFile is the on-disk schema: the sweep fingerprint plus the
// completed points' results, sorted by point index.
type checkpointFile struct {
	Version     int               `json:"version"`
	Fingerprint uint64            `json:"fingerprint"`
	Points      int               `json:"points"`
	Done        []checkpointEntry `json:"done"`
}

type checkpointEntry struct {
	Point  int            `json:"point"`
	Result CampaignResult `json:"result"`
}

// RunSweepPointsCheckpoint is RunSweepPoints with opt-in crash-safe
// checkpointing. With an empty path it is RunSweepPoints exactly. With a
// path, completed points already recorded in the file are restored
// without re-simulation, the remaining points run as a sub-sweep whose
// completions are flushed atomically as they commit, and the merged
// results are bit-identical to an uninterrupted RunSweepPoints over the
// same points (per-point results never depend on other points). The
// returned SweepStats covers only the work this call performed; restored
// points contribute nothing to it.
//
// A file written for a different sweep (point count, scenarios, seeds,
// budgets, or adaptive config) is rejected by fingerprint, not silently
// merged. SuccessCheck, NewGuard, and Chooser hooks cannot be
// fingerprinted (they are code); resuming with different hook behavior is
// the caller's responsibility, as with any seed-reuse mistake.
func RunSweepPointsCheckpoint(points []SweepPoint, opt SweepOptions, path string) ([]CampaignResult, SweepStats, error) {
	if path == "" {
		return RunSweepPoints(points, opt)
	}
	fp := sweepFingerprint(points, opt.Adaptive)
	done, err := loadCheckpoint(path, fp, len(points))
	if err != nil {
		return nil, SweepStats{}, err
	}

	results := make([]CampaignResult, len(points))
	// A restored point can stand in for an identically-configured pending
	// one exactly as in-process memoization would (memo.go states the
	// conditions): the copy is flushed to the file like a simulated
	// completion and the duplicate never re-runs, so a resumed sweep does
	// not re-simulate — or double-count — work the first run already
	// recorded for the same configuration.
	var restored map[memoKey]CampaignResult
	memoOK := !memoObservable(opt)
	if memoOK {
		restored = make(map[memoKey]CampaignResult, len(done))
	}
	for i := range points {
		if res, ok := done[i]; ok {
			results[i] = res
			if memoOK {
				if k, keyable := memoKeyOf(points[i]); keyable {
					restored[k] = res
				}
			}
		}
	}
	w := &checkpointWriter{path: path, fp: fp, points: len(points), done: done}
	var remaining []SweepPoint
	var remapped []int // remapped[subIdx] = original point index
	restoredCopies := 0
	for i, p := range points {
		if res, ok := done[i]; ok {
			// Restored points replay through the public completion hook in
			// ascending index order, before any simulation: a resumed sweep's
			// observer (the campaign service's event stream) sees every
			// point exactly once, whether it was simulated this run or last.
			if opt.OnPointDone != nil {
				opt.OnPointDone(i, res)
			}
			continue
		}
		if memoOK && p.Rounds > 0 {
			if k, keyable := memoKeyOf(p); keyable {
				if res, hit := restored[k]; hit {
					results[i] = res
					w.flush(i, res)
					if opt.OnPointDone != nil {
						opt.OnPointDone(i, res)
					}
					restoredCopies++
					continue
				}
			}
		}
		remaining = append(remaining, p)
		remapped = append(remapped, i)
	}
	if len(remaining) == 0 {
		st := SweepStats{PointsMemoized: restoredCopies}
		if werr := w.firstErr(); werr != nil {
			return nil, st, fmt.Errorf("core: checkpoint: %w", werr)
		}
		return results, st, nil
	}

	sub := opt
	user := opt.OnPointDone
	sub.OnPointDone = nil // re-dispatched below with the caller's indices
	sub.onPointDone = func(p int, res CampaignResult) {
		w.flush(remapped[p], res)
		if user != nil {
			user(remapped[p], res)
		}
	}
	subRes, st, err := RunSweepPoints(remaining, sub)
	st.PointsMemoized += restoredCopies
	if werr := w.firstErr(); werr != nil {
		// A checkpoint that cannot be written is a failed run: continuing
		// would silently drop the crash-safety the caller asked for.
		return nil, st, fmt.Errorf("core: checkpoint: %w", werr)
	}
	if err != nil {
		if se, ok := sweepErrorAs(err); ok {
			// Translate the sub-sweep's point index back to the caller's.
			return nil, st, &SweepError{Point: remapped[se.Point], Round: se.Round, Seed: se.Seed, Err: se.Err}
		}
		return nil, st, err
	}
	for si, r := range subRes {
		results[remapped[si]] = r
	}
	return results, st, nil
}

// SweepFingerprint is the FNV-1a hash of a sweep's result-determining
// configuration — the same value the checkpoint file embeds. External
// result stores (the campaign service's completed-job cache) key on it:
// two sweeps with equal fingerprints run bit-identical campaigns, modulo
// the code-valued hooks the hash cannot see (SuccessCheck, NewGuard,
// Chooser — it records only their presence).
func SweepFingerprint(points []SweepPoint, ad AdaptiveStop) uint64 {
	return sweepFingerprint(points, ad)
}

// sweepFingerprint hashes the sweep-shaping configuration: everything
// plain-valued that changes per-point results. Function and interface
// fields (SuccessCheck, NewGuard, Chooser) are code and cannot be hashed.
func sweepFingerprint(points []SweepPoint, ad AdaptiveStop) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "v%d n=%d adaptive=%v|", checkpointVersion, len(points), ad)
	for _, p := range points {
		hashPoint(h, p)
	}
	return h.Sum64()
}

// hashPoint writes one point's result-determining record into a
// fingerprint hash — the shared unit of sweepFingerprint and the
// exported per-point PointFingerprint (subset.go), so the two can never
// drift apart.
func hashPoint(h io.Writer, p SweepPoint) {
	sc := p.Scenario
	victim, attacker := "", ""
	if sc.Victim != nil {
		victim = sc.Victim.Name()
	}
	if sc.Attacker != nil {
		attacker = sc.Attacker.Name()
	}
	fmt.Fprintf(h, "r=%d m=%s/%d v=%s a=%s sys=%s size=%d seed=%d trace=%v su=%v uid=%d gid=%d load=%d nice=%d chooser=%v ph=%d ns=%v sb=%d hz=%v wd=%v faults=%v|",
		p.Rounds, sc.Machine.Name, sc.Machine.CPUs, victim, attacker,
		sc.UseSyscall, sc.FileSize, sc.Seed, sc.Trace, sc.VictimStartupMax,
		sc.AttackerUID, sc.AttackerGID, sc.LoadThreads, sc.AttackerNice,
		sc.Chooser != nil, sc.PhaseSlots, sc.NoiseSlots, sc.StallBound,
		sc.Horizon, sc.Watchdog, sc.Faults)
}

// loadCheckpoint reads and validates an existing checkpoint file. A
// missing file is an empty checkpoint; a present but mismatched one is an
// error (stale files must be deleted deliberately, never merged).
func loadCheckpoint(path string, fp uint64, npoints int) (map[int]CampaignResult, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return map[int]CampaignResult{}, nil
	}
	if err != nil {
		return nil, fmt.Errorf("core: checkpoint: %w", err)
	}
	var f checkpointFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("core: checkpoint %s: corrupt: %w", path, err)
	}
	if f.Version != checkpointVersion {
		return nil, fmt.Errorf("core: checkpoint %s: version %d, want %d", path, f.Version, checkpointVersion)
	}
	if f.Fingerprint != fp || f.Points != npoints {
		return nil, fmt.Errorf("core: checkpoint %s: written for a different sweep configuration (delete it to start over)", path)
	}
	done := make(map[int]CampaignResult, len(f.Done))
	for _, e := range f.Done {
		if e.Point < 0 || e.Point >= npoints {
			return nil, fmt.Errorf("core: checkpoint %s: point %d out of range [0, %d)", path, e.Point, npoints)
		}
		done[e.Point] = e.Result
	}
	return done, nil
}

// checkpointWriter serializes completed points to disk. flush is called
// from onPointDone under a point's fold lock; the writer's own mutex
// orders concurrent completions of different points. Write errors are
// sticky — the first one is reported once the sweep drains.
type checkpointWriter struct {
	path   string
	fp     uint64
	points int

	mu   sync.Mutex
	done map[int]CampaignResult
	err  error
}

func (w *checkpointWriter) flush(point int, res CampaignResult) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return
	}
	w.done[point] = res
	entries := make([]checkpointEntry, 0, len(w.done))
	for p, r := range w.done {
		entries = append(entries, checkpointEntry{Point: p, Result: r})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Point < entries[j].Point })
	data, err := json.Marshal(checkpointFile{
		Version:     checkpointVersion,
		Fingerprint: w.fp,
		Points:      w.points,
		Done:        entries,
	})
	if err != nil {
		w.err = err
		return
	}
	// Atomic replace: a crash mid-write leaves either the previous
	// checkpoint or the new one, never a torn file.
	tmp := w.path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		w.err = err
		return
	}
	if err := os.Rename(tmp, w.path); err != nil {
		w.err = err
	}
}

func (w *checkpointWriter) firstErr() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}

// CheckpointStore exposes the sweep checkpoint file to an external
// scheduler — the campaign service's worker-fleet supervisor, which
// commits points as lease results arrive instead of through a single
// in-process sweep. OpenCheckpoint validates the file against the sweep
// configuration exactly as RunSweepPointsCheckpoint would, and Flush
// makes one more completed point durable with the same atomic-replace
// discipline, so a file written through a CheckpointStore and one
// written by RunSweepPointsCheckpoint over the same points are
// interchangeable: either runner resumes from either file.
type CheckpointStore struct {
	w        *checkpointWriter
	restored map[int]CampaignResult
}

// OpenCheckpoint opens (or implicitly creates) the checkpoint at path
// for the given sweep grid. A file written for a different sweep is
// rejected by fingerprint, never merged. Flush is safe for concurrent
// use; write errors are sticky and surface from every later Flush.
func OpenCheckpoint(path string, points []SweepPoint, ad AdaptiveStop) (*CheckpointStore, error) {
	if path == "" {
		return nil, fmt.Errorf("core: checkpoint: empty path")
	}
	fp := sweepFingerprint(points, ad)
	done, err := loadCheckpoint(path, fp, len(points))
	if err != nil {
		return nil, err
	}
	restored := make(map[int]CampaignResult, len(done))
	for i, r := range done {
		restored[i] = r
	}
	return &CheckpointStore{
		w:        &checkpointWriter{path: path, fp: fp, points: len(points), done: done},
		restored: restored,
	}, nil
}

// Restored returns the completions the file held when opened, keyed by
// point index. The caller owns the map; it is a copy, unaffected by
// later Flush calls.
func (c *CheckpointStore) Restored() map[int]CampaignResult { return c.restored }

// Flush records one completed point and atomically rewrites the file.
// It returns the store's first write error (sticky, as in the
// checkpointed sweep runner: a checkpoint that cannot be written means
// the crash-safety the caller asked for is gone).
func (c *CheckpointStore) Flush(point int, res CampaignResult) error {
	if point < 0 || point >= c.w.points {
		return fmt.Errorf("core: checkpoint: point %d out of range [0, %d)", point, c.w.points)
	}
	c.w.flush(point, res)
	if err := c.w.firstErr(); err != nil {
		return fmt.Errorf("core: checkpoint: %w", err)
	}
	return nil
}
