package core

import (
	"bytes"
	"math/big"
	"reflect"
	"testing"
	"time"

	"tocttou/internal/machine"
	"tocttou/internal/trace"
)

// TestExploreCampaignNaiveMatchesPruned: on a real vi round with
// background load, pruned exploration (hog dispatch-class merging) and
// naive full enumeration must compute the identical exact win probability.
// The loaded round needs a short quantum (so the victim regains the CPU)
// and a horizon (delay branches otherwise stack choice points without
// bound); P(win) is a nontrivial ~0.25 here, so the equality below
// compares a real quantity, not 0 == 0.
func TestExploreCampaignNaiveMatchesPruned(t *testing.T) {
	sc := viSc(machine.Uniprocessor(), 100<<10, 601, false)
	sc.LoadThreads = 2
	sc.VictimStartupMax = time.Millisecond
	sc.Machine.Quantum = time.Millisecond
	opt := ExploreOptions{PhaseSlots: 2, MCRounds: -1, Horizon: 5 * time.Millisecond}
	pruned, err := ExploreCampaign(sc, opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Naive = true
	naive, err := ExploreCampaign(sc, opt)
	if err != nil {
		t.Fatal(err)
	}
	if pruned.Exact.Cmp(naive.Exact) != 0 {
		t.Fatalf("pruned exact %s != naive exact %s",
			pruned.Exact.RatString(), naive.Exact.RatString())
	}
	if pruned.Exact.Sign() <= 0 || pruned.Exact.Cmp(big.NewRat(1, 1)) >= 0 {
		t.Fatalf("degenerate exact probability %s", pruned.Exact.RatString())
	}
	if pruned.Merged == 0 {
		t.Fatal("expected dispatch-class merges from the two interchangeable hogs")
	}
	if pruned.Paths >= naive.Paths {
		t.Fatalf("pruning saved nothing: %d paths vs naive %d", pruned.Paths, naive.Paths)
	}
}

// TestExploreCampaignNoiseNaiveMatchesPruned covers the no-op noise-slot
// prune on the real system: with a preemption bound the kernel elides
// choice points at slots where a burst could not change anything; that
// elision must not move the exact probability.
func TestExploreCampaignNoiseNaiveMatchesPruned(t *testing.T) {
	sc := viSc(machine.Uniprocessor(), 100<<10, 607, false)
	sc.VictimStartupMax = 2 * time.Millisecond
	opt := ExploreOptions{PhaseSlots: 2, PreemptionBound: 1, MCRounds: -1}
	pruned, err := ExploreCampaign(sc, opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Naive = true
	naive, err := ExploreCampaign(sc, opt)
	if err != nil {
		t.Fatal(err)
	}
	if pruned.Exact.Cmp(naive.Exact) != 0 {
		t.Fatalf("pruned exact %s != naive exact %s",
			pruned.Exact.RatString(), naive.Exact.RatString())
	}
	if pruned.Exact.Sign() <= 0 {
		t.Fatalf("degenerate exact probability %s", pruned.Exact.RatString())
	}
	if pruned.Paths >= naive.Paths {
		t.Fatalf("no-op prune saved nothing: %d paths vs naive %d", pruned.Paths, naive.Paths)
	}
}

// TestExploreCampaignAgreesWithMC: the exact probability must land inside
// the Monte Carlo cross-check's 95% Wilson interval, on both a marginal
// uniprocessor point and a near-certain SMP point.
func TestExploreCampaignAgreesWithMC(t *testing.T) {
	cases := []struct {
		name string
		m    machine.Profile
	}{
		{"uniprocessor", machine.Uniprocessor()},
		{"smp2", machine.SMP2()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sc := viSc(tc.m, 100<<10, 613, false)
			res, err := ExploreCampaign(sc, ExploreOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if !res.AgreesWithMC() {
				lo, hi := res.MCInterval()
				t.Fatalf("exact %.6f outside MC 95%% interval [%.6f, %.6f] (%d/%d rounds)",
					res.ExactProb(), lo, hi, res.MC.Successes, res.MCRounds)
			}
		})
	}
}

// TestExploreWitnessRoundTrip: a winning witness must survive JSONL export
// and re-import, and the recovered schedule must replay to a win — the
// acceptance path for -witness-out files.
func TestExploreWitnessRoundTrip(t *testing.T) {
	sc := viSc(machine.Uniprocessor(), 500<<10, 617, false)
	opt := ExploreOptions{PhaseSlots: 8, MCRounds: -1}
	res, err := ExploreCampaign(sc, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Win == nil {
		t.Fatal("expected a winning witness at 500KB")
	}
	var buf bytes.Buffer
	if err := trace.WriteJSONL(&buf, res.Win.Round.Events, trace.Filter{}); err != nil {
		t.Fatal(err)
	}
	events, err := trace.ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	script := ScheduleFromEvents(events)
	if !reflect.DeepEqual(script, res.Win.Script) {
		t.Fatalf("schedule did not round-trip: got %v, want %v", script, res.Win.Script)
	}
	r, err := ReplaySchedule(ExploreScenario(sc, opt), script)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Success {
		t.Fatal("replayed winning schedule did not win")
	}
	// The losing witness replays the same way.
	if res.Lose != nil {
		r, err := ReplaySchedule(ExploreScenario(sc, opt), res.Lose.Script)
		if err != nil {
			t.Fatal(err)
		}
		if r.Success {
			t.Fatal("replayed losing schedule won")
		}
	}
}

// TestExploreWitnessProbabilities: witness probabilities are genuine leaf
// weights — positive, at most the total win probability for the winning
// witness.
func TestExploreWitnessProbabilities(t *testing.T) {
	sc := viSc(machine.Uniprocessor(), 500<<10, 619, false)
	res, err := ExploreCampaign(sc, ExploreOptions{PhaseSlots: 8, MCRounds: -1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Win == nil || res.Lose == nil {
		t.Fatal("expected both witnesses at a marginal point")
	}
	if res.Win.Prob.Sign() <= 0 || res.Win.Prob.Cmp(res.Exact) > 0 {
		t.Fatalf("win witness prob %s not in (0, exact=%s]",
			res.Win.Prob.RatString(), res.Exact.RatString())
	}
	if res.Lose.Prob.Sign() <= 0 {
		t.Fatalf("lose witness prob %s not positive", res.Lose.Prob.RatString())
	}
}
