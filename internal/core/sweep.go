package core

// The sweep engine runs many campaigns — "sweep points" — as one unit of
// work on a process-wide worker pool. It exists because reproducing the
// paper's figures is dominated by orchestration once a single round is
// cheap: a sweep of N parameter points run as N back-to-back RunCampaign
// calls pays N pool constructions, N end-of-campaign barriers, and N
// O(rounds) result buffers. Here instead:
//
//   - One shared pool of workers claims (point, round) tickets from the
//     whole sweep, so a slow point's tail no longer idles the machine —
//     workers that exhaust one point immediately continue into the next.
//   - Rounds stream into per-point CampaignResult accumulators as they
//     finish. The integer counters fold commutatively; the float Welford
//     summaries (L, D, Window) are order-sensitive, so a small reorder
//     buffer (bounded by the number of in-flight rounds, not by the
//     budget) commits rounds in ascending round-index order. Summaries
//     are therefore bit-identical to the serial fold.
//   - The first round error cancels the whole sweep promptly instead of
//     surfacing only after every remaining round has run.
//   - An opt-in adaptive budget stops a point early once the Wilson
//     interval on its success rate is narrow enough. The committed
//     prefix is still folded in order, so an adaptive result equals the
//     fixed-budget result of a campaign with exactly that many rounds.

import (
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"
)

// SweepPoint pairs a scenario with its round budget.
type SweepPoint struct {
	Scenario Scenario
	// Rounds is the point's (maximum) round budget; must be > 0.
	Rounds int
}

// AdaptiveStop configures sequential stopping for a sweep: a point stops
// spending rounds once the Wilson score interval on its observed success
// rate has half-width at most HalfWidth. The zero value disables it.
type AdaptiveStop struct {
	// HalfWidth is the target confidence half-width on the success rate
	// in [0, 1]; 0 disables adaptive stopping.
	HalfWidth float64
	// Z is the interval's z value (0 selects 1.96, ~95% confidence).
	Z float64
	// MinRounds is the minimum committed rounds before the rule is
	// consulted (0 selects 50), guarding against spuriously tight
	// intervals on tiny samples near rates of 0 or 1.
	MinRounds int
}

func (a AdaptiveStop) enabled() bool { return a.HalfWidth > 0 }

func (a AdaptiveStop) z() float64 {
	if a.Z > 0 {
		return a.Z
	}
	return 1.96
}

func (a AdaptiveStop) minRounds() int {
	if a.MinRounds > 0 {
		return a.MinRounds
	}
	return 50
}

// SweepOptions tunes a sweep execution.
type SweepOptions struct {
	// Adaptive, when its HalfWidth is positive, lets each point stop
	// early; the default (zero) runs every point's full fixed budget,
	// keeping all results bit-identical to serial RunCampaign calls.
	Adaptive AdaptiveStop
	// OnRound, when non-nil, observes every committed round. It is
	// called in ascending round-index order within each point (the
	// commit order), under that point's fold lock; calls for different
	// points may be concurrent. The Round's Events are always nil (they
	// alias a worker's reused trace buffer) and the Round must not be
	// retained past the call.
	OnRound func(point, round int, r Round)
	// OnPointDone, when non-nil, observes each point the moment its last
	// round commits (full budget spent or adaptive rule satisfied), with
	// the caller's point index. It fires exactly once per completed
	// point, under that point's fold lock; calls for different points
	// may be concurrent, and points cut short by cancellation or
	// Interrupt never fire. Unlike OnRound it composes with sweep-point
	// memoization: a memoized duplicate fires the moment its
	// representative completes, with the duplicate's own index. Under
	// RunSweepPointsCheckpoint it additionally replays restored points
	// (ascending index order, before any simulation), so a resumed sweep
	// reports every point exactly once — the streaming seam the campaign
	// service is built on.
	OnPointDone func(point int, res CampaignResult)
	// Interrupt, when non-nil, requests a graceful mid-sweep stop the
	// moment it is closed: workers stop claiming rounds, in-flight
	// rounds finish and commit, and the sweep returns
	// ErrSweepInterrupted. Points that completed before the interrupt
	// have already reached OnPointDone (and, under checkpointing, the
	// checkpoint file), so an interrupted sweep resumes bit-identically.
	Interrupt <-chan struct{}
	// onPointDone, when non-nil, observes each point the moment its last
	// round commits (full budget spent or adaptive rule satisfied), under
	// that point's fold lock. It fires exactly once per completed point
	// and never for points cut short by cancellation. Unexported: it is
	// the checkpoint writer's hook (see checkpoint.go), not public API.
	onPointDone func(point int, res CampaignResult)
	// stopAfterPoints, when positive, cancels the sweep right after that
	// many points complete and makes RunSweepPoints return
	// ErrSweepInterrupted. Unexported: it simulates a mid-sweep crash for
	// the checkpoint-resume determinism tests.
	stopAfterPoints int
}

// SweepStats reports how much work a sweep performed.
type SweepStats struct {
	// RoundsCommitted counts rounds folded into the results.
	RoundsCommitted int
	// RoundsExecuted counts rounds actually simulated; it can exceed
	// RoundsCommitted when adaptive stopping discards in-flight
	// overshoot, and fall far short of the budget on cancellation.
	RoundsExecuted int
	// PointsStopped counts points halted early by the adaptive rule.
	PointsStopped int
	// PointsMemoized counts points whose result was copied from an
	// identically-configured earlier point instead of being simulated
	// (see memo.go); memoized points contribute nothing to
	// RoundsExecuted or RoundsCommitted.
	PointsMemoized int
}

// ErrSweepInterrupted reports a sweep that stopped deliberately — the
// Interrupt channel closed (a draining server), or the checkpoint tests'
// simulated crash after a requested number of completed points — with
// every result committed so far already flushed through the completion
// hooks. It is not a round failure: no SweepError wraps it.
var ErrSweepInterrupted = errors.New("core: sweep interrupted")

// SweepError reports the sweep point and round whose simulation failed.
type SweepError struct {
	Point int
	Round int
	// Seed is the failing round's derived seed (base + (round+1)*stride),
	// ready to paste into a single-round reproduction.
	Seed int64
	Err  error
}

// Error implements error.
func (e *SweepError) Error() string {
	return fmt.Sprintf("core: sweep point %d round %d (seed %d): %v", e.Point, e.Round, e.Seed, e.Err)
}

// Unwrap exposes the underlying round error.
func (e *SweepError) Unwrap() error { return e.Err }

// RunSweep runs one campaign of the given budget per scenario, drawing
// all rounds from the shared worker pool. Per-round seeds derive exactly
// as in RunCampaign, and with the default fixed budget each result is
// bit-identical to RunCampaign(scs[i], rounds) — regardless of
// GOMAXPROCS or how the pool interleaves the points.
func RunSweep(scs []Scenario, rounds int, opt SweepOptions) ([]CampaignResult, error) {
	points := make([]SweepPoint, len(scs))
	for i, sc := range scs {
		points[i] = SweepPoint{Scenario: sc, Rounds: rounds}
	}
	res, _, err := RunSweepPoints(points, opt)
	return res, err
}

// RunSweepPoints is RunSweep with per-point budgets and execution stats.
// Points that are provably duplicates — identical result-determining
// configuration and identical round budgets — are simulated once and
// share the result (see memo.go for the exact conditions).
func RunSweepPoints(points []SweepPoint, opt SweepOptions) ([]CampaignResult, SweepStats, error) {
	// The public completion hook folds into the internal one so a single
	// dispatch point (fold, plus the memo fan-out below) serves both; the
	// checkpoint runner clears OnPointDone before its sub-sweep and
	// re-dispatches with original indices itself.
	if opt.OnPointDone != nil {
		user, inner := opt.OnPointDone, opt.onPointDone
		opt.OnPointDone = nil
		opt.onPointDone = func(p int, res CampaignResult) {
			if inner != nil {
				inner(p, res)
			}
			user(p, res)
		}
	}
	// Budgets are validated before memoization so the reported index is
	// the caller's grid coordinate, never a post-dedupe dense index.
	for i, p := range points {
		if p.Rounds <= 0 {
			return nil, SweepStats{}, fmt.Errorf("core: sweep point %d needs rounds > 0, got %d", i, p.Rounds)
		}
	}
	plan := memoizeSweep(points, opt)
	if plan == nil {
		return runSweepPointsDirect(points, opt)
	}
	sub := make([]SweepPoint, len(plan.uniq))
	for u, i := range plan.uniq {
		sub[u] = points[i]
	}
	subOpt := opt
	if opt.onPointDone != nil {
		// A memoized duplicate completes the moment its representative
		// does: fan the completion out under the same fold lock, with the
		// duplicate's own index, so observers (the checkpoint writer) see
		// every point exactly once.
		dups := plan.duplicates()
		subOpt.onPointDone = func(u int, res CampaignResult) {
			orig := plan.uniq[u]
			opt.onPointDone(orig, res)
			for _, d := range dups[orig] {
				opt.onPointDone(d, res)
			}
		}
	}
	res, stats, err := runSweepPointsDirect(sub, subOpt)
	stats.PointsMemoized = len(points) - len(sub)
	if err != nil {
		var se *SweepError
		if errors.As(err, &se) {
			se.Point = plan.uniq[se.Point]
		}
		return nil, stats, err
	}
	out := make([]CampaignResult, len(points))
	for i, r := range plan.rep {
		out[i] = res[plan.toUniq[r]]
	}
	return out, stats, nil
}

// runSweepPointsDirect executes every point as given, with no dedupe.
func runSweepPointsDirect(points []SweepPoint, opt SweepOptions) ([]CampaignResult, SweepStats, error) {
	if len(points) == 0 {
		return nil, SweepStats{}, nil
	}
	r := &sweepRun{points: points, opt: opt}
	r.offsets = make([]int64, len(points))
	for i, p := range points {
		if p.Rounds <= 0 {
			return nil, SweepStats{}, fmt.Errorf("core: sweep point %d needs rounds > 0, got %d", i, p.Rounds)
		}
		r.offsets[i] = r.total
		r.total += int64(p.Rounds)
	}
	r.aggs = make([]pointAgg, len(points))

	helpers := parallelism() - 1
	if max := int(r.total) - 1; helpers > max {
		helpers = max
	}
	dispatch(r, &r.wg, helpers)
	st := statePool.Get().(*roundState)
	r.work(st)
	statePool.Put(st)
	r.wg.Wait()

	stats := SweepStats{RoundsExecuted: int(r.executed.Load())}
	if r.err != nil {
		return nil, stats, r.err
	}
	if r.interrupted.Load() {
		// Deliberate mid-sweep stop: completed points already reached
		// onPointDone; the rest are intentionally unfinished, so the
		// committed-budget invariant below does not apply.
		for i := range r.aggs {
			stats.RoundsCommitted += r.aggs[i].res.Rounds
		}
		return nil, stats, ErrSweepInterrupted
	}
	results := make([]CampaignResult, len(points))
	for i := range r.aggs {
		agg := &r.aggs[i]
		results[i] = agg.res
		stats.RoundsCommitted += agg.res.Rounds
		if agg.done.Load() {
			stats.PointsStopped++
		} else if agg.next != points[i].Rounds {
			// Defensive: with no error and no adaptive stop, every
			// budgeted round must have been committed.
			return nil, stats, fmt.Errorf("core: internal: sweep point %d committed %d of %d rounds", i, agg.next, points[i].Rounds)
		}
	}
	return results, stats, nil
}

// sweepRun is the shared state of one in-flight sweep.
type sweepRun struct {
	points  []SweepPoint
	opt     SweepOptions
	offsets []int64 // offsets[p] = first ticket of point p
	total   int64   // total tickets

	next        atomic.Int64 // ticket claim cursor
	cancel      atomic.Bool  // fail-fast flag
	executed    atomic.Int64
	completed   atomic.Int64 // points fully committed
	interrupted atomic.Bool  // stopAfterPoints tripped
	aggs        []pointAgg

	errMu sync.Mutex
	err   *SweepError

	wg sync.WaitGroup // outstanding pool helpers
}

// pointAgg accumulates one point's result, committing rounds in index
// order via a reorder buffer bounded by the number of in-flight rounds.
type pointAgg struct {
	mu      sync.Mutex
	res     CampaignResult
	next    int           // next round index to fold
	pending map[int]Round // out-of-order completions awaiting commit
	done    atomic.Bool   // adaptive rule satisfied; skip remaining work
}

// runOn implements poolJob.
func (r *sweepRun) runOn(st *roundState) {
	r.work(st)
	r.wg.Done()
}

// work claims and executes tickets until the sweep is exhausted or
// cancelled. Tickets ascend through the flattened (point, round) space,
// so workers drain one point's tail and flow into the next with no
// barrier in between.
func (r *sweepRun) work(st *roundState) {
	for !r.cancel.Load() {
		if r.opt.Interrupt != nil {
			select {
			case <-r.opt.Interrupt:
				// Graceful stop: claim no further rounds. Rounds already in
				// flight on other workers still commit (commit ignores the
				// cancel flag), so a point whose last round is mid-simulation
				// completes and reaches the completion hooks before the sweep
				// drains.
				r.interrupted.Store(true)
				r.cancel.Store(true)
				return
			default:
			}
		}
		t := r.next.Add(1) - 1
		if t >= r.total {
			return
		}
		p := r.pointAt(t)
		i := int(t - r.offsets[p])
		agg := &r.aggs[p]
		if agg.done.Load() {
			continue // adaptive-stopped point: skip its remaining budget
		}
		sc := r.points[p].Scenario
		sc.Seed += int64(i+1) * SeedStride
		round, err := runRoundSafe(sc, st)
		r.executed.Add(1)
		if err != nil {
			r.fail(p, i, sc.Seed, err)
			return
		}
		// Events alias st's reused trace buffer; everything derived from
		// them was measured inside runRound.
		round.Events = nil
		r.commit(p, i, round)
	}
}

// pointAt maps a ticket to its sweep point.
func (r *sweepRun) pointAt(t int64) int {
	return sort.Search(len(r.offsets), func(p int) bool { return r.offsets[p] > t }) - 1
}

// fail records the earliest-known failing round and cancels the sweep.
func (r *sweepRun) fail(p, i int, seed int64, err error) {
	r.errMu.Lock()
	if r.err == nil || p < r.err.Point || (p == r.err.Point && i < r.err.Round) {
		r.err = &SweepError{Point: p, Round: i, Seed: seed, Err: err}
	}
	r.errMu.Unlock()
	r.cancel.Store(true)
}

// runRoundSafe is runRound behind a panic barrier. A panicking round —
// from a scenario-provided hook (guard constructor, success check) or a
// simulator invariant violation — surfaces as an ordinary error carrying
// the panic value and stack instead of tearing down the process, so the
// sweep cancels cleanly and the caller learns the exact (point, round,
// seed) to reproduce. The worker's reusable simulation context is
// discarded wholesale: a context that panicked mid-round may hold a
// half-built kernel, and the reuse switch in runRound rebuilds a nil one
// from scratch.
func runRoundSafe(sc Scenario, st *roundState) (round Round, err error) {
	defer func() {
		if r := recover(); r != nil {
			if st != nil {
				*st = roundState{}
			}
			round = Round{}
			err = fmt.Errorf("core: round panicked: %v\n%s", r, debug.Stack())
		}
	}()
	return runRound(sc, st)
}

// commit folds round i of point p, buffering out-of-order completions so
// folds happen in ascending index order (Welford summaries are float-
// order-sensitive; in-order commits keep them bit-identical to a serial
// fold).
func (r *sweepRun) commit(p, i int, round Round) {
	agg := &r.aggs[p]
	agg.mu.Lock()
	defer agg.mu.Unlock()
	if agg.done.Load() {
		return // stopped while this round was in flight: discard
	}
	if i != agg.next {
		if agg.pending == nil {
			agg.pending = make(map[int]Round)
		}
		agg.pending[i] = round
		return
	}
	r.fold(p, agg, round)
	for !agg.done.Load() {
		nr, ok := agg.pending[agg.next]
		if !ok {
			return
		}
		delete(agg.pending, agg.next)
		r.fold(p, agg, nr)
	}
}

// fold commits one in-order round and consults the adaptive rule.
func (r *sweepRun) fold(p int, agg *pointAgg, round Round) {
	if r.opt.OnRound != nil {
		r.opt.OnRound(p, agg.next, round)
	}
	agg.res.addRound(round)
	agg.next++
	ad := r.opt.Adaptive
	if ad.enabled() && agg.res.Rounds >= ad.minRounds() && agg.res.Rounds < r.points[p].Rounds {
		if lo, hi := agg.res.Proportion().WilsonInterval(ad.z()); (hi-lo)/2 <= ad.HalfWidth {
			agg.done.Store(true)
			agg.pending = nil // any overshoot past the stopping index is discarded
		}
	}
	// A point completes by exhausting its budget or by stopping early;
	// either way this is the unique fold that finished it.
	if agg.done.Load() || agg.next == r.points[p].Rounds {
		if r.opt.onPointDone != nil {
			r.opt.onPointDone(p, agg.res)
		}
		if n := r.completed.Add(1); r.opt.stopAfterPoints > 0 && n >= int64(r.opt.stopAfterPoints) {
			r.interrupted.Store(true)
			r.cancel.Store(true)
		}
	}
}

// FindRound searches the seeds sc.Seed + i*stride (i ascending from 0)
// for the first round satisfying want, using the shared worker pool to
// evaluate candidate batches concurrently. It returns the matching
// round (re-simulated fresh, so its Events are owned by the caller), the
// seed that produced it, and the number of candidates examined — the
// same values a serial first-match scan yields. want runs inside pool
// workers: it must be safe for concurrent calls and must not retain the
// Round or its Events (they alias a worker's reused trace buffer).
func FindRound(sc Scenario, maxTries int, stride int64, want func(Round) bool) (Round, int64, int, error) {
	batch := 4 * parallelism()
	for lo := 0; lo < maxTries; lo += batch {
		hi := lo + batch
		if hi > maxTries {
			hi = maxTries
		}
		f := &findRun{sc: sc, stride: stride, lo: lo, hi: hi, want: want, best: -1, errIdx: -1}
		dispatch(f, &f.wg, hi-lo-1)
		st := statePool.Get().(*roundState)
		f.work(st)
		statePool.Put(st)
		f.wg.Wait()
		if f.errIdx >= 0 && (f.best < 0 || f.errIdx < f.best) {
			return Round{}, 0, 0, f.err
		}
		if f.best >= 0 {
			seed := sc.Seed + int64(f.best)*stride
			rsc := sc
			rsc.Seed = seed
			r, err := RunRound(rsc)
			if err != nil {
				return Round{}, 0, 0, err
			}
			return r, seed, f.best + 1, nil
		}
	}
	return Round{}, 0, 0, fmt.Errorf("core: no round matching the requested outcome in %d tries", maxTries)
}

// findRun is one batch of a FindRound search.
type findRun struct {
	sc     Scenario
	stride int64
	lo, hi int
	want   func(Round) bool

	next atomic.Int64

	mu     sync.Mutex
	best   int // lowest matching candidate index, -1 if none
	err    error
	errIdx int // lowest failing candidate index, -1 if none

	wg sync.WaitGroup
}

// runOn implements poolJob.
func (f *findRun) runOn(st *roundState) {
	f.work(st)
	f.wg.Done()
}

func (f *findRun) work(st *roundState) {
	for {
		t := f.lo + int(f.next.Add(1)-1)
		if t >= f.hi {
			return
		}
		// Candidates are claimed in ascending order, so once a match
		// exists every not-yet-claimed index is worse; in-flight lower
		// indexes finish on their own workers.
		f.mu.Lock()
		bestSoFar := f.best
		f.mu.Unlock()
		if bestSoFar >= 0 && t > bestSoFar {
			return
		}
		rsc := f.sc
		rsc.Seed = f.sc.Seed + int64(t)*f.stride
		round, err := runRoundSafe(rsc, st)
		if err != nil {
			f.mu.Lock()
			if f.errIdx < 0 || t < f.errIdx {
				f.err, f.errIdx = err, t
			}
			f.mu.Unlock()
			return
		}
		if f.want(round) {
			f.mu.Lock()
			if f.best < 0 || t < f.best {
				f.best = t
			}
			f.mu.Unlock()
		}
	}
}

// --- process-wide worker pool --------------------------------------------

// poolJob is work a pool worker executes with its long-lived round
// context.
type poolJob interface {
	runOn(st *roundState)
}

// parallelism returns the target number of concurrent round executors
// (submitting caller included). At least 2, so the concurrent commit
// machinery is exercised — and race-tested — even on single-CPU hosts.
func parallelism() int {
	if n := runtime.NumCPU(); n > 2 {
		return n
	}
	return 2
}

var enginePool struct {
	once sync.Once
	jobs chan poolJob
}

// ensurePool lazily starts the process-wide workers. They are few
// (parallelism()), long-lived, and park on the job channel between
// sweeps; each keeps one roundState, so its kernel, FS, and trace buffer
// are reused across every campaign in the process, not just within one.
func ensurePool() chan poolJob {
	enginePool.once.Do(func() {
		enginePool.jobs = make(chan poolJob)
		for i := 0; i < parallelism(); i++ {
			go func() {
				var st roundState
				for j := range enginePool.jobs {
					j.runOn(&st)
				}
			}()
		}
	})
	return enginePool.jobs
}

// dispatch offers a job to up to n idle pool workers, registering each
// acceptance on wg before the worker can possibly complete. Busy workers
// are never waited for — the caller always executes the job itself too,
// so progress needs no free worker.
func dispatch(j poolJob, wg *sync.WaitGroup, n int) {
	if n <= 0 {
		return
	}
	jobs := ensurePool()
	for i := 0; i < n; i++ {
		wg.Add(1)
		select {
		case jobs <- j:
		default:
			wg.Add(-1)
			return
		}
	}
}

// statePool recycles round contexts for submitting goroutines, extending
// the pool workers' cross-campaign reuse to the caller's own share of the
// work.
var statePool = sync.Pool{New: func() any { return new(roundState) }}

// errAs is a tiny local alias to keep campaign.go's imports tidy.
func sweepErrorAs(err error) (*SweepError, bool) {
	var se *SweepError
	if errors.As(err, &se) {
		return se, true
	}
	return nil, false
}
