package core

import (
	"fmt"
	"math/big"
	"time"

	"tocttou/internal/explore"
	"tocttou/internal/sim"
)

// ExploreOptions tunes an exact schedule-space exploration of a scenario.
type ExploreOptions struct {
	// PhaseSlots discretizes the victim's startup phase (default 24).
	PhaseSlots int
	// PreemptionBound caps injected background-noise preemptions per
	// round; 0 disables noise-injection slots entirely.
	PreemptionBound int
	// StallBound caps storage stalls per round (default 1; negative =
	// unbounded). One stall already covers all but O(p²) of the stall
	// probability mass at the paper's per-write rates.
	StallBound int
	// MCRounds sizes the Monte Carlo cross-check campaign run under
	// sim.RandomChooser on the identical discretized model (default 400;
	// negative skips the cross-check).
	MCRounds int
	// Horizon truncates every explored round at that virtual time (see
	// Scenario.Horizon); zero explores rounds to completion. Required in
	// practice for LoadThreads scenarios: each "delay the victim" branch
	// lengthens the round and stacks further choice points, so the
	// un-truncated tree grows without useful bound.
	Horizon time.Duration
	// Naive disables all equivalence merging (engine class folds and the
	// kernel's no-op noise-slot prune) for verification.
	Naive bool
	// MaxPaths forwards the engine's runaway guard (0 = engine default).
	MaxPaths int
}

func (o ExploreOptions) phaseSlots() int {
	if o.PhaseSlots <= 0 {
		return 24
	}
	return o.PhaseSlots
}

func (o ExploreOptions) stallBound() int {
	switch {
	case o.StallBound < 0:
		return 0
	case o.StallBound == 0:
		return 1
	default:
		return o.StallBound
	}
}

func (o ExploreOptions) mcRounds() int {
	if o.MCRounds == 0 {
		return 400
	}
	if o.MCRounds < 0 {
		return 0
	}
	return o.MCRounds
}

// ScheduleWitness is a replayed minimal schedule: the choice-point script,
// the traced round it produces, and the schedule's exact probability.
type ScheduleWitness struct {
	// Prob is the exact probability of this schedule (leaf weight).
	Prob *big.Rat
	// Script holds the alternative picked at each choice point, in
	// consult order. The same schedule is embedded in Events as EvChoice
	// records, so a JSONL export round-trips it.
	Script []int
	// Round is the traced replay of the schedule.
	Round Round
}

// ExploreResult is the outcome of ExploreCampaign.
type ExploreResult struct {
	// Exact is the exact attacker win probability over the discretized
	// schedule space.
	Exact *big.Rat
	// Paths, ChoicePoints, Merged, and MaxDepth report tree shape (see
	// explore.Result).
	Paths        int
	ChoicePoints int
	Merged       int
	MaxDepth     int
	// Win and Lose are minimal witnesses; nil when no such path exists.
	Win, Lose *ScheduleWitness
	// MC is the RandomChooser cross-check campaign (zero when skipped).
	MC       CampaignResult
	MCRounds int
}

// ExactProb returns Exact as a float64.
func (r *ExploreResult) ExactProb() float64 {
	f, _ := r.Exact.Float64()
	return f
}

// MCInterval returns the 95% Wilson interval of the cross-check estimate.
func (r *ExploreResult) MCInterval() (lo, hi float64) {
	return r.MC.Proportion().WilsonInterval(1.96)
}

// AgreesWithMC reports whether the exact probability lies inside the Monte
// Carlo estimate's 95% Wilson interval. Both target the same discretized
// distribution, so disagreement beyond sampling error indicates a bug.
func (r *ExploreResult) AgreesWithMC() bool {
	if r.MCRounds == 0 {
		return false
	}
	lo, hi := r.MCInterval()
	p := r.ExactProb()
	return p >= lo && p <= hi
}

// exploreScenario canonicalizes sc into the discretized model both exact
// exploration and its Monte Carlo cross-check run on: latency jitter off
// (jitter perturbs durations, not ordering decisions), the startup phase
// quantized into uniform slots, storage stalls as bounded fixed-duration
// Bernoulli choice points, and the RNG noise arrival process replaced by
// bounded injection slots at the machine's tick period.
func exploreScenario(sc Scenario, opt ExploreOptions) Scenario {
	sc = sc.withDefaults()
	sc.Trace = false
	sc.Machine.Jitter = 0
	sc.PhaseSlots = opt.phaseSlots()
	sc.StallBound = opt.stallBound()
	sc.Horizon = opt.Horizon
	noise := sc.Machine.Noise
	sc.Machine.Noise = sim.NoiseConfig{}
	if opt.PreemptionBound > 0 && noise.MeanInterval > 0 {
		period := sc.Machine.TickPeriod
		if period <= 0 {
			period = time.Millisecond
		}
		prob := float64(period) / float64(noise.MeanInterval)
		if prob > 0.5 {
			prob = 0.5
		}
		sc.NoiseSlots = sim.NoiseSlotConfig{
			Period:     period,
			Burst:      noise.MeanDuration,
			Prob:       prob,
			Bound:      opt.PreemptionBound,
			PruneNoops: !opt.Naive,
		}
	}
	return sc
}

// ExploreCampaign exhaustively enumerates the scheduling choice points of
// one scenario's bounded round and returns the exact attacker win
// probability, minimal replayable winning/losing schedules, and a Monte
// Carlo campaign over the identical discretized model for cross-checking.
// It is the exact counterpart of RunSweep's sampled campaigns: feasible
// only for bounded windows, but free of sampling error.
func ExploreCampaign(sc Scenario, opt ExploreOptions) (*ExploreResult, error) {
	base := exploreScenario(sc, opt)
	st := &roundState{}
	run := func(ch sim.Chooser) (bool, error) {
		rsc := base
		rsc.Chooser = ch
		r, err := runRound(rsc, st)
		if err != nil {
			return false, err
		}
		return r.Success, nil
	}
	exres, err := explore.Explore(run, explore.Options{Naive: opt.Naive, MaxPaths: opt.MaxPaths})
	if err != nil {
		return nil, fmt.Errorf("core: explore campaign: %w", err)
	}
	out := &ExploreResult{
		Exact:        exres.PWin,
		Paths:        exres.Paths,
		ChoicePoints: exres.ChoicePoints,
		Merged:       exres.Merged,
		MaxDepth:     exres.MaxDepth,
	}
	if exres.Win != nil {
		if out.Win, err = replayWitness(base, exres.Win, true); err != nil {
			return nil, err
		}
	}
	if exres.Lose != nil {
		if out.Lose, err = replayWitness(base, exres.Lose, false); err != nil {
			return nil, err
		}
	}
	if mc := opt.mcRounds(); mc > 0 {
		mcsc := base
		mcsc.Chooser = sim.RandomChooser{}
		mcsc.Trace = true // populate L/D summaries for model comparisons
		res, err := RunCampaign(mcsc, mc)
		if err != nil {
			return nil, fmt.Errorf("core: explore MC cross-check: %w", err)
		}
		out.MC = res
		out.MCRounds = mc
	}
	return out, nil
}

// replayWitness re-runs the canonicalized scenario under the witness's
// schedule with tracing enabled and verifies it reproduces the outcome.
func replayWitness(base Scenario, w *explore.Witness, wantWin bool) (*ScheduleWitness, error) {
	script := w.Script()
	r, err := ReplaySchedule(base, script)
	if err != nil {
		return nil, err
	}
	if r.Success != wantWin {
		return nil, fmt.Errorf("core: witness replay diverged: schedule of %d choices produced success=%v, exploration saw %v",
			len(script), r.Success, wantWin)
	}
	return &ScheduleWitness{Prob: w.Prob, Script: script, Round: r}, nil
}

// ReplaySchedule runs one traced round of an exploration-canonicalized
// scenario under a recorded choice-point schedule. The scenario must carry
// the same PhaseSlots/NoiseSlots/StallBound configuration the schedule was
// recorded against (ExploreScenario rebuilds it from the original
// scenario and options).
func ReplaySchedule(base Scenario, script []int) (Round, error) {
	ch := &sim.ScriptChooser{Script: script}
	base.Chooser = ch
	base.Trace = true
	r, err := RunRound(base)
	if err != nil {
		return Round{}, fmt.Errorf("core: schedule replay: %w", err)
	}
	if ch.Overruns > 0 || ch.Consumed() != len(script) {
		return Round{}, fmt.Errorf("core: schedule replay consumed %d/%d choices with %d overruns — schedule does not match this scenario",
			ch.Consumed(), len(script), ch.Overruns)
	}
	return r, nil
}

// ExploreScenario exposes the canonicalized (discretized-model) scenario
// ExploreCampaign explores, so callers can replay schedules recorded by an
// earlier exploration — e.g. a witness read back from a JSONL trace.
func ExploreScenario(sc Scenario, opt ExploreOptions) Scenario {
	return exploreScenario(sc, opt)
}

// ScheduleFromEvents extracts the choice-point schedule embedded in a
// traced round's event stream (the EvChoice records, in consult order) —
// the inverse of the witness's JSONL export.
func ScheduleFromEvents(events []sim.Event) []int {
	var script []int
	for _, e := range events {
		if e.Kind == sim.EvChoice {
			script = append(script, int(e.Arg))
		}
	}
	return script
}
