package core

// Lease-range sweep execution. The campaign service's worker fleet
// partitions a compiled sweep's points into leases and hands each lease
// to a subprocess; the subprocess re-compiles the same spec and runs
// only its leased indices through RunSweepSubset. Because every point's
// result is a pure function of its own scenario and seed (workers share
// nothing across points but the pool), a subset run commits results
// bit-identical to the same points inside a full RunSweepPoints — which
// is what makes lease requeue after a worker crash a checkable
// invariant instead of a hope.

import (
	"fmt"
	"hash/fnv"
)

// RunSweepSubset runs the points selected by indices — a worker's lease
// — out of the full sweep grid, returning their results in indices
// order. Hook callbacks (OnRound, OnPointDone) and any SweepError
// report the caller's original point indices, never subset-local ones.
// Indices must be in-range and distinct; budgets are validated as in
// RunSweepPoints. Each selected point's result is bit-identical to the
// result the same point produces inside a full-grid run.
func RunSweepSubset(points []SweepPoint, indices []int, opt SweepOptions) ([]CampaignResult, SweepStats, error) {
	if len(indices) == 0 {
		return nil, SweepStats{}, nil
	}
	sub := make([]SweepPoint, len(indices))
	seen := make(map[int]bool, len(indices))
	for k, idx := range indices {
		if idx < 0 || idx >= len(points) {
			return nil, SweepStats{}, fmt.Errorf("core: sweep subset index %d out of range [0, %d)", idx, len(points))
		}
		if seen[idx] {
			return nil, SweepStats{}, fmt.Errorf("core: sweep subset index %d selected twice", idx)
		}
		seen[idx] = true
		sub[k] = points[idx]
	}
	subOpt := opt
	if user := opt.OnRound; user != nil {
		subOpt.OnRound = func(p, round int, r Round) { user(indices[p], round, r) }
	}
	if user := opt.OnPointDone; user != nil {
		subOpt.OnPointDone = func(p int, res CampaignResult) { user(indices[p], res) }
	}
	res, stats, err := RunSweepPoints(sub, subOpt)
	if err != nil {
		if se, ok := sweepErrorAs(err); ok {
			return nil, stats, &SweepError{Point: indices[se.Point], Round: se.Round, Seed: se.Seed, Err: se.Err}
		}
		return nil, stats, err
	}
	return res, stats, nil
}

// PointFingerprint is the FNV-1a hash of one point's result-determining
// configuration — the exact per-point record SweepFingerprint folds
// over the whole grid. The worker fleet tags every committed result
// with it so the supervisor can verify a requeued lease's completions
// against its own view of the grid before deduplicating them; as with
// the sweep fingerprint, code-valued hooks contribute only their
// presence.
func PointFingerprint(p SweepPoint) uint64 {
	h := fnv.New64a()
	hashPoint(h, p)
	return h.Sum64()
}
