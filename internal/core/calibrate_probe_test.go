package core

import (
	"testing"
	"time"

	"tocttou/internal/attack"
	"tocttou/internal/machine"
	"tocttou/internal/victim"
)

// TestCalibrationProbe prints the headline numbers for manual calibration.
// Run with: go test ./internal/core/ -run Probe -v -probe
func TestCalibrationProbe(t *testing.T) {
	if testing.Short() || !probeEnabled {
		t.Skip("calibration probe disabled (use -probe)")
	}
	rounds := 200

	run := func(name string, sc Scenario, n int) CampaignResult {
		res, err := RunCampaign(sc, n)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		t.Logf("%-28s rate=%6.1f%%  detected=%d/%d  L=%7.1f±%5.1fµs  D=%6.1f±%4.1fµs  W=%9.1fµs",
			name, res.Rate()*100, res.Detected, res.Rounds,
			res.L.Mean(), res.L.Stdev(), res.D.Mean(), res.D.Stdev(), res.Window.Mean())
		return res
	}

	// vi on SMP.
	run("vi/smp/100KB", Scenario{
		Machine: machine.SMP2(), Victim: victim.NewVi(), Attacker: attack.NewV1(),
		UseSyscall: "chown", FileSize: 100 << 10, Seed: 42, Trace: true,
	}, rounds)
	run("vi/smp/1B", Scenario{
		Machine: machine.SMP2(), Victim: victim.NewVi(), Attacker: attack.NewV1(),
		UseSyscall: "chown", FileSize: 1, Seed: 43, Trace: true,
	}, 500)

	// vi on uniprocessor.
	for _, kb := range []int64{100, 500, 1000} {
		run("vi/up/"+itoa(kb)+"KB", Scenario{
			Machine: machine.Uniprocessor(), Victim: victim.NewVi(), Attacker: attack.NewV1(),
			UseSyscall: "chown", FileSize: kb << 10, Seed: 44 + kb,
		}, rounds)
	}

	// gedit.
	run("gedit/up/v1/2KB", Scenario{
		Machine: machine.Uniprocessor(), Victim: victim.NewGedit(), Attacker: attack.NewV1(),
		UseSyscall: "chmod", FileSize: 2 << 10, Seed: 50,
	}, rounds)
	run("gedit/smp/v1/2KB", Scenario{
		Machine: machine.SMP2(), Victim: victim.NewGedit(), Attacker: attack.NewV1(),
		UseSyscall: "chmod", FileSize: 2 << 10, Seed: 51, Trace: true,
	}, 500)
	run("gedit/mc/v1/2KB", Scenario{
		Machine: machine.MultiCore(), Victim: victim.NewGedit(), Attacker: attack.NewV1(),
		UseSyscall: "chmod", FileSize: 2 << 10, Seed: 52, Trace: true,
	}, 500)
	run("gedit/mc/v2/2KB", Scenario{
		Machine: machine.MultiCore(), Victim: victim.NewGedit(), Attacker: attack.NewV2(),
		UseSyscall: "chmod", FileSize: 2 << 10, Seed: 53, Trace: true,
	}, 500)

	// rpm-like on uniprocessor: always suspended -> near 100%.
	run("rpm/up/v1/100KB", Scenario{
		Machine: machine.Uniprocessor(), Victim: victim.NewAlwaysSuspended(), Attacker: attack.NewV1(),
		UseSyscall: "chown", FileSize: 100 << 10, Seed: 54,
	}, rounds)

	_ = time.Microsecond
}

func itoa(n int64) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
