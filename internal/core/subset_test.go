package core

import (
	"errors"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"

	"tocttou/internal/fs"
	"tocttou/internal/machine"
)

func TestRunSweepSubsetBitIdentical(t *testing.T) {
	points := checkpointTestPoints()
	want, _, err := RunSweepPoints(points, SweepOptions{})
	if err != nil {
		t.Fatalf("reference sweep: %v", err)
	}

	// Carve the grid into uneven, out-of-order leases like the fleet
	// scheduler would, and reassemble: the union must be bit-identical
	// to the full-grid run, and every hook must fire with the caller's
	// original indices.
	leases := [][]int{{4, 0}, {2}, {5, 1, 3}}
	got := make([]CampaignResult, len(points))
	var mu sync.Mutex
	hooked := make(map[int]CampaignResult)
	for _, lease := range leases {
		res, _, err := RunSweepSubset(points, lease, SweepOptions{
			OnPointDone: func(p int, r CampaignResult) {
				mu.Lock()
				hooked[p] = r
				mu.Unlock()
			},
		})
		if err != nil {
			t.Fatalf("subset %v: %v", lease, err)
		}
		if len(res) != len(lease) {
			t.Fatalf("subset %v returned %d results", lease, len(res))
		}
		for k, idx := range lease {
			got[idx] = res[k]
		}
	}
	resultsEqual(t, "subset union", got, want)

	var hookIdx []int
	for p, r := range hooked {
		hookIdx = append(hookIdx, p)
		if r != want[p] {
			t.Errorf("OnPointDone for point %d diverged from the full-grid result", p)
		}
	}
	sort.Ints(hookIdx)
	for i, p := range hookIdx {
		if p != i {
			t.Fatalf("OnPointDone indices = %v, want the original grid coordinates 0..%d", hookIdx, len(points)-1)
		}
	}
}

func TestRunSweepSubsetValidation(t *testing.T) {
	points := checkpointTestPoints()
	if res, _, err := RunSweepSubset(points, nil, SweepOptions{}); err != nil || res != nil {
		t.Errorf("empty lease: res=%v err=%v, want nil/nil", res, err)
	}
	cases := []struct {
		name    string
		indices []int
		want    string
	}{
		{"past end", []int{0, len(points)}, "out of range"},
		{"negative", []int{-1}, "out of range"},
		{"duplicate", []int{1, 3, 1}, "selected twice"},
	}
	for _, tc := range cases {
		_, _, err := RunSweepSubset(points, tc.indices, SweepOptions{})
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want %q", tc.name, err, tc.want)
		}
	}
}

func TestRunSweepSubsetErrorRemapsIndices(t *testing.T) {
	bad := viSc(machine.SMP2(), 4<<10, 91501, false)
	bad.SuccessCheck = func(f *fs.FS, p Paths, attackerUID int) bool {
		panic("boom: synthetic subset failure")
	}
	points := []SweepPoint{
		{Scenario: viSc(machine.Uniprocessor(), 4<<10, 91503, false), Rounds: 20},
		{Scenario: viSc(machine.SMP2(), 4<<10, 91505, false), Rounds: 20},
		{Scenario: bad, Rounds: 20},
		{Scenario: viSc(machine.SMP2(), 8<<10, 91507, false), Rounds: 20},
	}
	_, _, err := RunSweepSubset(points, []int{3, 2}, SweepOptions{})
	var se *SweepError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v, want *SweepError", err)
	}
	if se.Point != 2 {
		t.Errorf("SweepError.Point = %d, want the original grid index 2", se.Point)
	}
	if want := bad.Seed + int64(se.Round+1)*SeedStride; se.Seed != want {
		t.Errorf("seed = %d, want %d", se.Seed, want)
	}
}

func TestPointFingerprintMatchesSweepRecord(t *testing.T) {
	points := checkpointTestPoints()
	seen := make(map[uint64]int)
	for i, p := range points {
		fp := PointFingerprint(p)
		if prev, dup := seen[fp]; dup {
			t.Errorf("points %d and %d share fingerprint %016x despite distinct configs", prev, i, fp)
		}
		seen[fp] = i
	}
	p, q := points[0], points[0]
	if PointFingerprint(p) != PointFingerprint(q) {
		t.Error("identical points fingerprint differently")
	}
	q.Scenario.Seed++
	if PointFingerprint(p) == PointFingerprint(q) {
		t.Error("seed change did not change the point fingerprint")
	}
	q = points[0]
	q.Rounds++
	if PointFingerprint(p) == PointFingerprint(q) {
		t.Error("budget change did not change the point fingerprint")
	}
}

func TestCheckpointStoreInteropWithSweepRunner(t *testing.T) {
	points := checkpointTestPoints()
	want, _, err := RunSweepPoints(points, SweepOptions{})
	if err != nil {
		t.Fatalf("reference sweep: %v", err)
	}

	// Store → runner: lease-style subset results flushed through the
	// exported store must restore under RunSweepPointsCheckpoint without
	// re-simulation, merging bit-identically.
	path := filepath.Join(t.TempDir(), "store.ckpt")
	cp, err := OpenCheckpoint(path, points, AdaptiveStop{})
	if err != nil {
		t.Fatalf("OpenCheckpoint: %v", err)
	}
	if n := len(cp.Restored()); n != 0 {
		t.Fatalf("fresh store restored %d points", n)
	}
	flushed := []int{1, 4}
	for _, idx := range flushed {
		res, _, err := RunSweepSubset(points, []int{idx}, SweepOptions{})
		if err != nil {
			t.Fatalf("subset point %d: %v", idx, err)
		}
		if err := cp.Flush(idx, res[0]); err != nil {
			t.Fatalf("Flush(%d): %v", idx, err)
		}
	}
	got, stats, err := RunSweepPointsCheckpoint(points, SweepOptions{}, path)
	if err != nil {
		t.Fatalf("runner resume from store-written file: %v", err)
	}
	resultsEqual(t, "store→runner", got, want)
	total := 0
	for _, p := range points {
		total += p.Rounds
	}
	if stats.RoundsExecuted >= total {
		t.Errorf("resume executed %d of %d rounds; store-flushed points must not re-run", stats.RoundsExecuted, total)
	}

	// Runner → store: a file the checkpointed runner wrote opens in the
	// store with the same completions, and finishing the remainder
	// through Flush yields a file the runner restores in full.
	runnerPath := filepath.Join(t.TempDir(), "runner.ckpt")
	_, _, err = RunSweepPointsCheckpoint(points, SweepOptions{stopAfterPoints: 2}, runnerPath)
	if !errors.Is(err, ErrSweepInterrupted) {
		t.Fatalf("simulated crash err = %v, want ErrSweepInterrupted", err)
	}
	cp2, err := OpenCheckpoint(runnerPath, points, AdaptiveStop{})
	if err != nil {
		t.Fatalf("OpenCheckpoint on runner-written file: %v", err)
	}
	restored := cp2.Restored()
	if len(restored) < 2 {
		t.Fatalf("restored %d points, want >= 2", len(restored))
	}
	for i, r := range restored {
		if r != want[i] {
			t.Errorf("restored point %d diverged from the reference", i)
		}
	}
	for i := range points {
		if _, ok := restored[i]; ok {
			continue
		}
		res, _, err := RunSweepSubset(points, []int{i}, SweepOptions{})
		if err != nil {
			t.Fatalf("subset point %d: %v", i, err)
		}
		if err := cp2.Flush(i, res[0]); err != nil {
			t.Fatalf("Flush(%d): %v", i, err)
		}
	}
	got2, stats2, err := RunSweepPointsCheckpoint(points, SweepOptions{}, runnerPath)
	if err != nil {
		t.Fatalf("runner rerun over completed store file: %v", err)
	}
	if stats2.RoundsExecuted != 0 {
		t.Errorf("completed file still executed %d rounds", stats2.RoundsExecuted)
	}
	resultsEqual(t, "runner→store→runner", got2, want)
}

func TestOpenCheckpointRejectsMismatchAndBadFlush(t *testing.T) {
	points := checkpointTestPoints()
	path := filepath.Join(t.TempDir(), "sweep.ckpt")
	cp, err := OpenCheckpoint(path, points, AdaptiveStop{})
	if err != nil {
		t.Fatalf("OpenCheckpoint: %v", err)
	}
	res, _, err := RunSweepSubset(points, []int{0}, SweepOptions{})
	if err != nil {
		t.Fatalf("subset: %v", err)
	}
	if err := cp.Flush(0, res[0]); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if err := cp.Flush(len(points), res[0]); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Errorf("out-of-range flush err = %v", err)
	}

	mutated := checkpointTestPoints()
	mutated[0].Scenario.Seed++
	if _, err := OpenCheckpoint(path, mutated, AdaptiveStop{}); err == nil ||
		!strings.Contains(err.Error(), "different sweep configuration") {
		t.Errorf("mismatched open err = %v, want a fingerprint rejection", err)
	}
	if _, err := OpenCheckpoint("", points, AdaptiveStop{}); err == nil {
		t.Error("empty path accepted")
	}
}
