package core

import (
	"math/rand"
	"reflect"
	"runtime"
	"testing"
	"time"

	"tocttou/internal/attack"
	"tocttou/internal/fault"
	"tocttou/internal/fs"
	"tocttou/internal/machine"
	"tocttou/internal/prog"
	"tocttou/internal/userland"
	"tocttou/internal/victim"
)

// randomForkScenario draws one forkable scenario from the space the sweeps
// and experiments actually exercise: both machine profiles (noisy by
// calibration), both classic victim/attacker programs, varying file sizes,
// load threads, priorities, tracing, and — on some draws — an armed fault
// plan covering fs errnos, EINTR injection, and mid-round kills.
func randomForkScenario(rng *rand.Rand) Scenario {
	sc := Scenario{
		FileSize: int64(50+rng.Intn(400)) << 10,
		Seed:     1000 + rng.Int63n(1_000_000),
	}
	if rng.Intn(2) == 0 {
		sc.Machine = machine.Uniprocessor()
	} else {
		sc.Machine = machine.SMP2()
	}
	if rng.Intn(2) == 0 {
		sc.Victim = victim.NewVi()
		sc.UseSyscall = "chown"
	} else {
		sc.Victim = victim.NewGedit()
		sc.UseSyscall = "chmod"
	}
	if rng.Intn(2) == 0 {
		sc.Attacker = attack.NewV1()
	} else {
		sc.Attacker = attack.NewV2()
	}
	sc.LoadThreads = rng.Intn(3)
	if rng.Intn(2) == 0 {
		sc.AttackerNice = 5
	}
	sc.Trace = rng.Intn(2) == 0
	switch rng.Intn(3) {
	case 0: // fault-free
	case 1:
		sc.Faults = fault.Plan{FSRate: 0.05, SemIntrRate: 0.25}
	case 2:
		sc.Faults = fault.Plan{
			KillVictimRate:   0.4,
			KillAttackerRate: 0.2,
			Restart:          true,
			RestartDelay:     2 * time.Millisecond,
		}
	}
	return sc
}

// TestForkMatchesReplayProperty is the forking path's equivalence property:
// for every scenario, a round executed by forking a worker's captured
// prefix must be bit-for-bit identical — outcome, counters, errors, trace —
// to the same seed executed classically on a fresh kernel. Run under -race
// at GOMAXPROCS=1 and 8 by `make race` / CI.
func TestForkMatchesReplayProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(20260808))
	scenarios := 12
	roundsPer := 6
	if testing.Short() {
		scenarios, roundsPer = 4, 3
	}
	for s := 0; s < scenarios; s++ {
		sc := randomForkScenario(rng)
		if !forkable(sc, &roundState{}) {
			t.Fatalf("scenario %d unexpectedly not forkable", s)
		}
		var st roundState
		base := sc.Seed
		for r := 0; r < roundsPer; r++ {
			sc.Seed = base + int64(r)*SeedStride
			forked, ferr := runRound(sc, &st)
			classic, cerr := RunRound(sc)
			// A round may legitimately fail (e.g. a kill-plan round that
			// trips the virtual-time watchdog); the property is that both
			// paths fail identically.
			if (ferr == nil) != (cerr == nil) || (ferr != nil && ferr.Error() != cerr.Error()) {
				t.Fatalf("scenario %d round %d seed %d: forked error %v, classic error %v",
					s, r, sc.Seed, ferr, cerr)
			}
			if ferr != nil {
				// Production (the sweep engine) never reuses a context
				// after a failed round; start the next one fresh.
				st = roundState{}
				continue
			}
			if r > 0 && !st.prefix.valid {
				t.Fatalf("scenario %d round %d: prefix not captured", s, r)
			}
			if !reflect.DeepEqual(forked, classic) {
				t.Fatalf("scenario %d round %d seed %d: forked round differs from classic replay\nforked:  %+v\nclassic: %+v",
					s, r, sc.Seed, forked, classic)
			}
		}
	}
}

// TestForkPoolNoLeak pins the fork pools' steady state: alternating between
// two prefix signatures drops and rebuilds the captured prefix every round,
// and each rebuild must recycle the previous round's thread shells rather
// than growing the pool or leaking parked goroutines. Drain then releases
// everything.
func TestForkPoolNoLeak(t *testing.T) {
	a := Scenario{
		Machine: machine.Uniprocessor(), Victim: victim.NewVi(),
		Attacker: attack.NewV1(), UseSyscall: "chown",
		FileSize: 100 << 10, Seed: 1007,
	}
	b := a
	b.FileSize = 200 << 10 // different signature: forces a prefix rebuild
	var st roundState
	if _, err := runRound(a, &st); err != nil {
		t.Fatal(err)
	}
	// One round of each signature warms the pool to its high-water mark.
	if _, err := runRound(b, &st); err != nil {
		t.Fatal(err)
	}
	high := st.k.PooledThreads()
	before := runtime.NumGoroutine()
	for i := 0; i < 20; i++ {
		sc := a
		if i%2 == 1 {
			sc = b
		}
		sc.Seed += int64(i+1) * SeedStride
		if _, err := runRound(sc, &st); err != nil {
			t.Fatal(err)
		}
		if got := st.k.PooledThreads(); got > high {
			t.Fatalf("iteration %d: pool grew to %d shells (high-water %d): dropped forks are not recycling", i, got, high)
		}
	}
	if g := runtime.NumGoroutine(); g > before+high {
		t.Fatalf("goroutines grew from %d to %d across dropped forks (pool high-water %d)", before, g, high)
	}
	st.k.Drain()
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		runtime.Gosched()
	}
	if st.k.PooledThreads() != 0 {
		t.Fatalf("Drain left %d pooled shells", st.k.PooledThreads())
	}
}

// TestForkableExclusions proves the paths that must bypass forking do: a
// guard or chooser scenario rebuilds classically (no prefix is captured),
// and non-comparable program types are rejected before sigOf could panic.
func TestForkableExclusions(t *testing.T) {
	base := Scenario{
		Machine: machine.Uniprocessor(), Victim: victim.NewVi(),
		Attacker: attack.NewV1(), UseSyscall: "chown",
		FileSize: 100 << 10, Seed: 1007,
	}
	guard := base
	guard.NewGuard = func() fs.Guard { return nil }
	if forkable(guard.withDefaults(), &roundState{}) {
		t.Fatal("guard scenario must not be forkable")
	}
	fn := base
	fn.Victim = funcProgram{inner: victim.NewVi()}
	if forkable(fn.withDefaults(), &roundState{}) {
		t.Fatal("non-comparable program must not be forkable")
	}
	var st roundState
	if _, err := runRound(fn.withDefaults(), &st); err != nil {
		t.Fatalf("classic fallback for non-comparable program: %v", err)
	}
	if st.prefix.valid {
		t.Fatal("classic fallback must not capture a prefix")
	}
}

// funcProgram wraps a program in a struct carrying a func field, making the
// dynamic type non-comparable.
type funcProgram struct {
	inner prog.Program
	extra func() // non-comparable field
}

func (f funcProgram) Name() string { return f.inner.Name() }
func (f funcProgram) Run(c *userland.Libc, env prog.Env) error {
	return f.inner.Run(c, env)
}
