package core

import (
	"fmt"
	"runtime"
	"sync"

	"tocttou/internal/stats"
)

// seedStride decorrelates per-round RNG streams.
const seedStride = 1_000_003

// CampaignResult aggregates many rounds of one scenario.
type CampaignResult struct {
	// Rounds is the number of completed rounds.
	Rounds int
	// Successes counts rounds where the attacker captured the
	// privileged file.
	Successes int
	// Detected counts rounds where the attacker launched its attack
	// (only meaningful when the scenario traces).
	Detected int
	// AttackErrors counts rounds whose attack step failed outright.
	AttackErrors int
	// L and D summarize the paper's §3.4 quantities in microseconds,
	// over rounds where both were measurable.
	L stats.Summary
	D stats.Summary
	// Window summarizes the vulnerability window length in microseconds.
	Window stats.Summary
	// WindowRounds counts rounds whose window was observed (traced), and
	// SuspendedRounds those where the victim lost its CPU inside it —
	// together they estimate Equation 1's P(victim suspended).
	WindowRounds    int
	SuspendedRounds int
}

// PSuspended returns the measured P(victim suspended within the window),
// or 0 when no windows were observed.
func (r CampaignResult) PSuspended() float64 {
	if r.WindowRounds == 0 {
		return 0
	}
	return float64(r.SuspendedRounds) / float64(r.WindowRounds)
}

// Rate returns the observed success rate in [0, 1].
func (r CampaignResult) Rate() float64 { return r.Proportion().Rate() }

// Proportion returns successes/rounds for interval computation.
func (r CampaignResult) Proportion() stats.Proportion {
	return stats.Proportion{Successes: r.Successes, Trials: r.Rounds}
}

// String renders a one-line summary.
func (r CampaignResult) String() string {
	return fmt.Sprintf("success %d/%d (%.1f%%), L=%.1f±%.1fµs D=%.1f±%.1fµs",
		r.Successes, r.Rounds, r.Rate()*100,
		r.L.Mean(), r.L.Stdev(), r.D.Mean(), r.D.Stdev())
}

// RunCampaign executes rounds of the scenario with derived per-round
// seeds, in parallel across host CPUs. Results are deterministic for a
// given scenario seed regardless of the degree of parallelism.
func RunCampaign(sc Scenario, rounds int) (CampaignResult, error) {
	res, _, err := RunCampaignRounds(sc, rounds, false)
	return res, err
}

// RunCampaignRounds is RunCampaign, optionally returning the per-round
// outcomes (with event traces stripped to keep memory flat) for callers
// that need distributions rather than summaries.
func RunCampaignRounds(sc Scenario, rounds int, keep bool) (CampaignResult, []Round, error) {
	if rounds <= 0 {
		return CampaignResult{}, nil, fmt.Errorf("core: campaign needs rounds > 0, got %d", rounds)
	}
	results := make([]Round, rounds)
	errs := make([]error, rounds)

	workers := runtime.NumCPU()
	if workers > rounds {
		workers = rounds
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// One reusable simulation context per worker: kernel, file
			// system, and trace buffer persist across this worker's rounds.
			var st roundState
			for i := range next {
				rsc := sc
				rsc.Seed = sc.Seed + int64(i+1)*seedStride
				results[i], errs[i] = runRound(rsc, &st)
				// Events alias st's reused trace buffer and would be
				// overwritten next round (and dominate memory if kept);
				// everything derived from them was measured in runRound.
				results[i].Events = nil
			}
		}()
	}
	for i := 0; i < rounds; i++ {
		next <- i
	}
	close(next)
	wg.Wait()

	var out CampaignResult
	for i := 0; i < rounds; i++ {
		if errs[i] != nil {
			return CampaignResult{}, nil, fmt.Errorf("core: round %d: %w", i, errs[i])
		}
		r := results[i]
		out.Rounds++
		if r.Success {
			out.Successes++
		}
		if r.LD.Detected {
			out.Detected++
			if r.LD.WindowFound && r.LD.T3 > 0 {
				out.L.Add(r.LD.Lmicros())
				out.D.Add(r.LD.Dmicros())
			}
		}
		if r.AttackerErr != nil {
			out.AttackErrors++
		}
		if r.WindowOK {
			out.Window.Add(float64(r.Window) / 1e3)
			out.WindowRounds++
			if r.VictimSuspended {
				out.SuspendedRounds++
			}
		}
	}
	if !keep {
		results = nil
	}
	return out, results, nil
}
