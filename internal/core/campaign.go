package core

import (
	"fmt"

	"tocttou/internal/fault"
	"tocttou/internal/metrics"
	"tocttou/internal/stats"
)

// SeedStride decorrelates per-round RNG streams: round i of a campaign
// with base seed s runs at seed s + (i+1)*SeedStride. It is exported so
// callers composing sweeps can verify their per-point base-seed strides
// keep the derived streams pairwise disjoint (they are whenever distinct
// points' base seeds differ by less than SeedStride, since equal derived
// seeds would force the base difference to be a nonzero multiple of it).
const SeedStride = 1_000_003

// CampaignResult aggregates many rounds of one scenario.
type CampaignResult struct {
	// Rounds is the number of completed rounds.
	Rounds int
	// Successes counts rounds where the attacker captured the
	// privileged file.
	Successes int
	// Detected counts rounds where the attacker launched its attack
	// (only meaningful when the scenario traces).
	Detected int
	// AttackErrors counts rounds whose attack step failed outright.
	AttackErrors int
	// L and D summarize the paper's §3.4 quantities in microseconds,
	// over rounds where both were measurable.
	L stats.Summary
	D stats.Summary
	// Window summarizes the vulnerability window length in microseconds.
	Window stats.Summary
	// WindowRounds counts rounds whose window was observed (traced), and
	// SuspendedRounds those where the victim lost its CPU inside it —
	// together they estimate Equation 1's P(victim suspended).
	WindowRounds    int
	SuspendedRounds int
	// Metrics is the observability summary of the campaign: Welford
	// mean/variance of the per-round kernel counters plus log₂ histograms
	// of the window/D/L latencies (latencies require a traced scenario).
	// It folds in commit order, so it is bit-identical across GOMAXPROCS
	// like the rest of the result.
	Metrics metrics.Point
	// Faults totals the injected faults delivered across all rounds
	// (all-zero unless the scenario armed a fault plan).
	Faults fault.Counters
	// VictimErrors counts rounds whose victim program failed outright —
	// under fault injection, the rounds where the victim's robustness
	// policy gave up.
	VictimErrors int
}

// addRound folds one completed round into the accumulator. The integer
// counters commute, but the Welford summaries are float-order-sensitive:
// callers that want bit-reproducible summaries must fold rounds in
// ascending round-index order (the sweep engine's reorder buffer
// guarantees exactly this).
func (r *CampaignResult) addRound(round Round) {
	r.Rounds++
	if round.Success {
		r.Successes++
	}
	if round.LD.Detected {
		r.Detected++
		if round.LD.WindowFound && round.LD.T3 > 0 {
			r.L.Add(round.LD.Lmicros())
			r.D.Add(round.LD.Dmicros())
		}
	}
	if round.AttackerErr != nil {
		r.AttackErrors++
	}
	if round.VictimErr != nil {
		r.VictimErrors++
	}
	r.Faults.Add(round.Faults)
	if round.WindowOK {
		r.Window.Add(float64(round.Window) / 1e3)
		r.WindowRounds++
		if round.VictimSuspended {
			r.SuspendedRounds++
		}
	}
	r.Metrics.Observe(round.Kernel, round.End, round.LD, round.Window, round.WindowOK, round.Faults)
}

// PSuspended returns the measured P(victim suspended within the window),
// or 0 when no windows were observed.
func (r CampaignResult) PSuspended() float64 {
	if r.WindowRounds == 0 {
		return 0
	}
	return float64(r.SuspendedRounds) / float64(r.WindowRounds)
}

// Rate returns the observed success rate in [0, 1].
func (r CampaignResult) Rate() float64 { return r.Proportion().Rate() }

// Proportion returns successes/rounds for interval computation.
func (r CampaignResult) Proportion() stats.Proportion {
	return stats.Proportion{Successes: r.Successes, Trials: r.Rounds}
}

// String renders a one-line summary.
func (r CampaignResult) String() string {
	return fmt.Sprintf("success %d/%d (%.1f%%), L=%.1f±%.1fµs D=%.1f±%.1fµs",
		r.Successes, r.Rounds, r.Rate()*100,
		r.L.Mean(), r.L.Stdev(), r.D.Mean(), r.D.Stdev())
}

// RunCampaign executes rounds of the scenario with derived per-round
// seeds, in parallel across host CPUs. Results are deterministic for a
// given scenario seed regardless of the degree of parallelism.
func RunCampaign(sc Scenario, rounds int) (CampaignResult, error) {
	res, _, err := RunCampaignRounds(sc, rounds, false)
	return res, err
}

// RunCampaignRounds is RunCampaign, optionally returning the per-round
// outcomes (with event traces stripped to keep memory flat) for callers
// that need distributions rather than summaries.
//
// It is a single-point sweep: rounds stream into the summary as they
// finish (no O(rounds) buffering unless keep is set), and the first
// failing round cancels the remainder instead of being reported only
// after every round has run.
func RunCampaignRounds(sc Scenario, rounds int, keep bool) (CampaignResult, []Round, error) {
	if rounds <= 0 {
		return CampaignResult{}, nil, fmt.Errorf("core: campaign needs rounds > 0, got %d", rounds)
	}
	var kept []Round
	var opt SweepOptions
	if keep {
		kept = make([]Round, 0, rounds)
		// Commits arrive in round-index order, so kept is the ordered
		// per-round record the buffered implementation used to build.
		opt.OnRound = func(_, _ int, r Round) { kept = append(kept, r) }
	}
	res, _, err := RunSweepPoints([]SweepPoint{{Scenario: sc, Rounds: rounds}}, opt)
	if err != nil {
		if se, ok := sweepErrorAs(err); ok {
			return CampaignResult{}, nil, fmt.Errorf("core: round %d: %w", se.Round, se.Err)
		}
		return CampaignResult{}, nil, err
	}
	return res[0], kept, nil
}
