package core

import (
	"fmt"
	"runtime"
	"sync"
)

// RunCampaignBaseline is the pre-sweep campaign runner, retained verbatim
// as the wall-clock and allocation baseline for the sweep benchmark
// (cmd/tocttou -sweep, BENCH_2.json): it spins up a fresh worker set per
// campaign, buffers O(rounds) Round and error slices even though only the
// summary is wanted, and barriers on every round before folding. Use
// RunCampaign or RunSweep everywhere else.
func RunCampaignBaseline(sc Scenario, rounds int) (CampaignResult, error) {
	if rounds <= 0 {
		return CampaignResult{}, fmt.Errorf("core: campaign needs rounds > 0, got %d", rounds)
	}
	results := make([]Round, rounds)
	errs := make([]error, rounds)

	workers := runtime.NumCPU()
	if workers > rounds {
		workers = rounds
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var st roundState
			for i := range next {
				rsc := sc
				rsc.Seed = sc.Seed + int64(i+1)*SeedStride
				results[i], errs[i] = runRound(rsc, &st)
				results[i].Events = nil
			}
		}()
	}
	for i := 0; i < rounds; i++ {
		next <- i
	}
	close(next)
	wg.Wait()

	var out CampaignResult
	for i := 0; i < rounds; i++ {
		if errs[i] != nil {
			return CampaignResult{}, fmt.Errorf("core: round %d: %w", i, errs[i])
		}
		out.addRound(results[i])
	}
	return out, nil
}
