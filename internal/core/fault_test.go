package core

import (
	"errors"
	"runtime"
	"strings"
	"testing"
	"time"

	"tocttou/internal/fault"
	"tocttou/internal/fs"
	"tocttou/internal/machine"
)

// faultViSc is the fault-injection regression scenario: the vi/SMP attack
// with every fault channel armed at rates high enough to fire in a short
// campaign, tuned to the round's actual virtual-time scale (rounds last a
// few ms; blocked waits a few µs).
func faultViSc(seed int64) Scenario {
	sc := viSc(machine.SMP2(), 100<<10, seed, true)
	sc.Faults = fault.Plan{
		Seed:             1303,
		FSRate:           0.05,
		SemIntrRate:      0.3,
		SemIntrDelay:     time.Microsecond,
		KillVictimRate:   0.1,
		KillAttackerRate: 0.1,
		KillWindow:       4 * time.Millisecond,
		Restart:          true,
	}
	sc.Watchdog = 5 * time.Second
	return sc
}

func TestFaultCampaignDeliversEveryChannel(t *testing.T) {
	res := campaign(t, faultViSc(90001), 300)
	if res.Faults.FSErrors == 0 {
		t.Error("no fs errors injected")
	}
	if res.Faults.SemInterrupts == 0 {
		t.Error("no semaphore interruptions delivered")
	}
	if res.Faults.Kills == 0 {
		t.Error("no kills delivered")
	}
	if res.Faults.Restarts == 0 {
		t.Error("no restarts delivered")
	}
}

func TestFaultCampaignDeterministicAcrossGOMAXPROCS(t *testing.T) {
	sc := faultViSc(90107)
	parallel := campaign(t, sc, determinismRounds)

	prev := runtime.GOMAXPROCS(1)
	serial := campaign(t, sc, determinismRounds)
	runtime.GOMAXPROCS(prev)

	if parallel != serial {
		t.Fatalf("faulty campaign depends on parallelism:\n gomaxprocs=n: %+v\n gomaxprocs=1: %+v", parallel, serial)
	}
}

func TestFaultDisabledPlanBitIdenticalToNoPlan(t *testing.T) {
	// A plan with a seed but no rates must be indistinguishable from no
	// plan at all: the injector is never built, so the round's RNG
	// consumption is untouched down to the event level.
	base := deterministicViSMP()
	seeded := base
	seeded.Faults = fault.Plan{Seed: 777, SemIntrDelay: time.Microsecond, KillWindow: time.Millisecond}

	a, err := RunRound(base)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunRound(seeded)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Events) != len(b.Events) {
		t.Fatalf("trace length differs: %d vs %d", len(a.Events), len(b.Events))
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatalf("trace diverges at event %d:\nno plan:  %+v\ndisabled: %+v", i, a.Events[i], b.Events[i])
		}
	}
	if campaign(t, base, 100) != campaign(t, seeded, 100) {
		t.Fatal("disabled plan changed the campaign result")
	}
}

func TestFaultRoundRejectsInvalidPlan(t *testing.T) {
	sc := faultViSc(90211)
	sc.Faults.FSRate = 2
	_, err := RunRound(sc)
	var re *fault.RateError
	if !errors.As(err, &re) || re.Name != "FSRate" {
		t.Fatalf("RunRound err = %v, want *fault.RateError for FSRate", err)
	}
}

func TestWatchdogAbortsRunawayRound(t *testing.T) {
	// A vi round needs milliseconds of virtual time; a 50µs watchdog makes
	// every round a "runaway" and must produce the diagnostic error.
	sc := viSc(machine.SMP2(), 100<<10, 90301, false)
	sc.Watchdog = 50 * time.Microsecond
	_, err := RunRound(sc)
	if err == nil {
		t.Fatal("watchdogged round succeeded, want error")
	}
	for _, want := range []string{"watchdog", "seed 90301", sc.Victim.Name(), sc.Attacker.Name()} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("watchdog error %q does not mention %q", err, want)
		}
	}
}

func TestWatchdogIgnoredUnderHorizon(t *testing.T) {
	// A horizon truncates and evaluates; it must win over the watchdog.
	sc := viSc(machine.SMP2(), 100<<10, 90401, false)
	sc.Horizon = 50 * time.Microsecond
	sc.Watchdog = 50 * time.Microsecond
	r, err := RunRound(sc)
	if err != nil {
		t.Fatalf("horizon-truncated round failed: %v", err)
	}
	if time.Duration(r.End) > sc.Horizon {
		t.Errorf("round ran to %v, past the %v horizon", r.End, sc.Horizon)
	}
}

func TestSweepPanicRecoveredAsError(t *testing.T) {
	// A panic inside round evaluation must surface as a *SweepError
	// naming the point, round, and derived seed — and must not poison the
	// shared worker pool for later sweeps.
	sc := viSc(machine.SMP2(), 4<<10, 90501, false)
	sc.SuccessCheck = func(f *fs.FS, p Paths, attackerUID int) bool {
		panic("boom: synthetic check failure")
	}
	_, _, err := RunSweepPoints([]SweepPoint{{Scenario: sc, Rounds: 50}}, SweepOptions{})
	var se *SweepError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v, want *SweepError", err)
	}
	if se.Point != 0 {
		t.Errorf("point = %d, want 0", se.Point)
	}
	if want := sc.Seed + int64(se.Round+1)*SeedStride; se.Seed != want {
		t.Errorf("seed = %d, want %d (base + (round+1)*stride)", se.Seed, want)
	}
	if !strings.Contains(err.Error(), "panicked") || !strings.Contains(err.Error(), "boom") {
		t.Errorf("error %q does not describe the panic", err)
	}

	// The pool survives: a healthy sweep still runs and matches a
	// direct campaign.
	healthy := viSc(machine.SMP2(), 4<<10, 90551, false)
	res, _, err := RunSweepPoints([]SweepPoint{{Scenario: healthy, Rounds: 50}}, SweepOptions{})
	if err != nil {
		t.Fatalf("sweep after panic: %v", err)
	}
	if res[0] != campaign(t, healthy, 50) {
		t.Error("post-panic sweep result diverged from a direct campaign")
	}
}

func TestFaultFirstPointFailFastCancelsLaterWork(t *testing.T) {
	// Regression: the first committed point errors (every round trips its
	// watchdog) while later points' large budgets are mid-flight. The
	// sweep must cancel promptly, name the failing point, and strand no
	// pool goroutines.
	runaway := viSc(machine.SMP2(), 100<<10, 90601, false)
	runaway.Watchdog = 50 * time.Microsecond
	points := []SweepPoint{
		{Scenario: runaway, Rounds: 10},
		{Scenario: faultViSc(90603), Rounds: 2000},
		{Scenario: faultViSc(90605), Rounds: 2000},
	}

	// Warm the persistent pool so the goroutine baseline is stable.
	if _, _, err := RunSweepPoints(
		[]SweepPoint{{Scenario: faultViSc(90699), Rounds: 20}}, SweepOptions{},
	); err != nil {
		t.Fatalf("warm-up sweep: %v", err)
	}
	before := runtime.NumGoroutine()

	_, stats, err := RunSweepPoints(points, SweepOptions{})
	var se *SweepError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v, want *SweepError", err)
	}
	if se.Point != 0 {
		t.Errorf("failing point = %d, want 0", se.Point)
	}
	total := 10 + 2000 + 2000
	if stats.RoundsExecuted >= total/2 {
		t.Errorf("executed %d of %d budgeted rounds; cancellation was not prompt", stats.RoundsExecuted, total)
	}

	// Workers drain in-flight rounds after cancellation; poll briefly.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before+2 {
		t.Errorf("goroutines grew from %d to %d after a cancelled sweep", before, after)
	}
}
