package core

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"tocttou/internal/machine"
)

// These tests pin the -checkpoint × memoization seam: a memoized point
// must still be flushed to the checkpoint file, a resumed sweep must not
// re-simulate (or double-count) configurations the first run already
// recorded, and SweepError.Point must always name the caller's grid
// coordinate even when earlier points were memoized or restored.

func TestCheckpointFlushesMemoizedPoints(t *testing.T) {
	a := viSc(machine.Uniprocessor(), 60<<10, 96001, false)
	b := viSc(machine.SMP2(), 40<<10, 96003, true)
	points := []SweepPoint{
		{Scenario: a, Rounds: 25},
		{Scenario: b, Rounds: 20},
		{Scenario: a, Rounds: 25},
		{Scenario: b, Rounds: 20},
		{Scenario: a, Rounds: 25},
	}
	want, _, err := runSweepPointsDirect(points, SweepOptions{})
	if err != nil {
		t.Fatalf("direct sweep: %v", err)
	}

	path := filepath.Join(t.TempDir(), "sweep.ckpt")
	got, stats, err := RunSweepPointsCheckpoint(points, SweepOptions{}, path)
	if err != nil {
		t.Fatalf("checkpointed sweep: %v", err)
	}
	resultsEqual(t, "checkpointed", got, want)
	if stats.PointsMemoized != 3 {
		t.Errorf("PointsMemoized = %d, want 3 (checkpointing must not disable memoization)", stats.PointsMemoized)
	}
	if stats.RoundsExecuted != 25+20 {
		t.Errorf("RoundsExecuted = %d, want %d (uniques only)", stats.RoundsExecuted, 25+20)
	}

	// Every point — including the memoized duplicates — must be in the
	// file, so a resume after any crash restores them instead of
	// re-running or miscounting them.
	fp := sweepFingerprint(points, AdaptiveStop{})
	done, err := loadCheckpoint(path, fp, len(points))
	if err != nil {
		t.Fatalf("reading checkpoint back: %v", err)
	}
	if len(done) != len(points) {
		t.Fatalf("checkpoint holds %d of %d points; memoized duplicates must be flushed too", len(done), len(points))
	}
	for i := range points {
		if done[i] != want[i] {
			t.Errorf("checkpointed point %d diverged:\ngot:  %+v\nwant: %+v", i, done[i], want[i])
		}
	}
}

func TestCheckpointMemoResumeBitIdentical(t *testing.T) {
	a := viSc(machine.Uniprocessor(), 80<<10, 97001, false)
	b := faultViSc(97003)
	c := viSc(machine.SMP2(), 30<<10, 97005, true)
	points := []SweepPoint{
		{Scenario: a, Rounds: 30},
		{Scenario: b, Rounds: 30},
		{Scenario: a, Rounds: 30},
		{Scenario: c, Rounds: 30},
		{Scenario: b, Rounds: 30},
		{Scenario: a, Rounds: 30},
	}
	want, _, err := RunSweepPoints(points, SweepOptions{})
	if err != nil {
		t.Fatalf("reference sweep: %v", err)
	}

	path := filepath.Join(t.TempDir(), "sweep.ckpt")
	// Crash after two committed points. stopAfterPoints disables
	// memoization, so the interrupted run executed its points directly —
	// the resume then faces pending duplicates of already-restored work.
	_, _, err = RunSweepPointsCheckpoint(points, SweepOptions{stopAfterPoints: 2}, path)
	if !errors.Is(err, ErrSweepInterrupted) {
		t.Fatalf("interrupted sweep err = %v, want ErrSweepInterrupted", err)
	}

	// Completion order is nondeterministic, so derive the resume's
	// expected workload from what the crash actually left behind: one
	// execution per distinct configuration neither restored nor already
	// claimed by an earlier pending duplicate.
	fp := sweepFingerprint(points, AdaptiveStop{})
	done, err := loadCheckpoint(path, fp, len(points))
	if err != nil {
		t.Fatalf("reading crashed checkpoint: %v", err)
	}
	restored := make(map[memoKey]bool)
	for i := range done {
		k, ok := memoKeyOf(points[i])
		if !ok {
			t.Fatalf("point %d unexpectedly not memoizable", i)
		}
		restored[k] = true
	}
	execRounds, execPoints, pending := 0, 0, 0
	claimed := make(map[memoKey]bool)
	for i, p := range points {
		if _, ok := done[i]; ok {
			continue
		}
		pending++
		k, _ := memoKeyOf(p)
		if restored[k] || claimed[k] {
			continue
		}
		claimed[k] = true
		execPoints++
		execRounds += p.Rounds
	}

	got, stats, err := RunSweepPointsCheckpoint(points, SweepOptions{}, path)
	if err != nil {
		t.Fatalf("resumed sweep: %v", err)
	}
	resultsEqual(t, "resume", got, want)
	if stats.RoundsExecuted != execRounds {
		t.Errorf("resume executed %d rounds, want exactly %d (no re-simulation, no double-counting)", stats.RoundsExecuted, execRounds)
	}
	if stats.PointsMemoized != pending-execPoints {
		t.Errorf("resume PointsMemoized = %d, want %d (restored copies + in-process dedupe)", stats.PointsMemoized, pending-execPoints)
	}

	// The finished file holds every point bit-identically.
	doneAll, err := loadCheckpoint(path, fp, len(points))
	if err != nil {
		t.Fatalf("reading finished checkpoint: %v", err)
	}
	if len(doneAll) != len(points) {
		t.Fatalf("finished checkpoint holds %d of %d points", len(doneAll), len(points))
	}
	for i := range points {
		if doneAll[i] != want[i] {
			t.Errorf("finished checkpoint point %d diverged from reference", i)
		}
	}
}

func TestCheckpointResumeRemapsErrorPoint(t *testing.T) {
	a := viSc(machine.SMP2(), 4<<10, 98001, false)
	points := []SweepPoint{
		{Scenario: a, Rounds: 10},
		{Scenario: a, Rounds: 10},
		{Scenario: failingScenario(98003), Rounds: 10},
		{Scenario: a, Rounds: 10},
	}

	aRes, _, err := RunSweepPoints(points[:1], SweepOptions{})
	if err != nil {
		t.Fatalf("healthy point: %v", err)
	}
	// Hand-write a checkpoint holding only point 0, as if the first run
	// crashed right after committing it. On resume, points 1 and 3 become
	// restored copies and only the failing point 2 actually runs — the
	// reported index must still be the caller's coordinate 2, not the
	// dense post-skip index 0.
	path := filepath.Join(t.TempDir(), "sweep.ckpt")
	data, err := json.Marshal(checkpointFile{
		Version:     checkpointVersion,
		Fingerprint: sweepFingerprint(points, AdaptiveStop{}),
		Points:      len(points),
		Done:        []checkpointEntry{{Point: 0, Result: aRes[0]}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	_, _, err = RunSweepPointsCheckpoint(points, SweepOptions{}, path)
	if err == nil {
		t.Fatal("resume over a failing point succeeded, want error")
	}
	var se *SweepError
	if !errors.As(err, &se) {
		t.Fatalf("error %v is not a *SweepError", err)
	}
	if se.Point != 2 {
		t.Errorf("failing point = %d, want caller coordinate 2 (points 1 and 3 were restored/memoized)", se.Point)
	}
}

func TestCheckpointFreshRunRemapsErrorPointUnderMemo(t *testing.T) {
	a := viSc(machine.SMP2(), 4<<10, 98011, false)
	points := []SweepPoint{
		{Scenario: a, Rounds: 10},
		{Scenario: a, Rounds: 10},
		{Scenario: failingScenario(98013), Rounds: 10},
		{Scenario: a, Rounds: 10},
	}
	path := filepath.Join(t.TempDir(), "sweep.ckpt")
	_, _, err := RunSweepPointsCheckpoint(points, SweepOptions{}, path)
	if err == nil {
		t.Fatal("fresh checkpointed run over a failing point succeeded, want error")
	}
	var se *SweepError
	if !errors.As(err, &se) {
		t.Fatalf("error %v is not a *SweepError", err)
	}
	if se.Point != 2 {
		t.Errorf("failing point = %d, want caller coordinate 2 despite memoized duplicates", se.Point)
	}
}
