package campaignd

// Service-level tests for fleet mode: the server configured with
// Workers > 0 must honor every contract the in-process path does —
// byte-identical reports, exactly-once event streams, drain/resume —
// while absorbing worker crashes injected through TOCTTOU_CHAOS. The
// worker subprocess is this test binary itself: TestMain diverts
// re-executions flagged with TOCTTOU_WORKER_PROCESS=1 into
// workerpool.Main before any test runs.

import (
	"context"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"tocttou/internal/workerpool"
)

func TestMain(m *testing.M) {
	if os.Getenv("TOCTTOU_WORKER_PROCESS") == "1" {
		os.Exit(workerpool.Main())
	}
	os.Exit(m.Run())
}

// fleetConfig builds a server config running campaigns over a worker
// fleet of this test binary, with an optional chaos schedule.
func fleetConfig(t *testing.T, dir string, workers int, chaos string) Config {
	t.Helper()
	env := []string{"TOCTTOU_WORKER_PROCESS=1"}
	if chaos != "" {
		env = append(env, "TOCTTOU_CHAOS="+chaos)
	}
	return Config{
		DataDir:           dir,
		Workers:           workers,
		WorkerCommand:     []string{os.Args[0]},
		WorkerEnv:         env,
		HeartbeatInterval: 20 * time.Millisecond,
		LeaseTimeout:      5 * time.Second,
		Logf:              t.Logf,
	}
}

func newFleetServer(t *testing.T, dir string, workers int, chaos string) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(fleetConfig(t, dir, workers, chaos))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(s.Drain)
	return s, ts
}

func statsBody(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url + "/v1/stats")
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	defer resp.Body.Close()
	var buf strings.Builder
	if _, err := copyBody(&buf, resp); err != nil {
		t.Fatalf("stats body: %v", err)
	}
	return buf.String()
}

func TestNewRejectsWorkersWithoutCommand(t *testing.T) {
	_, err := New(Config{DataDir: t.TempDir(), Workers: 2})
	if err == nil || !strings.Contains(err.Error(), "WorkerCommand") {
		t.Fatalf("New(Workers: 2, no command) err = %v, want a WorkerCommand error", err)
	}
}

// TestFleetModeReportMatchesLocal is fleet mode's core contract: with
// no chaos, a campaign executed by worker subprocesses produces the
// byte-identical report and the same gapless event stream an in-process
// run does, with zero supervision interventions.
func TestFleetModeReportMatchesLocal(t *testing.T) {
	_, ts := newFleetServer(t, t.TempDir(), 3, "")
	c := testClient(ts.URL)
	info, err := c.Submit("svc-small.yaml", []byte(smallSpec))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	var events []PointEvent
	end, err := c.Watch(context.Background(), info.ID, func(ev PointEvent) { events = append(events, ev) })
	if err != nil {
		t.Fatalf("watch: %v", err)
	}
	if end.State != StateDone {
		t.Fatalf("end state = %q, want done (err %q)", end.State, end.Error)
	}
	checkEventLog(t, "fleet clean", events, 3)
	got, err := c.Report(info.ID)
	if err != nil {
		t.Fatalf("report: %v", err)
	}
	if want := localReport(t, "svc-small.yaml", smallSpec); string(got) != want {
		t.Errorf("fleet report diverged from the local run:\n--- fleet ---\n%s--- local ---\n%s", got, want)
	}
	body := statsBody(t, ts.URL)
	for _, want := range []string{`"worker_restarts":0`, `"points_deduped":0`, `"points_quarantined":0`} {
		if !strings.Contains(body, want) {
			t.Errorf("clean fleet stats %s missing %s", body, want)
		}
	}
}

// TestFleetModeChaosRecoveryExactlyOnce kills the first two worker
// incarnations — one before its first result, one between committing a
// result and acking the lease (the exactly-once seam) — and requires
// the campaign to still deliver every point exactly once with a
// byte-identical report, surfacing the recovery in /v1/stats.
func TestFleetModeChaosRecoveryExactlyOnce(t *testing.T) {
	_, ts := newFleetServer(t, t.TempDir(), 2, "w0:crash@1;w1:crash-after@1")
	c := testClient(ts.URL)
	info, err := c.Submit("svc-small.yaml", []byte(smallSpec))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	var events []PointEvent
	end, err := c.Watch(context.Background(), info.ID, func(ev PointEvent) { events = append(events, ev) })
	if err != nil {
		t.Fatalf("watch: %v", err)
	}
	if end.State != StateDone {
		t.Fatalf("end state = %q, want done (err %q)", end.State, end.Error)
	}
	checkEventLog(t, "fleet chaos", events, 3)
	got, err := c.Report(info.ID)
	if err != nil {
		t.Fatalf("report: %v", err)
	}
	if want := localReport(t, "svc-small.yaml", smallSpec); string(got) != want {
		t.Errorf("chaos-recovered report diverged from the local run:\n--- fleet ---\n%s--- local ---\n%s", got, want)
	}
	body := statsBody(t, ts.URL)
	for _, want := range []string{`"points_committed":3`, `"points_quarantined":0`} {
		if !strings.Contains(body, want) {
			t.Errorf("chaos stats %s missing %s", body, want)
		}
	}
	// Two workers were killed (one crash, one crash-after), so at least
	// two restarts; the crash-after worker's committed point must have
	// been deduplicated on requeue, not double-counted.
	if strings.Contains(body, `"worker_restarts":0`) || strings.Contains(body, `"worker_restarts":1,`) {
		t.Errorf("chaos stats %s: want worker_restarts >= 2", body)
	}
	if strings.Contains(body, `"points_deduped":0`) {
		t.Errorf("chaos stats %s: want points_deduped >= 1", body)
	}
	if strings.Contains(body, `"leases_requeued":0`) {
		t.Errorf("chaos stats %s: want leases_requeued >= 1", body)
	}
}

// TestFleetModeQuarantineSurfaced poisons one point (every worker
// reaching it crashes) and checks graceful degradation end to end: the
// job completes, the other points commit, and the quarantine shows up
// in the job info, the end event, the report appendix, and /v1/stats.
func TestFleetModeQuarantineSurfaced(t *testing.T) {
	s, ts := newFleetServer(t, t.TempDir(), 2, "crash@point=1")
	_ = s
	c := testClient(ts.URL)
	info, err := c.Submit("svc-small.yaml", []byte(smallSpec))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	var events []PointEvent
	end, err := c.Watch(context.Background(), info.ID, func(ev PointEvent) { events = append(events, ev) })
	if err != nil {
		t.Fatalf("watch: %v", err)
	}
	if end.State != StateDone {
		t.Fatalf("end state = %q, want done (err %q)", end.State, end.Error)
	}
	if len(events) != 2 {
		t.Fatalf("streamed %d events, want 2 (poison point must not commit)", len(events))
	}
	for _, ev := range events {
		if ev.Point == 1 {
			t.Fatalf("quarantined point 1 appeared on the event stream: %+v", ev)
		}
	}
	if len(end.Quarantined) != 1 || end.Quarantined[0] != 1 {
		t.Fatalf("end event quarantined = %v, want [1]", end.Quarantined)
	}
	ji, err := c.Job(info.ID)
	if err != nil {
		t.Fatalf("job: %v", err)
	}
	if len(ji.Quarantined) != 1 || ji.Quarantined[0] != 1 {
		t.Fatalf("job info quarantined = %v, want [1]", ji.Quarantined)
	}
	report, err := c.Report(info.ID)
	if err != nil {
		t.Fatalf("report: %v", err)
	}
	if !strings.Contains(string(report), "quarantined points: 1 of 3") {
		t.Errorf("report missing the quarantine appendix:\n%s", report)
	}
	body := statsBody(t, ts.URL)
	for _, want := range []string{`"points_quarantined":1`, `"points_committed":2`} {
		if !strings.Contains(body, want) {
			t.Errorf("quarantine stats %s missing %s", body, want)
		}
	}
}

// TestFleetDrainRestartResumeInProcess drains a fleet-mode server
// mid-campaign and resumes the job on an in-process server over the
// same data directory: the checkpoint a fleet writes point-by-point is
// the same file the in-process runner resumes from, so the hand-off is
// invisible — every point streams exactly once across the restart and
// the report matches an uninterrupted local run byte for byte.
func TestFleetDrainRestartResumeInProcess(t *testing.T) {
	dir := t.TempDir()
	s1, err := New(fleetConfig(t, dir, 2, ""))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	var backend atomic.Value
	backend.Store(s1.Handler())
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		backend.Load().(http.Handler).ServeHTTP(w, r)
	}))
	defer ts.Close()
	c := testClient(ts.URL)

	info, err := c.Submit("svc-wide.yaml", []byte(wideSpec))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	type watchOut struct {
		end    *EndEvent
		events []PointEvent
		err    error
	}
	outc := make(chan watchOut, 1)
	firstEvent := make(chan struct{})
	var once atomic.Bool
	go func() {
		var out watchOut
		out.end, out.err = c.Watch(context.Background(), info.ID, func(ev PointEvent) {
			out.events = append(out.events, ev)
			if once.CompareAndSwap(false, true) {
				close(firstEvent)
			}
		})
		outc <- out
	}()
	select {
	case <-firstEvent:
	case <-time.After(30 * time.Second):
		t.Fatal("no point committed within 30s")
	}
	s1.Drain()
	st := s1.lookup(info.ID).snapshot()
	if st.State == StateDone {
		t.Skip("campaign finished before the drain landed; nothing mid-sweep to resume")
	}
	if st.State != StateInterrupted {
		t.Fatalf("post-drain state = %q, want interrupted", st.State)
	}
	if st.Committed == 0 || st.Committed >= st.Points {
		t.Fatalf("post-drain committed = %d of %d, want a strict mid-campaign cut", st.Committed, st.Points)
	}

	// Resume in-process: Workers unset, same data directory.
	s2, err := New(Config{DataDir: dir, Logf: t.Logf})
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	defer s2.Drain()
	backend.Store(s2.Handler())

	out := <-outc
	if out.err != nil {
		t.Fatalf("watch across restart: %v", out.err)
	}
	if out.end.State != StateDone {
		t.Fatalf("end state = %q, want done (err %q)", out.end.State, out.end.Error)
	}
	checkEventLog(t, "fleet-to-in-process resume", out.events, info.Points)
	got, err := c.Report(info.ID)
	if err != nil {
		t.Fatalf("report: %v", err)
	}
	if want := localReport(t, "svc-wide.yaml", wideSpec); string(got) != want {
		t.Errorf("resumed report diverged from the uninterrupted local run:\n--- service ---\n%s--- local ---\n%s", got, want)
	}
}
