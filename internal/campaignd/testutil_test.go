package campaignd

import (
	"io"
	"net/http"
	"os"
	"testing"
)

func copyBody(dst io.Writer, resp *http.Response) (int64, error) {
	return io.Copy(dst, resp.Body)
}

// tearEventLog simulates a kill -9 landing mid-append on a finished
// job's directory: the event log loses part of its final line, and
// state.json reverts to "running" as a crashed server would leave it.
func tearEventLog(t *testing.T, j *job) {
	t.Helper()
	data, err := os.ReadFile(j.eventsPath())
	if err != nil {
		t.Fatalf("reading event log: %v", err)
	}
	if len(data) < 10 {
		t.Fatalf("event log too short to tear (%d bytes)", len(data))
	}
	if err := os.WriteFile(j.eventsPath(), data[:len(data)-10], 0o644); err != nil {
		t.Fatalf("tearing event log: %v", err)
	}
	info := j.snapshot()
	info.State = StateRunning
	info.Error = ""
	if err := writeJSONAtomic(j.statePath(), info); err != nil {
		t.Fatalf("rewriting state: %v", err)
	}
	if err := os.Remove(j.reportPath()); err != nil && !os.IsNotExist(err) {
		t.Fatalf("removing report: %v", err)
	}
}
