package campaignd

// Client for the campaign service. The client side of the headline
// correctness contract lives here: Watch follows a campaign's event
// stream across disconnects and server restarts by carrying the event
// offset in the Last-Point header, so the sequence of point events it
// delivers — and the final report it fetches — is byte-identical to a
// local run of the same scenario.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"
)

// Client talks to one campaignd server.
type Client struct {
	// Server is the base URL, e.g. "http://127.0.0.1:8080".
	Server string
	// HTTP is the underlying client; nil selects http.DefaultClient.
	HTTP *http.Client
	// RetryDelay paces Watch's reconnect attempts; 0 selects 500ms.
	RetryDelay time.Duration
	// MaxRetries bounds consecutive no-progress reconnects in Watch;
	// 0 selects 20. Progress (any new event) resets the count.
	MaxRetries int
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

func (c *Client) url(path string) string {
	return strings.TrimRight(c.Server, "/") + path
}

// apiError turns a non-2xx response into an error carrying the body
// verbatim — for a 400 that is the server's file/line-accurate spec
// error, identical to what a local -scenario run prints.
func apiError(resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	msg := strings.TrimRight(string(body), "\n")
	if msg == "" {
		msg = resp.Status
	}
	return errors.New(msg)
}

// Submit posts a scenario spec and returns the job — fresh, joined
// in-flight, or a cache hit (Cached=true) for a completed identical one.
func (c *Client) Submit(filename string, spec []byte) (JobInfo, error) {
	u := c.url("/v1/campaigns")
	if filename != "" {
		u += "?filename=" + url.QueryEscape(filename)
	}
	resp, err := c.http().Post(u, "application/x-yaml", bytes.NewReader(spec))
	if err != nil {
		return JobInfo{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		return JobInfo{}, apiError(resp)
	}
	var info JobInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		return JobInfo{}, fmt.Errorf("decoding job: %w", err)
	}
	return info, nil
}

// Jobs lists every job the server knows, in submission order.
func (c *Client) Jobs() ([]JobInfo, error) {
	resp, err := c.http().Get(c.url("/v1/campaigns"))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, apiError(resp)
	}
	var out struct {
		Jobs []JobInfo `json:"jobs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("decoding jobs: %w", err)
	}
	return out.Jobs, nil
}

// Job fetches one job's state.
func (c *Client) Job(id string) (JobInfo, error) {
	resp, err := c.http().Get(c.url("/v1/campaigns/" + url.PathEscape(id)))
	if err != nil {
		return JobInfo{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return JobInfo{}, apiError(resp)
	}
	var info JobInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		return JobInfo{}, fmt.Errorf("decoding job: %w", err)
	}
	return info, nil
}

// Report fetches a completed campaign's rendering — the exact bytes a
// local run of the same scenario writes.
func (c *Client) Report(id string) ([]byte, error) {
	resp, err := c.http().Get(c.url("/v1/campaigns/" + url.PathEscape(id) + "/report"))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, apiError(resp)
	}
	return io.ReadAll(resp.Body)
}

// Stream follows one events connection from *last, invoking onEvent per
// point and advancing *last past each delivered event. It returns the
// stream's end event, or nil with an error when the connection broke
// before one arrived (the caller reconnects from the updated *last).
func (c *Client) Stream(ctx context.Context, id string, last *int, onEvent func(PointEvent)) (*EndEvent, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		c.url("/v1/campaigns/"+url.PathEscape(id)+"/events"), nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Last-Point", strconv.Itoa(*last))
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, apiError(resp)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		var kind struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal(line, &kind); err != nil {
			return nil, fmt.Errorf("malformed event: %w", err)
		}
		switch kind.Type {
		case "point":
			var ev PointEvent
			if err := json.Unmarshal(line, &ev); err != nil {
				return nil, fmt.Errorf("malformed point event: %w", err)
			}
			*last++
			if onEvent != nil {
				onEvent(ev)
			}
		case "end":
			var end EndEvent
			if err := json.Unmarshal(line, &end); err != nil {
				return nil, fmt.Errorf("malformed end event: %w", err)
			}
			return &end, nil
		default:
			return nil, fmt.Errorf("unknown event type %q", kind.Type)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return nil, errors.New("stream ended without an end event")
}

// Watch follows a campaign to a settled outcome, reconnecting through
// dropped connections, server drains, and restarts. The Last-Point
// offset carries across every reconnect, so onEvent sees each committed
// point exactly once, in log order, no matter how many times the
// connection (or the server) dies. It returns the end event for state
// "done" or "failed"; "interrupted" streams are retried, since a
// restarted server resumes the campaign.
func (c *Client) Watch(ctx context.Context, id string, onEvent func(PointEvent)) (*EndEvent, error) {
	delay := c.RetryDelay
	if delay <= 0 {
		delay = 500 * time.Millisecond
	}
	maxRetries := c.MaxRetries
	if maxRetries <= 0 {
		maxRetries = 20
	}
	last := 0
	attempts := 0
	var lastErr error
	for {
		before := last
		end, err := c.Stream(ctx, id, &last, onEvent)
		if end != nil && (end.State == StateDone || end.State == StateFailed) {
			return end, nil
		}
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		if err != nil {
			lastErr = err
		} else if end != nil {
			lastErr = fmt.Errorf("campaign %s (awaiting resume)", end.State)
		}
		if last > before {
			attempts = 0 // progress: the campaign is alive, keep following
		} else if attempts++; attempts >= maxRetries {
			return nil, fmt.Errorf("watch %s: giving up after %d attempts: %w", id, attempts, lastErr)
		}
		select {
		case <-time.After(delay):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}
