package campaignd

// Fleet execution: when the server is configured with Workers > 0, a
// running job's points are executed by a supervised fleet of worker
// subprocesses (internal/workerpool) instead of the in-process sweep.
// The durability seams are identical — the same checkpoint file, the
// same event log, the same report bytes — so a campaign can be run
// in-process, killed, and resumed under a fleet (or vice versa) without
// the client seeing the difference. What the fleet adds is isolation: a
// crashing, stalling, or corrupted worker costs one process and a
// lease requeue, never the daemon or the other campaigns.

import (
	"errors"
	"fmt"
	"os"
	"sort"

	"tocttou/internal/core"
	"tocttou/internal/workerpool"
)

// runJobFleet drives one campaign over the worker fleet. Called from
// runJob with the active slot held and the event log open; settles the
// job's terminal state before returning.
func (s *Server) runJobFleet(j *job) {
	spec, err := os.ReadFile(j.specPath())
	if err != nil {
		s.settle(j, func(info *JobInfo) {
			info.State = StateFailed
			info.Error = fmt.Sprintf("reading stored spec: %v", err)
		})
		return
	}
	cp, err := core.OpenCheckpoint(j.checkpointPath(), j.compiled.Points, core.AdaptiveStop{})
	if err != nil {
		s.settle(j, func(info *JobInfo) {
			info.State = StateFailed
			info.Error = fmt.Sprintf("opening checkpoint: %v", err)
		})
		return
	}
	// Replay checkpoint-restored points through the event log in index
	// order before any worker runs: commitPoint's seen map makes the
	// replay idempotent across resumes, exactly as the in-process
	// runner's restored-point callbacks are.
	restored := cp.Restored()
	replay := make([]int, 0, len(restored))
	for idx := range restored {
		replay = append(replay, idx)
	}
	sort.Ints(replay)
	for _, idx := range replay {
		appended, err := j.commitPoint(idx, restored[idx])
		if err != nil {
			s.settle(j, func(info *JobInfo) {
				info.State = StateFailed
				info.Error = fmt.Sprintf("event log: %v", err)
			})
			return
		}
		if appended {
			s.pointsCommitted.Add(1)
		}
	}

	// onPoint runs on the supervisor's event loop, exactly once per
	// newly committed point: durable in the checkpoint first, then the
	// event log (append + fsync), then visible to watchers.
	onPoint := func(idx int, res core.CampaignResult) error {
		if err := cp.Flush(idx, res); err != nil {
			return err
		}
		appended, err := j.commitPoint(idx, res)
		if err != nil {
			return fmt.Errorf("event log: %w", err)
		}
		if appended {
			s.pointsCommitted.Add(1)
		}
		return nil
	}
	cfg := workerpool.Config{
		Workers:           s.cfg.Workers,
		Command:           s.cfg.WorkerCommand,
		Env:               s.cfg.WorkerEnv,
		HeartbeatInterval: s.cfg.HeartbeatInterval,
		LeaseTimeout:      s.cfg.LeaseTimeout,
		MaxPointRetries:   s.cfg.MaxPointRetries,
		Interrupt:         s.interrupt,
		Logf:              s.cfg.Logf,
	}
	committed, fstats, err := workerpool.Run(cfg, j.info.Filename, spec, j.compiled.Points, restored, onPoint)
	s.workerRestarts.Add(int64(fstats.Restarts))
	s.leasesRequeued.Add(int64(fstats.LeasesRequeued))
	s.pointsDeduped.Add(int64(fstats.PointsDeduped))
	switch {
	case errors.Is(err, workerpool.ErrInterrupted):
		s.cfg.Logf("campaignd: job %s fleet interrupted for drain (%d/%d points committed)", j.id, j.snapshot().Committed, j.snapshot().Points)
		s.settle(j, func(info *JobInfo) { info.State = StateInterrupted })
	case err != nil:
		s.cfg.Logf("campaignd: job %s fleet failed: %v", j.id, err)
		s.settle(j, func(info *JobInfo) {
			info.State = StateFailed
			info.Error = err.Error()
		})
	default:
		// Quarantined points render as zero-valued rows: the campaign
		// completed around them, and the report appendix names them.
		results := make([]core.CampaignResult, len(j.compiled.Points))
		for idx, res := range committed {
			results[idx] = res
		}
		// Restored points count as memoized, matching the in-process
		// checkpointed runner's accounting on resume.
		stats := core.SweepStats{PointsMemoized: len(restored)}
		s.finishDone(j, results, stats, fstats.Quarantined)
	}
}
