package campaignd

// Job state and durability. A job is one submitted scenario campaign,
// backed by a directory under <data>/jobs/<id>:
//
//	spec            the submitted scenario bytes, verbatim
//	state.json      the job's metadata and state (atomic replace)
//	checkpoint.json core's crash-safe sweep checkpoint (atomic replace)
//	events.ndjson   the point-event log, one JSON line per committed
//	                point, fsynced before any watcher sees the event
//	report.txt      the final rendering, written once on completion
//
// Everything a restarted server needs is in that directory: the spec
// re-parses and re-compiles deterministically, the checkpoint restores
// completed points bit-identically, and the event log preserves the
// stream offsets watchers hold — a client reconnecting across a kill -9
// with `Last-Point: k` receives exactly the events it has not seen,
// because an event is appended and fsynced before it is broadcast.

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"tocttou/internal/core"
	"tocttou/internal/scenario"
)

// Job states. queued and running jobs resume after a restart; done,
// failed, and asserted states are terminal. interrupted marks a job the
// draining server stopped at a point boundary — a restart resumes it
// from its checkpoint.
const (
	StateQueued      = "queued"
	StateRunning     = "running"
	StateDone        = "done"
	StateFailed      = "failed"
	StateInterrupted = "interrupted"
)

// terminalState reports whether a job in this state will make no further
// progress on this server instance. interrupted is terminal for event
// streams (the server is draining) but resumes after a restart.
func terminalState(state string) bool {
	return state == StateDone || state == StateFailed || state == StateInterrupted
}

// JobInfo is a job's client-visible metadata, served by the submit, get,
// and list endpoints and persisted (minus Cached) as state.json.
type JobInfo struct {
	ID          string `json:"id"`
	Name        string `json:"name"`
	Filename    string `json:"filename"`
	State       string `json:"state"`
	SubmittedAt string `json:"submitted_at"`
	// Points is the compiled grid size; Committed counts point events in
	// the log; Memoized counts points the engine copied instead of
	// simulating (in-process dedupe plus checkpoint-restored copies).
	Points    int `json:"points"`
	Committed int `json:"committed"`
	Memoized  int `json:"memoized"`
	// Cached marks a submit response served from the completed store:
	// an identical re-submission of a finished campaign re-runs nothing.
	Cached bool `json:"cached,omitempty"`
	// Error carries the failure for state "failed"; Watchdog flags that
	// the failure was a virtual-time watchdog expiry (a diagnosed
	// runaway round), surfaced so operators can tell runaways from bugs.
	Error    string `json:"error,omitempty"`
	Watchdog bool   `json:"watchdog,omitempty"`
	// AssertionFailure carries the first failed spec assertion for an
	// otherwise completed campaign (the report still renders).
	AssertionFailure string `json:"assertion_failure,omitempty"`
	// Quarantined lists poison point indices a worker fleet set aside
	// after repeated worker kills (fleet mode only): the campaign is done,
	// but these points have no committed result.
	Quarantined []int `json:"quarantined,omitempty"`
}

// PointEvent is one committed sweep point on the NDJSON event stream.
// Seq is the event's position in the job's log: a client that has
// received k events resumes with `Last-Point: k` and is replayed the
// log's suffix — no duplicates, no drops, across server restarts.
type PointEvent struct {
	Type         string  `json:"type"` // "point"
	Seq          int     `json:"seq"`
	Point        int     `json:"point"`
	Label        string  `json:"label"`
	Rounds       int     `json:"rounds"`
	Successes    int     `json:"successes"`
	Rate         float64 `json:"rate"`
	VictimErrors int     `json:"victim_errors"`
	AttackErrors int     `json:"attack_errors"`
}

// EndEvent terminates an event stream: the job reached a state in which
// this server instance will emit no further point events.
type EndEvent struct {
	Type             string `json:"type"` // "end"
	State            string `json:"state"`
	Points           int    `json:"points"`
	Committed        int    `json:"committed"`
	Memoized         int    `json:"memoized"`
	Error            string `json:"error,omitempty"`
	Watchdog         bool   `json:"watchdog,omitempty"`
	AssertionFailure string `json:"assertion_failure,omitempty"`
	Quarantined      []int  `json:"quarantined,omitempty"`
}

// job is the server-side state of one campaign.
type job struct {
	id  string
	dir string

	mu       sync.Mutex
	info     JobInfo
	spec     *scenario.Spec
	compiled *scenario.Compiled
	events   []json.RawMessage // encoded PointEvents, log order
	seen     map[int]bool      // point index -> already in the log
	update   chan struct{}     // closed and replaced on every change
	report   []byte            // final rendering, once done
	elog     *os.File          // events.ndjson append handle while running
}

func newJob(id, dir string, spec *scenario.Spec, compiled *scenario.Compiled, filename, submittedAt string) *job {
	return &job{
		id:  id,
		dir: dir,
		info: JobInfo{
			ID:          id,
			Name:        spec.Name,
			Filename:    filename,
			State:       StateQueued,
			SubmittedAt: submittedAt,
			Points:      len(compiled.Points),
		},
		spec:     spec,
		compiled: compiled,
		seen:     make(map[int]bool),
		update:   make(chan struct{}),
	}
}

func (j *job) specPath() string       { return filepath.Join(j.dir, "spec") }
func (j *job) statePath() string      { return filepath.Join(j.dir, "state.json") }
func (j *job) checkpointPath() string { return filepath.Join(j.dir, "checkpoint.json") }
func (j *job) eventsPath() string     { return filepath.Join(j.dir, "events.ndjson") }
func (j *job) reportPath() string     { return filepath.Join(j.dir, "report.txt") }

// snapshot returns the job's current info under its lock.
func (j *job) snapshot() JobInfo {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.info
}

// bump wakes every stream blocked on this job.
func (j *job) bump() {
	close(j.update)
	j.update = make(chan struct{})
}

// setState transitions the job and persists state.json. Call without
// j.mu held.
func (j *job) setState(mutate func(*JobInfo)) error {
	j.mu.Lock()
	mutate(&j.info)
	info := j.info
	j.bump()
	j.mu.Unlock()
	return writeJSONAtomic(j.statePath(), info)
}

// endEventLocked builds the stream-terminating event for a terminal
// state. Caller holds j.mu.
func (j *job) endEventLocked() json.RawMessage {
	ev := EndEvent{
		Type:             "end",
		State:            j.info.State,
		Points:           j.info.Points,
		Committed:        j.info.Committed,
		Memoized:         j.info.Memoized,
		Error:            j.info.Error,
		Watchdog:         j.info.Watchdog,
		AssertionFailure: j.info.AssertionFailure,
		Quarantined:      j.info.Quarantined,
	}
	data, err := json.Marshal(ev)
	if err != nil {
		// EndEvent is plain values; Marshal cannot fail. Keep the stream
		// well-formed regardless.
		data = []byte(`{"type":"end","state":"failed","error":"internal: end event encoding"}`)
	}
	return data
}

// commitPoint appends one committed point to the event log: durable
// first (append + fsync), visible second (broadcast). Replayed
// completions of points already in the log — checkpoint-restored points
// on resume — are skipped, so the log holds every point exactly once.
func (j *job) commitPoint(p int, res core.CampaignResult) (appended bool, err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.seen[p] {
		return false, nil
	}
	j.seen[p] = true
	ev := PointEvent{
		Type:         "point",
		Seq:          len(j.events),
		Point:        p,
		Label:        j.compiled.Meta[p].Label,
		Rounds:       res.Rounds,
		Successes:    res.Successes,
		Rate:         res.Rate(),
		VictimErrors: res.VictimErrors,
		AttackErrors: res.AttackErrors,
	}
	line, merr := json.Marshal(ev)
	if merr != nil {
		return false, merr
	}
	if j.elog != nil {
		if _, werr := j.elog.Write(append(line, '\n')); werr != nil {
			return false, werr
		}
		if serr := j.elog.Sync(); serr != nil {
			return false, serr
		}
	}
	j.events = append(j.events, line)
	j.info.Committed = len(j.events)
	j.bump()
	return true, nil
}

// openEventLog opens the append handle commitPoint writes through.
func (j *job) openEventLog() error {
	f, err := os.OpenFile(j.eventsPath(), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	j.mu.Lock()
	j.elog = f
	j.mu.Unlock()
	return nil
}

func (j *job) closeEventLog() {
	j.mu.Lock()
	f := j.elog
	j.elog = nil
	j.mu.Unlock()
	if f != nil {
		f.Close()
	}
}

// loadJob restores a job from its directory. Jobs in a non-terminal (or
// interrupted) state re-parse and re-compile their spec — both are
// deterministic — so the returned job is ready to resume from its
// checkpoint; a spec that no longer parses (a hand-edited directory)
// surfaces as a failed job rather than a crashed server.
func loadJob(dir string) (*job, error) {
	var info JobInfo
	data, err := os.ReadFile(filepath.Join(dir, "state.json"))
	if err != nil {
		return nil, err
	}
	if err := json.Unmarshal(data, &info); err != nil {
		return nil, fmt.Errorf("%s: corrupt state.json: %w", dir, err)
	}
	info.Cached = false
	j := &job{
		id:     info.ID,
		dir:    dir,
		info:   info,
		seen:   make(map[int]bool),
		update: make(chan struct{}),
	}
	if err := j.loadEventLog(); err != nil {
		return nil, err
	}
	specData, err := os.ReadFile(j.specPath())
	if err != nil {
		return nil, err
	}
	spec, perr := scenario.LoadBytes(info.Filename, specData)
	if perr == nil {
		j.spec = spec
		j.compiled, perr = scenario.Compile(spec)
	}
	if perr != nil {
		j.info.State = StateFailed
		j.info.Error = fmt.Sprintf("stored spec no longer loads: %v", perr)
		return j, writeJSONAtomic(j.statePath(), j.info)
	}
	if j.info.State == StateDone {
		if j.report, err = os.ReadFile(j.reportPath()); err != nil {
			// The state said done but the report is gone: re-run from the
			// checkpoint (every point restores; only the rendering redoes).
			j.report = nil
			j.info.State = StateInterrupted
		}
	}
	return j, nil
}

// loadEventLog replays events.ndjson into the in-memory log. A torn
// final line (kill -9 between write and sync) is dropped; its point is
// still in the checkpoint, so the resumed run re-emits it.
func (j *job) loadEventLog() error {
	data, err := os.ReadFile(j.eventsPath())
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	for _, line := range splitLines(data) {
		var ev PointEvent
		if json.Unmarshal(line, &ev) != nil || ev.Type != "point" {
			break // torn tail: everything after it re-emits from the checkpoint
		}
		j.events = append(j.events, json.RawMessage(line))
		j.seen[ev.Point] = true
	}
	j.info.Committed = len(j.events)
	return nil
}

// splitLines splits complete newline-terminated lines; a trailing
// fragment without its newline is excluded (torn by a crash mid-append).
func splitLines(data []byte) [][]byte {
	var lines [][]byte
	start := 0
	for i, b := range data {
		if b == '\n' {
			if i > start {
				lines = append(lines, data[start:i])
			}
			start = i + 1
		}
	}
	return lines
}

// writeJSONAtomic marshals v and atomically replaces path (temp file +
// rename, the same discipline as core's checkpoint writer).
func writeJSONAtomic(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return writeFileAtomic(path, append(data, '\n'))
}

func writeFileAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}
