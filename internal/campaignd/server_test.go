package campaignd

// Service-level tests for the campaign server: the job lifecycle over
// the HTTP API, the spec-error round-trip contract (a 400 body is the
// exact file/line-accurate message a local -scenario run prints), the
// drain → restart → resume path, and watch reconnection with Last-Point
// across both dropped connections and a server restart.

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"tocttou/internal/core"
	"tocttou/internal/scenario"
)

// smallSpec finishes in milliseconds; used for lifecycle tests.
const smallSpec = `name: svc-small
machine: up
rounds: 30
seed: 4242
victim: vi
attacker: v1
sizes_kb: [100, 200, 300]
`

// wideSpec compiles to 20 points — enough grid for a drain to land
// mid-campaign with points still unfinished.
const wideSpec = `name: svc-wide
machine: smp2
rounds: 300
seed: 9091
victim: vi
attacker: v1
sizes_kb:
  from: 100
  to: 2000
  step: 100
`

func newTestServer(t *testing.T, dir string) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(Config{DataDir: dir, Logf: t.Logf})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(s.Drain)
	return s, ts
}

func testClient(url string) *Client {
	return &Client{Server: url, RetryDelay: 5 * time.Millisecond, MaxRetries: 2000}
}

// localReport runs the scenario in-process — the reference the service
// must reproduce byte-identically.
func localReport(t *testing.T, filename, src string) string {
	t.Helper()
	spec, err := scenario.LoadBytes(filename, []byte(src))
	if err != nil {
		t.Fatalf("reference spec: %v", err)
	}
	compiled, err := scenario.Compile(spec)
	if err != nil {
		t.Fatalf("reference compile: %v", err)
	}
	results, stats, err := core.RunSweepPoints(compiled.Points, core.SweepOptions{})
	if err != nil {
		t.Fatalf("reference sweep: %v", err)
	}
	out := &scenario.Outcome{Spec: spec, Compiled: compiled, Results: results, Stats: stats}
	var buf strings.Builder
	if err := out.Render(&buf); err != nil {
		t.Fatalf("reference render: %v", err)
	}
	return buf.String()
}

// checkEventLog asserts a watched event sequence is gapless and
// duplicate-free: seqs 0..n-1 in order, every point exactly once.
func checkEventLog(t *testing.T, label string, events []PointEvent, points int) {
	t.Helper()
	if len(events) != points {
		t.Fatalf("%s: streamed %d events, want %d", label, len(events), points)
	}
	seen := make(map[int]bool)
	for i, ev := range events {
		if ev.Seq != i {
			t.Fatalf("%s: event %d has seq %d (duplicate or drop)", label, i, ev.Seq)
		}
		if seen[ev.Point] {
			t.Fatalf("%s: point %d streamed twice", label, ev.Point)
		}
		seen[ev.Point] = true
	}
}

func TestJobLifecycle(t *testing.T) {
	_, ts := newTestServer(t, t.TempDir())
	c := testClient(ts.URL)

	info, err := c.Submit("svc-small.yaml", []byte(smallSpec))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if info.State != StateQueued && info.State != StateRunning && info.State != StateDone {
		t.Fatalf("fresh submit state = %q", info.State)
	}
	if info.Cached {
		t.Fatal("fresh submit marked cached")
	}
	if info.Points != 3 {
		t.Fatalf("points = %d, want 3", info.Points)
	}

	var events []PointEvent
	end, err := c.Watch(context.Background(), info.ID, func(ev PointEvent) { events = append(events, ev) })
	if err != nil {
		t.Fatalf("watch: %v", err)
	}
	if end.State != StateDone {
		t.Fatalf("end state = %q, want done (err %q)", end.State, end.Error)
	}
	checkEventLog(t, "lifecycle", events, 3)

	got, err := c.Report(info.ID)
	if err != nil {
		t.Fatalf("report: %v", err)
	}
	if want := localReport(t, "svc-small.yaml", smallSpec); string(got) != want {
		t.Errorf("service report diverged from the local run:\n--- service ---\n%s--- local ---\n%s", got, want)
	}

	// Identical re-submission: a cache hit from the completed store.
	again, err := c.Submit("svc-small.yaml", []byte(smallSpec))
	if err != nil {
		t.Fatalf("resubmit: %v", err)
	}
	if again.ID != info.ID {
		t.Fatalf("resubmit id = %s, want %s (job identity must be content-derived)", again.ID, info.ID)
	}
	if !again.Cached || again.State != StateDone {
		t.Fatalf("resubmit state=%q cached=%v, want done/cached", again.State, again.Cached)
	}

	jobs, err := c.Jobs()
	if err != nil {
		t.Fatalf("jobs: %v", err)
	}
	if len(jobs) != 1 {
		t.Fatalf("job list has %d entries, want 1 (idempotent submit)", len(jobs))
	}
}

func TestUnknownCampaignIs404(t *testing.T) {
	_, ts := newTestServer(t, t.TempDir())
	for _, path := range []string{
		"/v1/campaigns/deadbeefdeadbeef",
		"/v1/campaigns/deadbeefdeadbeef/events",
		"/v1/campaigns/deadbeefdeadbeef/report",
	} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s = %d, want 404", path, resp.StatusCode)
		}
	}
}

func TestDrainRefusesNewCampaigns(t *testing.T) {
	s, ts := newTestServer(t, t.TempDir())
	s.Drain()
	c := testClient(ts.URL)
	if _, err := c.Submit("svc-small.yaml", []byte(smallSpec)); err == nil {
		t.Fatal("submit during drain succeeded, want 503")
	} else if !strings.Contains(err.Error(), "draining") {
		t.Fatalf("drain refusal = %q, want a draining message", err)
	}
	resp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	defer resp.Body.Close()
	var buf strings.Builder
	if _, err := copyBody(&buf, resp); err != nil {
		t.Fatalf("healthz body: %v", err)
	}
	if !strings.Contains(buf.String(), "draining") {
		t.Errorf("healthz during drain = %s, want draining status", buf.String())
	}
}

// TestSpecErrorRoundTrip is the satellite bugfix's regression table: a
// malformed spec's 400 body must equal, byte for byte, the message a
// local `tocttou -scenario` run prints for the same file — same path,
// same line numbers, same wording.
func TestSpecErrorRoundTrip(t *testing.T) {
	_, ts := newTestServer(t, t.TempDir())
	c := testClient(ts.URL)
	const filename = "broken.yaml"
	cases := []struct {
		name string
		src  string
	}{
		{"unknown key", smallSpec + "frobnicate: 1\n"},
		{"out-of-range rate", smallSpec + "faults:\n  seed: 1\n  fs_rate: 2\n"},
		{"duplicate name",
			"name: x\nmachine: up\nrounds: 2\nseed: 1\nfleet:\n  total: 10\n  jitter_seed: 1\n  templates:\n" +
				"    - name: a\n      weight: 1\n      victim: vi\n      attacker: v1\n      size_kb: 20\n" +
				"    - name: a\n      weight: 2\n      victim: gedit\n      attacker: v2\n      size_kb: 20\n"},
		{"inconsistent assertion", smallSpec + "assertions:\n  - metric: success_rate\n    min: 0.9\n    max: 0.1\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, lerr := scenario.LoadBytes(filename, []byte(tc.src))
			if lerr == nil {
				t.Fatal("test case is not actually malformed")
			}
			_, serr := c.Submit(filename, []byte(tc.src))
			if serr == nil {
				t.Fatal("server accepted a malformed spec")
			}
			if serr.Error() != lerr.Error() {
				t.Errorf("server error diverged from the local one:\nserver: %s\nlocal:  %s", serr, lerr)
			}
		})
	}
}

// TestStreamResumesFromLastPoint replays a finished job's log from an
// offset and checks the suffix is exact: no duplicates, no drops.
func TestStreamResumesFromLastPoint(t *testing.T) {
	_, ts := newTestServer(t, t.TempDir())
	c := testClient(ts.URL)
	info, err := c.Submit("svc-small.yaml", []byte(smallSpec))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if _, err := c.Watch(context.Background(), info.ID, nil); err != nil {
		t.Fatalf("watch: %v", err)
	}
	for offset := 0; offset <= 3; offset++ {
		last := offset
		var events []PointEvent
		end, err := c.Stream(context.Background(), info.ID, &last, func(ev PointEvent) { events = append(events, ev) })
		if err != nil {
			t.Fatalf("stream from %d: %v", offset, err)
		}
		if end == nil || end.State != StateDone {
			t.Fatalf("stream from %d: end = %+v", offset, end)
		}
		if len(events) != 3-offset {
			t.Fatalf("stream from %d delivered %d events, want %d", offset, len(events), 3-offset)
		}
		for i, ev := range events {
			if ev.Seq != offset+i {
				t.Fatalf("stream from %d: event %d has seq %d, want %d", offset, i, ev.Seq, offset+i)
			}
		}
	}
}

// TestDrainRestartResumeWatch is the end-to-end durability contract in
// one test: a draining server interrupts a campaign mid-sweep; a new
// server over the same data directory resumes it from its checkpoint; a
// Watch that spans the hand-off — carrying only its Last-Point offset —
// delivers every point exactly once; and the final report is
// byte-identical to an uninterrupted local run.
func TestDrainRestartResumeWatch(t *testing.T) {
	dir := t.TempDir()
	s1, err := New(Config{DataDir: dir, Logf: t.Logf})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	// The proxy keeps one stable URL while the backing server is swapped,
	// standing in for a service restarting behind its address.
	var backend atomic.Value
	backend.Store(s1.Handler())
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		backend.Load().(http.Handler).ServeHTTP(w, r)
	}))
	defer ts.Close()
	c := testClient(ts.URL)

	info, err := c.Submit("svc-wide.yaml", []byte(wideSpec))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}

	type watchOut struct {
		end    *EndEvent
		events []PointEvent
		err    error
	}
	outc := make(chan watchOut, 1)
	firstEvent := make(chan struct{})
	var once atomic.Bool
	go func() {
		var out watchOut
		out.end, out.err = c.Watch(context.Background(), info.ID, func(ev PointEvent) {
			out.events = append(out.events, ev)
			if once.CompareAndSwap(false, true) {
				close(firstEvent)
			}
		})
		outc <- out
	}()

	select {
	case <-firstEvent:
	case <-time.After(30 * time.Second):
		t.Fatal("no point committed within 30s")
	}
	s1.Drain()
	st := s1.lookup(info.ID).snapshot()
	if st.State == StateDone {
		t.Skip("campaign finished before the drain landed; nothing mid-sweep to resume")
	}
	if st.State != StateInterrupted {
		t.Fatalf("post-drain state = %q, want interrupted", st.State)
	}
	if st.Committed == 0 || st.Committed >= st.Points {
		t.Fatalf("post-drain committed = %d of %d, want a strict mid-campaign cut", st.Committed, st.Points)
	}

	s2, err := New(Config{DataDir: dir, Logf: t.Logf})
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	defer s2.Drain()
	backend.Store(s2.Handler())

	out := <-outc
	if out.err != nil {
		t.Fatalf("watch across restart: %v", out.err)
	}
	if out.end.State != StateDone {
		t.Fatalf("end state = %q, want done (err %q)", out.end.State, out.end.Error)
	}
	checkEventLog(t, "watch across restart", out.events, info.Points)

	got, err := c.Report(info.ID)
	if err != nil {
		t.Fatalf("report: %v", err)
	}
	if want := localReport(t, "svc-wide.yaml", wideSpec); string(got) != want {
		t.Errorf("resumed report diverged from the uninterrupted local run:\n--- service ---\n%s--- local ---\n%s", got, want)
	}

	// The restarted store also serves cache hits for the resumed job.
	again, err := c.Submit("svc-wide.yaml", []byte(wideSpec))
	if err != nil {
		t.Fatalf("resubmit after restart: %v", err)
	}
	if !again.Cached {
		t.Error("resubmit after restart not served from the completed store")
	}
}

// TestTornEventLogRecovers simulates a kill -9 landing between an event
// log append and its fsync: the torn final line is dropped on load and
// the point re-emits from the checkpoint, so offsets stay valid.
func TestTornEventLogRecovers(t *testing.T) {
	dir := t.TempDir()
	s1, err := New(Config{DataDir: dir, Logf: t.Logf})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(s1.Handler())
	c := testClient(ts.URL)
	info, err := c.Submit("svc-small.yaml", []byte(smallSpec))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if _, err := c.Watch(context.Background(), info.ID, nil); err != nil {
		t.Fatalf("watch: %v", err)
	}
	s1.Drain()
	ts.Close()

	// Tear the log: truncate mid-way through the final line, and force the
	// state back to running as a crash would leave it.
	j := s1.lookup(info.ID)
	tearEventLog(t, j)

	s2, err := New(Config{DataDir: dir, Logf: t.Logf})
	if err != nil {
		t.Fatalf("restart over torn log: %v", err)
	}
	defer s2.Drain()
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	c2 := testClient(ts2.URL)
	var events []PointEvent
	end, err := c2.Watch(context.Background(), info.ID, func(ev PointEvent) { events = append(events, ev) })
	if err != nil {
		t.Fatalf("watch resumed job: %v", err)
	}
	if end.State != StateDone {
		t.Fatalf("end state = %q, want done", end.State)
	}
	checkEventLog(t, "torn log recovery", events, 3)
	got, err := c2.Report(info.ID)
	if err != nil {
		t.Fatalf("report: %v", err)
	}
	if want := localReport(t, "svc-small.yaml", smallSpec); string(got) != want {
		t.Errorf("report after torn-log recovery diverged from the local run")
	}
}

func TestStatsCountsJobsAndPoints(t *testing.T) {
	_, ts := newTestServer(t, t.TempDir())
	c := testClient(ts.URL)
	info, err := c.Submit("svc-small.yaml", []byte(smallSpec))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if _, err := c.Watch(context.Background(), info.ID, nil); err != nil {
		t.Fatalf("watch: %v", err)
	}
	if _, err := c.Submit("svc-small.yaml", []byte(smallSpec)); err != nil {
		t.Fatalf("resubmit: %v", err)
	}
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	defer resp.Body.Close()
	var buf strings.Builder
	if _, err := copyBody(&buf, resp); err != nil {
		t.Fatalf("stats body: %v", err)
	}
	body := buf.String()
	for _, want := range []string{`"done":1`, `"points_committed":3`, `"memo_hits":1`} {
		if !strings.Contains(body, want) {
			t.Errorf("stats %s missing %s", body, want)
		}
	}
}
