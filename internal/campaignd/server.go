package campaignd

// Package campaignd is the campaign-as-a-service sweep server: an HTTP
// service (stdlib net/http only) that accepts the scenario DSL's
// YAML/JSON specs, compiles them onto core.RunSweepPointsCheckpoint,
// shards their points across the process-wide bounded worker pool, and
// streams per-point results to clients as NDJSON as each point commits.
//
// Correctness contract: a watched campaign's report is byte-identical to
// running the same scenario file locally, and a server killed (-9) and
// restarted resumes every in-flight campaign bit-identically from its
// checkpoint — every point is a deterministic pure function of its spec
// and seed, which is what makes sharding and resumption safe at all.
// Idempotency rides the same determinism: jobs are keyed by the FNV-1a
// fingerprint of their compiled sweep (plus the rendering-shaping spec
// fields), so an identical re-submission is a cache hit served from the
// completed store, never a re-simulation.
//
// API:
//
//	POST /v1/campaigns?filename=f.yaml   submit a spec (400: the exact
//	                                     file/line-accurate parse error)
//	GET  /v1/campaigns                   list jobs
//	GET  /v1/campaigns/{id}              one job's state
//	GET  /v1/campaigns/{id}/events       NDJSON stream; resumable via
//	                                     the Last-Point header (or
//	                                     ?last=N): the log suffix replays
//	GET  /v1/campaigns/{id}/report       the final rendering, once done
//	GET  /v1/healthz                     liveness + drain state
//	GET  /v1/stats                       jobs by state, points/sec, memo
//	                                     hits

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"tocttou/internal/core"
	"tocttou/internal/scenario"
	"tocttou/internal/workerpool"
)

// Config tunes a Server.
type Config struct {
	// DataDir is the durability root; jobs live under DataDir/jobs/<id>.
	DataDir string
	// MaxActiveJobs bounds concurrently running campaigns (each one
	// shards its points over the shared round pool); 0 selects 2.
	MaxActiveJobs int
	// Workers, when positive, executes each campaign's points in a
	// supervised fleet of worker subprocesses (internal/workerpool)
	// launched via WorkerCommand instead of in-process — one panicking
	// or runaway point can then kill only its worker, never the daemon
	// or the other campaigns. MaxActiveJobs still bounds concurrent
	// campaigns; each running campaign gets its own fleet.
	Workers int
	// WorkerCommand is the argv launching one worker (typically the
	// daemon's own binary with -worker); required when Workers > 0.
	WorkerCommand []string
	// WorkerEnv is extra environment for workers (e.g. a TOCTTOU_CHAOS
	// schedule in soaks).
	WorkerEnv []string
	// HeartbeatInterval, LeaseTimeout, and MaxPointRetries tune fleet
	// supervision; zero values select workerpool's defaults (100ms,
	// 10s, 3).
	HeartbeatInterval time.Duration
	LeaseTimeout      time.Duration
	MaxPointRetries   int
	// Logf receives operational log lines; nil discards them.
	Logf func(format string, args ...any)
}

// Server is the campaign service. Create with New, serve with Handler,
// stop with Drain.
type Server struct {
	cfg       Config
	mux       *http.ServeMux
	started   time.Time
	interrupt chan struct{} // closed by Drain; wired into every sweep

	mu       sync.Mutex
	jobs     map[string]*job
	order    []string // submission order (persisted order restored by SubmittedAt)
	draining bool

	memoHits        atomic.Int64 // submits served from the completed store
	pointsCommitted atomic.Int64

	// Fleet supervision counters, aggregated across campaigns (zero
	// when Workers == 0).
	workerRestarts atomic.Int64
	leasesRequeued atomic.Int64
	pointsDeduped  atomic.Int64

	slots chan struct{}  // MaxActiveJobs tokens
	wg    sync.WaitGroup // running job goroutines
}

// New builds a server over DataDir, restoring every stored job: finished
// jobs load into the completed store, unfinished ones resume from their
// checkpoints immediately.
func New(cfg Config) (*Server, error) {
	if cfg.MaxActiveJobs <= 0 {
		cfg.MaxActiveJobs = 2
	}
	if cfg.Workers > 0 && len(cfg.WorkerCommand) == 0 {
		return nil, fmt.Errorf("campaignd: Workers > 0 requires a WorkerCommand")
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	if err := os.MkdirAll(filepath.Join(cfg.DataDir, "jobs"), 0o755); err != nil {
		return nil, fmt.Errorf("campaignd: %w", err)
	}
	s := &Server{
		cfg:       cfg,
		started:   time.Now(),
		interrupt: make(chan struct{}),
		jobs:      make(map[string]*job),
		slots:     make(chan struct{}, cfg.MaxActiveJobs),
	}
	if err := s.restore(); err != nil {
		return nil, err
	}
	s.routes()
	return s, nil
}

// restore loads every job directory and schedules the unfinished ones.
func (s *Server) restore() error {
	root := filepath.Join(s.cfg.DataDir, "jobs")
	entries, err := os.ReadDir(root)
	if err != nil {
		return fmt.Errorf("campaignd: %w", err)
	}
	var loaded []*job
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		j, err := loadJob(filepath.Join(root, e.Name()))
		if err != nil {
			s.cfg.Logf("campaignd: skipping job dir %s: %v", e.Name(), err)
			continue
		}
		loaded = append(loaded, j)
	}
	sort.Slice(loaded, func(a, b int) bool {
		if loaded[a].info.SubmittedAt != loaded[b].info.SubmittedAt {
			return loaded[a].info.SubmittedAt < loaded[b].info.SubmittedAt
		}
		return loaded[a].id < loaded[b].id
	})
	for _, j := range loaded {
		s.jobs[j.id] = j
		s.order = append(s.order, j.id)
		if !terminalState(j.info.State) || j.info.State == StateInterrupted {
			s.cfg.Logf("campaignd: resuming job %s (%s, state %s, %d/%d points)",
				j.id, j.info.Name, j.info.State, j.info.Committed, j.info.Points)
			s.schedule(j)
		}
	}
	return nil
}

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Drain gracefully stops the server: new submissions are refused with
// 503, every running sweep stops claiming rounds, in-flight rounds
// finish committing, checkpoints flush, and Drain returns once every
// job goroutine has exited. Jobs stopped mid-campaign persist as
// "interrupted" and resume on the next start.
func (s *Server) Drain() {
	s.mu.Lock()
	first := !s.draining
	s.draining = true
	s.mu.Unlock()
	if first {
		close(s.interrupt)
	}
	s.wg.Wait()
}

// Draining reports whether Drain has begun.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

func (s *Server) routes() {
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/campaigns", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/campaigns", s.handleList)
	s.mux.HandleFunc("GET /v1/campaigns/{id}", s.handleGet)
	s.mux.HandleFunc("GET /v1/campaigns/{id}/events", s.handleEvents)
	s.mux.HandleFunc("GET /v1/campaigns/{id}/report", s.handleReport)
	s.mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
}

// maxSpecBytes bounds a submission body; scenario files are small.
const maxSpecBytes = 4 << 20

// jobKey derives a job's identity: core's sweep fingerprint (the full
// result-determining configuration of every compiled point) extended
// with the spec fields that shape rendering and verdicts but not
// simulation (name, report style, labels, assertions). Two submissions
// with equal keys produce byte-identical reports, so the key is safe to
// serve cache hits from.
func jobKey(spec *scenario.Spec, c *scenario.Compiled) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "fp=%016x name=%s report=%s|", core.SweepFingerprint(c.Points, core.AdaptiveStop{}), spec.Name, spec.Report)
	for _, m := range c.Meta {
		fmt.Fprintf(h, "m=%+v|", m)
	}
	for _, a := range spec.Assertions {
		fmt.Fprintf(h, "a=%s,%d,%s,%v,%v,%v,%v|", a.Metric, a.Point, a.Template, a.Min, a.HasMin, a.Max, a.HasMax)
	}
	if spec.Fleet != nil {
		fmt.Fprintf(h, "fleet=%d,%d|", spec.Fleet.Total, spec.Fleet.JitterSeed)
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxSpecBytes+1))
	if err != nil {
		http.Error(w, fmt.Sprintf("reading body: %v", err), http.StatusBadRequest)
		return
	}
	if len(body) > maxSpecBytes {
		http.Error(w, fmt.Sprintf("spec exceeds %d bytes", maxSpecBytes), http.StatusRequestEntityTooLarge)
		return
	}
	filename := filepath.Base(r.URL.Query().Get("filename"))
	if filename == "." || filename == "/" || filename == "" {
		filename = "scenario.yaml"
	}
	// The decode path is scenario.LoadBytes, the exact seam the CLI's
	// -scenario flag loads through: a malformed spec's 400 body is the
	// identical file/line-accurate message a local run prints.
	spec, err := scenario.LoadBytes(filename, body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	compiled, err := scenario.Compile(spec)
	if err != nil {
		http.Error(w, fmt.Sprintf("scenario %s: %v", filename, err), http.StatusBadRequest)
		return
	}
	id := jobKey(spec, compiled)

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		http.Error(w, "draining: not accepting new campaigns", http.StatusServiceUnavailable)
		return
	}
	if existing, ok := s.jobs[id]; ok {
		s.mu.Unlock()
		info := existing.snapshot()
		if info.State == StateDone || info.State == StateFailed {
			// The completed store's memo hit: identical work, zero rounds.
			info.Cached = true
			s.memoHits.Add(1)
		}
		writeJSON(w, http.StatusOK, info)
		return
	}
	// Register before unlocking so a concurrent identical submit joins
	// this job instead of racing to create it.
	dir := filepath.Join(s.cfg.DataDir, "jobs", id)
	j := newJob(id, dir, spec, compiled, filename, time.Now().UTC().Format(time.RFC3339Nano))
	s.jobs[id] = j
	s.order = append(s.order, id)
	s.mu.Unlock()

	if err := os.MkdirAll(dir, 0o755); err == nil {
		err = os.WriteFile(j.specPath(), body, 0o644)
	}
	if err == nil {
		err = writeJSONAtomic(j.statePath(), j.info)
	}
	if err != nil {
		s.mu.Lock()
		delete(s.jobs, id)
		if n := len(s.order); n > 0 && s.order[n-1] == id {
			s.order = s.order[:n-1]
		}
		s.mu.Unlock()
		http.Error(w, fmt.Sprintf("persisting job: %v", err), http.StatusInternalServerError)
		return
	}
	s.cfg.Logf("campaignd: job %s submitted (%s, %d points)", id, spec.Name, len(compiled.Points))
	s.schedule(j)
	writeJSON(w, http.StatusAccepted, j.snapshot())
}

// schedule launches a job's runner goroutine.
func (s *Server) schedule(j *job) {
	s.wg.Add(1)
	go s.runJob(j)
}

// runJob drives one campaign: acquire an active slot, run the
// checkpointed sweep with the server's interrupt wired in, then settle
// the terminal state (done + report, failed, or interrupted for resume).
func (s *Server) runJob(j *job) {
	defer s.wg.Done()
	select {
	case s.slots <- struct{}{}:
		defer func() { <-s.slots }()
	case <-s.interrupt:
		s.settle(j, func(info *JobInfo) { info.State = StateInterrupted })
		return
	}
	select {
	case <-s.interrupt:
		// Drain began while the slot was granted; do not start new work.
		s.settle(j, func(info *JobInfo) { info.State = StateInterrupted })
		return
	default:
	}
	if err := j.openEventLog(); err != nil {
		s.settle(j, func(info *JobInfo) {
			info.State = StateFailed
			info.Error = fmt.Sprintf("event log: %v", err)
		})
		return
	}
	defer j.closeEventLog()
	if err := j.setState(func(info *JobInfo) { info.State = StateRunning }); err != nil {
		s.cfg.Logf("campaignd: job %s: persisting running state: %v", j.id, err)
	}
	if s.cfg.Workers > 0 {
		s.runJobFleet(j)
		return
	}

	var logErr atomic.Value
	opt := core.SweepOptions{
		Interrupt: s.interrupt,
		OnPointDone: func(p int, res core.CampaignResult) {
			appended, err := j.commitPoint(p, res)
			if err != nil {
				// A point that cannot be made durable must not be silently
				// streamed; remember the first failure and fail the job.
				logErr.CompareAndSwap(nil, err)
				return
			}
			if appended {
				s.pointsCommitted.Add(1)
			}
		},
	}
	results, stats, err := core.RunSweepPointsCheckpoint(j.compiled.Points, opt, j.checkpointPath())
	if werr, ok := logErr.Load().(error); ok && err == nil {
		err = fmt.Errorf("event log: %w", werr)
	}
	switch {
	case errors.Is(err, core.ErrSweepInterrupted):
		s.cfg.Logf("campaignd: job %s interrupted for drain (%d/%d points committed)", j.id, j.snapshot().Committed, j.snapshot().Points)
		s.settle(j, func(info *JobInfo) { info.State = StateInterrupted })
	case err != nil:
		s.cfg.Logf("campaignd: job %s failed: %v", j.id, err)
		s.settle(j, func(info *JobInfo) {
			info.State = StateFailed
			info.Error = err.Error()
			info.Watchdog = strings.Contains(err.Error(), "core: watchdog:")
		})
	default:
		s.finishDone(j, results, stats, nil)
	}
}

// finishDone renders the completed campaign's report — the bytes a local
// `tocttou -scenario` golden snapshot would hold — persists it, and
// evaluates the spec's assertions. Quarantined points (fleet mode only)
// are appended after the rendering so an unchaosed report stays
// byte-identical to the local golden.
func (s *Server) finishDone(j *job, results []core.CampaignResult, stats core.SweepStats, quarantined []workerpool.Quarantine) {
	out := &scenario.Outcome{Spec: j.spec, Compiled: j.compiled, Results: results, Stats: stats}
	var buf strings.Builder
	if err := out.Render(&buf); err != nil {
		s.settle(j, func(info *JobInfo) {
			info.State = StateFailed
			info.Error = fmt.Sprintf("rendering report: %v", err)
		})
		return
	}
	report := []byte(buf.String())
	if len(quarantined) > 0 {
		report = append(report, renderQuarantine(j, quarantined)...)
	}
	if err := writeFileAtomic(j.reportPath(), report); err != nil {
		s.settle(j, func(info *JobInfo) {
			info.State = StateFailed
			info.Error = fmt.Sprintf("persisting report: %v", err)
		})
		return
	}
	assertion := ""
	if aerr := out.CheckAssertions(); aerr != nil {
		assertion = aerr.Error()
	}
	j.mu.Lock()
	j.report = report
	j.mu.Unlock()
	s.settle(j, func(info *JobInfo) {
		info.State = StateDone
		info.Memoized = stats.PointsMemoized
		info.AssertionFailure = assertion
		info.Quarantined = nil
		for _, q := range quarantined {
			info.Quarantined = append(info.Quarantined, q.Point)
		}
	})
	s.cfg.Logf("campaignd: job %s done (%d points, %d memoized, %d quarantined)", j.id, len(results), stats.PointsMemoized, len(quarantined))
}

// renderQuarantine is the report appendix describing poison points: the
// campaign completed around them, but they have no committed result and
// the grid rows render zeros.
func renderQuarantine(j *job, qs []workerpool.Quarantine) []byte {
	var b strings.Builder
	fmt.Fprintf(&b, "\nquarantined points: %d of %d (no committed result; each killed workers until set aside)\n", len(qs), len(j.compiled.Points))
	for _, q := range qs {
		fmt.Fprintf(&b, "  point %d (%s): blamed for %d worker kills\n", q.Point, j.compiled.Meta[q.Point].Label, q.Kills)
	}
	return []byte(b.String())
}

// settle applies a terminal transition and logs a persistence failure
// instead of surfacing it (the in-memory state still serves clients).
func (s *Server) settle(j *job, mutate func(*JobInfo)) {
	if err := j.setState(mutate); err != nil {
		s.cfg.Logf("campaignd: job %s: persisting state: %v", j.id, err)
	}
}

func (s *Server) lookup(id string) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	jobs := make([]*job, 0, len(s.order))
	for _, id := range s.order {
		jobs = append(jobs, s.jobs[id])
	}
	s.mu.Unlock()
	infos := make([]JobInfo, len(jobs))
	for i, j := range jobs {
		infos[i] = j.snapshot()
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": infos})
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		http.Error(w, "unknown campaign", http.StatusNotFound)
		return
	}
	writeJSON(w, http.StatusOK, j.snapshot())
}

// handleEvents streams the job's point-event log as NDJSON from the
// client's offset, then follows live commits until the job reaches a
// terminal state, which is sent as the final "end" line. The offset is
// the number of events the client already holds (Last-Point header or
// ?last=N); replaying from it can neither duplicate nor drop events
// because the log is append-only and fsynced before broadcast.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		http.Error(w, "unknown campaign", http.StatusNotFound)
		return
	}
	offset := 0
	raw := r.Header.Get("Last-Point")
	if raw == "" {
		raw = r.URL.Query().Get("last")
	}
	if raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n < 0 {
			http.Error(w, fmt.Sprintf("bad Last-Point %q: want a non-negative event count", raw), http.StatusBadRequest)
			return
		}
		offset = n
	}
	flusher, _ := w.(http.Flusher)
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	for {
		j.mu.Lock()
		var pendingEvents []json.RawMessage
		if offset < len(j.events) {
			pendingEvents = append(pendingEvents, j.events[offset:]...)
		}
		state := j.info.State
		var end json.RawMessage
		if terminalState(state) {
			end = j.endEventLocked()
		}
		ch := j.update
		j.mu.Unlock()

		for _, ev := range pendingEvents {
			if _, err := fmt.Fprintf(w, "%s\n", ev); err != nil {
				return
			}
			offset++
		}
		if end != nil {
			fmt.Fprintf(w, "%s\n", end)
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
		select {
		case <-ch:
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		http.Error(w, "unknown campaign", http.StatusNotFound)
		return
	}
	j.mu.Lock()
	state := j.info.State
	jerr := j.info.Error
	report := j.report
	j.mu.Unlock()
	switch state {
	case StateDone:
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write(report)
	case StateFailed:
		http.Error(w, fmt.Sprintf("campaign failed: %s", jerr), http.StatusConflict)
	default:
		http.Error(w, fmt.Sprintf("campaign is %s; no report yet", state), http.StatusConflict)
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	if s.Draining() {
		status = "draining"
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": status})
}

// Stats is the /v1/stats payload.
type Stats struct {
	Jobs            map[string]int `json:"jobs"`
	PointsCommitted int64          `json:"points_committed"`
	PointsPerSec    float64        `json:"points_per_sec"`
	MemoHits        int64          `json:"memo_hits"`
	PointsMemoized  int            `json:"points_memoized"`
	// Fleet supervision counters (always present; zero in-process).
	// WorkerRestarts counts worker replacements after crashes/stalls;
	// LeasesRequeued counts leases a worker death sent back to the
	// queue; PointsDeduped counts committed points a dead worker's lease
	// would have double-counted (the exactly-once seam, the fleet
	// analogue of PointsMemoized); PointsQuarantined counts poison
	// points set aside across all jobs.
	WorkerRestarts    int64   `json:"worker_restarts"`
	LeasesRequeued    int64   `json:"leases_requeued"`
	PointsDeduped     int64   `json:"points_deduped"`
	PointsQuarantined int     `json:"points_quarantined"`
	Draining          bool    `json:"draining"`
	UptimeSec         float64 `json:"uptime_sec"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	st := Stats{Jobs: make(map[string]int), Draining: s.draining}
	for _, j := range s.jobs {
		info := j.snapshot()
		st.Jobs[info.State]++
		st.PointsMemoized += info.Memoized
		st.PointsQuarantined += len(info.Quarantined)
	}
	s.mu.Unlock()
	st.PointsCommitted = s.pointsCommitted.Load()
	st.MemoHits = s.memoHits.Load()
	st.WorkerRestarts = s.workerRestarts.Load()
	st.LeasesRequeued = s.leasesRequeued.Load()
	st.PointsDeduped = s.pointsDeduped.Load()
	st.UptimeSec = time.Since(s.started).Seconds()
	if st.UptimeSec > 0 {
		st.PointsPerSec = float64(st.PointsCommitted) / st.UptimeSec
	}
	writeJSON(w, http.StatusOK, st)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	data, err := json.Marshal(v)
	if err != nil {
		fmt.Fprintf(w, `{"error":"encoding response"}`)
		return
	}
	w.Write(append(data, '\n'))
}
