package workerpool

// The supervisor half: Run drives every pending point of a campaign to
// a committed (or quarantined) state across a fleet of worker
// subprocesses. One event-loop goroutine owns all fleet state; per-
// worker reader goroutines feed it a single events channel, so there is
// no locking between supervision decisions.
//
// Failure handling, in one place:
//
//   - Liveness: any message (heartbeats included) refreshes a worker's
//     deadline; a worker silent for LeaseTimeout is killed and treated
//     like a crash. Heartbeats keep long-running points alive.
//   - Crash: the dead worker's lease splits. Points it already
//     committed (fingerprint-verified on arrival) are NOT requeued —
//     the exactly-once seam, counted in PointsDeduped. The rest requeue
//     at the front of the queue, and the first uncommitted point takes
//     the blame for the kill (the worker executes its lease in order,
//     so that is the point it died on).
//   - Quarantine: a point blamed for MaxPointRetries kills is a poison
//     point. It is set aside and reported instead of retried forever,
//     and the rest of the campaign completes — graceful degradation,
//     not fail-fast.
//   - Restart: every death schedules a replacement after a
//     deterministic seeded exponential backoff with jitter, bounded by
//     MaxRestarts so a totally broken worker binary terminates the run
//     with a diagnosis instead of flapping forever.

import (
	"errors"
	"fmt"
	"io"
	"os"
	"os/exec"
	"sort"
	"sync/atomic"
	"time"

	"tocttou/internal/core"
)

// Config tunes a fleet.
type Config struct {
	// Workers is the target number of live worker processes; must be > 0.
	Workers int
	// Command launches one worker (argv; Command[0] is the binary). The
	// supervisor appends TOCTTOU_WORKER_ID=<incarnation> to its env.
	Command []string
	// Env is extra environment appended to os.Environ() for every worker.
	Env []string
	// HeartbeatInterval paces worker heartbeats (sent in the load
	// message); 0 selects 100ms.
	HeartbeatInterval time.Duration
	// LeaseTimeout is the inactivity deadline: a worker that sends
	// nothing (not even a heartbeat) for this long is killed and its
	// lease requeued. 0 selects 10s; it must exceed HeartbeatInterval.
	LeaseTimeout time.Duration
	// MaxPointRetries is the number of worker kills one point may be
	// blamed for before it is quarantined; 0 selects 3.
	MaxPointRetries int
	// LeasePoints is the maximum points per lease; 0 selects 2. Small
	// leases bound the work a crash can strand behind a dead worker.
	LeasePoints int
	// BackoffBase/BackoffMax shape the restart delay: min(BackoffMax,
	// BackoffBase << consecutiveFailures) plus deterministic jitter in
	// [0, BackoffBase). Zero values select 50ms and 2s.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// BackoffSeed seeds the jitter stream; 0 selects 1. Same seed, same
	// death sequence → same delays, keeping soak timings reproducible.
	BackoffSeed uint64
	// MaxRestarts bounds total worker replacements; 0 selects 100.
	MaxRestarts int
	// Interrupt, when closed, stops the fleet at the next event: workers
	// are killed and reaped, committed points stay committed, and Run
	// returns ErrInterrupted — the daemon's drain path.
	Interrupt <-chan struct{}
	// Logf receives supervision events; nil discards them.
	Logf func(format string, args ...any)
	// Stderr receives the workers' stderr; nil selects os.Stderr.
	Stderr io.Writer
}

func (c Config) withDefaults() (Config, error) {
	if c.Workers <= 0 {
		return c, fmt.Errorf("workerpool: need workers > 0, got %d", c.Workers)
	}
	if len(c.Command) == 0 || c.Command[0] == "" {
		return c, errors.New("workerpool: empty worker command")
	}
	if c.HeartbeatInterval <= 0 {
		c.HeartbeatInterval = 100 * time.Millisecond
	}
	if c.LeaseTimeout <= 0 {
		c.LeaseTimeout = 10 * time.Second
	}
	if c.LeaseTimeout <= c.HeartbeatInterval {
		return c, fmt.Errorf("workerpool: lease timeout %v must exceed heartbeat interval %v", c.LeaseTimeout, c.HeartbeatInterval)
	}
	if c.MaxPointRetries <= 0 {
		c.MaxPointRetries = 3
	}
	if c.LeasePoints <= 0 {
		c.LeasePoints = 2
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 50 * time.Millisecond
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = 2 * time.Second
	}
	if c.BackoffSeed == 0 {
		c.BackoffSeed = 1
	}
	if c.MaxRestarts <= 0 {
		c.MaxRestarts = 100
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	if c.Stderr == nil {
		c.Stderr = os.Stderr
	}
	return c, nil
}

// Quarantine records one poison point: a point blamed for killing
// MaxPointRetries workers, set aside so the campaign could finish.
type Quarantine struct {
	Point int `json:"point"`
	Kills int `json:"kills"`
}

// Stats reports what supervision had to do.
type Stats struct {
	// Spawns counts every worker process started; Restarts counts the
	// replacements among them (Spawns - initial fleet).
	Spawns   int
	Restarts int
	// Stalls counts workers killed by the inactivity deadline.
	Stalls int
	// LeasesIssued counts leases dispatched; LeasesRequeued counts
	// leases a worker death sent back to the queue.
	LeasesIssued   int
	LeasesRequeued int
	// PointsDeduped counts committed points a dead or slow worker's
	// lease would have re-run — detected by the committed store and
	// dropped instead of double-counted (the exactly-once seam).
	PointsDeduped int
	// Quarantined lists poison points, ascending by point index.
	Quarantined []Quarantine
}

// ErrInterrupted reports a fleet stopped by the Interrupt channel with
// every result committed so far already delivered through onPoint.
var ErrInterrupted = errors.New("workerpool: fleet interrupted")

// Run executes every point of the grid not already present in restored,
// calling onPoint(index, result) exactly once per newly committed point
// (commit order, single goroutine). It returns the full committed map
// (restored entries included), supervision stats, and an error: nil
// when every point committed or quarantined, ErrInterrupted on drain,
// or a terminal supervision failure (restart budget exhausted, onPoint
// error). filename and spec are shipped to workers verbatim; the grid's
// fingerprint guards against compiling them differently there.
func Run(cfg Config, filename string, spec []byte, points []core.SweepPoint, restored map[int]core.CampaignResult, onPoint func(int, core.CampaignResult) error) (map[int]core.CampaignResult, Stats, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, Stats{}, err
	}
	r := &fleetRun{
		cfg:         cfg,
		filename:    filename,
		spec:        spec,
		points:      points,
		sweepFP:     core.SweepFingerprint(points, core.AdaptiveStop{}),
		fps:         make([]uint64, len(points)),
		committed:   make(map[int]core.CampaignResult, len(points)),
		kills:       make(map[int]int),
		quarantined: make(map[int]int),
		workers:     make(map[int]*proc),
		events:      make(chan fleetEvent, 16),
		done:        make(chan struct{}),
		onPoint:     onPoint,
	}
	for i, p := range points {
		r.fps[i] = core.PointFingerprint(p)
		if res, ok := restored[i]; ok {
			r.committed[i] = res
		} else {
			r.pending = append(r.pending, i)
		}
	}
	return r.run()
}

type evKind int

const (
	evMsg evKind = iota
	evExit
	evSpawn
)

type fleetEvent struct {
	kind evKind
	p    *proc
	msg  *Message
	err  error // evExit: the process's wait error (nil on clean exit)
}

// proc is one worker process. lastMsg is written by the reader
// goroutine and read by the event loop's deadline check; everything
// else is event-loop-owned.
type proc struct {
	id      int
	cmd     *exec.Cmd
	stdin   io.WriteCloser
	lastMsg atomic.Int64 // latest receive time, unix nanos

	loaded  bool
	lease   []int // leased point indices; nil when idle
	leaseID int
	killed  bool // supervisor-initiated kill (deadline or teardown)
}

type fleetRun struct {
	cfg      Config
	filename string
	spec     []byte
	points   []core.SweepPoint
	sweepFP  uint64
	fps      []uint64
	onPoint  func(int, core.CampaignResult) error

	committed   map[int]core.CampaignResult
	pending     []int // point indices awaiting a lease, front = next
	kills       map[int]int
	quarantined map[int]int // point -> kills at quarantine time

	workers    map[int]*proc
	nextID     int
	leaseSeq   int
	failStreak int // deaths since the last successful ack; backoff exponent
	timers     []*time.Timer

	events chan fleetEvent
	done   chan struct{}
	stats  Stats
}

// post delivers an event unless the fleet is already torn down.
func (r *fleetRun) post(ev fleetEvent) {
	select {
	case r.events <- ev:
	case <-r.done:
	}
}

func (r *fleetRun) settled() bool {
	return len(r.committed)+len(r.quarantined) == len(r.points)
}

func (r *fleetRun) run() (map[int]core.CampaignResult, Stats, error) {
	defer r.teardown()
	for i := 0; i < r.cfg.Workers && !r.settled(); i++ {
		if err := r.spawn(); err != nil {
			return r.committed, r.finalStats(), fmt.Errorf("workerpool: spawning worker: %w", err)
		}
	}
	ticker := time.NewTicker(r.cfg.HeartbeatInterval)
	defer ticker.Stop()
	for !r.settled() {
		select {
		case <-r.cfg.Interrupt:
			return r.committed, r.finalStats(), ErrInterrupted
		case ev := <-r.events:
			if err := r.handle(ev); err != nil {
				return r.committed, r.finalStats(), err
			}
		case <-ticker.C:
			r.checkDeadlines()
		}
	}
	return r.committed, r.finalStats(), nil
}

func (r *fleetRun) finalStats() Stats {
	st := r.stats
	for p, k := range r.quarantined {
		st.Quarantined = append(st.Quarantined, Quarantine{Point: p, Kills: k})
	}
	sort.Slice(st.Quarantined, func(a, b int) bool { return st.Quarantined[a].Point < st.Quarantined[b].Point })
	return st
}

// spawn starts one worker with a fresh incarnation id and sends it the
// load message. A child that dies instantly is handled by its reader's
// exit event like any other death.
func (r *fleetRun) spawn() error {
	id := r.nextID
	r.nextID++
	cmd := exec.Command(r.cfg.Command[0], r.cfg.Command[1:]...)
	cmd.Env = append(append(os.Environ(), r.cfg.Env...), fmt.Sprintf("TOCTTOU_WORKER_ID=%d", id))
	cmd.Stderr = r.cfg.Stderr
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return err
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return err
	}
	if err := cmd.Start(); err != nil {
		return err
	}
	p := &proc{id: id, cmd: cmd, stdin: stdin}
	p.lastMsg.Store(time.Now().UnixNano())
	r.workers[id] = p
	r.stats.Spawns++
	go r.read(p, stdout)
	r.send(p, &Message{
		Type:        MsgLoad,
		Filename:    r.filename,
		Spec:        r.spec,
		Fingerprint: fpString(r.sweepFP),
		HeartbeatMS: int(r.cfg.HeartbeatInterval / time.Millisecond),
	})
	r.cfg.Logf("workerpool: spawned worker %d (pid %d)", id, cmd.Process.Pid)
	return nil
}

// read is the per-worker reader goroutine: it forwards complete
// messages, then — stdout being closed is how a worker's death is
// observed — reaps the process and posts its exit. Per worker, the exit
// event is therefore always the last event.
func (r *fleetRun) read(p *proc, stdout io.Reader) {
	lr := newLineReader(stdout)
	for {
		msg, err := lr.next()
		if err != nil {
			break // EOF (clean or torn tail) or malformed line: treat as death
		}
		p.lastMsg.Store(time.Now().UnixNano())
		r.post(fleetEvent{kind: evMsg, p: p, msg: msg})
	}
	err := p.cmd.Wait()
	r.post(fleetEvent{kind: evExit, p: p, err: err})
}

// send writes a message to a worker. A write failure means the worker
// is dying; its exit event will requeue whatever it was assigned.
func (r *fleetRun) send(p *proc, m *Message) {
	w := msgWriter{w: p.stdin}
	if err := w.send(m); err != nil {
		r.cfg.Logf("workerpool: worker %d: write failed (dying?): %v", p.id, err)
	}
}

func (r *fleetRun) handle(ev fleetEvent) error {
	switch ev.kind {
	case evSpawn:
		if r.settled() {
			return nil
		}
		if err := r.spawn(); err != nil {
			return fmt.Errorf("workerpool: respawning worker: %w", err)
		}
		return nil
	case evExit:
		return r.handleExit(ev.p, ev.err)
	default:
		return r.handleMsg(ev.p, ev.msg)
	}
}

func (r *fleetRun) handleMsg(p *proc, msg *Message) error {
	switch msg.Type {
	case MsgHeartbeat:
		return nil // liveness already recorded by the reader
	case MsgLoaded:
		if msg.NumPoints != len(r.points) {
			r.cfg.Logf("workerpool: worker %d compiled %d points, want %d; replacing it", p.id, msg.NumPoints, len(r.points))
			r.kill(p)
			return nil
		}
		p.loaded = true
		r.assign(p)
		return nil
	case MsgPoint:
		return r.ingest(p, msg)
	case MsgAck:
		// Defensive: every leased point should have arrived before the
		// ack; requeue any that did not instead of losing them.
		var missing []int
		for _, idx := range p.lease {
			if !r.pointSettled(idx) {
				missing = append(missing, idx)
			}
		}
		if len(missing) > 0 {
			r.cfg.Logf("workerpool: worker %d acked lease %d with %d missing points; requeueing %v", p.id, msg.Lease, len(missing), missing)
			r.requeueFront(missing)
		}
		p.lease = nil
		r.failStreak = 0 // the fleet is making progress; reset backoff
		r.assign(p)
		return nil
	case MsgError:
		r.cfg.Logf("workerpool: worker %d reported: %s", p.id, msg.Error)
		return nil // its exit event follows and handles the lease
	default:
		r.cfg.Logf("workerpool: worker %d sent unexpected %q; replacing it", p.id, msg.Type)
		r.kill(p)
		return nil
	}
}

// ingest folds one worker-committed result: fingerprint-verified
// against the supervisor's own view of the grid, deduplicated against
// the committed store, delivered to onPoint exactly once.
func (r *fleetRun) ingest(p *proc, msg *Message) error {
	idx := msg.Point
	if idx < 0 || idx >= len(r.points) || msg.Result == nil {
		r.cfg.Logf("workerpool: worker %d sent invalid point message (point=%d); replacing it", p.id, idx)
		r.kill(p)
		return nil
	}
	if msg.FP != fpString(r.fps[idx]) {
		r.cfg.Logf("workerpool: worker %d result for point %d carries fingerprint %s, want %s; discarding and replacing it", p.id, idx, msg.FP, fpString(r.fps[idx]))
		r.kill(p)
		return nil
	}
	if _, dup := r.committed[idx]; dup {
		// A requeued lease raced a dying worker's buffered commit: the
		// point is already folded, drop the duplicate.
		r.stats.PointsDeduped++
		return nil
	}
	if _, q := r.quarantined[idx]; q {
		// A straggler outlived the point's quarantine decision; the
		// campaign already settled this point as poisoned.
		r.cfg.Logf("workerpool: worker %d committed already-quarantined point %d; dropping", p.id, idx)
		return nil
	}
	if err := r.onPoint(idx, *msg.Result); err != nil {
		return fmt.Errorf("workerpool: committing point %d: %w", idx, err)
	}
	r.committed[idx] = *msg.Result
	return nil
}

// assign hands the next lease to an idle loaded worker.
func (r *fleetRun) assign(p *proc) {
	if !p.loaded || p.lease != nil || len(r.pending) == 0 || p.killed {
		return
	}
	n := r.cfg.LeasePoints
	if n > len(r.pending) {
		n = len(r.pending)
	}
	lease := append([]int(nil), r.pending[:n]...)
	r.pending = r.pending[n:]
	r.leaseSeq++
	p.lease = lease
	p.leaseID = r.leaseSeq
	r.stats.LeasesIssued++
	r.send(p, &Message{Type: MsgLease, Lease: p.leaseID, Points: lease})
}

// handleExit settles a dead worker: split its lease along the committed
// boundary, blame the in-progress point, quarantine it if it has killed
// enough workers, and schedule a replacement after backoff.
func (r *fleetRun) handleExit(p *proc, werr error) error {
	delete(r.workers, p.id)
	deliberate := p.killed
	if p.lease != nil {
		var uncommitted []int
		for _, idx := range p.lease {
			if _, ok := r.committed[idx]; ok {
				// Committed before the death: the exactly-once seam. The
				// result is already folded; requeueing it would double-count.
				r.stats.PointsDeduped++
				continue
			}
			if _, q := r.quarantined[idx]; q {
				continue
			}
			uncommitted = append(uncommitted, idx)
		}
		p.lease = nil
		if len(uncommitted) > 0 {
			r.stats.LeasesRequeued++
			// Every death — crash, stall kill, bad message — blames the
			// lease's first uncommitted point: the worker executes its
			// lease in order, so that is the point it died on.
			blame := uncommitted[0]
			r.kills[blame]++
			if r.kills[blame] >= r.cfg.MaxPointRetries {
				r.quarantined[blame] = r.kills[blame]
				r.cfg.Logf("workerpool: point %d quarantined after %d worker kills (poison point); campaign continues without it", blame, r.kills[blame])
				uncommitted = uncommitted[1:]
			}
			r.requeueFront(uncommitted)
		}
	}
	if !deliberate {
		r.cfg.Logf("workerpool: worker %d died: %v", p.id, exitDesc(werr))
	}
	if r.settled() {
		return nil
	}
	if r.stats.Restarts >= r.cfg.MaxRestarts {
		return fmt.Errorf("workerpool: restart budget exhausted after %d replacements (last death: %v)", r.cfg.MaxRestarts, exitDesc(werr))
	}
	r.stats.Restarts++
	r.failStreak++
	delay := backoffDelay(r.cfg.BackoffSeed, p.id, r.failStreak, r.cfg.BackoffBase, r.cfg.BackoffMax)
	r.cfg.Logf("workerpool: restarting worker in %v (replacement %d/%d)", delay, r.stats.Restarts, r.cfg.MaxRestarts)
	r.timers = append(r.timers, time.AfterFunc(delay, func() {
		r.post(fleetEvent{kind: evSpawn})
	}))
	return nil
}

// requeueFront puts points back at the head of the queue so recovery
// work happens before new work.
func (r *fleetRun) requeueFront(pts []int) {
	if len(pts) == 0 {
		return
	}
	r.pending = append(append(make([]int, 0, len(pts)+len(r.pending)), pts...), r.pending...)
}

func (r *fleetRun) pointSettled(idx int) bool {
	if _, ok := r.committed[idx]; ok {
		return true
	}
	_, q := r.quarantined[idx]
	return q
}

// checkDeadlines kills workers silent past the lease timeout. The kill
// closes their stdout, so the normal exit path requeues their lease.
func (r *fleetRun) checkDeadlines() {
	now := time.Now().UnixNano()
	for _, p := range r.workers {
		if p.killed {
			continue
		}
		if last := p.lastMsg.Load(); now-last > int64(r.cfg.LeaseTimeout) {
			r.stats.Stalls++
			r.cfg.Logf("workerpool: worker %d silent for over %v; killing it and requeueing its lease", p.id, r.cfg.LeaseTimeout)
			r.kill(p)
		}
	}
}

// kill terminates a worker; its reader goroutine observes the closed
// stdout, reaps the process, and posts the exit event that settles its
// lease.
func (r *fleetRun) kill(p *proc) {
	p.killed = true
	p.stdin.Close()
	if p.cmd.Process != nil {
		p.cmd.Process.Kill()
	}
}

// teardown kills and reaps every remaining worker — no orphaned
// children, whatever path Run exits by — then releases any pending
// restart timers.
func (r *fleetRun) teardown() {
	for _, p := range r.workers {
		p.killed = true
		p.stdin.Close()
		if p.cmd.Process != nil {
			p.cmd.Process.Kill()
		}
	}
	// Drain events until every reader has reaped its process and posted
	// the exit; late messages and restart firings are discarded.
	for len(r.workers) > 0 {
		ev := <-r.events
		if ev.kind == evExit {
			delete(r.workers, ev.p.id)
		}
	}
	for _, t := range r.timers {
		t.Stop()
	}
	close(r.done)
}

func exitDesc(err error) string {
	if err == nil {
		return "exit status 0"
	}
	return err.Error()
}

// backoffDelay is the deterministic restart delay: exponential in the
// fleet's consecutive-failure streak, capped at max, plus splitmix64
// jitter in [0, base) derived from (seed, workerID, attempt) — same
// inputs, same delay, so soak timings reproduce.
func backoffDelay(seed uint64, workerID, attempt int, base, max time.Duration) time.Duration {
	d := base
	for i := 1; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	j := splitmix64(seed ^ uint64(workerID)<<32 ^ uint64(attempt))
	return d + time.Duration(j%uint64(base))
}

// splitmix64 is the standard 64-bit finalizer-style mixer; good jitter
// from sequential inputs, no state.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
