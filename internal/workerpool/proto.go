// Package workerpool runs a campaign's sweep points in supervised
// worker subprocesses. The daemon side (Run, fleet.go) partitions the
// compiled grid into leases and dispatches them to `tocttoud -worker`
// children over an NDJSON stdin/stdout protocol; the worker side
// (RunWorker, worker.go) re-compiles the same spec, verifies the sweep
// fingerprint, and executes leased points through core.RunSweepSubset.
//
// The whole design leans on one fact: every point is a pure function of
// its scenario and seed, so a lease re-executed after a worker crash
// commits bit-identical results. That turns supervision — heartbeat
// deadlines, restart with backoff, exactly-once requeue, poison-point
// quarantine — into mechanisms whose correctness is checkable (the
// chaos soak diffs the final report against an in-process run) rather
// than hoped for.
package workerpool

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"

	"tocttou/internal/core"
)

// Message types. The daemon sends load then leases; the worker answers
// loaded, then per lease a point message per committed result followed
// by one ack. Heartbeats flow worker→daemon on a timer; error is a
// worker's dying words before a self-inflicted exit. Closing the
// worker's stdin is the quit signal.
const (
	MsgLoad      = "load"
	MsgLoaded    = "loaded"
	MsgLease     = "lease"
	MsgPoint     = "point"
	MsgAck       = "ack"
	MsgHeartbeat = "heartbeat"
	MsgError     = "error"
)

// Message is the protocol envelope, one JSON object per line. Fields
// group by message type; unused ones stay zero and omitted.
type Message struct {
	Type string `json:"type"`

	// load (daemon → worker): Spec and Filename re-compile the campaign
	// in the worker; Fingerprint must match the worker's own
	// core.SweepFingerprint of the compiled points (a version-skewed
	// binary fails loudly instead of committing wrong results);
	// HeartbeatMS paces the worker's heartbeats.
	Filename    string `json:"filename,omitempty"`
	Spec        []byte `json:"spec,omitempty"`
	Fingerprint string `json:"fingerprint,omitempty"`
	HeartbeatMS int    `json:"heartbeat_ms,omitempty"`

	// loaded (worker → daemon): the compiled grid size, echoed so the
	// daemon can cross-check partitioning.
	NumPoints int `json:"num_points,omitempty"`

	// lease (daemon → worker) and ack (worker → daemon): a lease id and
	// the global point indices it covers.
	Lease  int   `json:"lease,omitempty"`
	Points []int `json:"points,omitempty"`

	// point (worker → daemon): one committed result. FP is the point's
	// core.PointFingerprint — the key the supervisor verifies before
	// folding or deduplicating the result.
	Point  int                  `json:"point,omitempty"`
	FP     string               `json:"fp,omitempty"`
	Result *core.CampaignResult `json:"result,omitempty"`

	// error (worker → daemon).
	Error string `json:"error,omitempty"`
}

// lineReader reads complete newline-terminated protocol lines. A final
// line missing its newline — torn by a worker killed mid-write — is
// discarded and reported as io.EOF, the same torn-tail discipline as
// the daemon's event log: a result is either wholly on the wire or it
// never happened.
type lineReader struct {
	br *bufio.Reader
}

func newLineReader(r io.Reader) *lineReader {
	return &lineReader{br: bufio.NewReaderSize(r, 64<<10)}
}

// next returns the next complete message; io.EOF means the stream ended
// (cleanly, or with a torn partial line that was dropped).
func (lr *lineReader) next() (*Message, error) {
	for {
		line, err := lr.br.ReadString('\n')
		if err != nil {
			if err == io.EOF {
				return nil, io.EOF
			}
			return nil, err
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		var m Message
		if jerr := json.Unmarshal([]byte(line), &m); jerr != nil {
			return nil, fmt.Errorf("workerpool: malformed message %.80q: %w", line, jerr)
		}
		return &m, nil
	}
}

// msgWriter serializes concurrent protocol writes: in the worker the
// heartbeat loop and the lease loop share one stdout.
type msgWriter struct {
	mu sync.Mutex
	w  io.Writer
}

func (mw *msgWriter) send(m *Message) error {
	data, err := json.Marshal(m)
	if err != nil {
		return err
	}
	mw.mu.Lock()
	defer mw.mu.Unlock()
	_, err = mw.w.Write(append(data, '\n'))
	return err
}

// sendTorn writes half of the message and stops mid-line — the chaos
// layer's torn-result-write, which the reader on the other end must
// drop wholesale.
func (mw *msgWriter) sendTorn(m *Message) error {
	data, err := json.Marshal(m)
	if err != nil {
		return err
	}
	mw.mu.Lock()
	defer mw.mu.Unlock()
	_, err = mw.w.Write(data[:len(data)/2])
	return err
}

// fpString renders a fingerprint the way job ids render: fixed-width
// hex, comparable as a string.
func fpString(fp uint64) string { return fmt.Sprintf("%016x", fp) }
