package workerpool

// Fleet tests use the helper-process pattern: the test binary re-execs
// itself as the worker command, and TestMain diverts the child into
// workerpool.Main before any test runs. Chaos schedules are injected
// through the worker environment exactly as the chaos soak does.

import (
	"errors"
	"io"
	"os"
	"strings"
	"testing"
	"time"

	"tocttou/internal/core"
	"tocttou/internal/scenario"
)

func TestMain(m *testing.M) {
	if os.Getenv("TOCTTOU_WORKER_PROCESS") == "1" {
		os.Exit(Main())
	}
	os.Exit(m.Run())
}

// fleetSpec compiles to 6 points of a few milliseconds each.
const fleetSpec = `name: fleet-test
machine: up
rounds: 30
seed: 7171
victim: vi
attacker: v1
sizes_kb: [100, 200, 300, 400, 500, 600]
`

func fleetPoints(t *testing.T) []core.SweepPoint {
	t.Helper()
	spec, err := scenario.LoadBytes("fleet-test.yaml", []byte(fleetSpec))
	if err != nil {
		t.Fatalf("LoadBytes: %v", err)
	}
	compiled, err := scenario.Compile(spec)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	return compiled.Points
}

func referenceResults(t *testing.T, points []core.SweepPoint) []core.CampaignResult {
	t.Helper()
	want, _, err := core.RunSweepPoints(points, core.SweepOptions{})
	if err != nil {
		t.Fatalf("reference sweep: %v", err)
	}
	return want
}

// testConfig returns a fleet config re-execing this binary as the
// worker, with soak-friendly timings.
func testConfig(t *testing.T, workers int, chaos string) Config {
	t.Helper()
	env := []string{"TOCTTOU_WORKER_PROCESS=1"}
	if chaos != "" {
		env = append(env, "TOCTTOU_CHAOS="+chaos)
	}
	return Config{
		Workers:           workers,
		Command:           []string{os.Args[0]},
		Env:               env,
		HeartbeatInterval: 20 * time.Millisecond,
		LeaseTimeout:      2 * time.Second,
		BackoffBase:       5 * time.Millisecond,
		BackoffMax:        50 * time.Millisecond,
		Logf:              t.Logf,
		Stderr:            io.Discard,
	}
}

// runFleet runs the fleet and asserts the exactly-once onPoint
// contract, returning the committed map, per-point onPoint counts, and
// stats.
func runFleet(t *testing.T, cfg Config, points []core.SweepPoint, restored map[int]core.CampaignResult) (map[int]core.CampaignResult, map[int]int, Stats) {
	t.Helper()
	calls := make(map[int]int)
	committed, stats, err := Run(cfg, "fleet-test.yaml", []byte(fleetSpec), points, restored,
		func(i int, res core.CampaignResult) error {
			calls[i]++ // single event-loop goroutine: no lock needed
			return nil
		})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i, n := range calls {
		if n != 1 {
			t.Errorf("onPoint fired %d times for point %d, want exactly once", n, i)
		}
	}
	return committed, calls, stats
}

func checkBitIdentical(t *testing.T, committed map[int]core.CampaignResult, want []core.CampaignResult, skip map[int]bool) {
	t.Helper()
	for i, w := range want {
		if skip[i] {
			continue
		}
		got, ok := committed[i]
		if !ok {
			t.Errorf("point %d never committed", i)
			continue
		}
		if got != w {
			t.Errorf("point %d diverged from the in-process reference:\ngot:  %+v\nwant: %+v", i, got, w)
		}
	}
}

func TestFleetCleanRunBitIdentical(t *testing.T) {
	points := fleetPoints(t)
	want := referenceResults(t, points)
	committed, calls, stats := runFleet(t, testConfig(t, 3, ""), points, nil)
	if len(committed) != len(points) || len(calls) != len(points) {
		t.Fatalf("committed %d points, onPoint saw %d, want %d", len(committed), len(calls), len(points))
	}
	checkBitIdentical(t, committed, want, nil)
	if stats.Restarts != 0 || stats.Stalls != 0 || len(stats.Quarantined) != 0 {
		t.Errorf("clean run reported restarts=%d stalls=%d quarantined=%v", stats.Restarts, stats.Stalls, stats.Quarantined)
	}
	if stats.Spawns != 3 {
		t.Errorf("spawns = %d, want 3", stats.Spawns)
	}
}

func TestFleetCrashTornRecoveryBitIdentical(t *testing.T) {
	// Workers 0 and 1 die at their first point (one cleanly crashed, one
	// mid-result-write); the fleet must recover and the results must not
	// show it.
	points := fleetPoints(t)
	want := referenceResults(t, points)
	committed, _, stats := runFleet(t, testConfig(t, 3, "w0:crash@1;w1:torn@1"), points, nil)
	checkBitIdentical(t, committed, want, nil)
	if stats.Restarts < 2 {
		t.Errorf("restarts = %d, want >= 2 (two workers were killed)", stats.Restarts)
	}
	if stats.LeasesRequeued < 2 {
		t.Errorf("leases requeued = %d, want >= 2", stats.LeasesRequeued)
	}
}

func TestFleetExactlyOnceAfterCommitBeforeAck(t *testing.T) {
	// The exactly-once seam: worker 0 commits its first point's result
	// and dies before the lease ack. The requeued lease must detect the
	// committed point via the store (fingerprint-verified on arrival)
	// and not re-fold it — onPoint exactly once per point, a
	// PointsMemoized-style dedupe counter, bit-identical results.
	points := fleetPoints(t)
	want := referenceResults(t, points)
	committed, calls, stats := runFleet(t, testConfig(t, 2, "w0:crash-after@1"), points, nil)
	if len(calls) != len(points) {
		t.Fatalf("onPoint saw %d distinct points, want %d", len(calls), len(points))
	}
	checkBitIdentical(t, committed, want, nil)
	if stats.PointsDeduped < 1 {
		t.Errorf("points deduped = %d, want >= 1 (the committed-but-unacked point)", stats.PointsDeduped)
	}
	if stats.Restarts < 1 {
		t.Errorf("restarts = %d, want >= 1", stats.Restarts)
	}
}

func TestFleetStallDetectedByDeadline(t *testing.T) {
	points := fleetPoints(t)
	want := referenceResults(t, points)
	cfg := testConfig(t, 2, "w1:stall@1")
	cfg.LeaseTimeout = 300 * time.Millisecond
	committed, _, stats := runFleet(t, cfg, points, nil)
	checkBitIdentical(t, committed, want, nil)
	if stats.Stalls < 1 {
		t.Errorf("stalls = %d, want >= 1 (worker 1 went silent)", stats.Stalls)
	}
}

func TestFleetQuarantinesPoisonPoint(t *testing.T) {
	// Unscoped crash@point=2: every worker that leases point 2 dies
	// there. After MaxPointRetries kills the point must be quarantined
	// and the rest of the campaign must still complete bit-identically.
	points := fleetPoints(t)
	want := referenceResults(t, points)
	cfg := testConfig(t, 3, "crash@point=2")
	cfg.MaxPointRetries = 3
	committed, calls, stats := runFleet(t, cfg, points, nil)
	if len(committed) != len(points)-1 {
		t.Errorf("committed %d points, want %d (all but the poison point)", len(committed), len(points)-1)
	}
	if _, ok := committed[2]; ok {
		t.Error("poison point 2 has a committed result")
	}
	if n, ok := calls[2]; ok {
		t.Errorf("onPoint fired %d times for the poison point", n)
	}
	checkBitIdentical(t, committed, want, map[int]bool{2: true})
	if len(stats.Quarantined) != 1 || stats.Quarantined[0].Point != 2 || stats.Quarantined[0].Kills != 3 {
		t.Errorf("quarantined = %+v, want [{Point:2 Kills:3}]", stats.Quarantined)
	}
	if stats.Restarts < 3 {
		t.Errorf("restarts = %d, want >= 3", stats.Restarts)
	}
}

func TestFleetRestoredPointsNeverReExecute(t *testing.T) {
	points := fleetPoints(t)
	want := referenceResults(t, points)
	restored := make(map[int]core.CampaignResult, len(points))
	for i, r := range want {
		restored[i] = r
	}
	committed, calls, stats := runFleet(t, testConfig(t, 3, ""), points, restored)
	if stats.Spawns != 0 {
		t.Errorf("fully-restored run spawned %d workers, want 0", stats.Spawns)
	}
	if len(calls) != 0 {
		t.Errorf("onPoint fired for restored points: %v", calls)
	}
	checkBitIdentical(t, committed, want, nil)
}

func TestFleetInterruptStopsAndReaps(t *testing.T) {
	points := fleetPoints(t)
	interrupt := make(chan struct{})
	close(interrupt)
	cfg := testConfig(t, 2, "")
	cfg.Interrupt = interrupt
	committed, _, err := Run(cfg, "fleet-test.yaml", []byte(fleetSpec), points, nil,
		func(int, core.CampaignResult) error { return nil })
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("err = %v, want ErrInterrupted", err)
	}
	if len(committed) != 0 {
		t.Errorf("pre-closed interrupt still committed %d points", len(committed))
	}
}

func TestFleetRestartBudgetExhausted(t *testing.T) {
	points := fleetPoints(t)
	cfg := testConfig(t, 2, "crash@1") // every worker incarnation dies at its first point
	cfg.MaxRestarts = 4
	cfg.MaxPointRetries = 1000 // keep quarantine out of the way
	_, _, err := Run(cfg, "fleet-test.yaml", []byte(fleetSpec), points, nil,
		func(int, core.CampaignResult) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "restart budget exhausted") {
		t.Fatalf("err = %v, want restart-budget exhaustion", err)
	}
}

func TestFleetConfigValidation(t *testing.T) {
	points := fleetPoints(t)
	noop := func(int, core.CampaignResult) error { return nil }
	if _, _, err := Run(Config{Workers: 0, Command: []string{"x"}}, "f", nil, points, nil, noop); err == nil {
		t.Error("workers=0 accepted")
	}
	if _, _, err := Run(Config{Workers: 1}, "f", nil, points, nil, noop); err == nil {
		t.Error("empty command accepted")
	}
	bad := Config{Workers: 1, Command: []string{"x"}, HeartbeatInterval: time.Second, LeaseTimeout: time.Second}
	if _, _, err := Run(bad, "f", nil, points, nil, noop); err == nil ||
		!strings.Contains(err.Error(), "must exceed heartbeat interval") {
		t.Errorf("lease-timeout <= heartbeat accepted: %v", err)
	}
}

func TestLineReaderDropsTornTail(t *testing.T) {
	in := strings.NewReader(`{"type":"heartbeat"}` + "\n" + `{"type":"point","point":3,"resu`)
	lr := newLineReader(in)
	msg, err := lr.next()
	if err != nil || msg.Type != MsgHeartbeat {
		t.Fatalf("first line: %v, %v", msg, err)
	}
	if _, err := lr.next(); err != io.EOF {
		t.Fatalf("torn tail err = %v, want io.EOF (dropped wholesale)", err)
	}
}

func TestBackoffDeterministicAndBounded(t *testing.T) {
	base, max := 50*time.Millisecond, 2*time.Second
	if a, b := backoffDelay(1, 3, 2, base, max), backoffDelay(1, 3, 2, base, max); a != b {
		t.Errorf("same inputs gave %v and %v", a, b)
	}
	if a, b := backoffDelay(1, 3, 2, base, max), backoffDelay(2, 3, 2, base, max); a == b {
		t.Errorf("different seeds gave identical jitter %v", a)
	}
	prevExp := time.Duration(0)
	for attempt := 1; attempt <= 10; attempt++ {
		d := backoffDelay(7, 0, attempt, base, max)
		if d < base || d >= max+base {
			t.Errorf("attempt %d: delay %v outside [base, max+base)", attempt, d)
		}
		exp := d - d%base // strip jitter down to the exponential step
		if exp < prevExp {
			t.Errorf("attempt %d: exponential part shrank: %v after %v", attempt, exp, prevExp)
		}
		prevExp = exp
	}
}
