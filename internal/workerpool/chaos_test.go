package workerpool

import (
	"strings"
	"testing"
)

func TestParseScheduleGrammar(t *testing.T) {
	sched, err := ParseSchedule("w0:crash@1; w3:torn@2 ;stall@point=4;exit=7@3;crash-after@point=0")
	if err != nil {
		t.Fatalf("ParseSchedule: %v", err)
	}
	if len(sched.ds) != 5 {
		t.Fatalf("parsed %d directives, want 5", len(sched.ds))
	}
	want := []directive{
		{worker: 0, action: actCrash, nth: 1, point: -1},
		{worker: 3, action: actTorn, nth: 2, point: -1},
		{worker: -1, action: actStall, nth: 0, point: 4},
		{worker: -1, action: actExit, code: 7, nth: 3, point: -1},
		{worker: -1, action: actCrashAfter, nth: 0, point: 0},
	}
	for i, w := range want {
		if sched.ds[i] != w {
			t.Errorf("directive %d = %+v, want %+v", i, sched.ds[i], w)
		}
	}
	if s, err := ParseSchedule(""); err != nil || len(s.ds) != 0 {
		t.Errorf("empty schedule: %v, %d directives", err, len(s.ds))
	}
	if s, err := ParseSchedule("exit@1"); err != nil || s.ds[0].code != ExitDefault {
		t.Errorf("bare exit: err=%v code=%d, want default %d", err, s.ds[0].code, ExitDefault)
	}
}

func TestParseScheduleRejectsNonsense(t *testing.T) {
	bad := map[string]string{
		"explode@1":    "unknown action",
		"crash":        "want action@trigger",
		"crash@0":      "must be a 1-based count",
		"crash@-1":     "must be a 1-based count",
		"crash@point=": "bad point index",
		"wx:crash@1":   "bad worker scope",
		"w-2:crash@1":  "bad worker scope",
		"exit=0@1":     "must be 1..255",
		"exit=256@1":   "must be 1..255",
	}
	for input, want := range bad {
		if _, err := ParseSchedule(input); err == nil || !strings.Contains(err.Error(), want) {
			t.Errorf("ParseSchedule(%q) err = %v, want %q", input, err, want)
		}
	}
}

func TestScheduleMatchScopesAndPhases(t *testing.T) {
	sched, err := ParseSchedule("w2:crash@1;torn@point=5;crash-after@3")
	if err != nil {
		t.Fatalf("ParseSchedule: %v", err)
	}
	// Scoped crash: only worker 2 at its first executed point, and only
	// in the before-simulation phase.
	if d := sched.match(2, 1, 0, false); d == nil || d.action != actCrash {
		t.Errorf("worker 2 nth 1 before: %+v, want crash", d)
	}
	if d := sched.match(1, 1, 0, false); d != nil {
		t.Errorf("worker 1 matched a w2-scoped directive: %+v", d)
	}
	if d := sched.match(2, 2, 0, false); d != nil {
		t.Errorf("worker 2 nth 2 matched a @1 directive: %+v", d)
	}
	if d := sched.match(2, 1, 0, true); d != nil {
		t.Errorf("crash matched in the after phase: %+v", d)
	}
	// Point-indexed torn fires for any worker reaching point 5, after
	// simulation only.
	if d := sched.match(7, 9, 5, true); d == nil || d.action != actTorn {
		t.Errorf("point 5 after: %+v, want torn", d)
	}
	if d := sched.match(7, 9, 4, true); d != nil && d.action == actTorn {
		t.Errorf("point 4 matched a point=5 directive: %+v", d)
	}
	// Unscoped crash-after on every worker's third execution.
	if d := sched.match(0, 3, 1, true); d == nil || d.action != actCrashAfter {
		t.Errorf("nth 3 after: %+v, want crash-after", d)
	}
	// Nil schedule matches nothing.
	var nilSched *Schedule
	if d := nilSched.match(0, 1, 0, false); d != nil {
		t.Errorf("nil schedule matched: %+v", d)
	}
}
