package workerpool

// Deterministic chaos injection for crash-recovery soaks. A worker
// parses the TOCTTOU_CHAOS environment variable into a Schedule and
// consults it around every leased point; the supervisor never sees the
// schedule — it must survive whatever the workers do to themselves,
// which is the point of the drill.
//
// Grammar (semicolon-separated directives):
//
//	schedule  := directive (';' directive)*
//	directive := [ 'w' ID ':' ] action '@' trigger
//	action    := 'crash' | 'crash-after' | 'stall' | 'torn' | 'exit' [ '=' code ]
//	trigger   := N | 'point=' I
//
// 'wID:' scopes a directive to the worker whose TOCTTOU_WORKER_ID is
// ID. Worker ids are spawn-incarnation counters — a restarted worker
// gets a fresh id — so a scoped directive fires at most once per
// campaign, which is what lets a soak kill "each worker once" and still
// terminate. An unscoped directive applies to every worker, including
// replacements.
//
// The trigger N fires on the Nth point the worker begins executing
// (1-based, counted across leases); 'point=I' fires whenever the worker
// reaches global point index I. An unscoped 'crash@point=I' is the
// poison-point schedule: every worker that leases point I dies there,
// until the supervisor quarantines it.
//
// Actions:
//
//	crash        exit(11) before simulating the point
//	crash-after  simulate and commit the point's result, then exit(12)
//	             before the lease ack — the exactly-once requeue drill
//	stall        stop heartbeating and hang; the supervisor's lease
//	             timeout must detect and reap it
//	torn         simulate the point, write half its result line, exit(13)
//	exit[=code]  exit(code, default 3) before simulating the point

import (
	"fmt"
	"strconv"
	"strings"
)

// Chaos exit codes, distinct per action so soak logs attribute deaths.
const (
	ExitCrash      = 11
	ExitCrashAfter = 12
	ExitTorn       = 13
	ExitDefault    = 3
)

type chaosAction int

const (
	actCrash chaosAction = iota
	actCrashAfter
	actStall
	actTorn
	actExit
)

type directive struct {
	worker int // scoped worker id; -1 = any worker
	action chaosAction
	code   int // exit code for actExit
	nth    int // 1-based per-worker execution count; 0 when point-indexed
	point  int // global point index; -1 when nth-indexed
}

// Schedule is a parsed TOCTTOU_CHAOS value. The zero/nil Schedule
// matches nothing.
type Schedule struct {
	ds []directive
}

// ParseSchedule parses the TOCTTOU_CHAOS grammar; an empty string is a
// valid empty schedule.
func ParseSchedule(s string) (*Schedule, error) {
	sched := &Schedule{}
	for _, raw := range strings.Split(s, ";") {
		raw = strings.TrimSpace(raw)
		if raw == "" {
			continue
		}
		d, err := parseDirective(raw)
		if err != nil {
			return nil, fmt.Errorf("workerpool: chaos schedule %q: %w", s, err)
		}
		sched.ds = append(sched.ds, d)
	}
	return sched, nil
}

func parseDirective(raw string) (directive, error) {
	d := directive{worker: -1, point: -1}
	rest := raw
	if strings.HasPrefix(rest, "w") {
		if head, tail, ok := strings.Cut(rest, ":"); ok {
			id, err := strconv.Atoi(head[1:])
			if err != nil || id < 0 {
				return d, fmt.Errorf("directive %q: bad worker scope %q", raw, head)
			}
			d.worker = id
			rest = tail
		}
	}
	action, trigger, ok := strings.Cut(rest, "@")
	if !ok {
		return d, fmt.Errorf("directive %q: want action@trigger", raw)
	}
	switch {
	case action == "crash":
		d.action = actCrash
	case action == "crash-after":
		d.action = actCrashAfter
	case action == "stall":
		d.action = actStall
	case action == "torn":
		d.action = actTorn
	case action == "exit" || strings.HasPrefix(action, "exit="):
		d.action = actExit
		d.code = ExitDefault
		if _, arg, has := strings.Cut(action, "="); has {
			code, err := strconv.Atoi(arg)
			if err != nil || code < 1 || code > 255 {
				return d, fmt.Errorf("directive %q: exit code %q must be 1..255", raw, arg)
			}
			d.code = code
		}
	default:
		return d, fmt.Errorf("directive %q: unknown action %q", raw, action)
	}
	if arg, ok := strings.CutPrefix(trigger, "point="); ok {
		idx, err := strconv.Atoi(arg)
		if err != nil || idx < 0 {
			return d, fmt.Errorf("directive %q: bad point index %q", raw, arg)
		}
		d.point = idx
		return d, nil
	}
	nth, err := strconv.Atoi(trigger)
	if err != nil || nth < 1 {
		return d, fmt.Errorf("directive %q: trigger %q must be a 1-based count or point=I", raw, trigger)
	}
	d.nth = nth
	return d, nil
}

// match returns the first directive firing for this worker at this
// execution (nth = 1-based count of points the worker has begun, point
// = global index), restricted to the given phase: crash/stall/exit act
// before simulation, crash-after/torn act after the result exists.
// A nil Schedule matches nothing.
func (s *Schedule) match(worker, nth, point int, after bool) *directive {
	if s == nil {
		return nil
	}
	for i := range s.ds {
		d := &s.ds[i]
		if d.worker >= 0 && d.worker != worker {
			continue
		}
		if d.nth > 0 && d.nth != nth {
			continue
		}
		if d.point >= 0 && d.point != point {
			continue
		}
		isAfter := d.action == actCrashAfter || d.action == actTorn
		if isAfter != after {
			continue
		}
		return d
	}
	return nil
}
