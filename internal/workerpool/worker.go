package workerpool

// The worker half of the protocol: the body of `tocttoud -worker`. A
// worker is deliberately dumb — it recompiles the spec it is handed,
// verifies the fingerprint, and executes leased points one at a time,
// committing each result the moment it is done. All policy (lease
// sizing, retries, requeue, quarantine) lives in the supervisor; all a
// worker can do wrong is die, which is exactly the failure mode the
// supervisor is built to absorb.

import (
	"fmt"
	"io"
	"os"
	"strconv"
	"sync/atomic"
	"time"

	"tocttou/internal/core"
	"tocttou/internal/scenario"
)

// Main is the `tocttoud -worker` entry point: identity and chaos come
// from the environment (TOCTTOU_WORKER_ID, TOCTTOU_CHAOS), the protocol
// runs on stdin/stdout. It returns the process exit code.
func Main() int {
	if err := Serve(os.Stdin, os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "tocttoud worker: %v\n", err)
		return 1
	}
	return 0
}

// Serve runs one worker over in/out with identity and chaos schedule
// read from the environment.
func Serve(in io.Reader, out io.Writer) error {
	id := 0
	if v := os.Getenv("TOCTTOU_WORKER_ID"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			return fmt.Errorf("bad TOCTTOU_WORKER_ID %q: want a non-negative integer", v)
		}
		id = n
	}
	var chaos *Schedule
	if v := os.Getenv("TOCTTOU_CHAOS"); v != "" {
		var err error
		if chaos, err = ParseSchedule(v); err != nil {
			return err
		}
	}
	return RunWorker(in, out, id, chaos)
}

// RunWorker serves the lease protocol until stdin closes (the daemon's
// quit signal) or a protocol error makes continuing unsafe. Chaos
// directives may terminate the process from inside.
func RunWorker(in io.Reader, out io.Writer, workerID int, chaos *Schedule) error {
	w := &worker{
		id:    workerID,
		chaos: chaos,
		in:    newLineReader(in),
		out:   &msgWriter{w: out},
	}
	defer w.stopHeartbeat()
	return w.serve()
}

type worker struct {
	id    int
	chaos *Schedule
	in    *lineReader
	out   *msgWriter

	points   []core.SweepPoint
	fps      []uint64
	executed int // points begun across all leases: the chaos @N counter

	stalled atomic.Bool
	hbStop  chan struct{}
}

func (w *worker) serve() error {
	for {
		msg, err := w.in.next()
		if err == io.EOF {
			return nil // daemon closed our stdin: done
		}
		if err != nil {
			return err
		}
		switch msg.Type {
		case MsgLoad:
			err = w.load(msg)
		case MsgLease:
			if w.points == nil {
				err = fmt.Errorf("workerpool: lease before load")
			} else {
				err = w.lease(msg)
			}
		default:
			err = fmt.Errorf("workerpool: unexpected %q message from daemon", msg.Type)
		}
		if err != nil {
			// Dying words: best-effort, the exit status tells the same story.
			w.out.send(&Message{Type: MsgError, Error: err.Error()})
			return err
		}
	}
}

func (w *worker) load(msg *Message) error {
	spec, err := scenario.LoadBytes(msg.Filename, msg.Spec)
	if err != nil {
		return err
	}
	compiled, err := scenario.Compile(spec)
	if err != nil {
		return fmt.Errorf("compiling %s: %w", msg.Filename, err)
	}
	fp := core.SweepFingerprint(compiled.Points, core.AdaptiveStop{})
	if got := fpString(fp); got != msg.Fingerprint {
		return fmt.Errorf("workerpool: %s compiles to fingerprint %s here, daemon expects %s (binary version skew?)", msg.Filename, got, msg.Fingerprint)
	}
	w.points = compiled.Points
	w.fps = make([]uint64, len(w.points))
	for i, p := range w.points {
		w.fps[i] = core.PointFingerprint(p)
	}
	interval := time.Duration(msg.HeartbeatMS) * time.Millisecond
	if interval <= 0 {
		interval = 100 * time.Millisecond
	}
	w.hbStop = make(chan struct{})
	go w.heartbeat(interval)
	return w.out.send(&Message{Type: MsgLoaded, NumPoints: len(w.points), Fingerprint: msg.Fingerprint})
}

func (w *worker) heartbeat(interval time.Duration) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			if w.stalled.Load() {
				return
			}
			if w.out.send(&Message{Type: MsgHeartbeat}) != nil {
				return // daemon gone; the read loop will see EOF
			}
		case <-w.hbStop:
			return
		}
	}
}

func (w *worker) stopHeartbeat() {
	if w.hbStop != nil {
		close(w.hbStop)
		w.hbStop = nil
	}
}

// lease executes the leased points sequentially — rounds within a point
// still spread over the in-process pool — committing each result the
// moment it is done, then acks. Sequential execution keeps crash blame
// precise: the supervisor attributes a death to the first uncommitted
// point of the lease, which is exactly the one in progress.
func (w *worker) lease(msg *Message) error {
	for _, idx := range msg.Points {
		if idx < 0 || idx >= len(w.points) {
			return fmt.Errorf("workerpool: leased point %d out of range [0, %d)", idx, len(w.points))
		}
		w.executed++
		if d := w.chaos.match(w.id, w.executed, idx, false); d != nil {
			w.act(d)
		}
		res, _, err := core.RunSweepSubset(w.points, []int{idx}, core.SweepOptions{})
		if err != nil {
			return err
		}
		pm := &Message{Type: MsgPoint, Lease: msg.Lease, Point: idx, FP: fpString(w.fps[idx]), Result: &res[0]}
		if d := w.chaos.match(w.id, w.executed, idx, true); d != nil {
			if d.action == actTorn {
				w.out.sendTorn(pm)
				os.Exit(ExitTorn)
			}
			// crash-after: the result reaches the daemon, the ack never
			// does — the exactly-once requeue drill.
			w.out.send(pm)
			os.Exit(ExitCrashAfter)
		}
		if err := w.out.send(pm); err != nil {
			return err
		}
	}
	return w.out.send(&Message{Type: MsgAck, Lease: msg.Lease})
}

// act performs a before-simulation chaos action. crash and exit do not
// return; stall silences the heartbeat and hangs forever (the
// supervisor's lease deadline must reap the process).
func (w *worker) act(d *directive) {
	switch d.action {
	case actCrash:
		os.Exit(ExitCrash)
	case actExit:
		os.Exit(d.code)
	case actStall:
		// Sleep-loop rather than select{}: with every other goroutine
		// parked the runtime would diagnose a deadlock and exit, which
		// reads as a crash, not the silent livelock being simulated.
		w.stalled.Store(true)
		for {
			time.Sleep(time.Hour)
		}
	}
}
