package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestSummaryBasics(t *testing.T) {
	var s Summary
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if got, want := s.Mean(), 5.0; math.Abs(got-want) > 1e-9 {
		t.Errorf("mean = %v, want %v", got, want)
	}
	// Sample stdev of this classic set is sqrt(32/7).
	if got, want := s.Stdev(), math.Sqrt(32.0/7.0); math.Abs(got-want) > 1e-9 {
		t.Errorf("stdev = %v, want %v", got, want)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Errorf("min/max = %v/%v, want 2/9", s.Min(), s.Max())
	}
	if s.N() != 8 {
		t.Errorf("n = %d, want 8", s.N())
	}
}

func TestSummaryEmptyAndSingle(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.Stdev() != 0 || s.N() != 0 {
		t.Error("zero-value summary must report zeros")
	}
	s.Add(3)
	if s.Mean() != 3 || s.Stdev() != 0 {
		t.Errorf("single observation: mean=%v stdev=%v", s.Mean(), s.Stdev())
	}
}

func TestSummaryMergeMatchesSequential(t *testing.T) {
	f := func(xs []float64) bool {
		if len(xs) < 2 {
			return true
		}
		var whole, a, b Summary
		for _, x := range xs {
			// Avoid pathological magnitudes from quick.
			x = math.Mod(x, 1e6)
			if math.IsNaN(x) || math.IsInf(x, 0) {
				x = 0
			}
			whole.Add(x)
		}
		mid := len(xs) / 2
		for i, x := range xs {
			x = math.Mod(x, 1e6)
			if math.IsNaN(x) || math.IsInf(x, 0) {
				x = 0
			}
			if i < mid {
				a.Add(x)
			} else {
				b.Add(x)
			}
		}
		a.Merge(b)
		return a.N() == whole.N() &&
			math.Abs(a.Mean()-whole.Mean()) < 1e-6*(1+math.Abs(whole.Mean())) &&
			math.Abs(a.Variance()-whole.Variance()) < 1e-5*(1+whole.Variance())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 1}, {100, 10}, {50, 5.5}, {25, 3.25}, {90, 9.1},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("P%v = %v, want %v", c.p, got, c.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Error("empty percentile should be 0")
	}
}

func TestPercentileDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("input mutated: %v", xs)
	}
}

func TestProportion(t *testing.T) {
	p := Proportion{Successes: 83, Trials: 100}
	if math.Abs(p.Rate()-0.83) > 1e-9 {
		t.Errorf("rate = %v, want 0.83", p.Rate())
	}
	lo, hi := p.WilsonInterval(1.96)
	if !(lo < 0.83 && 0.83 < hi) {
		t.Errorf("interval [%v,%v] must contain the point estimate", lo, hi)
	}
	if lo < 0.7 || hi > 0.95 {
		t.Errorf("interval [%v,%v] implausibly wide for n=100", lo, hi)
	}
}

func TestProportionEdgeCases(t *testing.T) {
	zero := Proportion{}
	if zero.Rate() != 0 {
		t.Error("no-trials rate should be 0")
	}
	lo, hi := zero.WilsonInterval(1.96)
	if lo != 0 || hi != 1 {
		t.Errorf("no-trials interval = [%v,%v], want [0,1]", lo, hi)
	}
	all := Proportion{Successes: 50, Trials: 50}
	lo, hi = all.WilsonInterval(1.96)
	if hi != 1 || lo < 0.9 {
		t.Errorf("all-success interval = [%v,%v]", lo, hi)
	}
	none := Proportion{Successes: 0, Trials: 50}
	lo, hi = none.WilsonInterval(1.96)
	if lo != 0 || hi > 0.1 {
		t.Errorf("no-success interval = [%v,%v]", lo, hi)
	}
}

func TestWilsonIntervalWithinBoundsProperty(t *testing.T) {
	f := func(succ, trials uint16) bool {
		n := int(trials%1000) + 1
		s := int(succ) % (n + 1)
		p := Proportion{Successes: s, Trials: n}
		lo, hi := p.WilsonInterval(1.96)
		return lo >= 0 && hi <= 1 && lo <= hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{-1, 0, 1.9, 2, 5, 9.99, 10, 42} {
		h.Add(x)
	}
	if h.Under != 1 {
		t.Errorf("under = %d, want 1", h.Under)
	}
	if h.Over != 2 {
		t.Errorf("over = %d, want 2", h.Over)
	}
	if h.Bins[0] != 2 { // 0 and 1.9
		t.Errorf("bin0 = %d, want 2", h.Bins[0])
	}
	if h.Bins[1] != 1 { // 2
		t.Errorf("bin1 = %d, want 1", h.Bins[1])
	}
	if h.Bins[4] != 1 { // 9.99
		t.Errorf("bin4 = %d, want 1", h.Bins[4])
	}
	if h.Total() != 8 {
		t.Errorf("total = %d, want 8", h.Total())
	}
	if got := h.BinCenter(0); math.Abs(got-1) > 1e-9 {
		t.Errorf("bin center = %v, want 1", got)
	}
}

func TestJitterStaysWithinBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	j := Jitter{Rel: 0.05}
	base := 100 * time.Microsecond
	for i := 0; i < 10000; i++ {
		x := j.Sample(rng, base)
		lo := time.Duration(float64(base)*0.85) - 1
		hi := time.Duration(float64(base)*1.15) + 1
		if x < lo || x > hi {
			t.Fatalf("sample %v outside [%v, %v]", x, lo, hi)
		}
	}
}

func TestJitterZeroRelIsIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	j := Jitter{}
	if got := j.Sample(rng, time.Second); got != time.Second {
		t.Errorf("got %v, want 1s", got)
	}
}

func TestJitterMeanNearBase(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	j := Jitter{Rel: 0.1}
	var s Summary
	for i := 0; i < 20000; i++ {
		s.Add(float64(j.Sample(rng, time.Millisecond)))
	}
	if math.Abs(s.Mean()-1e6)/1e6 > 0.01 {
		t.Errorf("mean = %v, want within 1%% of 1e6", s.Mean())
	}
}

func TestExponentialMean(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var s Summary
	for i := 0; i < 50000; i++ {
		s.Add(float64(Exponential(rng, time.Millisecond)))
	}
	if math.Abs(s.Mean()-1e6)/1e6 > 0.05 {
		t.Errorf("mean = %v, want within 5%% of 1e6", s.Mean())
	}
}

func TestUniformDuration(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	lo, hi := time.Millisecond, 2*time.Millisecond
	for i := 0; i < 1000; i++ {
		x := UniformDuration(rng, lo, hi)
		if x < lo || x >= hi {
			t.Fatalf("sample %v outside [%v, %v)", x, lo, hi)
		}
	}
	if UniformDuration(rng, hi, lo) != hi {
		t.Error("inverted range should return lo")
	}
}

func TestBernoulli(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	if Bernoulli(rng, 0) {
		t.Error("p=0 must be false")
	}
	if !Bernoulli(rng, 1) {
		t.Error("p=1 must be true")
	}
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if Bernoulli(rng, 0.3) {
			hits++
		}
	}
	rate := float64(hits) / n
	if math.Abs(rate-0.3) > 0.01 {
		t.Errorf("rate = %v, want ~0.3", rate)
	}
}

func TestLogNormalMedian(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	xs := make([]float64, 0, 20000)
	for i := 0; i < 20000; i++ {
		xs = append(xs, float64(LogNormal(rng, time.Millisecond, 0.5)))
	}
	med := Percentile(xs, 50)
	if math.Abs(med-1e6)/1e6 > 0.03 {
		t.Errorf("median = %v, want within 3%% of 1e6", med)
	}
}
