// Package stats provides small, dependency-free statistical helpers used
// throughout the simulator and the experiment harness: running summaries
// (Welford), percentiles, binomial confidence intervals, and the jitter
// distributions that model environmental variance in syscall latencies.
package stats

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
)

// Summary accumulates a running mean and standard deviation using
// Welford's online algorithm. The zero value is ready to use.
type Summary struct {
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add records one observation.
func (s *Summary) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	delta := x - s.mean
	s.mean += delta / float64(s.n)
	s.m2 += delta * (x - s.mean)
}

// N returns the number of observations recorded.
func (s *Summary) N() int64 { return s.n }

// Mean returns the arithmetic mean, or 0 if no observations were recorded.
func (s *Summary) Mean() float64 { return s.mean }

// Min returns the smallest observation, or 0 if none were recorded.
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest observation, or 0 if none were recorded.
func (s *Summary) Max() float64 { return s.max }

// Variance returns the unbiased sample variance (n-1 denominator).
func (s *Summary) Variance() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// Stdev returns the sample standard deviation.
func (s *Summary) Stdev() float64 { return math.Sqrt(s.Variance()) }

// Merge folds the observations of other into s.
func (s *Summary) Merge(other Summary) {
	if other.n == 0 {
		return
	}
	if s.n == 0 {
		*s = other
		return
	}
	n1, n2 := float64(s.n), float64(other.n)
	delta := other.mean - s.mean
	total := n1 + n2
	s.mean += delta * n2 / total
	s.m2 += other.m2 + delta*delta*n1*n2/total
	if other.min < s.min {
		s.min = other.min
	}
	if other.max > s.max {
		s.max = other.max
	}
	s.n += other.n
}

// String renders the summary as "mean ± stdev (n=N)".
func (s *Summary) String() string {
	return fmt.Sprintf("%.2f ± %.2f (n=%d)", s.Mean(), s.Stdev(), s.N())
}

// summaryJSON is Summary's wire form, exposing the unexported Welford state
// for checkpoint files. encoding/json prints floats in their shortest
// uniquely-decodable form, so the round-trip is exact and a resumed summary
// is bit-identical to the in-memory one it serialized.
type summaryJSON struct {
	N    int64   `json:"n"`
	Mean float64 `json:"mean"`
	M2   float64 `json:"m2"`
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
}

// MarshalJSON implements json.Marshaler.
func (s Summary) MarshalJSON() ([]byte, error) {
	return json.Marshal(summaryJSON{N: s.n, Mean: s.mean, M2: s.m2, Min: s.min, Max: s.max})
}

// UnmarshalJSON implements json.Unmarshaler.
func (s *Summary) UnmarshalJSON(data []byte) error {
	var w summaryJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	*s = Summary{n: w.N, mean: w.Mean, m2: w.M2, min: w.Min, max: w.Max}
	return nil
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using linear
// interpolation between closest ranks. It returns 0 for an empty slice.
// The input slice is not modified.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Proportion is an observed success proportion with its sample size.
type Proportion struct {
	Successes int
	Trials    int
}

// Rate returns the observed success rate in [0, 1], or 0 with no trials.
func (p Proportion) Rate() float64 {
	if p.Trials == 0 {
		return 0
	}
	return float64(p.Successes) / float64(p.Trials)
}

// WilsonInterval returns the Wilson score interval for the proportion at
// the given z value (1.96 for 95% confidence). It is well behaved near 0
// and 1, unlike the normal approximation.
func (p Proportion) WilsonInterval(z float64) (lo, hi float64) {
	if p.Trials == 0 {
		return 0, 1
	}
	n := float64(p.Trials)
	phat := p.Rate()
	z2 := z * z
	denom := 1 + z2/n
	center := (phat + z2/(2*n)) / denom
	margin := z / denom * math.Sqrt(phat*(1-phat)/n+z2/(4*n*n))
	lo = center - margin
	hi = center + margin
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}

// String renders the proportion as "k/n (rate%)".
func (p Proportion) String() string {
	return fmt.Sprintf("%d/%d (%.1f%%)", p.Successes, p.Trials, p.Rate()*100)
}

// Histogram counts observations into fixed-width bins over [Lo, Hi).
// Observations outside the range are counted in Under/Over.
type Histogram struct {
	Lo, Hi float64
	Bins   []int64
	Under  int64
	Over   int64
}

// NewHistogram creates a histogram with n bins spanning [lo, hi).
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n < 1 {
		n = 1
	}
	if hi <= lo {
		hi = lo + 1
	}
	return &Histogram{Lo: lo, Hi: hi, Bins: make([]int64, n)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	switch {
	case x < h.Lo:
		h.Under++
	case x >= h.Hi:
		h.Over++
	default:
		i := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Bins)))
		if i >= len(h.Bins) { // float edge case at the upper boundary
			i = len(h.Bins) - 1
		}
		h.Bins[i]++
	}
}

// Total returns the number of observations recorded, including out-of-range.
func (h *Histogram) Total() int64 {
	t := h.Under + h.Over
	for _, b := range h.Bins {
		t += b
	}
	return t
}

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Bins))
	return h.Lo + w*(float64(i)+0.5)
}
