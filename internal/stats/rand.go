package stats

import (
	"math"
	"math/rand"
	"time"
)

// Jitter samples latencies around a base value with bounded relative noise.
// It models the environmental variance the paper observes in L and D:
// "the running environment imposes variance on these parameters" (§3.4).
//
// Samples are drawn from a normal distribution with mean Base and standard
// deviation Rel*Base, truncated to [Base*(1-3*Rel), Base*(1+3*Rel)] and
// floored at zero, so a latency can never be negative and extreme outliers
// cannot destabilize calibration.
type Jitter struct {
	// Rel is the relative standard deviation (e.g. 0.05 for 5%).
	Rel float64
}

// Sample draws one jittered value around base.
func (j Jitter) Sample(rng *rand.Rand, base time.Duration) time.Duration {
	if base <= 0 || j.Rel <= 0 {
		return base
	}
	return j.Apply(rng.NormFloat64(), base)
}

// Apply maps one standard-normal draw onto the jittered value around base.
// Split from Sample so a caller with its own (bit-identical) normal source
// reuses the identical truncation arithmetic. Callers must apply Sample's
// base/Rel short-circuit themselves: Apply assumes a draw was warranted.
func (j Jitter) Apply(norm float64, base time.Duration) time.Duration {
	sigma := j.Rel * float64(base)
	x := float64(base) + norm*sigma
	lo := float64(base) - 3*sigma
	hi := float64(base) + 3*sigma
	if x < lo {
		x = lo
	}
	if x > hi {
		x = hi
	}
	if x < 0 {
		x = 0
	}
	return time.Duration(x)
}

// Exponential samples an exponentially distributed duration with the given
// mean. Used for Poisson inter-arrival times of background kernel activity.
func Exponential(rng *rand.Rand, mean time.Duration) time.Duration {
	if mean <= 0 {
		return 0
	}
	return time.Duration(rng.ExpFloat64() * float64(mean))
}

// UniformDuration samples uniformly from [lo, hi). If hi <= lo it returns lo.
func UniformDuration(rng *rand.Rand, lo, hi time.Duration) time.Duration {
	if hi <= lo {
		return lo
	}
	return lo + time.Duration(rng.Int63n(int64(hi-lo)))
}

// Bernoulli returns true with probability p.
func Bernoulli(rng *rand.Rand, p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return rng.Float64() < p
}

// LogNormal samples a log-normally distributed duration whose underlying
// normal has the given median and sigma (of the log). Used for occasional
// heavy-tailed delays such as disk I/O service times.
func LogNormal(rng *rand.Rand, median time.Duration, sigma float64) time.Duration {
	if median <= 0 {
		return 0
	}
	return time.Duration(float64(median) * math.Exp(rng.NormFloat64()*sigma))
}
