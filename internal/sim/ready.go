package sim

// readyQueue is the kernel's run queue: strict priority between nice
// levels, FIFO within a level. The relative order of queued threads is
// semantically load-bearing — dispatch always takes the front, quantum
// expiry compares the running thread against the front, and FIFO within a
// nice level is what gives the paper's attacker predictable scheduling on
// a freed CPU — so removal must preserve order; a swap-delete would reorder
// the FIFO and change simulated outcomes. Instead the queue is a ring
// buffer: popFront is O(1) without reslicing or allocation, and insert and
// remove shift only the shorter side of the ring (removal was previously an
// O(n) append-splice that always shifted the whole tail and re-grew the
// backing array).
type readyQueue struct {
	buf  []*Thread
	head int
	n    int
}

// Len returns the number of queued threads.
func (q *readyQueue) Len() int { return q.n }

func (q *readyQueue) at(i int) *Thread { return q.buf[(q.head+i)%len(q.buf)] }

func (q *readyQueue) set(i int, th *Thread) { q.buf[(q.head+i)%len(q.buf)] = th }

// front returns the next thread to dispatch. Caller checks Len() > 0.
func (q *readyQueue) front() *Thread { return q.buf[q.head] }

// popFront removes and returns the front thread.
func (q *readyQueue) popFront() *Thread {
	th := q.buf[q.head]
	q.buf[q.head] = nil
	q.head = (q.head + 1) % len(q.buf)
	q.n--
	if q.n == 0 {
		q.head = 0
	}
	return th
}

// insert places th behind every queued thread whose nice value is less than
// or equal to th's: strict priority between levels, FIFO within a level.
// The scan runs from the back, so the common case (all threads at the same
// nice) inserts in O(1) with no shifting.
func (q *readyQueue) insert(th *Thread) {
	if q.n == len(q.buf) {
		q.grow()
	}
	i := q.n
	for i > 0 && q.at(i-1).nice > th.nice {
		i--
	}
	for j := q.n; j > i; j-- {
		q.set(j, q.at(j-1))
	}
	q.set(i, th)
	q.n++
}

// remove deletes th from the queue if present, preserving the order of the
// remaining threads by shifting whichever side of the ring is shorter.
func (q *readyQueue) remove(th *Thread) {
	for i := 0; i < q.n; i++ {
		if q.at(i) != th {
			continue
		}
		if i < q.n-1-i {
			// Closer to the front: shift the prefix right one slot.
			for j := i; j > 0; j-- {
				q.set(j, q.at(j-1))
			}
			q.set(0, nil)
			q.head = (q.head + 1) % len(q.buf)
		} else {
			// Closer to the back: shift the suffix left one slot.
			for j := i; j < q.n-1; j++ {
				q.set(j, q.at(j+1))
			}
			q.set(q.n-1, nil)
		}
		q.n--
		if q.n == 0 {
			q.head = 0
		}
		return
	}
}

// tieLen returns the length of the front tie group: the run of queued
// threads sharing the front thread's nice level. FIFO dispatch always
// takes the front; dispatch under a Chooser may pick any member. Caller
// checks Len() > 0.
func (q *readyQueue) tieLen() int {
	nice := q.front().nice
	i := 1
	for i < q.n && q.at(i).nice == nice {
		i++
	}
	return i
}

// popAt removes and returns the i-th queued thread (0 = front), preserving
// the order of the rest.
func (q *readyQueue) popAt(i int) *Thread {
	th := q.at(i)
	q.remove(th)
	return th
}

// grow doubles the ring's capacity, compacting the live window to index 0.
func (q *readyQueue) grow() {
	newCap := 2 * len(q.buf)
	if newCap == 0 {
		newCap = 8
	}
	nb := make([]*Thread, newCap)
	for i := 0; i < q.n; i++ {
		nb[i] = q.at(i)
	}
	q.buf, q.head = nb, 0
}

// reset empties the queue, keeping the backing array for reuse.
func (q *readyQueue) reset() {
	clear(q.buf)
	q.head, q.n = 0, 0
}
