package sim

import (
	"math/bits"
	"time"
)

// Interrupt folding. completeInline (and Stretch, its many-segment
// generalization) retires a compute segment only when its completion
// provably precedes every pending kernel event. On realistic machine
// profiles that proof fails roughly once per millisecond of simulated
// time: periodic timer ticks and background-noise bursts land inside any
// long segment, and each one forces the segment through scheduleWork, an
// event-loop pop, the interrupt handler, a completion re-arm, and a
// second pop — five queue operations to model an interrupt whose entire
// observable effect is a pair of counter bumps, at most two RNG draws,
// a register re-arm, and a push-back of the completion instant.
//
// foldSegment performs that arithmetic directly. It consumes pending
// tick, noise, and quantum-renewal fires in the identical global
// (at, seq) order the event loop would pop them, replicating each
// handler's exact effects (stats, RNG stream, register writes, clock,
// step and sequence counters, work accrual), and retires the segment
// inline when its completion becomes the globally earliest event. The
// first event it cannot replicate — any heap event, a dispatch or
// wake-up register, a steal against another thread's live segment, a
// quantum expiry that would really preempt, or a budget trip — makes it
// write the exact mid-segment kernel state back (including the armed
// work register the stepped path would be carrying) and hand the rest of
// the segment to runLoop, which continues bit-identically.

// foldMask selects the slot registers whose fires foldSegment can retire
// arithmetically: periodic timer ticks, background-noise bursts, and
// quantum expiries that resolve to renewals. Everything else — thread
// dispatches, other threads' compute completions, chooser noise slots,
// and every heap event — routes the segment back through the event loop.
const foldMask = 1<<slotTick | 1<<slotNoise | 1<<slotQuantum

// foldOutcome reports how foldSegment handled a compute segment.
type foldOutcome uint8

const (
	// foldIneligible: preconditions failed and no state was touched; the
	// caller must run the classic scheduleWork+runLoop path.
	foldIneligible foldOutcome = iota
	// foldRetired: the segment — and every interrupt that landed inside
	// it — was retired arithmetically; control never left the thread and
	// no other thread ran.
	foldRetired
	// foldMaterialized: a non-foldable event landed inside the segment.
	// The exact mid-segment state was written back, with the work
	// register armed, and the caller must enter runLoop directly
	// (without calling scheduleWork) to finish the segment stepped.
	foldMaterialized
)

// foldSegment retires the calling thread's fresh compute segment
// (th.runStart == k.now, th.computeLeft == the segment's duration,
// workPending false) without entering the event loop, folding interrupt
// fires that land inside it. See the package comment above for the
// strategy; the preconditions mirror completeInline's fallback
// conditions: no tracer (per-event trace records must be emitted), no
// Chooser (background fires are choice points the explorer must see),
// coalescing enabled, no pending user error, and no ghost work register
// (the stepped path pops it as a counted no-op).
func (k *Kernel) foldSegment(th *Thread) foldOutcome {
	c := k.cpus[th.cpu]
	if k.cfg.DisableCoalesce || k.tracer != nil || k.cfg.Chooser != nil ||
		k.userErr != nil || c.slots[slotWork].armed {
		return foldIneligible
	}

	// Virtual registers. seqV, stepsV, lastAtV, nowV and workGenV shadow
	// their kernel counterparts; workAt/workSeq shadow the slotWork entry
	// scheduleWork would have armed — seq k.seq+1 is the first sequence
	// number the stepped path hands out, to that very arm.
	var (
		nowV      = k.now
		runStartV = th.runStart
		leftV     = th.computeLeft
		seqV      = k.seq + 1
		workGenV  = th.workGen + 1
		stepsV    = k.steps
		lastAtV   = k.lastAt
	)
	workAt := runStartV.Add(leftV)
	workSeq := seqV
	if workAt <= k.maxT && workAt > lastAtV {
		lastAtV = workAt
	}

	// The (at, seq) minimum over every pending event the fold can never
	// consume: the heap top and the non-foldable slot registers. No
	// handler runs during the fold, so nothing is added to either and one
	// scan stays valid throughout.
	othersAt, othersSeq := timeInf, ^uint64(0)
	if len(k.events) > 0 {
		othersAt, othersSeq = k.events[0].at, k.events[0].seq
	}
	for _, c2 := range k.cpus {
		for m := c2.armedMask &^ foldMask; m != 0; m &= m - 1 {
			s := &c2.slots[bits.TrailingZeros8(m)]
			if s.at < othersAt || (s.at == othersAt && s.seq < othersSeq) {
				othersAt, othersSeq = s.at, s.seq
			}
		}
	}

	// steal replicates stealCPUTime against the virtual segment:
	// accrueWork's generation bump and charge, the resumption push-back,
	// and scheduleWork's re-arm (second generation bump, fresh sequence
	// number, new completion instant).
	steal := func(at Time, d time.Duration) {
		if d <= 0 {
			return
		}
		workGenV++
		if at > runStartV {
			consumed := at.Sub(runStartV)
			if consumed > leftV {
				consumed = leftV
			}
			leftV -= consumed
			th.cpuTime += consumed
			k.stats.addBusy(th.cpu, consumed)
		}
		runStartV = at.Add(d)
		workGenV++
		seqV++
		workAt = runStartV.Add(leftV)
		workSeq = seqV
		if workAt <= k.maxT && workAt > lastAtV {
			lastAtV = workAt
		}
	}

	// rearm replicates armSlot under the virtual sequence counter.
	// armSlot's past-clamp is provably dead here: every re-arm instant is
	// fire+period with period >= 0, never before the instant the stepped
	// clock would hold. k.nextAt is deliberately not lowered — nothing
	// reads it mid-fold, and both exits publish an exact bound.
	rearm := func(cx *cpu, idx int, at Time, t2 *Thread, gen uint64) {
		seqV++
		if at <= k.maxT && at > lastAtV {
			lastAtV = at
		}
		s := &cx.slots[idx]
		s.at, s.seq, s.gen, s.th, s.armed = at, seqV, gen, t2, true
		cx.armedMask |= 1 << idx
	}

	// materialize writes the exact mid-segment kernel state back — the
	// state the stepped execution holds at the same instant, about to pop
	// the event the fold could not consume — and arms the work register
	// the stepped path would be carrying.
	materialize := func(fireAt Time) foldOutcome {
		if stepsV > k.steps {
			k.checkPost = true // a dispatch ran; stepped sets this after each
		}
		k.seq = seqV
		k.steps = stepsV
		k.lastAt = lastAtV
		k.now = nowV
		th.workGen = workGenV
		th.runStart = runStartV
		th.computeLeft = leftV
		th.workPending = true
		ws := &c.slots[slotWork]
		ws.at, ws.seq, ws.gen, ws.th, ws.armed = workAt, workSeq, workGenV, th, true
		c.armedMask |= 1 << slotWork
		next := othersAt
		if fireAt < next {
			next = fireAt
		}
		if workAt < next {
			next = workAt
		}
		k.nextAt = next
		return foldMaterialized
	}

	for {
		// The earliest pending foldable fire.
		var (
			fireAt  = timeInf
			fireSeq = ^uint64(0)
			fireCPU *cpu
			fireIdx int
		)
		for _, c2 := range k.cpus {
			for m := c2.armedMask & foldMask; m != 0; m &= m - 1 {
				i := bits.TrailingZeros8(m)
				s := &c2.slots[i]
				if s.at < fireAt || (s.at == fireAt && s.seq < fireSeq) {
					fireAt, fireSeq, fireCPU, fireIdx = s.at, s.seq, c2, i
				}
			}
		}
		if (workAt < fireAt || (workAt == fireAt && workSeq < fireSeq)) &&
			(workAt < othersAt || (workAt == othersAt && workSeq < othersSeq)) {
			// The completion is the globally earliest event: retire it,
			// replicating the loop's pop and workDone.
			if workAt > k.maxT || stepsV >= k.cfg.MaxSteps {
				return materialize(fireAt) // the pop trips a budget; let the loop do it
			}
			k.seq = seqV
			k.steps = stepsV + 1
			k.lastAt = lastAtV
			k.now = workAt
			th.workGen = workGenV
			th.cpuTime += leftV
			k.stats.addBusy(th.cpu, leftV)
			th.computeLeft = 0
			th.runStart = workAt
			k.checkPost = true
			if fireAt < othersAt {
				k.nextAt = fireAt
			} else {
				k.nextAt = othersAt
			}
			return foldRetired
		}
		if othersAt < fireAt || (othersAt == fireAt && othersSeq < fireSeq) {
			return materialize(fireAt) // a non-foldable event fires first
		}
		if fireAt > k.maxT || stepsV >= k.cfg.MaxSteps {
			return materialize(fireAt) // the fire's pop trips a budget
		}
		reg := &fireCPU.slots[fireIdx]
		switch fireIdx {
		case slotTick, slotNoise:
			if fireCPU != c {
				if t2 := fireCPU.th; t2 != nil && t2.state == StateRunning && t2.workPending {
					// The steal would push back another thread's live
					// segment — not replicable here.
					return materialize(fireAt)
				}
			}
		case slotQuantum:
			if t2 := reg.th; t2 != nil && t2.schedGen == reg.gen &&
				t2.state == StateRunning && fireCPU.th == t2 &&
				k.ready.Len() != 0 && k.ready.front().nice <= t2.nice {
				// A live expiry that would really preempt.
				return materialize(fireAt)
			}
		}
		// Consume the fire: popNext's disarm, runLoop's clock advance and
		// step count, then the handler's exact effects. The draw order
		// inside each handler (noise: burst duration, steal, then gap)
		// matches tickFire/noiseFire statement for statement.
		reg.armed = false
		fireCPU.armedMask &^= 1 << fireIdx
		nowV = fireAt
		stepsV++
		switch fireIdx {
		case slotTick:
			k.stats.Ticks++
			k.stats.TickNs += int64(k.cfg.TickCost)
			if fireCPU == c {
				steal(fireAt, k.cfg.TickCost)
			}
			rearm(fireCPU, slotTick, fireAt.Add(k.cfg.TickPeriod), nil, 0)
		case slotNoise:
			dur := k.LogNormalDuration(k.cfg.Noise.MeanDuration, 0.5)
			k.stats.NoiseBursts++
			k.stats.NoiseNs += int64(dur)
			if fireCPU == c {
				steal(fireAt, dur)
			}
			gap := k.ExpDuration(k.cfg.Noise.MeanInterval)
			rearm(fireCPU, slotNoise, fireAt.Add(gap), nil, 0)
		case slotQuantum:
			t2, gen := reg.th, reg.gen
			if t2 != nil && t2.schedGen == gen && t2.state == StateRunning && fireCPU.th == t2 {
				// Renewal: nothing of sufficient priority waits (checked
				// above, and the ready queue is frozen mid-fold).
				rearm(fireCPU, slotQuantum, fireAt.Add(k.cfg.Quantum), t2, gen)
			}
			// A stale expiry pops as a generation-guarded no-op.
		}
	}
}
