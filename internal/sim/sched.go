package sim

// makeReady transitions th to Ready, queues it by priority, and kicks an
// idle CPU.
func (k *Kernel) makeReady(th *Thread) {
	th.state = StateReady
	th.blockReason = ""
	if k.tracing() {
		k.emitThread(th, Event{Kind: EvWake, Label: th.name})
	}
	k.ready.insert(th)
	for _, c := range k.cpus {
		if c.th == nil {
			k.dispatchCPU(c)
			return
		}
	}
}

// removeReady deletes th from the run queue if present.
func (k *Kernel) removeReady(th *Thread) { k.ready.remove(th) }

// dispatchCPU assigns the head of the run queue to an idle CPU. The thread
// begins running after the context-switch latency.
func (k *Kernel) dispatchCPU(c *cpu) {
	if c.th != nil || k.ready.Len() == 0 {
		return
	}
	var th *Thread
	if k.cfg.Chooser != nil {
		th = k.chooseDispatch()
	} else {
		th = k.ready.popFront()
	}
	c.th = th
	th.cpu = c.id
	th.schedGen++
	k.armSlotAfter(c, slotStart, k.cfg.CtxSwitch, th, th.schedGen)
}

// startRun begins execution of th on c once the context switch completes.
func (k *Kernel) startRun(c *cpu, th *Thread, gen uint64) {
	if th.schedGen != gen || th.state != StateReady || c.th != th {
		return
	}
	th.state = StateRunning
	k.runningCnt++
	k.stats.Dispatches++
	th.runStart = k.now
	if k.tracing() {
		k.emitThread(th, Event{Kind: EvDispatch, Label: th.name})
	}
	if k.cfg.Quantum > 0 {
		k.armSlotAfter(c, slotQuantum, k.cfg.Quantum, th, gen)
	}
	if th.computeLeft > 0 {
		k.scheduleWork(th)
	} else {
		k.wake(th)
	}
}

// quantumExpired implements round-robin preemption with strict priority:
// the running thread yields its CPU at quantum expiry only to a waiting
// thread of equal or better (lower) nice value. An attacker running at
// elevated priority therefore keeps its processor — effectively the
// "dedicated CPU" of the paper's multiprocessor attacks even on a loaded
// machine.
func (k *Kernel) quantumExpired(c *cpu, th *Thread, gen uint64) {
	if th.schedGen != gen || th.state != StateRunning || c.th != th {
		return
	}
	if k.ready.Len() == 0 || k.ready.front().nice > th.nice {
		// Nothing of sufficient priority wants the CPU: renew the slice.
		k.armSlotAfter(c, slotQuantum, k.cfg.Quantum, th, gen)
		return
	}
	k.preempt(th)
}

// preempt takes th off its CPU mid-quantum and re-queues it, preserving
// unfinished compute work. Must be called with th Running.
func (k *Kernel) preempt(th *Thread) {
	c := k.cpus[th.cpu]
	k.accrueWork(th)
	th.workPending = false
	th.state = StateReady
	k.runningCnt--
	k.stats.Preemptions++
	th.schedGen++
	th.cpu = -1
	c.th = nil
	if k.tracing() {
		k.emitThread(th, Event{Kind: EvPreempt, Label: th.name, CPU: int32(c.id)})
	}
	k.ready.insert(th)
	k.dispatchCPU(c)
}

// blockCurrent transitions the currently running thread off its CPU into
// the Blocked state and lets the next ready thread run. Called inline from
// blocking primitives executing on the thread's own goroutine, immediately
// before the thread yields.
func (k *Kernel) blockCurrent(th *Thread, reason string) {
	c := k.cpus[th.cpu]
	k.accrueWork(th)
	th.workPending = false
	th.state = StateBlocked
	th.blockReason = reason
	k.runningCnt--
	th.schedGen++
	th.cpu = -1
	c.th = nil
	if k.tracing() {
		k.emitThread(th, Event{Kind: EvBlock, Label: reason, CPU: int32(c.id)})
	}
	k.dispatchCPU(c)
}

// scheduleWork arms the completion event for th's pending compute segment.
// th.runStart may be in the future when interrupt handling has pushed the
// resumption back. The register belongs to th's current CPU: only the
// running thread of a CPU has a live pending segment, so arming can only
// overwrite an entry whose generation guard already invalidated it.
func (k *Kernel) scheduleWork(th *Thread) {
	th.workPending = true
	th.workGen++
	doneAt := th.runStart.Add(th.computeLeft)
	k.armSlot(k.cpus[th.cpu], slotWork, doneAt, th, th.workGen)
}

// completeInline retires the running thread's fresh compute segment without
// routing it through the event queue, provided the completion provably
// precedes every other pending event. It replicates, in order, exactly what
// the queued path would do: scheduleWork's register arm (workGen, seq,
// lastAt), runLoop's pop of that register as the (at, seq) minimum (clock
// advance, step count), and workDone's retirement — after which the loop
// would hand control straight back to this thread with no other handler
// running in between. The strict doneAt < nextAt comparison mirrors the
// (at, seq) tie-break: the fresh arm carries the largest seq, so at an
// equal instant the queued event would fire first. Traced runs, a ghost
// work register (stale generation left by preemption, popped as a counted
// no-op by the queue), a pending user error, or a step budget about to trip
// all fall back to the queue so those paths stay byte-identical.
func (k *Kernel) completeInline(th *Thread) bool {
	doneAt := k.now.Add(th.computeLeft)
	if doneAt >= k.nextAt || doneAt > k.maxT || k.tracer != nil ||
		k.cpus[th.cpu].slots[slotWork].armed ||
		k.userErr != nil || k.steps >= k.cfg.MaxSteps {
		return false
	}
	th.workGen++
	k.seq++
	if doneAt > k.lastAt {
		k.lastAt = doneAt
	}
	k.now = doneAt
	k.steps++
	consumed := th.computeLeft
	th.cpuTime += consumed
	k.stats.addBusy(th.cpu, consumed)
	th.computeLeft = 0
	th.runStart = doneAt
	k.checkPost = true
	return true
}

// workDone fires when a compute segment finishes uninterrupted.
func (k *Kernel) workDone(th *Thread, gen uint64) {
	if th.workGen != gen || !th.workPending || th.state != StateRunning {
		return
	}
	consumed := th.computeLeft
	th.cpuTime += consumed
	k.stats.addBusy(th.cpu, consumed)
	th.computeLeft = 0
	th.workPending = false
	th.runStart = k.now
	if consumed > 0 && k.tracing() {
		k.emitThread(th, Event{Kind: EvCompute, Arg: int64(consumed)})
	}
	k.wake(th)
}

// timerWake fires when a timed block (sleep / simulated I/O) elapses. A
// stale wake-up — the thread was killed or its block canceled — is
// invalidated by the generation counter.
func (k *Kernel) timerWake(th *Thread, gen uint64) {
	if !th.timerArmed || th.timerGen != gen || th.state != StateBlocked {
		return
	}
	th.timerArmed = false
	k.timedCnt--
	k.makeReady(th)
}

// accrueWork charges the work executed since runStart against the pending
// compute segment and invalidates its scheduled completion event.
func (k *Kernel) accrueWork(th *Thread) {
	if !th.workPending {
		return
	}
	th.workGen++
	if k.now > th.runStart {
		consumed := k.now.Sub(th.runStart)
		if consumed > th.computeLeft {
			consumed = th.computeLeft
		}
		th.computeLeft -= consumed
		th.cpuTime += consumed
		k.stats.addBusy(th.cpu, consumed)
		if consumed > 0 && k.tracing() {
			k.emitThread(th, Event{Kind: EvCompute, Arg: int64(consumed)})
		}
	}
}

// ReadyCount returns the number of threads waiting in the run queue
// (excluding those mid-dispatch). Exposed for tests.
func (k *Kernel) ReadyCount() int { return k.ready.Len() }

// idleCPUs returns how many CPUs have no thread assigned. Exposed for tests
// via IdleCPUs.
func (k *Kernel) IdleCPUs() int {
	n := 0
	for _, c := range k.cpus {
		if c.th == nil {
			n++
		}
	}
	return n
}
