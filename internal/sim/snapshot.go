package sim

import "errors"

// This file implements copy-on-write prefix forking for the kernel: a
// campaign that runs many rounds differing only in RNG seed (and per-round
// tracer / fault hooks) captures the boot-time registrations — processes,
// thread bodies, priorities — into an immutable Image once, then stamps out
// each round with Fork instead of repeating the registration calls and
// goroutine spawns.
//
// The design deliberately avoids checkpointing kernel *state*: a Snapshot
// is only legal before Run, when the interesting state is exactly the
// sequence of NewProcess / Spawn / SetNice / SetScheduleClass calls. Fork
// replays that sequence onto a Reset kernel, so by construction it produces
// the identical seq-numbered event stream, identical PIDs/TIDs, and
// identical trace prefix a hand-written boot would — there is no second
// "restore" code path whose equivalence would need proving. What makes the
// replay cheap is pooling: the kernel retains each round's thread shells
// (struct + resume channel + parked goroutine) and process shells, and the
// replay re-enlists them in creation order, making a forked boot free of
// goroutine creation and nearly free of allocation.

// ErrSnapshotAfterRun reports a Snapshot call on a kernel that has already
// started (or finished) simulating.
var ErrSnapshotAfterRun = errors.New("sim: Snapshot must be taken on a booted kernel before Run")

// procSpec records one NewProcess call.
type procSpec struct {
	name string
	uid  int
	gid  int
}

// threadSpec records one Spawn call plus the priority attributes applied to
// the thread before Run.
type threadSpec struct {
	proc  int // index into Image.procs
	name  string
	fn    func(*Task)
	nice  int
	class uint16
}

// Image is an immutable snapshot of a kernel's pre-Run boot sequence. It
// captures configuration and registrations, not mutable state, so one Image
// may be forked from any number of times (from the kernel that produced it
// or any other). The per-round fields of the configuration — seed, tracer,
// interrupter — are overridden at Fork time.
type Image struct {
	cfg     Config
	procs   []procSpec
	threads []threadSpec
	onExit  func(*Process)
}

// Snapshot captures the kernel's boot registrations into an Image. It must
// be called after all pre-Run NewProcess/Spawn calls and before Run.
func (k *Kernel) Snapshot() (*Image, error) {
	if k.now != 0 || k.steps != 0 {
		return nil, ErrSnapshotAfterRun
	}
	img := &Image{cfg: k.cfg, onExit: k.onProcessExit}
	img.procs = make([]procSpec, len(k.procs))
	pidx := make(map[*Process]int, len(k.procs))
	for i, p := range k.procs {
		img.procs[i] = procSpec{name: p.Name, uid: p.UID, gid: p.GID}
		pidx[p] = i
	}
	img.threads = make([]threadSpec, len(k.threads))
	for i, th := range k.threads {
		img.threads[i] = threadSpec{
			proc:  pidx[th.proc],
			name:  th.name,
			fn:    th.fn,
			nice:  th.nice,
			class: th.schedClass,
		}
	}
	return img, nil
}

// ForkConfig carries the per-round overrides applied to an Image's
// configuration when forking.
type ForkConfig struct {
	// Seed seeds the forked round's RNG.
	Seed int64
	// Tracer receives the forked round's trace events; nil disables tracing.
	Tracer Tracer
	// Interrupter hooks the forked round's interruptible semaphore waits;
	// nil keeps every acquire uninterruptible.
	Interrupter Interrupter
}

// Fork resets the kernel and replays img's boot sequence onto it, reusing
// the thread and process shells pooled by previous forks. After Fork the
// kernel is in exactly the state a fresh New + boot with img's registrations
// (under fc's seed/tracer/interrupter) would produce; the caller may adjust
// per-round hooks (OnProcessExit, additional Spawns) and then Run. Fork must
// not be called while a simulation is in flight.
func (k *Kernel) Fork(img *Image, fc ForkConfig) {
	cfg := img.cfg
	cfg.Seed = fc.Seed
	cfg.Tracer = fc.Tracer
	cfg.Interrupter = fc.Interrupter
	k.Reset(cfg)
	k.pooling = true
	for _, ps := range img.procs {
		k.NewProcess(ps.name, ps.uid, ps.gid)
	}
	for i := range img.threads {
		ts := &img.threads[i]
		th := k.Spawn(k.procs[ts.proc], ts.name, ts.fn)
		th.nice = ts.nice
		th.schedClass = ts.class
	}
	k.onProcessExit = img.onExit
}

// Drain releases the fork pools: every parked pooled goroutine is told to
// exit and the shell slices are dropped. It must only be called between
// rounds (never while Run is in flight). A kernel remains usable after
// Drain; the next Fork simply rebuilds its pools. Exposed mainly so tests
// can verify pooled shells are accounted for and releasable.
func (k *Kernel) Drain() {
	for _, th := range k.pool {
		th.drain = true
		th.resume <- struct{}{}
	}
	k.pool = nil
	k.poolIdx = 0
	k.procPool = nil
	k.procIdx = 0
	k.pooling = false
}

// PooledThreads returns the number of thread shells currently retained by
// the fork pool. Exposed for tests.
func (k *Kernel) PooledThreads() int { return len(k.pool) }

// Process returns the i-th registered process of the current round, in
// registration order. After Fork, index i is the process the i-th entry of
// the image's boot sequence produced — a forking harness uses this to
// re-resolve its process handles, since the first fork after a classic
// boot moves the registrations onto pooled shells with new identities.
func (k *Kernel) Process(i int) *Process { return k.procs[i] }
