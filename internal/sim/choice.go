package sim

import "fmt"

// ChoiceKind classifies the scheduling/model choice points a Chooser is
// consulted for. Together they cover every source of nondeterminism a
// round has once a Chooser replaces the seeded RNG: the victim's startup
// phase, dispatch picks among tied ready threads, semaphore wake order,
// storage stalls, and background-noise injection slots.
type ChoiceKind uint8

const (
	// ChoosePhase selects the victim's startup-phase slot (uniform N-way).
	ChoosePhase ChoiceKind = iota + 1
	// ChooseDispatch selects which member of the front nice-level tie
	// group of the run queue gets a freed CPU (uniform N-way).
	ChooseDispatch
	// ChooseSemWake selects which semaphore waiter receives ownership on
	// release (uniform N-way).
	ChooseSemWake
	// ChooseStall decides whether a storage write stalls on dirty
	// throttling (Bernoulli; alternative 1 = stall).
	ChooseStall
	// ChooseNoise decides whether a background-noise slot fires a burst
	// (Bernoulli; alternative 1 = fire).
	ChooseNoise
)

// String returns a short stable name for the kind; it labels EvChoice
// trace events, so witnesses are self-describing.
func (c ChoiceKind) String() string {
	switch c {
	case ChoosePhase:
		return "phase"
	case ChooseDispatch:
		return "dispatch"
	case ChooseSemWake:
		return "sem-wake"
	case ChooseStall:
		return "stall"
	case ChooseNoise:
		return "noise-slot"
	default:
		return fmt.Sprintf("choice(%d)", uint8(c))
	}
}

// ProbScale is the fixed-point denominator for Bernoulli choice
// probabilities. Dyadic probabilities keep exact (rational) exploration
// weights representable without float rounding disputes.
const ProbScale = 1 << 32

// FixedProb converts p to a fixed-point numerator over ProbScale, clamped
// to [0, ProbScale].
func FixedProb(p float64) uint64 {
	switch {
	case p <= 0:
		return 0
	case p >= 1:
		return ProbScale
	default:
		return uint64(p * ProbScale)
	}
}

// Choice describes one choice point handed to a Chooser.
type Choice struct {
	// Kind is the choice-point category.
	Kind ChoiceKind
	// N is the number of alternatives; the chooser returns an index in
	// [0, N).
	N int
	// PNum, when nonzero, marks a Bernoulli choice: alternative 1 occurs
	// with probability PNum/ProbScale and alternative 0 otherwise. Zero
	// means all N alternatives are equally likely.
	PNum uint64
	// Class, when non-nil, tags each alternative with an equivalence
	// token: alternatives carrying equal tokens provably lead to
	// indistinguishable round outcomes (interchangeable threads), so an
	// exploring chooser may pick one representative and weight it by the
	// token's multiplicity. The slice is only valid during the Choose
	// call.
	Class []uint64
}

// Chooser resolves choice points. Installing one in Config.Chooser
// switches the kernel (and the layers above it that check ChooserActive)
// from RNG-driven sampling to explicit choice points. Implementations used
// in concurrent campaigns must be safe for use from multiple rounds at
// once; stateless choosers like RandomChooser are.
type Chooser interface {
	// Choose returns the index of the alternative to take, in [0, c.N).
	// k is the consulting kernel, so stateless implementations can use
	// its deterministic RNG.
	Choose(k *Kernel, c Choice) int
}

// RandomChooser samples every choice point from the kernel's seeded RNG
// with exactly the probabilities an exhaustive exploration assigns the
// alternatives. A Monte Carlo campaign under RandomChooser therefore
// estimates the same quantity exact exploration computes, making the two
// directly comparable.
type RandomChooser struct{}

// Choose implements Chooser.
func (RandomChooser) Choose(k *Kernel, c Choice) int {
	if c.PNum > 0 {
		if uint64(k.rng.Uint32()) < c.PNum {
			return 1
		}
		return 0
	}
	if c.N <= 1 {
		return 0
	}
	return k.rng.Intn(c.N)
}

// ScriptChooser replays a recorded schedule: the i-th consulted choice
// point takes Script[i]. Exhausted or out-of-range entries fall back to
// alternative 0 and are counted in Overruns, so a stale script fails
// loudly at the caller instead of panicking mid-simulation.
type ScriptChooser struct {
	Script []int
	// Overruns counts consults the script could not answer.
	Overruns int

	pos int
}

// Choose implements Chooser.
func (s *ScriptChooser) Choose(_ *Kernel, c Choice) int {
	if s.pos >= len(s.Script) {
		s.Overruns++
		return 0
	}
	idx := s.Script[s.pos]
	s.pos++
	if idx < 0 || idx >= c.N {
		s.Overruns++
		return 0
	}
	return idx
}

// Consumed returns how many script entries have been used.
func (s *ScriptChooser) Consumed() int { return s.pos }

// ChooserActive reports whether a Chooser drives this kernel's
// nondeterminism. Layers above the kernel (fs stalls, the round harness)
// consult it to decide between RNG sampling and explicit choice points.
func (k *Kernel) ChooserActive() bool { return k.cfg.Chooser != nil }

// ChooseIndex consults the chooser for a uniform n-way choice and emits an
// EvChoice trace event recording the pick. class may be nil. Requires an
// installed Chooser; n <= 1 short-circuits without consulting it.
func (k *Kernel) ChooseIndex(kind ChoiceKind, n int, class []uint64) int {
	if n <= 1 {
		return 0
	}
	idx := k.cfg.Chooser.Choose(k, Choice{Kind: kind, N: n, Class: class})
	if idx < 0 || idx >= n {
		panic(fmt.Sprintf("sim: chooser returned %d for a %d-way %s choice", idx, n, kind))
	}
	k.emit(Event{Kind: EvChoice, Label: kind.String(), Arg: int64(idx)})
	return idx
}

// ChooseBernoulli consults the chooser for an event of probability p
// (quantized to ProbScale) and reports whether it occurs. Probability 0
// and 1 short-circuit without a choice point, so exploration never
// branches on impossible or certain events. ChooseStall consults count
// against Config.StallBound: once the bound is reached further stalls are
// forced off without a choice point — the truncation that keeps large
// windows explorable. Requires an installed Chooser.
func (k *Kernel) ChooseBernoulli(kind ChoiceKind, p float64) bool {
	pnum := FixedProb(p)
	if pnum == 0 {
		return false
	}
	if pnum >= ProbScale {
		return true
	}
	if kind == ChooseStall && k.cfg.StallBound > 0 && k.stallsFired >= k.cfg.StallBound {
		return false
	}
	idx := k.cfg.Chooser.Choose(k, Choice{Kind: kind, N: 2, PNum: pnum})
	if idx != 0 && idx != 1 {
		panic(fmt.Sprintf("sim: chooser returned %d for a Bernoulli %s choice", idx, kind))
	}
	k.emit(Event{Kind: EvChoice, Label: kind.String(), Arg: int64(idx)})
	if idx == 1 {
		if kind == ChooseStall {
			k.stallsFired++
		}
		return true
	}
	return false
}

// classToken summarizes everything that distinguishes two ready threads
// for future scheduling purposes. Threads with schedule class 0 (the
// default) are always unique; threads sharing a nonzero class are
// interchangeable exactly when their remaining compute is also equal —
// then swapping which one is picked yields isomorphic continuations, so
// the token packs (class, computeLeft). The top bit separates the unique
// namespace from the class namespace.
func classToken(th *Thread) uint64 {
	if th.schedClass == 0 || th.computeLeft >= 1<<47 {
		return 1<<63 | uint64(uint32(th.id))
	}
	return uint64(th.schedClass)<<47 | uint64(th.computeLeft)
}

// chooseDispatch lets the chooser pick any member of the run queue's front
// nice-level tie group — the scheduler's dispatch choice point. FIFO order
// within the group carries no semantic weight once scheduling is
// nondeterministic, so every member is a legal pick.
func (k *Kernel) chooseDispatch() *Thread {
	g := k.ready.tieLen()
	if g == 1 {
		return k.ready.popFront()
	}
	if cap(k.classBuf) < g {
		k.classBuf = make([]uint64, g)
	}
	buf := k.classBuf[:g]
	for i := range buf {
		buf[i] = classToken(k.ready.at(i))
	}
	return k.ready.popAt(k.ChooseIndex(ChooseDispatch, g, buf))
}

// chooseWaiter picks which semaphore waiter receives ownership.
func (k *Kernel) chooseWaiter(waiters []*Thread) int {
	if k.cfg.Chooser == nil || len(waiters) <= 1 {
		return 0
	}
	if cap(k.classBuf) < len(waiters) {
		k.classBuf = make([]uint64, len(waiters))
	}
	buf := k.classBuf[:len(waiters)]
	for i, w := range waiters {
		buf[i] = classToken(w)
	}
	return k.ChooseIndex(ChooseSemWake, len(waiters), buf)
}

// noiseSlotFire handles one background-noise deliberation slot on c: with
// the configured probability a burst of fixed length steals the CPU, up to
// the configured bound of fired bursts per run (the preemption bound).
// Slots where a burst provably cannot affect the round — no thread is
// mid-compute on c, so stealCPUTime would be a no-op and neither branch
// changes any future-visible state — are skipped without consulting the
// chooser when PruneNoops is set; naive exploration can disable the knob
// to verify the equivalence.
func (k *Kernel) noiseSlotFire(c *cpu) {
	if k.live == 0 {
		return
	}
	ns := k.cfg.NoiseSlots
	k.armSlotAfter(c, slotNoiseSlot, ns.Period, nil, 0)
	if ns.Bound > 0 && k.noiseInjected >= ns.Bound {
		return
	}
	th := c.th
	noop := th == nil || th.state != StateRunning || !th.workPending
	if noop && ns.PruneNoops {
		return
	}
	if !k.ChooseBernoulli(ChooseNoise, ns.Prob) {
		return
	}
	if noop {
		// Fired on an idle slot: nothing to delay, and no preemption
		// budget consumed — the branch is indistinguishable from not
		// firing, which is exactly why PruneNoops may skip it.
		return
	}
	k.noiseInjected++
	k.stats.NoiseBursts++
	k.stats.NoiseNs += int64(ns.Burst)
	k.emit(Event{Kind: EvNoise, CPU: int32(c.id), Arg: int64(ns.Burst)})
	k.stealCPUTime(c, ns.Burst)
}
