package sim

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"time"

	"tocttou/internal/stats"
)

// Errors returned by Kernel.Run.
var (
	// ErrDeadlock reports that live threads remain but none can ever run.
	ErrDeadlock = errors.New("sim: deadlock: live threads remain but none is runnable or has a pending timer")
	// ErrMaxSteps reports that the event budget was exhausted (runaway loop guard).
	ErrMaxSteps = errors.New("sim: exceeded maximum event count")
	// ErrMaxTime reports that the virtual-time budget was exhausted.
	ErrMaxTime = errors.New("sim: exceeded maximum virtual time")
)

// NoiseConfig models background kernel activity (softirqs, kernel timers,
// housekeeping daemons) that occasionally occupies a CPU and delays whatever
// is running there. The paper identifies exactly this as the reason success
// is "still not guaranteed" on a multiprocessor (§5): in several failed
// 1-byte vi runs "some other processes prevents the attacker from being
// scheduled on another CPU during the vi vulnerability window".
type NoiseConfig struct {
	// MeanInterval is the mean time between activity bursts on each CPU
	// (exponential inter-arrivals). Zero disables noise.
	MeanInterval time.Duration
	// MeanDuration is the median burst length; actual lengths are
	// log-normal with sigma 0.5, giving an occasional long burst.
	MeanDuration time.Duration
}

// NoiseSlotConfig replaces the RNG-driven NoiseConfig when a Chooser is
// installed: every Period, each CPU reaches a deliberation slot at which a
// background burst of fixed length Burst fires with probability Prob, up
// to Bound fired bursts per run (the schedule explorer's preemption
// bound). Fixed burst lengths and per-slot Bernoulli trials make the
// noise model a finite set of explicit choice points instead of a
// continuous arrival process. Ignored when Config.Chooser is nil or
// Period is zero.
type NoiseSlotConfig struct {
	// Period is the slot spacing on each CPU. Zero disables slots.
	Period time.Duration
	// Burst is the CPU time a fired burst steals.
	Burst time.Duration
	// Prob is the per-slot fire probability (quantized to sim.ProbScale).
	Prob float64
	// Bound caps fired bursts per run; 0 means unbounded.
	Bound int
	// PruneNoops skips the fire/no-fire deliberation at slots where a
	// burst provably cannot affect the round (no thread mid-compute on
	// the CPU): the two branches are identical there, so skipping is
	// outcome-preserving. Exposed as a knob so naive exploration can
	// verify that claim.
	PruneNoops bool
}

// Config parameterizes a simulated machine.
type Config struct {
	// CPUs is the number of processors (1 = uniprocessor).
	CPUs int
	// Quantum is the scheduler time slice.
	Quantum time.Duration
	// CtxSwitch is the cost of a context switch (dispatch latency).
	CtxSwitch time.Duration
	// TickPeriod is the timer-interrupt period (1ms for HZ=1000).
	TickPeriod time.Duration
	// TickCost is CPU time stolen by each timer interrupt.
	TickCost time.Duration
	// Noise configures background kernel activity.
	Noise NoiseConfig
	// Jitter is the relative standard deviation applied to modeled
	// latencies (see stats.Jitter).
	Jitter float64
	// Seed seeds the kernel's single deterministic RNG.
	Seed int64
	// Tracer receives trace events; nil disables tracing.
	Tracer Tracer
	// Chooser, when non-nil, resolves the kernel's scheduling choice
	// points (dispatch ties, semaphore wake order, noise slots) instead
	// of the FIFO/RNG defaults, and switches the stochastic model
	// elements above the kernel that check ChooserActive to explicit
	// choice points. Nil preserves the historical behavior bit for bit.
	Chooser Chooser
	// NoiseSlots configures the bounded noise-injection slot model used
	// when Chooser is set (the RNG arrival process is disabled then).
	NoiseSlots NoiseSlotConfig
	// StallBound caps how many ChooseStall choice points may resolve to
	// "stall" per run when a Chooser drives them (0 = unbounded); part of
	// the explorer's truncation model. Ignored without a Chooser.
	StallBound int
	// Interrupter, when non-nil, is consulted whenever a thread blocks on
	// an interruptible semaphore acquire (Sem.AcquireInterruptible) and may
	// schedule an EINTR-style interruption of the wait. Nil — the default —
	// keeps every acquire uninterruptible, bit-identical to the historical
	// behavior. Used by the fault-injection layer (internal/fault).
	Interrupter Interrupter
	// DisableCoalesce forces every compute segment and bulk file write
	// through the fully stepped event-loop path, turning off the stretch
	// coalescing fast-forward (see Stretch). The coalesced path is proven
	// bit-identical to the stepped one, so the knob changes no simulated
	// outcome; the equivalence suite flips it to compare both executions.
	DisableCoalesce bool
	// MaxSteps bounds the number of processed events (0 = default 50M).
	MaxSteps int64
	// MaxTime bounds virtual time (0 = default 10 virtual minutes).
	MaxTime time.Duration
}

func (c Config) withDefaults() Config {
	if c.CPUs <= 0 {
		c.CPUs = 1
	}
	if c.Quantum <= 0 {
		c.Quantum = 100 * time.Millisecond
	}
	if c.MaxSteps <= 0 {
		c.MaxSteps = 50_000_000
	}
	if c.MaxTime <= 0 {
		c.MaxTime = 10 * time.Minute
	}
	return c
}

// cpu is one simulated processor.
type cpu struct {
	id int
	th *Thread // currently assigned thread, nil if idle

	// slots are the per-CPU pending-event registers (see event.go): the
	// timer tick, noise source, noise deliberation slot, in-flight
	// dispatch, quantum expiry, and compute completion each have at most
	// one pending instance per CPU, so they bypass the event heap.
	slots [numSlots]evSlot
	// armedMask has bit i set iff slots[i].armed, so the popNext merge
	// scan visits only armed registers.
	armedMask uint8
}

// Kernel is a deterministic discrete-event simulation of a small
// multiprocessor operating system. Create one with New, add processes and
// threads, then call Run. A finished kernel can be recycled for another
// simulation with Reset, which reuses the event queue, run queue, and
// thread table allocations of the previous run.
type Kernel struct {
	cfg    Config
	now    Time
	seq    uint64
	events eventQueue
	cpus   []*cpu
	ready  readyQueue // run queue of Ready threads awaiting a CPU
	rng    *rand.Rand
	src    *fastSource // non-nil iff the validated fast reseed path backs rng
	jitter stats.Jitter
	tracer Tracer

	stats KernelStats // always-on observability counters (see stats.go)

	threads []*Thread
	procs   []*Process
	nextPID int
	nextTID int

	// classBuf is scratch space for per-alternative equivalence tokens
	// handed to the chooser (see Choice.Class); reused across choice
	// points so consulting the chooser never allocates.
	classBuf []uint64
	// noiseInjected and stallsFired count budget consumption against
	// NoiseSlots.Bound and StallBound for the current run.
	noiseInjected int
	stallsFired   int

	live       int // threads not yet Done
	runningCnt int // threads in StateRunning
	timedCnt   int // threads blocked with a pending timer (sleep / IO)
	pendingOps int // scheduled kill/unwind events not yet processed

	steps int64

	// The event loop runs on whichever goroutine holds the control token:
	// Run's goroutine initially, and afterwards the goroutine of whichever
	// thread last blocked (see runLoop). mainResume wakes Run's goroutine at
	// simulation termination and during unwindLive's per-thread handshake.
	mainResume chan struct{}
	handoff    *Thread // thread selected to run next, set during dispatchEvent
	checkPost  bool    // post-dispatch termination checks pending
	finishErr  error   // simulation outcome recorded by terminate
	unwinding  bool    // unwindLive handshake in progress
	maxT       Time    // virtual-time budget, fixed at construction/Reset
	lastAt     Time    // latest instant scheduled within the time budget
	nextAt     Time    // lower bound on the earliest pending event's instant

	// onProcessExit, if set, is invoked when the last thread of a process
	// exits. Used by the experiment harness to cancel the attacker once
	// the victim completes.
	onProcessExit func(*Process)

	userErr error // first panic propagated from a thread function

	// Fork pooling (see snapshot.go). pooling is true only while the kernel
	// is replaying a forked prefix image; Spawn and NewProcess then recycle
	// the shells below instead of allocating. Both pools are kept in
	// creation order and re-consumed from index 0 each fork, so the i-th
	// spawn of every forked round receives the same pointer — closures and
	// caches capturing a shell stay valid across rounds.
	pooling  bool
	pool     []*Thread
	poolIdx  int
	procPool []*Process
	procIdx  int
}

// New creates a kernel for the given machine configuration.
func New(cfg Config) *Kernel {
	cfg = cfg.withDefaults()
	src, fsrc := newKernelSource(cfg.Seed)
	k := &Kernel{
		cfg:        cfg,
		rng:        rand.New(src),
		src:        fsrc,
		jitter:     stats.Jitter{Rel: cfg.Jitter},
		tracer:     cfg.Tracer,
		mainResume: make(chan struct{}),
	}
	k.cpus = make([]*cpu, cfg.CPUs)
	for i := range k.cpus {
		k.cpus[i] = &cpu{id: i}
	}
	k.stats.reset(cfg.CPUs)
	k.maxT = Time(cfg.MaxTime)
	k.nextAt = timeInf
	return k
}

// Reset returns the kernel to the pristine state New(cfg) would produce
// while reusing the event-queue, run-queue, and thread-table allocations of
// the previous simulation. It must only be called after Run has returned
// (Run unwinds every live thread goroutine before returning an error, so no
// coroutine of the previous round can still be parked). A Reset kernel with
// the same cfg and workload produces bit-identical results to a fresh one:
// the RNG is reseeded, all counters restart from zero, and the recycled
// containers are emptied.
func (k *Kernel) Reset(cfg Config) {
	cfg = cfg.withDefaults()
	k.cfg = cfg
	k.now = 0
	k.seq = 0
	k.steps = 0
	k.events.reset()
	k.ready.reset()
	if len(k.cpus) != cfg.CPUs {
		k.cpus = make([]*cpu, cfg.CPUs)
		for i := range k.cpus {
			k.cpus[i] = &cpu{id: i}
		}
	} else {
		for _, c := range k.cpus {
			c.th = nil
			c.slots = [numSlots]evSlot{}
			c.armedMask = 0
		}
	}
	k.stats.reset(cfg.CPUs)
	if k.src != nil {
		k.src.Seed(cfg.Seed)
	} else {
		k.rng.Seed(cfg.Seed)
	}
	k.jitter = stats.Jitter{Rel: cfg.Jitter}
	k.tracer = cfg.Tracer
	clear(k.threads)
	k.threads = k.threads[:0]
	clear(k.procs)
	k.procs = k.procs[:0]
	k.nextPID, k.nextTID = 0, 0
	k.noiseInjected, k.stallsFired = 0, 0
	k.live, k.runningCnt, k.timedCnt, k.pendingOps = 0, 0, 0, 0
	k.onProcessExit = nil
	k.userErr = nil
	k.handoff = nil
	k.checkPost = false
	k.finishErr = nil
	k.unwinding = false
	k.maxT = Time(cfg.MaxTime)
	k.lastAt = 0
	k.nextAt = timeInf
	k.pooling = false
	k.poolIdx, k.procIdx = 0, 0
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// RNG returns the kernel's deterministic random source. It must only be
// used from the kernel goroutine or a currently-running thread function.
func (k *Kernel) RNG() *rand.Rand { return k.rng }

// JitterDuration samples a jittered latency around base using the machine's
// configured relative noise. When the validated direct sampler is available
// it draws without going through the *rand.Rand wrapper; the short-circuit
// mirrors stats.Jitter.Sample so both paths consume draws identically.
func (k *Kernel) JitterDuration(base time.Duration) time.Duration {
	if k.src != nil && fastDistOK {
		if base <= 0 || k.jitter.Rel <= 0 {
			return base
		}
		return k.jitter.Apply(k.src.NormFloat64(), base)
	}
	return k.jitter.Sample(k.rng, base)
}

// ExpDuration samples an exponentially distributed duration with the given
// mean, mirroring stats.Exponential draw-for-draw.
func (k *Kernel) ExpDuration(mean time.Duration) time.Duration {
	if k.src != nil && fastDistOK {
		if mean <= 0 {
			return 0
		}
		return time.Duration(k.src.ExpFloat64() * float64(mean))
	}
	return stats.Exponential(k.rng, mean)
}

// LogNormalDuration samples a log-normal duration with the given median
// and log-sigma, mirroring stats.LogNormal draw-for-draw.
func (k *Kernel) LogNormalDuration(median time.Duration, sigma float64) time.Duration {
	if k.src != nil && fastDistOK {
		if median <= 0 {
			return 0
		}
		return time.Duration(float64(median) * math.Exp(k.src.NormFloat64()*sigma))
	}
	return stats.LogNormal(k.rng, median, sigma)
}

// Bernoulli returns true with probability p, mirroring stats.Bernoulli
// draw-for-draw.
func (k *Kernel) Bernoulli(p float64) bool {
	if k.src != nil && fastDistOK {
		if p <= 0 {
			return false
		}
		if p >= 1 {
			return true
		}
		return k.src.Float64() < p
	}
	return stats.Bernoulli(k.rng, p)
}

// CPUs returns the number of simulated processors.
func (k *Kernel) CPUs() int { return len(k.cpus) }

// OnProcessExit registers fn to be called when the last thread of any
// process exits. fn runs inside the kernel loop and may spawn or kill
// threads but must not block.
func (k *Kernel) OnProcessExit(fn func(*Process)) { k.onProcessExit = fn }

// Run processes events until no live threads remain. It returns an error
// on deadlock, event/time budget exhaustion, or if a thread function
// panicked. Before returning an error it force-unwinds every live thread so
// no coroutine goroutine is leaked parked on its resume channel.
func (k *Kernel) Run() error {
	k.startBackground()
	k.maxT = Time(k.cfg.MaxTime)
	k.finishErr = nil
	k.checkPost = false
	k.runLoop(nil, false)
	if k.finishErr != nil {
		k.unwindLive()
	}
	return k.finishErr
}

// loopOutcome is how a runLoop invocation ended, from the caller's view.
type loopOutcome uint8

const (
	// loopResumed: the kernel selected the calling thread to run again.
	loopResumed loopOutcome = iota
	// loopHandedOff: the token went to another goroutine; the dying caller
	// must exit.
	loopHandedOff
	// loopTerminated: the simulation finished; only Run's goroutine sees
	// this.
	loopTerminated
)

// runLoop drives the event loop on the calling goroutine. Exactly one
// goroutine holds the control token at any instant and runs this loop;
// every other coroutine is parked on its resume channel (or, for Run's
// goroutine, on mainResume). self is the calling thread (nil for Run's
// goroutine); dying marks the final call from an exiting thread's
// epilogue, which must hand the token on rather than park.
//
// This is the simulator's central performance device: when a blocking
// primitive re-enters the loop and the next scheduling decision picks the
// same thread (the overwhelmingly common case — a compute segment ending
// with the thread keeping its CPU), the loop simply returns and the thread
// continues, with no channel operation and no goroutine switch. A real
// thread switch costs one channel handoff instead of the previous two
// (thread → kernel goroutine → thread). The processed event sequence and
// every state mutation are identical to the classic kernel-goroutine loop;
// only which goroutine executes the iterations changes, so simulated
// outcomes are bit-for-bit the same.
func (k *Kernel) runLoop(self *Thread, dying bool) loopOutcome {
	for {
		if k.checkPost {
			k.checkPost = false
			if k.userErr != nil {
				return k.terminate(self, dying, k.userErr)
			}
			if k.live == 0 {
				return k.terminate(self, dying, nil)
			}
			if k.deadlocked() {
				return k.terminate(self, dying,
					fmt.Errorf("%w: %s", ErrDeadlock, k.describeBlocked()))
			}
		}
		ev, ok := k.popNext()
		if !ok {
			if k.live > 0 {
				return k.terminate(self, dying,
					fmt.Errorf("%w: %s", ErrDeadlock, k.describeBlocked()))
			}
			return k.terminate(self, dying, nil)
		}
		if ev.at > k.maxT {
			// The single-heap scheduler drained every event within the
			// budget — including generation-guarded no-ops a slot re-arm now
			// overwrites — before tripping here, leaving the clock at the
			// latest in-budget instant. Restore that exact final time.
			if k.lastAt > k.now {
				k.now = k.lastAt
			}
			return k.terminate(self, dying,
				fmt.Errorf("%w (%.0fms)", ErrMaxTime, k.cfg.MaxTime.Seconds()*1e3))
		}
		k.now = ev.at
		k.steps++
		if k.steps > k.cfg.MaxSteps {
			return k.terminate(self, dying,
				fmt.Errorf("%w (%d)", ErrMaxSteps, k.cfg.MaxSteps))
		}
		k.dispatchEvent(&ev)
		k.checkPost = true
		if th := k.handoff; th != nil {
			k.handoff = nil
			if th == self {
				return loopResumed
			}
			th.resume <- struct{}{}
			switch {
			case dying:
				return loopHandedOff
			case self != nil:
				<-self.resume // woken when scheduled again, or to unwind
				return loopResumed
			default:
				<-k.mainResume // Run's goroutine waits for termination
				return loopTerminated
			}
		}
	}
}

// wake marks th as the thread the event loop hands the control token to
// once the current event's dispatch completes. Called only from event
// handlers, at most once per dispatched event.
func (k *Kernel) wake(th *Thread) {
	if k.handoff != nil {
		panic("sim: two thread wake-ups in one event dispatch")
	}
	k.handoff = th
}

// terminate records the simulation outcome and routes the control token
// back to Run's goroutine. A live (blocked) detector thread parks until
// unwindLive unwinds it; a dying detector signals and exits.
func (k *Kernel) terminate(self *Thread, dying bool, err error) loopOutcome {
	k.finishErr = err
	if self == nil {
		return loopTerminated
	}
	k.mainResume <- struct{}{}
	if dying {
		return loopHandedOff
	}
	<-self.resume // parked until unwindLive resumes this thread to unwind
	return loopResumed
}

// unwindLive force-unwinds the coroutine of every thread that has not
// exited. When Run abandons a simulation mid-flight (deadlock, budget
// exhaustion, propagated panic) the live threads' goroutines are parked on
// their resume channels and would be leaked for the life of the process —
// the resource leak a long campaign would otherwise accumulate once a round
// errors out. Every park site (initial launch, the handoff parks inside
// runLoop, and terminate) re-checks the kill flag immediately after
// resuming, so marking the thread killed and resuming it once unwinds the
// function via the kill panic; the epilogue sees unwinding and hands the
// token straight back instead of re-entering the loop.
func (k *Kernel) unwindLive() {
	k.unwinding = true
	for _, th := range k.threads {
		if th.state == StateDone {
			continue
		}
		th.killed = true
		th.resume <- struct{}{}
		<-k.mainResume
		th.state = StateDone
		k.live--
	}
	k.unwinding = false
}

// deadlocked reports whether no thread can ever make progress again: live
// threads exist but none is running, ready, or waiting on a timer.
func (k *Kernel) deadlocked() bool {
	return k.live > 0 && k.runningCnt == 0 && k.ready.Len() == 0 &&
		k.timedCnt == 0 && k.pendingOps == 0 && !k.anyDispatching()
}

func (k *Kernel) anyDispatching() bool {
	for _, c := range k.cpus {
		if c.th != nil && c.th.state == StateReady {
			return true // dispatch in progress (context switch latency)
		}
	}
	return false
}

func (k *Kernel) describeBlocked() string {
	s := ""
	for _, th := range k.threads {
		if th.state == StateBlocked {
			if s != "" {
				s += ", "
			}
			s += fmt.Sprintf("%s(%s)", th.name, th.blockReason)
		}
	}
	if s == "" {
		s = "no blocked threads recorded"
	}
	return s
}

// startBackground schedules the per-CPU timer ticks and noise sources.
// Under a Chooser the RNG noise arrival process is replaced by the
// bounded slot model, so background nondeterminism is a finite set of
// explicit choice points.
func (k *Kernel) startBackground() {
	if k.cfg.TickPeriod > 0 {
		for _, c := range k.cpus {
			k.armSlotAfter(c, slotTick, k.cfg.TickPeriod, nil, 0)
		}
	}
	if k.cfg.Chooser != nil {
		if ns := k.cfg.NoiseSlots; ns.Period > 0 {
			for _, c := range k.cpus {
				k.armSlotAfter(c, slotNoiseSlot, ns.Period, nil, 0)
			}
		}
		return
	}
	if k.cfg.Noise.MeanInterval > 0 {
		for _, c := range k.cpus {
			gap := k.ExpDuration(k.cfg.Noise.MeanInterval)
			k.armSlotAfter(c, slotNoise, gap, nil, 0)
		}
	}
}

// tickFire handles one timer interrupt on c and re-arms the next.
func (k *Kernel) tickFire(c *cpu) {
	if k.live == 0 {
		return
	}
	k.stats.Ticks++
	k.stats.TickNs += int64(k.cfg.TickCost)
	if k.tracing() {
		k.emit(Event{Kind: EvTick, CPU: int32(c.id), Arg: int64(k.cfg.TickCost)})
	}
	k.stealCPUTime(c, k.cfg.TickCost)
	k.armSlotAfter(c, slotTick, k.cfg.TickPeriod, nil, 0)
}

// noiseFire handles one background-activity burst on c and re-arms the
// next. The RNG draw order (burst duration, then next inter-arrival gap)
// matches the original closure-based scheduler, preserving seeded streams.
func (k *Kernel) noiseFire(c *cpu) {
	if k.live == 0 {
		return
	}
	dur := k.LogNormalDuration(k.cfg.Noise.MeanDuration, 0.5)
	k.stats.NoiseBursts++
	k.stats.NoiseNs += int64(dur)
	if k.tracing() {
		k.emit(Event{Kind: EvNoise, CPU: int32(c.id), Arg: int64(dur)})
	}
	k.stealCPUTime(c, dur)
	gap := k.ExpDuration(k.cfg.Noise.MeanInterval)
	k.armSlotAfter(c, slotNoise, gap, nil, 0)
}

// stealCPUTime models an interrupt or background activity occupying CPU c
// for d: if a thread is mid-compute there, its completion is pushed back.
func (k *Kernel) stealCPUTime(c *cpu, d time.Duration) {
	if d <= 0 {
		return
	}
	th := c.th
	if th == nil || th.state != StateRunning || !th.workPending {
		return
	}
	k.accrueWork(th)
	th.runStart = k.now.Add(d)
	k.scheduleWork(th)
}
