package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"math/rand"
	"time"

	"tocttou/internal/stats"
)

// Errors returned by Kernel.Run.
var (
	// ErrDeadlock reports that live threads remain but none can ever run.
	ErrDeadlock = errors.New("sim: deadlock: live threads remain but none is runnable or has a pending timer")
	// ErrMaxSteps reports that the event budget was exhausted (runaway loop guard).
	ErrMaxSteps = errors.New("sim: exceeded maximum event count")
	// ErrMaxTime reports that the virtual-time budget was exhausted.
	ErrMaxTime = errors.New("sim: exceeded maximum virtual time")
)

// NoiseConfig models background kernel activity (softirqs, kernel timers,
// housekeeping daemons) that occasionally occupies a CPU and delays whatever
// is running there. The paper identifies exactly this as the reason success
// is "still not guaranteed" on a multiprocessor (§5): in several failed
// 1-byte vi runs "some other processes prevents the attacker from being
// scheduled on another CPU during the vi vulnerability window".
type NoiseConfig struct {
	// MeanInterval is the mean time between activity bursts on each CPU
	// (exponential inter-arrivals). Zero disables noise.
	MeanInterval time.Duration
	// MeanDuration is the median burst length; actual lengths are
	// log-normal with sigma 0.5, giving an occasional long burst.
	MeanDuration time.Duration
}

// Config parameterizes a simulated machine.
type Config struct {
	// CPUs is the number of processors (1 = uniprocessor).
	CPUs int
	// Quantum is the scheduler time slice.
	Quantum time.Duration
	// CtxSwitch is the cost of a context switch (dispatch latency).
	CtxSwitch time.Duration
	// TickPeriod is the timer-interrupt period (1ms for HZ=1000).
	TickPeriod time.Duration
	// TickCost is CPU time stolen by each timer interrupt.
	TickCost time.Duration
	// Noise configures background kernel activity.
	Noise NoiseConfig
	// Jitter is the relative standard deviation applied to modeled
	// latencies (see stats.Jitter).
	Jitter float64
	// Seed seeds the kernel's single deterministic RNG.
	Seed int64
	// Tracer receives trace events; nil disables tracing.
	Tracer Tracer
	// MaxSteps bounds the number of processed events (0 = default 50M).
	MaxSteps int64
	// MaxTime bounds virtual time (0 = default 10 virtual minutes).
	MaxTime time.Duration
}

func (c Config) withDefaults() Config {
	if c.CPUs <= 0 {
		c.CPUs = 1
	}
	if c.Quantum <= 0 {
		c.Quantum = 100 * time.Millisecond
	}
	if c.MaxSteps <= 0 {
		c.MaxSteps = 50_000_000
	}
	if c.MaxTime <= 0 {
		c.MaxTime = 10 * time.Minute
	}
	return c
}

// cpu is one simulated processor.
type cpu struct {
	id int
	th *Thread // currently assigned thread, nil if idle
}

// Kernel is a deterministic discrete-event simulation of a small
// multiprocessor operating system. Create one with New, add processes and
// threads, then call Run.
type Kernel struct {
	cfg    Config
	now    Time
	seq    uint64
	events eventHeap
	cpus   []*cpu
	ready  []*Thread // FIFO run queue of Ready threads awaiting a CPU
	rng    *rand.Rand
	jitter stats.Jitter
	tracer Tracer

	threads []*Thread
	procs   []*Process
	nextPID int
	nextTID int

	live       int // threads not yet Done
	runningCnt int // threads in StateRunning
	timedCnt   int // threads blocked with a pending timer (sleep / IO)
	pendingOps int // scheduled kill/unwind events not yet processed

	steps int64

	// yield is the channel on which the currently running thread goroutine
	// hands control back to the kernel loop.
	yield chan struct{}

	// onProcessExit, if set, is invoked when the last thread of a process
	// exits. Used by the experiment harness to cancel the attacker once
	// the victim completes.
	onProcessExit func(*Process)

	userErr error // first panic propagated from a thread function
}

// New creates a kernel for the given machine configuration.
func New(cfg Config) *Kernel {
	cfg = cfg.withDefaults()
	k := &Kernel{
		cfg:    cfg,
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		jitter: stats.Jitter{Rel: cfg.Jitter},
		tracer: cfg.Tracer,
		yield:  make(chan struct{}),
	}
	k.cpus = make([]*cpu, cfg.CPUs)
	for i := range k.cpus {
		k.cpus[i] = &cpu{id: i}
	}
	heap.Init(&k.events)
	return k
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// RNG returns the kernel's deterministic random source. It must only be
// used from the kernel goroutine or a currently-running thread function.
func (k *Kernel) RNG() *rand.Rand { return k.rng }

// JitterDuration samples a jittered latency around base using the machine's
// configured relative noise.
func (k *Kernel) JitterDuration(base time.Duration) time.Duration {
	return k.jitter.Sample(k.rng, base)
}

// CPUs returns the number of simulated processors.
func (k *Kernel) CPUs() int { return len(k.cpus) }

// OnProcessExit registers fn to be called when the last thread of any
// process exits. fn runs inside the kernel loop and may spawn or kill
// threads but must not block.
func (k *Kernel) OnProcessExit(fn func(*Process)) { k.onProcessExit = fn }

// Run processes events until no live threads remain. It returns an error
// on deadlock, event/time budget exhaustion, or if a thread function
// panicked.
func (k *Kernel) Run() error {
	k.startBackground()
	maxT := Time(k.cfg.MaxTime)
	for k.events.Len() > 0 {
		ev := heap.Pop(&k.events).(timedEvent)
		if ev.at > maxT {
			return fmt.Errorf("%w (%.0fms)", ErrMaxTime, k.cfg.MaxTime.Seconds()*1e3)
		}
		k.now = ev.at
		k.steps++
		if k.steps > k.cfg.MaxSteps {
			return fmt.Errorf("%w (%d)", ErrMaxSteps, k.cfg.MaxSteps)
		}
		ev.fn()
		if k.userErr != nil {
			return k.userErr
		}
		if k.live == 0 {
			return nil
		}
		if k.deadlocked() {
			return fmt.Errorf("%w: %s", ErrDeadlock, k.describeBlocked())
		}
	}
	if k.live > 0 {
		return fmt.Errorf("%w: %s", ErrDeadlock, k.describeBlocked())
	}
	return nil
}

// deadlocked reports whether no thread can ever make progress again: live
// threads exist but none is running, ready, or waiting on a timer.
func (k *Kernel) deadlocked() bool {
	return k.live > 0 && k.runningCnt == 0 && len(k.ready) == 0 &&
		k.timedCnt == 0 && k.pendingOps == 0 && !k.anyDispatching()
}

func (k *Kernel) anyDispatching() bool {
	for _, c := range k.cpus {
		if c.th != nil && c.th.state == StateReady {
			return true // dispatch in progress (context switch latency)
		}
	}
	return false
}

func (k *Kernel) describeBlocked() string {
	s := ""
	for _, th := range k.threads {
		if th.state == StateBlocked {
			if s != "" {
				s += ", "
			}
			s += fmt.Sprintf("%s(%s)", th.name, th.blockReason)
		}
	}
	if s == "" {
		s = "no blocked threads recorded"
	}
	return s
}

// startBackground schedules the per-CPU timer ticks and noise sources.
func (k *Kernel) startBackground() {
	if k.cfg.TickPeriod > 0 {
		for _, c := range k.cpus {
			k.scheduleTick(c)
		}
	}
	if k.cfg.Noise.MeanInterval > 0 {
		for _, c := range k.cpus {
			k.scheduleNoise(c)
		}
	}
}

func (k *Kernel) scheduleTick(c *cpu) {
	k.after(k.cfg.TickPeriod, func() {
		if k.live == 0 {
			return
		}
		k.emit(Event{Kind: EvTick, CPU: int32(c.id), Arg: int64(k.cfg.TickCost)})
		k.stealCPUTime(c, k.cfg.TickCost)
		k.scheduleTick(c)
	})
}

func (k *Kernel) scheduleNoise(c *cpu) {
	gap := stats.Exponential(k.rng, k.cfg.Noise.MeanInterval)
	k.after(gap, func() {
		if k.live == 0 {
			return
		}
		dur := stats.LogNormal(k.rng, k.cfg.Noise.MeanDuration, 0.5)
		k.emit(Event{Kind: EvNoise, CPU: int32(c.id), Arg: int64(dur)})
		k.stealCPUTime(c, dur)
		k.scheduleNoise(c)
	})
}

// stealCPUTime models an interrupt or background activity occupying CPU c
// for d: if a thread is mid-compute there, its completion is pushed back.
func (k *Kernel) stealCPUTime(c *cpu, d time.Duration) {
	if d <= 0 {
		return
	}
	th := c.th
	if th == nil || th.state != StateRunning || !th.workPending {
		return
	}
	k.accrueWork(th)
	th.runStart = k.now.Add(d)
	k.scheduleWork(th)
}
