package sim

import "fmt"

// EventKind classifies trace events. The set covers everything the paper's
// "detailed event analysis" sections (§5, §6) need: syscall boundaries,
// semaphore contention, scheduling, page-fault traps, and the filesystem
// namespace changes that open and close a vulnerability window.
type EventKind uint8

const (
	EvNone EventKind = iota

	// Syscall lifecycle (emitted by the fs layer).
	EvSyscallEnter // Label=syscall name, Path=primary path argument
	EvSyscallExit  // Label=syscall name, Arg=errno (0 on success)

	// Synchronization.
	EvSemBlock   // Label=resource, blocked waiting for a semaphore
	EvSemAcquire // Label=resource
	EvSemRelease // Label=resource

	// Scheduling.
	EvDispatch // thread starts running on CPU
	EvPreempt  // thread preempted at quantum expiry
	EvBlock    // thread blocked (Label=reason)
	EvWake     // thread became ready
	EvExit     // thread exited
	EvSpawn    // thread created

	// Kernel background activity.
	EvTick  // timer interrupt on CPU (Arg=cost ns)
	EvNoise // softirq/daemon activity on CPU (Arg=duration ns)

	// Userland.
	EvCompute // user compute segment completed (Arg=duration ns)
	EvTrap    // page-fault trap, e.g. demand paging of a libc stub page
	EvMark    // user-defined marker (Label)

	// Filesystem namespace and attribute changes.
	EvNameBind   // Path now bound to an inode; Arg=owner uid
	EvNameUnbind // Path unbound from its inode
	EvAttrChange // chown/chmod applied; Label=detail, Arg=new uid (chown)
	EvIOBlock    // thread blocked on storage I/O (Arg=duration ns)

	// Choice points (emitted only when a Chooser is installed).
	EvChoice // choice point resolved; Label=ChoiceKind, Arg=picked index

	// Fault injection (emitted only when a fault plan is armed).
	EvFault // injected fault delivered; Label=fault detail, Arg=errno if any
)

// eventKindNames is an array (not a map) so the String lookup on the trace
// rendering path is a bounds-checked index rather than a hash probe.
var eventKindNames = [...]string{
	EvNone: "none", EvSyscallEnter: "enter", EvSyscallExit: "exit",
	EvSemBlock: "sem-block", EvSemAcquire: "sem-acquire", EvSemRelease: "sem-release",
	EvDispatch: "dispatch", EvPreempt: "preempt", EvBlock: "block", EvWake: "wake",
	EvExit: "thread-exit", EvSpawn: "spawn", EvTick: "tick", EvNoise: "noise",
	EvCompute: "compute", EvTrap: "trap", EvMark: "mark",
	EvNameBind: "name-bind", EvNameUnbind: "name-unbind",
	EvAttrChange: "attr", EvIOBlock: "io-block", EvChoice: "choice",
	EvFault: "fault",
}

// String returns a short lowercase name for the kind.
func (k EventKind) String() string {
	if int(k) < len(eventKindNames) && eventKindNames[k] != "" {
		return eventKindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// eventKindByName inverts eventKindNames for parsing serialized traces.
var eventKindByName = func() map[string]EventKind {
	m := make(map[string]EventKind, len(eventKindNames))
	for k, name := range eventKindNames {
		if name != "" {
			m[name] = EventKind(k)
		}
	}
	return m
}()

// ParseEventKind resolves the short name produced by EventKind.String back
// to the kind, for trace import (JSONL decoders) and CLI kind filters.
func ParseEventKind(name string) (EventKind, bool) {
	k, ok := eventKindByName[name]
	return k, ok
}

// EventKindCount is the number of defined event kinds (for filters that
// iterate or bitmask over kinds).
const EventKindCount = len(eventKindNames)

// Event is one timestamped trace record.
type Event struct {
	T     Time
	Kind  EventKind
	CPU   int32
	PID   int32
	TID   int32
	Label string
	Path  string
	Arg   int64
}

// String renders the event as a single human-readable line.
func (e Event) String() string {
	s := fmt.Sprintf("%10.1fµs cpu%-2d pid%-3d tid%-3d %-12s", e.T.Micros(), e.CPU, e.PID, e.TID, e.Kind)
	if e.Label != "" {
		s += " " + e.Label
	}
	if e.Path != "" {
		s += " " + e.Path
	}
	if e.Arg != 0 {
		s += fmt.Sprintf(" arg=%d", e.Arg)
	}
	return s
}

// Tracer receives every trace event emitted during a run. Implementations
// must not retain the kernel or call back into it.
type Tracer interface {
	Emit(Event)
}

// SliceTracer appends every event to Events. The zero value is ready to
// use. Tracing is deliberately lazy: the hot path records only this compact
// struct — all string rendering (Event.String, timelines, summaries)
// happens after the run, when and if a human-readable form is requested.
type SliceTracer struct {
	Events []Event
}

var _ Tracer = (*SliceTracer)(nil)

// Emit implements Tracer.
func (s *SliceTracer) Emit(e Event) { s.Events = append(s.Events, e) }

// Reset empties the tracer while keeping the backing array, so a campaign
// worker can reuse one event buffer across thousands of rounds.
func (s *SliceTracer) Reset() { s.Events = s.Events[:0] }

// CountTracer counts events by kind without retaining them; useful in
// benchmarks where full traces would dominate memory.
type CountTracer struct {
	Counts map[EventKind]int64
}

var _ Tracer = (*CountTracer)(nil)

// Emit implements Tracer.
func (c *CountTracer) Emit(e Event) {
	if c.Counts == nil {
		c.Counts = make(map[EventKind]int64)
	}
	c.Counts[e.Kind]++
}

// tracing reports whether a tracer is attached. Hot paths check it before
// constructing an Event literal: the by-value Event copy at the call site
// is built before emit's own nil check can skip it, and at hundreds of
// events per round that wasted copy is measurable.
func (k *Kernel) tracing() bool { return k.tracer != nil }

// emit sends an event to the configured tracer, if any, stamping the time.
func (k *Kernel) emit(ev Event) {
	if k.tracer == nil {
		return
	}
	ev.T = k.now
	k.tracer.Emit(ev)
}

// emitThread stamps thread/cpu identity onto the event before emitting.
func (k *Kernel) emitThread(th *Thread, ev Event) {
	if k.tracer == nil {
		return
	}
	ev.T = k.now
	ev.TID = int32(th.id)
	ev.PID = int32(th.proc.PID)
	ev.CPU = int32(th.cpu)
	k.tracer.Emit(ev)
}
