package sim

import (
	"fmt"
	"math/rand"
	"time"
)

// ThreadState is the scheduling state of a thread.
type ThreadState uint8

const (
	// StateReady means runnable, waiting for (or being dispatched to) a CPU.
	StateReady ThreadState = iota + 1
	// StateRunning means currently assigned to and executing on a CPU.
	StateRunning
	// StateBlocked means waiting on a semaphore, timer, flag, or I/O.
	StateBlocked
	// StateDone means the thread function has returned.
	StateDone
)

// String returns a short name for the state.
func (s ThreadState) String() string {
	switch s {
	case StateReady:
		return "ready"
	case StateRunning:
		return "running"
	case StateBlocked:
		return "blocked"
	case StateDone:
		return "done"
	default:
		return fmt.Sprintf("state(%d)", uint8(s))
	}
}

// Process is a group of threads sharing a credential. It mirrors the parts
// of a Unix process the experiments need: identity and ownership.
type Process struct {
	PID  int
	Name string
	UID  int
	GID  int

	k       *Kernel
	threads []*Thread
	liveCnt int
}

// Threads returns the process's threads (live and exited).
func (p *Process) Threads() []*Thread {
	out := make([]*Thread, len(p.threads))
	copy(out, p.threads)
	return out
}

// Alive reports whether any thread of the process has not exited.
func (p *Process) Alive() bool { return p.liveCnt > 0 }

// yieldKind tells yieldTo what bookkeeping the blocking primitive needs
// before the thread re-enters the event loop.
type yieldKind uint8

const (
	yieldCompute yieldKind = iota + 1
	yieldBlocked
)

// killSignal is the panic value used to unwind a killed thread function.
type killSignal struct{}

// Thread is one schedulable execution context.
type Thread struct {
	id   int
	proc *Process
	name string

	state       ThreadState
	cpu         int // CPU index while assigned, else -1
	computeLeft time.Duration
	runStart    Time
	workPending bool
	workGen     uint64 // invalidates stale work-done events
	schedGen    uint64 // invalidates stale quantum/dispatch events

	resume      chan struct{}
	blockReason string
	blockCancel func() // dequeues the thread from a semaphore/flag wait queue

	// timerArmed and timerGen track a pending timed wake-up (sleep or
	// simulated I/O). They replace a per-block cancellation closure so the
	// timer path — the most frequent blocking primitive — schedules
	// nothing but a compact event record.
	timerArmed bool
	timerGen   uint64

	// intrGen invalidates stale injected-interrupt events (each
	// interruptible semaphore wait arms at most one, and every wake-up
	// bumps the generation); intrDelivered marks that the current wake-up
	// is an injected EINTR rather than a semaphore handoff.
	intrGen       uint64
	intrDelivered bool

	killed bool
	err    error // panic captured from the thread function
	owned  []*Sem

	// nice is the scheduling priority: lower values are dispatched ahead
	// of higher ones when a CPU frees up (FIFO within a level). Default 0.
	nice int

	// schedClass groups threads an exploring Chooser may treat as
	// interchangeable when their remaining compute is also equal (see
	// classToken). 0, the default, marks the thread unique.
	schedClass uint16

	// cpuTime accumulates executed compute time, for accounting tests.
	cpuTime time.Duration

	// fn is the thread body for the current round. It lives on the
	// struct (not in the launch closure) so a pooled shell can run a
	// different body each round without a fresh goroutine.
	fn func(*Task)
	// task is the reusable Task handle passed to fn; sharing one per
	// thread keeps the spawn path allocation-free.
	task Task
	// pooled marks a shell owned by the kernel's fork pool: its
	// goroutine parks for reuse after each round instead of exiting.
	pooled bool
	// drain asks a parked pooled goroutine to exit (see Kernel.Drain).
	drain bool
}

// ID returns the thread id.
func (t *Thread) ID() int { return t.id }

// Name returns the thread's debug name.
func (t *Thread) Name() string { return t.name }

// Process returns the owning process.
func (t *Thread) Process() *Process { return t.proc }

// State returns the current scheduling state.
func (t *Thread) State() ThreadState { return t.state }

// CPUTime returns the total compute time the thread has executed.
func (t *Thread) CPUTime() time.Duration { return t.cpuTime }

// Nice returns the thread's scheduling priority value.
func (t *Thread) Nice() int { return t.nice }

// SetNice sets the scheduling priority: lower values win the CPU first
// when threads compete for a freed processor (§3.2's "the priority of the
// attacker (if priority-based scheduling is used)"). It does not reorder
// a queue the thread is already waiting in.
func (t *Thread) SetNice(nice int) { t.nice = nice }

// SetScheduleClass declares the thread interchangeable, for schedule
// exploration, with every other thread of the same nonzero class whose
// remaining compute is equal (identical closures, identical state — e.g.
// a pool of load hogs). Class 0, the default, keeps the thread unique.
// Only meaningful under a Chooser; it never affects FIFO scheduling.
func (t *Thread) SetScheduleClass(class uint16) { t.schedClass = class }

// NewProcess registers a process with the given name and credentials.
func (k *Kernel) NewProcess(name string, uid, gid int) *Process {
	k.nextPID++
	if k.pooling && k.procIdx < len(k.procPool) {
		p := k.procPool[k.procIdx]
		k.procIdx++
		p.PID, p.Name, p.UID, p.GID = k.nextPID, name, uid, gid
		p.k = k
		p.threads = p.threads[:0]
		p.liveCnt = 0
		k.procs = append(k.procs, p)
		return p
	}
	p := &Process{PID: k.nextPID, Name: name, UID: uid, GID: gid, k: k}
	if k.pooling {
		k.procPool = append(k.procPool, p)
		k.procIdx = len(k.procPool)
	}
	k.procs = append(k.procs, p)
	return p
}

// Spawn creates a thread in process p running fn and makes it runnable.
// It may be called before Run or from inside a running thread function.
// On a kernel replaying a forked prefix (see Fork) the thread reuses a
// parked shell — struct, resume channel, and goroutine — from the pool;
// a recycled shell is field-reset to the exact state of a fresh thread,
// so pooled and unpooled spawns are observationally identical.
func (k *Kernel) Spawn(p *Process, name string, fn func(*Task)) *Thread {
	k.nextTID++
	var th *Thread
	if k.pooling && k.poolIdx < len(k.pool) {
		th = k.pool[k.poolIdx]
		k.poolIdx++
		th.id = k.nextTID
		th.proc = p
		th.name = name
		th.state = StateReady
		th.cpu = -1
		th.computeLeft = 0
		th.runStart = 0
		th.workPending = false
		th.workGen, th.schedGen, th.timerGen, th.intrGen = 0, 0, 0, 0
		th.blockReason = ""
		th.blockCancel = nil
		th.timerArmed = false
		th.intrDelivered = false
		th.killed = false
		th.err = nil
		th.owned = th.owned[:0]
		th.nice = 0
		th.schedClass = 0
		th.cpuTime = 0
		th.fn = fn
	} else {
		th = &Thread{
			id:     k.nextTID,
			proc:   p,
			name:   name,
			state:  StateReady,
			cpu:    -1,
			resume: make(chan struct{}),
			fn:     fn,
		}
		th.task = Task{k: k, th: th}
		if k.pooling {
			th.pooled = true
			k.pool = append(k.pool, th)
			k.poolIdx = len(k.pool)
		}
		k.launch(th)
	}
	k.threads = append(k.threads, th)
	p.threads = append(p.threads, th)
	p.liveCnt++
	k.live++
	if k.tracing() {
		k.emitThread(th, Event{Kind: EvSpawn, Label: name})
	}
	k.makeReady(th)
	return th
}

// launch starts the coroutine for th. The goroutine parks until the kernel
// first hands it the control token, runs th.fn, then retires the thread in
// the epilogue and keeps driving the event loop until the token moves on.
// During unwindLive the epilogue instead hands the token straight back to
// the unwinder. A pooled shell then parks again, waiting to be re-enlisted
// (with a new body) by a later Spawn on the same kernel; an unpooled
// goroutine exits. Both the normal and the unwound round end with the
// goroutine back at the resume park, so recycling needs no extra
// synchronization beyond the existing token handshake.
func (k *Kernel) launch(th *Thread) {
	go func() {
		for {
			<-th.resume
			if th.drain {
				return
			}
			th.runRound(k)
			if !th.pooled {
				return
			}
		}
	}()
}

// runRound executes one round's thread body with the epilogue that retires
// the thread and keeps driving the event loop until the token moves on.
func (th *Thread) runRound(k *Kernel) {
	defer func() {
		if r := recover(); r != nil {
			if _, isKill := r.(killSignal); !isKill {
				th.err = fmt.Errorf("sim: thread %q panicked: %v", th.name, r)
			}
		}
		if k.unwinding {
			k.mainResume <- struct{}{}
			return
		}
		k.finishThread(th)
		k.runLoop(th, true)
	}()
	if !th.killed {
		th.fn(&th.task)
	}
}

// finishThread retires an exited thread and triggers process-exit hooks.
func (k *Kernel) finishThread(th *Thread) {
	if th.state == StateRunning {
		k.runningCnt--
	}
	wasOnCPU := th.cpu >= 0
	cpuID := th.cpu
	th.state = StateDone
	th.schedGen++
	th.workGen++
	th.workPending = false
	th.cpu = -1
	k.live--
	th.proc.liveCnt--
	// A killed thread may die holding inode semaphores; hand them to the
	// next waiter so unrelated threads cannot hang on a leaked lock.
	for len(th.owned) > 0 {
		s := th.owned[len(th.owned)-1]
		th.owned = th.owned[:len(th.owned)-1]
		if s.owner == th {
			s.handoff(k)
		}
	}
	if k.tracing() {
		k.emitThread(th, Event{Kind: EvExit, Label: th.name})
	}
	if th.err != nil && k.userErr == nil {
		k.userErr = th.err
	}
	if wasOnCPU {
		c := k.cpus[cpuID]
		c.th = nil
		k.dispatchCPU(c)
	}
	if th.proc.liveCnt == 0 && k.onProcessExit != nil {
		k.onProcessExit(th.proc)
	}
}

// Kill requests asynchronous termination of a thread. The thread unwinds at
// its next simulation interaction point. Killing a Done thread is a no-op.
func (k *Kernel) Kill(th *Thread) {
	if th.state == StateDone || th.killed {
		return
	}
	th.killed = true
	switch th.state {
	case StateRunning:
		// Cancel pending work/quantum and unwind immediately.
		th.workGen++
		th.schedGen++
		th.workPending = false
		k.pendingOps++
		k.schedule(k.now, func() {
			k.pendingOps--
			if th.state != StateRunning {
				return
			}
			k.runningCnt--
			c := k.cpus[th.cpu]
			th.cpu = -1
			c.th = nil
			th.state = StateBlocked // not schedulable; resumed once to unwind
			k.dispatchCPU(c)
			k.wake(th)
		})
	case StateReady:
		k.removeReady(th)
		if th.cpu >= 0 {
			// Mid-dispatch: free the CPU.
			c := k.cpus[th.cpu]
			th.cpu = -1
			th.schedGen++
			c.th = nil
			k.pendingOps++
			k.scheduleKernel(k.now, evKillDispatch, nil, c, 0)
		}
		th.state = StateBlocked
		k.pendingOps++
		k.scheduleKernel(k.now, evKillWake, th, nil, 0)
	case StateBlocked:
		if th.timerArmed {
			th.timerArmed = false
			th.timerGen++
			k.timedCnt--
		}
		if th.blockCancel != nil {
			th.blockCancel()
			th.blockCancel = nil
		}
		k.pendingOps++
		k.scheduleKernel(k.now, evKillWake, th, nil, 0)
	}
}

// KillProcess kills every live thread of p.
func (k *Kernel) KillProcess(p *Process) {
	for _, th := range p.threads {
		k.Kill(th)
	}
}

// Task is the interface a thread function uses to interact with the
// simulated machine. All methods must be called only from the thread's own
// function (they yield control to the kernel loop).
type Task struct {
	k  *Kernel
	th *Thread
}

// Kernel returns the owning kernel.
func (t *Task) Kernel() *Kernel { return t.k }

// Thread returns the thread this task represents.
func (t *Task) Thread() *Thread { return t.th }

// Process returns the owning process.
func (t *Task) Process() *Process { return t.th.proc }

// Now returns the current virtual time.
func (t *Task) Now() Time { return t.k.now }

// RNG returns the kernel's deterministic random source.
func (t *Task) RNG() *rand.Rand { return t.k.rng }

// Killed reports whether this thread has been asked to terminate.
func (t *Task) Killed() bool { return t.th.killed }

func (t *Task) checkKilled() {
	if t.th.killed {
		panic(killSignal{})
	}
}

// yieldTo relinquishes the thread's turn: it performs the yield's own
// bookkeeping (what the kernel-goroutine loop used to do after the yield
// channel handshake), then drives the shared event loop on this goroutine
// until the kernel selects this thread to run again — often without any
// goroutine switch (see runLoop).
func (t *Task) yieldTo(kind yieldKind) {
	k, th := t.k, t.th
	if kind == yieldCompute {
		th.runStart = k.now
		if k.completeInline(th) {
			return
		}
		switch k.foldSegment(th) {
		case foldRetired:
			return
		case foldIneligible:
			k.scheduleWork(th)
		}
		// foldMaterialized: the segment's remainder is armed with exact
		// mid-segment state; fall through to the loop without re-arming.
	}
	k.runLoop(th, false)
}

// Compute consumes d of CPU time. The elapsed virtual time may exceed d if
// the thread is preempted or interrupted by ticks and background noise.
func (t *Task) Compute(d time.Duration) {
	t.checkKilled()
	if d <= 0 {
		return
	}
	t.th.computeLeft = d
	t.yieldTo(yieldCompute)
	t.checkKilled()
}

// ComputeJitter consumes a jittered amount of CPU time around base.
func (t *Task) ComputeJitter(base time.Duration) {
	t.Compute(t.k.JitterDuration(base))
}

// Sleep blocks the thread for d of virtual time without consuming CPU.
func (t *Task) Sleep(d time.Duration) {
	t.blockTimed("sleep", d, EvBlock)
}

// BlockIO blocks the thread on a storage operation of duration d.
func (t *Task) BlockIO(d time.Duration) {
	t.blockTimed("io", d, EvIOBlock)
}

func (t *Task) blockTimed(reason string, d time.Duration, kind EventKind) {
	t.checkKilled()
	if d <= 0 {
		return
	}
	k, th := t.k, t.th
	if k.tracing() {
		k.emitThread(th, Event{Kind: kind, Label: reason, Arg: int64(d)})
	}
	k.blockCurrent(th, reason)
	k.timedCnt++
	th.timerGen++
	th.timerArmed = true
	k.afterKernel(d, evTimerWake, th, nil, th.timerGen)
	t.yieldTo(yieldBlocked)
	t.checkKilled()
}

// YieldCPU voluntarily relinquishes the CPU, going to the back of the run
// queue if other threads are waiting.
func (t *Task) YieldCPU() {
	t.checkKilled()
	k, th := t.k, t.th
	if k.ready.Len() == 0 {
		return
	}
	k.preempt(th)
	t.yieldTo(yieldBlocked) // resumed when redispatched
	t.checkKilled()
}

// Trace emits a trace event stamped with the thread's identity. Page-fault
// traps are additionally tallied in the kernel's always-on counter block,
// with or without a tracer attached.
func (t *Task) Trace(ev Event) {
	if ev.Kind == EvTrap {
		t.k.stats.Traps++
	}
	t.k.emitThread(t.th, ev)
}

// Tracing reports whether a tracer is attached to the kernel, so callers
// on hot paths can skip building Event values that would be discarded.
func (t *Task) Tracing() bool { return t.k.tracer != nil }

// Mark emits an EvMark event with the given label.
func (t *Task) Mark(label string) { t.Trace(Event{Kind: EvMark, Label: label}) }

// Spawn creates a sibling thread in the same process.
func (t *Task) Spawn(name string, fn func(*Task)) *Thread {
	return t.k.Spawn(t.th.proc, name, fn)
}
