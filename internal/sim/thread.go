package sim

import (
	"fmt"
	"math/rand"
	"time"
)

// ThreadState is the scheduling state of a thread.
type ThreadState uint8

const (
	// StateReady means runnable, waiting for (or being dispatched to) a CPU.
	StateReady ThreadState = iota + 1
	// StateRunning means currently assigned to and executing on a CPU.
	StateRunning
	// StateBlocked means waiting on a semaphore, timer, flag, or I/O.
	StateBlocked
	// StateDone means the thread function has returned.
	StateDone
)

// String returns a short name for the state.
func (s ThreadState) String() string {
	switch s {
	case StateReady:
		return "ready"
	case StateRunning:
		return "running"
	case StateBlocked:
		return "blocked"
	case StateDone:
		return "done"
	default:
		return fmt.Sprintf("state(%d)", uint8(s))
	}
}

// Process is a group of threads sharing a credential. It mirrors the parts
// of a Unix process the experiments need: identity and ownership.
type Process struct {
	PID  int
	Name string
	UID  int
	GID  int

	k       *Kernel
	threads []*Thread
	liveCnt int
}

// Threads returns the process's threads (live and exited).
func (p *Process) Threads() []*Thread {
	out := make([]*Thread, len(p.threads))
	copy(out, p.threads)
	return out
}

// Alive reports whether any thread of the process has not exited.
func (p *Process) Alive() bool { return p.liveCnt > 0 }

// yieldKind tells yieldTo what bookkeeping the blocking primitive needs
// before the thread re-enters the event loop.
type yieldKind uint8

const (
	yieldCompute yieldKind = iota + 1
	yieldBlocked
)

// killSignal is the panic value used to unwind a killed thread function.
type killSignal struct{}

// Thread is one schedulable execution context.
type Thread struct {
	id   int
	proc *Process
	name string

	state       ThreadState
	cpu         int // CPU index while assigned, else -1
	computeLeft time.Duration
	runStart    Time
	workPending bool
	workGen     uint64 // invalidates stale work-done events
	schedGen    uint64 // invalidates stale quantum/dispatch events

	resume      chan struct{}
	blockReason string
	blockCancel func() // dequeues the thread from a semaphore/flag wait queue

	// timerArmed and timerGen track a pending timed wake-up (sleep or
	// simulated I/O). They replace a per-block cancellation closure so the
	// timer path — the most frequent blocking primitive — schedules
	// nothing but a compact event record.
	timerArmed bool
	timerGen   uint64

	// intrGen invalidates stale injected-interrupt events (each
	// interruptible semaphore wait arms at most one, and every wake-up
	// bumps the generation); intrDelivered marks that the current wake-up
	// is an injected EINTR rather than a semaphore handoff.
	intrGen       uint64
	intrDelivered bool

	killed bool
	err    error // panic captured from the thread function
	owned  []*Sem

	// nice is the scheduling priority: lower values are dispatched ahead
	// of higher ones when a CPU frees up (FIFO within a level). Default 0.
	nice int

	// schedClass groups threads an exploring Chooser may treat as
	// interchangeable when their remaining compute is also equal (see
	// classToken). 0, the default, marks the thread unique.
	schedClass uint16

	// cpuTime accumulates executed compute time, for accounting tests.
	cpuTime time.Duration
}

// ID returns the thread id.
func (t *Thread) ID() int { return t.id }

// Name returns the thread's debug name.
func (t *Thread) Name() string { return t.name }

// Process returns the owning process.
func (t *Thread) Process() *Process { return t.proc }

// State returns the current scheduling state.
func (t *Thread) State() ThreadState { return t.state }

// CPUTime returns the total compute time the thread has executed.
func (t *Thread) CPUTime() time.Duration { return t.cpuTime }

// Nice returns the thread's scheduling priority value.
func (t *Thread) Nice() int { return t.nice }

// SetNice sets the scheduling priority: lower values win the CPU first
// when threads compete for a freed processor (§3.2's "the priority of the
// attacker (if priority-based scheduling is used)"). It does not reorder
// a queue the thread is already waiting in.
func (t *Thread) SetNice(nice int) { t.nice = nice }

// SetScheduleClass declares the thread interchangeable, for schedule
// exploration, with every other thread of the same nonzero class whose
// remaining compute is equal (identical closures, identical state — e.g.
// a pool of load hogs). Class 0, the default, keeps the thread unique.
// Only meaningful under a Chooser; it never affects FIFO scheduling.
func (t *Thread) SetScheduleClass(class uint16) { t.schedClass = class }

// NewProcess registers a process with the given name and credentials.
func (k *Kernel) NewProcess(name string, uid, gid int) *Process {
	k.nextPID++
	p := &Process{PID: k.nextPID, Name: name, UID: uid, GID: gid, k: k}
	k.procs = append(k.procs, p)
	return p
}

// Spawn creates a thread in process p running fn and makes it runnable.
// It may be called before Run or from inside a running thread function.
func (k *Kernel) Spawn(p *Process, name string, fn func(*Task)) *Thread {
	k.nextTID++
	th := &Thread{
		id:     k.nextTID,
		proc:   p,
		name:   name,
		state:  StateReady,
		cpu:    -1,
		resume: make(chan struct{}),
	}
	k.threads = append(k.threads, th)
	p.threads = append(p.threads, th)
	p.liveCnt++
	k.live++
	k.emitThread(th, Event{Kind: EvSpawn, Label: name})
	k.launch(th, fn)
	k.makeReady(th)
	return th
}

// launch starts the coroutine for th. The goroutine parks until the kernel
// first hands it the control token, runs fn, then retires the thread in the
// epilogue and keeps driving the event loop until the token moves on.
// During unwindLive the epilogue instead hands the token straight back to
// the unwinder.
func (k *Kernel) launch(th *Thread, fn func(*Task)) {
	go func() {
		<-th.resume
		defer func() {
			if r := recover(); r != nil {
				if _, isKill := r.(killSignal); !isKill {
					th.err = fmt.Errorf("sim: thread %q panicked: %v", th.name, r)
				}
			}
			if k.unwinding {
				k.mainResume <- struct{}{}
				return
			}
			k.finishThread(th)
			k.runLoop(th, true)
		}()
		if !th.killed {
			fn(&Task{k: k, th: th})
		}
	}()
}

// finishThread retires an exited thread and triggers process-exit hooks.
func (k *Kernel) finishThread(th *Thread) {
	if th.state == StateRunning {
		k.runningCnt--
	}
	wasOnCPU := th.cpu >= 0
	cpuID := th.cpu
	th.state = StateDone
	th.schedGen++
	th.workGen++
	th.workPending = false
	th.cpu = -1
	k.live--
	th.proc.liveCnt--
	// A killed thread may die holding inode semaphores; hand them to the
	// next waiter so unrelated threads cannot hang on a leaked lock.
	for len(th.owned) > 0 {
		s := th.owned[len(th.owned)-1]
		th.owned = th.owned[:len(th.owned)-1]
		if s.owner == th {
			s.handoff(k)
		}
	}
	k.emitThread(th, Event{Kind: EvExit, Label: th.name})
	if th.err != nil && k.userErr == nil {
		k.userErr = th.err
	}
	if wasOnCPU {
		c := k.cpus[cpuID]
		c.th = nil
		k.dispatchCPU(c)
	}
	if th.proc.liveCnt == 0 && k.onProcessExit != nil {
		k.onProcessExit(th.proc)
	}
}

// Kill requests asynchronous termination of a thread. The thread unwinds at
// its next simulation interaction point. Killing a Done thread is a no-op.
func (k *Kernel) Kill(th *Thread) {
	if th.state == StateDone || th.killed {
		return
	}
	th.killed = true
	switch th.state {
	case StateRunning:
		// Cancel pending work/quantum and unwind immediately.
		th.workGen++
		th.schedGen++
		th.workPending = false
		k.pendingOps++
		k.schedule(k.now, func() {
			k.pendingOps--
			if th.state != StateRunning {
				return
			}
			k.runningCnt--
			c := k.cpus[th.cpu]
			th.cpu = -1
			c.th = nil
			th.state = StateBlocked // not schedulable; resumed once to unwind
			k.dispatchCPU(c)
			k.wake(th)
		})
	case StateReady:
		k.removeReady(th)
		if th.cpu >= 0 {
			// Mid-dispatch: free the CPU.
			c := k.cpus[th.cpu]
			th.cpu = -1
			th.schedGen++
			c.th = nil
			k.pendingOps++
			k.schedule(k.now, func() { k.pendingOps--; k.dispatchCPU(c) })
		}
		th.state = StateBlocked
		k.pendingOps++
		k.schedule(k.now, func() { k.pendingOps--; k.wake(th) })
	case StateBlocked:
		if th.timerArmed {
			th.timerArmed = false
			th.timerGen++
			k.timedCnt--
		}
		if th.blockCancel != nil {
			th.blockCancel()
			th.blockCancel = nil
		}
		k.pendingOps++
		k.schedule(k.now, func() { k.pendingOps--; k.wake(th) })
	}
}

// KillProcess kills every live thread of p.
func (k *Kernel) KillProcess(p *Process) {
	for _, th := range p.threads {
		k.Kill(th)
	}
}

// Task is the interface a thread function uses to interact with the
// simulated machine. All methods must be called only from the thread's own
// function (they yield control to the kernel loop).
type Task struct {
	k  *Kernel
	th *Thread
}

// Kernel returns the owning kernel.
func (t *Task) Kernel() *Kernel { return t.k }

// Thread returns the thread this task represents.
func (t *Task) Thread() *Thread { return t.th }

// Process returns the owning process.
func (t *Task) Process() *Process { return t.th.proc }

// Now returns the current virtual time.
func (t *Task) Now() Time { return t.k.now }

// RNG returns the kernel's deterministic random source.
func (t *Task) RNG() *rand.Rand { return t.k.rng }

// Killed reports whether this thread has been asked to terminate.
func (t *Task) Killed() bool { return t.th.killed }

func (t *Task) checkKilled() {
	if t.th.killed {
		panic(killSignal{})
	}
}

// yieldTo relinquishes the thread's turn: it performs the yield's own
// bookkeeping (what the kernel-goroutine loop used to do after the yield
// channel handshake), then drives the shared event loop on this goroutine
// until the kernel selects this thread to run again — often without any
// goroutine switch (see runLoop).
func (t *Task) yieldTo(kind yieldKind) {
	k, th := t.k, t.th
	if kind == yieldCompute {
		th.runStart = k.now
		k.scheduleWork(th)
	}
	k.runLoop(th, false)
}

// Compute consumes d of CPU time. The elapsed virtual time may exceed d if
// the thread is preempted or interrupted by ticks and background noise.
func (t *Task) Compute(d time.Duration) {
	t.checkKilled()
	if d <= 0 {
		return
	}
	t.th.computeLeft = d
	t.yieldTo(yieldCompute)
	t.checkKilled()
}

// ComputeJitter consumes a jittered amount of CPU time around base.
func (t *Task) ComputeJitter(base time.Duration) {
	t.Compute(t.k.JitterDuration(base))
}

// Sleep blocks the thread for d of virtual time without consuming CPU.
func (t *Task) Sleep(d time.Duration) {
	t.blockTimed("sleep", d, EvBlock)
}

// BlockIO blocks the thread on a storage operation of duration d.
func (t *Task) BlockIO(d time.Duration) {
	t.blockTimed("io", d, EvIOBlock)
}

func (t *Task) blockTimed(reason string, d time.Duration, kind EventKind) {
	t.checkKilled()
	if d <= 0 {
		return
	}
	k, th := t.k, t.th
	k.emitThread(th, Event{Kind: kind, Label: reason, Arg: int64(d)})
	k.blockCurrent(th, reason)
	k.timedCnt++
	th.timerGen++
	th.timerArmed = true
	k.afterKernel(d, evTimerWake, th, nil, th.timerGen)
	t.yieldTo(yieldBlocked)
	t.checkKilled()
}

// YieldCPU voluntarily relinquishes the CPU, going to the back of the run
// queue if other threads are waiting.
func (t *Task) YieldCPU() {
	t.checkKilled()
	k, th := t.k, t.th
	if k.ready.Len() == 0 {
		return
	}
	k.preempt(th)
	t.yieldTo(yieldBlocked) // resumed when redispatched
	t.checkKilled()
}

// Trace emits a trace event stamped with the thread's identity. Page-fault
// traps are additionally tallied in the kernel's always-on counter block,
// with or without a tracer attached.
func (t *Task) Trace(ev Event) {
	if ev.Kind == EvTrap {
		t.k.stats.Traps++
	}
	t.k.emitThread(t.th, ev)
}

// Mark emits an EvMark event with the given label.
func (t *Task) Mark(label string) { t.Trace(Event{Kind: EvMark, Label: label}) }

// Spawn creates a sibling thread in the same process.
func (t *Task) Spawn(name string, fn func(*Task)) *Thread {
	return t.k.Spawn(t.th.proc, name, fn)
}
