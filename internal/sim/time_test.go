package sim

import (
	"strings"
	"testing"
	"time"
)

func TestTimeHelpers(t *testing.T) {
	base := Time(1500) // 1.5µs
	if base.Micros() != 1.5 {
		t.Errorf("Micros = %v", base.Micros())
	}
	if got := base.Add(time.Microsecond); got != Time(2500) {
		t.Errorf("Add = %v", got)
	}
	if got := Time(5000).Sub(Time(2000)); got != 3*time.Microsecond {
		t.Errorf("Sub = %v", got)
	}
	if base.Duration() != 1500*time.Nanosecond {
		t.Errorf("Duration = %v", base.Duration())
	}
	if !strings.Contains(base.String(), "1.5") {
		t.Errorf("String = %q", base.String())
	}
	if Micros(2.5) != 2500*time.Nanosecond {
		t.Errorf("Micros helper = %v", Micros(2.5))
	}
	if Millis(1.5) != 1500*time.Microsecond {
		t.Errorf("Millis helper = %v", Millis(1.5))
	}
}

func TestEventKindStrings(t *testing.T) {
	if EvSyscallEnter.String() != "enter" || EvSemBlock.String() != "sem-block" {
		t.Error("kind names wrong")
	}
	if EventKind(200).String() != "kind(200)" {
		t.Errorf("unknown kind = %q", EventKind(200).String())
	}
}

func TestThreadStateStrings(t *testing.T) {
	for s, want := range map[ThreadState]string{
		StateReady: "ready", StateRunning: "running", StateBlocked: "blocked", StateDone: "done",
	} {
		if s.String() != want {
			t.Errorf("%d = %q, want %q", s, s.String(), want)
		}
	}
	if ThreadState(9).String() != "state(9)" {
		t.Errorf("unknown = %q", ThreadState(9).String())
	}
}

func TestEventString(t *testing.T) {
	e := Event{T: Time(1000), Kind: EvSyscallEnter, CPU: 1, PID: 2, TID: 3, Label: "stat", Path: "/x", Arg: 7}
	s := e.String()
	for _, want := range []string{"enter", "stat", "/x", "arg=7", "pid2"} {
		if !strings.Contains(s, want) {
			t.Errorf("event string missing %q: %q", want, s)
		}
	}
}

func TestCountTracer(t *testing.T) {
	ct := &CountTracer{}
	cfg := testConfig(1)
	cfg.Tracer = ct
	k := New(cfg)
	p := k.NewProcess("p", 0, 0)
	k.Spawn(p, "t", func(task *Task) { task.Compute(time.Millisecond) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if ct.Counts[EvSpawn] != 1 || ct.Counts[EvExit] != 1 {
		t.Errorf("counts = %v", ct.Counts)
	}
}

func TestProcessAccessors(t *testing.T) {
	k := New(testConfig(1))
	p := k.NewProcess("proc", 5, 6)
	th := k.Spawn(p, "t", func(task *Task) {
		if task.Process() != p || task.Kernel() != k || task.Thread() == nil {
			t.Error("task accessors broken")
		}
		if task.RNG() == nil {
			t.Error("rng missing")
		}
	})
	if !p.Alive() {
		t.Error("process should be alive before run")
	}
	if len(p.Threads()) != 1 || p.Threads()[0] != th {
		t.Error("threads accessor broken")
	}
	if th.Name() != "t" || th.Process() != p {
		t.Error("thread accessors broken")
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if p.Alive() {
		t.Error("process should be done after run")
	}
}
