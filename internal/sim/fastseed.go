package sim

import (
	"math/rand"
	"unsafe"
)

// This file makes Kernel.Reset's RNG reseed cheap. math/rand's Seed costs
// 1841 sequential Lehmer (48271·x mod 2³¹−1) steps computed with Schrage
// divisions, which profiling shows is ~15% of a short simulation round once
// the rest of the hot path is allocation-free. fastSource is a bit-exact
// replica of math/rand's additive lagged-Fibonacci generator whose Seed
// replaces the Schrage chain with Mersenne-prime reductions split into
// eight independent jump-ahead lanes (x_{k+8} = 48271⁸·x_k mod M), so the
// multiply chain's data dependency is 8x shorter and the CPU can overlap
// the lanes. The emitted streams are validated against math/rand for a
// spread of seeds at init; any mismatch (e.g. a changed runtime layout
// breaking the cooked-table extraction) silently falls back to the stdlib
// source, keeping correctness independent of the fast path.

const (
	rngLen  = 607
	rngTap  = 273
	lehmerM = (1 << 31) - 1 // 2³¹−1, prime modulus of the seeding LCG
	lehmerA = 48271
)

// rngCookedTab is math/rand's rngCooked warm-up table, recovered at init by
// XORing a freshly seeded stdlib source's state vector with the seeding
// LCG's contribution (vec[i] = lcg_i ^ cooked[i], and lcg_i is reproducible
// here). Recovering it at runtime avoids copying the 607-entry literal and
// self-verifies: if the extraction reads garbage, validation fails and the
// fast path is disabled.
var rngCookedTab [rngLen]uint64

// fastSeedOK reports that fastSource reproduced math/rand bit-for-bit
// during init-time validation.
var fastSeedOK bool

// lehmerMul advances one Lehmer step with multiplier a (a < 2³¹): one
// 64-bit multiply and a Mersenne-prime fold instead of Schrage's two
// divisions. x, result ∈ [1, M−1].
func lehmerMul(x, a uint64) uint64 {
	p := a * x
	p = (p & lehmerM) + (p >> 31)
	if p >= lehmerM {
		p -= lehmerM
	}
	return p
}

// lehmerPow[i] is 48271^(i+1) mod M. With the power table precomputed the
// i-th seeding-LCG value is the single independent product
// lehmerPow[i]·seed mod M — no dependency chain at all — so Seed runs at
// multiplier throughput instead of fold-latency.
var lehmerPow [1848]uint64

func init() {
	x := uint64(1)
	for i := range lehmerPow {
		x = lehmerMul(x, lehmerA)
		lehmerPow[i] = x
	}
	initFastSeed()
	initFastDist()
}

// normSeed maps an arbitrary seed onto the Lehmer LCG's state space
// [1, M−1], matching math/rand's normalization exactly.
func normSeed(seed int64) uint64 {
	seed %= lehmerM
	if seed < 0 {
		seed += lehmerM
	}
	if seed == 0 {
		seed = 89482311
	}
	return uint64(seed)
}

// seedLCG writes the 1841 consecutive seeding-LCG values s_1..s_1841
// derived from seed into out, each as an independent product with the
// precomputed power table.
func seedLCG(seed int64, out *[1848]uint64) {
	x := normSeed(seed)
	for i := range out {
		out[i] = lehmerMul(lehmerPow[i], x)
	}
}

// fastSource is a drop-in rand.Source64 producing streams bit-identical to
// rand.NewSource(seed): the same additive lagged-Fibonacci recurrence over
// the same seeded state vector.
type fastSource struct {
	tap, feed int
	vec       [rngLen]int64
}

// Seed resets the generator to the exact state math/rand's Seed(seed)
// produces: vec[i] packs three consecutive seeding-LCG values (after a
// 20-step warm-up) XORed with the cooked table. The LCG values are
// computed inline from the power table — three independent multiplies per
// entry, no intermediate array.
func (s *fastSource) Seed(seed int64) {
	x := normSeed(seed)
	s.tap = 0
	s.feed = rngLen - rngTap
	pw := lehmerPow[20 : 20+3*rngLen : 20+3*rngLen]
	for i := 0; i < rngLen; i++ {
		base := 3 * i
		u := lehmerMul(pw[base], x)<<40 ^
			lehmerMul(pw[base+1], x)<<20 ^
			lehmerMul(pw[base+2], x) ^
			rngCookedTab[i]
		s.vec[i] = int64(u)
	}
}

// Uint64 mirrors math/rand's rngSource.Uint64.
func (s *fastSource) Uint64() uint64 {
	s.tap--
	if s.tap < 0 {
		s.tap += rngLen
	}
	s.feed--
	if s.feed < 0 {
		s.feed += rngLen
	}
	x := s.vec[s.feed] + s.vec[s.tap]
	s.vec[s.feed] = x
	return uint64(x)
}

// Int63 mirrors math/rand's rngSource.Int63.
func (s *fastSource) Int63() int64 { return int64(s.Uint64() &^ (1 << 63)) }

// rngMirror matches the runtime layout of math/rand's unexported rngSource,
// read (never written) through the source interface's data pointer during
// init-time extraction and validation.
type rngMirror struct {
	tap, feed int
	vec       [rngLen]int64
}

// mirrorOf returns the state of a stdlib source created by rand.NewSource.
func mirrorOf(s rand.Source) *rngMirror {
	type iface struct{ tab, data unsafe.Pointer }
	return (*rngMirror)((*iface)(unsafe.Pointer(&s)).data)
}

// initFastSeed recovers the cooked table and validates the replica.
// fastSeedOK stays false unless every check passes.
func initFastSeed() {
	ref := mirrorOf(rand.NewSource(1))
	var lcg [1848]uint64
	seedLCG(1, &lcg)
	for i := 0; i < rngLen; i++ {
		u := lcg[20+3*i]<<40 ^ lcg[20+3*i+1]<<20 ^ lcg[20+3*i+2]
		rngCookedTab[i] = uint64(ref.vec[i]) ^ u
	}
	for _, seed := range []int64{1, 2, 42, 1007, -9, 3 << 60, lehmerM} {
		want := mirrorOf(rand.NewSource(seed))
		var got fastSource
		got.Seed(seed)
		if got.tap != want.tap || got.feed != want.feed || got.vec != want.vec {
			return
		}
	}
	// Behavioral spot check through the rand.Rand wrapper, covering the
	// Int63/Uint64/Float64 paths the kernel draws from.
	var fsrc fastSource
	fsrc.Seed(1007)
	a := rand.New(&fsrc)
	b := rand.New(rand.NewSource(1007))
	for i := 0; i < 256; i++ {
		if a.Int63() != b.Int63() || a.Uint64() != b.Uint64() || a.Float64() != b.Float64() {
			return
		}
	}
	fastSeedOK = true
}

// newKernelSource returns the RNG source for a kernel: the validated fast
// replica when available, the stdlib source otherwise. The second return
// is non-nil only for the fast path and enables direct reseeding.
func newKernelSource(seed int64) (rand.Source, *fastSource) {
	if fastSeedOK {
		s := &fastSource{}
		s.Seed(seed)
		return s, s
	}
	return rand.NewSource(seed), nil
}
