package sim

import (
	"errors"
	"fmt"
	"time"
)

// ErrInterrupted is returned by Sem.AcquireInterruptible when an injected
// signal-style interruption (see Config.Interrupter) cancels the wait
// before ownership was handed over — the simulated analogue of a syscall
// returning EINTR out of an interruptible down() on an inode semaphore.
var ErrInterrupted = errors.New("sim: semaphore wait interrupted")

// Interrupter decides, at the instant a thread blocks in an interruptible
// semaphore acquire, whether a signal-style interruption should be
// delivered to that wait and after how much virtual time. Implementations
// must be deterministic functions of their own state (the fault layer uses
// a dedicated per-round RNG stream) and must not call back into the
// kernel. A wait whose ownership is handed over before the chosen instant
// is no longer interrupted; the stale delivery is discarded.
type Interrupter interface {
	// SemBlocked is asked whether (and after how much virtual time) the
	// wait th just entered should be interrupted.
	SemBlocked(th *Thread, sem string) (delay time.Duration, interrupt bool)
	// SemInterrupted observes an interruption that was actually delivered
	// (the wait was still pending at the chosen instant).
	SemInterrupted(th *Thread)
}

// Sem is a mutual-exclusion semaphore with a FIFO wait queue, modeling the
// per-inode i_sem of Unix-style file systems. Ownership is handed directly
// to the head waiter on release, exactly the "competition for the
// semaphore" dynamics of the paper's §3.4: whichever of the victim's and
// attacker's system calls acquires the inode semaphore first delays the
// other for its full critical section.
type Sem struct {
	name string
	// blockLabel caches "sem:"+name so the contended-acquire path does not
	// concatenate a fresh block-reason string per blocking event.
	blockLabel string
	owner      *Thread
	waiters    []*Thread
}

// NewSem creates a semaphore with a debug/trace name.
func NewSem(name string) *Sem { return &Sem{name: name, blockLabel: "sem:" + name} }

// Owner returns the current owner thread, or nil. Exposed for tests.
func (s *Sem) Owner() *Thread { return s.owner }

// Rename relabels the semaphore; used when a recycled semaphore serves a
// new object identity.
func (s *Sem) Rename(name string) {
	if s.name == name {
		return
	}
	s.name = name
	s.blockLabel = "sem:" + name
}

// ResetState clears the owner and wait queue so a recycled semaphore can
// serve a new simulation round. The owner of a normally completed run is
// always nil already; an aborted run's force-unwound threads may still sit
// in the queue.
func (s *Sem) ResetState() {
	s.owner = nil
	clear(s.waiters)
	s.waiters = s.waiters[:0]
}

// Waiters returns the number of queued waiters. Exposed for tests.
func (s *Sem) Waiters() int { return len(s.waiters) }

// Acquire blocks the calling thread until it owns the semaphore.
// Acquiring a semaphore the thread already owns is a programming error and
// unwinds the thread with an error.
func (s *Sem) Acquire(t *Task) {
	t.checkKilled()
	if s.tryFast(t) {
		return
	}
	s.acquireSlow(t, false)
}

// AcquireInterruptible is Acquire for wait sites that model Linux's
// down_interruptible: if the kernel has an Interrupter installed and it
// elects to interrupt this wait, the call returns ErrInterrupted after the
// chosen virtual-time delay without acquiring the semaphore. With no
// Interrupter (the default) it is exactly Acquire and always returns nil.
func (s *Sem) AcquireInterruptible(t *Task) error {
	t.checkKilled()
	if s.tryFast(t) {
		return nil
	}
	return s.acquireSlow(t, true)
}

// tryFast takes an uncontended semaphore without blocking, or panics on a
// recursive acquire. Returns false when the caller must queue.
func (s *Sem) tryFast(t *Task) bool {
	k, th := t.k, t.th
	if s.owner == nil {
		s.owner = th
		th.owned = append(th.owned, s)
		k.stats.SemAcquires++
		if k.tracing() {
			k.emitThread(th, Event{Kind: EvSemAcquire, Label: s.name})
		}
		return true
	}
	if s.owner == th {
		panic(fmt.Sprintf("sim: thread %q recursively acquired semaphore %q", th.name, s.name))
	}
	return false
}

// acquireSlow queues the thread and blocks until ownership is handed over
// or — on an interruptible wait the Interrupter chose to break — the
// injected interruption wakes it empty-handed.
func (s *Sem) acquireSlow(t *Task, interruptible bool) error {
	k, th := t.k, t.th
	s.waiters = append(s.waiters, th)
	k.stats.SemBlocks++
	blockedAt := k.now
	if k.tracing() {
		k.emitThread(th, Event{Kind: EvSemBlock, Label: s.name})
	}
	th.blockCancel = func() { s.removeWaiter(th) }
	if interruptible {
		if in := k.cfg.Interrupter; in != nil {
			if d, ok := in.SemBlocked(th, s.name); ok {
				th.intrGen++
				k.pendingOps++
				k.afterKernel(d, evSemIntr, th, nil, th.intrGen)
			}
		}
	}
	k.blockCurrent(th, s.blockLabel)
	t.yieldTo(yieldBlocked)
	th.intrGen++ // invalidate any still-armed interrupt delivery
	t.checkKilled()
	if th.intrDelivered {
		th.intrDelivered = false
		return ErrInterrupted
	}
	// Release handed us ownership before waking us.
	th.owned = append(th.owned, s)
	k.stats.SemAcquires++
	k.stats.SemWaitNs += int64(k.now.Sub(blockedAt))
	k.emitThread(th, Event{Kind: EvSemAcquire, Label: s.name})
	return nil
}

// semIntrFire delivers an armed interruption to th's semaphore wait. The
// delivery is stale — and discarded — if the wait already ended (ownership
// handoff bumped intrGen when the thread resumed, or the thread was
// killed). pendingOps keeps the deadlock detector aware of the in-flight
// event either way.
func (k *Kernel) semIntrFire(th *Thread, gen uint64) {
	k.pendingOps--
	if th.intrGen != gen || th.state != StateBlocked || th.killed {
		return
	}
	if th.blockCancel != nil {
		th.blockCancel()
		th.blockCancel = nil
	}
	th.intrDelivered = true
	k.emitThread(th, Event{Kind: EvFault, Label: "eintr"})
	if in := k.cfg.Interrupter; in != nil {
		in.SemInterrupted(th)
	}
	k.makeReady(th)
}

// Release transfers the semaphore to the head waiter, or frees it. Only the
// owner may release.
func (s *Sem) Release(t *Task) {
	t.checkKilled()
	k, th := t.k, t.th
	if s.owner != th {
		panic(fmt.Sprintf("sim: thread %q released semaphore %q it does not own", th.name, s.name))
	}
	if k.tracing() {
		k.emitThread(th, Event{Kind: EvSemRelease, Label: s.name})
	}
	th.disown(s)
	s.handoff(k)
}

// handoff transfers ownership to the next waiter or frees the semaphore.
// FIFO by default; under a Chooser the wake order is a choice point — real
// kernels make no FIFO promise for i_sem, and the winner of the paper's
// §3.4 semaphore competition is exactly what exploration must enumerate.
func (s *Sem) handoff(k *Kernel) {
	if len(s.waiters) > 0 {
		i := k.chooseWaiter(s.waiters)
		w := s.waiters[i]
		s.waiters = append(s.waiters[:i], s.waiters[i+1:]...)
		w.blockCancel = nil
		s.owner = w
		w.owned = append(w.owned, s)
		k.makeReady(w)
		return
	}
	s.owner = nil
}

// disown removes s from the thread's owned-semaphore list.
func (th *Thread) disown(s *Sem) {
	for i, o := range th.owned {
		if o == s {
			th.owned = append(th.owned[:i], th.owned[i+1:]...)
			return
		}
	}
}

func (s *Sem) removeWaiter(th *Thread) {
	for i, w := range s.waiters {
		if w == th {
			s.waiters = append(s.waiters[:i], s.waiters[i+1:]...)
			return
		}
	}
}

// Flag is a one-shot condition: threads Wait until some thread calls Set.
// It models the lightweight signaling the pipelined attacker (§7) uses to
// hand the symlink step to its second thread.
type Flag struct {
	name       string
	blockLabel string // cached "flag:"+name, see Sem.blockLabel
	set        bool
	waiters    []*Thread
}

// NewFlag creates a flag with a debug/trace name.
func NewFlag(name string) *Flag { return &Flag{name: name, blockLabel: "flag:" + name} }

// IsSet reports whether the flag has been set.
func (f *Flag) IsSet() bool { return f.set }

// Wait blocks the calling thread until the flag is set. Returns immediately
// if it already is.
func (f *Flag) Wait(t *Task) {
	t.checkKilled()
	if f.set {
		return
	}
	k, th := t.k, t.th
	f.waiters = append(f.waiters, th)
	th.blockCancel = func() { f.removeWaiter(th) }
	k.blockCurrent(th, f.blockLabel)
	t.yieldTo(yieldBlocked)
	t.checkKilled()
}

// Set sets the flag and wakes all waiters.
func (f *Flag) Set(t *Task) {
	t.checkKilled()
	if f.set {
		return
	}
	f.set = true
	k := t.k
	for _, w := range f.waiters {
		w.blockCancel = nil
		k.makeReady(w)
	}
	f.waiters = nil
}

func (f *Flag) removeWaiter(th *Thread) {
	for i, w := range f.waiters {
		if w == th {
			f.waiters = append(f.waiters[:i], f.waiters[i+1:]...)
			return
		}
	}
}
