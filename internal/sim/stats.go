package sim

import "time"

// MaxStatCPUs is the per-CPU accounting capacity of KernelStats. It is a
// fixed array bound (not a slice) so the counter block stays a plain
// comparable value that is reset by a single struct assignment and copied
// out without allocating. Simulated machines use at most 4 CPUs; a config
// beyond the capacity folds the excess processors into the last slot.
const MaxStatCPUs = 8

// KernelStats is the kernel's always-on observability counter block: the
// per-round scheduling, synchronization, interrupt, and CPU-time figures
// the paper's event analyses (§5–§6) are built from. The kernel maintains
// it inline — plain integer fields bumped on the hot scheduling paths, no
// map, no allocation, no tracer required — and Kernel.Reset clears it with
// the rest of the machine state, so every simulation round starts from
// zero and campaign-level aggregation stays a pure fold over rounds.
type KernelStats struct {
	// Dispatches counts completed CPU dispatches (a thread starting to
	// run after context-switch latency, mirroring EvDispatch).
	Dispatches int64
	// Preemptions counts quantum-expiry and voluntary-yield preemptions
	// (mirroring EvPreempt).
	Preemptions int64
	// SemBlocks counts contended semaphore acquisitions (the caller had
	// to block; mirrors EvSemBlock), SemAcquires all acquisitions.
	SemBlocks   int64
	SemAcquires int64
	// SemWaitNs totals the virtual time threads spent blocked on
	// semaphores — the §3.4 "competition for the semaphore" cost.
	SemWaitNs int64
	// Traps counts page-fault traps (libc stub demand paging, §6.2.2).
	Traps int64
	// Ticks counts timer interrupts; TickNs totals their handling cost.
	Ticks  int64
	TickNs int64
	// NoiseBursts counts softirq/daemon activity bursts; NoiseNs totals
	// the virtual time they occupied CPUs.
	NoiseBursts int64
	NoiseNs     int64
	// CPUs records the simulated processor count, and BusyNs[i] the
	// virtual time CPU i spent executing user compute. Idle time is
	// derived: end×CPUs − ΣBusyNs (see IdleNs).
	CPUs   int32
	BusyNs [MaxStatCPUs]int64
}

// reset clears the counters for a machine with the given CPU count.
func (s *KernelStats) reset(cpus int) {
	*s = KernelStats{CPUs: int32(cpus)}
}

// addBusy charges d of executed compute to CPU id.
func (s *KernelStats) addBusy(id int, d time.Duration) {
	if id < 0 {
		return
	}
	if id >= MaxStatCPUs {
		id = MaxStatCPUs - 1
	}
	s.BusyNs[id] += int64(d)
}

// BusyTotalNs returns the summed per-CPU busy time.
func (s *KernelStats) BusyTotalNs() int64 {
	var t int64
	for _, b := range s.BusyNs {
		t += b
	}
	return t
}

// IdleNs derives the aggregate idle time at instant end: the virtual time
// the machine's CPUs were not executing user compute (scheduling latency,
// blocked threads, and true idleness; interrupt and noise occupancy is
// reported separately via TickNs/NoiseNs).
func (s *KernelStats) IdleNs(end Time) int64 {
	idle := int64(end)*int64(s.CPUs) - s.BusyTotalNs()
	if idle < 0 {
		idle = 0
	}
	return idle
}

// Stats returns a snapshot of the kernel's counter block. The returned
// value is independent of the kernel; reading it after Run reports the
// completed simulation's totals.
func (k *Kernel) Stats() KernelStats { return k.stats }
