package sim

import (
	"testing"
	"time"
)

// TestDispatchTieChoice: a scripted chooser picks the second member of the
// front tie group, overriding FIFO dispatch. Threads dispatch at spawn
// time, so a "holder" occupies the CPU first and the tie forms behind it;
// the choice point fires when the holder blocks.
func TestDispatchTieChoice(t *testing.T) {
	run := func(ch Chooser) []string {
		k := New(Config{CPUs: 1, Quantum: 10 * time.Millisecond, Chooser: ch})
		proc := k.NewProcess("p", 0, 0)
		var order []string
		k.Spawn(proc, "holder", func(t *Task) { t.Sleep(time.Millisecond) })
		for _, name := range []string{"first", "second"} {
			name := name
			k.Spawn(proc, name, func(t *Task) {
				order = append(order, name)
				t.Compute(time.Microsecond)
			})
		}
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return order
	}
	fifo := run(&ScriptChooser{Script: []int{0}})
	if fifo[0] != "first" {
		t.Fatalf("script [0] dispatched %v", fifo)
	}
	flipped := run(&ScriptChooser{Script: []int{1}})
	if flipped[0] != "second" {
		t.Fatalf("script [1] dispatched %v", flipped)
	}
}

// TestSemWakeOrderChoice: the chooser selects which waiter inherits the
// semaphore on release.
func TestSemWakeOrderChoice(t *testing.T) {
	run := func(ch Chooser) []string {
		// Choice sequence: (0) the dispatch tie between w1/w2 once the
		// owner blocks holding the sem, (1) the 2-waiter handoff at the
		// owner's release. The second handoff has one waiter: no choice.
		k := New(Config{CPUs: 1, Quantum: 10 * time.Millisecond, Chooser: ch})
		proc := k.NewProcess("p", 0, 0)
		sem := NewSem("s")
		var acquired []string
		k.Spawn(proc, "owner", func(t *Task) {
			sem.Acquire(t)
			acquired = append(acquired, "owner")
			t.Sleep(time.Millisecond) // hold the sem so both workers queue
			sem.Release(t)
		})
		worker := func(name string) func(*Task) {
			return func(t *Task) {
				sem.Acquire(t)
				acquired = append(acquired, name)
				t.Compute(time.Microsecond)
				sem.Release(t)
			}
		}
		k.Spawn(proc, "w1", worker("w1"))
		k.Spawn(proc, "w2", worker("w2"))
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return acquired
	}
	// FIFO everywhere: owner, then w1, then w2.
	fifo := run(&ScriptChooser{Script: []int{0, 0}})
	if fifo[0] != "owner" || fifo[1] != "w1" || fifo[2] != "w2" {
		t.Fatalf("fifo script acquired %v", fifo)
	}
	// Same dispatch order, but the handoff picks waiter 1 (w2).
	flipped := run(&ScriptChooser{Script: []int{0, 1}})
	if flipped[0] != "owner" || flipped[1] != "w2" || flipped[2] != "w1" {
		t.Fatalf("flipped wake acquired %v", flipped)
	}
}

// alwaysFire answers every Bernoulli choice with "occur" and uniform
// choices with 0.
type alwaysFire struct{}

func (alwaysFire) Choose(_ *Kernel, c Choice) int {
	if c.PNum > 0 {
		return 1
	}
	return 0
}

// TestNoiseSlotBound: with an always-fire chooser the injected burst count
// stops exactly at the preemption bound.
func TestNoiseSlotBound(t *testing.T) {
	k := New(Config{
		CPUs:    1,
		Quantum: 50 * time.Millisecond,
		Chooser: alwaysFire{},
		NoiseSlots: NoiseSlotConfig{
			Period:     time.Millisecond,
			Burst:      200 * time.Microsecond,
			Prob:       0.5,
			Bound:      2,
			PruneNoops: true,
		},
	})
	proc := k.NewProcess("p", 0, 0)
	k.Spawn(proc, "busy", func(t *Task) { t.Compute(10 * time.Millisecond) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if got := k.Stats().NoiseBursts; got != 2 {
		t.Fatalf("NoiseBursts = %d, want the bound 2", got)
	}
	// Each burst delayed the 10ms compute by 200µs; completion moved from
	// 10ms to 10.4ms (plus the context switch).
	if end := k.Now(); end < Time(10*time.Millisecond+400*time.Microsecond) {
		t.Fatalf("bursts did not delay completion: end = %v", end)
	}
}

// TestNoiseSlotNoopPruneEquivalence: with pruning disabled, firing a
// burst at a no-op slot (nothing mid-compute) must not change the
// simulated outcome — the soundness claim PruneNoops relies on.
func TestNoiseSlotNoopPruneEquivalence(t *testing.T) {
	run := func(prune bool) Time {
		k := New(Config{
			CPUs:    2, // second CPU stays idle: all its slots are no-ops
			Quantum: 50 * time.Millisecond,
			Chooser: alwaysFire{},
			NoiseSlots: NoiseSlotConfig{
				Period:     time.Millisecond,
				Burst:      300 * time.Microsecond,
				Prob:       0.5,
				Bound:      0,
				PruneNoops: prune,
			},
		})
		proc := k.NewProcess("p", 0, 0)
		k.Spawn(proc, "sleeper", func(t *Task) { t.Sleep(5 * time.Millisecond) })
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return k.Now()
	}
	// A sleeping thread is never mid-compute, so every slot is a no-op:
	// pruned and unpruned runs end at the same virtual time.
	if a, b := run(true), run(false); a != b {
		t.Fatalf("no-op slots changed the outcome: pruned end %v, unpruned end %v", a, b)
	}
}

// TestChoiceEventsTraced: consulted choices emit EvChoice records carrying
// the picked index, giving witnesses their replayable schedule.
func TestChoiceEventsTraced(t *testing.T) {
	tr := &SliceTracer{}
	k := New(Config{CPUs: 1, Quantum: 10 * time.Millisecond, Tracer: tr,
		Chooser: &ScriptChooser{Script: []int{1}}})
	proc := k.NewProcess("p", 0, 0)
	k.Spawn(proc, "holder", func(t *Task) { t.Sleep(time.Millisecond) })
	k.Spawn(proc, "a", func(t *Task) { t.Compute(time.Microsecond) })
	k.Spawn(proc, "b", func(t *Task) { t.Compute(time.Microsecond) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	var choices []Event
	for _, e := range tr.Events {
		if e.Kind == EvChoice {
			choices = append(choices, e)
		}
	}
	if len(choices) != 1 {
		t.Fatalf("EvChoice count = %d, want 1 (the t=0 dispatch tie)", len(choices))
	}
	if choices[0].Label != "dispatch" || choices[0].Arg != 1 {
		t.Fatalf("EvChoice = %+v, want dispatch/1", choices[0])
	}
}

// TestRandomChooserDeterminism: a RandomChooser round is a pure function
// of the seed.
func TestRandomChooserDeterminism(t *testing.T) {
	run := func() (Time, int64) {
		k := New(Config{CPUs: 1, Quantum: time.Millisecond, Seed: 99, Chooser: RandomChooser{},
			NoiseSlots: NoiseSlotConfig{Period: 500 * time.Microsecond, Burst: 100 * time.Microsecond, Prob: 0.3, Bound: 3, PruneNoops: true}})
		proc := k.NewProcess("p", 0, 0)
		k.Spawn(proc, "a", func(t *Task) { t.Compute(3 * time.Millisecond) })
		k.Spawn(proc, "b", func(t *Task) { t.Compute(3 * time.Millisecond) })
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return k.Now(), k.Stats().NoiseBursts
	}
	e1, n1 := run()
	e2, n2 := run()
	if e1 != e2 || n1 != n2 {
		t.Fatalf("RandomChooser runs diverged: (%v,%d) vs (%v,%d)", e1, n1, e2, n2)
	}
}
