// Package sim implements a deterministic, virtual-time discrete-event
// simulation of the operating-system machinery that decides the outcome of
// file-based race condition (TOCTTOU) attacks: CPUs, a preemptive
// round-robin scheduler with time quanta, timer-tick and softirq overhead,
// blocking synchronization with FIFO wait queues, and structured event
// tracing.
//
// Processes are ordinary Go functions run as coroutines. Exactly one
// process goroutine executes at any instant, and all scheduling decisions
// flow through a single event queue with deterministic tie-breaking, so a
// simulation with a given seed always produces the identical trace. This is
// what makes the substrate suitable for reproducing the DSN'07 paper's
// race-condition experiments: on real hardware (and under the Go runtime's
// own scheduler) the microsecond-scale races would be perturbed by
// uncontrolled jitter, while in virtual time the races are governed
// entirely by the modeled latencies and the seeded noise sources.
package sim

import (
	"fmt"
	"time"
)

// Time is an instant of virtual time, in nanoseconds since simulation boot.
type Time int64

// Add returns the instant d after t.
func (t Time) Add(d time.Duration) Time { return t + Time(d) }

// Sub returns the duration from u to t.
func (t Time) Sub(u Time) time.Duration { return time.Duration(t - u) }

// Duration converts the instant to a duration since boot.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// Micros returns the instant in microseconds, the unit the paper reports.
func (t Time) Micros() float64 { return float64(t) / 1e3 }

// String renders the instant in microseconds with fractional precision.
func (t Time) String() string { return fmt.Sprintf("%.1fµs", t.Micros()) }

// Common duration helpers, exported for readability at call sites that
// specify calibrated latencies.
func Micros(us float64) time.Duration { return time.Duration(us * 1e3) }
func Millis(ms float64) time.Duration { return time.Duration(ms * 1e6) }
