package sim

import (
	"math"
	"math/rand"
)

// This file gives fastSource direct Float64 / NormFloat64 / ExpFloat64
// methods that reproduce math/rand's value streams bit for bit. Routing
// the kernel's hot distribution draws here instead of through *rand.Rand
// removes an interface dispatch per underlying Int63 and lets the source's
// lagged-Fibonacci step inline into the ziggurat loops — worth it because
// a simulated round draws a jittered latency per modeled syscall/compute
// and two noise draws per background burst. The algorithms and strip
// tables (zigtables.go) are exactly math/rand's; initFastDist validates
// the streams against the stdlib at startup and any mismatch disables the
// path, falling back to the *rand.Rand wrapper.

const (
	zigRn = 3.442619855899      // rightmost strip start, normal ziggurat
	zigRe = 7.69711747013104972 // rightmost strip start, exponential ziggurat
)

// fastDistOK reports that the direct distribution methods reproduced
// math/rand bit-for-bit during init-time validation.
var fastDistOK bool

func zigAbs(i int32) uint32 {
	if i < 0 {
		return uint32(-i)
	}
	return uint32(i)
}

func (s *fastSource) uint32() uint32 { return uint32(s.Int63() >> 31) }

// Float64 mirrors rand.Rand.Float64 (including the retry-on-1.0 quirk the
// stdlib preserves for stream compatibility).
func (s *fastSource) Float64() float64 {
	for {
		f := float64(s.Int63()) / (1 << 63)
		if f != 1 {
			return f
		}
	}
}

// NormFloat64 mirrors rand.Rand.NormFloat64: the Marsaglia-Tsang ziggurat
// over 128 strips, identical table walk, identical draw sequence.
func (s *fastSource) NormFloat64() float64 {
	for {
		j := int32(s.uint32())
		i := j & 0x7F
		x := float64(j) * float64(zigWn[i])
		if zigAbs(j) < zigKn[i] {
			return x
		}
		if i == 0 {
			for {
				x = -math.Log(s.Float64()) * (1.0 / zigRn)
				y := -math.Log(s.Float64())
				if y+y >= x*x {
					break
				}
			}
			if j > 0 {
				return zigRn + x
			}
			return -zigRn - x
		}
		if zigFn[i]+float32(s.Float64())*(zigFn[i-1]-zigFn[i]) < float32(math.Exp(-.5*x*x)) {
			return x
		}
	}
}

// ExpFloat64 mirrors rand.Rand.ExpFloat64: the 256-strip exponential
// ziggurat, identical table walk, identical draw sequence.
func (s *fastSource) ExpFloat64() float64 {
	for {
		j := s.uint32()
		i := j & 0xFF
		x := float64(j) * float64(zigWe[i])
		if j < zigKe[i] {
			return x
		}
		if i == 0 {
			return zigRe - math.Log(s.Float64())
		}
		if zigFe[i]+float32(s.Float64())*(zigFe[i-1]-zigFe[i]) < float32(math.Exp(-x)) {
			return x
		}
	}
}

// initFastDist validates the direct samplers against math/rand. The draw
// counts are chosen so every code path runs many times: the base-strip
// tails fire roughly once per ~400 (normal) / ~380 (exponential) draws.
func initFastDist() {
	if !fastSeedOK {
		return
	}
	for _, seed := range []int64{1, 7, 1007, -404, 3 << 60} {
		var src fastSource
		src.Seed(seed)
		ref := rand.New(rand.NewSource(seed))
		for i := 0; i < 20_000; i++ {
			if src.NormFloat64() != ref.NormFloat64() ||
				src.ExpFloat64() != ref.ExpFloat64() ||
				src.Float64() != ref.Float64() {
				return
			}
		}
	}
	fastDistOK = true
}
