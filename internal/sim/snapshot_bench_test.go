package sim

import (
	"testing"
	"time"
)

// bootBenchKernel registers the shape of a Fig 6 round's boot — two
// single-thread processes — on a quiet machine, without running it.
func bootBenchKernel(k *Kernel) {
	victim := k.NewProcess("victim", 0, 0)
	attacker := k.NewProcess("attacker", 1000, 1000)
	k.Spawn(victim, "victim", func(t *Task) { t.Compute(time.Microsecond) })
	th := k.Spawn(attacker, "attacker", func(t *Task) { t.Compute(time.Microsecond) })
	th.SetNice(5)
}

// BenchmarkSnapshot measures capturing a booted kernel's registrations.
func BenchmarkSnapshot(b *testing.B) {
	cfg := benchConfig(1)
	k := New(cfg)
	bootBenchKernel(k)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := k.Snapshot(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFork measures stamping a round out of a snapshot: Reset plus the
// boot replay onto pooled shells. The steady state must not allocate — the
// whole point of the pooling is that a forked boot reuses every thread and
// process shell of the previous round.
func BenchmarkFork(b *testing.B) {
	cfg := benchConfig(1)
	k := New(cfg)
	bootBenchKernel(k)
	img, err := k.Snapshot()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.Fork(img, ForkConfig{Seed: int64(i + 1)})
	}
	b.StopTimer()
	k.Drain()
}

// BenchmarkFastSeed measures the power-table RNG reseed that Fork performs
// per round.
func BenchmarkFastSeed(b *testing.B) {
	var s fastSource
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Seed(int64(i))
	}
}

// TestForkAllocFree pins Fork's steady-state allocation count at zero:
// every shell the replay enlists must come from the pools.
func TestForkAllocFree(t *testing.T) {
	cfg := benchConfig(1)
	k := New(cfg)
	bootBenchKernel(k)
	img, err := k.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	k.Fork(img, ForkConfig{Seed: 1}) // first fork moves onto pooled shells
	seed := int64(2)
	avg := testing.AllocsPerRun(100, func() {
		k.Fork(img, ForkConfig{Seed: seed})
		seed++
	})
	k.Drain()
	if avg != 0 {
		t.Fatalf("Fork allocates %.1f objects per call, want 0", avg)
	}
}
