package sim

import "time"

// Stretch coalesces an uncontended run of compute segments — a stretch —
// executed by the single running thread into one bulk state update. It
// generalizes completeInline from one segment to many: while every
// coalesced completion instant provably precedes the earliest pending
// kernel event, the per-segment effects (the scheduleWork register arm,
// the event-loop pop, and workDone's retirement) collapse into arithmetic
// on a stack-local value, and the kernel sees a single aggregate
// publication at Commit.
//
// The soundness argument is the same as completeInline's, applied
// transitively. BeginStretch freezes k.nextAt — a lower bound on the
// earliest pending event's instant — and the coalesced path neither
// schedules nor pops events, so the bound stays valid for the whole
// stretch. Any other actor that could observe or perturb the stretch
// necessarily has a pending event (a dispatch, quantum expiry, timer
// wake-up, tick, noise burst, or injected interruption), so "every
// completion precedes nextAt" subsumes "exactly one thread is runnable
// and nothing can interleave". Threads blocked on a semaphore with no
// armed wake-up have no pending event, which is why semaphore users of
// the fast path must additionally check Sem.Quiet. Intermediate clock
// values are unobservable (no tracer is attached, and the stretch runs no
// handler that reads k.now), and bumping k.seq by the segment count at
// Commit is equivalent to per-segment increments because no interleaved
// call consumes sequence numbers mid-stretch.
//
// Coalescing changes no outcome: every counter (steps, seq, workGen,
// cpuTime, per-CPU busy time), the clock, and the RNG stream advance
// exactly as the stepped execution would, which the equivalence suite in
// core asserts bit for bit. Config.DisableCoalesce forces the stepped
// path for those comparisons.
type Stretch struct {
	k  *Kernel
	th *Thread
	// nextAt and maxT bound every coalesced completion instant: the frozen
	// lower bound on the earliest pending event, and the virtual-time
	// budget (strictly below the former, at most the latter — mirroring
	// completeInline's comparisons).
	nextAt Time
	maxT   Time
	// now is the stretch-local clock, published to k.now only at Commit.
	now Time
	// segs counts retired segments (each worth one event-loop step) and
	// consumed their total duration since the last Commit.
	segs     int64
	consumed time.Duration
}

// BeginStretch opens a coalescing stretch for the calling thread. It
// fails — and the caller must use the fully stepped path — whenever any
// per-segment effect could be observable: coalescing disabled by
// configuration, a tracer attached (per-segment events must be emitted),
// a Chooser installed (stretch boundaries are choice points the explorer
// must see), a pending user error, a kill requested, the thread not
// cleanly running, or a ghost work register left by preemption (the
// stepped path pops it as a counted no-op, which bulk accounting cannot
// reproduce).
func (t *Task) BeginStretch() (Stretch, bool) {
	k, th := t.k, t.th
	if k.cfg.DisableCoalesce || k.tracer != nil || k.cfg.Chooser != nil ||
		k.userErr != nil || th.killed || th.state != StateRunning ||
		th.workPending || k.cpus[th.cpu].slots[slotWork].armed {
		return Stretch{}, false
	}
	return Stretch{k: k, th: th, nextAt: k.nextAt, maxT: k.maxT, now: k.now}, true
}

// AdvanceResult reports how a Stretch.Advance retired its segment.
type AdvanceResult uint8

const (
	// AdvanceCoalesced: the segment was retired without the event loop
	// running — inside the stretch, inline, or through the interrupt
	// fold — so provably no other thread observed or interleaved with
	// it. Cross-segment invariants (like a Quiet semaphore) still hold.
	AdvanceCoalesced AdvanceResult = iota
	// AdvanceRouted: a pending event landed inside the segment, so the
	// stretch was committed and the segment executed through the real
	// event loop — other threads may have run, so cross-segment
	// invariants (like a Quiet semaphore) must be re-established — but
	// the stretch re-synchronized afterwards and remains open.
	AdvanceRouted
	// AdvanceBroken: the segment was executed through the event loop and
	// the stretch could not be re-established (the thread's state no
	// longer satisfies the coalescing preconditions). The segment's time
	// is consumed; the caller must finish stepped and BeginStretch anew.
	AdvanceBroken
)

// Advance retires one compute segment of duration d. When the segment's
// completion provably precedes every pending kernel event it is retired
// inside the stretch (AdvanceCoalesced) — pure arithmetic, no event-loop
// traffic. Otherwise the stretch is committed and the segment runs
// through the native scheduling path, bit-identically to Task.Compute —
// interrupts, preemption, and budget terminations all take their normal
// course — after which the stretch re-synchronizes to the kernel's state
// and reports AdvanceRouted (or AdvanceBroken when re-synchronization is
// impossible). The segment's duration is fully consumed in every case.
// A non-positive d is a no-op, exactly as it is for Task.Compute.
func (s *Stretch) Advance(d time.Duration) AdvanceResult {
	if d <= 0 {
		return AdvanceCoalesced
	}
	doneAt := s.now.Add(d)
	if doneAt >= s.nextAt || doneAt > s.maxT || s.k.steps+s.segs >= s.k.cfg.MaxSteps {
		return s.advanceSlow(d)
	}
	s.now = doneAt
	s.segs++
	s.consumed += d
	return AdvanceCoalesced
}

// advanceSlow executes a segment that cannot be retired in-stretch: it
// publishes the coalesced prefix, then drives the segment through the
// identical machinery Task.Compute uses — inline completion when the
// frozen bound was merely stale, the interrupt fold when only tick,
// noise, or quantum-renewal fires land inside the segment, and the real
// event loop otherwise. Afterwards it re-synchronizes the stretch from
// the kernel (both fold exits and the loop's last pop leave k.nextAt at
// an exact earliest-pending-instant bound), so coalescing resumes
// immediately unless the thread came back in a state the stretch
// preconditions reject (killed threads unwind with the same panic
// Task.Compute's epilogue raises). When the segment retired without the
// loop running — inline or folded — no other thread can have executed,
// so the result is AdvanceCoalesced and cross-segment invariants like a
// Quiet semaphore still hold.
func (s *Stretch) advanceSlow(d time.Duration) AdvanceResult {
	k, th := s.k, s.th
	s.Commit()
	th.runStart = k.now
	th.computeLeft = d
	clean := false
	if k.completeInline(th) {
		clean = true
	} else {
		switch k.foldSegment(th) {
		case foldRetired:
			clean = true
		case foldIneligible:
			k.scheduleWork(th)
			k.runLoop(th, false)
		case foldMaterialized:
			k.runLoop(th, false)
		}
		if th.killed {
			panic(killSignal{})
		}
	}
	if k.userErr != nil || th.state != StateRunning || th.workPending ||
		k.cpus[th.cpu].slots[slotWork].armed {
		return AdvanceBroken
	}
	s.now = k.now
	s.nextAt = k.nextAt
	s.maxT = k.maxT
	if clean {
		return AdvanceCoalesced
	}
	return AdvanceRouted
}

// AdvanceBulk retires up to max repetitions of a fixed (prep, cost)
// segment pair analytically: the largest repetition count whose final
// instant still fits the stretch bounds is computed in O(1) and applied
// at once, with no per-repetition work at all. It returns how many
// repetitions were retired (possibly zero). Only meaningful when the
// durations carry no randomness — with jitter active each segment needs
// its own draw and the per-segment Advance path must be used to keep the
// RNG stream identical.
func (s *Stretch) AdvanceBulk(prep, cost time.Duration, max int64) int64 {
	if max <= 0 {
		return 0
	}
	var per time.Duration
	var stepsPer int64
	if prep > 0 {
		per += prep
		stepsPer++
	}
	if cost > 0 {
		per += cost
		stepsPer++
	}
	if per <= 0 {
		// Zero-duration segments are no-ops for Task.Compute: no clock
		// advance, no step. Every repetition trivially fits.
		return max
	}
	limit := s.nextAt - 1 // completions must be strictly before nextAt
	if s.maxT < limit {
		limit = s.maxT
	}
	if limit <= s.now {
		return 0
	}
	m := int64(limit-s.now) / int64(per)
	if room := (s.k.cfg.MaxSteps - s.k.steps - s.segs) / stepsPer; room < m {
		m = room
	}
	if m > max {
		m = max
	}
	if m <= 0 {
		return 0
	}
	s.now += Time(int64(per) * m)
	s.segs += stepsPer * m
	s.consumed += time.Duration(int64(per) * m)
	return m
}

// Commit publishes the stretch's aggregate effect to the kernel — the
// same fields completeInline writes per segment, applied once: workGen
// and seq advance by the segment count, the clock and lastAt move to the
// stretch's final instant, the step counter and the thread's CPU-time
// accounting absorb the totals, and the post-dispatch termination checks
// are requested. Committing an empty stretch is a no-op. The stretch is
// reset afterwards, so the caller may keep Advancing and Commit again.
func (s *Stretch) Commit() {
	if s.segs == 0 {
		return
	}
	k, th := s.k, s.th
	th.workGen += uint64(s.segs)
	k.seq += uint64(s.segs)
	if s.now > k.lastAt {
		k.lastAt = s.now
	}
	k.now = s.now
	k.steps += s.segs
	th.cpuTime += s.consumed
	k.stats.addBusy(th.cpu, s.consumed)
	th.runStart = s.now
	k.checkPost = true
	s.segs = 0
	s.consumed = 0
}

// Now returns the stretch-local clock: the kernel clock plus every
// uncommitted coalesced segment.
func (s *Stretch) Now() Time { return s.now }

// HasJitter reports whether the machine applies relative jitter to
// modeled latencies. When false, JitterDuration is the identity and
// consumes no RNG draw, which is what licenses draw-free bulk advances
// (see Stretch.AdvanceBulk).
func (k *Kernel) HasJitter() bool { return k.jitter.Rel > 0 }

// Quiet reports that the semaphore is idle: no owner and no queued
// waiters. An acquire/release pair by the running thread is then
// guaranteed to take the uncontended fast path — it blocks nothing,
// wakes nothing, and resolves no wake-order choice — which is the extra
// condition semaphore-holding critical sections need before being
// retired inside a coalesced stretch.
func (s *Sem) Quiet() bool { return s.owner == nil && len(s.waiters) == 0 }

// AcquireReleasePairs retires n uncontended acquire/release pairs of the
// semaphore by the running thread in aggregate. The only observable
// effect of such a pair is the SemAcquires counter (ownership begins and
// ends free, the owned list grows and shrinks back), so the bulk form is
// a single counter addition. Only legal while the semaphore is Quiet and
// no tracer is attached — the draw-free bulk write path's companion to
// Stretch.AdvanceBulk.
func (s *Sem) AcquireReleasePairs(t *Task, n int64) {
	t.checkKilled()
	if n <= 0 {
		return
	}
	if s.owner != nil || len(s.waiters) > 0 {
		panic("sim: AcquireReleasePairs on a non-quiet semaphore " + s.name)
	}
	if t.k.tracer != nil {
		panic("sim: AcquireReleasePairs with a tracer attached")
	}
	t.k.stats.SemAcquires += n
}
