package sim

import (
	"container/heap"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestEventHeapOrderingProperty(t *testing.T) {
	// For any multiset of event times, the heap must yield them in
	// nondecreasing time order, with ties broken by insertion order.
	f := func(times []uint32) bool {
		var h eventHeap
		heap.Init(&h)
		var seq uint64
		for _, tt := range times {
			seq++
			heap.Push(&h, timedEvent{at: Time(tt % 1000), seq: seq})
		}
		var lastT Time = -1
		var lastSeq uint64
		for h.Len() > 0 {
			ev := heap.Pop(&h).(timedEvent)
			if ev.at < lastT {
				return false
			}
			if ev.at == lastT && ev.seq < lastSeq {
				return false // FIFO within an instant
			}
			lastT, lastSeq = ev.at, ev.seq
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSchedulePastClampedToNow(t *testing.T) {
	k := New(testConfig(1))
	p := k.NewProcess("p", 0, 0)
	k.Spawn(p, "t", func(task *Task) {
		task.Compute(time.Millisecond)
	})
	// Scheduling before the current instant must not time-travel.
	k.schedule(Time(-50), func() {
		if k.now < 0 {
			t.Error("event fired in the past")
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestKernelEventOrderFuzz(t *testing.T) {
	// Random workloads must preserve the global invariant that the clock
	// never moves backwards and every trace is time-ordered.
	for seed := int64(1); seed <= 8; seed++ {
		tr := &SliceTracer{}
		cfg := Config{
			CPUs:       1 + int(seed%4),
			Quantum:    3 * time.Millisecond,
			CtxSwitch:  time.Microsecond,
			TickPeriod: 500 * time.Microsecond,
			TickCost:   2 * time.Microsecond,
			Noise:      NoiseConfig{MeanInterval: 300 * time.Microsecond, MeanDuration: 15 * time.Microsecond},
			Jitter:     0.1,
			Seed:       seed,
			Tracer:     tr,
		}
		k := New(cfg)
		p := k.NewProcess("p", 0, 0)
		sems := []*Sem{NewSem("a"), NewSem("b"), NewSem("c")}
		for i := 0; i < 6; i++ {
			k.Spawn(p, "w", func(task *Task) {
				rng := rand.New(rand.NewSource(seed*31 + int64(task.Thread().ID())))
				for j := 0; j < 50; j++ {
					switch rng.Intn(4) {
					case 0:
						task.ComputeJitter(time.Duration(1+rng.Intn(100)) * time.Microsecond)
					case 1:
						s := sems[rng.Intn(len(sems))]
						s.Acquire(task)
						task.Compute(time.Duration(1+rng.Intn(20)) * time.Microsecond)
						s.Release(task)
					case 2:
						task.Sleep(time.Duration(1+rng.Intn(200)) * time.Microsecond)
					case 3:
						task.YieldCPU()
					}
				}
			})
		}
		if err := k.Run(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		var last Time = -1
		for _, e := range tr.Events {
			if e.T < last {
				t.Fatalf("seed %d: trace time went backwards: %v after %v", seed, e.T, last)
			}
			last = e.T
		}
	}
}
