package sim

import (
	"math/rand"
	"runtime"
	"testing"
	"testing/quick"
	"time"
)

func TestEventQueueOrderingProperty(t *testing.T) {
	// For any multiset of event times, the queue must yield them in
	// nondecreasing time order, with ties broken by insertion order.
	f := func(times []uint32) bool {
		var q eventQueue
		var seq uint64
		for _, tt := range times {
			seq++
			q.push(timedEvent{at: Time(tt % 1000), seq: seq})
		}
		var lastT Time = -1
		var lastSeq uint64
		for len(q) > 0 {
			ev := q.pop()
			if ev.at < lastT {
				return false
			}
			if ev.at == lastT && ev.seq < lastSeq {
				return false // FIFO within an instant
			}
			lastT, lastSeq = ev.at, ev.seq
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestEventQueueReset(t *testing.T) {
	var q eventQueue
	for i := 0; i < 100; i++ {
		q.push(timedEvent{at: Time(i), seq: uint64(i)})
	}
	q.reset()
	if len(q) != 0 {
		t.Fatalf("reset left %d events", len(q))
	}
	if cap(q) == 0 {
		t.Fatal("reset dropped the backing array")
	}
	// The retained capacity must not leak references from the prior run.
	for _, ev := range q[:cap(q)] {
		if ev.fn != nil || ev.th != nil || ev.c != nil {
			t.Fatal("reset retained references in the backing array")
		}
	}
}

func TestSchedulePastClampedToNow(t *testing.T) {
	k := New(testConfig(1))
	p := k.NewProcess("p", 0, 0)
	k.Spawn(p, "t", func(task *Task) {
		task.Compute(time.Millisecond)
	})
	// Scheduling before the current instant must not time-travel.
	k.schedule(Time(-50), func() {
		if k.now < 0 {
			t.Error("event fired in the past")
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestKernelEventOrderFuzz(t *testing.T) {
	// Random workloads must preserve the global invariant that the clock
	// never moves backwards and every trace is time-ordered.
	for seed := int64(1); seed <= 8; seed++ {
		tr := &SliceTracer{}
		cfg := Config{
			CPUs:       1 + int(seed%4),
			Quantum:    3 * time.Millisecond,
			CtxSwitch:  time.Microsecond,
			TickPeriod: 500 * time.Microsecond,
			TickCost:   2 * time.Microsecond,
			Noise:      NoiseConfig{MeanInterval: 300 * time.Microsecond, MeanDuration: 15 * time.Microsecond},
			Jitter:     0.1,
			Seed:       seed,
			Tracer:     tr,
		}
		k := New(cfg)
		p := k.NewProcess("p", 0, 0)
		sems := []*Sem{NewSem("a"), NewSem("b"), NewSem("c")}
		for i := 0; i < 6; i++ {
			k.Spawn(p, "w", func(task *Task) {
				rng := rand.New(rand.NewSource(seed*31 + int64(task.Thread().ID())))
				for j := 0; j < 50; j++ {
					switch rng.Intn(4) {
					case 0:
						task.ComputeJitter(time.Duration(1+rng.Intn(100)) * time.Microsecond)
					case 1:
						s := sems[rng.Intn(len(sems))]
						s.Acquire(task)
						task.Compute(time.Duration(1+rng.Intn(20)) * time.Microsecond)
						s.Release(task)
					case 2:
						task.Sleep(time.Duration(1+rng.Intn(200)) * time.Microsecond)
					case 3:
						task.YieldCPU()
					}
				}
			})
		}
		if err := k.Run(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		var last Time = -1
		for _, e := range tr.Events {
			if e.T < last {
				t.Fatalf("seed %d: trace time went backwards: %v after %v", seed, e.T, last)
			}
			last = e.T
		}
	}
}

func TestReadyQueuePriorityFIFO(t *testing.T) {
	// Strict priority between nice levels, FIFO within a level — including
	// across ring wrap-around caused by interleaved pops.
	var q readyQueue
	mk := func(id, nice int) *Thread { return &Thread{id: id, nice: nice} }

	a, b, c, d, e := mk(1, 0), mk(2, 0), mk(3, -5), mk(4, 0), mk(5, -5)
	for _, th := range []*Thread{a, b, c, d, e} {
		q.insert(th)
	}
	want := []*Thread{c, e, a, b, d}
	for i, w := range want {
		if got := q.popFront(); got != w {
			t.Fatalf("pop %d: got tid %d, want tid %d", i, got.id, w.id)
		}
	}
	if q.Len() != 0 {
		t.Fatalf("queue not empty after draining: %d", q.Len())
	}

	// Exercise wrap-around: push/pop cycles move head around the ring.
	for round := 0; round < 50; round++ {
		q.insert(mk(100+round, round%3))
		q.insert(mk(200+round, 0))
		q.popFront()
	}
	lastNice := -1 << 30
	for q.Len() > 0 {
		th := q.popFront()
		if th.nice < lastNice {
			t.Fatalf("priority order violated: nice %d after %d", th.nice, lastNice)
		}
		lastNice = th.nice
	}
}

func TestReadyQueueRemovePreservesOrder(t *testing.T) {
	mk := func(id int) *Thread { return &Thread{id: id} }
	for removeIdx := 0; removeIdx < 7; removeIdx++ {
		var q readyQueue
		ths := make([]*Thread, 7)
		for i := range ths {
			ths[i] = mk(i)
			q.insert(ths[i])
		}
		q.remove(ths[removeIdx])
		if q.Len() != 6 {
			t.Fatalf("remove idx %d: len %d, want 6", removeIdx, q.Len())
		}
		pos := 0
		for i := range ths {
			if i == removeIdx {
				continue
			}
			if got := q.popFront(); got != ths[i] {
				t.Fatalf("remove idx %d: pop %d got tid %d, want tid %d",
					removeIdx, pos, got.id, ths[i].id)
			}
			pos++
		}
	}
}

func TestReadyQueueRemoveWrapped(t *testing.T) {
	// remove must preserve order when the live window wraps around the
	// ring's physical end.
	mk := func(id int) *Thread { return &Thread{id: id} }
	var q readyQueue
	// Fill to capacity 8, then rotate head to the middle.
	for i := 0; i < 8; i++ {
		q.insert(mk(i))
	}
	for i := 0; i < 5; i++ {
		q.popFront()
		q.insert(mk(10 + i))
	}
	// Window is now [5 6 7 10 11 12 13 14] with head=5 physically.
	order := []int{5, 6, 7, 10, 11, 12, 13, 14}
	// Remove one element from each half.
	var victims []*Thread
	for i := 0; i < q.n; i++ {
		if q.at(i).id == 6 || q.at(i).id == 13 {
			victims = append(victims, q.at(i))
		}
	}
	for _, v := range victims {
		q.remove(v)
	}
	want := []int{5, 7, 10, 11, 12, 14}
	_ = order
	for i, w := range want {
		if got := q.popFront(); got.id != w {
			t.Fatalf("pop %d: got tid %d, want tid %d", i, got.id, w)
		}
	}
}

func TestRunErrorUnwindsThreadGoroutines(t *testing.T) {
	// When Run aborts (deadlock, budget exhaustion), every live thread's
	// coroutine goroutine must be unwound, not leaked parked on its resume
	// channel.
	before := runtime.NumGoroutine()
	for i := 0; i < 20; i++ {
		k := New(testConfig(2))
		p := k.NewProcess("p", 0, 0)
		flag := NewFlag("never")
		for j := 0; j < 4; j++ {
			k.Spawn(p, "stuck", func(task *Task) {
				flag.Wait(task) // never set: deadlock
			})
		}
		if err := k.Run(); err == nil {
			t.Fatal("expected deadlock error")
		}
	}
	// Give unwound goroutines a moment to exit.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		runtime.GC()
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: before=%d after=%d", before, runtime.NumGoroutine())
}

func TestKernelResetReproducesFreshRun(t *testing.T) {
	// A Reset kernel must produce bit-identical traces to a fresh one.
	run := func(k *Kernel, cfg Config) []Event {
		tr := cfg.Tracer.(*SliceTracer)
		p := k.NewProcess("p", 0, 0)
		s := NewSem("shared")
		for i := 0; i < 3; i++ {
			k.Spawn(p, "w", func(task *Task) {
				for j := 0; j < 20; j++ {
					task.ComputeJitter(50 * time.Microsecond)
					s.Acquire(task)
					task.Compute(10 * time.Microsecond)
					s.Release(task)
					task.Sleep(30 * time.Microsecond)
				}
			})
		}
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		out := make([]Event, len(tr.Events))
		copy(out, tr.Events)
		return out
	}
	mkCfg := func() Config {
		return Config{
			CPUs:       2,
			Quantum:    2 * time.Millisecond,
			CtxSwitch:  2 * time.Microsecond,
			TickPeriod: time.Millisecond,
			TickCost:   time.Microsecond,
			Noise:      NoiseConfig{MeanInterval: 400 * time.Microsecond, MeanDuration: 20 * time.Microsecond},
			Jitter:     0.05,
			Seed:       42,
			Tracer:     &SliceTracer{},
		}
	}
	cfgA := mkCfg()
	fresh := run(New(cfgA), cfgA)

	// Dirty a kernel with an unrelated workload, then Reset and re-run.
	dirtyCfg := mkCfg()
	dirtyCfg.Seed = 99
	k := New(dirtyCfg)
	run(k, dirtyCfg)
	cfgB := mkCfg()
	k.Reset(cfgB)
	cfgB.Tracer.(*SliceTracer).Reset()
	reused := run(k, cfgB)

	if len(fresh) != len(reused) {
		t.Fatalf("trace length differs: fresh %d, reused %d", len(fresh), len(reused))
	}
	for i := range fresh {
		if fresh[i] != reused[i] {
			t.Fatalf("trace diverges at %d:\n fresh: %+v\nreused: %+v", i, fresh[i], reused[i])
		}
	}
}
