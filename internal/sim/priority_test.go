package sim

import (
	"testing"
	"time"
)

func TestPriorityDispatchOrder(t *testing.T) {
	// Three threads become ready while the CPU is busy; the lowest nice
	// value must run first, FIFO within a level.
	k := New(testConfig(1))
	p := k.NewProcess("p", 0, 0)
	var order []string
	k.Spawn(p, "busy", func(task *Task) {
		task.Compute(5 * time.Millisecond)
	})
	spawn := func(name string, nice int) {
		th := k.Spawn(p, name, func(task *Task) {
			task.Compute(time.Millisecond)
			order = append(order, name)
		})
		th.SetNice(nice)
	}
	spawn("low", 5)
	spawn("high", -5)
	spawn("mid", 0)
	spawn("mid2", 0)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"high", "mid", "mid2", "low"}
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestHighPriorityThreadKeepsCPUAtQuantumExpiry(t *testing.T) {
	// A nice -10 thread is never preempted in favor of nice 0 threads.
	tr := &SliceTracer{}
	cfg := testConfig(1)
	cfg.Tracer = tr
	k := New(cfg)
	p := k.NewProcess("p", 0, 0)
	elite := k.Spawn(p, "elite", func(task *Task) {
		task.Compute(35 * time.Millisecond) // several quanta
	})
	elite.SetNice(-10)
	k.Spawn(p, "pleb", func(task *Task) {
		task.Compute(5 * time.Millisecond)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for _, e := range tr.Events {
		if e.Kind == EvPreempt && e.TID == int32(elite.ID()) {
			t.Fatalf("high-priority thread was preempted: %v", e)
		}
	}
	// The low-priority thread must still run eventually (after elite
	// finishes) — strict priority, no starvation once the CPU frees.
	if got, want := k.Now(), Time(40*time.Millisecond); got != want {
		t.Errorf("end = %v, want %v", got, want)
	}
}

func TestEqualPriorityStillRoundRobins(t *testing.T) {
	tr := &SliceTracer{}
	cfg := testConfig(1)
	cfg.Tracer = tr
	k := New(cfg)
	p := k.NewProcess("p", 0, 0)
	k.Spawn(p, "a", func(task *Task) { task.Compute(25 * time.Millisecond) })
	k.Spawn(p, "b", func(task *Task) { task.Compute(25 * time.Millisecond) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	preempts := 0
	for _, e := range tr.Events {
		if e.Kind == EvPreempt {
			preempts++
		}
	}
	if preempts < 3 {
		t.Errorf("preempts = %d, want round-robin alternation", preempts)
	}
}

func TestLowerPriorityDoesNotPreemptHigher(t *testing.T) {
	// A nice 5 thread waiting in the queue must not take the CPU from a
	// running nice 0 thread at quantum expiry.
	tr := &SliceTracer{}
	cfg := testConfig(1)
	cfg.Tracer = tr
	k := New(cfg)
	p := k.NewProcess("p", 0, 0)
	normal := k.Spawn(p, "normal", func(task *Task) {
		task.Compute(30 * time.Millisecond)
	})
	bg := k.Spawn(p, "background", func(task *Task) {
		task.Compute(time.Millisecond)
	})
	bg.SetNice(5)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for _, e := range tr.Events {
		if e.Kind == EvPreempt && e.TID == int32(normal.ID()) {
			t.Fatalf("normal thread preempted by background thread: %v", e)
		}
	}
	_ = bg
}

func TestNiceAccessors(t *testing.T) {
	k := New(testConfig(1))
	p := k.NewProcess("p", 0, 0)
	th := k.Spawn(p, "t", func(task *Task) {})
	if th.Nice() != 0 {
		t.Errorf("default nice = %d", th.Nice())
	}
	th.SetNice(-7)
	if th.Nice() != -7 {
		t.Errorf("nice = %d, want -7", th.Nice())
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}
