package sim

import (
	"fmt"
	"testing"
	"time"
)

// These tests pin the interrupt fold (fold.go) against the stepped event
// loop: for every program below, a kernel with coalescing enabled and a
// twin with Config.DisableCoalesce forced must finish with bit-identical
// clock, error, per-thread CPU time, and kernel counters — including the
// RNG-drawn noise stream, whose draws the fold replicates in order.

// twinRun executes the same kernel construction twice — coalescing
// enabled and disabled — compares everything observable, and returns the
// coalesced run's final stats for the caller's own assertions.
func twinRun(t *testing.T, cfg Config, build func(k *Kernel) []*Thread) KernelStats {
	t.Helper()
	type outcome struct {
		now   Time
		stats KernelStats
		cpu   []time.Duration
		err   error
	}
	run := func(disable bool) outcome {
		c := cfg
		c.DisableCoalesce = disable
		k := New(c)
		ths := build(k)
		err := k.Run()
		o := outcome{now: k.Now(), stats: k.Stats(), err: err}
		for _, th := range ths {
			o.cpu = append(o.cpu, th.CPUTime())
		}
		return o
	}
	co, st := run(false), run(true)
	if (co.err == nil) != (st.err == nil) ||
		(co.err != nil && co.err.Error() != st.err.Error()) {
		t.Fatalf("errors diverge: coalesced %v, stepped %v", co.err, st.err)
	}
	if co.now != st.now {
		t.Errorf("clock diverges: coalesced %v, stepped %v", co.now, st.now)
	}
	if co.stats != st.stats {
		t.Errorf("kernel stats diverge:\ncoalesced: %+v\nstepped:   %+v", co.stats, st.stats)
	}
	for i := range co.cpu {
		if co.cpu[i] != st.cpu[i] {
			t.Errorf("thread %d cpu time diverges: coalesced %v, stepped %v", i, co.cpu[i], st.cpu[i])
		}
	}
	return co.stats
}

// oneComputer spawns a single thread running the given segments.
func oneComputer(segs ...time.Duration) func(k *Kernel) []*Thread {
	return func(k *Kernel) []*Thread {
		p := k.NewProcess("p", 0, 0)
		th := k.Spawn(p, "t", func(task *Task) {
			for _, d := range segs {
				task.Compute(d)
			}
		})
		return []*Thread{th}
	}
}

func foldConfig() Config {
	return Config{
		CPUs:       1,
		Quantum:    10 * time.Millisecond,
		TickPeriod: time.Millisecond,
		TickCost:   10 * time.Microsecond,
		Seed:       4242,
	}
}

func TestFoldTickInterruptsBitIdentical(t *testing.T) {
	// Long segments spanning dozens of tick fires: the fold retires every
	// one arithmetically; the stepped twin pops each through the loop.
	stats := twinRun(t, foldConfig(), oneComputer(25*time.Millisecond, 3*time.Millisecond, 100*time.Microsecond))
	if stats.Ticks == 0 {
		t.Fatal("no tick interrupts fired; the fold path was not exercised")
	}
}

func TestFoldNoiseDrawsBitIdentical(t *testing.T) {
	// Noise bursts consume two RNG draws each (log-normal duration, then
	// exponential gap) in a fixed order the fold must replicate exactly;
	// any deviation shifts every later draw and diverges the stats.
	cfg := foldConfig()
	cfg.Noise = NoiseConfig{MeanInterval: 300 * time.Microsecond, MeanDuration: 40 * time.Microsecond}
	stats := twinRun(t, cfg, oneComputer(20*time.Millisecond, 5*time.Millisecond, 7*time.Millisecond))
	if stats.NoiseBursts == 0 {
		t.Fatal("no noise bursts fired; the fold's RNG replication was not exercised")
	}
}

func TestFoldQuantumRenewalBitIdentical(t *testing.T) {
	// A lone thread's quantum expiries resolve to renewals (nothing of
	// equal priority waits), which the fold consumes as register re-arms.
	cfg := foldConfig()
	cfg.Quantum = time.Millisecond
	stats := twinRun(t, cfg, oneComputer(30*time.Millisecond))
	if stats.Preemptions != 0 {
		t.Fatalf("lone thread was preempted %d times; renewals expected", stats.Preemptions)
	}
}

func TestFoldContendedQuantumPreempts(t *testing.T) {
	// With a ready peer, quantum expiry really preempts — the fold must
	// hand the segment back to the loop, and the interleaving must still
	// match the stepped execution exactly.
	cfg := foldConfig()
	cfg.Quantum = 5 * time.Millisecond
	cfg.CtxSwitch = 20 * time.Microsecond
	stats := twinRun(t, cfg, func(k *Kernel) []*Thread {
		p := k.NewProcess("p", 0, 0)
		ths := make([]*Thread, 2)
		for i := range ths {
			ths[i] = k.Spawn(p, fmt.Sprintf("t%d", i), func(task *Task) {
				for j := 0; j < 4; j++ {
					task.Compute(8 * time.Millisecond)
				}
			})
		}
		return ths
	})
	if stats.Preemptions == 0 {
		t.Fatal("contended run saw no preemptions; the materialize path was not exercised")
	}
}

func TestFoldSMPOtherCPUFires(t *testing.T) {
	// On two CPUs, each thread's segment absorbs its own CPU's fires while
	// the sibling CPU's tick and noise fires interleave in global (at,
	// seq) order — the fold consumes other-CPU fires only while they
	// cannot steal from a live segment, so both paths must agree.
	cfg := foldConfig()
	cfg.CPUs = 2
	cfg.Noise = NoiseConfig{MeanInterval: 250 * time.Microsecond, MeanDuration: 30 * time.Microsecond}
	twinRun(t, cfg, func(k *Kernel) []*Thread {
		p := k.NewProcess("p", 0, 0)
		ths := make([]*Thread, 2)
		for i := range ths {
			d := time.Duration(i+1) * 9 * time.Millisecond
			ths[i] = k.Spawn(p, fmt.Sprintf("t%d", i), func(task *Task) {
				task.Compute(d)
				task.Compute(d / 3)
			})
		}
		return ths
	})
}

func TestFoldFireExactlyAtCompletionInstant(t *testing.T) {
	// The boundary the fold must order exactly: a tick fire landing one
	// nanosecond before, precisely on, and one nanosecond after a
	// segment's completion instant. Ties resolve by sequence number, and
	// the fold's virtual (at, seq) comparisons must match the heap's.
	for _, delta := range []time.Duration{-time.Nanosecond, 0, time.Nanosecond} {
		t.Run(fmt.Sprintf("delta=%v", delta), func(t *testing.T) {
			twinRun(t, foldConfig(), oneComputer(time.Millisecond+delta, 4*time.Millisecond))
		})
	}
}

func TestFoldMaxTimeMidSegment(t *testing.T) {
	// The budget trips mid-segment: the fold must hand over to the loop
	// so ErrMaxTime surfaces at the identical instant.
	cfg := foldConfig()
	cfg.MaxTime = 7 * time.Millisecond
	twinRun(t, cfg, oneComputer(20*time.Millisecond))
}

func TestFoldMaxStepsMidSegment(t *testing.T) {
	// A step budget small enough to exhaust on folded tick fires: the
	// fold counts virtual steps exactly like the loop counts pops, so
	// ErrMaxSteps must fire at the same event either way.
	cfg := foldConfig()
	cfg.MaxSteps = 12
	twinRun(t, cfg, oneComputer(30*time.Millisecond))
}
