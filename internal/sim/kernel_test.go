package sim

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

func testConfig(cpus int) Config {
	return Config{
		CPUs:      cpus,
		Quantum:   10 * time.Millisecond,
		CtxSwitch: 0,
		Seed:      1,
	}
}

func TestSingleThreadComputeAdvancesClock(t *testing.T) {
	k := New(testConfig(1))
	p := k.NewProcess("p", 0, 0)
	var end Time
	k.Spawn(p, "t", func(task *Task) {
		task.Compute(5 * time.Millisecond)
		end = task.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if got, want := end, Time(5*time.Millisecond); got != want {
		t.Errorf("end time = %v, want %v", got, want)
	}
}

func TestSequentialComputeSegmentsAccumulate(t *testing.T) {
	k := New(testConfig(1))
	p := k.NewProcess("p", 0, 0)
	var th *Thread
	th = k.Spawn(p, "t", func(task *Task) {
		for i := 0; i < 10; i++ {
			task.Compute(time.Millisecond)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if got, want := th.CPUTime(), 10*time.Millisecond; got != want {
		t.Errorf("cpu time = %v, want %v", got, want)
	}
	if got, want := k.Now(), Time(10*time.Millisecond); got != want {
		t.Errorf("clock = %v, want %v", got, want)
	}
}

func TestUniprocessorSerializesThreads(t *testing.T) {
	// Two CPU-bound threads on one CPU must take the sum of their work.
	k := New(testConfig(1))
	p := k.NewProcess("p", 0, 0)
	for i := 0; i < 2; i++ {
		k.Spawn(p, fmt.Sprintf("t%d", i), func(task *Task) {
			task.Compute(50 * time.Millisecond)
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if got, want := k.Now(), Time(100*time.Millisecond); got != want {
		t.Errorf("clock = %v, want %v", got, want)
	}
}

func TestMultiprocessorRunsThreadsConcurrently(t *testing.T) {
	// Two CPU-bound threads on two CPUs overlap completely.
	k := New(testConfig(2))
	p := k.NewProcess("p", 0, 0)
	for i := 0; i < 2; i++ {
		k.Spawn(p, fmt.Sprintf("t%d", i), func(task *Task) {
			task.Compute(50 * time.Millisecond)
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if got, want := k.Now(), Time(50*time.Millisecond); got != want {
		t.Errorf("clock = %v, want %v", got, want)
	}
}

func TestRoundRobinPreemptionInterleaves(t *testing.T) {
	// With a 10ms quantum, two 30ms threads alternate; both finish within
	// 60ms and neither monopolizes the CPU.
	tr := &SliceTracer{}
	cfg := testConfig(1)
	cfg.Tracer = tr
	k := New(cfg)
	p := k.NewProcess("p", 0, 0)
	k.Spawn(p, "a", func(task *Task) { task.Compute(30 * time.Millisecond) })
	k.Spawn(p, "b", func(task *Task) { task.Compute(30 * time.Millisecond) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if got, want := k.Now(), Time(60*time.Millisecond); got != want {
		t.Errorf("clock = %v, want %v", got, want)
	}
	preempts := 0
	for _, e := range tr.Events {
		if e.Kind == EvPreempt {
			preempts++
		}
	}
	if preempts < 4 {
		t.Errorf("preempts = %d, want >= 4 (threads must alternate)", preempts)
	}
}

func TestQuantumRenewedWhenAlone(t *testing.T) {
	tr := &SliceTracer{}
	cfg := testConfig(1)
	cfg.Tracer = tr
	k := New(cfg)
	p := k.NewProcess("p", 0, 0)
	k.Spawn(p, "solo", func(task *Task) { task.Compute(100 * time.Millisecond) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for _, e := range tr.Events {
		if e.Kind == EvPreempt {
			t.Fatalf("solo thread was preempted: %v", e)
		}
	}
	if got, want := k.Now(), Time(100*time.Millisecond); got != want {
		t.Errorf("clock = %v, want %v", got, want)
	}
}

func TestSleepDoesNotConsumeCPU(t *testing.T) {
	k := New(testConfig(1))
	p := k.NewProcess("p", 0, 0)
	var th *Thread
	th = k.Spawn(p, "t", func(task *Task) {
		task.Sleep(20 * time.Millisecond)
		task.Compute(time.Millisecond)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if got, want := th.CPUTime(), time.Millisecond; got != want {
		t.Errorf("cpu time = %v, want %v", got, want)
	}
	if got, want := k.Now(), Time(21*time.Millisecond); got != want {
		t.Errorf("clock = %v, want %v", got, want)
	}
}

func TestSleepingThreadFreesCPUForOthers(t *testing.T) {
	k := New(testConfig(1))
	p := k.NewProcess("p", 0, 0)
	var order []string
	k.Spawn(p, "sleeper", func(task *Task) {
		task.Sleep(5 * time.Millisecond)
		order = append(order, "sleeper")
	})
	k.Spawn(p, "worker", func(task *Task) {
		task.Compute(time.Millisecond)
		order = append(order, "worker")
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "worker" || order[1] != "sleeper" {
		t.Errorf("order = %v, want [worker sleeper]", order)
	}
}

func TestSemMutualExclusion(t *testing.T) {
	k := New(testConfig(2))
	p := k.NewProcess("p", 0, 0)
	sem := NewSem("inode")
	inCritical := 0
	maxInCritical := 0
	for i := 0; i < 2; i++ {
		k.Spawn(p, fmt.Sprintf("t%d", i), func(task *Task) {
			sem.Acquire(task)
			inCritical++
			if inCritical > maxInCritical {
				maxInCritical = inCritical
			}
			task.Compute(10 * time.Millisecond)
			inCritical--
			sem.Release(task)
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if maxInCritical != 1 {
		t.Errorf("max threads in critical section = %d, want 1", maxInCritical)
	}
	// Critical sections serialize: total time is the sum.
	if k.Now() < Time(20*time.Millisecond) {
		t.Errorf("clock = %v, want >= 20ms (serialized critical sections)", k.Now())
	}
}

func TestSemFIFOHandoff(t *testing.T) {
	k := New(Config{CPUs: 4, Quantum: 10 * time.Millisecond, Seed: 1})
	p := k.NewProcess("p", 0, 0)
	sem := NewSem("s")
	var order []string
	k.Spawn(p, "holder", func(task *Task) {
		sem.Acquire(task)
		task.Compute(10 * time.Millisecond)
		sem.Release(task)
	})
	for i := 0; i < 3; i++ {
		name := fmt.Sprintf("w%d", i)
		delay := time.Duration(i+1) * time.Millisecond
		k.Spawn(p, name, func(task *Task) {
			task.Compute(delay) // stagger arrival order deterministically
			sem.Acquire(task)
			order = append(order, name)
			sem.Release(task)
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"w0", "w1", "w2"}
	for i := range want {
		if i >= len(order) || order[i] != want[i] {
			t.Fatalf("acquisition order = %v, want %v", order, want)
		}
	}
}

func TestSemRecursiveAcquireFails(t *testing.T) {
	k := New(testConfig(1))
	p := k.NewProcess("p", 0, 0)
	sem := NewSem("s")
	k.Spawn(p, "t", func(task *Task) {
		sem.Acquire(task)
		sem.Acquire(task)
	})
	if err := k.Run(); err == nil {
		t.Fatal("recursive acquire should produce a run error")
	}
}

func TestSemReleaseByNonOwnerFails(t *testing.T) {
	k := New(testConfig(1))
	p := k.NewProcess("p", 0, 0)
	sem := NewSem("s")
	k.Spawn(p, "t", func(task *Task) {
		sem.Release(task)
	})
	if err := k.Run(); err == nil {
		t.Fatal("release by non-owner should produce a run error")
	}
}

func TestFlagSignalsWaiters(t *testing.T) {
	k := New(testConfig(2))
	p := k.NewProcess("p", 0, 0)
	f := NewFlag("go")
	var wokeAt Time
	k.Spawn(p, "waiter", func(task *Task) {
		f.Wait(task)
		wokeAt = task.Now()
	})
	k.Spawn(p, "setter", func(task *Task) {
		task.Compute(7 * time.Millisecond)
		f.Set(task)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if wokeAt < Time(7*time.Millisecond) {
		t.Errorf("waiter woke at %v, want >= 7ms", wokeAt)
	}
}

func TestFlagWaitAfterSetReturnsImmediately(t *testing.T) {
	k := New(testConfig(1))
	p := k.NewProcess("p", 0, 0)
	f := NewFlag("go")
	k.Spawn(p, "t", func(task *Task) {
		f.Set(task)
		before := task.Now()
		f.Wait(task)
		if task.Now() != before {
			t.Errorf("Wait after Set consumed time")
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestDeadlockDetected(t *testing.T) {
	k := New(testConfig(2))
	p := k.NewProcess("p", 0, 0)
	a, b := NewSem("a"), NewSem("b")
	k.Spawn(p, "t1", func(task *Task) {
		a.Acquire(task)
		task.Compute(time.Millisecond)
		b.Acquire(task)
	})
	k.Spawn(p, "t2", func(task *Task) {
		b.Acquire(task)
		task.Compute(time.Millisecond)
		a.Acquire(task)
	})
	err := k.Run()
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("err = %v, want ErrDeadlock", err)
	}
}

func TestKillBlockedThread(t *testing.T) {
	k := New(testConfig(1))
	p := k.NewProcess("p", 0, 0)
	sem := NewSem("s")
	var holder, victim *Thread
	holder = k.Spawn(p, "holder", func(task *Task) {
		sem.Acquire(task)
		task.Compute(50 * time.Millisecond)
		sem.Release(task)
	})
	victim = k.Spawn(p, "victim", func(task *Task) {
		task.Compute(time.Millisecond)
		sem.Acquire(task) // blocks; killed while waiting
		t.Error("victim should never acquire")
	})
	k.Spawn(p, "killer", func(task *Task) {
		task.Compute(2 * time.Millisecond)
		task.Kernel().Kill(victim)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if victim.State() != StateDone {
		t.Errorf("victim state = %v, want done", victim.State())
	}
	_ = holder
}

func TestKillRunningThread(t *testing.T) {
	k := New(testConfig(2))
	p := k.NewProcess("p", 0, 0)
	var victim *Thread
	victim = k.Spawn(p, "victim", func(task *Task) {
		task.Compute(time.Hour) // would blow MaxTime if not killed
	})
	k.Spawn(p, "killer", func(task *Task) {
		task.Compute(time.Millisecond)
		task.Kernel().Kill(victim)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if victim.State() != StateDone {
		t.Errorf("victim state = %v, want done", victim.State())
	}
	if k.Now() > Time(10*time.Millisecond) {
		t.Errorf("kill took too long: clock = %v", k.Now())
	}
}

func TestKillReadyThread(t *testing.T) {
	k := New(testConfig(1))
	p := k.NewProcess("p", 0, 0)
	var victim *Thread
	k.Spawn(p, "runner", func(task *Task) {
		task.Compute(2 * time.Millisecond)
		task.Kernel().Kill(victim)
		task.Compute(2 * time.Millisecond)
	})
	victim = k.Spawn(p, "victim", func(task *Task) {
		task.Compute(time.Hour)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if victim.State() != StateDone {
		t.Errorf("victim state = %v, want done", victim.State())
	}
}

func TestKilledThreadReleasesOwnedSem(t *testing.T) {
	k := New(testConfig(2))
	p := k.NewProcess("p", 0, 0)
	sem := NewSem("s")
	var holder *Thread
	holder = k.Spawn(p, "holder", func(task *Task) {
		sem.Acquire(task)
		task.Compute(time.Hour) // killed while holding
	})
	acquired := false
	k.Spawn(p, "waiter", func(task *Task) {
		task.Compute(time.Millisecond)
		sem.Acquire(task)
		acquired = true
		sem.Release(task)
	})
	k.Spawn(p, "killer", func(task *Task) {
		task.Compute(2 * time.Millisecond)
		task.Kernel().Kill(holder)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !acquired {
		t.Error("waiter never acquired the semaphore leaked by the killed holder")
	}
}

func TestOnProcessExitHook(t *testing.T) {
	k := New(testConfig(2))
	victimProc := k.NewProcess("victim", 0, 0)
	attackerProc := k.NewProcess("attacker", 1000, 1000)
	var spinner *Thread
	spinner = k.Spawn(attackerProc, "spin", func(task *Task) {
		for {
			task.Compute(10 * time.Microsecond)
		}
	})
	k.Spawn(victimProc, "save", func(task *Task) {
		task.Compute(5 * time.Millisecond)
	})
	k.OnProcessExit(func(p *Process) {
		if p == victimProc {
			k.KillProcess(attackerProc)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if spinner.State() != StateDone {
		t.Errorf("spinner state = %v, want done", spinner.State())
	}
}

func TestThreadPanicPropagates(t *testing.T) {
	k := New(testConfig(1))
	p := k.NewProcess("p", 0, 0)
	k.Spawn(p, "boom", func(task *Task) {
		task.Compute(time.Millisecond)
		panic("user bug")
	})
	err := k.Run()
	if err == nil {
		t.Fatal("expected error from panicking thread")
	}
}

func TestMaxStepsGuard(t *testing.T) {
	cfg := testConfig(1)
	cfg.MaxSteps = 100
	k := New(cfg)
	p := k.NewProcess("p", 0, 0)
	k.Spawn(p, "spin", func(task *Task) {
		for {
			task.Compute(time.Microsecond)
		}
	})
	err := k.Run()
	if !errors.Is(err, ErrMaxSteps) {
		t.Fatalf("err = %v, want ErrMaxSteps", err)
	}
}

func TestMaxTimeGuard(t *testing.T) {
	cfg := testConfig(1)
	cfg.MaxTime = time.Second
	k := New(cfg)
	p := k.NewProcess("p", 0, 0)
	k.Spawn(p, "long", func(task *Task) {
		task.Compute(time.Hour)
	})
	err := k.Run()
	if !errors.Is(err, ErrMaxTime) {
		t.Fatalf("err = %v, want ErrMaxTime", err)
	}
}

func TestTickOverheadStretchesCompute(t *testing.T) {
	cfg := Config{
		CPUs:       1,
		Quantum:    time.Second,
		TickPeriod: time.Millisecond,
		TickCost:   10 * time.Microsecond,
		Seed:       1,
	}
	k := New(cfg)
	p := k.NewProcess("p", 0, 0)
	var end Time
	k.Spawn(p, "t", func(task *Task) {
		task.Compute(10 * time.Millisecond)
		end = task.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// ~10 ticks at 10µs each stretch the 10ms segment by ~100µs.
	lo, hi := Time(10*time.Millisecond+80*time.Microsecond), Time(10*time.Millisecond+130*time.Microsecond)
	if end < lo || end > hi {
		t.Errorf("end = %v, want within [%v, %v]", end, lo, hi)
	}
}

func TestNoiseStretchesCompute(t *testing.T) {
	cfg := Config{
		CPUs:    1,
		Quantum: time.Second,
		Noise:   NoiseConfig{MeanInterval: time.Millisecond, MeanDuration: 100 * time.Microsecond},
		Seed:    7,
	}
	k := New(cfg)
	p := k.NewProcess("p", 0, 0)
	var end Time
	k.Spawn(p, "t", func(task *Task) {
		task.Compute(20 * time.Millisecond)
		end = task.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if end <= Time(20*time.Millisecond) {
		t.Errorf("end = %v, want > 20ms (noise must add latency)", end)
	}
	if end > Time(30*time.Millisecond) {
		t.Errorf("end = %v, want < 30ms (noise unreasonably large)", end)
	}
}

func TestSpawnFromRunningThread(t *testing.T) {
	k := New(testConfig(2))
	p := k.NewProcess("p", 0, 0)
	childRan := false
	k.Spawn(p, "parent", func(task *Task) {
		task.Compute(time.Millisecond)
		task.Spawn("child", func(ct *Task) {
			ct.Compute(time.Millisecond)
			childRan = true
		})
		task.Compute(time.Millisecond)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !childRan {
		t.Error("spawned child never ran")
	}
}

func TestYieldCPUMovesToBackOfQueue(t *testing.T) {
	k := New(testConfig(1))
	p := k.NewProcess("p", 0, 0)
	var order []string
	k.Spawn(p, "polite", func(task *Task) {
		task.Compute(time.Millisecond)
		task.YieldCPU()
		order = append(order, "polite")
	})
	k.Spawn(p, "other", func(task *Task) {
		task.Compute(time.Millisecond)
		order = append(order, "other")
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "other" {
		t.Errorf("order = %v, want other first", order)
	}
}

func TestTraceEventsWellFormed(t *testing.T) {
	tr := &SliceTracer{}
	cfg := testConfig(2)
	cfg.Tracer = tr
	k := New(cfg)
	p := k.NewProcess("p", 42, 42)
	sem := NewSem("inode:7")
	k.Spawn(p, "a", func(task *Task) {
		sem.Acquire(task)
		task.Compute(time.Millisecond)
		sem.Release(task)
		task.Mark("done-a")
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	var last Time = -1
	sawMark := false
	for _, e := range tr.Events {
		if e.T < last {
			t.Fatalf("trace not time-ordered: %v after %v", e.T, last)
		}
		last = e.T
		if e.Kind == EvMark && e.Label == "done-a" {
			sawMark = true
			if e.PID != int32(p.PID) {
				t.Errorf("mark PID = %d, want %d", e.PID, p.PID)
			}
		}
	}
	if !sawMark {
		t.Error("user mark event missing from trace")
	}
}

func TestDeterminism(t *testing.T) {
	run := func(seed int64) []Event {
		tr := &SliceTracer{}
		cfg := Config{
			CPUs:       2,
			Quantum:    5 * time.Millisecond,
			CtxSwitch:  2 * time.Microsecond,
			TickPeriod: time.Millisecond,
			TickCost:   2 * time.Microsecond,
			Noise:      NoiseConfig{MeanInterval: 500 * time.Microsecond, MeanDuration: 20 * time.Microsecond},
			Jitter:     0.05,
			Seed:       seed,
			Tracer:     tr,
		}
		k := New(cfg)
		p := k.NewProcess("p", 0, 0)
		sem := NewSem("s")
		for i := 0; i < 3; i++ {
			k.Spawn(p, fmt.Sprintf("t%d", i), func(task *Task) {
				for j := 0; j < 20; j++ {
					task.ComputeJitter(100 * time.Microsecond)
					sem.Acquire(task)
					task.ComputeJitter(30 * time.Microsecond)
					sem.Release(task)
				}
			})
		}
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return tr.Events
	}
	a, b := run(99), run(99)
	if len(a) != len(b) {
		t.Fatalf("event counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs:\n  %v\n  %v", i, a[i], b[i])
		}
	}
	c := run(100)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical traces; noise sources appear dead")
	}
}

func TestCPUTimeConservation(t *testing.T) {
	// Total accrued CPU time equals requested compute across preemptions.
	k := New(testConfig(1))
	p := k.NewProcess("p", 0, 0)
	var threads []*Thread
	want := time.Duration(0)
	for i := 0; i < 3; i++ {
		d := time.Duration(i+1) * 17 * time.Millisecond
		want += d
		threads = append(threads, k.Spawn(p, fmt.Sprintf("t%d", i), func(task *Task) {
			task.Compute(d)
		}))
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	got := time.Duration(0)
	for _, th := range threads {
		got += th.CPUTime()
	}
	if got != want {
		t.Errorf("total cpu time = %v, want %v", got, want)
	}
}
