package sim

import (
	"container/heap"
	"time"
)

// timedEvent is an entry in the kernel's event queue. Events at equal
// instants fire in insertion order (seq), which keeps runs deterministic.
type timedEvent struct {
	at  Time
	seq uint64
	fn  func()
}

type eventHeap []timedEvent

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) { *h = append(*h, x.(timedEvent)) }

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = timedEvent{}
	*h = old[:n-1]
	return ev
}

// schedule enqueues fn to run at instant at. Scheduling in the past is a
// programming error and is clamped to now to preserve monotonicity.
func (k *Kernel) schedule(at Time, fn func()) {
	if at < k.now {
		at = k.now
	}
	k.seq++
	heap.Push(&k.events, timedEvent{at: at, seq: k.seq, fn: fn})
}

// after enqueues fn to run d after the current instant.
func (k *Kernel) after(d time.Duration, fn func()) { k.schedule(k.now.Add(d), fn) }
