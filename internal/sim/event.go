package sim

import (
	"math/bits"
	"time"
)

// evKind discriminates the kernel-internal actions an event queue entry can
// carry. The hot scheduling paths (dispatch completion, quantum expiry,
// compute completion, timer wake-ups, ticks, noise) are encoded as compact
// tagged records instead of closures so that scheduling an event performs
// no heap allocation; evFunc remains for the rare cold paths (kill unwind,
// user-scheduled callbacks) where a closure is the clearest tool.
type evKind uint8

const (
	// evFunc runs an arbitrary callback (cold paths only).
	evFunc evKind = iota
	// evStartRun begins execution of th on c after context-switch latency.
	evStartRun
	// evQuantum fires quantum expiry for th running on c.
	evQuantum
	// evWorkDone completes th's pending compute segment.
	evWorkDone
	// evTimerWake wakes th from a timed block (sleep / simulated I/O).
	evTimerWake
	// evTick is the periodic timer interrupt on c.
	evTick
	// evNoise is a background-activity burst on c.
	evNoise
	// evNoiseSlot is a chooser-driven noise deliberation slot on c.
	evNoiseSlot
	// evSemIntr delivers an injected interruption to th's semaphore wait.
	evSemIntr
	// evKillDispatch frees c for redispatch after a mid-dispatch kill.
	evKillDispatch
	// evKillWake resumes a killed thread once so it can unwind.
	evKillWake
)

// timedEvent is an entry in the kernel's event queue. Events at equal
// instants fire in insertion order (seq), which keeps runs deterministic.
// The struct is stored by value in the queue: pushing and popping never box
// through an interface and never allocate.
type timedEvent struct {
	at   Time
	seq  uint64
	gen  uint64
	th   *Thread
	c    *cpu
	fn   func()
	kind evKind
}

// Per-CPU slot registers. Six of the event kinds are at-most-one-pending
// per CPU at any instant (the periodic sources re-arm only from their own
// handler; dispatch, quantum, and compute completion are tied to the single
// thread a CPU can host), so instead of paying heap push/pop/sift for the
// bulk of the event traffic they live in fixed registers on the cpu struct.
// The dispatcher takes the (at, seq) minimum across the heap top and every
// armed register, which is the identical strict total order the single heap
// imposed — seq values are still assigned by the same k.seq++ at the same
// call sites — so the processed event sequence is bit-for-bit unchanged.
//
// The one semantic difference is deliberate: re-arming a slot overwrites a
// superseded entry (e.g. the stale evWorkDone left behind by a preemption)
// that the heap would have popped as a generation-guarded no-op. Those
// ghost pops ran no handler and mutated no state; their only trace was
// advancing k.now between live events, which is observable solely through
// the final clock of an ErrMaxTime-truncated run. Kernel.lastAt tracks the
// maximum scheduled instant within the time budget so that path reproduces
// the historical end time exactly (see runLoop).
const (
	slotTick = iota
	slotNoise
	slotNoiseSlot
	slotStart
	slotQuantum
	slotWork
	numSlots
)

// slotEvKinds maps a slot index to the evKind its entries dispatch as.
var slotEvKinds = [numSlots]evKind{
	slotTick:      evTick,
	slotNoise:     evNoise,
	slotNoiseSlot: evNoiseSlot,
	slotStart:     evStartRun,
	slotQuantum:   evQuantum,
	slotWork:      evWorkDone,
}

// timeInf is the sentinel "no pending event" instant for Kernel.nextAt.
const timeInf = Time(1<<63 - 1)

// evSlot is one pending-event register.
type evSlot struct {
	at    Time
	seq   uint64
	gen   uint64
	th    *Thread
	armed bool
}

// eventQueue is a hand-rolled 4-ary min-heap over []timedEvent, ordered by
// (at, seq). Because (at, seq) is a strict total order, any heap-property-
// preserving implementation pops events in the identical globally sorted
// sequence, so neither replacing container/heap nor the heap's arity
// changes a simulated outcome — the rewrite only removes the per-operation
// boxing of timedEvent through `any`, and the wider fan-out halves the
// sift depth (four children share a cache line's worth of records).
type eventQueue []timedEvent

func (q eventQueue) less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

// push inserts ev, sifting it up to its heap position.
func (q *eventQueue) push(ev timedEvent) {
	h := append(*q, ev)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 4
		if !h.less(i, parent) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
	*q = h
}

// pop removes and returns the earliest event. The vacated tail slot is
// zeroed so the backing array does not retain closures or thread pointers.
func (q *eventQueue) pop() timedEvent {
	h := *q
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = timedEvent{}
	h = h[:n]
	*q = h
	i := 0
	for {
		c := 4*i + 1
		if c >= n {
			break
		}
		m := c
		for r := c + 1; r < c+4 && r < n; r++ {
			if h.less(r, m) {
				m = r
			}
		}
		if !h.less(m, i) {
			break
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
	return top
}

// reset empties the queue in place, dropping references but keeping the
// backing array for reuse by the next simulation round.
func (q *eventQueue) reset() {
	clear(*q)
	*q = (*q)[:0]
}

// scheduleEvent enqueues ev to fire at instant at. Scheduling in the past
// is a programming error and is clamped to now to preserve monotonicity.
func (k *Kernel) scheduleEvent(at Time, ev timedEvent) {
	if at < k.now {
		at = k.now
	}
	k.seq++
	if at <= k.maxT && at > k.lastAt {
		k.lastAt = at
	}
	if at < k.nextAt {
		k.nextAt = at
	}
	ev.at = at
	ev.seq = k.seq
	k.events.push(ev)
}

// armSlot loads c's pending-event register idx to fire at instant at,
// overwriting any superseded entry. It assigns the same k.seq++ sequence
// number a heap push would, so slot and heap events interleave in the
// identical global (at, seq) order.
func (k *Kernel) armSlot(c *cpu, idx int, at Time, th *Thread, gen uint64) {
	if at < k.now {
		at = k.now
	}
	k.seq++
	if at <= k.maxT && at > k.lastAt {
		k.lastAt = at
	}
	if at < k.nextAt {
		k.nextAt = at
	}
	s := &c.slots[idx]
	s.at, s.seq, s.gen, s.th, s.armed = at, k.seq, gen, th, true
	c.armedMask |= 1 << idx
}

// armSlotAfter loads a register to fire d after the current instant.
func (k *Kernel) armSlotAfter(c *cpu, idx int, d time.Duration, th *Thread, gen uint64) {
	k.armSlot(c, idx, k.now.Add(d), th, gen)
}

// popNext removes and returns the globally earliest pending event — the
// (at, seq) minimum over the heap top and every armed slot register — or
// reports that no event is pending. Equal instants resolve by seq, so the
// merge preserves the exact firing order of the single-heap scheduler.
// As a byproduct the scan refreshes k.nextAt to the exact instant of the
// runner-up, restoring a tight bound for the inline-completion fast path.
func (k *Kernel) popNext() (timedEvent, bool) {
	var (
		best     *evSlot
		bestCPU  *cpu
		bestIdx  int
		bestKind evKind
	)
	at, seq, have := Time(0), uint64(0), false
	second := timeInf
	if len(k.events) > 0 {
		at, seq, have = k.events[0].at, k.events[0].seq, true
	}
	for _, c := range k.cpus {
		for m := c.armedMask; m != 0; m &= m - 1 {
			i := bits.TrailingZeros8(m)
			s := &c.slots[i]
			if !have || s.at < at || (s.at == at && s.seq < seq) {
				if have && at < second {
					second = at
				}
				at, seq, have = s.at, s.seq, true
				best, bestCPU, bestIdx, bestKind = s, c, i, slotEvKinds[i]
			} else if s.at < second {
				second = s.at
			}
		}
	}
	if !have {
		k.nextAt = timeInf
		return timedEvent{}, false
	}
	if best == nil {
		ev := k.events.pop()
		if len(k.events) > 0 && k.events[0].at < second {
			second = k.events[0].at
		}
		k.nextAt = second
		return ev, true
	}
	best.armed = false
	bestCPU.armedMask &^= 1 << bestIdx
	k.nextAt = second
	return timedEvent{at: best.at, seq: best.seq, gen: best.gen, th: best.th, c: bestCPU, kind: bestKind}, true
}

// schedule enqueues fn to run at instant at (cold paths only; hot paths use
// the typed scheduleKernel records to stay allocation-free).
func (k *Kernel) schedule(at Time, fn func()) {
	k.scheduleEvent(at, timedEvent{kind: evFunc, fn: fn})
}

// after enqueues fn to run d after the current instant.
func (k *Kernel) after(d time.Duration, fn func()) { k.schedule(k.now.Add(d), fn) }

// scheduleKernel enqueues a typed kernel action without allocating.
func (k *Kernel) scheduleKernel(at Time, kind evKind, th *Thread, c *cpu, gen uint64) {
	k.scheduleEvent(at, timedEvent{kind: kind, th: th, c: c, gen: gen})
}

// afterKernel enqueues a typed kernel action d after the current instant.
func (k *Kernel) afterKernel(d time.Duration, kind evKind, th *Thread, c *cpu, gen uint64) {
	k.scheduleKernel(k.now.Add(d), kind, th, c, gen)
}

// dispatchEvent runs the action an event carries.
func (k *Kernel) dispatchEvent(ev *timedEvent) {
	switch ev.kind {
	case evFunc:
		ev.fn()
	case evStartRun:
		k.startRun(ev.c, ev.th, ev.gen)
	case evQuantum:
		k.quantumExpired(ev.c, ev.th, ev.gen)
	case evWorkDone:
		k.workDone(ev.th, ev.gen)
	case evTimerWake:
		k.timerWake(ev.th, ev.gen)
	case evTick:
		k.tickFire(ev.c)
	case evNoise:
		k.noiseFire(ev.c)
	case evNoiseSlot:
		k.noiseSlotFire(ev.c)
	case evSemIntr:
		k.semIntrFire(ev.th, ev.gen)
	case evKillDispatch:
		k.pendingOps--
		k.dispatchCPU(ev.c)
	case evKillWake:
		k.pendingOps--
		k.wake(ev.th)
	}
}
