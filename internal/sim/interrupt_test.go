package sim

import (
	"errors"
	"testing"
	"time"
)

// scriptedInterrupter interrupts every blocked wait after a fixed delay.
type scriptedInterrupter struct {
	delay     time.Duration
	armed     int
	delivered int
}

func (s *scriptedInterrupter) SemBlocked(th *Thread, sem string) (time.Duration, bool) {
	s.armed++
	return s.delay, true
}

func (s *scriptedInterrupter) SemInterrupted(th *Thread) { s.delivered++ }

// TestInterruptibleAcquireDelivered: a wait that would block for ~1ms gets
// an interruption 10µs in; the waiter comes back with ErrInterrupted and
// never owns the semaphore.
func TestInterruptibleAcquireDelivered(t *testing.T) {
	in := &scriptedInterrupter{delay: 10 * time.Microsecond}
	cfg := testConfig(2)
	cfg.Interrupter = in
	k := New(cfg)
	p := k.NewProcess("p", 0, 0)
	sem := NewSem("inode")
	var waitErr error
	var interruptedAt Time
	k.Spawn(p, "holder", func(task *Task) {
		sem.Acquire(task)
		task.Compute(time.Millisecond)
		sem.Release(task)
	})
	k.Spawn(p, "waiter", func(task *Task) {
		// Let the holder win the semaphore first.
		task.Sleep(time.Microsecond)
		waitErr = sem.AcquireInterruptible(task)
		interruptedAt = task.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(waitErr, ErrInterrupted) {
		t.Fatalf("waiter error = %v, want ErrInterrupted", waitErr)
	}
	if in.armed != 1 || in.delivered != 1 {
		t.Errorf("armed=%d delivered=%d, want 1/1", in.armed, in.delivered)
	}
	// Blocked at 1µs, interrupted 10µs later.
	if got, want := interruptedAt, Time(11*time.Microsecond); got != want {
		t.Errorf("interrupted at %v, want %v", got, want)
	}
	if sem.Waiters() != 0 {
		t.Errorf("interrupted waiter still queued (%d waiters)", sem.Waiters())
	}
}

// TestInterruptibleAcquireStaleDiscarded: the holder releases long before
// the armed interruption's instant, so the waiter acquires normally and
// the stale delivery is discarded without effect (and without wedging the
// event loop's pending-operation accounting).
func TestInterruptibleAcquireStaleDiscarded(t *testing.T) {
	in := &scriptedInterrupter{delay: 10 * time.Millisecond}
	cfg := testConfig(2)
	cfg.Interrupter = in
	k := New(cfg)
	p := k.NewProcess("p", 0, 0)
	sem := NewSem("inode")
	var waitErr error
	acquired := false
	k.Spawn(p, "holder", func(task *Task) {
		sem.Acquire(task)
		task.Compute(100 * time.Microsecond)
		sem.Release(task)
	})
	k.Spawn(p, "waiter", func(task *Task) {
		task.Sleep(time.Microsecond)
		waitErr = sem.AcquireInterruptible(task)
		if waitErr == nil {
			acquired = true
			sem.Release(task)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if waitErr != nil {
		t.Fatalf("waiter error = %v, want nil (stale interruption must not deliver)", waitErr)
	}
	if !acquired {
		t.Fatal("waiter never acquired the semaphore")
	}
	if in.armed != 1 || in.delivered != 0 {
		t.Errorf("armed=%d delivered=%d, want 1/0", in.armed, in.delivered)
	}
}

// TestInterruptibleAcquireWithoutInterrupter: with no Interrupter in the
// config, AcquireInterruptible is exactly Acquire.
func TestInterruptibleAcquireWithoutInterrupter(t *testing.T) {
	k := New(testConfig(2))
	p := k.NewProcess("p", 0, 0)
	sem := NewSem("inode")
	var waitErr error
	k.Spawn(p, "holder", func(task *Task) {
		sem.Acquire(task)
		task.Compute(time.Millisecond)
		sem.Release(task)
	})
	k.Spawn(p, "waiter", func(task *Task) {
		task.Sleep(time.Microsecond)
		waitErr = sem.AcquireInterruptible(task)
		if waitErr == nil {
			sem.Release(task)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if waitErr != nil {
		t.Fatalf("waiter error = %v, want nil", waitErr)
	}
}

// TestInterruptibleAcquireUncontendedConsumesNoDecision: the fast path
// never consults the Interrupter, so fault plans perturb only genuinely
// blocked waits.
func TestInterruptibleAcquireUncontendedConsumesNoDecision(t *testing.T) {
	in := &scriptedInterrupter{delay: time.Microsecond}
	cfg := testConfig(1)
	cfg.Interrupter = in
	k := New(cfg)
	p := k.NewProcess("p", 0, 0)
	sem := NewSem("inode")
	k.Spawn(p, "solo", func(task *Task) {
		if err := sem.AcquireInterruptible(task); err != nil {
			t.Errorf("uncontended acquire: %v", err)
		}
		sem.Release(task)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if in.armed != 0 {
		t.Errorf("interrupter consulted %d times on an uncontended acquire, want 0", in.armed)
	}
}
