package sim

import (
	"testing"
	"time"
)

// benchConfig is a quiet machine: no ticks or noise, so the measured work
// is the scheduler/event-queue machinery itself.
func benchConfig(cpus int) Config {
	return Config{
		CPUs:      cpus,
		Quantum:   time.Second,
		CtxSwitch: time.Microsecond,
		MaxTime:   time.Hour,
		MaxSteps:  1 << 40,
	}
}

// BenchmarkEventQueuePushPop measures the raw heap operations. The steady
// state must be allocation-free: timedEvent is stored by value and the
// backing array is retained across iterations.
func BenchmarkEventQueuePushPop(b *testing.B) {
	b.ReportAllocs()
	var q eventQueue
	// Pre-grow so steady-state measurement excludes the one-time growth.
	for i := 0; i < 1024; i++ {
		q.push(timedEvent{at: Time(i), seq: uint64(i)})
	}
	q.reset()
	var seq uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// A batch with interleaved order exercises both sift directions.
		for j := 0; j < 64; j++ {
			seq++
			q.push(timedEvent{at: Time((j * 37) % 64), seq: seq})
		}
		for j := 0; j < 64; j++ {
			q.pop()
		}
	}
}

// BenchmarkKernelEventDispatch measures end-to-end event processing for a
// compute-bound workload, reusing one kernel across iterations via Reset —
// the per-round pattern of a campaign worker.
func BenchmarkKernelEventDispatch(b *testing.B) {
	b.ReportAllocs()
	cfg := benchConfig(2)
	k := New(cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.Reset(cfg)
		p := k.NewProcess("p", 0, 0)
		for t := 0; t < 2; t++ {
			k.Spawn(p, "w", func(task *Task) {
				for j := 0; j < 1000; j++ {
					task.Compute(time.Microsecond)
				}
			})
		}
		if err := k.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSemContention measures semaphore handoff under contention: four
// threads on one CPU hammering a single lock, so nearly every Acquire
// blocks and every Release hands off.
func BenchmarkSemContention(b *testing.B) {
	b.ReportAllocs()
	cfg := benchConfig(1)
	k := New(cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.Reset(cfg)
		p := k.NewProcess("p", 0, 0)
		s := NewSem("hot")
		for t := 0; t < 4; t++ {
			k.Spawn(p, "w", func(task *Task) {
				for j := 0; j < 250; j++ {
					s.Acquire(task)
					task.Compute(100 * time.Nanosecond)
					s.Release(task)
				}
			})
		}
		if err := k.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTimedSleep measures the timer-wake path (blockTimed): the most
// frequent blocking primitive, now armed without any closure allocation.
func BenchmarkTimedSleep(b *testing.B) {
	b.ReportAllocs()
	cfg := benchConfig(1)
	k := New(cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.Reset(cfg)
		p := k.NewProcess("p", 0, 0)
		k.Spawn(p, "sleeper", func(task *Task) {
			for j := 0; j < 1000; j++ {
				task.Sleep(time.Microsecond)
			}
		})
		if err := k.Run(); err != nil {
			b.Fatal(err)
		}
	}
}
