package experiments

import (
	"errors"
	"fmt"
	"io"

	"time"

	"tocttou/internal/attack"
	"tocttou/internal/core"
	"tocttou/internal/fs"
	"tocttou/internal/machine"
	"tocttou/internal/report"
	"tocttou/internal/victim"
)

// SendmailRow is one machine's result for the blind append attack.
type SendmailRow struct {
	Machine string
	Result  core.CampaignResult
	// Refused counts deliveries aborted by the symlink check — rounds
	// where the defense-by-checking actually worked.
	Refused int
}

// SendmailResult reproduces the paper's §1 motivating example — the
// sendmail-style <lstat, open> pair attacked blindly by a flip-flopping
// mailbox owner — across machines. The attacker cannot observe the check,
// so this scenario isolates the pure scheduling effect: the uniprocessor
// protects the victim, the multiprocessor does not.
type SendmailResult struct {
	Rows   []SendmailRow
	Rounds int
}

// Name implements Result.
func (r *SendmailResult) Name() string { return "sendmail" }

// Render implements Result.
func (r *SendmailResult) Render(w io.Writer) error {
	fmt.Fprintf(w, "§1 example — sendmail-style <lstat, open> mailbox attack (%d rounds)\n", r.Rounds)
	fmt.Fprintf(w, "The attacker blindly flip-flops the mailbox between a file and a symlink\n")
	fmt.Fprintf(w, "to /etc/passwd; success = the delivery appended to /etc/passwd.\n\n")
	tbl := &report.Table{Headers: []string{"machine", "passwd captured", "delivery refused by check", "delivered safely"}}
	for _, row := range r.Rows {
		safe := row.Result.Rounds - row.Result.Successes - row.Refused
		tbl.AddRow(row.Machine,
			fmt.Sprintf("%d/%d (%.1f%%)", row.Result.Successes, row.Result.Rounds, row.Result.Rate()*100),
			fmt.Sprintf("%d (%.1f%%)", row.Refused, float64(row.Refused)/float64(row.Result.Rounds)*100),
			fmt.Sprintf("%d (%.1f%%)", safe, float64(safe)/float64(row.Result.Rounds)*100),
		)
	}
	return tbl.Render(w)
}

// Sendmail runs the blind mailbox attack on all three machines.
func Sendmail(opt Options) (Result, error) {
	rounds := opt.rounds(500)
	seed := opt.seed(15013)
	machines := []machine.Profile{machine.Uniprocessor(), machine.SMP2(), machine.MultiCore()}
	scs := make([]core.Scenario, len(machines))
	for i, m := range machines {
		scs[i] = core.Scenario{
			Machine:  m,
			Victim:   victim.NewMailer(),
			Attacker: attack.NewFlipFlop(),
			// The mailer appends MessageSize bytes; success is growth of
			// the privileged file, not an ownership change.
			SuccessCheck: passwdGrew,
			FileSize:     4 << 10,
			Seed:         seed + int64(i)*7727,
		}
	}
	// Refused deliveries aren't part of CampaignResult; count them as the
	// rounds stream past instead of buffering every Round.
	refused := make([]int, len(machines))
	so := opt.sweep()
	so.OnRound = func(point, _ int, r core.Round) {
		if errors.Is(r.VictimErr, victim.ErrDeliveryRefused) {
			refused[point]++
		}
	}
	results, err := opt.runSweepWith(scs, rounds, so)
	if err != nil {
		return nil, fmt.Errorf("sendmail: %w", err)
	}
	out := &SendmailResult{Rounds: rounds}
	for i, m := range machines {
		out.Rows = append(out.Rows, SendmailRow{Machine: m.Name, Result: results[i], Refused: refused[i]})
	}
	return out, nil
}

// passwdGrew reports whether the privileged file gained content.
func passwdGrew(f *fs.FS, p core.Paths, _ int) bool {
	info, err := f.LookupInfo(p.Passwd)
	if err != nil {
		return false
	}
	return info.Size > p.PasswdSize
}

// Eq1Row is one configuration of the Equation-1 term study.
type Eq1Row struct {
	Label string
	// PSuspended is the measured P(victim suspended in window).
	PSuspended float64
	// Observed is the measured success rate.
	Observed float64
	// Term names which Equation-1 factor the row exercises.
	Term string
}

// Eq1Result dissects Equation 1 term by term: on the uniprocessor the
// success rate tracks the measured suspension probability (the first
// term); on the SMP with a tiny window, success lives in the second term
// and degrades when background load takes the attacker's CPU — until
// elevated priority hands the attacker a dedicated processor again
// (§3.2/§3.3's discussion of P(attack scheduled), quantified).
type Eq1Result struct {
	Rows   []Eq1Row
	Rounds int
}

// Name implements Result.
func (r *Eq1Result) Name() string { return "eq1" }

// Render implements Result.
func (r *Eq1Result) Render(w io.Writer) error {
	fmt.Fprintf(w, "Equation 1 term study (%d rounds per row)\n", r.Rounds)
	fmt.Fprintf(w, "P(success) = P(susp)·P(sched|susp)·P(fin|susp) + P(run)·P(sched|run)·P(fin|run)\n\n")
	tbl := &report.Table{Headers: []string{
		"configuration", "P(susp) measured", "observed success", "exercises",
	}}
	for _, row := range r.Rows {
		tbl.AddRow(row.Label,
			fmt.Sprintf("%.1f%%", row.PSuspended*100),
			fmt.Sprintf("%.1f%%", row.Observed*100),
			row.Term,
		)
	}
	if err := tbl.Render(w); err != nil {
		return err
	}
	fmt.Fprintf(w, "\nOn one CPU success tracks P(susp); on the SMP the second term dominates\n")
	fmt.Fprintf(w, "and collapses when CPU hogs contend for the attacker's processor — unless\n")
	fmt.Fprintf(w, "the attacker's priority effectively dedicates a CPU to it again.\n")
	return nil
}

// Eq1 runs the term study.
func Eq1(opt Options) (Result, error) {
	rounds := opt.rounds(200)
	seed := opt.seed(16033)

	// First term: on the uniprocessor, success ≈ P(victim suspended).
	upSc := core.Scenario{
		Machine: machine.Uniprocessor(), Victim: victim.NewVi(), Attacker: attack.NewV1(),
		UseSyscall: "chown", FileSize: 500 << 10, Seed: seed, Trace: true,
	}

	// Second term: on the SMP with a 1-byte file the window is ~100µs and
	// the victim almost never suspends — success comes entirely from the
	// attacker being scheduled while the victim runs.
	smpSc := core.Scenario{
		Machine: machine.SMP2(), Victim: victim.NewVi(), Attacker: attack.NewV1(),
		UseSyscall: "chown", FileSize: 1, Seed: seed + 104717, Trace: true,
	}

	loaded := smpSc
	loaded.Seed += 104717
	loaded.LoadThreads = 3
	// Let the editor phase span several quanta so the window opens at a
	// uniform point of the hog/attacker CPU rotation.
	loaded.VictimStartupMax = 350 * time.Millisecond

	prioritized := loaded
	prioritized.Seed += 104717
	prioritized.AttackerNice = -10

	configs := []struct {
		label, term string
		sc          core.Scenario
	}{
		{"uniprocessor, vi 500KB, no load", "P(susp): success ≈ it", upSc},
		{"SMP, vi 1 byte, no load", "P(sched|running) ≈ 1", smpSc},
		{"SMP, vi 1 byte, 3 CPU hogs", "P(sched|running) < 1 under load", loaded},
		{"SMP, vi 1 byte, 3 hogs, attacker nice -10", "priority re-dedicates a CPU", prioritized},
	}
	scs := make([]core.Scenario, len(configs))
	for i, c := range configs {
		scs[i] = c.sc
	}
	results, err := opt.runSweep(scs, rounds)
	if err != nil {
		return nil, fmt.Errorf("eq1: %w", err)
	}
	out := &Eq1Result{Rounds: rounds}
	for i, c := range configs {
		out.Rows = append(out.Rows, Eq1Row{
			Label: c.label, Term: c.term,
			PSuspended: results[i].PSuspended(), Observed: results[i].Rate(),
		})
	}
	return out, nil
}
