package experiments

import (
	"flag"
	"os"
	"testing"
)

var probeExperiments = flag.Bool("probe", false, "run the experiment smoke probe")

// TestExperimentProbe renders every experiment at reduced scale; a tuning
// and inspection aid.
func TestExperimentProbe(t *testing.T) {
	if !*probeExperiments {
		t.Skip("probe disabled")
	}
	only := os.Getenv("PROBE_ONLY")
	opt := Options{Rounds: 60}
	for _, name := range Names() {
		if only != "" && only != name {
			continue
		}
		res, err := Run(name, opt)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		t.Logf("=== %s ===", name)
		if err := res.Render(testWriter{t}); err != nil {
			t.Errorf("%s render: %v", name, err)
		}
	}
}

type testWriter struct{ t *testing.T }

func (w testWriter) Write(p []byte) (int, error) {
	w.t.Logf("%s", p)
	return len(p), nil
}
