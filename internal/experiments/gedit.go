package experiments

import (
	"fmt"
	"io"

	"tocttou/internal/attack"
	"tocttou/internal/core"
	"tocttou/internal/machine"
	"tocttou/internal/model"
	"tocttou/internal/prog"
	"tocttou/internal/report"
	"tocttou/internal/trace"
	"tocttou/internal/victim"
)

// geditFileKB is the document size used by the gedit campaigns. The
// gedit window excludes the file write, so the size only influences the
// attacker's unlink truncation time.
const geditFileKB = 2

// geditScenario builds the standard gedit scenario.
func geditScenario(m machine.Profile, attacker prog.Program, seed int64, traced bool) core.Scenario {
	return core.Scenario{
		Machine:    m,
		Victim:     victim.NewGedit(),
		Attacker:   attacker,
		UseSyscall: "chmod",
		FileSize:   geditFileKB << 10,
		Seed:       seed,
		Trace:      traced,
	}
}

// Table2Result reproduces the paper's Table 2: gedit attacks on the SMP.
type Table2Result struct {
	Rounds   int
	Campaign core.CampaignResult
	// PredictedPoint is clamp(L/D): the conservative estimate the paper
	// computes from Table 2 (~35%) and notes under-predicts reality.
	PredictedPoint float64
	PredictedMC    float64
}

// Name implements Result.
func (r *Table2Result) Name() string { return "table2" }

// Render implements Result.
func (r *Table2Result) Render(w io.Writer) error {
	fmt.Fprintf(w, "Table 2 — gedit SMP attack (%d rounds)\n", r.Rounds)
	fmt.Fprintf(w, "Paper: L = 11.6 ± 3.89 µs, D = 32.7 ± 2.83 µs; formula predicts ~35%%,\n")
	fmt.Fprintf(w, "observed ≈ 83%% — the paper notes its t1 estimate (and thus L) is conservative.\n\n")
	tbl := &report.Table{Headers: []string{"", "average", "stdev"}}
	tbl.AddRow("L (µs)", fmt.Sprintf("%.1f", r.Campaign.L.Mean()), fmt.Sprintf("%.2f", r.Campaign.L.Stdev()))
	tbl.AddRow("D (µs)", fmt.Sprintf("%.1f", r.Campaign.D.Mean()), fmt.Sprintf("%.2f", r.Campaign.D.Stdev()))
	if err := tbl.Render(w); err != nil {
		return err
	}
	fmt.Fprintf(w, "\nobserved success: %s\n", r.Campaign.Proportion())
	fmt.Fprintf(w, "formula (1) point estimate clamp(L/D): %.1f%% (conservative, as in the paper)\n", r.PredictedPoint*100)
	fmt.Fprintf(w, "formula (1) with variance (Monte Carlo): %.1f%%\n", r.PredictedMC*100)
	return nil
}

// Table2 runs the gedit SMP campaign.
func Table2(opt Options) (Result, error) {
	rounds := opt.rounds(500)
	seed := opt.seed(5003)
	res, err := core.RunCampaign(geditScenario(machine.SMP2(), attack.NewV1(), seed, true), rounds)
	if err != nil {
		return nil, fmt.Errorf("table2: %w", err)
	}
	return &Table2Result{
		Rounds:         rounds,
		Campaign:       res,
		PredictedPoint: model.LDRate(res.L.Mean(), res.D.Mean()),
		PredictedMC:    model.MultiprocessorSuccess(res.L, res.D, seed),
	}, nil
}

// CampaignSummary is a generic single-campaign result.
type CampaignSummary struct {
	ID       string
	Title    string
	PaperRef string
	Rounds   int
	Campaign core.CampaignResult
}

// Name implements Result.
func (r *CampaignSummary) Name() string { return r.ID }

// Render implements Result.
func (r *CampaignSummary) Render(w io.Writer) error {
	fmt.Fprintf(w, "%s (%d rounds)\n%s\n\n", r.Title, r.Rounds, r.PaperRef)
	fmt.Fprintf(w, "observed success: %s\n", r.Campaign.Proportion())
	if r.Campaign.Detected > 0 {
		fmt.Fprintf(w, "rounds with detection: %d/%d\n", r.Campaign.Detected, r.Campaign.Rounds)
	}
	if r.Campaign.L.N() > 0 {
		fmt.Fprintf(w, "L = %.1f ± %.1f µs, D = %.1f ± %.1f µs\n",
			r.Campaign.L.Mean(), r.Campaign.L.Stdev(), r.Campaign.D.Mean(), r.Campaign.D.Stdev())
	}
	return nil
}

// GeditUniprocessor reproduces §4.2: essentially zero success.
func GeditUniprocessor(opt Options) (Result, error) {
	rounds := opt.rounds(500)
	seed := opt.seed(6007)
	res, err := core.RunCampaign(geditScenario(machine.Uniprocessor(), attack.NewV1(), seed, false), rounds)
	if err != nil {
		return nil, fmt.Errorf("geditup: %w", err)
	}
	return &CampaignSummary{
		ID: "geditup", Title: "§4.2 — gedit attack on a uniprocessor",
		PaperRef: "Paper: no successes.", Rounds: rounds, Campaign: res,
	}, nil
}

// GeditMulticoreV1 reproduces §6.2.1: the naive attacker's page-fault trap
// makes it lose the 3 µs window.
func GeditMulticoreV1(opt Options) (Result, error) {
	rounds := opt.rounds(500)
	seed := opt.seed(7001)
	res, err := core.RunCampaign(geditScenario(machine.MultiCore(), attack.NewV1(), seed, true), rounds)
	if err != nil {
		return nil, fmt.Errorf("geditmc1: %w", err)
	}
	return &CampaignSummary{
		ID: "geditmc1", Title: "§6.2.1 — gedit attack program 1 on the multi-core",
		PaperRef: "Paper: almost no success (the first unlink page-faults inside the window).",
		Rounds:   rounds, Campaign: res,
	}, nil
}

// GeditMulticoreV2 reproduces §6.2.2: pre-faulting the stub pages turns
// near-zero into many successes.
func GeditMulticoreV2(opt Options) (Result, error) {
	rounds := opt.rounds(500)
	seed := opt.seed(8009)
	res, err := core.RunCampaign(geditScenario(machine.MultiCore(), attack.NewV2(), seed, true), rounds)
	if err != nil {
		return nil, fmt.Errorf("geditmc2: %w", err)
	}
	return &CampaignSummary{
		ID: "geditmc2", Title: "§6.2.2 — gedit attack program 2 (pre-faulted) on the multi-core",
		PaperRef: "Paper: \"we begin to see many successes\".",
		Rounds:   rounds, Campaign: res,
	}, nil
}

// TimelineResult is a single-round event timeline (Figures 8 and 10).
type TimelineResult struct {
	ID       string
	Title    string
	PaperRef string
	Round    core.Round
	// Rendered is the pre-built ASCII timeline.
	Rendered string
	SeedUsed int64
	Tries    int
}

// Name implements Result.
func (r *TimelineResult) Name() string { return r.ID }

// Render implements Result.
func (r *TimelineResult) Render(w io.Writer) error {
	fmt.Fprintf(w, "%s\n%s\n", r.Title, r.PaperRef)
	fmt.Fprintf(w, "(seed %d after %d candidate rounds; success=%v, L=%.1fµs, D=%.1fµs)\n\n",
		r.SeedUsed, r.Tries, r.Round.Success, r.Round.LD.Lmicros(), r.Round.LD.Dmicros())
	_, err := io.WriteString(w, r.Rendered)
	return err
}

// findRound searches seeds for a traced round matching pred, evaluating
// candidates on the shared worker pool. The first-match semantics (and
// the seed stride) are those of the old serial scan.
func findRound(sc core.Scenario, want func(core.Round) bool) (core.Round, int64, int, error) {
	return core.FindRound(sc, 512, 9973, want)
}

// renderTimeline draws the window-centric portion of a round's trace.
func renderTimeline(r core.Round) string {
	log := trace.New(r.Events)
	lanes := trace.BuildTimeline(log, map[int32]string{
		r.VictimPID:   "gedit",
		r.AttackerPID: "attacker",
	})
	from := r.LD.T1.Add(-30 * 1000)
	to := r.LD.T1.Add(90 * 1000)
	return trace.RenderASCII(lanes, from, to, 100)
}

// Fig8 captures a failed naive attack on the multi-core, showing the trap
// and the unlink arriving after chmod/chown.
func Fig8(opt Options) (Result, error) {
	sc := geditScenario(machine.MultiCore(), attack.NewV1(), opt.seed(9001), true)
	r, seed, tries, err := findRound(sc, func(r core.Round) bool {
		return !r.Success && r.LD.Detected && r.LD.WindowFound
	})
	if err != nil {
		return nil, fmt.Errorf("fig8: %w", err)
	}
	return &TimelineResult{
		ID:    "fig8",
		Title: "Figure 8 — failed gedit attack (program 1) on the multi-core",
		PaperRef: "Paper: the attacker's 17µs stat→unlink gap (11µs compute + 6µs trap)\n" +
			"loses to gedit's 3µs rename→chmod gap; unlink blocks on the semaphore.",
		Round: r, Rendered: renderTimeline(r), SeedUsed: seed, Tries: tries,
	}, nil
}

// Fig10 captures a successful pre-faulted attack on the multi-core.
func Fig10(opt Options) (Result, error) {
	sc := geditScenario(machine.MultiCore(), attack.NewV2(), opt.seed(10007), true)
	r, seed, tries, err := findRound(sc, func(r core.Round) bool {
		return r.Success && r.LD.Detected && r.LD.WindowFound
	})
	if err != nil {
		return nil, fmt.Errorf("fig10: %w", err)
	}
	return &TimelineResult{
		ID:    "fig10",
		Title: "Figure 10 — successful gedit attack (program 2) on the multi-core",
		PaperRef: "Paper: with the trap gone the stat→unlink gap shrinks to ~2µs; the stat is\n" +
			"lengthened by dentry contention and detection syncs with the rename.",
		Round: r, Rendered: renderTimeline(r), SeedUsed: seed, Tries: tries,
	}, nil
}
