package experiments

import (
	"fmt"
	"io"
	"math"

	"tocttou/internal/attack"
	"tocttou/internal/core"
	"tocttou/internal/machine"
	"tocttou/internal/model"
	"tocttou/internal/report"
	"tocttou/internal/victim"
)

// ModelPoint compares one scenario's predicted and observed rates.
type ModelPoint struct {
	Scenario  string
	Predicted float64
	Observed  float64
	Note      string
}

// ModelValidationResult validates Equation 1 and formula (1) against the
// simulation across the paper's regimes.
type ModelValidationResult struct {
	Points []ModelPoint
	// MeanAbsErr is the mean |predicted - observed| over the points that
	// claim quantitative accuracy (the conservative gedit estimate is
	// excluded, as the paper itself flags it).
	MeanAbsErr float64
}

// Name implements Result.
func (r *ModelValidationResult) Name() string { return "model" }

// Render implements Result.
func (r *ModelValidationResult) Render(w io.Writer) error {
	fmt.Fprintf(w, "Model validation — Equation 1 and formula (1) vs simulated campaigns\n\n")
	tbl := &report.Table{Headers: []string{"scenario", "predicted", "observed", "note"}}
	for _, p := range r.Points {
		tbl.AddRow(p.Scenario,
			fmt.Sprintf("%.1f%%", p.Predicted*100),
			fmt.Sprintf("%.1f%%", p.Observed*100),
			p.Note)
	}
	if err := tbl.Render(w); err != nil {
		return err
	}
	fmt.Fprintf(w, "\nmean |error| over quantitative points: %.1f%%\n", r.MeanAbsErr*100)
	return nil
}

// ModelValidation runs the validation sweep.
func ModelValidation(opt Options) (Result, error) {
	rounds := opt.rounds(300)
	seed := opt.seed(12011)
	var out ModelValidationResult
	var errSum float64
	var errN int

	quant := func(p ModelPoint) {
		out.Points = append(out.Points, p)
		errSum += math.Abs(p.Predicted - p.Observed)
		errN++
	}

	// All seven validation campaigns run as one sweep; the points keep
	// their historical base seeds, so every observed rate is bit-identical
	// to the old serial-campaign version.
	up := machine.Uniprocessor()
	upSizes := []int{100, 500, 1000}
	var scs []core.Scenario
	for i, kb := range upSizes {
		scs = append(scs, viScenario(up, kb, seed+int64(i)*6311, false))
	}
	scs = append(scs, core.Scenario{
		Machine: up, Victim: victim.NewAlwaysSuspended(), Attacker: attack.NewV1(),
		UseSyscall: "chown", FileSize: 100 << 10, Seed: seed + 999,
	})
	t1sc := viScenario(machine.SMP2(), 0, seed+1777, true)
	t1sc.FileSize = 1
	scs = append(scs, t1sc)
	scs = append(scs, viScenario(machine.SMP2(), 100, seed+2888, true))
	scs = append(scs, geditScenario(machine.SMP2(), attack.NewV1(), seed+3999, true))
	results, err := opt.runSweep(scs, rounds)
	if err != nil {
		return nil, fmt.Errorf("model: %w", err)
	}

	// Uniprocessor vi at three sizes: Equation 1's first term only, with
	// P(suspended) from quantum phase + stall model.
	for i, kb := range upSizes {
		window := viWindowEstimate(up, int64(kb)<<10)
		stall := model.StallProbability(int64(kb)<<10, up.Latency.WriteStallProbPerKB)
		eq := model.Uniprocessor(model.UniprocessorSuspension(window, up.Quantum, stall), 1, 1)
		pred, err := eq.SuccessProbability()
		if err != nil {
			return nil, err
		}
		quant(ModelPoint{
			Scenario:  fmt.Sprintf("vi / uniprocessor / %dKB", kb),
			Predicted: pred, Observed: results[i].Rate(),
			Note: "Eq.1 first term (P(susp)·1·1)",
		})
	}

	// Always-suspended victim: Equation 1 upper bound P(susp)=1.
	quant(ModelPoint{
		Scenario:  "rpm-like / uniprocessor / 100KB",
		Predicted: 1.0, Observed: results[3].Rate(),
		Note: "P(victim suspended)=1 ⇒ Eq.1 ≈ 1 (§3.2)",
	})

	// SMP vi, 1 byte: formula (1) with measured L/D variance.
	t1res := results[4]
	quant(ModelPoint{
		Scenario:  "vi / SMP / 1 byte",
		Predicted: model.MultiprocessorSuccess(t1res.L, t1res.D, seed),
		Observed:  t1res.Rate(),
		Note:      "formula (1) Monte Carlo over measured L, D",
	})

	// SMP vi, 100KB: L >> D, formula (1) saturates at 1.
	t2res := results[5]
	quant(ModelPoint{
		Scenario:  "vi / SMP / 100KB",
		Predicted: model.LDRate(t2res.L.Mean(), t2res.D.Mean()),
		Observed:  t2res.Rate(),
		Note:      "L >> D ⇒ formula (1) = 1",
	})

	// SMP gedit: the conservative clamp(L/D) — under-predicts, exactly
	// as the paper's Table 2 discussion observes.
	gres := results[6]
	out.Points = append(out.Points, ModelPoint{
		Scenario:  "gedit / SMP",
		Predicted: model.LDRate(gres.L.Mean(), gres.D.Mean()),
		Observed:  gres.Rate(),
		Note:      "conservative t1 ⇒ under-predicts (paper: 35% vs 83%)",
	})

	if errN > 0 {
		out.MeanAbsErr = errSum / float64(errN)
	}
	return &out, nil
}
