package experiments

import (
	"fmt"
	"io"
	"strings"
	"time"

	"tocttou/internal/attack"
	"tocttou/internal/core"
	"tocttou/internal/machine"
	"tocttou/internal/metrics"
	"tocttou/internal/model"
	"tocttou/internal/report"
	"tocttou/internal/stats"
	"tocttou/internal/victim"
)

// viScenario builds the standard vi scenario on a machine.
func viScenario(m machine.Profile, sizeKB int, seed int64, traced bool) core.Scenario {
	return core.Scenario{
		Machine:    m,
		Victim:     victim.NewVi(),
		Attacker:   attack.NewV1(),
		UseSyscall: "chown",
		FileSize:   int64(sizeKB) << 10,
		Seed:       seed,
		Trace:      traced,
	}
}

// SweepRow is one point of a size-swept campaign.
type SweepRow struct {
	SizeKB int
	Result core.CampaignResult
	// Predicted is the model's success-rate prediction for this point.
	Predicted float64
}

// renderRowMetrics appends the observability block for size-swept rows.
func renderRowMetrics(w io.Writer, rows []SweepRow) error {
	labels := make([]string, len(rows))
	pts := make([]metrics.Point, len(rows))
	for i, row := range rows {
		labels[i] = fmt.Sprintf("%d KB", row.SizeKB)
		pts[i] = row.Result.Metrics
	}
	return report.MetricsSection(w, labels, pts)
}

// Fig6Result reproduces the paper's Figure 6: vi attack success rate on a
// uniprocessor as a function of file size.
type Fig6Result struct {
	Rows   []SweepRow
	Rounds int
	// ShowMetrics appends the kernel-metrics section to the rendering.
	ShowMetrics bool
}

// Name implements Result.
func (r *Fig6Result) Name() string { return "fig6" }

// Render implements Result.
func (r *Fig6Result) Render(w io.Writer) error {
	fmt.Fprintf(w, "Figure 6 — vi attack success rate on a uniprocessor (%d rounds per size)\n", r.Rounds)
	fmt.Fprintf(w, "Paper: low single digits at 100KB rising to ~18%% at 1MB, noisy.\n\n")
	tbl := &report.Table{Headers: []string{"file size (KB)", "success", "rate", "95% CI", "model predicts"}}
	xs := make([]float64, 0, len(r.Rows))
	ys := make([]float64, 0, len(r.Rows))
	preds := make([]float64, 0, len(r.Rows))
	for _, row := range r.Rows {
		lo, hi := row.Result.Proportion().WilsonInterval(1.96)
		tbl.AddRow(
			fmt.Sprintf("%d", row.SizeKB),
			fmt.Sprintf("%d/%d", row.Result.Successes, row.Result.Rounds),
			fmt.Sprintf("%.1f%%", row.Result.Rate()*100),
			fmt.Sprintf("[%.1f%%, %.1f%%]", lo*100, hi*100),
			fmt.Sprintf("%.1f%%", row.Predicted*100),
		)
		xs = append(xs, float64(row.SizeKB))
		ys = append(ys, row.Result.Rate()*100)
		preds = append(preds, row.Predicted*100)
	}
	if err := tbl.Render(w); err != nil {
		return err
	}
	fmt.Fprintln(w)
	chart := &report.Chart{
		Title: "success rate vs file size (uniprocessor)", XLabel: "KB", YLabel: "%",
		Xs: xs,
		Series: []report.Series{
			{Name: "measured", Ys: ys},
			{Name: "model", Ys: preds},
		},
	}
	if err := chart.Render(w); err != nil {
		return err
	}
	if !r.ShowMetrics {
		return nil
	}
	return renderRowMetrics(w, r.Rows)
}

// Fig6 runs the uniprocessor vi sweep.
func Fig6(opt Options) (Result, error) {
	sizes := opt.Sizes
	if sizes == nil {
		sizes = []int{100, 200, 300, 400, 500, 600, 700, 800, 900, 1000}
	}
	rounds := opt.rounds(500)
	seed := opt.seed(1007)
	m := machine.Uniprocessor()
	scs := make([]core.Scenario, len(sizes))
	for i, kb := range sizes {
		// With -metrics the sweep runs traced so the window/D/L histograms
		// populate; tracing observes without perturbing the simulation.
		scs[i] = viScenario(m, kb, seed+int64(i)*7919, opt.Metrics)
	}
	results, err := opt.runSweep(scs, rounds)
	if err != nil {
		return nil, fmt.Errorf("fig6: %w", err)
	}
	out := &Fig6Result{Rounds: rounds, ShowMetrics: opt.Metrics}
	for i, kb := range sizes {
		out.Rows = append(out.Rows, SweepRow{SizeKB: kb, Result: results[i], Predicted: Fig6Prediction(m, kb)})
	}
	return out, nil
}

// Fig6Prediction is the closed-form model prediction the fig6 rendering
// pairs with each measured point: window ≈ measured-on-SMP per-KB growth,
// via the analytic window estimate from the vi calibration. Exported so
// declarative scenarios replicating fig6 render the exact same column.
func Fig6Prediction(m machine.Profile, sizeKB int) float64 {
	window := viWindowEstimate(m, int64(sizeKB)<<10)
	stall := model.StallProbability(int64(sizeKB)<<10, m.Latency.WriteStallProbPerKB)
	return model.UniprocessorSuspension(window, m.Quantum, stall)
}

// viWindowEstimate approximates vi's vulnerability window length for a
// file size on a machine, from the calibrated victim parameters.
func viWindowEstimate(m machine.Profile, size int64) time.Duration {
	v := victim.NewVi()
	chunks := (size + v.ChunkSize - 1) / v.ChunkSize
	perChunk := m.ScaleCompute(v.PerChunkCompute) +
		m.Latency.WriteBase + time.Duration(float64(m.Latency.WritePerKB)*float64(v.ChunkSize)/1024)
	fixed := m.ScaleCompute(v.PostOpenCompute+v.PreChownCompute) + m.Latency.Close
	return fixed + time.Duration(chunks)*perChunk
}

// ViSMPResult reproduces the paper's §5 headline: 100% success for every
// file size from 20KB to 1MB on the SMP.
type ViSMPResult struct {
	Rows   []SweepRow
	Rounds int
}

// Name implements Result.
func (r *ViSMPResult) Name() string { return "vismp" }

// Render implements Result.
func (r *ViSMPResult) Render(w io.Writer) error {
	fmt.Fprintf(w, "§5 — vi attack success rate on the SMP (%d rounds per size)\n", r.Rounds)
	fmt.Fprintf(w, "Paper: 100%% for all file sizes 20KB-1MB.\n\n")
	tbl := &report.Table{Headers: []string{"file size (KB)", "success", "rate"}}
	min := 1.0
	for _, row := range r.Rows {
		tbl.AddRow(
			fmt.Sprintf("%d", row.SizeKB),
			fmt.Sprintf("%d/%d", row.Result.Successes, row.Result.Rounds),
			fmt.Sprintf("%.1f%%", row.Result.Rate()*100),
		)
		if row.Result.Rate() < min {
			min = row.Result.Rate()
		}
	}
	if err := tbl.Render(w); err != nil {
		return err
	}
	fmt.Fprintf(w, "\nminimum rate across sizes: %.1f%%\n", min*100)
	return nil
}

// ViSMPSweep runs the SMP size sweep.
func ViSMPSweep(opt Options) (Result, error) {
	sizes := opt.Sizes
	if sizes == nil {
		for kb := 20; kb <= 1000; kb += 20 {
			sizes = append(sizes, kb)
		}
	}
	rounds := opt.rounds(100)
	seed := opt.seed(2003)
	m := machine.SMP2()
	scs := make([]core.Scenario, len(sizes))
	for i, kb := range sizes {
		scs[i] = viScenario(m, kb, seed+int64(i)*104729, false)
	}
	results, err := opt.runSweep(scs, rounds)
	if err != nil {
		return nil, fmt.Errorf("vismp: %w", err)
	}
	out := &ViSMPResult{Rounds: rounds}
	for i, kb := range sizes {
		out.Rows = append(out.Rows, SweepRow{SizeKB: kb, Result: results[i]})
	}
	return out, nil
}

// Fig7Result reproduces the paper's Figure 7: L and D versus file size
// for vi attacks on the SMP.
type Fig7Result struct {
	Rows   []SweepRow
	Rounds int
	// Slope is the fitted L growth in µs per KB; the paper's data shows
	// ≈16.5 µs/KB. Corr is the L-vs-size Pearson correlation.
	Slope float64
	Corr  float64
	// ShowMetrics appends the kernel-metrics section to the rendering.
	ShowMetrics bool
}

// Name implements Result.
func (r *Fig7Result) Name() string { return "fig7" }

// Render implements Result.
func (r *Fig7Result) Render(w io.Writer) error {
	fmt.Fprintf(w, "Figure 7 — L and D vs file size for vi SMP attacks (%d rounds per size)\n", r.Rounds)
	fmt.Fprintf(w, "Paper: L grows to ~16,000µs at 1MB, D stays flat ≈41µs, L > D throughout.\n\n")
	tbl := &report.Table{Headers: []string{"file size (KB)", "L (µs)", "D (µs)", "L-D (µs)"}}
	xs := make([]float64, 0, len(r.Rows))
	ls := make([]float64, 0, len(r.Rows))
	ds := make([]float64, 0, len(r.Rows))
	for _, row := range r.Rows {
		tbl.AddRow(
			fmt.Sprintf("%d", row.SizeKB),
			fmt.Sprintf("%.1f ± %.1f", row.Result.L.Mean(), row.Result.L.Stdev()),
			fmt.Sprintf("%.1f ± %.1f", row.Result.D.Mean(), row.Result.D.Stdev()),
			fmt.Sprintf("%.1f", row.Result.L.Mean()-row.Result.D.Mean()),
		)
		xs = append(xs, float64(row.SizeKB))
		ls = append(ls, row.Result.L.Mean())
		ds = append(ds, row.Result.D.Mean())
	}
	if err := tbl.Render(w); err != nil {
		return err
	}
	fmt.Fprintf(w, "\nfitted L slope: %.2f µs/KB (corr %.4f); paper's figure implies ≈16.5 µs/KB\n\n", r.Slope, r.Corr)
	chart := &report.Chart{
		Title: "L and D vs file size (SMP)", XLabel: "KB", YLabel: "µs",
		Xs: xs,
		Series: []report.Series{
			{Name: "L", Ys: ls},
			{Name: "D", Ys: ds},
		},
	}
	if err := chart.Render(w); err != nil {
		return err
	}
	if !r.ShowMetrics {
		return nil
	}
	return renderRowMetrics(w, r.Rows)
}

// Fig7 runs the traced SMP sweep and fits L's growth.
func Fig7(opt Options) (Result, error) {
	sizes := opt.Sizes
	if sizes == nil {
		sizes = []int{100, 200, 300, 400, 500, 600, 700, 800, 900, 1000}
	}
	rounds := opt.rounds(100)
	seed := opt.seed(3001)
	m := machine.SMP2()
	scs := make([]core.Scenario, len(sizes))
	for i, kb := range sizes {
		scs[i] = viScenario(m, kb, seed+int64(i)*7907, true)
	}
	results, err := opt.runSweep(scs, rounds)
	if err != nil {
		return nil, fmt.Errorf("fig7: %w", err)
	}
	out := &Fig7Result{Rounds: rounds, ShowMetrics: opt.Metrics}
	var xs, ls []float64
	for i, kb := range sizes {
		out.Rows = append(out.Rows, SweepRow{SizeKB: kb, Result: results[i]})
		xs = append(xs, float64(kb))
		ls = append(ls, results[i].L.Mean())
	}
	_, slope, _ := model.LinearFit(xs, ls)
	corr, _ := model.Correlation(xs, ls)
	out.Slope = slope
	out.Corr = corr
	return out, nil
}

// Table1Result reproduces the paper's Table 1: vi SMP attacks with
// 1-byte files.
type Table1Result struct {
	Rounds   int
	Campaign core.CampaignResult
	// PredictedMC is the Monte-Carlo formula-(1) prediction from the
	// measured L and D distributions.
	PredictedMC float64
	// PredictedPoint is the point estimate clamp(L/D).
	PredictedPoint float64
	// LHist is the distribution of per-round L values (µs), showing how
	// close the L and D populations come — the §5 explanation for the
	// sub-100% rate.
	LHist *stats.Histogram
}

// Name implements Result.
func (r *Table1Result) Name() string { return "table1" }

// Render implements Result.
func (r *Table1Result) Render(w io.Writer) error {
	fmt.Fprintf(w, "Table 1 — vi SMP attack, file size = 1 byte (%d rounds)\n", r.Rounds)
	fmt.Fprintf(w, "Paper: L = 61.6 ± 3.78 µs, D = 41.1 ± 2.73 µs, success ≈ 96%%.\n\n")
	tbl := &report.Table{Headers: []string{"", "average", "stdev"}}
	tbl.AddRow("L (µs)", fmt.Sprintf("%.1f", r.Campaign.L.Mean()), fmt.Sprintf("%.2f", r.Campaign.L.Stdev()))
	tbl.AddRow("D (µs)", fmt.Sprintf("%.1f", r.Campaign.D.Mean()), fmt.Sprintf("%.2f", r.Campaign.D.Stdev()))
	if err := tbl.Render(w); err != nil {
		return err
	}
	fmt.Fprintf(w, "\nobserved success: %s\n", r.Campaign.Proportion())
	fmt.Fprintf(w, "formula (1) point estimate clamp(L/D): %.1f%%\n", r.PredictedPoint*100)
	fmt.Fprintf(w, "formula (1) with L/D variance (Monte Carlo): %.1f%%\n", r.PredictedMC*100)
	if r.LHist != nil && r.LHist.Total() > 0 {
		fmt.Fprintf(w, "\nL distribution (µs) vs mean D = %.1fµs — overlap is where attacks fail:\n", r.Campaign.D.Mean())
		max := int64(1)
		for _, c := range r.LHist.Bins {
			if c > max {
				max = c
			}
		}
		for i, c := range r.LHist.Bins {
			center := r.LHist.BinCenter(i)
			bar := strings.Repeat("#", int(40*c/max))
			marker := "  "
			if center <= r.Campaign.D.Mean()+2.5 && center >= r.Campaign.D.Mean()-2.5 {
				marker = "D>"
			}
			fmt.Fprintf(w, "%s %6.1f | %-40s %d\n", marker, center, bar, c)
		}
	}
	return nil
}

// Table1 runs the 1-byte SMP campaign.
func Table1(opt Options) (Result, error) {
	rounds := opt.rounds(500)
	seed := opt.seed(4001)
	m := machine.SMP2()
	sc := viScenario(m, 0, seed, true)
	sc.FileSize = 1
	res, perRound, err := core.RunCampaignRounds(sc, rounds, true)
	if err != nil {
		return nil, fmt.Errorf("table1: %w", err)
	}
	// Distribution of per-round L against the mean D: how often the two
	// populations cross is exactly the paper's explanation for the
	// sub-100% rate.
	hist := stats.NewHistogram(20, 110, 18)
	for _, r := range perRound {
		if r.LD.Detected && r.LD.WindowFound && r.LD.T3 > 0 {
			hist.Add(r.LD.Lmicros())
		}
	}
	return &Table1Result{
		Rounds:         rounds,
		Campaign:       res,
		PredictedMC:    model.MultiprocessorSuccess(res.L, res.D, seed),
		PredictedPoint: model.LDRate(res.L.Mean(), res.D.Mean()),
		LHist:          hist,
	}, nil
}
