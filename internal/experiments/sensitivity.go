package experiments

import (
	"fmt"
	"io"
	"math"
	"time"

	"tocttou/internal/attack"
	"tocttou/internal/core"
	"tocttou/internal/machine"
	"tocttou/internal/report"
	"tocttou/internal/victim"
)

// SessionRow is one point of the repeated-saves study.
type SessionRow struct {
	Saves    int
	Observed float64
	// Geometric is 1-(1-p1)^saves from the measured single-save rate.
	Geometric float64
}

// SessionResult quantifies how per-save risk compounds over an editing
// session: the paper's window opens at every save (Fig. 1), so even the
// "low-risk" uniprocessor numbers become substantial once the admin saves
// a handful of times.
type SessionResult struct {
	Rows      []SessionRow
	Rounds    int
	PerSave   float64
	MaxAbsGap float64
}

// Name implements Result.
func (r *SessionResult) Name() string { return "session" }

// Render implements Result.
func (r *SessionResult) Render(w io.Writer) error {
	fmt.Fprintf(w, "Session study — vi 200KB on the uniprocessor, multiple saves (%d rounds)\n", r.Rounds)
	fmt.Fprintf(w, "The window reopens at every save; per-session risk compounds geometrically.\n\n")
	tbl := &report.Table{Headers: []string{"saves", "observed session success", "1-(1-p)^k from p=single-save"}}
	xs := make([]float64, 0, len(r.Rows))
	obs := make([]float64, 0, len(r.Rows))
	geo := make([]float64, 0, len(r.Rows))
	for _, row := range r.Rows {
		tbl.AddRow(
			fmt.Sprintf("%d", row.Saves),
			fmt.Sprintf("%.1f%%", row.Observed*100),
			fmt.Sprintf("%.1f%%", row.Geometric*100),
		)
		xs = append(xs, float64(row.Saves))
		obs = append(obs, row.Observed*100)
		geo = append(geo, row.Geometric*100)
	}
	if err := tbl.Render(w); err != nil {
		return err
	}
	fmt.Fprintf(w, "\nper-save rate p = %.1f%%; max |observed - geometric| = %.1f%%\n\n",
		r.PerSave*100, r.MaxAbsGap*100)
	chart := &report.Chart{
		Title:  "session capture probability vs saves (uniprocessor)",
		XLabel: "saves", YLabel: "%", Xs: xs,
		Series: []report.Series{
			{Name: "observed", Ys: obs},
			{Name: "geometric", Ys: geo},
		},
	}
	return chart.Render(w)
}

// SessionStudy measures session success for growing save counts.
func SessionStudy(opt Options) (Result, error) {
	rounds := opt.rounds(300)
	seed := opt.seed(17041)
	m := machine.Uniprocessor()
	const sizeKB = 200
	saves := []int{1, 2, 5, 10, 20}

	base := func(s int64) core.Scenario {
		return core.Scenario{
			Machine: m, Victim: victim.NewVi(), Attacker: attack.NewV1(),
			UseSyscall: "chown", FileSize: sizeKB << 10, Seed: s,
		}
	}

	// The single-save rate anchors the geometric baseline; estimate it
	// with extra rounds so the whole comparison isn't hostage to its
	// sampling noise. It runs as one more sweep point with a bigger
	// budget, interleaved with the session points.
	anchor := rounds * 4
	if anchor < 600 {
		anchor = 600
	}
	points := make([]core.SweepPoint, 0, len(saves)+1)
	points = append(points, core.SweepPoint{Scenario: base(seed), Rounds: anchor})
	for i, k := range saves {
		sc := base(seed + int64(i+1)*104729)
		if k != 1 {
			sc.Victim = victim.NewSession(victim.NewVi(), k)
		}
		points = append(points, core.SweepPoint{Scenario: sc, Rounds: rounds})
	}
	results, _, err := opt.runSweepPoints(points, opt.sweep())
	if err != nil {
		return nil, fmt.Errorf("session: %w", err)
	}
	p1 := results[0].Rate()
	out := &SessionResult{Rounds: rounds, PerSave: p1}
	for i, k := range saves {
		obs := results[i+1].Rate()
		geo := 1 - math.Pow(1-p1, float64(k))
		out.Rows = append(out.Rows, SessionRow{Saves: k, Observed: obs, Geometric: geo})
		if gap := math.Abs(obs - geo); gap > out.MaxAbsGap {
			out.MaxAbsGap = gap
		}
	}
	return out, nil
}

// GapRow is one point of the window-width sensitivity sweep.
type GapRow struct {
	GapMicros float64
	Observed  float64
}

// GapSweepResult interpolates between the paper's two machines: gedit's
// rename→chmod gap is 3 µs on the multi-core (attack v2 barely wins) and
// 43 µs on the SMP (attack wins easily). Sweeping the gap exposes the
// crossover where the attacker's detect-and-redirect latency sits.
type GapSweepResult struct {
	Rows   []GapRow
	Rounds int
}

// Name implements Result.
func (r *GapSweepResult) Name() string { return "gapsweep" }

// Render implements Result.
func (r *GapSweepResult) Render(w io.Writer) error {
	fmt.Fprintf(w, "Sensitivity — gedit v2 success vs rename→chmod gap on the multi-core (%d rounds)\n", r.Rounds)
	fmt.Fprintf(w, "The paper's machines sit at 3µs (multi-core) and 43µs (SMP) on this curve.\n\n")
	tbl := &report.Table{Headers: []string{"gap (µs)", "success rate"}}
	xs := make([]float64, 0, len(r.Rows))
	ys := make([]float64, 0, len(r.Rows))
	for _, row := range r.Rows {
		tbl.AddRow(fmt.Sprintf("%.0f", row.GapMicros), fmt.Sprintf("%.1f%%", row.Observed*100))
		xs = append(xs, row.GapMicros)
		ys = append(ys, row.Observed*100)
	}
	if err := tbl.Render(w); err != nil {
		return err
	}
	fmt.Fprintln(w)
	chart := &report.Chart{
		Title: "attack success vs victim gap width", XLabel: "µs", YLabel: "%",
		Xs:     xs,
		Series: []report.Series{{Name: "gedit v2 / multi-core", Ys: ys}},
	}
	return chart.Render(w)
}

// GapSweep sweeps gedit's rename→chmod gap on the multi-core.
func GapSweep(opt Options) (Result, error) {
	rounds := opt.rounds(300)
	seed := opt.seed(18047)
	gaps := []int{0, 1, 2, 3, 5, 8, 12, 16, 24}
	scs := make([]core.Scenario, len(gaps))
	for i, us := range gaps {
		m := machine.MultiCore()
		m.GeditRenameChmodGap = time.Duration(us) * time.Microsecond
		scs[i] = core.Scenario{
			Machine: m, Victim: victim.NewGedit(), Attacker: attack.NewV2(),
			UseSyscall: "chmod", FileSize: geditFileKB << 10,
			Seed: seed + int64(i)*9973,
		}
	}
	results, err := opt.runSweep(scs, rounds)
	if err != nil {
		return nil, fmt.Errorf("gapsweep: %w", err)
	}
	out := &GapSweepResult{Rounds: rounds}
	for i, us := range gaps {
		out.Rows = append(out.Rows, GapRow{GapMicros: float64(us), Observed: results[i].Rate()})
	}
	return out, nil
}
