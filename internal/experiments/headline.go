package experiments

import (
	"fmt"
	"io"

	"tocttou/internal/attack"
	"tocttou/internal/core"
	"tocttou/internal/defense"
	"tocttou/internal/fs"
	"tocttou/internal/machine"
	"tocttou/internal/metrics"
	"tocttou/internal/report"
)

// HeadlineRow compares one attack scenario across machines.
type HeadlineRow struct {
	Scenario string
	Machine  string
	Rate     float64
	Rounds   int
	PaperRef string
	// Result is the full campaign outcome behind Rate.
	Result core.CampaignResult
}

// HeadlineResult is the paper's main claim in one table: the same attacks
// move from negligible success on a uniprocessor to near-certainty on
// multiprocessors.
type HeadlineResult struct {
	Rows []HeadlineRow
	// ShowMetrics appends the kernel-metrics section to the rendering.
	ShowMetrics bool
}

// Name implements Result.
func (r *HeadlineResult) Name() string { return "headline" }

// Render implements Result.
func (r *HeadlineResult) Render(w io.Writer) error {
	fmt.Fprintf(w, "Headline — multiprocessors may reduce system dependability\n")
	fmt.Fprintf(w, "The same TOCTTOU attacks, same victims, same attacker programs:\n\n")
	tbl := &report.Table{Headers: []string{"attack", "machine", "success rate", "paper reports"}}
	for _, row := range r.Rows {
		tbl.AddRow(row.Scenario, row.Machine, fmt.Sprintf("%.1f%%", row.Rate*100), row.PaperRef)
	}
	if err := tbl.Render(w); err != nil {
		return err
	}
	if !r.ShowMetrics {
		return nil
	}
	labels := make([]string, len(r.Rows))
	pts := make([]metrics.Point, len(r.Rows))
	for i, row := range r.Rows {
		labels[i] = row.Scenario + " / " + row.Machine
		pts[i] = row.Result.Metrics
	}
	return report.MetricsSection(w, labels, pts)
}

// Headline runs the cross-machine comparison.
func Headline(opt Options) (Result, error) {
	rounds := opt.rounds(400)
	seed := opt.seed(13001)
	out := &HeadlineResult{ShowMetrics: opt.Metrics}

	steps := []struct {
		scenario, machineName, ref string
		sc                         core.Scenario
	}{
		{"vi 100KB", "uniprocessor", "~2%", viScenario(machine.Uniprocessor(), 100, seed+1, false)},
		{"vi 100KB", "SMP 2-way", "100%", viScenario(machine.SMP2(), 100, seed+2, false)},
		{"vi 1 byte", "SMP 2-way", "~96%", func() core.Scenario {
			sc := viScenario(machine.SMP2(), 0, seed+3, false)
			sc.FileSize = 1
			return sc
		}()},
		{"gedit v1", "uniprocessor", "~0%", geditScenario(machine.Uniprocessor(), attack.NewV1(), seed+4, false)},
		{"gedit v1", "SMP 2-way", "~83%", geditScenario(machine.SMP2(), attack.NewV1(), seed+5, false)},
		{"gedit v1", "multi-core 4-way", "~0%", geditScenario(machine.MultiCore(), attack.NewV1(), seed+6, false)},
		{"gedit v2", "multi-core 4-way", "many successes", geditScenario(machine.MultiCore(), attack.NewV2(), seed+7, false)},
	}
	scs := make([]core.Scenario, len(steps))
	for i, s := range steps {
		scs[i] = s.sc
		if opt.Metrics {
			// Trace so the window/D/L histograms populate; tracing is a
			// pure observer and leaves the success rates unchanged.
			scs[i].Trace = true
		}
	}
	results, err := opt.runSweep(scs, rounds)
	if err != nil {
		return nil, fmt.Errorf("headline: %w", err)
	}
	for i, s := range steps {
		out.Rows = append(out.Rows, HeadlineRow{
			Scenario: s.scenario, Machine: s.machineName,
			Rate: results[i].Rate(), Rounds: rounds, PaperRef: s.ref,
			Result: results[i],
		})
	}
	return out, nil
}

// DefenseRow compares a scenario undefended, with the denying guard, and
// with the delaying (pseudo-transaction) guard.
type DefenseRow struct {
	Scenario   string
	Baseline   float64
	Enforced   float64
	Delayed    float64
	Violations int
	Rounds     int
}

// DefenseResult evaluates the §8-inspired defense extension.
type DefenseResult struct {
	Rows []DefenseRow
	// BenignBaseUs and BenignGuardedUs compare the victim's save latency
	// (virtual µs) without an attacker, guard off vs on — the defense's
	// overhead on innocent workloads.
	BenignBaseUs    float64
	BenignGuardedUs float64
}

// OverheadPct returns the benign-workload slowdown in percent.
func (r *DefenseResult) OverheadPct() float64 {
	if r.BenignBaseUs == 0 {
		return 0
	}
	return (r.BenignGuardedUs - r.BenignBaseUs) / r.BenignBaseUs * 100
}

// Name implements Result.
func (r *DefenseResult) Name() string { return "defense" }

// Render implements Result.
func (r *DefenseResult) Render(w io.Writer) error {
	fmt.Fprintf(w, "Defense extension — EDGI-style invariant guarding (paper §8 related work)\n")
	fmt.Fprintf(w, "The guard tracks invariants established by privileged check calls and denies\n")
	fmt.Fprintf(w, "other users' namespace modifications inside the window.\n\n")
	tbl := &report.Table{Headers: []string{"scenario", "undefended", "EDGI enforce", "EDGI delay", "violations denied"}}
	for _, row := range r.Rows {
		tbl.AddRow(row.Scenario,
			fmt.Sprintf("%.1f%%", row.Baseline*100),
			fmt.Sprintf("%.1f%%", row.Enforced*100),
			fmt.Sprintf("%.1f%%", row.Delayed*100),
			fmt.Sprintf("%d (in %d rounds)", row.Violations, row.Rounds))
	}
	if err := tbl.Render(w); err != nil {
		return err
	}
	fmt.Fprintf(w, "\nbenign-workload cost (vi save, no attacker): %.1fµs -> %.1fµs (%+.2f%%)\n",
		r.BenignBaseUs, r.BenignGuardedUs, r.OverheadPct())
	return nil
}

// DefenseEvaluation measures attack success with the guard enforcing.
func DefenseEvaluation(opt Options) (Result, error) {
	rounds := opt.rounds(300)
	seed := opt.seed(14009)
	out := &DefenseResult{}

	cases := []struct {
		name string
		sc   core.Scenario
	}{
		{"vi 100KB / SMP", viScenario(machine.SMP2(), 100, seed+1, false)},
		{"gedit v1 / SMP", geditScenario(machine.SMP2(), attack.NewV1(), seed+2, false)},
		{"gedit v2 / multi-core", geditScenario(machine.MultiCore(), attack.NewV2(), seed+3, false)},
	}
	// Three sweep points per case: undefended, enforcing, delaying.
	scs := make([]core.Scenario, 0, 3*len(cases))
	for _, c := range cases {
		guarded := c.sc
		guarded.NewGuard = func() fs.Guard { return defense.New(defense.Enforce) }
		delayed := c.sc
		delayed.NewGuard = func() fs.Guard { return defense.New(defense.Delay) }
		scs = append(scs, c.sc, guarded, delayed)
	}
	results, err := opt.runSweep(scs, rounds)
	if err != nil {
		return nil, fmt.Errorf("defense: %w", err)
	}
	for i, c := range cases {
		base, gres, dres := results[3*i], results[3*i+1], results[3*i+2]
		out.Rows = append(out.Rows, DefenseRow{
			Scenario: c.name,
			Baseline: base.Rate(),
			Enforced: gres.Rate(),
			Delayed:  dres.Rate(),
			// Denied attempts surface as attacker step errors.
			Violations: gres.AttackErrors,
			Rounds:     rounds,
		})
	}

	// Benign overhead: the same save with no attacker, guard off vs on.
	benign := viScenario(machine.SMP2(), 100, seed+99, false)
	benign.Attacker = attack.Idle{}
	baseUs, err := meanRoundEnd(benign, 50)
	if err != nil {
		return nil, err
	}
	benignGuarded := benign
	benignGuarded.NewGuard = func() fs.Guard { return defense.New(defense.Enforce) }
	guardedUs, err := meanRoundEnd(benignGuarded, 50)
	if err != nil {
		return nil, err
	}
	out.BenignBaseUs = baseUs
	out.BenignGuardedUs = guardedUs
	return out, nil
}

// meanRoundEnd averages the virtual completion time of rounds, in µs.
func meanRoundEnd(sc core.Scenario, rounds int) (float64, error) {
	total := 0.0
	for i := 0; i < rounds; i++ {
		rsc := sc
		rsc.Seed = sc.Seed + int64(i+1)*1009
		r, err := core.RunRound(rsc)
		if err != nil {
			return 0, err
		}
		total += r.End.Micros()
	}
	return total / float64(rounds), nil
}
