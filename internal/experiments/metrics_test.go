package experiments

import (
	"runtime"
	"strings"
	"testing"
)

// TestFig6MetricsSummarySweepStable is the golden-stability check for the
// -metrics rendering: the full fig6 output including the kernel-metrics
// section must be byte-identical between a parallel and a GOMAXPROCS=1
// run — rendering is pure formatting over a deterministic aggregate, so
// any divergence is an ordering bug in the fold, not noise.
func TestFig6MetricsSummarySweepStable(t *testing.T) {
	opt := Options{Rounds: 40, Sizes: []int{100, 400, 1000}, Metrics: true}
	res, err := Fig6(opt)
	if err != nil {
		t.Fatal(err)
	}
	parallel := render(t, res)

	prev := runtime.GOMAXPROCS(1)
	res1, err := Fig6(opt)
	runtime.GOMAXPROCS(prev)
	if err != nil {
		t.Fatal(err)
	}
	serial := render(t, res1)

	if parallel != serial {
		t.Fatalf("fig6 -metrics output depends on parallelism:\n--- gomaxprocs=n ---\n%s\n--- gomaxprocs=1 ---\n%s", parallel, serial)
	}

	for _, want := range []string{
		"Kernel metrics",
		"dispatch",
		"sem-wait µs",
		"windows",
		"vulnerability window (µs, log₂ buckets, pooled)",
		"detection latency D (µs, log₂ buckets, pooled)",
		"laxity L (µs, log₂ buckets, pooled)",
	} {
		if !strings.Contains(parallel, want) {
			t.Errorf("fig6 -metrics output missing %q", want)
		}
	}
	// Rows for each requested sweep point.
	for _, label := range []string{"100 KB", "400 KB", "1000 KB"} {
		if !strings.Contains(parallel, label) {
			t.Errorf("fig6 -metrics output missing point row %q", label)
		}
	}
}

// TestHeadlineMetricsSweepRenders asserts the headline experiment's
// -metrics section renders with per-scenario rows and latency data.
func TestHeadlineMetricsSweepRenders(t *testing.T) {
	res, err := Headline(Options{Rounds: 30, Metrics: true})
	if err != nil {
		t.Fatal(err)
	}
	out := render(t, res)
	for _, want := range []string{
		"Kernel metrics",
		"vi 100KB / SMP 2-way",
		"gedit v2 / multi-core 4-way",
		"laxity L (µs, log₂ buckets, pooled)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("headline -metrics output missing %q", want)
		}
	}
}

// TestFig6WithoutMetricsOmitsSection pins the default rendering: no
// -metrics flag, no metrics section.
func TestFig6WithoutMetricsOmitsSection(t *testing.T) {
	res, err := Fig6(Options{Rounds: 20, Sizes: []int{100}})
	if err != nil {
		t.Fatal(err)
	}
	if out := render(t, res); strings.Contains(out, "Kernel metrics") {
		t.Error("fig6 without Metrics must not render the metrics section")
	}
}
