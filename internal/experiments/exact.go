package experiments

import (
	"fmt"
	"io"

	"tocttou/internal/core"
	"tocttou/internal/machine"
	"tocttou/internal/model"
	"tocttou/internal/report"
)

// Eq1ExactRow is one explored sweep point: the exact schedule-space win
// probability next to its Monte Carlo cross-check and the closed-form
// model prediction.
type Eq1ExactRow struct {
	Label   string
	Machine string
	// Result is the full exploration outcome (exact probability, tree
	// shape, witnesses, MC cross-check).
	Result *core.ExploreResult
	// Model is the closed-form prediction for this point: Equation 1's
	// uniprocessor suspension probability, or the L-over-D success rate
	// on the SMP.
	Model float64
}

// Eq1ExactResult validates Equation 1 with exact probabilities instead of
// sampled rates: the schedule space of each point's discretized round is
// enumerated exhaustively, so the "observed" column carries no sampling
// error at all.
type Eq1ExactResult struct {
	Rows     []Eq1ExactRow
	MCRounds int
}

// Name implements Result.
func (r *Eq1ExactResult) Name() string { return "eq1-exact" }

// Render implements Result.
func (r *Eq1ExactResult) Render(w io.Writer) error {
	fmt.Fprintf(w, "Equation 1, exactly — exhaustive schedule-space enumeration\n")
	fmt.Fprintf(w, "Each point explores every schedule of a discretized round (phase slots,\n")
	fmt.Fprintf(w, "dispatch ties, semaphore wake order, bounded stalls); the exact column is\n")
	fmt.Fprintf(w, "a sum of path probabilities, not an estimate. MC re-samples the identical\n")
	fmt.Fprintf(w, "model with %d random-chooser rounds.\n\n", r.MCRounds)
	tbl := &report.Table{Headers: []string{
		"point", "machine", "exact P(win)", "paths", "merged", "MC estimate", "MC 95% CI", "agree", "model",
	}}
	for _, row := range r.Rows {
		res := row.Result
		lo, hi := res.MCInterval()
		tbl.AddRow(
			row.Label,
			row.Machine,
			report.Prob(res.ExactProb()),
			fmt.Sprintf("%d", res.Paths),
			fmt.Sprintf("%d", res.Merged),
			report.Prob(res.MC.Proportion().Rate()),
			report.Interval(lo, hi),
			report.YesNo(res.AgreesWithMC()),
			report.Prob(row.Model),
		)
	}
	if err := tbl.Render(w); err != nil {
		return err
	}
	fmt.Fprintln(w)
	for _, row := range r.Rows {
		res := row.Result
		if res.Win == nil {
			fmt.Fprintf(w, "%s/%s: no winning schedule exists\n", row.Label, row.Machine)
			continue
		}
		p, _ := res.Win.Prob.Float64()
		fmt.Fprintf(w, "%s/%s: minimal winning schedule has %d decision(s) (P=%s)\n",
			row.Label, row.Machine, len(res.Win.Script), report.Prob(p))
	}
	return nil
}

// Eq1Exact explores the fig6 uniprocessor points (default 100KB and 500KB)
// and one SMP point exhaustively, comparing each exact win probability
// against its Monte Carlo cross-check and the closed-form prediction.
func Eq1Exact(opt Options) (Result, error) {
	seed := opt.seed(23003)
	mcRounds := opt.rounds(400)
	sizes := opt.Sizes
	if len(sizes) == 0 {
		sizes = []int{100, 500}
	}
	out := &Eq1ExactResult{MCRounds: mcRounds}

	up := machine.Uniprocessor()
	for i, kb := range sizes {
		sc := viScenario(up, kb, seed+int64(i), false)
		res, err := core.ExploreCampaign(sc, core.ExploreOptions{MCRounds: mcRounds})
		if err != nil {
			return nil, fmt.Errorf("eq1-exact: uniprocessor %dKB: %w", kb, err)
		}
		window := viWindowEstimate(up, int64(kb)<<10)
		stall := model.StallProbability(int64(kb)<<10, up.Latency.WriteStallProbPerKB)
		out.Rows = append(out.Rows, Eq1ExactRow{
			Label:   fmt.Sprintf("vi %dKB", kb),
			Machine: up.Name,
			Result:  res,
			Model:   model.UniprocessorSuspension(window, up.Quantum, stall),
		})
	}

	smp := machine.SMP2()
	sc := viScenario(smp, 100, seed+100, false)
	res, err := core.ExploreCampaign(sc, core.ExploreOptions{MCRounds: mcRounds})
	if err != nil {
		return nil, fmt.Errorf("eq1-exact: smp 100KB: %w", err)
	}
	out.Rows = append(out.Rows, Eq1ExactRow{
		Label:   "vi 100KB",
		Machine: smp.Name,
		Result:  res,
		// The MC cross-check runs traced, so its L/D summaries feed the
		// paper's multiprocessor success model directly.
		Model: model.MultiprocessorSuccess(res.MC.L, res.MC.D, seed),
	})
	return out, nil
}
