package experiments

import (
	"fmt"
	"io"
	"time"

	"tocttou/internal/attack"
	"tocttou/internal/core"
	"tocttou/internal/fault"
	"tocttou/internal/machine"
	"tocttou/internal/metrics"
	"tocttou/internal/prog"
	"tocttou/internal/report"
	"tocttou/internal/victim"
)

// faultPolicy pairs a robustness policy with its display label.
type faultPolicy struct {
	label  string
	robust prog.Robustness
}

// faultPolicies are the error-handling disciplines the sweep compares:
// give-up (first transient failure aborts the program), retry (four
// attempts with doubling virtual-time backoff), and retry+fallback (the
// same retries, then the program's degraded path).
var faultPolicies = []faultPolicy{
	{"give-up", prog.Robustness{}},
	{"retry", prog.Robustness{Retries: 4, Backoff: 20 * time.Microsecond}},
	{"retry+fallback", prog.Robustness{Retries: 4, Backoff: 20 * time.Microsecond, Fallback: true}},
}

// Policy is a named error-handling discipline that declarative scenarios
// can reference; Label doubles as the rendering's series name.
type Policy struct {
	Label  string
	Robust prog.Robustness
}

// Policies returns the built-in robustness policies in sweep order.
func Policies() []Policy {
	out := make([]Policy, len(faultPolicies))
	for i, p := range faultPolicies {
		out[i] = Policy{Label: p.label, Robust: p.robust}
	}
	return out
}

// defaultFaultRates is the injection-rate ladder: a fault-free baseline,
// then roughly decade steps up to a heavily faulty world.
var defaultFaultRates = []float64{0, 0.002, 0.01, 0.05, 0.2}

// DefaultFaultSeed seeds the fault plans when Options.FaultSeed is zero.
const DefaultFaultSeed = 9973

// FaultRow is one (rate, policy) point of the fault sweep.
type FaultRow struct {
	Rate   float64
	Policy string
	Result core.CampaignResult
}

// FaultSweepResult is the faultsweep experiment outcome.
type FaultSweepResult struct {
	Rows   []FaultRow
	Rounds int
	// ShowMetrics appends the kernel-metrics section to the rendering.
	ShowMetrics bool
}

// Name implements Result.
func (r *FaultSweepResult) Name() string { return "faultsweep" }

// Render implements Result.
func (r *FaultSweepResult) Render(w io.Writer) error {
	fmt.Fprintf(w, "faultsweep — vi SMP attack success under injected faults (%d rounds per point)\n", r.Rounds)
	fmt.Fprintf(w, "At rate p: each fs op fails with an injected errno w.p. p, each blocked semaphore\n")
	fmt.Fprintf(w, "wait is EINTR-interrupted w.p. p, and each program is killed mid-round w.p. p/2\n")
	fmt.Fprintf(w, "(the victim restarts, supervised). Policies differ only in error handling.\n\n")
	tbl := &report.Table{Headers: []string{
		"fault rate", "policy", "success", "rate",
		"victim-fail", "attack-err", "fs-err/rnd", "eintr/rnd", "kill/rnd", "restart/rnd",
	}}
	for _, row := range r.Rows {
		res := row.Result
		n := float64(res.Rounds)
		tbl.AddRow(
			fmt.Sprintf("%.3f", row.Rate),
			row.Policy,
			fmt.Sprintf("%d/%d", res.Successes, res.Rounds),
			fmt.Sprintf("%.1f%%", res.Rate()*100),
			fmt.Sprintf("%d", res.VictimErrors),
			fmt.Sprintf("%d", res.AttackErrors),
			fmt.Sprintf("%.2f", float64(res.Faults.FSErrors)/n),
			fmt.Sprintf("%.2f", float64(res.Faults.SemInterrupts)/n),
			fmt.Sprintf("%.2f", float64(res.Faults.Kills)/n),
			fmt.Sprintf("%.2f", float64(res.Faults.Restarts)/n),
		)
	}
	if err := tbl.Render(w); err != nil {
		return err
	}
	fmt.Fprintln(w)
	// One series per policy: how fast the attack's success decays as the
	// world gets faultier, under each error-handling discipline. The
	// policy set comes from the rows themselves (first-appearance order),
	// so results built from declarative scenarios with custom policies
	// chart just like the built-in grid.
	var policyOrder []string
	seen := make(map[string]bool)
	for _, row := range r.Rows {
		if !seen[row.Policy] {
			seen[row.Policy] = true
			policyOrder = append(policyOrder, row.Policy)
		}
	}
	series := make([]report.Series, 0, len(policyOrder))
	var xs []float64
	for _, label := range policyOrder {
		var ys []float64
		xs = xs[:0]
		for _, row := range r.Rows {
			if row.Policy != label {
				continue
			}
			xs = append(xs, row.Rate*100)
			ys = append(ys, row.Result.Rate()*100)
		}
		series = append(series, report.Series{Name: label, Ys: ys})
	}
	chart := &report.Chart{
		Title:  "attack success vs fault rate, by robustness policy",
		XLabel: "fault rate (%)", YLabel: "%",
		Xs:     xs,
		Series: series,
	}
	if err := chart.Render(w); err != nil {
		return err
	}
	if !r.ShowMetrics {
		return nil
	}
	labels := make([]string, len(r.Rows))
	pts := make([]metrics.Point, len(r.Rows))
	for i, row := range r.Rows {
		labels[i] = fmt.Sprintf("p=%.3f %s", row.Rate, row.Policy)
		pts[i] = row.Result.Metrics
	}
	return report.MetricsSection(w, labels, pts)
}

// FaultSweep measures how error-handling discipline changes attack
// success in a faulty world: a (rate × policy) grid of vi/SMP campaigns
// under the deterministic fault injector, with a virtual-time watchdog
// guarding every round.
func FaultSweep(opt Options) (Result, error) {
	rates := opt.FaultRates
	if rates == nil {
		rates = defaultFaultRates
	}
	for _, p := range rates {
		if p < 0 || p > 1 {
			return nil, fmt.Errorf("faultsweep: fault rate %v outside [0, 1]", p)
		}
	}
	rounds := opt.rounds(300)
	seed := opt.seed(6007)
	faultSeed := opt.FaultSeed
	if faultSeed == 0 {
		faultSeed = DefaultFaultSeed
	}
	m := machine.SMP2()
	var scs []core.Scenario
	for ri, rate := range rates {
		for pi, p := range faultPolicies {
			vi := victim.NewVi()
			vi.Robust = p.robust
			at := attack.NewV1()
			at.Robust = p.robust
			sc := core.Scenario{
				Machine:    m,
				Victim:     vi,
				Attacker:   at,
				UseSyscall: "chown",
				FileSize:   100 << 10,
				Seed:       seed + int64(ri*len(faultPolicies)+pi)*7121,
				Trace:      opt.Metrics,
				Faults: fault.Plan{
					Seed:        faultSeed,
					FSRate:      rate,
					SemIntrRate: rate,
					// Blocked waits in this scenario last single-digit µs
					// (the victim's per-chunk write holds), so the signal
					// must arrive faster than the default 50µs to ever
					// beat the semaphore.
					SemIntrDelay:     time.Microsecond,
					KillVictimRate:   rate / 2,
					KillAttackerRate: rate / 2,
					// Rounds finish in a few virtual ms; the default 200ms
					// kill window would park nearly every drawn kill after
					// the processes already exited.
					KillWindow: 4 * time.Millisecond,
					Restart:    true,
				},
				// Generous virtual-time bound: healthy rounds finish in
				// milliseconds, so only a genuinely runaway round (a retry
				// loop that stops converging, say) can trip it.
				Watchdog: 5 * time.Second,
			}
			scs = append(scs, sc)
		}
	}
	results, err := opt.runSweep(scs, rounds)
	if err != nil {
		return nil, fmt.Errorf("faultsweep: %w", err)
	}
	out := &FaultSweepResult{Rounds: rounds, ShowMetrics: opt.Metrics}
	for ri, rate := range rates {
		for pi, p := range faultPolicies {
			out.Rows = append(out.Rows, FaultRow{
				Rate:   rate,
				Policy: p.label,
				Result: results[ri*len(faultPolicies)+pi],
			})
		}
	}
	return out, nil
}
