package experiments

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

// Experiment tests run at reduced round counts: they assert structure and
// the qualitative bands, not publication-grade statistics (those are the
// benchmark harness's job).

func render(t *testing.T, r Result) string {
	t.Helper()
	var buf bytes.Buffer
	if err := r.Render(&buf); err != nil {
		t.Fatalf("render: %v", err)
	}
	return buf.String()
}

func TestRegistry(t *testing.T) {
	names := Names()
	if len(names) < 13 {
		t.Fatalf("registered experiments = %d, want >= 13", len(names))
	}
	for _, n := range names {
		if desc, ok := Describe(n); !ok || desc == "" {
			t.Errorf("experiment %q has no description", n)
		}
	}
	if _, ok := Describe("nope"); ok {
		t.Error("unknown experiment described")
	}
	if _, err := Run("nope", Options{}); err == nil {
		t.Error("unknown experiment ran")
	}
}

func TestFig6ShapeAndRendering(t *testing.T) {
	res, err := Fig6(Options{Rounds: 80, Sizes: []int{100, 1000}})
	if err != nil {
		t.Fatal(err)
	}
	fig := res.(*Fig6Result)
	if len(fig.Rows) != 2 {
		t.Fatalf("rows = %d", len(fig.Rows))
	}
	small, large := fig.Rows[0], fig.Rows[1]
	if small.Result.Rate() > 0.10 {
		t.Errorf("100KB rate = %.1f%%, want low single digits", small.Result.Rate()*100)
	}
	if large.Result.Rate() < small.Result.Rate() {
		t.Errorf("rate must grow with size: %.1f%% vs %.1f%%",
			small.Result.Rate()*100, large.Result.Rate()*100)
	}
	if large.Predicted < 0.10 || large.Predicted > 0.25 {
		t.Errorf("1MB model prediction = %.1f%%, want ~16%%", large.Predicted*100)
	}
	out := render(t, fig)
	for _, want := range []string{"Figure 6", "file size (KB)", "model predicts", "success rate vs file size"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendering missing %q", want)
		}
	}
}

func TestViSMPSweepAllHigh(t *testing.T) {
	res, err := ViSMPSweep(Options{Rounds: 50, Sizes: []int{20, 500, 1000}})
	if err != nil {
		t.Fatal(err)
	}
	sweep := res.(*ViSMPResult)
	for _, row := range sweep.Rows {
		if row.Result.Rate() < 0.98 {
			t.Errorf("%dKB rate = %.1f%%, want ~100%%", row.SizeKB, row.Result.Rate()*100)
		}
	}
	if !strings.Contains(render(t, sweep), "minimum rate") {
		t.Error("rendering missing minimum rate")
	}
}

func TestFig7LinearLFlatD(t *testing.T) {
	res, err := Fig7(Options{Rounds: 40, Sizes: []int{100, 400, 800}})
	if err != nil {
		t.Fatal(err)
	}
	fig := res.(*Fig7Result)
	if fig.Slope < 14 || fig.Slope > 19 {
		t.Errorf("L slope = %.2f µs/KB, want ≈16.5", fig.Slope)
	}
	if fig.Corr < 0.999 {
		t.Errorf("L-size correlation = %.4f, want ~1 (linear)", fig.Corr)
	}
	for _, row := range fig.Rows {
		if d := row.Result.D.Mean(); d < 30 || d > 50 {
			t.Errorf("%dKB D = %.1f, want flat ≈40µs", row.SizeKB, d)
		}
		if row.Result.L.Mean() <= row.Result.D.Mean() {
			t.Errorf("%dKB: L must exceed D", row.SizeKB)
		}
	}
}

func TestTable1Bands(t *testing.T) {
	res, err := Table1(Options{Rounds: 150})
	if err != nil {
		t.Fatal(err)
	}
	tbl := res.(*Table1Result)
	if l := tbl.Campaign.L.Mean(); l < 50 || l > 75 {
		t.Errorf("L = %.1f, want ≈61.6", l)
	}
	if d := tbl.Campaign.D.Mean(); d < 32 || d > 50 {
		t.Errorf("D = %.1f, want ≈41.1", d)
	}
	if r := tbl.Campaign.Rate(); r < 0.90 {
		t.Errorf("rate = %.1f%%, want ≈96%%", r*100)
	}
	if tbl.PredictedMC <= 0.5 || tbl.PredictedMC > 1 {
		t.Errorf("MC prediction = %.2f", tbl.PredictedMC)
	}
	if !strings.Contains(render(t, tbl), "Table 1") {
		t.Error("rendering missing title")
	}
}

func TestTable2ConservativePrediction(t *testing.T) {
	res, err := Table2(Options{Rounds: 150})
	if err != nil {
		t.Fatal(err)
	}
	tbl := res.(*Table2Result)
	if r := tbl.Campaign.Rate(); r < 0.60 || r > 0.95 {
		t.Errorf("rate = %.1f%%, want ≈83%%", r*100)
	}
	// The paper's core observation about its own Table 2: the formula's
	// point estimate is far below the observed rate.
	if tbl.PredictedPoint > tbl.Campaign.Rate()-0.2 {
		t.Errorf("point prediction %.2f should under-predict observed %.2f",
			tbl.PredictedPoint, tbl.Campaign.Rate())
	}
}

func TestGeditCampaignContrasts(t *testing.T) {
	up, err := GeditUniprocessor(Options{Rounds: 100})
	if err != nil {
		t.Fatal(err)
	}
	mc1, err := GeditMulticoreV1(Options{Rounds: 100})
	if err != nil {
		t.Fatal(err)
	}
	mc2, err := GeditMulticoreV2(Options{Rounds: 100})
	if err != nil {
		t.Fatal(err)
	}
	if r := up.(*CampaignSummary).Campaign.Rate(); r > 0.02 {
		t.Errorf("uniprocessor rate = %.1f%%, want ~0", r*100)
	}
	if r := mc1.(*CampaignSummary).Campaign.Rate(); r > 0.05 {
		t.Errorf("multicore v1 rate = %.1f%%, want ~0", r*100)
	}
	if r := mc2.(*CampaignSummary).Campaign.Rate(); r < 0.30 {
		t.Errorf("multicore v2 rate = %.1f%%, want many successes", r*100)
	}
}

func TestFig8TimelineShowsTrapAndBlockedUnlink(t *testing.T) {
	res, err := Fig8(Options{})
	if err != nil {
		t.Fatal(err)
	}
	tl := res.(*TimelineResult)
	if tl.Round.Success {
		t.Error("fig8 must capture a FAILED round")
	}
	out := render(t, tl)
	for _, want := range []string{"trap", "unlink", "chmod", "rename"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig8 timeline missing %q", want)
		}
	}
}

func TestFig10TimelineShowsSuccess(t *testing.T) {
	res, err := Fig10(Options{})
	if err != nil {
		t.Fatal(err)
	}
	tl := res.(*TimelineResult)
	if !tl.Round.Success {
		t.Error("fig10 must capture a SUCCESSFUL round")
	}
	if strings.Contains(tl.Rendered, "trap") {
		t.Error("fig10 (pre-faulted v2) must not trap in the window region")
	}
	for _, want := range []string{"rename", "chmod", "symlink"} {
		if !strings.Contains(tl.Rendered, want) {
			t.Errorf("fig10 timeline missing %q", want)
		}
	}
}

func TestFig11ParallelSpeedsUpAttack(t *testing.T) {
	res, err := Fig11(Options{Sizes: []int{100, 500}})
	if err != nil {
		t.Fatal(err)
	}
	fig := res.(*Fig11Result)
	if len(fig.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(fig.Rows))
	}
	byKey := map[string]Fig11Row{}
	for _, r := range fig.Rows {
		key := map[bool]string{true: "p", false: "s"}[r.Parallel]
		byKey[key+strconv.Itoa(r.SizeKB)] = r
	}
	for _, kb := range []int{100, 500} {
		seq := byKey["s"+strconv.Itoa(kb)]
		par := byKey["p"+strconv.Itoa(kb)]
		if par.AttackDone >= seq.AttackDone {
			t.Errorf("%dKB: parallel done %.1f must beat sequential %.1f",
				kb, par.AttackDone, seq.AttackDone)
		}
		// §7: the parallel symlink completes while unlink still truncates.
		if par.SymlinkEnd >= par.UnlinkEnd {
			t.Errorf("%dKB: parallel symlink (%.1f) must finish before unlink (%.1f)",
				kb, par.SymlinkEnd, par.UnlinkEnd)
		}
		// Sequentially the symlink waits for the whole unlink.
		if seq.SymlinkStart < seq.UnlinkEnd-1 {
			t.Errorf("%dKB: sequential symlink started at %.1f before unlink ended %.1f",
				kb, seq.SymlinkStart, seq.UnlinkEnd)
		}
	}
	// The speedup grows with file size (truncation dominates).
	gain100 := byKey["s100"].AttackDone / byKey["p100"].AttackDone
	gain500 := byKey["s500"].AttackDone / byKey["p500"].AttackDone
	if gain500 <= gain100 {
		t.Errorf("speedup must grow with size: %.1fx vs %.1fx", gain100, gain500)
	}
}

func TestModelValidationAccuracy(t *testing.T) {
	res, err := ModelValidation(Options{Rounds: 120})
	if err != nil {
		t.Fatal(err)
	}
	mv := res.(*ModelValidationResult)
	if len(mv.Points) < 6 {
		t.Fatalf("points = %d", len(mv.Points))
	}
	if mv.MeanAbsErr > 0.12 {
		t.Errorf("mean |error| = %.1f%%, want <= 12%%", mv.MeanAbsErr*100)
	}
}

func TestHeadlineContrast(t *testing.T) {
	res, err := Headline(Options{Rounds: 80})
	if err != nil {
		t.Fatal(err)
	}
	h := res.(*HeadlineResult)
	rates := map[string]float64{}
	for _, row := range h.Rows {
		rates[row.Scenario+"/"+row.Machine] = row.Rate
	}
	if rates["vi 100KB/SMP 2-way"] < 0.99 {
		t.Errorf("vi SMP = %.2f", rates["vi 100KB/SMP 2-way"])
	}
	if rates["vi 100KB/uniprocessor"] > 0.10 {
		t.Errorf("vi UP = %.2f", rates["vi 100KB/uniprocessor"])
	}
	if rates["gedit v1/SMP 2-way"] < 0.6 {
		t.Errorf("gedit SMP = %.2f", rates["gedit v1/SMP 2-way"])
	}
	if rates["gedit v1/multi-core 4-way"] > 0.05 {
		t.Errorf("gedit MC v1 = %.2f", rates["gedit v1/multi-core 4-way"])
	}
	if rates["gedit v2/multi-core 4-way"] < 0.3 {
		t.Errorf("gedit MC v2 = %.2f", rates["gedit v2/multi-core 4-way"])
	}
}

func TestDefenseStopsAttacks(t *testing.T) {
	res, err := DefenseEvaluation(Options{Rounds: 60})
	if err != nil {
		t.Fatal(err)
	}
	d := res.(*DefenseResult)
	for _, row := range d.Rows {
		if row.Enforced > 0.05 {
			t.Errorf("%s: enforced rate = %.1f%%, want ~0", row.Scenario, row.Enforced*100)
		}
		if row.Baseline < 0.5 {
			t.Errorf("%s: baseline = %.1f%%, expected a potent attack", row.Scenario, row.Baseline*100)
		}
	}
}
