package experiments

import (
	"strings"
	"testing"
)

func TestSessionStudyCompounds(t *testing.T) {
	res, err := SessionStudy(Options{Rounds: 120})
	if err != nil {
		t.Fatal(err)
	}
	s := res.(*SessionResult)
	if len(s.Rows) != 5 {
		t.Fatalf("rows = %d", len(s.Rows))
	}
	if s.PerSave <= 0 || s.PerSave > 0.15 {
		t.Errorf("per-save rate = %.3f, want low single digits", s.PerSave)
	}
	first, last := s.Rows[0], s.Rows[len(s.Rows)-1]
	if last.Observed <= first.Observed {
		t.Errorf("risk must compound: %.2f -> %.2f", first.Observed, last.Observed)
	}
	if last.Observed < 0.25 {
		t.Errorf("20-save session success = %.2f, want substantial", last.Observed)
	}
	// The geometric model must track observation (binomial noise allowed).
	if s.MaxAbsGap > 0.18 {
		t.Errorf("max |observed - geometric| = %.2f, want close tracking", s.MaxAbsGap)
	}
	if !strings.Contains(render(t, s), "1-(1-p)^k") {
		t.Error("rendering missing the geometric column")
	}
}

func TestGapSweepCrossover(t *testing.T) {
	res, err := GapSweep(Options{Rounds: 120})
	if err != nil {
		t.Fatal(err)
	}
	g := res.(*GapSweepResult)
	if len(g.Rows) < 5 {
		t.Fatalf("rows = %d", len(g.Rows))
	}
	byGap := map[float64]float64{}
	for _, row := range g.Rows {
		byGap[row.GapMicros] = row.Observed
	}
	// Zero gap: chmod is issued immediately after rename; the attacker
	// cannot beat it.
	if byGap[0] > 0.05 {
		t.Errorf("gap=0 rate = %.2f, want ~0", byGap[0])
	}
	// Wide gap: the attacker wins essentially always.
	if byGap[24] < 0.9 {
		t.Errorf("gap=24µs rate = %.2f, want ~1", byGap[24])
	}
	// Monotone (within noise) through the crossover.
	if byGap[8] < byGap[1] {
		t.Errorf("rates must rise through the crossover: %v", byGap)
	}
	// The paper's multi-core sits at 3µs — on the steep part.
	if byGap[3] < 0.2 || byGap[3] > 0.999 {
		t.Errorf("gap=3µs rate = %.2f, want mid-curve", byGap[3])
	}
}

func TestDefenseReportsBenignOverhead(t *testing.T) {
	res, err := DefenseEvaluation(Options{Rounds: 40})
	if err != nil {
		t.Fatal(err)
	}
	d := res.(*DefenseResult)
	if d.BenignBaseUs <= 0 || d.BenignGuardedUs <= 0 {
		t.Fatal("benign latencies not measured")
	}
	oh := d.OverheadPct()
	if oh < 0 || oh > 5 {
		t.Errorf("benign overhead = %.2f%%, want small but non-negative", oh)
	}
	if !strings.Contains(render(t, d), "benign-workload cost") {
		t.Error("rendering missing the overhead line")
	}
}

func TestPatchedVictimsAreImmune(t *testing.T) {
	res, err := Patched(Options{Rounds: 100})
	if err != nil {
		t.Fatal(err)
	}
	p := res.(*PatchedResult)
	if len(p.Rows) != 2 {
		t.Fatalf("rows = %d", len(p.Rows))
	}
	for _, row := range p.Rows {
		if row.Vulnerable < 0.5 {
			t.Errorf("%s: vulnerable baseline = %.1f%%, expected potent", row.Scenario, row.Vulnerable*100)
		}
		if row.Patched > 0.01 {
			t.Errorf("%s: patched rate = %.1f%%, want 0", row.Scenario, row.Patched*100)
		}
	}
	// The patched gedit closes the window entirely; patched vi leaves a
	// visible (but harmless) window.
	if p.Rows[1].PatchedDetected != 0 {
		t.Errorf("patched gedit detections = %d, want 0 (no root-owned binding)", p.Rows[1].PatchedDetected)
	}
	if p.Rows[0].PatchedDetected == 0 {
		t.Error("patched vi should still show a (harmless) window")
	}
}
