package experiments

import (
	"runtime"
	"testing"

	"tocttou/internal/core"
	"tocttou/internal/machine"
)

// fig6Scenarios rebuilds the exact Fig 6 point set (sizes, base seed,
// per-point stride) so these tests pin the production sweep, not a toy.
func fig6Scenarios() []core.Scenario {
	sizes := []int{100, 200, 300, 400, 500, 600, 700, 800, 900, 1000}
	m := machine.Uniprocessor()
	scs := make([]core.Scenario, len(sizes))
	for i, kb := range sizes {
		scs[i] = viScenario(m, kb, 1007+int64(i)*7919, false)
	}
	return scs
}

// TestFig6SweepBitIdenticalToSerialLoop is the tentpole's contract: the
// interleaved sweep over the Fig 6 point set produces byte-for-byte the
// CampaignResults of the old serial RunCampaign loop, at GOMAXPROCS=1
// and at NumCPU (and under -race via make check).
func TestFig6SweepBitIdenticalToSerialLoop(t *testing.T) {
	scs := fig6Scenarios()
	const rounds = 60
	serial := make([]core.CampaignResult, len(scs))
	for i, sc := range scs {
		res, err := core.RunCampaign(sc, rounds)
		if err != nil {
			t.Fatalf("serial point %d: %v", i, err)
		}
		serial[i] = res
	}
	for _, procs := range []int{1, runtime.NumCPU()} {
		prev := runtime.GOMAXPROCS(procs)
		swept, err := core.RunSweep(scs, rounds, core.SweepOptions{})
		runtime.GOMAXPROCS(prev)
		if err != nil {
			t.Fatalf("GOMAXPROCS=%d: sweep: %v", procs, err)
		}
		for i := range scs {
			if swept[i] != serial[i] {
				t.Errorf("GOMAXPROCS=%d point %d (%dKB): sweep diverged from serial loop:\nsweep:  %+v\nserial: %+v",
					procs, i, 100*(i+1), swept[i], serial[i])
			}
		}
	}
}

// TestFig6SeedStreamsPairwiseDisjoint documents why the seed derivation
// is collision-free as-is. Round k of point i runs at seed
//
//	(1007 + i*7919) + (k+1)*core.SeedStride.
//
// Two points' streams could only share a seed if their base-seed
// difference were a nonzero multiple of SeedStride; Fig 6's bases span
// only 9*7919 = 71271 < SeedStride = 1000003, so no multiple fits and
// the streams are pairwise disjoint for any budget. The test verifies
// the concrete instance exhaustively at the production budget.
func TestFig6SeedStreamsPairwiseDisjoint(t *testing.T) {
	scs := fig6Scenarios()
	const rounds = 500 // the production Fig 6 budget
	seen := make(map[int64]int, len(scs)*rounds)
	for i, sc := range scs {
		for k := 0; k < rounds; k++ {
			seed := sc.Seed + int64(k+1)*core.SeedStride
			if j, dup := seen[seed]; dup {
				t.Fatalf("seed %d of point %d collides with point %d", seed, i, j)
			}
			seen[seed] = i
		}
	}
	if len(seen) != len(scs)*rounds {
		t.Fatalf("expected %d distinct seeds, got %d", len(scs)*rounds, len(seen))
	}
}

// TestFig6AdaptiveReducesRounds checks the opt-in budget: at a 0.04
// half-width the low-rate uniprocessor points satisfy the Wilson rule
// long before 500 rounds, and the results stay deterministic.
func TestFig6AdaptiveReducesRounds(t *testing.T) {
	scs := fig6Scenarios()
	const budget = 500
	points := make([]core.SweepPoint, len(scs))
	for i, sc := range scs {
		points[i] = core.SweepPoint{Scenario: sc, Rounds: budget}
	}
	opt := core.SweepOptions{Adaptive: core.AdaptiveStop{HalfWidth: 0.04}}
	res, stats, err := core.RunSweepPoints(points, opt)
	if err != nil {
		t.Fatalf("adaptive sweep: %v", err)
	}
	total := len(scs) * budget
	if stats.RoundsCommitted >= total {
		t.Errorf("adaptive committed %d rounds, want < fixed total %d", stats.RoundsCommitted, total)
	}
	if stats.PointsStopped == 0 {
		t.Error("no point stopped early at half-width 0.04")
	}
	t.Logf("adaptive: %d/%d rounds committed, %d/%d points stopped early",
		stats.RoundsCommitted, total, stats.PointsStopped, len(scs))
	res2, stats2, err := core.RunSweepPoints(points, opt)
	if err != nil {
		t.Fatalf("adaptive sweep (repeat): %v", err)
	}
	// RoundsExecuted counts discarded in-flight overshoot and so depends
	// on scheduling; the deterministic contract covers the committed
	// rounds and the results themselves.
	if stats2.RoundsCommitted != stats.RoundsCommitted || stats2.PointsStopped != stats.PointsStopped {
		t.Errorf("adaptive stats nondeterministic: %+v vs %+v", stats, stats2)
	}
	for i := range res {
		if res[i] != res2[i] {
			t.Errorf("adaptive point %d nondeterministic:\n a: %+v\n b: %+v", i, res[i], res2[i])
		}
	}
}

// TestAdaptiveOffByDefault guards the goldens: a zero Options value must
// translate to a sweep with no adaptive stopping.
func TestAdaptiveOffByDefault(t *testing.T) {
	var o Options
	if so := o.sweep(); so.Adaptive.HalfWidth != 0 {
		t.Fatalf("default Options enable adaptive stopping: %+v", so.Adaptive)
	}
	o.AdaptiveHalfWidth = 0.02
	if so := o.sweep(); so.Adaptive.HalfWidth != 0.02 {
		t.Fatalf("AdaptiveHalfWidth not forwarded: %+v", so.Adaptive)
	}
}
