// Package experiments contains one driver per table and figure in the
// paper's evaluation, plus the headline comparisons and a model-validation
// sweep. Each driver runs simulated campaigns via internal/core and
// renders its result in the shape the paper reports, so the CLI
// (cmd/tocttou), the benchmark harness (bench_test.go), and EXPERIMENTS.md
// all share one implementation.
package experiments

import (
	"fmt"
	"io"
	"sort"

	"tocttou/internal/core"
)

// Options tunes an experiment run.
type Options struct {
	// Rounds overrides the experiment's default round count (0 = default).
	Rounds int
	// Seed is the base RNG seed (0 = a fixed default, for reproducibility).
	Seed int64
	// Sizes overrides the experiment's swept file sizes in KB, where
	// applicable (nil = default sweep).
	Sizes []int
	// AdaptiveHalfWidth, when positive, switches the sweep-based
	// experiments to sequential stopping: each sweep point stops
	// spending rounds once the 95% Wilson interval on its success rate
	// has half-width at most this value. The default 0 keeps the fixed
	// budgets, so every experiment output stays bit-identical to the
	// serial per-campaign runner.
	AdaptiveHalfWidth float64
	// MinRounds, when positive, sets the adaptive stopper's minimum
	// rounds per point before the interval test applies.
	MinRounds int
	// Metrics appends the kernel-metrics section (per-point counter
	// summaries plus window/D/L histograms) to experiments that support
	// it. Scenarios that default to untraced run traced so the latency
	// histograms populate; tracing is a pure observer, so success rates
	// and counters are unchanged.
	Metrics bool
	// Checkpoint, when non-empty, routes the experiment's sweeps through
	// core.RunSweepPointsCheckpoint with this file path: completed points
	// flush atomically as they commit, and a rerun resumes from the file,
	// re-simulating only the missing points (bit-identical results). Only
	// meaningful for experiments where SupportsCheckpoint reports true; an
	// experiment that runs several sweeps numbers the extra files
	// (path, path.2, ...).
	Checkpoint string
	// FaultRates overrides faultsweep's swept injection rates (nil = the
	// experiment's default ladder). Each must lie in [0, 1].
	FaultRates []float64
	// FaultSeed overrides faultsweep's fault-plan seed (0 = default).
	FaultSeed int64

	// ckptCalls counts checkpointed sweeps within one experiment run so
	// each gets its own file; it lives on the runner's local Options copy.
	ckptCalls int
}

func (o Options) rounds(def int) int {
	if o.Rounds > 0 {
		return o.Rounds
	}
	return def
}

func (o Options) seed(def int64) int64 {
	if o.Seed != 0 {
		return o.Seed
	}
	return def
}

// sweep translates the options into the engine's sweep configuration.
func (o Options) sweep() core.SweepOptions {
	var so core.SweepOptions
	if o.AdaptiveHalfWidth > 0 {
		so.Adaptive = core.AdaptiveStop{HalfWidth: o.AdaptiveHalfWidth, MinRounds: o.MinRounds}
	}
	return so
}

// runSweep is the experiments' standard sweep entry point: core.RunSweep
// semantics, plus checkpoint routing when the option is set. Pointer
// receiver so the per-run checkpoint-file counter advances across an
// experiment's multiple sweeps.
func (o *Options) runSweep(scs []core.Scenario, rounds int) ([]core.CampaignResult, error) {
	return o.runSweepWith(scs, rounds, o.sweep())
}

// runSweepWith is runSweep with explicit sweep options (for experiments
// that attach an OnRound observer).
func (o *Options) runSweepWith(scs []core.Scenario, rounds int, so core.SweepOptions) ([]core.CampaignResult, error) {
	points := make([]core.SweepPoint, len(scs))
	for i, sc := range scs {
		points[i] = core.SweepPoint{Scenario: sc, Rounds: rounds}
	}
	res, _, err := o.runSweepPoints(points, so)
	return res, err
}

// runSweepPoints routes a point sweep through the checkpoint runner when
// Options.Checkpoint is set; the second and later sweeps of one
// experiment run get numbered sibling files.
func (o *Options) runSweepPoints(points []core.SweepPoint, so core.SweepOptions) ([]core.CampaignResult, core.SweepStats, error) {
	if o.Checkpoint == "" {
		return core.RunSweepPoints(points, so)
	}
	o.ckptCalls++
	path := o.Checkpoint
	if o.ckptCalls > 1 {
		path = fmt.Sprintf("%s.%d", path, o.ckptCalls)
	}
	return core.RunSweepPointsCheckpoint(points, so, path)
}

// Result is a renderable experiment outcome.
type Result interface {
	// Name returns the experiment's identifier (e.g. "fig6").
	Name() string
	// Render writes the human-readable result.
	Render(w io.Writer) error
}

// Runner executes one experiment.
type Runner func(opt Options) (Result, error)

// registry maps experiment names to runners and descriptions.
var registry = map[string]struct {
	run  Runner
	desc string
}{
	"fig6":       {Fig6, "vi attack success rate vs file size on a uniprocessor (paper Fig. 6)"},
	"vismp":      {ViSMPSweep, "vi attack success on the SMP across 20KB-1MB (paper §5: 100%)"},
	"fig7":       {Fig7, "L and D vs file size for vi SMP attacks (paper Fig. 7)"},
	"table1":     {Table1, "vi SMP attack with 1-byte files: L, D, success (paper Table 1)"},
	"table2":     {Table2, "gedit SMP attack: L, D, predicted vs observed (paper Table 2)"},
	"geditup":    {GeditUniprocessor, "gedit attack on a uniprocessor (paper §4.2: ~0%)"},
	"fig8":       {Fig8, "failed gedit attack v1 timeline on the multi-core (paper Fig. 8)"},
	"geditmc1":   {GeditMulticoreV1, "gedit attack v1 campaign on the multi-core (paper §6.2.1: ~0%)"},
	"fig10":      {Fig10, "successful gedit attack v2 timeline on the multi-core (paper Fig. 10)"},
	"geditmc2":   {GeditMulticoreV2, "gedit attack v2 campaign on the multi-core (paper §6.2.2)"},
	"fig11":      {Fig11, "pipelined vs sequential attack timing (paper Fig. 11)"},
	"model":      {ModelValidation, "Equation 1 / formula (1) predictions vs simulated rates"},
	"headline":   {Headline, "uniprocessor vs multiprocessor success rates for all scenarios"},
	"sendmail":   {Sendmail, "blind flip-flop attack on a sendmail-style <lstat, open> pair (paper §1, extension)"},
	"eq1":        {Eq1, "Equation 1 term study: suspension, load, and attacker priority (extension)"},
	"eq1-exact":  {Eq1Exact, "exact Equation 1 validation: exhaustive schedule-space enumeration vs MC vs model (extension)"},
	"session":    {SessionStudy, "per-session risk over repeated saves: 1-(1-p)^k (extension)"},
	"gapsweep":   {GapSweep, "gedit v2 success vs rename→chmod gap width (extension)"},
	"patched":    {Patched, "fd-based fchown/fchmod application fix vs the same attacks (extension)"},
	"defense":    {DefenseEvaluation, "attack success with the EDGI-style defense enabled (extension)"},
	"faultsweep": {FaultSweep, "vi attack success under injected faults, by robustness policy (extension)"},
}

// checkpointable lists the experiments whose entire result derives from
// sweep-point CampaignResults, so a checkpoint resume reproduces the
// uninterrupted output exactly. sendmail is excluded deliberately: it
// counts guard-refused rounds through an OnRound observer, a side channel
// a resume cannot replay for already-completed points.
var checkpointable = map[string]bool{
	"fig6": true, "vismp": true, "fig7": true, "headline": true,
	"defense": true, "model": true, "eq1": true, "session": true,
	"gapsweep": true, "patched": true, "faultsweep": true,
}

// SupportsCheckpoint reports whether Options.Checkpoint is meaningful for
// the named experiment.
func SupportsCheckpoint(name string) bool { return checkpointable[name] }

// Names returns the registered experiment names, sorted.
func Names() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Describe returns the one-line description of an experiment.
func Describe(name string) (string, bool) {
	e, ok := registry[name]
	if !ok {
		return "", false
	}
	return e.desc, true
}

// Run executes a registered experiment by name.
func Run(name string, opt Options) (Result, error) {
	e, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (have %v)", name, Names())
	}
	return e.run(opt)
}
