package experiments

import (
	"fmt"
	"io"

	"tocttou/internal/attack"
	"tocttou/internal/core"
	"tocttou/internal/machine"
	"tocttou/internal/report"
	"tocttou/internal/sim"
	"tocttou/internal/trace"
)

// Fig11Row captures the attack-step timing for one file size and one
// attacker structure, relative to the detecting stat's start (µs).
type Fig11Row struct {
	SizeKB   int
	Parallel bool
	// StatStart/End, UnlinkStart/End, SymlinkStart/End are µs offsets
	// from the detecting stat's entry.
	StatStart, StatEnd       float64
	UnlinkStart, UnlinkEnd   float64
	SymlinkStart, SymlinkEnd float64
	// AttackDone is when the name redirection is complete (symlink end).
	AttackDone float64
}

// Fig11Result reproduces the paper's Figure 11: the effect of
// parallelizing the attack program.
type Fig11Result struct {
	Rows []Fig11Row
}

// Name implements Result.
func (r *Fig11Result) Name() string { return "fig11" }

// Render implements Result.
func (r *Fig11Result) Render(w io.Writer) error {
	fmt.Fprintf(w, "Figure 11 — the effect of parallelizing the attack program\n")
	fmt.Fprintf(w, "Paper: in the parallel attack the symlink finishes well before unlink's\n")
	fmt.Fprintf(w, "truncation ends; sequentially it must wait for the whole unlink.\n\n")
	bc := &report.BarChart{Title: "attack step timing by file size", Unit: "µs"}
	for _, row := range r.Rows {
		label := fmt.Sprintf("%dKB %s", row.SizeKB, map[bool]string{true: "parallel", false: "sequential"}[row.Parallel])
		bc.Bars = append(bc.Bars, report.Bar{
			Label: label,
			Segments: []report.Segment{
				{Name: "stat", Start: row.StatStart, End: row.StatEnd},
				{Name: "unlink", Start: row.UnlinkStart, End: row.UnlinkEnd},
				{Name: "symlink", Start: row.SymlinkStart, End: row.SymlinkEnd},
			},
		})
	}
	if err := bc.Render(w); err != nil {
		return err
	}
	fmt.Fprintln(w)
	tbl := &report.Table{Headers: []string{"file size", "attacker", "unlink ends (µs)", "attack done (µs)", "speedup"}}
	bySize := map[int][2]float64{} // size -> [sequentialDone, parallelDone]
	for _, row := range r.Rows {
		v := bySize[row.SizeKB]
		if row.Parallel {
			v[1] = row.AttackDone
		} else {
			v[0] = row.AttackDone
		}
		bySize[row.SizeKB] = v
	}
	for _, row := range r.Rows {
		speedup := ""
		if row.Parallel {
			v := bySize[row.SizeKB]
			if v[1] > 0 {
				speedup = fmt.Sprintf("%.1fx", v[0]/v[1])
			}
		}
		tbl.AddRow(
			fmt.Sprintf("%dKB", row.SizeKB),
			map[bool]string{true: "parallel", false: "sequential"}[row.Parallel],
			fmt.Sprintf("%.1f", row.UnlinkEnd),
			fmt.Sprintf("%.1f", row.AttackDone),
			speedup,
		)
	}
	return tbl.Render(w)
}

// Fig11 measures the pipelined and sequential attackers' step timing on
// the multi-core for the paper's three file sizes.
func Fig11(opt Options) (Result, error) {
	sizes := opt.Sizes
	if sizes == nil {
		sizes = []int{20, 100, 500}
	}
	seed := opt.seed(11003)
	out := &Fig11Result{}
	for i, kb := range sizes {
		for _, parallel := range []bool{false, true} {
			row, err := fig11Row(kb, parallel, seed+int64(i)*7717)
			if err != nil {
				return nil, fmt.Errorf("fig11 %dKB parallel=%v: %w", kb, parallel, err)
			}
			out.Rows = append(out.Rows, row)
		}
	}
	return out, nil
}

func fig11Row(sizeKB int, parallel bool, seed int64) (Fig11Row, error) {
	// §7 is explicitly about multi-cores: with only two CPUs the second
	// attacker thread has no processor to overlap on.
	m := machine.MultiCore()
	sc := core.Scenario{
		Machine:    m,
		Victim:     geditScenario(m, attack.NewV2(), 0, false).Victim,
		UseSyscall: "chmod",
		FileSize:   int64(sizeKB) << 10,
		Seed:       seed,
		Trace:      true,
	}
	if parallel {
		sc.Attacker = attack.NewPipelined()
	} else {
		sc.Attacker = attack.NewV2()
	}
	// Find a round where the attack steps all completed on the target.
	r, _, _, err := findRound(sc, func(r core.Round) bool {
		if !r.LD.Detected {
			return false
		}
		log := trace.New(r.Events)
		_, _, ok := log.SyscallSpan(r.AttackerPID, "symlink", core.DefaultPaths().Target, r.LD.UnlinkEnter)
		return ok
	})
	if err != nil {
		return Fig11Row{}, err
	}
	log := trace.New(r.Events)
	target := core.DefaultPaths().Target
	statEnter := r.LD.StatEnter
	statExit, _ := log.FirstSyscallExit(r.AttackerPID, "stat", target, statEnter)
	ulEnter, ulExit, _ := log.SyscallSpan(r.AttackerPID, "unlink", target, statEnter)
	// The successful symlink on the target (retries all share the path;
	// take the first span whose exit reports success).
	slEnter, slExit := findOKSyscall(log, r.AttackerPID, "symlink", target, statEnter)

	rel := func(t sim.Time) float64 { return t.Sub(statEnter).Seconds() * 1e6 }
	return Fig11Row{
		SizeKB:    sizeKB,
		Parallel:  parallel,
		StatStart: 0, StatEnd: rel(statExit),
		UnlinkStart: rel(ulEnter), UnlinkEnd: rel(ulExit),
		SymlinkStart: rel(slEnter), SymlinkEnd: rel(slExit),
		AttackDone: rel(slExit),
	}, nil
}

// findOKSyscall locates the first successful (errno 0) occurrence of the
// syscall on path at or after from, returning its enter and exit times.
func findOKSyscall(log *trace.Log, pid int32, name, path string, from sim.Time) (sim.Time, sim.Time) {
	var enter sim.Time
	var haveEnter bool
	for _, e := range log.Events {
		if e.T < from || e.PID != pid || e.Label != name || e.Path != path {
			continue
		}
		switch e.Kind {
		case sim.EvSyscallEnter:
			enter, haveEnter = e.T, true
		case sim.EvSyscallExit:
			if haveEnter && e.Arg == 0 {
				return enter, e.T
			}
		}
	}
	return 0, 0
}
