package experiments

import (
	"fmt"
	"io"

	"tocttou/internal/attack"
	"tocttou/internal/core"
	"tocttou/internal/machine"
	"tocttou/internal/prog"
	"tocttou/internal/report"
	"tocttou/internal/victim"
)

// PatchedRow compares a vulnerable victim with its fd-patched version.
type PatchedRow struct {
	Scenario   string
	Vulnerable float64
	Patched    float64
	// PatchedDetected counts rounds where the patched victim's window
	// was even observable to the attacker.
	PatchedDetected int
	Rounds          int
}

// PatchedResult evaluates the application-level fix — fchown/fchmod on
// descriptors instead of path-based calls — against the same attackers
// that devastate the vulnerable victims. The defense experiment fixes the
// kernel; this one fixes the application: either suffices.
type PatchedResult struct {
	Rows []PatchedRow
}

// Name implements Result.
func (r *PatchedResult) Name() string { return "patched" }

// Render implements Result.
func (r *PatchedResult) Render(w io.Writer) error {
	fmt.Fprintf(w, "Application fix — fchown/fchmod on descriptors removes the TOCTTOU pair\n")
	fmt.Fprintf(w, "(the canonical remediation: no path is re-resolved at the use step).\n\n")
	tbl := &report.Table{Headers: []string{"scenario", "vulnerable victim", "fd-patched victim", "patched rounds with detection"}}
	for _, row := range r.Rows {
		tbl.AddRow(row.Scenario,
			fmt.Sprintf("%.1f%%", row.Vulnerable*100),
			fmt.Sprintf("%.1f%%", row.Patched*100),
			fmt.Sprintf("%d/%d", row.PatchedDetected, row.Rounds))
	}
	return tbl.Render(w)
}

// Patched runs vulnerable-vs-patched comparisons on the SMP.
func Patched(opt Options) (Result, error) {
	rounds := opt.rounds(300)
	seed := opt.seed(19051)
	out := &PatchedResult{}

	cases := []struct {
		name       string
		vulnerable prog.Program
		patched    prog.Program
		use        string
		sizeKB     int64
	}{
		{"vi 100KB / SMP / attack v1", victim.NewVi(), victim.NewViFixed(), "chown", 100},
		{"gedit 2KB / SMP / attack v1", victim.NewGedit(), victim.NewGeditFixed(), "chmod", geditFileKB},
	}
	// Each case contributes two sweep points: the vulnerable baseline and
	// the fd-patched victim under the same attacker.
	scs := make([]core.Scenario, 0, 2*len(cases))
	for i, c := range cases {
		base := core.Scenario{
			Machine: machine.SMP2(), Victim: c.vulnerable, Attacker: attack.NewV1(),
			UseSyscall: c.use, FileSize: c.sizeKB << 10,
			Seed: seed + int64(i)*104729,
		}
		fixed := base
		fixed.Victim = c.patched
		fixed.Seed += 7919
		fixed.Trace = true // count whether a window is even detectable
		scs = append(scs, base, fixed)
	}
	results, err := opt.runSweep(scs, rounds)
	if err != nil {
		return nil, fmt.Errorf("patched: %w", err)
	}
	for i, c := range cases {
		vres, pres := results[2*i], results[2*i+1]
		out.Rows = append(out.Rows, PatchedRow{
			Scenario:        c.name,
			Vulnerable:      vres.Rate(),
			Patched:         pres.Rate(),
			PatchedDetected: pres.Detected,
			Rounds:          rounds,
		})
	}
	return out, nil
}
