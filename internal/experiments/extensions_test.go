package experiments

import (
	"strings"
	"testing"
)

func TestSendmailContrastAcrossMachines(t *testing.T) {
	res, err := Sendmail(Options{Rounds: 150})
	if err != nil {
		t.Fatal(err)
	}
	sm := res.(*SendmailResult)
	if len(sm.Rows) != 3 {
		t.Fatalf("rows = %d, want 3 machines", len(sm.Rows))
	}
	var up, smp SendmailRow
	for _, row := range sm.Rows {
		if strings.Contains(row.Machine, "uniprocessor") {
			up = row
		}
		if strings.Contains(row.Machine, "smp") {
			smp = row
		}
	}
	if up.Result.Rate() > 0.02 {
		t.Errorf("uniprocessor capture rate = %.1f%%, want ~0", up.Result.Rate()*100)
	}
	if smp.Result.Rate() < 0.05 {
		t.Errorf("SMP capture rate = %.1f%%, want a real foothold", smp.Result.Rate()*100)
	}
	if smp.Refused == 0 {
		t.Error("the symlink check should catch some flips on the SMP")
	}
	total := smp.Result.Successes + smp.Refused
	if total > smp.Result.Rounds {
		t.Errorf("outcome accounting broken: %d captured + %d refused > %d rounds",
			smp.Result.Successes, smp.Refused, smp.Result.Rounds)
	}
	if !strings.Contains(render(t, sm), "passwd captured") {
		t.Error("rendering missing outcome columns")
	}
}

func TestEq1TermStudy(t *testing.T) {
	res, err := Eq1(Options{Rounds: 60})
	if err != nil {
		t.Fatal(err)
	}
	eq := res.(*Eq1Result)
	if len(eq.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(eq.Rows))
	}
	up, noLoad, loaded, prio := eq.Rows[0], eq.Rows[1], eq.Rows[2], eq.Rows[3]
	// First term: UP success tracks measured suspension probability.
	if diff := up.Observed - up.PSuspended; diff < -0.06 || diff > 0.12 {
		t.Errorf("UP: observed %.2f vs P(susp) %.2f should track", up.Observed, up.PSuspended)
	}
	// Second term: near-certain unloaded, degraded by hogs, restored by
	// priority.
	if noLoad.Observed < 0.90 {
		t.Errorf("no-load SMP observed = %.2f, want ~0.96", noLoad.Observed)
	}
	if loaded.Observed > noLoad.Observed-0.25 {
		t.Errorf("load should hurt: %.2f vs %.2f", loaded.Observed, noLoad.Observed)
	}
	if prio.Observed < loaded.Observed+0.2 {
		t.Errorf("priority should restore: %.2f vs %.2f", prio.Observed, loaded.Observed)
	}
	if !strings.Contains(render(t, eq), "P(susp)") {
		t.Error("rendering missing the term columns")
	}
}
