package experiments

import (
	"path/filepath"
	"strings"
	"testing"
)

func TestFaultSweepShapeAndRendering(t *testing.T) {
	opt := Options{Rounds: 60, FaultRates: []float64{0, 0.2}}
	res, err := FaultSweep(opt)
	if err != nil {
		t.Fatal(err)
	}
	fsw := res.(*FaultSweepResult)
	if want := 2 * len(faultPolicies); len(fsw.Rows) != want {
		t.Fatalf("rows = %d, want %d", len(fsw.Rows), want)
	}

	// The dependability story: at rate 0 every policy succeeds like the
	// fault-free baseline; at rate 0.2 the give-up policy collapses while
	// retry keeps most of the attack's success alive.
	byKey := make(map[string]float64)
	faults := make(map[string]int64)
	for _, row := range fsw.Rows {
		key := row.Policy
		if row.Rate > 0 {
			key += "+faults"
		}
		byKey[key] = row.Result.Rate()
		faults[key] = row.Result.Faults.Total()
	}
	if byKey["give-up"] < 0.9 {
		t.Errorf("fault-free give-up rate = %.2f, want near-certain", byKey["give-up"])
	}
	if byKey["give-up+faults"] > 0.3 {
		t.Errorf("faulty give-up rate = %.2f, want collapsed", byKey["give-up+faults"])
	}
	if byKey["retry+faults"] < byKey["give-up+faults"] {
		t.Errorf("retry (%.2f) did not outlast give-up (%.2f) under faults",
			byKey["retry+faults"], byKey["give-up+faults"])
	}
	if faults["give-up"] != 0 {
		t.Errorf("rate-0 point delivered %d faults", faults["give-up"])
	}
	if faults["retry+faults"] == 0 {
		t.Error("rate-0.2 point delivered no faults")
	}

	out := render(t, res)
	for _, want := range []string{"faultsweep", "give-up", "retry+fallback", "fs-err/rnd", "robustness policy"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendering lacks %q", want)
		}
	}
}

func TestFaultSweepRenderDeterministic(t *testing.T) {
	opt := Options{Rounds: 60, FaultRates: []float64{0, 0.05}}
	a, err := FaultSweep(opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := FaultSweep(opt)
	if err != nil {
		t.Fatal(err)
	}
	if ra, rb := render(t, a), render(t, b); ra != rb {
		t.Fatal("identical faultsweep runs rendered differently")
	}
}

func TestFaultSweepRejectsBadRate(t *testing.T) {
	if _, err := FaultSweep(Options{Rounds: 10, FaultRates: []float64{0.5, 1.2}}); err == nil {
		t.Error("out-of-range fault rate accepted")
	}
}

func TestFaultSweepCheckpointRoutedThroughOptions(t *testing.T) {
	// Options.Checkpoint must reach the sweep: a second run against the
	// completed checkpoint file restores every point and renders
	// identically.
	dir := t.TempDir()
	opt := Options{Rounds: 40, FaultRates: []float64{0, 0.2}, Checkpoint: filepath.Join(dir, "fs.ckpt")}
	a, err := FaultSweep(opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := FaultSweep(opt)
	if err != nil {
		t.Fatal(err)
	}
	if ra, rb := render(t, a), render(t, b); ra != rb {
		t.Fatal("checkpoint-restored faultsweep rendered differently")
	}
}

func TestSupportsCheckpoint(t *testing.T) {
	for _, name := range []string{"fig6", "headline", "faultsweep"} {
		if !SupportsCheckpoint(name) {
			t.Errorf("SupportsCheckpoint(%q) = false, want true", name)
		}
	}
	// sendmail folds per-round state through an OnRound side channel a
	// restored point would skip; it must stay non-checkpointable.
	for _, name := range []string{"sendmail", "fig8", "nope"} {
		if SupportsCheckpoint(name) {
			t.Errorf("SupportsCheckpoint(%q) = true, want false", name)
		}
	}
}
