package victim

import (
	"fmt"
	"time"

	"tocttou/internal/fs"
	"tocttou/internal/prog"
	"tocttou/internal/userland"
)

// ViFixed is vi's save path with the application-level fix the TOCTTOU
// literature prescribes: ownership is restored with fchown(2) on the open
// descriptor instead of chown(2) on the pathname. The descriptor refers
// to the inode vi created, so no later rebinding of the name can redirect
// the call — the <open, chown> pair is gone.
type ViFixed struct {
	// Inner supplies the calibrated timing parameters.
	Inner *Vi
}

// NewViFixed returns the patched vi.
func NewViFixed() *ViFixed { return &ViFixed{Inner: NewVi()} }

var _ prog.Program = (*ViFixed)(nil)

// Name implements prog.Program.
func (v *ViFixed) Name() string { return "vi-fchown" }

// Run implements prog.Program.
func (v *ViFixed) Run(c *userland.Libc, env prog.Env) error {
	in := v.Inner
	scale := env.Machine.ScaleCompute
	st, err := c.Stat(env.Target)
	if err != nil {
		return fmt.Errorf("vi-fchown: stat original: %w", err)
	}
	if err := c.Rename(env.Target, env.Backup); err != nil {
		return fmt.Errorf("vi-fchown: backup rename: %w", err)
	}
	f, err := c.Open(env.Target, fs.OWrite|fs.OCreate|fs.OTrunc, 0o644)
	if err != nil {
		return fmt.Errorf("vi-fchown: create: %w", err)
	}
	c.Compute(scale(in.PostOpenCompute))
	remaining := env.FileSize
	for remaining > 0 {
		n := in.ChunkSize
		if n > remaining {
			n = remaining
		}
		c.Compute(scale(scaledChunk(in, n)))
		if err := c.Write(f, n); err != nil {
			return fmt.Errorf("vi-fchown: write: %w", err)
		}
		remaining -= n
	}
	c.Compute(scale(in.PreChownCompute))
	// The fix: restore ownership through the descriptor, then close.
	if err := c.Fchown(f, st.UID, st.GID); err != nil {
		return fmt.Errorf("vi-fchown: fchown: %w", err)
	}
	if err := c.Close(f); err != nil {
		return fmt.Errorf("vi-fchown: close: %w", err)
	}
	return nil
}

// GeditFixed is gedit's save path patched the same way: mode and owner
// are set with fchmod/fchown on the scratch file's descriptor before the
// rename, so the committed file is never root-owned under the contested
// name and there is no path-based use call to race.
type GeditFixed struct {
	Inner *Gedit
}

// NewGeditFixed returns the patched gedit.
func NewGeditFixed() *GeditFixed { return &GeditFixed{Inner: NewGedit()} }

var _ prog.Program = (*GeditFixed)(nil)

// Name implements prog.Program.
func (g *GeditFixed) Name() string { return "gedit-fchown" }

// Run implements prog.Program.
func (g *GeditFixed) Run(c *userland.Libc, env prog.Env) error {
	in := g.Inner
	scale := env.Machine.ScaleCompute
	st, err := c.Stat(env.Target)
	if err != nil {
		return fmt.Errorf("gedit-fchown: stat original: %w", err)
	}
	if err := c.Rename(env.Target, env.Backup); err != nil {
		return fmt.Errorf("gedit-fchown: backup: %w", err)
	}
	tmp, err := c.Open(env.Temp, fs.OWrite|fs.OCreate|fs.OTrunc, 0o600)
	if err != nil {
		return fmt.Errorf("gedit-fchown: scratch create: %w", err)
	}
	remaining := env.FileSize
	for remaining > 0 {
		n := in.ChunkSize
		if n > remaining {
			n = remaining
		}
		c.Compute(scale(scaledGeditChunk(in, n)))
		if err := c.Write(tmp, n); err != nil {
			return fmt.Errorf("gedit-fchown: scratch write: %w", err)
		}
		remaining -= n
	}
	// The fix: attributes are settled on the descriptor BEFORE the
	// scratch file becomes visible under the contested name.
	if err := c.Fchmod(tmp, st.Mode); err != nil {
		return fmt.Errorf("gedit-fchown: fchmod: %w", err)
	}
	if err := c.Fchown(tmp, st.UID, st.GID); err != nil {
		return fmt.Errorf("gedit-fchown: fchown: %w", err)
	}
	if err := c.Close(tmp); err != nil {
		return fmt.Errorf("gedit-fchown: scratch close: %w", err)
	}
	if err := c.Rename(env.Temp, env.Target); err != nil {
		return fmt.Errorf("gedit-fchown: rename: %w", err)
	}
	// The window is gone: nothing path-based remains to race.
	return nil
}

// scaledChunk returns vi's per-chunk compute prorated by chunk fill.
func scaledChunk(v *Vi, n int64) time.Duration {
	return time.Duration(float64(v.PerChunkCompute) * float64(n) / float64(v.ChunkSize))
}

// scaledGeditChunk prorates gedit's per-chunk compute.
func scaledGeditChunk(g *Gedit, n int64) time.Duration {
	return time.Duration(float64(g.PerChunkCompute) * float64(n) / float64(g.ChunkSize))
}
