package victim

import (
	"errors"
	"testing"
	"time"

	"tocttou/internal/fs"
	"tocttou/internal/machine"
	"tocttou/internal/prog"
	"tocttou/internal/sim"
	"tocttou/internal/userland"
)

func TestMailerDeliversToOrdinaryMailbox(t *testing.T) {
	_, f, _ := runVictim(t, NewMailer(), machine.SMP2(), 4<<10)
	info, err := f.LookupInfo("/home/alice/report.txt")
	if err != nil {
		t.Fatal(err)
	}
	if info.Size != 4<<10+512 {
		t.Errorf("mailbox size = %d, want original + 512-byte message", info.Size)
	}
	// The privileged file must be untouched.
	pw, _ := f.LookupInfo("/etc/passwd")
	if pw.Size != 2048 {
		t.Errorf("passwd size = %d, want 2048", pw.Size)
	}
}

func TestMailerRefusesSymlinkMailbox(t *testing.T) {
	// When the mailbox is already a symlink at check time, the lstat
	// check catches it and delivery aborts.
	m := machine.SMP2()
	k := sim.New(m.SimConfig(1, nil))
	f := fs.New(fs.Config{Latency: m.Latency})
	f.MustMkdirAll("/etc", 0o755, 0, 0)
	f.MustWriteFile("/etc/passwd", 2048, 0o644, 0, 0)
	f.MustMkdirAll("/home/alice", 0o755, 1000, 1000)
	f.MustSymlink("/etc/passwd", "/home/alice/mbox", 1000, 1000)
	env := prog.Env{
		Target: "/home/alice/mbox", Backup: "/home/alice/mbox~",
		Temp: "/home/alice/.t", Passwd: "/etc/passwd", Dummy: "/home/alice/d",
		FileSize: 4 << 10, OwnerUID: 1000, OwnerGID: 1000, Machine: m,
	}
	p := k.NewProcess("mailer", 0, 0)
	var runErr error
	k.Spawn(p, "deliver", func(task *sim.Task) {
		runErr = NewMailer().Run(userland.Bind(task, f, userland.NewImage(m.TrapCost, true)), env)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(runErr, ErrDeliveryRefused) {
		t.Errorf("err = %v, want ErrDeliveryRefused", runErr)
	}
	pw, _ := f.LookupInfo("/etc/passwd")
	if pw.Size != 2048 {
		t.Errorf("passwd size = %d; the refused delivery must not write", pw.Size)
	}
}

func TestMailerFallsToMidWindowSwap(t *testing.T) {
	// Deterministically swap the mailbox for a symlink inside the
	// check-use gap: the open follows it and the message lands in the
	// privileged file — the paper's §1 scenario.
	m := machine.SMP2()
	k := sim.New(m.SimConfig(1, nil))
	f := fs.New(fs.Config{Latency: m.Latency})
	f.MustMkdirAll("/etc", 0o755, 0, 0)
	f.MustWriteFile("/etc/passwd", 2048, 0o644, 0, 0)
	f.MustMkdirAll("/home/alice", 0o777, 1000, 1000)
	f.MustWriteFile("/home/alice/mbox", 4<<10, 0o644, 1000, 1000)
	env := prog.Env{
		Target: "/home/alice/mbox", Backup: "/home/alice/mbox~",
		Temp: "/home/alice/.t", Passwd: "/etc/passwd", Dummy: "/home/alice/d",
		FileSize: 4 << 10, OwnerUID: 1000, OwnerGID: 1000, Machine: m,
	}
	mailer := NewMailer()
	// Widen the check-use gap so the swap pair — unlink (including the
	// mailbox truncation) plus symlink, ~28µs on the SMP — fits
	// deterministically.
	mailer.CheckUseGap = 30 * time.Microsecond
	root := k.NewProcess("mailer", 0, 0)
	k.Spawn(root, "deliver", func(task *sim.Task) {
		_ = mailer.Run(userland.Bind(task, f, userland.NewImage(m.TrapCost, true)), env)
	})
	alice := k.NewProcess("attacker", 1000, 1000)
	k.Spawn(alice, "swap", func(task *sim.Task) {
		c := userland.Bind(task, f, userland.NewImage(m.TrapCost, true))
		// The mailer computes PreDeliveryCompute (~282µs on the SMP)
		// then lstats; the gap follows. Land the swap inside it.
		task.Sleep(m.ScaleCompute(mailer.PreDeliveryCompute) + 8*time.Microsecond)
		_ = c.Unlink(env.Target)
		_ = c.Symlink(env.Passwd, env.Target)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	pw, _ := f.LookupInfo("/etc/passwd")
	if pw.Size != 2048+512 {
		t.Errorf("passwd size = %d, want 2048+512 (message appended through the swap)", pw.Size)
	}
}
