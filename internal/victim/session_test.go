package victim

import (
	"testing"

	"tocttou/internal/machine"
	"tocttou/internal/sim"
)

func TestSessionRunsInnerRepeatedly(t *testing.T) {
	s := NewSession(NewVi(), 3)
	log, f, pid := runVictim(t, s, machine.SMP2(), 8<<10)
	saves := 0
	for _, e := range log.Events {
		if e.Kind == sim.EvSyscallEnter && e.PID == pid && e.Label == "chown" {
			saves++
		}
	}
	if saves != 3 {
		t.Errorf("chown count = %d, want 3 (one per save)", saves)
	}
	// The file ends the session owned by the original user.
	info, err := f.LookupInfo("/home/alice/report.txt")
	if err != nil {
		t.Fatal(err)
	}
	if info.UID != 1000 {
		t.Errorf("owner = %d, want 1000", info.UID)
	}
}

func TestSessionName(t *testing.T) {
	if got := NewSession(NewVi(), 5).Name(); got != "vi-x5" {
		t.Errorf("name = %q", got)
	}
}

func TestSessionWindowReopensEachSave(t *testing.T) {
	s := NewSession(NewVi(), 4)
	log, _, _ := runVictim(t, s, machine.SMP2(), 4<<10)
	binds := 0
	for _, e := range log.Events {
		if e.Kind == sim.EvNameBind && e.Path == "/home/alice/report.txt" && e.Arg == 0 {
			binds++
		}
	}
	if binds != 4 {
		t.Errorf("root-owned bindings = %d, want 4 (a window per save)", binds)
	}
}

func TestSessionSingleSaveEquivalentToInner(t *testing.T) {
	one := NewSession(NewVi(), 1)
	logS, _, pidS := runVictim(t, one, machine.SMP2(), 4<<10)
	logV, _, pidV := runVictim(t, NewVi(), machine.SMP2(), 4<<10)
	ws, okS := logS.WindowDuration(pidS, "/home/alice/report.txt", "chown")
	wv, okV := logV.WindowDuration(pidV, "/home/alice/report.txt", "chown")
	if !okS || !okV {
		t.Fatal("windows not found")
	}
	diff := float64(ws-wv) / float64(wv)
	if diff < -0.15 || diff > 0.15 {
		t.Errorf("single-save session window %v differs from plain vi %v", ws, wv)
	}
}

func TestPatchedVictimsRestoreOwnership(t *testing.T) {
	_, f1, _ := runVictim(t, NewViFixed(), machine.SMP2(), 16<<10)
	info, err := f1.LookupInfo("/home/alice/report.txt")
	if err != nil {
		t.Fatal(err)
	}
	if info.UID != 1000 {
		t.Errorf("vi-fchown owner = %d, want 1000", info.UID)
	}
	_, f2, _ := runVictim(t, NewGeditFixed(), machine.SMP2(), 4<<10)
	info, err = f2.LookupInfo("/home/alice/report.txt")
	if err != nil {
		t.Fatal(err)
	}
	if info.UID != 1000 {
		t.Errorf("gedit-fchown owner = %d, want 1000", info.UID)
	}
}

func TestGeditFixedNeverExposesRootOwnedName(t *testing.T) {
	log, _, _ := runVictim(t, NewGeditFixed(), machine.SMP2(), 4<<10)
	if _, found := log.FirstBind("/home/alice/report.txt", 0); found {
		t.Error("patched gedit must never bind the target root-owned")
	}
}
