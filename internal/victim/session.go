package victim

import (
	"fmt"
	"time"

	"tocttou/internal/prog"
	"tocttou/internal/stats"
	"tocttou/internal/userland"
)

// Session runs an inner victim program repeatedly, modeling an editing
// session with several saves. The paper's Fig. 1 caption is explicit that
// the vulnerability window opens "every time vi saves the file" — so an
// attacker who loses one race simply waits for the next save, and the
// per-session risk compounds geometrically: P ≈ 1 - (1-p)^saves.
type Session struct {
	// Inner is the per-save victim (vi, gedit, ...).
	Inner prog.Program
	// Saves is the number of save operations in the session.
	Saves int
	// PauseMax bounds the uniform editor think time between saves,
	// which re-randomizes the window's phase against scheduler quanta.
	PauseMax time.Duration
}

// NewSession wraps inner in an n-save session.
func NewSession(inner prog.Program, saves int) *Session {
	return &Session{Inner: inner, Saves: saves, PauseMax: 30 * time.Millisecond}
}

var _ prog.Program = (*Session)(nil)

// Name implements prog.Program.
func (s *Session) Name() string {
	return fmt.Sprintf("%s-x%d", s.Inner.Name(), s.Saves)
}

// Run implements prog.Program.
func (s *Session) Run(c *userland.Libc, env prog.Env) error {
	var lastErr error
	for i := 0; i < s.Saves; i++ {
		if i > 0 && s.PauseMax > 0 {
			c.Compute(stats.UniformDuration(c.Task().RNG(), 0, s.PauseMax))
		}
		if err := s.Inner.Run(c, env); err != nil {
			// A save that errors (e.g. chown on a vanished name after a
			// sloppy race) does not end the editing session.
			lastErr = err
		}
	}
	return lastErr
}
