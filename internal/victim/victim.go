// Package victim implements syscall-level replicas of the vulnerable
// save paths the paper attacks: vi 6.1's <open, chown> window (Fig. 1),
// gedit 2.8.3's <rename, chown> window (Fig. 3), and an rpm-like victim
// that is always suspended inside its window (§3.2's upper-bound case).
//
// User-space compute parameters are expressed at the 3.2 GHz base
// calibration and scaled by the machine profile, except gedit's
// rename→chmod gap, which the paper reports per machine (43 µs on the
// SMP, 3 µs on the multi-core) and which the profile therefore supplies
// directly.
package victim

import (
	"fmt"
	"time"

	"tocttou/internal/fs"
	"tocttou/internal/prog"
	"tocttou/internal/userland"
)

// Vi replays vi's save path: rename the original to a backup, create the
// file anew (as root — the window opens), write the buffer in chunks,
// close, and chown back to the original owner (the window closes). The
// window therefore contains the whole file write, which is why vi's L
// grows linearly with file size (Fig. 7).
type Vi struct {
	// ChunkSize is the write(2) granularity (vi's buffer size).
	ChunkSize int64
	// PerChunkCompute is vi's user-space work per full chunk (encoding
	// checks, buffer management) at base speed.
	PerChunkCompute time.Duration
	// PostOpenCompute is vi's work between open returning and the first
	// write, at base speed.
	PostOpenCompute time.Duration
	// PreChownCompute is vi's work between close and chown, at base
	// speed.
	PreChownCompute time.Duration
	// Robust is the save path's reaction to transient syscall failures
	// (injected EINTR/EIO/ENOSPC/EMFILE; see internal/fault). The zero
	// value aborts the save on the first failure — the historical
	// behavior. With Fallback set, a persistently failing backup rename
	// degrades to saving without a backup copy instead of aborting.
	Robust prog.Robustness
}

// NewVi returns vi with the default calibration.
func NewVi() *Vi {
	return &Vi{
		ChunkSize:       8 * 1024,
		PerChunkCompute: 54 * time.Microsecond,
		PostOpenCompute: 20 * time.Microsecond,
		PreChownCompute: 30 * time.Microsecond,
	}
}

var _ prog.Program = (*Vi)(nil)

// Name implements prog.Program.
func (v *Vi) Name() string { return "vi" }

// Run implements prog.Program.
func (v *Vi) Run(c *userland.Libc, env prog.Env) error {
	scale := env.Machine.ScaleCompute
	r := v.Robust
	var st fs.FileInfo
	err := r.Retry(c, func() error {
		var e error
		st, e = c.Stat(env.Target)
		return e
	})
	if err != nil {
		return fmt.Errorf("vi: stat original: %w", err)
	}
	if err := r.Retry(c, func() error { return c.Rename(env.Target, env.Backup) }); err != nil {
		if !r.Fallback {
			return fmt.Errorf("vi: backup rename: %w", err)
		}
		// Degraded path: save without keeping the backup copy — the
		// OTrunc below rewrites the original in place.
	}
	var f *fs.File
	err = r.Retry(c, func() error {
		var e error
		f, e = c.Open(env.Target, fs.OWrite|fs.OCreate|fs.OTrunc, 0o644)
		return e
	})
	if err != nil {
		return fmt.Errorf("vi: create: %w", err)
	}
	c.Compute(scale(v.PostOpenCompute))
	// vi prepares each chunk in user space before writing it.
	prep := func(n int64) time.Duration {
		return scale(time.Duration(float64(v.PerChunkCompute) * float64(n) / float64(v.ChunkSize)))
	}
	remaining := env.FileSize
	for remaining > 0 {
		written, werr := c.WriteChunks(f, remaining, v.ChunkSize, prep)
		remaining -= written
		if werr == nil {
			continue
		}
		// One chunk failed with its prep already charged — the exact state
		// the stepped loop is in when c.Write returns an injected error.
		// Run that chunk's retries under the robustness policy, then
		// resume the coalesced path for the remainder.
		n := v.ChunkSize
		if n > remaining {
			n = remaining
		}
		if err := r.RetryAfter(werr, c, func() error { return c.Write(f, n) }); err != nil {
			return fmt.Errorf("vi: write: %w", err)
		}
		remaining -= n
	}
	if err := r.Retry(c, func() error { return c.Close(f) }); err != nil {
		return fmt.Errorf("vi: close: %w", err)
	}
	c.Compute(scale(v.PreChownCompute))
	// Restore the original owner — the "use" end of the TOCTTOU pair.
	// If the attacker won the race, Target now resolves through a
	// symlink to /etc/passwd and this chown hands the attacker the file.
	if err := r.Retry(c, func() error { return c.Chown(env.Target, st.UID, st.GID) }); err != nil {
		return fmt.Errorf("vi: chown: %w", err)
	}
	return nil
}

// Gedit replays gedit 2.8.3's save path: write the buffer to a scratch
// file, back the original up, rename the scratch over the original (the
// window opens at the rename's commit), then chmod and chown it back.
// The window excludes the file write entirely, so it is tiny and
// independent of file size — why gedit is unattackable on a uniprocessor
// (§4.2) yet falls at 83% on the SMP (§6.1).
type Gedit struct {
	// ChunkSize is the write granularity for the scratch file.
	ChunkSize int64
	// PerChunkCompute is gedit's user-space work per chunk written, at
	// base speed.
	PerChunkCompute time.Duration
	// ChmodChownGap is the work between chmod and chown, at base speed.
	ChmodChownGap time.Duration
}

// NewGedit returns gedit with the default calibration.
func NewGedit() *Gedit {
	return &Gedit{
		ChunkSize:       8 * 1024,
		PerChunkCompute: 25 * time.Microsecond,
		ChmodChownGap:   8 * time.Microsecond,
	}
}

var _ prog.Program = (*Gedit)(nil)

// Name implements prog.Program.
func (g *Gedit) Name() string { return "gedit" }

// Run implements prog.Program.
func (g *Gedit) Run(c *userland.Libc, env prog.Env) error {
	scale := env.Machine.ScaleCompute
	st, err := c.Stat(env.Target)
	if err != nil {
		return fmt.Errorf("gedit: stat original: %w", err)
	}
	// Back up the original under the backup name, so the upcoming rename
	// displaces nothing and stays fast — the gedit window must not
	// depend on file size (§4.2).
	if err := c.Rename(env.Target, env.Backup); err != nil {
		return fmt.Errorf("gedit: backup: %w", err)
	}
	// Write the buffer to the scratch file (root-owned, outside the
	// vulnerability window).
	tmp, err := c.Open(env.Temp, fs.OWrite|fs.OCreate|fs.OTrunc, 0o600)
	if err != nil {
		return fmt.Errorf("gedit: scratch create: %w", err)
	}
	prep := func(n int64) time.Duration {
		return scale(time.Duration(float64(g.PerChunkCompute) * float64(n) / float64(g.ChunkSize)))
	}
	if _, err := c.WriteChunks(tmp, env.FileSize, g.ChunkSize, prep); err != nil {
		return fmt.Errorf("gedit: scratch write: %w", err)
	}
	if err := c.Close(tmp); err != nil {
		return fmt.Errorf("gedit: scratch close: %w", err)
	}
	// The <rename, chown> window: rename commits the root-owned scratch
	// file under the original name...
	if err := c.Rename(env.Temp, env.Target); err != nil {
		return fmt.Errorf("gedit: rename: %w", err)
	}
	// ...the machine-specific computation gap the paper measured...
	c.Compute(env.Machine.GeditRenameChmodGap)
	// ...then mode and ownership restoration.
	if err := c.Chmod(env.Target, st.Mode); err != nil {
		// gedit ignores the failure; the attacker may have unlinked the
		// name between rename and chmod.
		_ = err
	}
	c.Compute(scale(g.ChmodChownGap))
	if err := c.Chown(env.Target, st.UID, st.GID); err != nil {
		_ = err
	}
	return nil
}

// Mailer replays the paper's §1 motivating example: a sendmail-style
// delivery agent running as root that checks the mailbox is not a
// symbolic link (lstat) and then appends the message (open+write) — the
// classic <lstat, open> TOCTTOU pair. The window is only the user-space
// gap between check and use, so on a uniprocessor the attack is hopeless;
// on a multiprocessor a flip-flopping attacker lands inside it.
type Mailer struct {
	// MessageSize is the appended message length.
	MessageSize int64
	// PreDeliveryCompute is queue processing before the check, at base
	// speed.
	PreDeliveryCompute time.Duration
	// CheckUseGap is the user-space computation between lstat returning
	// and open being issued, at base speed.
	CheckUseGap time.Duration
}

// NewMailer returns the sendmail-style victim with default calibration.
func NewMailer() *Mailer {
	return &Mailer{
		MessageSize:        512,
		PreDeliveryCompute: 150 * time.Microsecond,
		CheckUseGap:        8 * time.Microsecond,
	}
}

var _ prog.Program = (*Mailer)(nil)

// Name implements prog.Program.
func (m *Mailer) Name() string { return "mailer" }

// ErrDeliveryRefused reports that the symlink check caught the attack in
// flagrante — the delivery was aborted, the attack failed safely.
var ErrDeliveryRefused = fmt.Errorf("mailer: mailbox is a symlink, delivery refused")

// Run implements prog.Program. The mailbox is env.Target.
func (m *Mailer) Run(c *userland.Libc, env prog.Env) error {
	scale := env.Machine.ScaleCompute
	c.Compute(scale(m.PreDeliveryCompute))
	// The check: refuse to deliver into a symbolic link.
	info, err := c.Lstat(env.Target)
	if err != nil {
		return fmt.Errorf("mailer: mailbox stat: %w", err)
	}
	if info.Type == fs.TypeSymlink {
		return ErrDeliveryRefused
	}
	// The window: check done, use not yet issued.
	c.Compute(scale(m.CheckUseGap))
	// The use: open follows symlinks — if the attacker swapped the
	// mailbox in the window, this appends to /etc/passwd.
	f, err := c.Open(env.Target, fs.OWrite|fs.OAppend, 0)
	if err != nil {
		return fmt.Errorf("mailer: mailbox open: %w", err)
	}
	if err := c.Write(f, m.MessageSize); err != nil {
		return fmt.Errorf("mailer: append: %w", err)
	}
	if err := c.Close(f); err != nil {
		return fmt.Errorf("mailer: close: %w", err)
	}
	return nil
}

// AlwaysSuspended is an rpm-like victim whose window contains a
// guaranteed storage wait (fsync). Per §3.2, with P(victim suspended) = 1
// an attacker can reach ~100% success even on a uniprocessor — the
// model-validation counterpoint to gedit's near-zero.
type AlwaysSuspended struct {
	// ChunkSize is the write granularity.
	ChunkSize int64
}

// NewAlwaysSuspended returns the rpm-like victim.
func NewAlwaysSuspended() *AlwaysSuspended {
	return &AlwaysSuspended{ChunkSize: 8 * 1024}
}

var _ prog.Program = (*AlwaysSuspended)(nil)

// Name implements prog.Program.
func (r *AlwaysSuspended) Name() string { return "rpm-like" }

// Run implements prog.Program.
func (r *AlwaysSuspended) Run(c *userland.Libc, env prog.Env) error {
	st, err := c.Stat(env.Target)
	if err != nil {
		return fmt.Errorf("rpm-like: stat: %w", err)
	}
	if err := c.Rename(env.Target, env.Backup); err != nil {
		return fmt.Errorf("rpm-like: backup rename: %w", err)
	}
	f, err := c.Open(env.Target, fs.OWrite|fs.OCreate|fs.OTrunc, 0o644)
	if err != nil {
		return fmt.Errorf("rpm-like: create: %w", err)
	}
	if _, err := c.WriteChunks(f, env.FileSize, r.ChunkSize, nil); err != nil {
		return fmt.Errorf("rpm-like: write: %w", err)
	}
	// The guaranteed suspension inside the window.
	if err := c.Fsync(f); err != nil {
		return fmt.Errorf("rpm-like: fsync: %w", err)
	}
	if err := c.Close(f); err != nil {
		return fmt.Errorf("rpm-like: close: %w", err)
	}
	if err := c.Chown(env.Target, st.UID, st.GID); err != nil {
		return fmt.Errorf("rpm-like: chown: %w", err)
	}
	return nil
}
