package victim

import (
	"testing"
	"time"

	"tocttou/internal/fs"
	"tocttou/internal/machine"
	"tocttou/internal/prog"
	"tocttou/internal/sim"
	"tocttou/internal/trace"
	"tocttou/internal/userland"
)

// runVictim executes a victim program alone (no attacker) and returns the
// trace plus the final FS.
func runVictim(t *testing.T, v prog.Program, m machine.Profile, size int64) (*trace.Log, *fs.FS, int32) {
	t.Helper()
	tr := &sim.SliceTracer{}
	k := sim.New(m.SimConfig(1, tr))
	f := fs.New(fs.Config{Latency: m.Latency})
	f.MustMkdirAll("/etc", 0o755, 0, 0)
	f.MustWriteFile("/etc/passwd", 2048, 0o644, 0, 0)
	f.MustMkdirAll("/home/alice", 0o755, 1000, 1000)
	f.MustWriteFile("/home/alice/report.txt", size, 0o644, 1000, 1000)
	env := prog.Env{
		Target:   "/home/alice/report.txt",
		Backup:   "/home/alice/report.txt~",
		Temp:     "/home/alice/.tmp-save",
		Passwd:   "/etc/passwd",
		Dummy:    "/home/alice/dummy",
		FileSize: size,
		OwnerUID: 1000, OwnerGID: 1000,
		Machine: m,
	}
	p := k.NewProcess(v.Name(), 0, 0)
	img := userland.NewImage(m.TrapCost, true)
	var runErr error
	k.Spawn(p, "victim", func(task *sim.Task) {
		runErr = v.Run(userland.Bind(task, f, img), env)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if runErr != nil {
		t.Fatalf("victim run: %v", runErr)
	}
	return trace.New(tr.Events), f, int32(p.PID)
}

func TestViSaveRestoresOwnershipUnattacked(t *testing.T) {
	_, f, _ := runVictim(t, NewVi(), machine.SMP2(), 16<<10)
	info, err := f.LookupInfo("/home/alice/report.txt")
	if err != nil {
		t.Fatal(err)
	}
	if info.UID != 1000 || info.GID != 1000 {
		t.Errorf("owner = %d:%d, want 1000:1000 (chown must restore)", info.UID, info.GID)
	}
	if info.Size != 16<<10 {
		t.Errorf("size = %d, want %d", info.Size, 16<<10)
	}
	// The backup must exist with the original inode's content.
	if _, err := f.LookupInfo("/home/alice/report.txt~"); err != nil {
		t.Errorf("backup missing: %v", err)
	}
}

func TestViSyscallSequence(t *testing.T) {
	log, _, pid := runVictim(t, NewVi(), machine.SMP2(), 8<<10)
	var names []string
	for _, e := range log.Events {
		if e.Kind == sim.EvSyscallEnter && e.PID == pid {
			names = append(names, e.Label)
		}
	}
	want := []string{"stat", "rename", "open", "write", "close", "chown"}
	wi := 0
	for _, n := range names {
		if wi < len(want) && n == want[wi] {
			wi++
		}
	}
	if wi != len(want) {
		t.Errorf("syscalls %v do not contain the Fig.1 sequence %v", names, want)
	}
}

func TestViWindowScalesWithFileSize(t *testing.T) {
	m := machine.SMP2()
	winOf := func(size int64) time.Duration {
		log, _, pid := runVictim(t, NewVi(), m, size)
		w, ok := log.WindowDuration(pid, "/home/alice/report.txt", "chown")
		if !ok {
			t.Fatal("window not found")
		}
		return w
	}
	small := winOf(100 << 10)
	large := winOf(1000 << 10)
	ratio := float64(large) / float64(small)
	if ratio < 8 || ratio > 12 {
		t.Errorf("window ratio 1MB/100KB = %.1f, want ≈10 (linear in size)", ratio)
	}
	// ≈16.5µs per KB on the SMP (Fig. 7 calibration).
	perKB := large.Seconds() * 1e6 / 1000
	if perKB < 14 || perKB > 19 {
		t.Errorf("window per KB = %.1fµs, want ≈16.5", perKB)
	}
}

func TestViOneByteWindow(t *testing.T) {
	// Table 1 regime: t3 - t1 ≈ L + D ≈ 103µs on the SMP.
	log, _, pid := runVictim(t, NewVi(), machine.SMP2(), 1)
	w, ok := log.WindowDuration(pid, "/home/alice/report.txt", "chown")
	if !ok {
		t.Fatal("window not found")
	}
	us := w.Seconds() * 1e6
	if us < 85 || us > 125 {
		t.Errorf("1-byte window = %.1fµs, want ≈103µs", us)
	}
}

func TestGeditSaveRestoresOwnershipUnattacked(t *testing.T) {
	_, f, _ := runVictim(t, NewGedit(), machine.SMP2(), 4<<10)
	info, err := f.LookupInfo("/home/alice/report.txt")
	if err != nil {
		t.Fatal(err)
	}
	if info.UID != 1000 {
		t.Errorf("owner = %d, want 1000", info.UID)
	}
	if _, err := f.LookupInfo("/home/alice/report.txt~"); err != nil {
		t.Errorf("backup copy missing: %v", err)
	}
	// The scratch file must be gone (renamed over the target).
	if _, err := f.LookupInfo("/home/alice/.tmp-save"); err == nil {
		t.Error("scratch file should have been renamed away")
	}
}

func TestGeditWindowIndependentOfFileSize(t *testing.T) {
	// §4.2: the gedit window excludes the file write.
	m := machine.SMP2()
	winOf := func(size int64) time.Duration {
		log, _, pid := runVictim(t, NewGedit(), m, size)
		w, ok := log.WindowDuration(pid, "/home/alice/report.txt", "chmod")
		if !ok {
			t.Fatal("window not found")
		}
		return w
	}
	small := winOf(2 << 10)
	large := winOf(500 << 10)
	ratio := float64(large) / float64(small)
	if ratio > 1.5 {
		t.Errorf("gedit window grew %.2fx with file size; must be ~flat", ratio)
	}
}

func TestGeditWindowTracksMachineGap(t *testing.T) {
	// The rename→chmod gap dominates the window: 43µs SMP vs 3µs MC.
	winOn := func(m machine.Profile) time.Duration {
		log, _, pid := runVictim(t, NewGedit(), m, 2<<10)
		w, ok := log.WindowDuration(pid, "/home/alice/report.txt", "chmod")
		if !ok {
			t.Fatal("window not found")
		}
		return w
	}
	smp := winOn(machine.SMP2())
	mc := winOn(machine.MultiCore())
	if smp < 45*time.Microsecond || smp > 70*time.Microsecond {
		t.Errorf("SMP window = %v, want ≈43µs gap + rename tail", smp)
	}
	if mc > 15*time.Microsecond {
		t.Errorf("multi-core window = %v, want ≈3µs gap + rename tail", mc)
	}
}

func TestAlwaysSuspendedBlocksInWindow(t *testing.T) {
	log, f, pid := runVictim(t, NewAlwaysSuspended(), machine.Uniprocessor(), 64<<10)
	t1, ok := log.FirstBind("/home/alice/report.txt", 0)
	if !ok {
		t.Fatal("window never opened")
	}
	t3, ok := log.FirstSyscallEnter(pid, "chown", "", t1)
	if !ok {
		t.Fatal("no chown")
	}
	sawIO := false
	for _, e := range log.Events {
		if e.Kind == sim.EvIOBlock && e.T >= t1 && e.T <= t3 {
			sawIO = true
		}
	}
	if !sawIO {
		t.Error("rpm-like victim must block on I/O inside its window")
	}
	info, _ := f.LookupInfo("/home/alice/report.txt")
	if info.UID != 1000 {
		t.Errorf("owner = %d, want 1000", info.UID)
	}
}

func TestVictimNames(t *testing.T) {
	for _, c := range []struct {
		p    prog.Program
		want string
	}{
		{NewVi(), "vi"},
		{NewGedit(), "gedit"},
		{NewAlwaysSuspended(), "rpm-like"},
	} {
		if got := c.p.Name(); got != c.want {
			t.Errorf("name = %q, want %q", got, c.want)
		}
	}
}
