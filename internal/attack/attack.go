// Package attack implements the paper's attacker programs: the naive
// detection loop of Figures 2 and 4 (V1), the pre-faulted variant of
// Figure 9 (V2) that removes the page-fault trap from the critical path,
// and the two-thread pipelined attacker of §7 that overlaps the symlink
// with unlink's truncation phase.
package attack

import (
	"errors"
	"time"

	"tocttou/internal/fs"
	"tocttou/internal/prog"
	"tocttou/internal/sim"
	"tocttou/internal/userland"
)

// V1 is the attack program of the paper's Figures 2 and 4: spin on
// stat(target) until the file is root-owned, then unlink it and plant a
// symlink to /etc/passwd. Its true branch executes for the first time
// inside the vulnerability window, so the first unlink call takes a
// page-fault trap — fatal on the multi-core's 3 µs window (§6.2.1).
type V1 struct {
	// DetectCompute is the user-space work per loop iteration between
	// stat returning and the next call, at base (3.2 GHz) speed. The
	// paper measures ~11 µs of it on the multi-core (Fig. 8).
	DetectCompute time.Duration
	// Robust is the attack step's reaction to transient syscall failures
	// (injected EINTR/EIO/ENOSPC/EMFILE; see internal/fault). The zero
	// value aborts the attack on the first failed unlink/symlink — the
	// historical behavior. The detection loop needs no policy: a failed
	// stat is simply "window not open yet".
	Robust prog.Robustness
}

// NewV1 returns the naive attacker with default calibration.
func NewV1() *V1 { return &V1{DetectCompute: 12 * time.Microsecond} }

var _ prog.Program = (*V1)(nil)

// Name implements prog.Program.
func (a *V1) Name() string { return "attack-v1" }

// Run implements prog.Program.
func (a *V1) Run(c *userland.Libc, env prog.Env) error {
	detect := env.Machine.ScaleCompute(a.DetectCompute)
	for !c.Task().Killed() {
		info, err := c.Stat(env.Target)
		c.Compute(detect)
		if err == nil && info.UID == 0 && info.GID == 0 {
			// The window is open: redirect the name. The first unlink
			// call faults in the cold libc stub page right here.
			if err := a.Robust.Retry(c, func() error { return c.Unlink(env.Target) }); err != nil {
				return errAttackStep("unlink", err)
			}
			if err := a.Robust.Retry(c, func() error { return c.Symlink(env.Passwd, env.Target) }); err != nil {
				return errAttackStep("symlink", err)
			}
			return nil
		}
	}
	return nil
}

// V2 is the paper's Figure 9 program: it calls unlink and symlink on a
// dummy file in every iteration, keeping the shared stub page resident
// and the branch path hot; when the window opens it only has to switch in
// the real file name.
type V2 struct {
	// DetectCompute is the per-iteration user-space work between stat
	// and unlink, at base speed — 2 µs in the paper's Fig. 10.
	DetectCompute time.Duration
}

// NewV2 returns the pre-faulted attacker with default calibration.
func NewV2() *V2 { return &V2{DetectCompute: 2 * time.Microsecond} }

var _ prog.Program = (*V2)(nil)

// Name implements prog.Program.
func (a *V2) Name() string { return "attack-v2" }

// Run implements prog.Program.
func (a *V2) Run(c *userland.Libc, env prog.Env) error {
	detect := env.Machine.ScaleCompute(a.DetectCompute)
	for !c.Task().Killed() {
		info, err := c.Stat(env.Target)
		c.Compute(detect)
		fname := env.Dummy
		detected := err == nil && info.UID == 0 && info.GID == 0
		if detected {
			fname = env.Target
		}
		// unlink+symlink execute every iteration (Fig. 9 lines 11-12);
		// on misses they churn the dummy name.
		uerr := c.Unlink(fname)
		serr := c.Symlink(env.Passwd, fname)
		if detected {
			if uerr != nil {
				return errAttackStep("unlink", uerr)
			}
			if serr != nil {
				return errAttackStep("symlink", serr)
			}
			return nil
		}
	}
	return nil
}

// Pipelined is the §7 attacker: thread one runs the detection loop and
// the unlink; thread two, signaled at detection time, plants the symlink.
// Because the simulated unlink releases the directory lock after its
// detach phase, the symlink completes while the unlink is still
// truncating — the overlap of the paper's Figure 11.
type Pipelined struct {
	// DetectCompute is as in V2.
	DetectCompute time.Duration
	// SignalCost is the user-space cost of signaling the second thread.
	SignalCost time.Duration
}

// NewPipelined returns the two-thread attacker with default calibration.
func NewPipelined() *Pipelined {
	return &Pipelined{
		DetectCompute: 2 * time.Microsecond,
		SignalCost:    500 * time.Nanosecond,
	}
}

var _ prog.Program = (*Pipelined)(nil)

// Name implements prog.Program.
func (a *Pipelined) Name() string { return "attack-pipelined" }

// Run implements prog.Program.
func (a *Pipelined) Run(c *userland.Libc, env prog.Env) error {
	detect := env.Machine.ScaleCompute(a.DetectCompute)
	detected := sim.NewFlag("pipeline-detected")
	planted := sim.NewFlag("pipeline-planted")
	var symErr error

	c.Task().Spawn("symlinker", func(t2 *sim.Task) {
		c2 := userland.Bind(t2, c.FS(), c.Image())
		// Warm the shared stub page and the branch before the window.
		_ = c2.Symlink(env.Passwd, env.Dummy)
		_ = c2.Unlink(env.Dummy)
		detected.Wait(t2)
		// Race the unlink's detach: retry until the name is free. The
		// directory semaphore serializes us right behind the detach.
		for i := 0; i < 100000; i++ {
			err := c2.Symlink(env.Passwd, env.Target)
			if err == nil {
				planted.Set(t2)
				return
			}
			if !errors.Is(err, fs.EEXIST) {
				symErr = errAttackStep("symlink", err)
				planted.Set(t2)
				return
			}
			c2.Compute(200 * time.Nanosecond)
		}
		symErr = errAttackStep("symlink", errors.New("retry budget exhausted"))
		planted.Set(t2)
	})

	for !c.Task().Killed() {
		info, err := c.Stat(env.Target)
		c.Compute(detect)
		if err == nil && info.UID == 0 && info.GID == 0 {
			// Hand the symlink step to the second CPU, then detach.
			c.Compute(env.Machine.ScaleCompute(a.SignalCost))
			detected.Set(c.Task())
			if err := c.Unlink(env.Target); err != nil {
				return errAttackStep("unlink", err)
			}
			planted.Wait(c.Task())
			return symErr
		}
		// Keep the unlink path warm on misses, as V2 does.
		_ = c.Unlink(env.Dummy)
	}
	return nil
}

// FlipFlop attacks check/use pairs it cannot observe, like the
// sendmail-style <lstat, open> pair of the paper's introduction: it
// cannot see the victim's lstat, so it blindly alternates the target
// between a regular file (so the check passes) and a symlink to the
// privileged file (so the use follows it). The attack lands when the
// flip falls inside the victim's check-use gap — which on a uniprocessor
// essentially never happens while the victim runs.
type FlipFlop struct {
	// DwellCompute is how long each state is held before flipping, at
	// base speed.
	DwellCompute time.Duration
}

// NewFlipFlop returns the blind alternating attacker.
func NewFlipFlop() *FlipFlop {
	return &FlipFlop{DwellCompute: time.Microsecond}
}

var _ prog.Program = (*FlipFlop)(nil)

// Name implements prog.Program.
func (a *FlipFlop) Name() string { return "attack-flipflop" }

// Run implements prog.Program.
func (a *FlipFlop) Run(c *userland.Libc, env prog.Env) error {
	dwell := env.Machine.ScaleCompute(a.DwellCompute)
	for !c.Task().Killed() {
		// State 1: the mailbox is a symlink to the privileged file.
		_ = c.Unlink(env.Target)
		_ = c.Symlink(env.Passwd, env.Target)
		c.Compute(dwell)
		// State 2: the mailbox is an ordinary file again.
		_ = c.Unlink(env.Target)
		if f, err := c.Open(env.Target, fs.OWrite|fs.OCreate, 0o644); err == nil {
			_ = c.Close(f)
		}
		c.Compute(dwell)
	}
	return nil
}

// Idle is a no-op attacker for baseline rounds (no attack pressure).
type Idle struct{}

var _ prog.Program = Idle{}

// Name implements prog.Program.
func (Idle) Name() string { return "idle" }

// Run implements prog.Program.
func (Idle) Run(*userland.Libc, prog.Env) error { return nil }

// errAttackStep annotates a failed attack step.
func errAttackStep(step string, err error) error {
	return &StepError{Step: step, Err: err}
}

// StepError reports a failed attack step. A lost race typically surfaces
// as ENOENT/EEXIST here rather than as attack failure detection.
type StepError struct {
	Step string
	Err  error
}

// Error implements error.
func (e *StepError) Error() string { return "attack step " + e.Step + ": " + e.Err.Error() }

// Unwrap supports errors.Is.
func (e *StepError) Unwrap() error { return e.Err }
