package attack

import (
	"errors"
	"testing"
	"time"

	"tocttou/internal/fs"
	"tocttou/internal/machine"
	"tocttou/internal/prog"
	"tocttou/internal/sim"
	"tocttou/internal/userland"
)

// attackHarness runs an attacker against a scripted window: the "victim"
// binds the target root-owned at a chosen time, then chowns it back after
// the window length.
type attackHarness struct {
	k        *sim.Kernel
	f        *fs.FS
	tr       *sim.SliceTracer
	env      prog.Env
	attacker *sim.Process
}

func newHarness(t *testing.T, m machine.Profile) *attackHarness {
	t.Helper()
	tr := &sim.SliceTracer{}
	k := sim.New(m.SimConfig(11, tr))
	f := fs.New(fs.Config{Latency: m.Latency})
	f.MustMkdirAll("/etc", 0o755, 0, 0)
	f.MustWriteFile("/etc/passwd", 2048, 0o644, 0, 0)
	f.MustMkdirAll("/home/alice", 0o755, 1000, 1000)
	f.MustWriteFile("/home/alice/report.txt", 4096, 0o644, 1000, 1000)
	return &attackHarness{
		k: k, f: f, tr: tr,
		env: prog.Env{
			Target: "/home/alice/report.txt", Backup: "/home/alice/report.txt~",
			Temp: "/home/alice/.tmp", Passwd: "/etc/passwd", Dummy: "/home/alice/dummy",
			FileSize: 4096, OwnerUID: 1000, OwnerGID: 1000, Machine: m,
		},
	}
}

// startWindow spawns a root thread that opens a window of the given
// length at the given time by replacing the target with a root-owned file.
func (h *attackHarness) startWindow(at, length time.Duration) {
	root := h.k.NewProcess("victim", 0, 0)
	img := userland.NewImage(h.env.Machine.TrapCost, true)
	h.k.Spawn(root, "victim", func(task *sim.Task) {
		c := userland.Bind(task, h.f, img)
		task.Sleep(at)
		_ = c.Rename(h.env.Target, h.env.Backup)
		fh, err := c.Open(h.env.Target, fs.OWrite|fs.OCreate, 0o644)
		if err != nil {
			return
		}
		_ = c.Write(fh, h.env.FileSize)
		_ = c.Close(fh)
		task.Sleep(length) // hold the window open
		_ = c.Chown(h.env.Target, h.env.OwnerUID, h.env.OwnerGID)
	})
}

// runAttacker executes the attacker and returns its error and the final
// owner of /etc/passwd.
func (h *attackHarness) runAttacker(t *testing.T, a prog.Program) (error, int) {
	t.Helper()
	h.attacker = h.k.NewProcess(a.Name(), 1000, 1000)
	img := userland.NewImage(h.env.Machine.TrapCost, false)
	var attErr error
	h.k.Spawn(h.attacker, "attacker", func(task *sim.Task) {
		attErr = a.Run(userland.Bind(task, h.f, img), h.env)
	})
	victimProcs := h.k
	_ = victimProcs
	h.k.OnProcessExit(func(p *sim.Process) {
		if p.UID == 0 {
			h.k.KillProcess(h.attacker)
		}
	})
	if err := h.k.Run(); err != nil {
		t.Fatalf("kernel: %v", err)
	}
	info, err := h.f.LookupInfo("/etc/passwd")
	if err != nil {
		t.Fatalf("passwd vanished: %v", err)
	}
	return attErr, info.UID
}

func TestV1CapturesWideWindow(t *testing.T) {
	h := newHarness(t, machine.SMP2())
	h.startWindow(500*time.Microsecond, 5*time.Millisecond)
	err, uid := h.runAttacker(t, NewV1())
	if err != nil {
		t.Fatalf("attack error: %v", err)
	}
	if uid != 1000 {
		t.Errorf("passwd uid = %d, want 1000 (attack must win a 5ms window)", uid)
	}
}

func TestV1GivesUpWhenKilled(t *testing.T) {
	// No window ever opens; the victim exits and the attacker is killed.
	h := newHarness(t, machine.SMP2())
	root := h.k.NewProcess("victim", 0, 0)
	h.k.Spawn(root, "victim", func(task *sim.Task) {
		task.Compute(2 * time.Millisecond) // no save at all
	})
	err, uid := h.runAttacker(t, NewV1())
	if err != nil {
		t.Fatalf("attack error: %v", err)
	}
	if uid != 0 {
		t.Errorf("passwd uid = %d, want 0 (no window, no attack)", uid)
	}
}

func TestV1TrapsOnFirstUnlink(t *testing.T) {
	h := newHarness(t, machine.MultiCore())
	h.startWindow(200*time.Microsecond, 5*time.Millisecond)
	if err, _ := h.runAttacker(t, NewV1()); err != nil {
		t.Fatal(err)
	}
	traps := 0
	for _, e := range h.tr.Events {
		if e.Kind == sim.EvTrap && e.PID == int32(h.attacker.PID) {
			traps++
		}
	}
	// stat page early, unlink/symlink page inside the window.
	if traps != 2 {
		t.Errorf("attacker traps = %d, want 2", traps)
	}
}

func TestV2PreFaultsBeforeWindow(t *testing.T) {
	h := newHarness(t, machine.MultiCore())
	h.startWindow(300*time.Microsecond, 5*time.Millisecond)
	if err, uid := h.runAttacker(t, NewV2()); err != nil || uid != 1000 {
		t.Fatalf("attack err=%v uid=%d", err, uid)
	}
	// All traps must precede the window opening: the detection-time
	// unlink must be trap-free (that is v2's whole point).
	var bindAt sim.Time
	for _, e := range h.tr.Events {
		if e.Kind == sim.EvNameBind && e.Path == h.env.Target && e.Arg == 0 {
			bindAt = e.T
			break
		}
	}
	if bindAt == 0 {
		t.Fatal("window never opened")
	}
	for _, e := range h.tr.Events {
		if e.Kind == sim.EvTrap && e.PID == int32(h.attacker.PID) && e.T >= bindAt {
			t.Errorf("v2 trapped inside the window at %v", e.T)
		}
	}
}

func TestV2ChurnsDummyOnMisses(t *testing.T) {
	h := newHarness(t, machine.MultiCore())
	h.startWindow(400*time.Microsecond, 5*time.Millisecond)
	if err, _ := h.runAttacker(t, NewV2()); err != nil {
		t.Fatal(err)
	}
	dummyOps := 0
	for _, e := range h.tr.Events {
		if e.Kind == sim.EvSyscallEnter && e.Path == h.env.Dummy &&
			(e.Label == "unlink" || e.Label == "symlink") {
			dummyOps++
		}
	}
	if dummyOps < 4 {
		t.Errorf("dummy churn ops = %d, want several (Fig. 9 lines 11-12)", dummyOps)
	}
}

func TestPipelinedOverlapsSymlinkWithTruncate(t *testing.T) {
	h := newHarness(t, machine.MultiCore())
	// Make the unlinked file big so truncation dominates.
	h.f.MustWriteFile(h.env.Target, 500<<10, 0o644, 1000, 1000)
	h.env.FileSize = 500 << 10
	h.startWindow(300*time.Microsecond, 5*time.Millisecond)
	err, uid := h.runAttacker(t, NewPipelined())
	if err != nil {
		t.Fatalf("attack error: %v", err)
	}
	if uid != 1000 {
		t.Fatalf("attack failed, passwd uid = %d", uid)
	}
	// The successful symlink must complete before the unlink returns.
	var unlinkExit, symlinkOK sim.Time
	for _, e := range h.tr.Events {
		if e.PID != int32(h.attacker.PID) || e.Path != h.env.Target {
			continue
		}
		if e.Kind == sim.EvSyscallExit && e.Label == "unlink" && unlinkExit == 0 {
			unlinkExit = e.T
		}
		if e.Kind == sim.EvSyscallExit && e.Label == "symlink" && e.Arg == 0 && symlinkOK == 0 {
			symlinkOK = e.T
		}
	}
	if unlinkExit == 0 || symlinkOK == 0 {
		t.Fatal("missing unlink/symlink spans")
	}
	if symlinkOK >= unlinkExit {
		t.Errorf("symlink (%v) must finish before unlink returns (%v) — §7 overlap", symlinkOK, unlinkExit)
	}
}

func TestStepErrorUnwraps(t *testing.T) {
	e := errAttackStep("unlink", fs.ENOENT)
	if !errors.Is(e, fs.ENOENT) {
		t.Error("StepError must unwrap to the underlying errno")
	}
	var se *StepError
	if !errors.As(e, &se) || se.Step != "unlink" {
		t.Errorf("StepError = %+v", se)
	}
}

func TestAttackerNames(t *testing.T) {
	for _, c := range []struct {
		p    prog.Program
		want string
	}{
		{NewV1(), "attack-v1"},
		{NewV2(), "attack-v2"},
		{NewPipelined(), "attack-pipelined"},
		{Idle{}, "idle"},
	} {
		if got := c.p.Name(); got != c.want {
			t.Errorf("name = %q, want %q", got, c.want)
		}
	}
}

func TestIdleAttackerDoesNothing(t *testing.T) {
	h := newHarness(t, machine.SMP2())
	h.startWindow(100*time.Microsecond, time.Millisecond)
	err, uid := h.runAttacker(t, Idle{})
	if err != nil || uid != 0 {
		t.Errorf("idle attacker: err=%v uid=%d, want nil/0", err, uid)
	}
}
