package attack

import (
	"testing"
	"time"

	"tocttou/internal/fs"
	"tocttou/internal/machine"
	"tocttou/internal/sim"
	"tocttou/internal/userland"
)

func TestFlipFlopAlternatesStates(t *testing.T) {
	h := newHarness(t, machine.SMP2())
	// No victim window needed — watch the attacker churn until killed.
	root := h.k.NewProcess("victim", 0, 0)
	h.k.Spawn(root, "victim", func(task *sim.Task) {
		task.Compute(2 * time.Millisecond)
	})
	if err, _ := h.runAttacker(t, NewFlipFlop()); err != nil {
		t.Fatalf("attack error: %v", err)
	}
	symlinks, files := 0, 0
	for _, e := range h.tr.Events {
		if e.Kind != sim.EvNameBind || e.Path != h.env.Target {
			continue
		}
		symlinks++ // every bind by the attacker alternates the state
		_ = files
	}
	if symlinks < 10 {
		t.Errorf("state flips = %d, want many over 2ms", symlinks)
	}
	// The final state must be one of the two attacker states (regular
	// file or symlink), owned by the attacker.
	info, err := h.f.LookupLinkInfo(h.env.Target)
	if err != nil {
		// Killed mid-flip with the name unbound is also legitimate.
		return
	}
	if info.UID != 1000 {
		t.Errorf("target uid = %d, want the attacker's", info.UID)
	}
}

func TestFlipFlopNeverEscalatesWithoutVictim(t *testing.T) {
	h := newHarness(t, machine.MultiCore())
	root := h.k.NewProcess("victim", 0, 0)
	h.k.Spawn(root, "victim", func(task *sim.Task) {
		task.Compute(time.Millisecond)
	})
	_, uid := h.runAttacker(t, NewFlipFlop())
	if uid != 0 {
		t.Errorf("passwd uid = %d; flip-flopping alone must not escalate", uid)
	}
	pw, err := h.f.LookupInfo("/etc/passwd")
	if err != nil || pw.Size != 2048 {
		t.Errorf("passwd size = %d, err=%v; must be untouched", pw.Size, err)
	}
}

func TestFlipFlopRespectsStickyTmp(t *testing.T) {
	// A flip-flopper in a sticky directory cannot touch files it does
	// not own — the fs permission model bounds the attack surface.
	m := machine.SMP2()
	k := sim.New(m.SimConfig(5, nil))
	f := fs.New(fs.Config{Latency: m.Latency})
	f.MustMkdirAll("/tmp", 0o777|fs.ModeSticky, 0, 0)
	f.MustWriteFile("/tmp/rootfile", 64, 0o644, 0, 0)
	p := k.NewProcess("attacker", 1000, 1000)
	var unlinkErr error
	k.Spawn(p, "try", func(task *sim.Task) {
		c := userland.Bind(task, f, userland.NewImage(m.TrapCost, false))
		unlinkErr = c.Unlink("/tmp/rootfile")
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if unlinkErr == nil {
		t.Error("unlink of another user's file in sticky /tmp must fail")
	}
}
