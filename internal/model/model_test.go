package model

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"tocttou/internal/stats"
)

func TestLDRateRegions(t *testing.T) {
	cases := []struct {
		name string
		l, d float64
		want float64
	}{
		{"negative laxity", -5, 10, 0},
		{"zero laxity", 0, 10, 0},
		{"half", 5, 10, 0.5},
		{"paper table2", 11.6, 32.7, 11.6 / 32.7},
		{"equal", 10, 10, 1},
		{"saturated", 50, 10, 1},
		{"zero D positive L", 5, 0, 1},
		{"zero D negative L", -5, 0, 0},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := LDRate(c.l, c.d); math.Abs(got-c.want) > 1e-12 {
				t.Errorf("LDRate(%v, %v) = %v, want %v", c.l, c.d, got, c.want)
			}
		})
	}
}

func TestLDRatePropertyBounds(t *testing.T) {
	f := func(l, d float64) bool {
		if math.IsNaN(l) || math.IsNaN(d) || math.IsInf(l, 0) || math.IsInf(d, 0) {
			return true
		}
		r := LDRate(l, d)
		return r >= 0 && r <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLDRateMonotonicity(t *testing.T) {
	// Larger L (more vulnerable victim) never lowers the rate; larger D
	// (slower attacker) never raises it.
	f := func(l1, l2, d uint16) bool {
		lo, hi := float64(l1), float64(l2)
		if lo > hi {
			lo, hi = hi, lo
		}
		dd := float64(d%1000) + 1
		if LDRate(lo, dd) > LDRate(hi, dd) {
			return false
		}
		return LDRate(hi, dd) >= LDRate(hi, dd+1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLDRateDurations(t *testing.T) {
	if got := LDRateDurations(5*time.Microsecond, 10*time.Microsecond); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("got %v, want 0.5", got)
	}
}

func TestEquation1Validation(t *testing.T) {
	bad := Equation1{PVictimSuspended: 1.5}
	if _, err := bad.SuccessProbability(); !errors.Is(err, ErrProbabilityRange) {
		t.Errorf("err = %v, want ErrProbabilityRange", err)
	}
	bad = Equation1{PScheduledGivenRunning: -0.1}
	if err := bad.Validate(); !errors.Is(err, ErrProbabilityRange) {
		t.Errorf("err = %v, want ErrProbabilityRange", err)
	}
	bad = Equation1{PFinishedGivenSuspended: math.NaN()}
	if err := bad.Validate(); !errors.Is(err, ErrProbabilityRange) {
		t.Errorf("NaN err = %v, want ErrProbabilityRange", err)
	}
}

func TestEquation1Decomposition(t *testing.T) {
	e := Equation1{
		PVictimSuspended:         0.2,
		PScheduledGivenSuspended: 0.9,
		PFinishedGivenSuspended:  1.0,
		PScheduledGivenRunning:   0.95,
		PFinishedGivenRunning:    0.5,
	}
	got, err := e.SuccessProbability()
	if err != nil {
		t.Fatal(err)
	}
	want := 0.2*0.9*1.0 + 0.8*0.95*0.5
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestEquation1UniprocessorSecondTermVanishes(t *testing.T) {
	// §3.2: on a uniprocessor P(attack scheduled | victim running) = 0,
	// so success is bounded by P(victim suspended).
	e := Uniprocessor(0.18, 1, 1)
	p, err := e.SuccessProbability()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-0.18) > 1e-12 {
		t.Errorf("got %v, want 0.18", p)
	}
	if e.PScheduledGivenRunning != 0 || e.PFinishedGivenRunning != 0 {
		t.Error("uniprocessor second-term probabilities must be zero")
	}
}

func TestEquation1BoundedBySuspensionProperty(t *testing.T) {
	// On a uniprocessor P(success) <= P(victim suspended) (§3.2).
	f := func(a, b, c uint8) bool {
		ps := float64(a) / 255
		psc := float64(b) / 255
		pf := float64(c) / 255
		p, err := Uniprocessor(ps, psc, pf).SuccessProbability()
		return err == nil && p <= ps+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMonteCarloLDConvergesToPointEstimate(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	// With zero variance the Monte Carlo must equal the point formula.
	got := MonteCarloLD(rng, 5, 0, 10, 0, 1000)
	if math.Abs(got-0.5) > 1e-12 {
		t.Errorf("zero-variance MC = %v, want 0.5", got)
	}
}

func TestMonteCarloLDCapturesVarianceEffect(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	// L slightly above D: point estimate says 100%, but variance makes
	// "whether L > D all the time questionable" (§5), so MC < 1.
	point := LDRate(61.6, 41.1)
	mc := MonteCarloLD(rng, 61.6, 11, 41.1, 5, 50000)
	if point != 1 {
		t.Fatalf("point = %v, want 1", point)
	}
	if mc >= 1 || mc < 0.85 {
		t.Errorf("MC = %v, want in [0.85, 1) for near-threshold L/D", mc)
	}
}

func TestMultiprocessorSuccess(t *testing.T) {
	var l, d stats.Summary
	for _, x := range []float64{60, 61, 62, 63} {
		l.Add(x)
	}
	for _, x := range []float64{40, 41, 42, 43} {
		d.Add(x)
	}
	p := MultiprocessorSuccess(l, d, 7)
	if p <= 0.8 || p > 1 {
		t.Errorf("p = %v, want high (L comfortably above D)", p)
	}
	if MultiprocessorSuccess(stats.Summary{}, d, 7) != 0 {
		t.Error("empty L summary should predict 0")
	}
}

func TestUniprocessorSuspension(t *testing.T) {
	// Window 16ms, quantum 100ms, no stalls: ~16%.
	p := UniprocessorSuspension(16*time.Millisecond, 100*time.Millisecond, 0)
	if math.Abs(p-0.16) > 1e-9 {
		t.Errorf("p = %v, want 0.16", p)
	}
	// Window longer than quantum saturates.
	if got := UniprocessorSuspension(200*time.Millisecond, 100*time.Millisecond, 0); got != 1 {
		t.Errorf("saturated p = %v, want 1", got)
	}
	// Stalls combine independently.
	p = UniprocessorSuspension(16*time.Millisecond, 100*time.Millisecond, 0.5)
	want := 1 - (1-0.16)*(1-0.5)
	if math.Abs(p-want) > 1e-9 {
		t.Errorf("p = %v, want %v", p, want)
	}
	// Degenerate quantum.
	if got := UniprocessorSuspension(time.Millisecond, 0, 0.3); math.Abs(got-0.3) > 1e-9 {
		t.Errorf("no-quantum p = %v, want 0.3", got)
	}
}

func TestStallProbability(t *testing.T) {
	if StallProbability(0, 0.1) != 0 {
		t.Error("zero bytes should give 0")
	}
	if StallProbability(1024, 0) != 0 {
		t.Error("zero prob should give 0")
	}
	one := StallProbability(1024, 0.001)
	if math.Abs(one-0.001) > 1e-9 {
		t.Errorf("1KB p = %v, want 0.001", one)
	}
	many := StallProbability(1<<20, 0.001)
	want := 1 - math.Pow(0.999, 1024)
	if math.Abs(many-want) > 1e-9 {
		t.Errorf("1MB p = %v, want %v", many, want)
	}
	if StallProbability(1<<40, 0.5) > 1 {
		t.Error("probability must be clamped to 1")
	}
}

func TestLinearFit(t *testing.T) {
	xs := []float64{100, 200, 300, 400}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 50 + 16.5*x
	}
	intercept, slope, ok := LinearFit(xs, ys)
	if !ok {
		t.Fatal("fit failed")
	}
	if math.Abs(slope-16.5) > 1e-9 || math.Abs(intercept-50) > 1e-6 {
		t.Errorf("fit = (%v, %v), want (50, 16.5)", intercept, slope)
	}
	if _, _, ok := LinearFit([]float64{1}, []float64{2}); ok {
		t.Error("fit on one point should fail")
	}
	if _, _, ok := LinearFit([]float64{3, 3}, []float64{1, 2}); ok {
		t.Error("fit on constant x should fail")
	}
}

func TestCorrelation(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	r, ok := Correlation(xs, ys)
	if !ok || math.Abs(r-1) > 1e-12 {
		t.Errorf("perfect correlation = %v, %v", r, ok)
	}
	neg := []float64{10, 8, 6, 4, 2}
	r, _ = Correlation(xs, neg)
	if math.Abs(r+1) > 1e-12 {
		t.Errorf("perfect anticorrelation = %v", r)
	}
	if _, ok := Correlation([]float64{1, 1}, []float64{2, 3}); ok {
		t.Error("constant xs should fail")
	}
}
