// Package model implements the paper's probabilistic model for TOCTTOU
// attack success (§3): Equation 1's total-probability decomposition over
// victim suspension, and formula (1)'s L/D laxity rate for the
// multiprocessor case, plus noise-aware refinements and the uniprocessor
// suspension estimator used to predict Figure 6.
package model

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"time"

	"tocttou/internal/stats"
)

// Equation1 carries the five conditional probabilities of the paper's
// Equation 1:
//
//	P(success) = P(susp)·P(sched|susp)·P(fin|susp)
//	           + P(¬susp)·P(sched|¬susp)·P(fin|¬susp)
//
// All events are implicitly "within the victim's vulnerability window".
type Equation1 struct {
	// PVictimSuspended is the probability the victim is suspended inside
	// its vulnerability window.
	PVictimSuspended float64
	// PScheduledGivenSuspended is the probability the attacker gets a CPU
	// while the victim is suspended.
	PScheduledGivenSuspended float64
	// PFinishedGivenSuspended is the probability the attack completes
	// within the window when the victim is suspended.
	PFinishedGivenSuspended float64
	// PScheduledGivenRunning is the probability the attacker gets a CPU
	// while the victim runs. On a uniprocessor this is identically zero —
	// the paper's central observation (§3.2).
	PScheduledGivenRunning float64
	// PFinishedGivenRunning is the probability the attack completes in
	// time while racing the running victim — formula (1)'s L/D term.
	PFinishedGivenRunning float64
}

// ErrProbabilityRange reports an Equation1 field outside [0, 1].
var ErrProbabilityRange = errors.New("model: probability outside [0, 1]")

// Validate checks all fields lie in [0, 1].
func (e Equation1) Validate() error {
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"PVictimSuspended", e.PVictimSuspended},
		{"PScheduledGivenSuspended", e.PScheduledGivenSuspended},
		{"PFinishedGivenSuspended", e.PFinishedGivenSuspended},
		{"PScheduledGivenRunning", e.PScheduledGivenRunning},
		{"PFinishedGivenRunning", e.PFinishedGivenRunning},
	} {
		if math.IsNaN(p.v) || p.v < 0 || p.v > 1 {
			return fmt.Errorf("%w: %s = %v", ErrProbabilityRange, p.name, p.v)
		}
	}
	return nil
}

// SuccessProbability evaluates Equation 1.
func (e Equation1) SuccessProbability() (float64, error) {
	if err := e.Validate(); err != nil {
		return 0, err
	}
	p := e.PVictimSuspended*e.PScheduledGivenSuspended*e.PFinishedGivenSuspended +
		(1-e.PVictimSuspended)*e.PScheduledGivenRunning*e.PFinishedGivenRunning
	return p, nil
}

// Uniprocessor returns the Equation-1 instance for a uniprocessor: the
// second term vanishes because the attacker can never be scheduled while
// the victim runs (§3.2).
func Uniprocessor(pSuspended, pScheduled, pFinished float64) Equation1 {
	return Equation1{
		PVictimSuspended:         pSuspended,
		PScheduledGivenSuspended: pScheduled,
		PFinishedGivenSuspended:  pFinished,
	}
}

// LDRate implements formula (1): the probability that a detection loop of
// period D starting uniformly inside the window launches the attack before
// the laxity L runs out.
//
//	rate = 0       if L < 0
//	     = L / D   if 0 <= L < D
//	     = 1       if L >= D
func LDRate(l, d float64) float64 {
	switch {
	case d <= 0:
		if l >= 0 {
			return 1
		}
		return 0
	case l < 0:
		return 0
	case l < d:
		return l / d
	default:
		return 1
	}
}

// LDRateDurations is LDRate over time.Durations.
func LDRateDurations(l, d time.Duration) float64 {
	return LDRate(float64(l), float64(d))
}

// MonteCarloLD refines formula (1) when L and D are noisy: it samples both
// from normal distributions (truncated at zero for D) and averages the
// per-sample rate. This captures the paper's §5 observation that "whether
// L > D all the time becomes questionable when they are close enough".
func MonteCarloLD(rng *rand.Rand, lMean, lStdev, dMean, dStdev float64, n int) float64 {
	if n <= 0 {
		n = 10000
	}
	sum := 0.0
	for i := 0; i < n; i++ {
		l := lMean + rng.NormFloat64()*lStdev
		d := dMean + rng.NormFloat64()*dStdev
		if d < 1e-9 {
			d = 1e-9
		}
		sum += LDRate(l, d)
	}
	return sum / float64(n)
}

// MultiprocessorSuccess predicts the multiprocessor attack success rate
// from measured L and D statistics (the paper's Tables 1 and 2 inputs),
// using the Monte-Carlo refinement when variance is available.
func MultiprocessorSuccess(l, d stats.Summary, seed int64) float64 {
	if l.N() == 0 || d.N() == 0 {
		return 0
	}
	if l.Stdev() == 0 && d.Stdev() == 0 {
		return LDRate(l.Mean(), d.Mean())
	}
	rng := rand.New(rand.NewSource(seed))
	return MonteCarloLD(rng, l.Mean(), l.Stdev(), d.Mean(), d.Stdev(), 20000)
}

// UniprocessorSuspension estimates P(victim suspended within the window)
// for a victim whose window has the given length under a round-robin
// scheduler with the given quantum, plus an independent storage-stall
// probability within the window. The window start is assumed uniform in
// the victim's quantum phase, giving P(preempted) ≈ window/quantum.
func UniprocessorSuspension(window, quantum time.Duration, stallProb float64) float64 {
	if quantum <= 0 {
		return clamp01(stallProb)
	}
	pPreempt := float64(window) / float64(quantum)
	if pPreempt > 1 {
		pPreempt = 1
	}
	if pPreempt < 0 {
		pPreempt = 0
	}
	return clamp01(1 - (1-pPreempt)*(1-clamp01(stallProb)))
}

// StallProbability returns the chance of at least one storage stall while
// writing total bytes with the given per-KB stall probability.
func StallProbability(totalBytes int64, probPerKB float64) float64 {
	if totalBytes <= 0 || probPerKB <= 0 {
		return 0
	}
	kb := float64(totalBytes) / 1024.0
	return clamp01(1 - math.Pow(1-clamp01(probPerKB), kb))
}

// LinearFit returns the least-squares line y = intercept + slope·x.
// Used to check Fig. 7's "L grows linearly with file size" claim.
func LinearFit(xs, ys []float64) (intercept, slope float64, ok bool) {
	n := len(xs)
	if n < 2 || len(ys) != n {
		return 0, 0, false
	}
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	den := float64(n)*sxx - sx*sx
	if den == 0 {
		return 0, 0, false
	}
	slope = (float64(n)*sxy - sx*sy) / den
	intercept = (sy - slope*sx) / float64(n)
	return intercept, slope, true
}

// Correlation returns the Pearson correlation coefficient of xs and ys.
func Correlation(xs, ys []float64) (float64, bool) {
	n := len(xs)
	if n < 2 || len(ys) != n {
		return 0, false
	}
	var mx, my float64
	for i := range xs {
		mx += xs[i]
		my += ys[i]
	}
	mx /= float64(n)
	my /= float64(n)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, false
	}
	return sxy / math.Sqrt(sxx*syy), true
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
