package fs

import (
	"testing"
	"time"

	"tocttou/internal/sim"
)

// benchKernel builds a quiet one-CPU machine with generous budgets so the
// measured cost is the file-system code, not scheduler churn.
func benchKernel() *sim.Kernel {
	return sim.New(sim.Config{
		CPUs: 1, Quantum: time.Hour, Seed: 1,
		MaxTime: time.Hour, MaxSteps: 1 << 40,
	})
}

// BenchmarkPathResolution measures a stat through a three-component path —
// the attacker's polling syscall, the hottest fs entry point in every
// campaign. The walk must not allocate: components are substrings split
// into a stack scratch, and lazy inode semaphores mean untouched fixture
// files cost nothing.
func BenchmarkPathResolution(b *testing.B) {
	b.ReportAllocs()
	k := benchKernel()
	f := New(Config{Latency: DefaultProfile()})
	f.MustMkdirAll("/home/alice", 0o755, 1000, 1000)
	f.MustWriteFile("/home/alice/report.txt", 100<<10, 0o644, 1000, 1000)
	p := k.NewProcess("p", 1000, 1000)
	k.Spawn(p, "stat-loop", func(task *sim.Task) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := f.Stat(task, "/home/alice/report.txt"); err != nil {
				b.Error(err)
				return
			}
		}
	})
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkPathResolutionSymlink adds a symlink hop, exercising the
// expansion path (which rebuilds the walk string).
func BenchmarkPathResolutionSymlink(b *testing.B) {
	b.ReportAllocs()
	k := benchKernel()
	f := New(Config{Latency: DefaultProfile()})
	f.MustMkdirAll("/home/alice", 0o755, 1000, 1000)
	f.MustWriteFile("/home/alice/real.txt", 4096, 0o644, 1000, 1000)
	f.MustSymlink("/home/alice/real.txt", "/home/alice/link", 1000, 1000)
	p := k.NewProcess("p", 1000, 1000)
	k.Spawn(p, "stat-loop", func(task *sim.Task) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := f.Stat(task, "/home/alice/link"); err != nil {
				b.Error(err)
				return
			}
		}
	})
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkFixtureBuildReset measures the per-round fixture cost with a
// recycled FS — the campaign steady state, where inode shells, children
// maps, and semaphores all come from the free list.
func BenchmarkFixtureBuildReset(b *testing.B) {
	b.ReportAllocs()
	cfg := Config{Latency: DefaultProfile()}
	f := New(cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Reset(cfg)
		f.MustMkdirAll("/etc", 0o755, 0, 0)
		f.MustWriteFile("/etc/passwd", 2048, 0o644, 0, 0)
		f.MustMkdirAll("/home/alice", 0o755, 1000, 1000)
		f.MustWriteFile("/home/alice/report.txt", 100<<10, 0o644, 1000, 1000)
		f.MustMkdirAll("/tmp", 0o777|ModeSticky, 0, 0)
	}
}
