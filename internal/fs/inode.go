package fs

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"tocttou/internal/sim"
)

// Ino is an inode number.
type Ino int64

// FileType distinguishes the inode kinds the experiments need.
type FileType uint8

const (
	// TypeRegular is an ordinary file.
	TypeRegular FileType = iota + 1
	// TypeDir is a directory.
	TypeDir
	// TypeSymlink is a symbolic link.
	TypeSymlink
)

// String returns a short name for the type.
func (t FileType) String() string {
	switch t {
	case TypeRegular:
		return "file"
	case TypeDir:
		return "dir"
	case TypeSymlink:
		return "symlink"
	default:
		return fmt.Sprintf("type(%d)", uint8(t))
	}
}

// Mode holds Unix permission bits plus the sticky bit (0o1000).
type Mode uint16

// ModeSticky is the sticky bit: in a sticky directory only the file owner
// (or the directory owner, or root) may unlink or rename entries.
const ModeSticky Mode = 0o1000

// Cred is the credential an operation runs under.
type Cred struct {
	UID int
	GID int
}

// Root reports whether the credential is the superuser.
func (c Cred) Root() bool { return c.UID == 0 }

// FileInfo is the result of Stat/Lstat.
type FileInfo struct {
	Ino   Ino
	Type  FileType
	Mode  Mode
	UID   int
	GID   int
	Size  int64
	Nlink int
	// Target is the link target for symlinks.
	Target string
}

// inode is the in-core representation of a file-system object.
type inode struct {
	ino   Ino
	typ   FileType
	mode  Mode
	uid   int
	gid   int
	size  int64
	nlink int
	data  []byte // content when the FS tracks content
	// target is the symlink destination.
	target string
	// children maps names to inodes for directories.
	children map[string]*inode
	// sem is the inode semaphore (i_sem): namespace and attribute
	// modifications of this object serialize on it. It is created lazily
	// by isem() on first acquisition — fixture inodes the round never
	// locks cost no semaphore allocation.
	sem *sim.Sem
	// dcache is the dentry-level lock of a directory: rename's dentry
	// swap holds it, and concurrent lookups of names in the directory
	// stall behind it (the "stat lengthened" effect of the paper's
	// Fig. 10). Plain unlink/create/symlink do NOT hold it across their
	// work — cached lookups do not block on a directory's i_sem. Created
	// lazily by dlock(); a nil dcache means "unowned" to lookups.
	dcache *sim.Sem
	// semNamed / dcacheNamed record which ino the cached locks were last
	// named for, so recycled inodes relabel them lazily (see isem).
	semNamed    Ino
	dcacheNamed Ino
	// openCount is the number of open file descriptions; unlinked files
	// are truncated only when the last one closes.
	openCount int
	// unlinked marks an inode whose last name was removed.
	unlinked bool
	// snap marks an inode captured by the live Image (see snapshot.go):
	// Fork restores it in place and must never return it to the free list.
	snap bool
	// freed guards against double-recycling during Fork's sweep of
	// round-created extras (a hard link can make one reachable twice).
	freed bool
}

// Config parameterizes a simulated file system.
type Config struct {
	// Latency is the operation cost calibration.
	Latency LatencyProfile
	// TrackContent stores file bytes; experiments usually track only
	// sizes to keep memory flat across thousands of rounds.
	TrackContent bool
	// UnsynchronizedLookups disables lookup blocking behind rename's
	// dentry swap. Ablation only: it removes the mechanism that
	// synchronizes the attacker's detection with the opening of the
	// gedit window (DESIGN.md decision 3).
	UnsynchronizedLookups bool
	// Faults, when non-nil, is consulted before every operation and may
	// veto it with an injected errno (EIO/ENOSPC/EMFILE...). Nil — the
	// default — keeps every operation fault-free. See internal/fault.
	Faults FaultHook
}

// FS is a simulated Unix-style file system. A finished FS can be recycled
// for another round with Reset, which returns every inode of the old tree
// (struct, children map, and semaphores) to a free list for reuse.
type FS struct {
	cfg     Config
	root    *inode
	nextIno Ino
	guard   Guard
	// inodeCount tracks live inodes for leak assertions in tests.
	inodeCount int
	// free holds recycled inode shells harvested by Reset.
	free []*inode

	// gen is the namespace/attribute generation: every mutation that can
	// change the outcome of a path resolution (bind, unbind, rename,
	// chmod/chown, symlink retarget) increments it, invalidating resCache
	// entries stamped with older generations.
	gen uint64
	// dcacheBusy counts dentry-cache locks currently held (rename's swap
	// phase). While nonzero, cached resolutions are bypassed so lookups
	// take the full walk and stall behind the lock exactly as before.
	dcacheBusy int
	// resCache memoizes whole-path resolutions (see resolve.go). It is
	// invisible to simulated behavior: a hit charges the identical lookup
	// cost the walk would have accumulated. A small direct-mapped array
	// beats a map here: the simulated programs resolve the same handful of
	// fixture paths (stable string objects from prog.Env) over and over.
	resCache [resCacheSlots]resEntry
	// resClock is the round-robin eviction cursor for resCache.
	resClock uint8

	// fileArena recycles open file descriptions across rounds: Reset and
	// Fork rewind fileIdx, and openLocked/openExisting overwrite slots in
	// order. A File stays valid until the FS is reset, never shorter than
	// the round that opened it, so recycling is invisible to programs.
	fileArena []*File
	fileIdx   int
}

// New creates an empty file system with a root directory owned by root.
func New(cfg Config) *FS {
	f := &FS{cfg: cfg}
	f.root = f.newInode(TypeDir, 0o755, 0, 0)
	f.root.nlink = 2
	return f
}

// Reset returns the file system to the empty state New(cfg) would produce,
// recycling the previous tree's inodes. It must not be called while a
// simulation that references this FS is running. A Reset file system
// behaves identically to a fresh one: inode numbering restarts at 1, so a
// deterministic fixture build assigns every file the same ino (and the
// same trace labels) it would get from a brand-new FS.
func (f *FS) Reset(cfg Config) {
	f.harvest(f.root)
	f.cfg = cfg
	f.guard = nil
	f.inodeCount = 0
	f.nextIno = 0
	f.gen++
	f.dcacheBusy = 0
	f.fileIdx = 0
	f.root = f.newInode(TypeDir, 0o755, 0, 0)
	f.root.nlink = 2
}

// harvest recursively returns n's subtree to the free list, scrubbing
// per-round state but keeping the allocations (children map, semaphores)
// for the next round.
func (f *FS) harvest(n *inode) {
	for name, c := range n.children {
		f.harvest(c)
		delete(n.children, name)
	}
	n.data = nil
	n.target = ""
	if n.sem != nil {
		n.sem.ResetState()
	}
	if n.dcache != nil {
		n.dcache.ResetState()
	}
	f.free = append(f.free, n)
}

// Latency returns the profile the file system charges from.
func (f *FS) Latency() LatencyProfile { return f.cfg.Latency }

// SetGuard installs a Guard consulted before and after every operation.
// Pass nil to remove.
func (f *FS) SetGuard(g Guard) { f.guard = g }

func (f *FS) newInode(typ FileType, mode Mode, uid, gid int) *inode {
	f.nextIno++
	f.inodeCount++
	var n *inode
	if ln := len(f.free); ln > 0 {
		n = f.free[ln-1]
		f.free[ln-1] = nil
		f.free = f.free[:ln-1]
		n.ino = f.nextIno
		n.typ, n.mode, n.uid, n.gid = typ, mode, uid, gid
		n.size, n.nlink = 0, 1
		n.openCount, n.unlinked = 0, false
		n.snap, n.freed = false, false
	} else {
		n = &inode{ino: f.nextIno, typ: typ, mode: mode, uid: uid, gid: gid, nlink: 1}
	}
	if typ == TypeDir && n.children == nil {
		n.children = make(map[string]*inode)
	}
	return n
}

// isem returns the inode semaphore, creating it on first use. A recycled
// inode may carry a semaphore named for a previous identity (the free list
// pops in harvest order, not creation order); it is relabeled on first use
// so traces from a recycled FS match a fresh one exactly.
func (n *inode) isem() *sim.Sem {
	if n.sem == nil {
		n.sem = sim.NewSem("ino:" + strconv.FormatInt(int64(n.ino), 10))
		n.semNamed = n.ino
	} else if n.semNamed != n.ino {
		n.sem.Rename("ino:" + strconv.FormatInt(int64(n.ino), 10))
		n.semNamed = n.ino
	}
	return n.sem
}

// dlock returns the directory's dentry lock, creating it on first use.
// Lookups treat a nil dcache as an unowned lock, so creation is deferred
// until a rename actually takes it.
func (n *inode) dlock() *sim.Sem {
	if n.dcache == nil {
		n.dcache = sim.NewSem("dcache:" + strconv.FormatInt(int64(n.ino), 10))
		n.dcacheNamed = n.ino
	} else if n.dcacheNamed != n.ino {
		n.dcache.Rename("dcache:" + strconv.FormatInt(int64(n.ino), 10))
		n.dcacheNamed = n.ino
	}
	return n.dcache
}

func (f *FS) freeInode(n *inode) {
	f.inodeCount--
	n.data = nil
}

// InodeCount returns the number of live inodes (for leak checks in tests).
func (f *FS) InodeCount() int { return f.inodeCount }

func (n *inode) info() FileInfo {
	return FileInfo{
		Ino: n.ino, Type: n.typ, Mode: n.mode, UID: n.uid, GID: n.gid,
		Size: n.size, Nlink: n.nlink, Target: n.target,
	}
}

// permBits selects the permission triplet that applies to cred.
func (n *inode) permOK(cred Cred, want Mode) bool {
	if cred.Root() {
		return true
	}
	var bits Mode
	switch {
	case cred.UID == n.uid:
		bits = (n.mode >> 6) & 7
	case cred.GID == n.gid:
		bits = (n.mode >> 3) & 7
	default:
		bits = n.mode & 7
	}
	return bits&want == want
}

const (
	permRead  Mode = 4
	permWrite Mode = 2
	permExec  Mode = 1
)

// stickyDenies implements the sticky-bit unlink/rename restriction.
func stickyDenies(parent, node *inode, cred Cred) bool {
	if cred.Root() || parent.mode&ModeSticky == 0 {
		return false
	}
	return cred.UID != node.uid && cred.UID != parent.uid
}

// splitPathInto normalizes an absolute path into components, appending to
// buf — typically a stack-backed scratch from the caller, which keeps the
// per-syscall resolve walk allocation-free (components are substrings of
// path, so no copies are made either). It rejects relative paths: the
// simulated processes always use absolute names.
func splitPathInto(path string, buf []string) ([]string, error) {
	if path == "" || path[0] != '/' {
		return nil, EINVAL
	}
	comps := buf
	for i := 1; i <= len(path); {
		var c string
		if j := strings.IndexByte(path[i:], '/'); j < 0 {
			c = path[i:]
			i = len(path) + 1
		} else {
			c = path[i : i+j]
			i += j + 1
		}
		switch c {
		case "", ".":
		case "..":
			if len(comps) > 0 {
				comps = comps[:len(comps)-1]
			}
		default:
			comps = append(comps, c)
		}
	}
	return comps, nil
}

// splitPath is splitPathInto with a freshly allocated buffer, for cold
// paths (fixtures, post-run assertions).
func splitPath(path string) ([]string, error) { return splitPathInto(path, nil) }

// --- Fixture helpers -----------------------------------------------------
//
// The Must* methods build or inspect the tree directly, bypassing timing,
// locking, and permission checks. They are for experiment setup and
// post-run assertions only and must not be called while the kernel runs.

// MustMkdirAll creates a directory path (and missing parents).
func (f *FS) MustMkdirAll(path string, mode Mode, uid, gid int) {
	f.gen++
	comps, err := splitPath(path)
	if err != nil {
		panic(fmt.Sprintf("fs: MustMkdirAll %q: %v", path, err))
	}
	cur := f.root
	for _, c := range comps {
		next, ok := cur.children[c]
		if !ok {
			next = f.newInode(TypeDir, mode, uid, gid)
			next.nlink = 2
			cur.children[c] = next
			cur.nlink++
		}
		if next.typ != TypeDir {
			panic(fmt.Sprintf("fs: MustMkdirAll %q: %q is not a directory", path, c))
		}
		cur = next
	}
}

// MustWriteFile creates (or replaces) a regular file of the given size.
func (f *FS) MustWriteFile(path string, size int64, mode Mode, uid, gid int) {
	f.gen++
	parent, name := f.mustParent(path)
	n := f.newInode(TypeRegular, mode, uid, gid)
	n.size = size
	if f.cfg.TrackContent {
		n.data = make([]byte, size)
	}
	if old, ok := parent.children[name]; ok {
		f.freeInode(old)
	}
	parent.children[name] = n
}

// MustSymlink creates a symbolic link.
func (f *FS) MustSymlink(target, linkpath string, uid, gid int) {
	f.gen++
	parent, name := f.mustParent(linkpath)
	n := f.newInode(TypeSymlink, 0o777, uid, gid)
	n.target = target
	n.size = int64(len(target))
	parent.children[name] = n
}

func (f *FS) mustParent(path string) (*inode, string) {
	comps, err := splitPath(path)
	if err != nil || len(comps) == 0 {
		panic(fmt.Sprintf("fs: bad fixture path %q", path))
	}
	cur := f.root
	for _, c := range comps[:len(comps)-1] {
		next, ok := cur.children[c]
		if !ok || next.typ != TypeDir {
			panic(fmt.Sprintf("fs: fixture parent missing for %q", path))
		}
		cur = next
	}
	return cur, comps[len(comps)-1]
}

// LookupInfo inspects a path without timing or locking, following symlinks.
// For post-run assertions (e.g. "who owns /etc/passwd now?").
func (f *FS) LookupInfo(path string) (FileInfo, error) {
	n, err := f.lookupNoCharge(path, true, 0)
	if err != nil {
		return FileInfo{}, err
	}
	return n.info(), nil
}

// LookupLinkInfo is LookupInfo without following a final symlink.
func (f *FS) LookupLinkInfo(path string) (FileInfo, error) {
	n, err := f.lookupNoCharge(path, false, 0)
	if err != nil {
		return FileInfo{}, err
	}
	return n.info(), nil
}

func (f *FS) lookupNoCharge(path string, follow bool, depth int) (*inode, error) {
	if depth > maxSymlinkDepth {
		return nil, pathErr("lookup", path, ELOOP)
	}
	// Stack-backed scratch as in walker.walk: LookupInfo runs once per
	// round for the post-run ownership assertion, and fixture paths are
	// shallow, so the split stays off the heap.
	var scratch [8]string
	comps, err := splitPathInto(path, scratch[:0])
	if err != nil {
		return nil, pathErr("lookup", path, EINVAL)
	}
	cur := f.root
	for i, c := range comps {
		if cur.typ != TypeDir {
			return nil, pathErr("lookup", path, ENOTDIR)
		}
		next, ok := cur.children[c]
		if !ok {
			return nil, pathErr("lookup", path, ENOENT)
		}
		last := i == len(comps)-1
		if next.typ == TypeSymlink && (!last || follow) {
			return f.lookupNoCharge(expandLink(comps[:i], next.target, comps[i+1:]), follow, depth+1)
		}
		cur = next
	}
	return cur, nil
}

// List returns the sorted names in a directory, bypassing timing. For
// tests and debugging.
func (f *FS) List(path string) ([]string, error) {
	n, err := f.lookupNoCharge(path, true, 0)
	if err != nil {
		return nil, err
	}
	if n.typ != TypeDir {
		return nil, pathErr("list", path, ENOTDIR)
	}
	names := make([]string, 0, len(n.children))
	for name := range n.children {
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}
