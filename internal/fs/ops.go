package fs

import (
	"sort"
	"time"

	"tocttou/internal/sim"
)

// Stat resolves path (following symlinks) and returns its attributes.
func (f *FS) Stat(t *sim.Task, path string) (FileInfo, error) {
	return f.statCommon(t, OpStat, path, true)
}

// Lstat is Stat without following a final symlink.
func (f *FS) Lstat(t *sim.Task, path string) (FileInfo, error) {
	return f.statCommon(t, OpLstat, path, false)
}

func (f *FS) statCommon(t *sim.Task, op Op, path string, follow bool) (FileInfo, error) {
	w := f.walkerFor(t)
	f.enter(t, op, path)
	if err := f.guardBefore(t, op, path, "", w.cred); err != nil {
		f.exit(t, op, path, err)
		return FileInfo{}, err
	}
	w.charge(f.cfg.Latency.SyscallEntry)
	res, err := w.resolveExisting(op.String(), path, follow)
	if err == nil {
		w.charge(f.cfg.Latency.StatAttr)
	}
	w.flush()
	var info FileInfo
	if err == nil {
		info = res.node.info()
	}
	f.exit(t, op, path, err)
	f.guardAfter(t, op, path, "", w.cred, err)
	return info, err
}

// Access reports whether the credential may access path with the given
// permission bits (fs.PermR|PermW|PermX semantics via the perm* masks) —
// the classic TOCTTOU "check" call: its answer may be stale by the time
// the caller acts on it.
func (f *FS) Access(t *sim.Task, path string, want Mode) error {
	w := f.walkerFor(t)
	f.enter(t, OpAccess, path)
	err := func() error {
		if err := f.guardBefore(t, OpAccess, path, "", w.cred); err != nil {
			return err
		}
		w.charge(f.cfg.Latency.SyscallEntry)
		res, err := w.resolveExisting("access", path, true)
		if err != nil {
			w.flush()
			return err
		}
		w.charge(f.cfg.Latency.StatAttr)
		w.flush()
		if !res.node.permOK(w.cred, want) {
			return pathErr("access", path, EACCES)
		}
		return nil
	}()
	f.exit(t, OpAccess, path, err)
	f.guardAfter(t, OpAccess, path, "", w.cred, err)
	return err
}

// ReadDir returns the sorted names in a directory, charging a per-entry
// cost.
func (f *FS) ReadDir(t *sim.Task, path string) ([]string, error) {
	w := f.walkerFor(t)
	f.enter(t, OpReadDir, path)
	var names []string
	err := func() error {
		if err := f.guardBefore(t, OpReadDir, path, "", w.cred); err != nil {
			return err
		}
		w.charge(f.cfg.Latency.SyscallEntry)
		res, err := w.resolveExisting("readdir", path, true)
		if err != nil {
			w.flush()
			return err
		}
		if res.node.typ != TypeDir {
			w.flush()
			return pathErr("readdir", path, ENOTDIR)
		}
		if !res.node.permOK(w.cred, permRead) {
			w.flush()
			return pathErr("readdir", path, EACCES)
		}
		names = make([]string, 0, len(res.node.children))
		for name := range res.node.children {
			names = append(names, name)
		}
		sort.Strings(names)
		w.charge(f.cfg.Latency.ReadBase + time.Duration(len(names))*f.cfg.Latency.Lookup/4)
		w.flush()
		return nil
	}()
	f.exit(t, OpReadDir, path, err)
	f.guardAfter(t, OpReadDir, path, "", w.cred, err)
	return names, err
}

// Readlink returns the target of a symbolic link.
func (f *FS) Readlink(t *sim.Task, path string) (string, error) {
	w := f.walkerFor(t)
	f.enter(t, OpReadlink, path)
	if err := f.guardBefore(t, OpReadlink, path, "", w.cred); err != nil {
		f.exit(t, OpReadlink, path, err)
		return "", err
	}
	w.charge(f.cfg.Latency.SyscallEntry)
	res, err := w.resolveExisting("readlink", path, false)
	target := ""
	if err == nil {
		if res.node.typ != TypeSymlink {
			err = pathErr("readlink", path, EINVAL)
		} else {
			w.charge(f.cfg.Latency.Readlink)
			target = res.node.target
		}
	}
	w.flush()
	f.exit(t, OpReadlink, path, err)
	f.guardAfter(t, OpReadlink, path, "", w.cred, err)
	return target, err
}

// Unlink removes a directory entry. The parent directory's semaphore is
// held only for the detach phase; if the entry was the last link to a
// regular file that no process holds open, the file is physically
// truncated while holding only the file's own semaphore — the structure
// that makes pipelined attacks (§7) profitable.
func (f *FS) Unlink(t *sim.Task, path string) error {
	w := f.walkerFor(t)
	f.enter(t, OpUnlink, path)
	err := f.unlinkLocked(t, w, path)
	f.exit(t, OpUnlink, path, err)
	f.guardAfter(t, OpUnlink, path, "", w.cred, err)
	return err
}

func (f *FS) unlinkLocked(t *sim.Task, w *walker, path string) error {
	if err := f.guardBefore(t, OpUnlink, path, "", w.cred); err != nil {
		return err
	}
	w.charge(f.cfg.Latency.SyscallEntry)
	res, err := w.resolveExisting("unlink", path, false)
	if err != nil {
		w.flush()
		return err
	}
	parent := res.parent
	if parent == nil {
		w.flush()
		return pathErr("unlink", path, EISDIR) // "/"
	}
	if !parent.permOK(w.cred, permWrite|permExec) {
		w.flush()
		return pathErr("unlink", path, EACCES)
	}
	w.flush()
	if err := parent.isem().AcquireInterruptible(t); err != nil {
		return pathErr("unlink", path, EINTR)
	}
	// Re-lookup under the lock: the binding may have changed since the
	// unlocked walk — these are exactly the TOCTTOU semantics.
	node := parent.children[res.name]
	if node == nil {
		parent.isem().Release(t)
		return pathErr("unlink", path, ENOENT)
	}
	if node.typ == TypeDir {
		parent.isem().Release(t)
		return pathErr("unlink", path, EISDIR)
	}
	if stickyDenies(parent, node, w.cred) {
		parent.isem().Release(t)
		return pathErr("unlink", path, EACCES)
	}
	node.isem().Acquire(t)
	// Phase 1: detach the name while holding the directory lock.
	t.Compute(t.Kernel().JitterDuration(f.cfg.Latency.UnlinkDetach))
	delete(parent.children, res.name)
	f.gen++
	node.nlink--
	t.Trace(sim.Event{Kind: sim.EvNameUnbind, Path: path})
	parent.isem().Release(t)
	// Phase 2: drop the data if this was the last reference.
	if node.nlink == 0 {
		node.unlinked = true
		if node.openCount == 0 {
			f.truncateLocked(t, node)
			f.freeInode(node)
		}
	}
	node.isem().Release(t)
	return nil
}

// truncateLocked charges the physical truncation of node's data. The
// caller holds node.sem.
func (f *FS) truncateLocked(t *sim.Task, node *inode) {
	if node.typ != TypeRegular {
		return
	}
	cost := f.cfg.Latency.TruncBase + perKB(f.cfg.Latency.TruncPerKB, node.size)
	t.Compute(t.Kernel().JitterDuration(cost))
	node.size = 0
	node.data = nil
}

// Symlink creates a symbolic link at linkpath pointing to target.
func (f *FS) Symlink(t *sim.Task, target, linkpath string) error {
	w := f.walkerFor(t)
	f.enter(t, OpSymlink, linkpath)
	err := f.symlinkLocked(t, w, target, linkpath)
	f.exit(t, OpSymlink, linkpath, err)
	f.guardAfter(t, OpSymlink, linkpath, target, w.cred, err)
	return err
}

func (f *FS) symlinkLocked(t *sim.Task, w *walker, target, linkpath string) error {
	if err := f.guardBefore(t, OpSymlink, linkpath, target, w.cred); err != nil {
		return err
	}
	w.charge(f.cfg.Latency.SyscallEntry)
	res, err := w.resolve("symlink", linkpath, false, 0)
	if err != nil {
		w.flush()
		return err
	}
	if res.parent == nil {
		w.flush()
		return pathErr("symlink", linkpath, EEXIST)
	}
	if !res.parent.permOK(w.cred, permWrite|permExec) {
		w.flush()
		return pathErr("symlink", linkpath, EACCES)
	}
	w.flush()
	if err := res.parent.isem().AcquireInterruptible(t); err != nil {
		return pathErr("symlink", linkpath, EINTR)
	}
	if res.parent.children[res.name] != nil {
		res.parent.isem().Release(t)
		return pathErr("symlink", linkpath, EEXIST)
	}
	t.Compute(t.Kernel().JitterDuration(f.cfg.Latency.Symlink))
	n := f.newInode(TypeSymlink, 0o777, w.cred.UID, w.cred.GID)
	n.target = target
	n.size = int64(len(target))
	res.parent.children[res.name] = n
	f.gen++
	t.Trace(sim.Event{Kind: sim.EvNameBind, Path: linkpath, Arg: int64(n.uid)})
	res.parent.isem().Release(t)
	return nil
}

// Link creates a hard link newpath referring to oldpath's inode.
func (f *FS) Link(t *sim.Task, oldpath, newpath string) error {
	w := f.walkerFor(t)
	f.enter(t, OpLink, oldpath)
	err := func() error {
		if err := f.guardBefore(t, OpLink, oldpath, newpath, w.cred); err != nil {
			return err
		}
		w.charge(f.cfg.Latency.SyscallEntry)
		old, err := w.resolveExisting("link", oldpath, false)
		if err != nil {
			w.flush()
			return err
		}
		if old.node.typ == TypeDir {
			w.flush()
			return pathErr("link", oldpath, EPERM)
		}
		res, err := w.resolve("link", newpath, false, 0)
		if err != nil {
			w.flush()
			return err
		}
		if res.parent == nil || !res.parent.permOK(w.cred, permWrite|permExec) {
			w.flush()
			return pathErr("link", newpath, EACCES)
		}
		w.flush()
		if err := res.parent.isem().AcquireInterruptible(t); err != nil {
			return pathErr("link", newpath, EINTR)
		}
		if res.parent.children[res.name] != nil {
			res.parent.isem().Release(t)
			return pathErr("link", newpath, EEXIST)
		}
		t.Compute(t.Kernel().JitterDuration(f.cfg.Latency.Symlink))
		res.parent.children[res.name] = old.node
		f.gen++
		old.node.nlink++
		t.Trace(sim.Event{Kind: sim.EvNameBind, Path: newpath, Arg: int64(old.node.uid)})
		res.parent.isem().Release(t)
		return nil
	}()
	f.exit(t, OpLink, oldpath, err)
	f.guardAfter(t, OpLink, oldpath, newpath, w.cred, err)
	return err
}

// Rename atomically rebinds oldpath's entry to newpath. The dentry swap —
// the commit point at which newpath's old binding disappears and the moved
// inode becomes visible under its new name — happens while holding the
// parent directory semaphores; concurrent lookups of either name block
// until it completes.
func (f *FS) Rename(t *sim.Task, oldpath, newpath string) error {
	w := f.walkerFor(t)
	f.enter(t, OpRename, oldpath)
	err := f.renameLocked(t, w, oldpath, newpath)
	f.exit(t, OpRename, newpath, err)
	f.guardAfter(t, OpRename, oldpath, newpath, w.cred, err)
	return err
}

func (f *FS) renameLocked(t *sim.Task, w *walker, oldpath, newpath string) error {
	if err := f.guardBefore(t, OpRename, oldpath, newpath, w.cred); err != nil {
		return err
	}
	w.charge(f.cfg.Latency.SyscallEntry)
	ores, err := w.resolveExisting("rename", oldpath, false)
	if err != nil {
		w.flush()
		return err
	}
	if ores.parent == nil {
		w.flush()
		return pathErr("rename", oldpath, EINVAL)
	}
	nres, err := w.resolve("rename", newpath, false, 0)
	if err != nil {
		w.flush()
		return err
	}
	if nres.parent == nil {
		w.flush()
		return pathErr("rename", newpath, EINVAL)
	}
	if !ores.parent.permOK(w.cred, permWrite|permExec) || !nres.parent.permOK(w.cred, permWrite|permExec) {
		w.flush()
		return pathErr("rename", newpath, EACCES)
	}
	if stickyDenies(ores.parent, ores.node, w.cred) {
		w.flush()
		return pathErr("rename", oldpath, EACCES)
	}
	// Work performed before the directory locks are taken.
	w.charge(f.cfg.Latency.RenamePre)
	w.flush()

	// Lock parents in inode order to avoid ABBA deadlocks.
	first, second := ores.parent, nres.parent
	if first == second {
		second = nil
	} else if second.ino < first.ino {
		first, second = second, first
	}
	// Only the first lock is interruptible: once any namespace lock is
	// held the operation is committed to finishing (a mid-rename EINTR
	// would have to unwind a partially locked dentry pair).
	if err := first.isem().AcquireInterruptible(t); err != nil {
		return pathErr("rename", oldpath, EINTR)
	}
	if second != nil {
		second.isem().Acquire(t)
	}

	// Re-lookup under the locks.
	onode := ores.parent.children[ores.name]
	if onode == nil {
		if second != nil {
			second.isem().Release(t)
		}
		first.isem().Release(t)
		return pathErr("rename", oldpath, ENOENT)
	}
	displaced := nres.parent.children[nres.name]
	if displaced == onode {
		displaced = nil // renaming a name onto itself
	}
	if displaced != nil && displaced.typ == TypeDir {
		if second != nil {
			second.isem().Release(t)
		}
		first.isem().Release(t)
		return pathErr("rename", newpath, EISDIR)
	}
	if displaced != nil && stickyDenies(nres.parent, displaced, w.cred) {
		if second != nil {
			second.isem().Release(t)
		}
		first.isem().Release(t)
		return pathErr("rename", newpath, EACCES)
	}

	// The swap phase: the namespace semaphores AND the dentry-cache
	// locks are held for its whole duration, so concurrent lookups of
	// either name stall until the binding changes at its end.
	f.dcacheBusy++
	first.dlock().Acquire(t)
	if second != nil {
		second.dlock().Acquire(t)
	}
	t.Compute(t.Kernel().JitterDuration(f.cfg.Latency.RenameSwap))
	delete(ores.parent.children, ores.name)
	t.Trace(sim.Event{Kind: sim.EvNameUnbind, Path: oldpath})
	if displaced != nil {
		displaced.nlink--
		t.Trace(sim.Event{Kind: sim.EvNameUnbind, Path: newpath})
	}
	nres.parent.children[nres.name] = onode
	f.gen++
	t.Trace(sim.Event{Kind: sim.EvNameBind, Path: newpath, Arg: int64(onode.uid)})
	if second != nil {
		second.dlock().Release(t)
	}
	first.dlock().Release(t)
	f.dcacheBusy--

	if second != nil {
		second.isem().Release(t)
	}
	first.isem().Release(t)

	// Post-swap bookkeeping, outside the directory locks.
	t.Compute(t.Kernel().JitterDuration(f.cfg.Latency.RenamePost))
	if displaced != nil && displaced.nlink == 0 {
		displaced.unlinked = true
		if displaced.openCount == 0 {
			displaced.isem().Acquire(t)
			f.truncateLocked(t, displaced)
			f.freeInode(displaced)
			displaced.isem().Release(t)
		}
	}
	return nil
}

// Chmod changes permission bits. Only the owner or root may do so. The
// path is resolved before the inode semaphore is acquired, so a concurrent
// rebinding of the name leaves chmod operating on the previously resolved
// inode — the TOCTTOU behavior the attacks exploit.
func (f *FS) Chmod(t *sim.Task, path string, mode Mode) error {
	w := f.walkerFor(t)
	f.enter(t, OpChmod, path)
	err := func() error {
		if err := f.guardBefore(t, OpChmod, path, "", w.cred); err != nil {
			return err
		}
		w.charge(f.cfg.Latency.SyscallEntry)
		res, err := w.resolveExisting("chmod", path, true)
		if err != nil {
			w.flush()
			return err
		}
		if !w.cred.Root() && w.cred.UID != res.node.uid {
			w.flush()
			return pathErr("chmod", path, EPERM)
		}
		w.flush()
		if err := res.node.isem().AcquireInterruptible(t); err != nil {
			return pathErr("chmod", path, EINTR)
		}
		t.Compute(t.Kernel().JitterDuration(f.cfg.Latency.Chmod))
		res.node.mode = mode
		f.gen++
		t.Trace(sim.Event{Kind: sim.EvAttrChange, Label: "chmod", Path: path, Arg: int64(mode)})
		res.node.isem().Release(t)
		return nil
	}()
	f.exit(t, OpChmod, path, err)
	f.guardAfter(t, OpChmod, path, "", w.cred, err)
	return err
}

// Chown changes ownership; only root may change the owner. Like Chmod it
// resolves the path (following symlinks) before locking the inode — the
// call at the "use" end of both of the paper's TOCTTOU pairs.
func (f *FS) Chown(t *sim.Task, path string, uid, gid int) error {
	w := f.walkerFor(t)
	f.enter(t, OpChown, path)
	err := func() error {
		if err := f.guardBefore(t, OpChown, path, "", w.cred); err != nil {
			return err
		}
		w.charge(f.cfg.Latency.SyscallEntry)
		res, err := w.resolveExisting("chown", path, true)
		if err != nil {
			w.flush()
			return err
		}
		if !w.cred.Root() {
			w.flush()
			return pathErr("chown", path, EPERM)
		}
		w.flush()
		if err := res.node.isem().AcquireInterruptible(t); err != nil {
			return pathErr("chown", path, EINTR)
		}
		t.Compute(t.Kernel().JitterDuration(f.cfg.Latency.Chown))
		res.node.uid = uid
		res.node.gid = gid
		f.gen++
		t.Trace(sim.Event{Kind: sim.EvAttrChange, Label: "chown", Path: path, Arg: int64(uid)})
		res.node.isem().Release(t)
		return nil
	}()
	f.exit(t, OpChown, path, err)
	f.guardAfter(t, OpChown, path, "", w.cred, err)
	return err
}

// Mkdir creates a directory.
func (f *FS) Mkdir(t *sim.Task, path string, mode Mode) error {
	w := f.walkerFor(t)
	f.enter(t, OpMkdir, path)
	err := func() error {
		if err := f.guardBefore(t, OpMkdir, path, "", w.cred); err != nil {
			return err
		}
		w.charge(f.cfg.Latency.SyscallEntry)
		res, err := w.resolve("mkdir", path, false, 0)
		if err != nil {
			w.flush()
			return err
		}
		if res.parent == nil {
			w.flush()
			return pathErr("mkdir", path, EEXIST)
		}
		if !res.parent.permOK(w.cred, permWrite|permExec) {
			w.flush()
			return pathErr("mkdir", path, EACCES)
		}
		w.flush()
		if err := res.parent.isem().AcquireInterruptible(t); err != nil {
			return pathErr("mkdir", path, EINTR)
		}
		if res.parent.children[res.name] != nil {
			res.parent.isem().Release(t)
			return pathErr("mkdir", path, EEXIST)
		}
		t.Compute(t.Kernel().JitterDuration(f.cfg.Latency.Mkdir))
		n := f.newInode(TypeDir, mode, w.cred.UID, w.cred.GID)
		n.nlink = 2
		res.parent.children[res.name] = n
		f.gen++
		res.parent.nlink++
		t.Trace(sim.Event{Kind: sim.EvNameBind, Path: path, Arg: int64(n.uid)})
		res.parent.isem().Release(t)
		return nil
	}()
	f.exit(t, OpMkdir, path, err)
	f.guardAfter(t, OpMkdir, path, "", w.cred, err)
	return err
}

// Rmdir removes an empty directory.
func (f *FS) Rmdir(t *sim.Task, path string) error {
	w := f.walkerFor(t)
	f.enter(t, OpRmdir, path)
	err := func() error {
		if err := f.guardBefore(t, OpRmdir, path, "", w.cred); err != nil {
			return err
		}
		w.charge(f.cfg.Latency.SyscallEntry)
		res, err := w.resolveExisting("rmdir", path, false)
		if err != nil {
			w.flush()
			return err
		}
		if res.parent == nil {
			w.flush()
			return pathErr("rmdir", path, EINVAL)
		}
		if res.node.typ != TypeDir {
			w.flush()
			return pathErr("rmdir", path, ENOTDIR)
		}
		if !res.parent.permOK(w.cred, permWrite|permExec) || stickyDenies(res.parent, res.node, w.cred) {
			w.flush()
			return pathErr("rmdir", path, EACCES)
		}
		w.flush()
		if err := res.parent.isem().AcquireInterruptible(t); err != nil {
			return pathErr("rmdir", path, EINTR)
		}
		node := res.parent.children[res.name]
		if node == nil {
			res.parent.isem().Release(t)
			return pathErr("rmdir", path, ENOENT)
		}
		if node.typ != TypeDir {
			res.parent.isem().Release(t)
			return pathErr("rmdir", path, ENOTDIR)
		}
		if len(node.children) > 0 {
			res.parent.isem().Release(t)
			return pathErr("rmdir", path, ENOTEMPTY)
		}
		t.Compute(t.Kernel().JitterDuration(f.cfg.Latency.UnlinkDetach))
		delete(res.parent.children, res.name)
		f.gen++
		res.parent.nlink--
		f.freeInode(node)
		t.Trace(sim.Event{Kind: sim.EvNameUnbind, Path: path})
		res.parent.isem().Release(t)
		return nil
	}()
	f.exit(t, OpRmdir, path, err)
	f.guardAfter(t, OpRmdir, path, "", w.cred, err)
	return err
}
