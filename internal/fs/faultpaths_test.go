package fs

import (
	"errors"
	"testing"

	"tocttou/internal/sim"
)

// TestErrorPathsTable pins errnos on failure paths the success-oriented
// tests never reach: opening a file the caller cannot read, writing
// through a read-only descriptor, and stat'ing a name whose inode was
// unlinked while a descriptor kept it alive.
func TestErrorPathsTable(t *testing.T) {
	cases := []struct {
		name string
		uid  int
		run  func(task *sim.Task, f *FS) error
		want Errno
	}{
		{
			name: "open denied by owner-only mode",
			uid:  1000,
			run: func(task *sim.Task, f *FS) error {
				_, err := f.Open(task, "/etc/shadow", ORead, 0)
				return err
			},
			want: EACCES,
		},
		{
			name: "open for write denied on read-only mode",
			uid:  1000,
			run: func(task *sim.Task, f *FS) error {
				_, err := f.Open(task, "/etc/passwd", OWrite, 0)
				return err
			},
			want: EACCES,
		},
		{
			name: "write on read-only descriptor",
			uid:  0,
			run: func(task *sim.Task, f *FS) error {
				fl, err := f.Open(task, "/etc/passwd", ORead, 0)
				if err != nil {
					return err
				}
				defer fl.Close(task)
				return fl.Write(task, 16)
			},
			want: EBADF,
		},
		{
			name: "read on write-only descriptor",
			uid:  0,
			run: func(task *sim.Task, f *FS) error {
				fl, err := f.Open(task, "/etc/passwd", OWrite, 0)
				if err != nil {
					return err
				}
				defer fl.Close(task)
				_, err = fl.Read(task, 16)
				return err
			},
			want: EBADF,
		},
		{
			name: "stat after unlink with live descriptor",
			uid:  0,
			run: func(task *sim.Task, f *FS) error {
				fl, err := f.Open(task, "/etc/passwd", ORead, 0)
				if err != nil {
					return err
				}
				defer fl.Close(task)
				if err := f.Unlink(task, "/etc/passwd"); err != nil {
					return err
				}
				// The open descriptor keeps the inode alive, but the
				// name is gone: path-based stat must miss.
				if _, err := fl.FStat(task); err != nil {
					return err
				}
				_, err = f.Stat(task, "/etc/passwd")
				return err
			},
			want: ENOENT,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			harness(t, 1, defCfg(), c.uid, 0, func(task *sim.Task, f *FS) {
				f.MustMkdirAll("/etc", 0o755, 0, 0)
				f.MustWriteFile("/etc/passwd", 512, 0o644, 0, 0)
				f.MustWriteFile("/etc/shadow", 512, 0o600, 0, 0)
				err := c.run(task, f)
				if !errors.Is(err, c.want) {
					t.Errorf("err = %v, want %v", err, c.want)
				}
			})
		})
	}
}

// opFaultHook fails every occurrence of one operation with a fixed errno
// and records the injection order relative to the guard.
type opFaultHook struct {
	op    Op
	errno Errno
	log   *[]string
}

func (h opFaultHook) InjectOp(t *sim.Task, op Op, path string) error {
	if op != h.op {
		return nil
	}
	*h.log = append(*h.log, "fault:"+op.String())
	return pathErr(op.String(), path, h.errno)
}

// logGuard records every Before consultation.
type logGuard struct{ log *[]string }

func (g logGuard) Before(t *sim.Task, op Op, path, path2 string, cred Cred) error {
	*g.log = append(*g.log, "guard:"+op.String())
	return nil
}

func (g logGuard) After(*sim.Task, Op, string, string, Cred, error) {}

// TestFaultHookPrecedesGuard: an installed FaultHook fires at operation
// entry, before the Guard sees the operation — an injected failure is a
// world the defense layer never observed, exactly like a device error
// below the VFS interposition point.
func TestFaultHookPrecedesGuard(t *testing.T) {
	var log []string
	cfg := defCfg()
	cfg.Faults = opFaultHook{op: OpOpen, errno: EIO, log: &log}
	harness(t, 1, cfg, 0, 0, func(task *sim.Task, f *FS) {
		f.SetGuard(logGuard{log: &log})
		f.MustWriteFile("/target", 64, 0o644, 0, 0)
		if _, err := f.Open(task, "/target", ORead, 0); !errors.Is(err, EIO) {
			t.Fatalf("open err = %v, want injected EIO", err)
		}
		if _, err := f.Stat(task, "/target"); err != nil {
			t.Fatalf("un-injected stat failed: %v", err)
		}
	})
	// The faulted open must appear in the log without a guard:open ever
	// following it; the clean stat reaches the guard normally.
	sawFault, sawGuardOpen, sawGuardStat := false, false, false
	for _, e := range log {
		switch e {
		case "fault:open":
			sawFault = true
		case "guard:open":
			sawGuardOpen = true
		case "guard:stat":
			sawGuardStat = true
		}
	}
	if !sawFault {
		t.Error("fault hook never fired for open")
	}
	if sawGuardOpen {
		t.Error("guard observed an operation the fault hook already failed")
	}
	if !sawGuardStat {
		t.Error("guard missed the clean stat")
	}
}
