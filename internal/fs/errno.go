// Package fs implements the simulated Unix-style file system the TOCTTOU
// experiments run against: an inode table with per-inode semaphores,
// hierarchical directories with permission checks, symbolic links, and a
// syscall surface (open/stat/rename/unlink/symlink/chmod/chown/...) whose
// latencies and locking behavior are modeled after the kernels the DSN'07
// paper measured.
//
// Every operation takes a *sim.Task and charges virtual CPU time from a
// calibrated LatencyProfile; namespace-modifying operations contend on the
// same simulated semaphores that decide the paper's races. The filesystem
// is purely in-memory and in virtual time — nothing touches the host.
package fs

import "fmt"

// Errno is a Unix-style error number. It implements error so the fs layer
// can return sentinel errors that carry the familiar names.
type Errno int

// The subset of errno values the simulated syscalls can produce.
const (
	EPERM     Errno = 1
	ENOENT    Errno = 2
	EINTR     Errno = 4
	EIO       Errno = 5
	EACCES    Errno = 13
	EEXIST    Errno = 17
	EXDEV     Errno = 18
	ENOTDIR   Errno = 20
	EISDIR    Errno = 21
	EINVAL    Errno = 22
	EMFILE    Errno = 24
	ENOSPC    Errno = 28
	ENOTEMPTY Errno = 39
	ELOOP     Errno = 40
	EBADF     Errno = 9
)

var errnoNames = map[Errno]string{
	EPERM: "EPERM", ENOENT: "ENOENT", EINTR: "EINTR", EIO: "EIO",
	EACCES: "EACCES", EEXIST: "EEXIST",
	EXDEV: "EXDEV", ENOTDIR: "ENOTDIR", EISDIR: "EISDIR", EINVAL: "EINVAL",
	EMFILE: "EMFILE", ENOSPC: "ENOSPC", ENOTEMPTY: "ENOTEMPTY",
	ELOOP: "ELOOP", EBADF: "EBADF",
}

// Error implements error.
func (e Errno) Error() string {
	if s, ok := errnoNames[e]; ok {
		return s
	}
	return fmt.Sprintf("errno(%d)", int(e))
}

// PathError records an operation, the path it was applied to, and the
// underlying errno, mirroring os.PathError.
type PathError struct {
	Op   string
	Path string
	Err  error
}

// Error implements error.
func (e *PathError) Error() string { return e.Op + " " + e.Path + ": " + e.Err.Error() }

// Unwrap supports errors.Is against the Errno sentinels.
func (e *PathError) Unwrap() error { return e.Err }

func pathErr(op, path string, errno Errno) error {
	return &PathError{Op: op, Path: path, Err: errno}
}

// ErrnoOf extracts the Errno from err, or 0 if none is present.
func ErrnoOf(err error) Errno {
	for err != nil {
		if e, ok := err.(Errno); ok {
			return e
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return 0
		}
		err = u.Unwrap()
	}
	return 0
}
