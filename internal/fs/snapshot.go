package fs

import "sort"

// This file implements copy-on-write prefix forking for the file system.
// A sweep point runs thousands of rounds against the identical fixture
// tree; rebuilding it per round (Reset + MustMkdirAll/MustWriteFile) costs
// allocation, hashing, and tree construction that forking amortizes away.
//
// Snapshot captures the tree into an Image that remembers, for every live
// inode, its scalar state and (for directories) its dirent list — including
// the *inode pointers themselves. Fork restores each captured inode IN
// PLACE: the pointer identity of every fixture object survives across
// rounds. Pointer stability is what makes the restore cheap (directory
// maps are usually untouched and verified rather than rebuilt, resolution
// cache entries minted before the first mutation stay valid from round to
// round) and what keeps observables identical (ino numbers, semaphore
// labels, and trace strings are all restored to the captured values).

// savedDirent is one captured directory entry.
type savedDirent struct {
	name  string
	child *inode
}

// savedNode is the captured state of one live inode.
type savedNode struct {
	n        *inode
	typ      FileType
	mode     Mode
	uid, gid int
	size     int64
	nlink    int
	target   string
	data     []byte
	children []savedDirent
}

// Image is a snapshot of a file system tree, restorable with Fork. It is
// bound to the FS that produced it (restore is in-place) and stays valid
// until that FS is Reset or re-snapshotted. The fault hook — the only
// per-round element of the fs configuration — is re-supplied at Fork time.
type Image struct {
	owner      *FS
	nodes      []savedNode
	nextIno    Ino
	inodeCount int
	// baseGen is the namespace generation the cached resolutions of the
	// snapshot tree are stamped with; Fork advances it whenever the forked
	// round mutated the namespace (see the epoch re-stamp below).
	baseGen uint64
	cfg     Config
}

// Snapshot captures the current tree. It must not be called while a
// simulation that references this FS is running.
func (f *FS) Snapshot() *Image {
	img := &Image{
		owner:      f,
		nextIno:    f.nextIno,
		inodeCount: f.inodeCount,
		baseGen:    f.gen,
		cfg:        f.cfg,
	}
	img.cfg.Faults = nil
	var walk func(n *inode)
	walk = func(n *inode) {
		n.snap = true
		s := savedNode{
			n: n, typ: n.typ, mode: n.mode, uid: n.uid, gid: n.gid,
			size: n.size, nlink: n.nlink, target: n.target,
		}
		if n.data != nil {
			s.data = append([]byte(nil), n.data...)
		}
		if len(n.children) > 0 {
			s.children = make([]savedDirent, 0, len(n.children))
			for name, c := range n.children {
				s.children = append(s.children, savedDirent{name: name, child: c})
			}
			sort.Slice(s.children, func(i, j int) bool {
				return s.children[i].name < s.children[j].name
			})
		}
		img.nodes = append(img.nodes, s)
		for _, d := range s.children {
			walk(d.child)
		}
	}
	walk(f.root)
	return img
}

// Fork restores the snapshot tree in place, giving the next round a file
// system indistinguishable from one freshly Reset and refixtured: every
// captured inode gets its captured attributes (and content copy) back,
// round-created extras are swept to the free list, inode numbering resumes
// from the captured counter, and lock state is cleared. faults installs the
// next round's fault hook (nil for none). Fork must not be called while a
// simulation that references this FS is running.
func (f *FS) Fork(img *Image, faults FaultHook) {
	if img.owner != f {
		panic("fs: Fork with an Image captured from a different FS")
	}
	cfg := img.cfg
	cfg.Faults = faults
	f.cfg = cfg
	f.guard = nil
	mutated := f.gen != img.baseGen
	for i := range img.nodes {
		s := &img.nodes[i]
		n := s.n
		n.typ, n.mode, n.uid, n.gid = s.typ, s.mode, s.uid, s.gid
		n.size, n.nlink = s.size, s.nlink
		n.target = s.target
		n.openCount, n.unlinked = 0, false
		n.freed = false
		if s.data != nil {
			n.data = append(n.data[:0], s.data...)
		} else {
			n.data = nil
		}
		if n.sem != nil {
			n.sem.ResetState()
		}
		if n.dcache != nil {
			n.dcache.ResetState()
		}
		if mutated && s.typ == TypeDir {
			f.reconcileDir(n, s)
		}
	}
	f.nextIno = img.nextIno
	f.inodeCount = img.inodeCount
	f.dcacheBusy = 0
	f.fileIdx = 0
	if mutated {
		// Epoch re-stamp: resolution-cache entries minted before the
		// round's first namespace mutation describe exactly the snapshot
		// tree, so they remain valid for the restored tree — but their
		// generation stamp must move to a value no stale mid-round entry
		// can collide with. Advance the generation once and carry the
		// pre-mutation entries over; everything else is dropped.
		f.gen++
		for i := range f.resCache {
			e := &f.resCache[i]
			if e.gen == img.baseGen {
				e.gen = f.gen
			} else {
				*e = resEntry{}
			}
		}
		img.baseGen = f.gen
	}
}

// reconcileDir brings a snapshot directory's dirent map back to its
// captured contents. The common case — the round never touched the
// directory — verifies in place without writing. Otherwise the map is
// rebuilt from the captured list and every no-longer-referenced
// round-created inode is recycled (snapshot members are never freed: they
// are restored through their own savedNode).
func (f *FS) reconcileDir(n *inode, s *savedNode) {
	if len(n.children) == len(s.children) {
		same := true
		for i := range s.children {
			if n.children[s.children[i].name] != s.children[i].child {
				same = false
				break
			}
		}
		if same {
			return
		}
	}
	for name, c := range n.children {
		delete(n.children, name)
		f.freeExtra(c)
	}
	for i := range s.children {
		n.children[s.children[i].name] = s.children[i].child
	}
}

// freeExtra returns a round-created inode (and any round-created
// descendants) to the free list. Snapshot members are skipped — a rename
// may have moved one under a round-created directory — and the freed flag
// guards against recycling a hard-linked extra twice.
func (f *FS) freeExtra(n *inode) {
	if n.snap || n.freed {
		return
	}
	n.freed = true
	for name, c := range n.children {
		delete(n.children, name)
		f.freeExtra(c)
	}
	n.data = nil
	n.target = ""
	if n.sem != nil {
		n.sem.ResetState()
	}
	if n.dcache != nil {
		n.dcache.ResetState()
	}
	f.free = append(f.free, n)
}
