package fs

import (
	"strings"
	"time"
	"unsafe"

	"tocttou/internal/sim"
)

// maxSymlinkDepth bounds symlink expansion during resolution (ELOOP).
const maxSymlinkDepth = 40

// walker accumulates lookup costs during path resolution and charges them
// lazily, so an uncontended resolution costs a single Compute. When a
// directory semaphore is held by another thread the walker flushes and
// blocks — this is the per-component dentry contention that "lengthens" the
// attacker's stat in the paper's Fig. 10 and synchronizes detection with
// the victim's rename.
type walker struct {
	f       *FS
	t       *sim.Task
	cred    Cred
	pending time.Duration
}

func (f *FS) walkerFor(t *sim.Task) *walker {
	p := t.Process()
	return &walker{f: f, t: t, cred: Cred{UID: p.UID, GID: p.GID}}
}

// charge defers d of CPU cost until the next flush.
func (w *walker) charge(d time.Duration) { w.pending += d }

// flush charges the accumulated cost (with machine jitter) as one segment.
func (w *walker) flush() {
	if w.pending > 0 {
		w.t.Compute(w.t.Kernel().JitterDuration(w.pending))
		w.pending = 0
	}
}

// touchDir models the dentry lookup of one component inside dir: free
// directories cost only the lookup latency; a directory whose dentries are
// being moved by a rename blocks the walker until the swap completes, and
// the walker then observes the post-swap binding — the mechanism that
// synchronizes the attacker's detection with the opening of the gedit
// window (§6). The blocked wait is interruptible like the fs's other
// semaphore waits, so an injected signal surfaces as EINTR out of the
// resolving call.
func (w *walker) touchDir(dir *inode) error {
	if w.f.cfg.UnsynchronizedLookups {
		w.charge(w.f.cfg.Latency.Lookup)
		return nil
	}
	// A directory that never saw a rename has no dentry lock (dcache is
	// created lazily); that is indistinguishable from an unowned one.
	if d := dir.dcache; d != nil {
		if owner := d.Owner(); owner != nil && owner != w.t.Thread() {
			w.flush()
			if err := d.AcquireInterruptible(w.t); err != nil {
				return err
			}
			w.t.Compute(w.t.Kernel().JitterDuration(w.f.cfg.Latency.Lookup))
			d.Release(w.t)
			return nil
		}
	}
	w.charge(w.f.cfg.Latency.Lookup)
	return nil
}

// resolution is the outcome of a timed path walk.
type resolution struct {
	parent *inode // directory containing the final component (nil for "/")
	name   string // final component name ("" for "/")
	node   *inode // resolved inode, nil if the final component is absent
}

// resKey identifies a memoizable resolution: the same path walked with the
// same credential and symlink policy deterministically yields the same
// resolution and the same accumulated lookup charge until the namespace
// generation moves.
// resCacheSlots sizes the direct-mapped resolution memo. The simulated
// programs resolve the same handful of fixture paths per round, so a tiny
// fixed array with round-robin eviction covers the working set while
// keeping lookup a short linear scan of pointer comparisons.
const resCacheSlots = 16

// resEntry is one memoized resolution, valid while gen matches FS.gen.
// Matching compares the path's string-data pointer rather than its bytes:
// program paths come from stable env strings, so identical text arrives as
// the identical object, and a pointer miss merely degrades to the cold
// walk the memo would have produced anyway. The entry retains the path
// string itself so the cached pointer can never be recycled by the GC and
// false-hit on an unrelated allocation.
type resEntry struct {
	path     string
	uid, gid int
	follow   bool
	gen      uint64
	res      resolution
	pending  time.Duration
}

// resolve walks path, charging lookup costs and honoring search permissions.
// If follow is true a symlink in the final position is expanded. A missing
// FINAL component is not an error (node == nil) so creating operations can
// share the walk; a missing intermediate component is ENOENT.
//
// Top-level resolutions are memoized per (path, cred, follow) generation.
// The memo is behaviorally invisible: a hit defers the identical pending
// charge the full walk would have accumulated, and the walk itself has no
// yield point unless a dentry lock is held (dcacheBusy > 0), in which case
// the memo is bypassed entirely — so a cached resolution can never skip a
// stall, an EINTR, or an interleaving the real walk would have seen.
func (w *walker) resolve(op, path string, follow bool, depth int) (resolution, error) {
	f := w.f
	if depth != 0 || f.dcacheBusy != 0 || len(path) == 0 {
		return w.walk(op, path, follow, depth)
	}
	pd := unsafe.StringData(path)
	for i := range f.resCache {
		e := &f.resCache[i]
		if e.gen == f.gen && len(e.path) == len(path) && unsafe.StringData(e.path) == pd &&
			e.uid == w.cred.UID && e.gid == w.cred.GID && e.follow == follow {
			w.charge(e.pending)
			return e.res, nil
		}
	}
	before := w.pending
	res, err := w.walk(op, path, follow, 0)
	if err == nil {
		f.resCache[f.resClock&(resCacheSlots-1)] = resEntry{
			path: path, uid: w.cred.UID, gid: w.cred.GID, follow: follow,
			gen: f.gen, res: res, pending: w.pending - before,
		}
		f.resClock++
	}
	return res, err
}

// walk is the uncached resolution loop.
func (w *walker) walk(op, path string, follow bool, depth int) (resolution, error) {
	if depth > maxSymlinkDepth {
		return resolution{}, pathErr(op, path, ELOOP)
	}
	// Stack-backed component scratch: the fixture paths are shallow, so
	// the common walk splits without touching the heap (deep paths spill
	// via append). Safe across the walk's blocking points — the scratch
	// lives on this thread's own goroutine stack.
	var scratch [8]string
	comps, err := splitPathInto(path, scratch[:0])
	if err != nil {
		return resolution{}, pathErr(op, path, EINVAL)
	}
	if len(comps) == 0 {
		return resolution{node: w.f.root}, nil
	}
	cur := w.f.root
	for i, c := range comps {
		if cur.typ != TypeDir {
			return resolution{}, pathErr(op, path, ENOTDIR)
		}
		if !cur.permOK(w.cred, permExec) {
			return resolution{}, pathErr(op, path, EACCES)
		}
		if err := w.touchDir(cur); err != nil {
			return resolution{}, pathErr(op, path, EINTR)
		}
		next := cur.children[c]
		last := i == len(comps)-1
		if last {
			if next != nil && next.typ == TypeSymlink && follow {
				w.charge(w.f.cfg.Latency.Readlink)
				return w.resolve(op, expandLink(comps[:i], next.target, nil), follow, depth+1)
			}
			return resolution{parent: cur, name: c, node: next}, nil
		}
		if next == nil {
			return resolution{}, pathErr(op, path, ENOENT)
		}
		if next.typ == TypeSymlink {
			w.charge(w.f.cfg.Latency.Readlink)
			return w.resolve(op, expandLink(comps[:i], next.target, comps[i+1:]), follow, depth+1)
		}
		cur = next
	}
	return resolution{}, pathErr(op, path, EINVAL) // unreachable
}

// expandLink builds the path to continue resolution at after following a
// symlink: an absolute target replaces the walked prefix; a relative
// target is interpreted relative to the directory containing the link
// (dirComps). rest is the remaining unresolved components, if any.
func expandLink(dirComps []string, target string, rest []string) string {
	var b strings.Builder
	if strings.HasPrefix(target, "/") {
		b.WriteString(target)
	} else {
		b.WriteByte('/')
		b.WriteString(strings.Join(dirComps, "/"))
		b.WriteByte('/')
		b.WriteString(target)
	}
	if len(rest) > 0 {
		b.WriteByte('/')
		b.WriteString(strings.Join(rest, "/"))
	}
	return b.String()
}

// resolveExisting resolves a path that must exist.
func (w *walker) resolveExisting(op, path string, follow bool) (resolution, error) {
	res, err := w.resolve(op, path, follow, 0)
	if err != nil {
		return resolution{}, err
	}
	if res.node == nil {
		return resolution{}, pathErr(op, path, ENOENT)
	}
	return res, nil
}
