package fs

import (
	"errors"
	"testing"
	"time"

	"tocttou/internal/sim"
)

// harness runs fn as a root-owned thread on a fresh kernel + FS.
func harness(t *testing.T, cpus int, cfg Config, uid, gid int, fn func(*sim.Task, *FS)) (*FS, *sim.Kernel) {
	t.Helper()
	k := sim.New(sim.Config{CPUs: cpus, Quantum: 50 * time.Millisecond, Seed: 1})
	f := New(cfg)
	p := k.NewProcess("test", uid, gid)
	k.Spawn(p, "main", func(task *sim.Task) { fn(task, f) })
	if err := k.Run(); err != nil {
		t.Fatalf("kernel: %v", err)
	}
	return f, k
}

func defCfg() Config { return Config{Latency: DefaultProfile(), TrackContent: true} }

func TestCreateAndStat(t *testing.T) {
	harness(t, 1, defCfg(), 0, 0, func(task *sim.Task, f *FS) {
		f.MustMkdirAll("/home/alice", 0o755, 1000, 1000)
		file, err := f.Open(task, "/home/alice/doc.txt", OWrite|OCreate, 0o644)
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		if err := file.Write(task, 4096); err != nil {
			t.Fatalf("write: %v", err)
		}
		if err := file.Close(task); err != nil {
			t.Fatalf("close: %v", err)
		}
		info, err := f.Stat(task, "/home/alice/doc.txt")
		if err != nil {
			t.Fatalf("stat: %v", err)
		}
		if info.Size != 4096 {
			t.Errorf("size = %d, want 4096", info.Size)
		}
		if info.UID != 0 {
			t.Errorf("uid = %d, want 0 (creator)", info.UID)
		}
		if info.Type != TypeRegular {
			t.Errorf("type = %v, want file", info.Type)
		}
	})
}

func TestStatMissingIsENOENT(t *testing.T) {
	harness(t, 1, defCfg(), 0, 0, func(task *sim.Task, f *FS) {
		_, err := f.Stat(task, "/nope")
		if !errors.Is(err, ENOENT) {
			t.Errorf("err = %v, want ENOENT", err)
		}
		_, err = f.Stat(task, "/nope/deeper")
		if !errors.Is(err, ENOENT) {
			t.Errorf("intermediate err = %v, want ENOENT", err)
		}
	})
}

func TestRelativePathRejected(t *testing.T) {
	harness(t, 1, defCfg(), 0, 0, func(task *sim.Task, f *FS) {
		if _, err := f.Stat(task, "relative/path"); !errors.Is(err, EINVAL) {
			t.Errorf("err = %v, want EINVAL", err)
		}
	})
}

func TestDotAndDotDotNormalization(t *testing.T) {
	harness(t, 1, defCfg(), 0, 0, func(task *sim.Task, f *FS) {
		f.MustMkdirAll("/a/b", 0o755, 0, 0)
		f.MustWriteFile("/a/b/x", 1, 0o644, 0, 0)
		for _, p := range []string{"/a/./b/x", "/a/b/../b/x", "//a//b//x", "/../a/b/x"} {
			if _, err := f.Stat(task, p); err != nil {
				t.Errorf("stat %q: %v", p, err)
			}
		}
	})
}

func TestSymlinkFollowAndLstat(t *testing.T) {
	harness(t, 1, defCfg(), 0, 0, func(task *sim.Task, f *FS) {
		f.MustMkdirAll("/etc", 0o755, 0, 0)
		f.MustWriteFile("/etc/passwd", 512, 0o644, 0, 0)
		f.MustMkdirAll("/tmp", 0o777|ModeSticky, 0, 0)
		if err := f.Symlink(task, "/etc/passwd", "/tmp/link"); err != nil {
			t.Fatalf("symlink: %v", err)
		}
		info, err := f.Stat(task, "/tmp/link")
		if err != nil {
			t.Fatalf("stat: %v", err)
		}
		if info.Size != 512 || info.Type != TypeRegular {
			t.Errorf("stat through link = %+v, want the target", info)
		}
		linfo, err := f.Lstat(task, "/tmp/link")
		if err != nil {
			t.Fatalf("lstat: %v", err)
		}
		if linfo.Type != TypeSymlink {
			t.Errorf("lstat type = %v, want symlink", linfo.Type)
		}
		target, err := f.Readlink(task, "/tmp/link")
		if err != nil || target != "/etc/passwd" {
			t.Errorf("readlink = %q, %v", target, err)
		}
	})
}

func TestSymlinkInMiddleOfPath(t *testing.T) {
	harness(t, 1, defCfg(), 0, 0, func(task *sim.Task, f *FS) {
		f.MustMkdirAll("/data/real", 0o755, 0, 0)
		f.MustWriteFile("/data/real/x", 7, 0o644, 0, 0)
		f.MustSymlink("/data/real", "/data/alias", 0, 0)
		info, err := f.Stat(task, "/data/alias/x")
		if err != nil {
			t.Fatalf("stat through mid symlink: %v", err)
		}
		if info.Size != 7 {
			t.Errorf("size = %d, want 7", info.Size)
		}
	})
}

func TestSymlinkLoopIsELOOP(t *testing.T) {
	harness(t, 1, defCfg(), 0, 0, func(task *sim.Task, f *FS) {
		f.MustMkdirAll("/tmp", 0o777, 0, 0)
		f.MustSymlink("/tmp/b", "/tmp/a", 0, 0)
		f.MustSymlink("/tmp/a", "/tmp/b", 0, 0)
		if _, err := f.Stat(task, "/tmp/a"); !errors.Is(err, ELOOP) {
			t.Errorf("err = %v, want ELOOP", err)
		}
	})
}

func TestChownFollowsSymlink(t *testing.T) {
	// The heart of both attacks: chown(path) applied after the attacker
	// rebinds path to a symlink must change the symlink's TARGET.
	harness(t, 1, defCfg(), 0, 0, func(task *sim.Task, f *FS) {
		f.MustMkdirAll("/etc", 0o755, 0, 0)
		f.MustWriteFile("/etc/passwd", 512, 0o644, 0, 0)
		f.MustMkdirAll("/home/alice", 0o755, 1000, 1000)
		f.MustSymlink("/etc/passwd", "/home/alice/doc.txt", 1000, 1000)
		if err := f.Chown(task, "/home/alice/doc.txt", 1000, 1000); err != nil {
			t.Fatalf("chown: %v", err)
		}
		info, err := f.LookupInfo("/etc/passwd")
		if err != nil {
			t.Fatalf("lookup: %v", err)
		}
		if info.UID != 1000 {
			t.Errorf("/etc/passwd uid = %d, want 1000 (chown must follow the link)", info.UID)
		}
	})
}

func TestChownRequiresRoot(t *testing.T) {
	harness(t, 1, defCfg(), 1000, 1000, func(task *sim.Task, f *FS) {
		f.MustMkdirAll("/home/alice", 0o755, 1000, 1000)
		f.MustWriteFile("/home/alice/f", 1, 0o644, 1000, 1000)
		if err := f.Chown(task, "/home/alice/f", 1001, 1001); !errors.Is(err, EPERM) {
			t.Errorf("err = %v, want EPERM", err)
		}
	})
}

func TestChmodOwnerOrRootOnly(t *testing.T) {
	harness(t, 1, defCfg(), 1000, 1000, func(task *sim.Task, f *FS) {
		f.MustMkdirAll("/home/alice", 0o755, 1000, 1000)
		f.MustWriteFile("/home/alice/mine", 1, 0o644, 1000, 1000)
		f.MustWriteFile("/home/alice/roots", 1, 0o644, 0, 0)
		if err := f.Chmod(task, "/home/alice/mine", 0o600); err != nil {
			t.Errorf("chmod own file: %v", err)
		}
		if err := f.Chmod(task, "/home/alice/roots", 0o600); !errors.Is(err, EPERM) {
			t.Errorf("chmod other's file err = %v, want EPERM", err)
		}
	})
}

func TestUnlinkRemovesName(t *testing.T) {
	harness(t, 1, defCfg(), 0, 0, func(task *sim.Task, f *FS) {
		f.MustMkdirAll("/d", 0o755, 0, 0)
		f.MustWriteFile("/d/f", 100, 0o644, 0, 0)
		before := f.InodeCount()
		if err := f.Unlink(task, "/d/f"); err != nil {
			t.Fatalf("unlink: %v", err)
		}
		if _, err := f.Stat(task, "/d/f"); !errors.Is(err, ENOENT) {
			t.Errorf("stat after unlink = %v, want ENOENT", err)
		}
		if got := f.InodeCount(); got != before-1 {
			t.Errorf("inode count = %d, want %d (inode freed)", got, before-1)
		}
	})
}

func TestUnlinkDirectoryIsEISDIR(t *testing.T) {
	harness(t, 1, defCfg(), 0, 0, func(task *sim.Task, f *FS) {
		f.MustMkdirAll("/d/sub", 0o755, 0, 0)
		if err := f.Unlink(task, "/d/sub"); !errors.Is(err, EISDIR) {
			t.Errorf("err = %v, want EISDIR", err)
		}
	})
}

func TestUnlinkDoesNotFollowSymlink(t *testing.T) {
	harness(t, 1, defCfg(), 0, 0, func(task *sim.Task, f *FS) {
		f.MustMkdirAll("/etc", 0o755, 0, 0)
		f.MustWriteFile("/etc/passwd", 512, 0o644, 0, 0)
		f.MustMkdirAll("/tmp", 0o777, 0, 0)
		f.MustSymlink("/etc/passwd", "/tmp/l", 0, 0)
		if err := f.Unlink(task, "/tmp/l"); err != nil {
			t.Fatalf("unlink: %v", err)
		}
		if _, err := f.LookupInfo("/etc/passwd"); err != nil {
			t.Errorf("target vanished: %v", err)
		}
		if _, err := f.LookupLinkInfo("/tmp/l"); !errors.Is(err, ENOENT) {
			t.Errorf("link still present: %v", err)
		}
	})
}

func TestUnlinkedOpenFileTruncatesOnClose(t *testing.T) {
	harness(t, 1, defCfg(), 0, 0, func(task *sim.Task, f *FS) {
		f.MustMkdirAll("/d", 0o755, 0, 0)
		file, err := f.Open(task, "/d/f", OWrite|OCreate, 0o644)
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		if err := file.Write(task, 1024); err != nil {
			t.Fatalf("write: %v", err)
		}
		if err := f.Unlink(task, "/d/f"); err != nil {
			t.Fatalf("unlink: %v", err)
		}
		// Writes through the fd still work on the orphaned inode.
		if err := file.Write(task, 1024); err != nil {
			t.Errorf("write after unlink: %v", err)
		}
		before := f.InodeCount()
		if err := file.Close(task); err != nil {
			t.Fatalf("close: %v", err)
		}
		if got := f.InodeCount(); got != before-1 {
			t.Errorf("inode not freed on close: %d -> %d", before, got)
		}
	})
}

func TestRenameRebindsAndDisplaces(t *testing.T) {
	harness(t, 1, defCfg(), 0, 0, func(task *sim.Task, f *FS) {
		f.MustMkdirAll("/d", 0o755, 0, 0)
		f.MustWriteFile("/d/a", 10, 0o644, 0, 0)
		f.MustWriteFile("/d/b", 20, 0o644, 0, 0)
		if err := f.Rename(task, "/d/a", "/d/b"); err != nil {
			t.Fatalf("rename: %v", err)
		}
		if _, err := f.Stat(task, "/d/a"); !errors.Is(err, ENOENT) {
			t.Errorf("old name survives: %v", err)
		}
		info, err := f.Stat(task, "/d/b")
		if err != nil || info.Size != 10 {
			t.Errorf("new name = %+v, %v; want the moved inode (size 10)", info, err)
		}
	})
}

func TestRenameAcrossDirectories(t *testing.T) {
	harness(t, 1, defCfg(), 0, 0, func(task *sim.Task, f *FS) {
		f.MustMkdirAll("/src", 0o755, 0, 0)
		f.MustMkdirAll("/dst", 0o755, 0, 0)
		f.MustWriteFile("/src/f", 5, 0o644, 0, 0)
		if err := f.Rename(task, "/src/f", "/dst/g"); err != nil {
			t.Fatalf("rename: %v", err)
		}
		if _, err := f.Stat(task, "/dst/g"); err != nil {
			t.Errorf("moved file missing: %v", err)
		}
	})
}

func TestRenameMissingSourceIsENOENT(t *testing.T) {
	harness(t, 1, defCfg(), 0, 0, func(task *sim.Task, f *FS) {
		f.MustMkdirAll("/d", 0o755, 0, 0)
		if err := f.Rename(task, "/d/none", "/d/x"); !errors.Is(err, ENOENT) {
			t.Errorf("err = %v, want ENOENT", err)
		}
	})
}

func TestRenamePreservesOwnership(t *testing.T) {
	// gedit's window: rename(temp, real) makes real owned by temp's owner
	// (root), which is what the attacker's stat detects.
	harness(t, 1, defCfg(), 0, 0, func(task *sim.Task, f *FS) {
		f.MustMkdirAll("/home/alice", 0o755, 1000, 1000)
		f.MustWriteFile("/home/alice/real", 100, 0o644, 1000, 1000)
		f.MustWriteFile("/home/alice/.tmp", 100, 0o644, 0, 0)
		if err := f.Rename(task, "/home/alice/.tmp", "/home/alice/real"); err != nil {
			t.Fatalf("rename: %v", err)
		}
		info, err := f.Stat(task, "/home/alice/real")
		if err != nil {
			t.Fatalf("stat: %v", err)
		}
		if info.UID != 0 {
			t.Errorf("uid after rename = %d, want 0", info.UID)
		}
	})
}

func TestHardLinkSharesInode(t *testing.T) {
	harness(t, 1, defCfg(), 0, 0, func(task *sim.Task, f *FS) {
		f.MustMkdirAll("/d", 0o755, 0, 0)
		f.MustWriteFile("/d/a", 9, 0o644, 0, 0)
		if err := f.Link(task, "/d/a", "/d/b"); err != nil {
			t.Fatalf("link: %v", err)
		}
		ia, _ := f.Stat(task, "/d/a")
		ib, _ := f.Stat(task, "/d/b")
		if ia.Ino != ib.Ino {
			t.Errorf("inos differ: %d vs %d", ia.Ino, ib.Ino)
		}
		if ia.Nlink != 2 {
			t.Errorf("nlink = %d, want 2", ia.Nlink)
		}
		if err := f.Unlink(task, "/d/a"); err != nil {
			t.Fatalf("unlink: %v", err)
		}
		if _, err := f.Stat(task, "/d/b"); err != nil {
			t.Errorf("surviving link broken: %v", err)
		}
	})
}

func TestOpenExclFailsOnExisting(t *testing.T) {
	harness(t, 1, defCfg(), 0, 0, func(task *sim.Task, f *FS) {
		f.MustMkdirAll("/d", 0o755, 0, 0)
		f.MustWriteFile("/d/f", 1, 0o644, 0, 0)
		if _, err := f.Open(task, "/d/f", OWrite|OCreate|OExcl, 0o600); !errors.Is(err, EEXIST) {
			t.Errorf("err = %v, want EEXIST", err)
		}
	})
}

func TestOpenTruncClearsFile(t *testing.T) {
	harness(t, 1, defCfg(), 0, 0, func(task *sim.Task, f *FS) {
		f.MustMkdirAll("/d", 0o755, 0, 0)
		f.MustWriteFile("/d/f", 2048, 0o644, 0, 0)
		file, err := f.Open(task, "/d/f", OWrite|OTrunc, 0)
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		info, _ := file.FStat(task)
		if info.Size != 0 {
			t.Errorf("size after O_TRUNC = %d, want 0", info.Size)
		}
		if err := file.Close(task); err != nil {
			t.Fatal(err)
		}
	})
}

func TestPermissionDeniedForOthers(t *testing.T) {
	harness(t, 1, defCfg(), 1000, 1000, func(task *sim.Task, f *FS) {
		f.MustMkdirAll("/secret", 0o700, 0, 0)
		f.MustWriteFile("/secret/f", 1, 0o600, 0, 0)
		if _, err := f.Stat(task, "/secret/f"); !errors.Is(err, EACCES) {
			t.Errorf("traverse err = %v, want EACCES", err)
		}
		f.MustMkdirAll("/shared", 0o755, 0, 0)
		f.MustWriteFile("/shared/rootfile", 1, 0o600, 0, 0)
		if _, err := f.Open(task, "/shared/rootfile", ORead, 0); !errors.Is(err, EACCES) {
			t.Errorf("open err = %v, want EACCES", err)
		}
		if err := f.Unlink(task, "/shared/rootfile"); !errors.Is(err, EACCES) {
			t.Errorf("unlink err = %v, want EACCES (no write perm on parent)", err)
		}
	})
}

func TestGroupPermissions(t *testing.T) {
	harness(t, 1, defCfg(), 1000, 500, func(task *sim.Task, f *FS) {
		f.MustMkdirAll("/g", 0o755, 0, 0)
		f.MustWriteFile("/g/grp", 1, 0o640, 0, 500)
		if _, err := f.Open(task, "/g/grp", ORead, 0); err != nil {
			t.Errorf("group read should succeed: %v", err)
		}
		if _, err := f.Open(task, "/g/grp", OWrite, 0); !errors.Is(err, EACCES) {
			t.Errorf("group write err = %v, want EACCES", err)
		}
	})
}

func TestStickyBitProtectsOthersFiles(t *testing.T) {
	harness(t, 1, defCfg(), 1000, 1000, func(task *sim.Task, f *FS) {
		f.MustMkdirAll("/tmp", 0o777|ModeSticky, 0, 0)
		f.MustWriteFile("/tmp/other", 1, 0o666, 2000, 2000)
		f.MustWriteFile("/tmp/mine", 1, 0o666, 1000, 1000)
		if err := f.Unlink(task, "/tmp/other"); !errors.Is(err, EACCES) {
			t.Errorf("sticky unlink err = %v, want EACCES", err)
		}
		if err := f.Unlink(task, "/tmp/mine"); err != nil {
			t.Errorf("unlink own file in sticky dir: %v", err)
		}
	})
}

func TestRootBypassesPermissions(t *testing.T) {
	harness(t, 1, defCfg(), 0, 0, func(task *sim.Task, f *FS) {
		f.MustMkdirAll("/locked", 0o000, 1000, 1000)
		f.MustWriteFile("/locked/f", 1, 0o000, 1000, 1000)
		if _, err := f.Stat(task, "/locked/f"); err != nil {
			t.Errorf("root stat: %v", err)
		}
		if err := f.Unlink(task, "/locked/f"); err != nil {
			t.Errorf("root unlink: %v", err)
		}
	})
}

func TestReadReturnsAvailableBytes(t *testing.T) {
	harness(t, 1, defCfg(), 0, 0, func(task *sim.Task, f *FS) {
		f.MustMkdirAll("/d", 0o755, 0, 0)
		f.MustWriteFile("/d/f", 100, 0o644, 0, 0)
		file, err := f.Open(task, "/d/f", ORead, 0)
		if err != nil {
			t.Fatal(err)
		}
		got, err := file.Read(task, 64)
		if err != nil || got != 64 {
			t.Errorf("read = %d, %v; want 64", got, err)
		}
		got, err = file.Read(task, 64)
		if err != nil || got != 36 {
			t.Errorf("read = %d, %v; want 36", got, err)
		}
		got, err = file.Read(task, 64)
		if err != nil || got != 0 {
			t.Errorf("read at EOF = %d, %v; want 0", got, err)
		}
		if err := file.Close(task); err != nil {
			t.Fatal(err)
		}
	})
}

func TestClosedFileOperationsFail(t *testing.T) {
	harness(t, 1, defCfg(), 0, 0, func(task *sim.Task, f *FS) {
		f.MustMkdirAll("/d", 0o755, 0, 0)
		file, err := f.Open(task, "/d/f", OWrite|OCreate, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		if err := file.Close(task); err != nil {
			t.Fatal(err)
		}
		if err := file.Write(task, 10); !errors.Is(err, EBADF) {
			t.Errorf("write err = %v, want EBADF", err)
		}
		if err := file.Close(task); !errors.Is(err, EBADF) {
			t.Errorf("double close err = %v, want EBADF", err)
		}
	})
}

func TestMkdirAndRmdir(t *testing.T) {
	harness(t, 1, defCfg(), 0, 0, func(task *sim.Task, f *FS) {
		if err := f.Mkdir(task, "/newdir", 0o755); err != nil {
			t.Fatalf("mkdir: %v", err)
		}
		if err := f.Mkdir(task, "/newdir", 0o755); !errors.Is(err, EEXIST) {
			t.Errorf("mkdir existing err = %v, want EEXIST", err)
		}
		f.MustWriteFile("/newdir/f", 1, 0o644, 0, 0)
		if err := f.Rmdir(task, "/newdir"); !errors.Is(err, ENOTEMPTY) {
			t.Errorf("rmdir nonempty err = %v, want ENOTEMPTY", err)
		}
		if err := f.Unlink(task, "/newdir/f"); err != nil {
			t.Fatal(err)
		}
		if err := f.Rmdir(task, "/newdir"); err != nil {
			t.Errorf("rmdir: %v", err)
		}
		if _, err := f.Stat(task, "/newdir"); !errors.Is(err, ENOENT) {
			t.Errorf("dir survives rmdir: %v", err)
		}
	})
}

func TestWriteConsumesTimeProportionalToSize(t *testing.T) {
	var small, large time.Duration
	harness(t, 1, defCfg(), 0, 0, func(task *sim.Task, f *FS) {
		f.MustMkdirAll("/d", 0o755, 0, 0)
		file, _ := f.Open(task, "/d/f", OWrite|OCreate, 0o644)
		t0 := task.Now()
		if err := file.Write(task, 1024); err != nil {
			t.Fatal(err)
		}
		small = task.Now().Sub(t0)
		t0 = task.Now()
		if err := file.Write(task, 64*1024); err != nil {
			t.Fatal(err)
		}
		large = task.Now().Sub(t0)
		if err := file.Close(task); err != nil {
			t.Fatal(err)
		}
	})
	if large < 15*small {
		t.Errorf("64KB write (%v) should cost much more than 1KB write (%v)", large, small)
	}
}

func TestUnlinkTruncationScalesWithSize(t *testing.T) {
	// §7: "The main part of unlink is spent physically truncating the file."
	elapsed := func(size int64) time.Duration {
		var d time.Duration
		harness(t, 1, defCfg(), 0, 0, func(task *sim.Task, f *FS) {
			f.MustMkdirAll("/d", 0o755, 0, 0)
			f.MustWriteFile("/d/f", size, 0o644, 0, 0)
			t0 := task.Now()
			if err := f.Unlink(task, "/d/f"); err != nil {
				t.Fatal(err)
			}
			d = task.Now().Sub(t0)
		})
		return d
	}
	small, big := elapsed(1024), elapsed(512*1024)
	if big < 30*small {
		t.Errorf("unlink(512KB)=%v should dwarf unlink(1KB)=%v", big, small)
	}
}

func TestLookupBlocksBehindRenameSwap(t *testing.T) {
	// A stat racing a rename of the same directory must wait for the
	// dentry swap and then observe the NEW binding — the mechanism that
	// synchronizes the attacker's detection with the start of the gedit
	// window (paper §6).
	k := sim.New(sim.Config{CPUs: 2, Quantum: 50 * time.Millisecond, Seed: 1})
	f := New(defCfg())
	f.MustMkdirAll("/home/alice", 0o777, 1000, 1000)
	f.MustWriteFile("/home/alice/real", 64, 0o644, 1000, 1000)
	f.MustWriteFile("/home/alice/.tmp", 64, 0o644, 0, 0)

	root := k.NewProcess("gedit", 0, 0)
	alice := k.NewProcess("attacker", 1000, 1000)
	var statUID = -1
	var statStart, statEnd, swapDone sim.Time
	k.Spawn(root, "rename", func(task *sim.Task) {
		if err := f.Rename(task, "/home/alice/.tmp", "/home/alice/real"); err != nil {
			t.Errorf("rename: %v", err)
		}
		swapDone = task.Now()
	})
	k.Spawn(alice, "stat", func(task *sim.Task) {
		// Delay so the stat lands inside the rename's swap phase
		// (the rename holds the directory locks from ~6.5µs to ~10.5µs).
		task.Compute(8 * time.Microsecond)
		statStart = task.Now()
		info, err := f.Stat(task, "/home/alice/real")
		statEnd = task.Now()
		if err != nil {
			t.Errorf("stat: %v", err)
			return
		}
		statUID = info.UID
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if statUID != 0 {
		t.Errorf("stat observed uid %d, want 0 (post-swap binding)", statUID)
	}
	if statEnd.Sub(statStart) < 2*time.Microsecond {
		t.Errorf("stat was not delayed by the rename swap: took %v", statEnd.Sub(statStart))
	}
	_ = swapDone
}

func TestChmodAppliesToPreResolvedInodeAfterRebinding(t *testing.T) {
	// TOCTTOU semantics at the heart of the cascade: when chmod's path
	// resolution completes before the attacker rebinds the name, the mode
	// change must land on the ORIGINAL inode even though the name now
	// points elsewhere. We orchestrate this deterministically: the chmod
	// thread resolves, then blocks on the inode semaphore held by a
	// long-running writer while the rebinding happens.
	k := sim.New(sim.Config{CPUs: 2, Quantum: 50 * time.Millisecond, Seed: 1})
	f := New(defCfg())
	f.MustMkdirAll("/etc", 0o755, 0, 0)
	f.MustWriteFile("/etc/passwd", 512, 0o644, 0, 0)
	f.MustMkdirAll("/w", 0o777, 0, 0)
	f.MustWriteFile("/w/f", 0, 0o600, 0, 0)

	rootp := k.NewProcess("root", 0, 0)
	origInfo, _ := f.LookupInfo("/w/f")
	k.Spawn(rootp, "writer", func(task *sim.Task) {
		file, err := f.Open(task, "/w/f", OWrite, 0)
		if err != nil {
			t.Errorf("open: %v", err)
			return
		}
		// Hold the inode semaphore for a long write.
		if err := file.Write(task, 10*1024*1024); err != nil {
			t.Errorf("write: %v", err)
		}
		if err := file.Close(task); err != nil {
			t.Errorf("close: %v", err)
		}
	})
	k.Spawn(rootp, "chmodder", func(task *sim.Task) {
		task.Compute(time.Microsecond) // let the writer grab the semaphore
		if err := f.Chmod(task, "/w/f", 0o444); err != nil {
			t.Errorf("chmod: %v", err)
		}
	})
	k.Spawn(rootp, "rebinder", func(task *sim.Task) {
		task.Compute(5 * time.Microsecond) // after chmod resolved and blocked
		if err := f.Unlink(task, "/w/f"); err != nil {
			t.Errorf("unlink: %v", err)
		}
		if err := f.Symlink(task, "/etc/passwd", "/w/f"); err != nil {
			t.Errorf("symlink: %v", err)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// /etc/passwd must be untouched; the orphaned original inode got 0444.
	pw, _ := f.LookupInfo("/etc/passwd")
	if pw.Mode != 0o644 {
		t.Errorf("/etc/passwd mode = %o, chmod leaked through the rebinding", pw.Mode)
	}
	_ = origInfo
}

func TestGuardVeto(t *testing.T) {
	harness(t, 1, defCfg(), 0, 0, func(task *sim.Task, f *FS) {
		f.MustMkdirAll("/d", 0o755, 0, 0)
		f.MustWriteFile("/d/f", 1, 0o644, 0, 0)
		f.SetGuard(vetoGuard{op: OpUnlink})
		if err := f.Unlink(task, "/d/f"); !errors.Is(err, EACCES) {
			t.Errorf("guarded unlink err = %v, want EACCES", err)
		}
		if _, err := f.Stat(task, "/d/f"); err != nil {
			t.Errorf("file should survive vetoed unlink: %v", err)
		}
		f.SetGuard(nil)
		if err := f.Unlink(task, "/d/f"); err != nil {
			t.Errorf("unlink after guard removal: %v", err)
		}
	})
}

type vetoGuard struct{ op Op }

func (g vetoGuard) Before(t *sim.Task, op Op, path, path2 string, cred Cred) error {
	if op == g.op {
		return pathErr(op.String(), path, EACCES)
	}
	return nil
}

func (g vetoGuard) After(*sim.Task, Op, string, string, Cred, error) {}

func TestSyscallTraceEvents(t *testing.T) {
	tr := &sim.SliceTracer{}
	k := sim.New(sim.Config{CPUs: 1, Quantum: 50 * time.Millisecond, Seed: 1, Tracer: tr})
	f := New(defCfg())
	f.MustMkdirAll("/d", 0o755, 0, 0)
	p := k.NewProcess("p", 0, 0)
	k.Spawn(p, "main", func(task *sim.Task) {
		file, err := f.Open(task, "/d/f", OWrite|OCreate, 0o644)
		if err != nil {
			t.Errorf("open: %v", err)
			return
		}
		_ = file.Write(task, 8)
		_ = file.Close(task)
		_, _ = f.Stat(task, "/d/f")
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range tr.Events {
		if e.Kind == sim.EvSyscallEnter {
			names = append(names, e.Label)
		}
	}
	want := []string{"open", "write", "close", "stat"}
	if len(names) != len(want) {
		t.Fatalf("syscalls = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("syscalls = %v, want %v", names, want)
		}
	}
	// The open must have emitted a name-bind with the creator's uid.
	sawBind := false
	for _, e := range tr.Events {
		if e.Kind == sim.EvNameBind && e.Path == "/d/f" && e.Arg == 0 {
			sawBind = true
		}
	}
	if !sawBind {
		t.Error("missing EvNameBind for created file")
	}
}

func TestAccess(t *testing.T) {
	harness(t, 1, defCfg(), 1000, 1000, func(task *sim.Task, f *FS) {
		f.MustMkdirAll("/d", 0o755, 0, 0)
		f.MustWriteFile("/d/mine", 1, 0o600, 1000, 1000)
		f.MustWriteFile("/d/roots", 1, 0o600, 0, 0)
		if err := f.Access(task, "/d/mine", 0o6); err != nil {
			t.Errorf("access own rw: %v", err)
		}
		if err := f.Access(task, "/d/roots", 0o4); !errors.Is(err, EACCES) {
			t.Errorf("access other's err = %v, want EACCES", err)
		}
		if err := f.Access(task, "/d/none", 0o4); !errors.Is(err, ENOENT) {
			t.Errorf("access missing err = %v, want ENOENT", err)
		}
	})
}

func TestAccessFollowsSymlink(t *testing.T) {
	// access(2) follows symlinks — which is exactly why access/open pairs
	// are TOCTTOU-prone: the answer describes whatever the name pointed
	// at during the check.
	harness(t, 1, defCfg(), 1000, 1000, func(task *sim.Task, f *FS) {
		f.MustMkdirAll("/d", 0o777, 0, 0)
		f.MustWriteFile("/d/open", 1, 0o666, 0, 0)
		f.MustSymlink("/d/open", "/d/link", 1000, 1000)
		if err := f.Access(task, "/d/link", 0o6); err != nil {
			t.Errorf("access through link: %v", err)
		}
	})
}

func TestReadDir(t *testing.T) {
	harness(t, 1, defCfg(), 0, 0, func(task *sim.Task, f *FS) {
		f.MustMkdirAll("/d", 0o755, 0, 0)
		f.MustWriteFile("/d/b", 1, 0o644, 0, 0)
		f.MustWriteFile("/d/a", 1, 0o644, 0, 0)
		f.MustMkdirAll("/d/c", 0o755, 0, 0)
		names, err := f.ReadDir(task, "/d")
		if err != nil {
			t.Fatalf("readdir: %v", err)
		}
		want := []string{"a", "b", "c"}
		if len(names) != len(want) {
			t.Fatalf("names = %v", names)
		}
		for i := range want {
			if names[i] != want[i] {
				t.Fatalf("names = %v, want %v (sorted)", names, want)
			}
		}
		if _, err := f.ReadDir(task, "/d/a"); !errors.Is(err, ENOTDIR) {
			t.Errorf("readdir of file err = %v, want ENOTDIR", err)
		}
	})
}

func TestReadDirPermission(t *testing.T) {
	harness(t, 1, defCfg(), 1000, 1000, func(task *sim.Task, f *FS) {
		f.MustMkdirAll("/secret", 0o311, 0, 0) // x but not r
		if _, err := f.ReadDir(task, "/secret"); !errors.Is(err, EACCES) {
			t.Errorf("readdir without r err = %v, want EACCES", err)
		}
	})
}

func TestRelativeSymlinkTarget(t *testing.T) {
	harness(t, 1, defCfg(), 0, 0, func(task *sim.Task, f *FS) {
		f.MustMkdirAll("/etc", 0o755, 0, 0)
		f.MustWriteFile("/etc/passwd", 512, 0o644, 0, 0)
		// Relative target resolved against the link's directory.
		f.MustSymlink("passwd", "/etc/alias", 0, 0)
		info, err := f.Stat(task, "/etc/alias")
		if err != nil {
			t.Fatalf("stat through relative link: %v", err)
		}
		if info.Size != 512 {
			t.Errorf("size = %d, want 512", info.Size)
		}
		// Relative target with parent traversal.
		f.MustMkdirAll("/etc/sub", 0o755, 0, 0)
		f.MustSymlink("../passwd", "/etc/sub/up", 0, 0)
		if _, err := f.Stat(task, "/etc/sub/up"); err != nil {
			t.Errorf("stat through ../ link: %v", err)
		}
		// Oracle agrees.
		if _, err := f.LookupInfo("/etc/sub/up"); err != nil {
			t.Errorf("oracle through ../ link: %v", err)
		}
		// Mid-path relative link.
		f.MustSymlink("sub", "/etc/s", 0, 0)
		f.MustWriteFile("/etc/sub/file", 9, 0o644, 0, 0)
		got, err := f.Stat(task, "/etc/s/file")
		if err != nil || got.Size != 9 {
			t.Errorf("mid-path relative link: %+v, %v", got, err)
		}
	})
}

func TestFchownIgnoresRebinding(t *testing.T) {
	// fchown applies to the descriptor's inode even after the name is
	// rebound to a symlink — the application-level TOCTTOU fix.
	harness(t, 1, defCfg(), 0, 0, func(task *sim.Task, f *FS) {
		f.MustMkdirAll("/etc", 0o755, 0, 0)
		f.MustWriteFile("/etc/passwd", 512, 0o644, 0, 0)
		f.MustMkdirAll("/d", 0o777, 0, 0)
		file, err := f.Open(task, "/d/f", OWrite|OCreate, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		// The "attacker": rebind the name under the open descriptor.
		if err := f.Unlink(task, "/d/f"); err != nil {
			t.Fatal(err)
		}
		if err := f.Symlink(task, "/etc/passwd", "/d/f"); err != nil {
			t.Fatal(err)
		}
		if err := file.Chown(task, 1000, 1000); err != nil {
			t.Fatalf("fchown: %v", err)
		}
		if err := file.Close(task); err != nil {
			t.Fatal(err)
		}
		pw, _ := f.LookupInfo("/etc/passwd")
		if pw.UID != 0 {
			t.Errorf("passwd uid = %d; fchown must not follow the rebound name", pw.UID)
		}
	})
}

func TestFchmodAndPermissions(t *testing.T) {
	harness(t, 1, defCfg(), 1000, 1000, func(task *sim.Task, f *FS) {
		f.MustMkdirAll("/d", 0o777, 0, 0)
		f.MustWriteFile("/d/mine", 1, 0o644, 1000, 1000)
		file, err := f.Open(task, "/d/mine", OWrite, 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := file.Chmod(task, 0o600); err != nil {
			t.Errorf("fchmod own file: %v", err)
		}
		if err := file.Chown(task, 1001, 1001); !errors.Is(err, EPERM) {
			t.Errorf("non-root fchown err = %v, want EPERM", err)
		}
		if err := file.Close(task); err != nil {
			t.Fatal(err)
		}
		if err := file.Chmod(task, 0o644); !errors.Is(err, EBADF) {
			t.Errorf("fchmod after close err = %v, want EBADF", err)
		}
	})
}
