package fs

import (
	"fmt"

	"tocttou/internal/sim"
)

// Op identifies a file-system operation for Guard hooks and tracing.
type Op uint8

// The operations the simulated kernel exposes.
const (
	OpStat Op = iota + 1
	OpLstat
	OpOpen
	OpCreate
	OpRead
	OpWrite
	OpClose
	OpUnlink
	OpSymlink
	OpLink
	OpRename
	OpChmod
	OpChown
	OpMkdir
	OpRmdir
	OpReadlink
	OpAccess
	OpReadDir
)

// opNames is an array (not a map) so the per-syscall String lookup is a
// bounds-checked index rather than a hash probe.
var opNames = [...]string{
	OpStat: "stat", OpLstat: "lstat", OpOpen: "open", OpCreate: "creat",
	OpRead: "read", OpWrite: "write", OpClose: "close", OpUnlink: "unlink",
	OpSymlink: "symlink", OpLink: "link", OpRename: "rename",
	OpChmod: "chmod", OpChown: "chown", OpMkdir: "mkdir", OpRmdir: "rmdir",
	OpReadlink: "readlink", OpAccess: "access", OpReadDir: "readdir",
}

// String returns the syscall name.
func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Guard is a kernel-level interposition point consulted around every
// operation. The defense package uses it to implement EDGI-style
// invariant guarding and RaceGuard-style protections; tests use it for
// fault injection.
//
// Path2 is the second path for two-path operations (rename newpath,
// symlink target); otherwise empty.
type Guard interface {
	// Before may veto the operation by returning a non-nil error, which
	// is returned to the caller unchanged.
	Before(t *sim.Task, op Op, path, path2 string, cred Cred) error
	// After observes the operation's outcome.
	After(t *sim.Task, op Op, path, path2 string, cred Cred, err error)
}

// FaultHook injects operation-level failures. When installed via
// Config.Faults it is consulted at every operation's entry (before the
// Guard and the operation body); a non-nil return is handed to the caller
// unchanged, so implementations return errno-carrying PathErrors. The
// fault layer (internal/fault) implements it with a dedicated per-round
// RNG stream; the interface lives here so fs does not import fault.
type FaultHook interface {
	InjectOp(t *sim.Task, op Op, path string) error
}

func (f *FS) guardBefore(t *sim.Task, op Op, path, path2 string, cred Cred) error {
	if f.cfg.Faults != nil {
		if err := f.cfg.Faults.InjectOp(t, op, path); err != nil {
			return err
		}
	}
	if f.guard == nil {
		return nil
	}
	return f.guard.Before(t, op, path, path2, cred)
}

func (f *FS) guardAfter(t *sim.Task, op Op, path, path2 string, cred Cred, err error) {
	if f.guard != nil {
		f.guard.After(t, op, path, path2, cred, err)
	}
}

// enter emits the syscall-entry trace event. The Tracing guard keeps the
// untraced hot path from building (and copying) an Event that the tracer
// nil-check inside Trace would discard.
func (f *FS) enter(t *sim.Task, op Op, path string) {
	if t.Tracing() {
		t.Trace(sim.Event{Kind: sim.EvSyscallEnter, Label: op.String(), Path: path})
	}
}

// exit emits the syscall-exit trace event carrying the errno.
func (f *FS) exit(t *sim.Task, op Op, path string, err error) {
	if t.Tracing() {
		t.Trace(sim.Event{Kind: sim.EvSyscallExit, Label: op.String(), Path: path, Arg: int64(ErrnoOf(err))})
	}
}
