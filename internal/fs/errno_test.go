package fs

import (
	"errors"
	"fmt"
	"testing"
)

func TestErrnoNames(t *testing.T) {
	cases := map[Errno]string{
		EPERM: "EPERM", ENOENT: "ENOENT", EACCES: "EACCES", EEXIST: "EEXIST",
		ENOTDIR: "ENOTDIR", EISDIR: "EISDIR", EINVAL: "EINVAL",
		ENOTEMPTY: "ENOTEMPTY", ELOOP: "ELOOP", EBADF: "EBADF",
	}
	for e, want := range cases {
		if e.Error() != want {
			t.Errorf("%d.Error() = %q, want %q", int(e), e.Error(), want)
		}
	}
	if Errno(999).Error() != "errno(999)" {
		t.Errorf("unknown errno = %q", Errno(999).Error())
	}
}

func TestPathError(t *testing.T) {
	err := pathErr("unlink", "/x/y", ENOENT)
	if !errors.Is(err, ENOENT) {
		t.Error("PathError must unwrap to its errno")
	}
	if got := err.Error(); got != "unlink /x/y: ENOENT" {
		t.Errorf("message = %q", got)
	}
}

func TestErrnoOf(t *testing.T) {
	if got := ErrnoOf(pathErr("x", "/p", EACCES)); got != EACCES {
		t.Errorf("ErrnoOf(PathError) = %v", got)
	}
	if got := ErrnoOf(fmt.Errorf("wrapped: %w", pathErr("x", "/p", ELOOP))); got != ELOOP {
		t.Errorf("ErrnoOf(wrapped) = %v", got)
	}
	if got := ErrnoOf(errors.New("plain")); got != 0 {
		t.Errorf("ErrnoOf(plain) = %v, want 0", got)
	}
	if got := ErrnoOf(nil); got != 0 {
		t.Errorf("ErrnoOf(nil) = %v, want 0", got)
	}
}

func TestStringers(t *testing.T) {
	if TypeRegular.String() != "file" || TypeDir.String() != "dir" || TypeSymlink.String() != "symlink" {
		t.Error("FileType names wrong")
	}
	if FileType(9).String() != "type(9)" {
		t.Errorf("unknown type = %q", FileType(9).String())
	}
	if OpUnlink.String() != "unlink" || OpAccess.String() != "access" || OpReadDir.String() != "readdir" {
		t.Error("Op names wrong")
	}
	if Op(99).String() != "op(99)" {
		t.Errorf("unknown op = %q", Op(99).String())
	}
}
