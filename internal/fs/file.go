package fs

import (
	"time"

	"tocttou/internal/sim"
)

// OpenFlag selects open(2) behavior.
type OpenFlag uint16

const (
	// ORead requests read access.
	ORead OpenFlag = 1 << iota
	// OWrite requests write access.
	OWrite
	// OCreate creates the file if it does not exist.
	OCreate
	// OTrunc truncates an existing regular file to zero length.
	OTrunc
	// OExcl makes OCreate fail if the file already exists.
	OExcl
	// OAppend opens for appending. Writes in this simulation always
	// append, so the flag is informational, but it documents intent at
	// call sites like the sendmail-style mailbox delivery.
	OAppend
)

// File is an open file description.
type File struct {
	fs     *FS
	node   *inode
	path   string
	flags  OpenFlag
	offset int64
	closed bool
}

// Path returns the path the file was opened with.
func (fl *File) Path() string { return fl.path }

// Open opens (and with OCreate possibly creates) a file. Creation inserts
// the new dentry while holding the parent directory's semaphore; the new
// file is owned by the calling process's credential — which is how vi,
// running as root, creates a root-owned file and opens its <open, chown>
// vulnerability window (paper §2.1).
func (f *FS) Open(t *sim.Task, path string, flags OpenFlag, mode Mode) (*File, error) {
	w := f.walkerFor(t)
	f.enter(t, OpOpen, path)
	file, err := f.openLocked(t, w, path, flags, mode)
	f.exit(t, OpOpen, path, err)
	f.guardAfter(t, OpOpen, path, "", w.cred, err)
	return file, err
}

// newFile hands out an open file description from the arena, growing it on
// first use. Slots are reused only after a Reset or Fork rewinds fileIdx,
// so a description handed out this round is never aliased within it.
func (f *FS) newFile(node *inode, path string, flags OpenFlag) *File {
	if f.fileIdx < len(f.fileArena) {
		fl := f.fileArena[f.fileIdx]
		f.fileIdx++
		*fl = File{fs: f, node: node, path: path, flags: flags}
		return fl
	}
	fl := &File{fs: f, node: node, path: path, flags: flags}
	f.fileArena = append(f.fileArena, fl)
	f.fileIdx++
	return fl
}

func (f *FS) openLocked(t *sim.Task, w *walker, path string, flags OpenFlag, mode Mode) (*File, error) {
	if err := f.guardBefore(t, OpOpen, path, "", w.cred); err != nil {
		return nil, err
	}
	if flags&(ORead|OWrite) == 0 {
		return nil, pathErr("open", path, EINVAL)
	}
	w.charge(f.cfg.Latency.SyscallEntry)
	res, err := w.resolve("open", path, true, 0)
	if err != nil {
		w.flush()
		return nil, err
	}
	if res.node == nil {
		if flags&OCreate == 0 {
			w.flush()
			return nil, pathErr("open", path, ENOENT)
		}
		if res.parent == nil || !res.parent.permOK(w.cred, permWrite|permExec) {
			w.flush()
			return nil, pathErr("open", path, EACCES)
		}
		w.flush()
		if err := res.parent.isem().AcquireInterruptible(t); err != nil {
			return nil, pathErr("open", path, EINTR)
		}
		// Re-check under the lock; a concurrent creator may have won.
		if existing := res.parent.children[res.name]; existing != nil {
			res.parent.isem().Release(t)
			return f.openExisting(t, w, path, existing, flags)
		}
		t.Compute(t.Kernel().JitterDuration(f.cfg.Latency.Create))
		n := f.newInode(TypeRegular, mode, w.cred.UID, w.cred.GID)
		res.parent.children[res.name] = n
		f.gen++
		t.Trace(sim.Event{Kind: sim.EvNameBind, Path: path, Arg: int64(n.uid)})
		res.parent.isem().Release(t)
		n.openCount++
		return f.newFile(n, path, flags), nil
	}
	if flags&(OCreate|OExcl) == OCreate|OExcl {
		w.flush()
		return nil, pathErr("open", path, EEXIST)
	}
	return f.openExisting(t, w, path, res.node, flags)
}

func (f *FS) openExisting(t *sim.Task, w *walker, path string, node *inode, flags OpenFlag) (*File, error) {
	if node.typ == TypeDir && flags&OWrite != 0 {
		w.flush()
		return nil, pathErr("open", path, EISDIR)
	}
	var want Mode
	if flags&ORead != 0 {
		want |= permRead
	}
	if flags&OWrite != 0 {
		want |= permWrite
	}
	if !node.permOK(w.cred, want) {
		w.flush()
		return nil, pathErr("open", path, EACCES)
	}
	w.charge(f.cfg.Latency.OpenExisting)
	w.flush()
	if flags&OTrunc != 0 && flags&OWrite != 0 && node.typ == TypeRegular && node.size > 0 {
		if err := node.isem().AcquireInterruptible(t); err != nil {
			return nil, pathErr("open", path, EINTR)
		}
		f.truncateLocked(t, node)
		node.isem().Release(t)
	}
	node.openCount++
	return f.newFile(node, path, flags), nil
}

// Write appends n bytes of synthetic content (sizes only). It holds the
// inode semaphore for the duration of the copy, and may stall on storage
// per the profile's dirty-throttling model — on a uniprocessor such a
// stall suspends the victim mid-window.
func (fl *File) Write(t *sim.Task, n int64) error {
	return fl.writeCommon(t, n, nil)
}

// WriteBytes appends real bytes (stored only when the FS tracks content).
func (fl *File) WriteBytes(t *sim.Task, b []byte) error {
	return fl.writeCommon(t, int64(len(b)), b)
}

// WriteChunks appends total bytes as a sequence of chunk-sized appends,
// bit-identical to the classic loop
//
//	for remaining > 0 {
//		n := min(chunk, remaining)
//		t.Compute(k.JitterDuration(prep(n)))   // omitted when prep is nil
//		if err := fl.Write(t, n); err != nil { break }
//	}
//
// but coalesced: runs of the loop that provably contain no pending kernel
// event and no semaphore contention are retired in bulk through
// sim.Stretch — one aggregate clock advance instead of per-chunk
// event-loop iterations — and, when the latency model is draw-free (no
// jitter, no stall probability, no fault hook), whole runs of full chunks
// are applied analytically in O(1). prep must be a pure function of its
// argument (the chunk's byte count), returning the user-space compute
// charged before that chunk, pre-jitter; nil charges none.
//
// It returns how many bytes were appended. On error the failed chunk's
// bytes are not counted, but its prep compute has been charged — a caller
// that retries (prog.Robustness) re-issues only the failed chunk's Write,
// exactly as the classic loop's retry of the failed call would.
func (fl *File) WriteChunks(t *sim.Task, total, chunk int64, prep func(n int64) time.Duration) (int64, error) {
	if total <= 0 {
		return 0, nil
	}
	if chunk <= 0 {
		return 0, pathErr("write", fl.path, EINVAL)
	}
	k := t.Kernel()
	var written int64
	for written < total {
		done, err := fl.writeChunksCoalesced(t, k, total-written, chunk, prep)
		written += done
		if err != nil || written >= total {
			return written, err
		}
		// Coalescing is unavailable here (a guard/tracer/chooser installed,
		// the inode semaphore contended, or the thread in a state the
		// stretch preconditions reject): run one chunk through the classic
		// stepped path — guaranteed progress — then try again.
		n := chunk
		if rem := total - written; n > rem {
			n = rem
		}
		if prep != nil {
			t.Compute(k.JitterDuration(prep(n)))
		}
		if err := fl.Write(t, n); err != nil {
			return written, err
		}
		written += n
	}
	return written, nil
}

// writeChunksCoalesced retires as many prep+write chunks as it can prove
// uncontended, returning how many bytes it applied. A zero count with nil
// error means coalescing is not currently available and the caller must
// make progress through the stepped path. The RNG draw sequence — prep
// jitter, fault-plan draw, write-cost jitter, stall Bernoulli (plus the
// stall length when one fires) — is replayed per chunk in exactly the
// stepped order, so seeded streams stay bit-identical; only the
// event-loop traffic between the draws is elided. Whenever an effect must
// be observable through the event loop (a pending event lands inside a
// segment, a stall fires and the thread genuinely blocks, an injected
// fault surfaces), the stretch is committed at that exact instant and the
// affected part executes through the real machinery, preserving the
// interleaving.
func (fl *File) writeChunksCoalesced(t *sim.Task, k *sim.Kernel, total, chunk int64, prep func(n int64) time.Duration) (int64, error) {
	f := fl.fs
	if f.guard != nil || k.ChooserActive() {
		return 0, nil
	}
	s, ok := t.BeginStretch()
	if !ok {
		return 0, nil
	}
	node := fl.node
	sem := node.isem()
	lat := &f.cfg.Latency
	// With no jitter, no stall model, and no fault hook, a chunk's two
	// segments are pure functions of its size and consume no draws, so
	// runs of full chunks collapse to closed-form arithmetic.
	deterministic := f.cfg.Faults == nil && !k.HasJitter() && lat.WriteStallProbPerKB <= 0
	var written int64
	for written < total {
		if !sem.Quiet() {
			break
		}
		if deterministic && total-written >= chunk && !fl.closed && fl.flags&OWrite != 0 {
			var prepFull time.Duration
			if prep != nil {
				prepFull = prep(chunk)
			}
			costFull := lat.WriteBase + perKB(lat.WritePerKB, chunk)
			if m := s.AdvanceBulk(prepFull, costFull, (total-written)/chunk); m > 0 {
				sem.AcquireReleasePairs(t, m)
				fl.applyChunks(chunk, m)
				written += m * chunk
				continue
			}
		}
		n := chunk
		if rem := total - written; n > rem {
			n = rem
		}
		// The chunk's user-space prep, inside the stretch. A pending event
		// inside the segment routes it through the real event loop
		// (AdvanceRouted) — other threads may have run there, so the chunk
		// continues coalesced only if the inode semaphore is still quiet;
		// otherwise (or when the stretch broke) the rest of the chunk runs
		// stepped: its fault draw has not happened yet, so Write replays
		// the stepped sequence exactly.
		if prep != nil {
			if d := k.JitterDuration(prep(n)); d > 0 {
				if r := s.Advance(d); r != sim.AdvanceCoalesced &&
					(r == sim.AdvanceBroken || !sem.Quiet()) {
					if err := fl.Write(t, n); err != nil {
						return written, err
					}
					written += n
					if s, ok = t.BeginStretch(); !ok {
						return written, nil
					}
					continue
				}
			}
		}
		// The write body, draw for draw in writeCommon's order.
		if f.cfg.Faults != nil {
			if err := f.cfg.Faults.InjectOp(t, OpWrite, fl.path); err != nil {
				s.Commit()
				return written, err
			}
		}
		if fl.closed || fl.flags&OWrite == 0 {
			s.Commit()
			return written, pathErr("write", fl.path, EBADF)
		}
		if err := sem.AcquireInterruptible(t); err != nil {
			// Unreachable: the semaphore is Quiet, so the acquire takes the
			// non-blocking fast path. Kept for parity with writeCommon.
			s.Commit()
			return written, pathErr("write", fl.path, EINTR)
		}
		// The media cost. When a pending event lands inside the copy the
		// segment runs through the event loop; waiters may then be queued
		// on the held inode semaphore, so the chunk's tail — stall model,
		// mutation, and a genuine Release — finishes stepped.
		cost := lat.WriteBase + perKB(lat.WritePerKB, n)
		if d := k.JitterDuration(cost); d > 0 && s.Advance(d) != sim.AdvanceCoalesced {
			fl.writeTailStepped(t, k, n)
			written += n
			if s, ok = t.BeginStretch(); !ok {
				return written, nil
			}
			continue
		}
		// The storage-stall Bernoulli; a fired stall genuinely blocks (with
		// the semaphore held, as writeCommon does), ending the stretch at
		// the post-copy instant.
		if p := lat.WriteStallProbPerKB * float64(n) / 1024.0; p > 0 && k.Bernoulli(p) {
			s.Commit()
			stall := k.LogNormalDuration(lat.StallMedian, 0.7)
			t.BlockIO(stall)
			fl.applyChunks(n, 1)
			sem.Release(t)
			written += n
			if s, ok = t.BeginStretch(); !ok {
				return written, nil
			}
			continue
		}
		// Content mutation and release, uncontended by construction.
		fl.applyChunks(n, 1)
		sem.Release(t)
		written += n
	}
	s.Commit()
	return written, nil
}

// writeTailStepped finishes a chunk whose media cost was already charged:
// the stall model, content mutation, and semaphore release — writeCommon's
// exact tail. The caller holds the inode semaphore and has verified no
// Chooser is installed.
func (fl *File) writeTailStepped(t *sim.Task, k *sim.Kernel, n int64) {
	lat := &fl.fs.cfg.Latency
	if p := lat.WriteStallProbPerKB * float64(n) / 1024.0; p > 0 && k.Bernoulli(p) {
		stall := k.LogNormalDuration(lat.StallMedian, 0.7)
		t.BlockIO(stall)
	}
	fl.applyChunks(n, 1)
	fl.node.isem().Release(t)
}

// applyChunks applies the content effect of m appended chunks of n bytes
// each: size, offset, and (when tracked) backing bytes.
func (fl *File) applyChunks(n, m int64) {
	node := fl.node
	if fl.fs.cfg.TrackContent {
		node.data = append(node.data, make([]byte, n*m)...)
	}
	node.size += n * m
	fl.offset += n * m
}

func (fl *File) writeCommon(t *sim.Task, n int64, b []byte) error {
	f := fl.fs
	f.enter(t, OpWrite, fl.path)
	err := func() error {
		cred := credOf(t)
		if err := f.guardBefore(t, OpWrite, fl.path, "", cred); err != nil {
			return err
		}
		if fl.closed {
			return pathErr("write", fl.path, EBADF)
		}
		if fl.flags&OWrite == 0 {
			return pathErr("write", fl.path, EBADF)
		}
		if n < 0 {
			return pathErr("write", fl.path, EINVAL)
		}
		node := fl.node
		if err := node.isem().AcquireInterruptible(t); err != nil {
			return pathErr("write", fl.path, EINTR)
		}
		cost := f.cfg.Latency.WriteBase + perKB(f.cfg.Latency.WritePerKB, n)
		t.Compute(t.Kernel().JitterDuration(cost))
		if p := f.cfg.Latency.WriteStallProbPerKB * float64(n) / 1024.0; p > 0 {
			if k := t.Kernel(); k.ChooserActive() {
				// Under a chooser the stall is a first-class Bernoulli
				// choice point with a fixed (median) duration, so schedule
				// exploration can weight both branches exactly.
				if k.ChooseBernoulli(sim.ChooseStall, p) {
					t.BlockIO(f.cfg.Latency.StallMedian)
				}
			} else if k.Bernoulli(p) {
				stall := k.LogNormalDuration(f.cfg.Latency.StallMedian, 0.7)
				t.BlockIO(stall)
			}
		}
		if f.cfg.TrackContent {
			if b != nil {
				node.data = append(node.data, b...)
			} else {
				node.data = append(node.data, make([]byte, n)...)
			}
		}
		node.size += n
		fl.offset += n
		node.isem().Release(t)
		return nil
	}()
	f.exit(t, OpWrite, fl.path, err)
	f.guardAfter(t, OpWrite, fl.path, "", credOf(t), err)
	return err
}

// Read consumes up to n bytes from the current offset and returns how many
// were available.
func (fl *File) Read(t *sim.Task, n int64) (int64, error) {
	f := fl.fs
	f.enter(t, OpRead, fl.path)
	var got int64
	err := func() error {
		cred := credOf(t)
		if err := f.guardBefore(t, OpRead, fl.path, "", cred); err != nil {
			return err
		}
		if fl.closed {
			return pathErr("read", fl.path, EBADF)
		}
		if fl.flags&ORead == 0 {
			return pathErr("read", fl.path, EBADF)
		}
		if n < 0 {
			return pathErr("read", fl.path, EINVAL)
		}
		avail := fl.node.size - fl.offset
		if avail < 0 {
			avail = 0
		}
		got = n
		if got > avail {
			got = avail
		}
		cost := f.cfg.Latency.ReadBase + perKB(f.cfg.Latency.ReadPerKB, got)
		t.Compute(t.Kernel().JitterDuration(cost))
		fl.offset += got
		return nil
	}()
	f.exit(t, OpRead, fl.path, err)
	f.guardAfter(t, OpRead, fl.path, "", credOf(t), err)
	return got, err
}

// FStat returns the open file's attributes without path resolution.
func (fl *File) FStat(t *sim.Task) (FileInfo, error) {
	f := fl.fs
	f.enter(t, OpStat, fl.path)
	var info FileInfo
	err := func() error {
		if fl.closed {
			return pathErr("fstat", fl.path, EBADF)
		}
		t.Compute(t.Kernel().JitterDuration(f.cfg.Latency.SyscallEntry + f.cfg.Latency.StatAttr))
		info = fl.node.info()
		return nil
	}()
	f.exit(t, OpStat, fl.path, err)
	return info, err
}

// Chown changes the open file's ownership by descriptor (fchown(2)).
// Because no path is resolved, a concurrent rebinding of the name cannot
// redirect it — this is the canonical application-level fix for the
// paper's <open, chown> and <rename, chown> pairs.
func (fl *File) Chown(t *sim.Task, uid, gid int) error {
	f := fl.fs
	f.enter(t, OpChown, fl.path)
	err := func() error {
		cred := credOf(t)
		if err := f.guardBefore(t, OpChown, fl.path, "", cred); err != nil {
			return err
		}
		if fl.closed {
			return pathErr("fchown", fl.path, EBADF)
		}
		if !cred.Root() {
			return pathErr("fchown", fl.path, EPERM)
		}
		if err := fl.node.isem().AcquireInterruptible(t); err != nil {
			return pathErr("fchown", fl.path, EINTR)
		}
		t.Compute(t.Kernel().JitterDuration(f.cfg.Latency.Chown))
		fl.node.uid = uid
		fl.node.gid = gid
		f.gen++
		t.Trace(sim.Event{Kind: sim.EvAttrChange, Label: "fchown", Path: fl.path, Arg: int64(uid)})
		fl.node.isem().Release(t)
		return nil
	}()
	f.exit(t, OpChown, fl.path, err)
	f.guardAfter(t, OpChown, fl.path, "", credOf(t), err)
	return err
}

// Chmod changes the open file's permission bits by descriptor (fchmod(2)).
func (fl *File) Chmod(t *sim.Task, mode Mode) error {
	f := fl.fs
	f.enter(t, OpChmod, fl.path)
	err := func() error {
		cred := credOf(t)
		if err := f.guardBefore(t, OpChmod, fl.path, "", cred); err != nil {
			return err
		}
		if fl.closed {
			return pathErr("fchmod", fl.path, EBADF)
		}
		if !cred.Root() && cred.UID != fl.node.uid {
			return pathErr("fchmod", fl.path, EPERM)
		}
		if err := fl.node.isem().AcquireInterruptible(t); err != nil {
			return pathErr("fchmod", fl.path, EINTR)
		}
		t.Compute(t.Kernel().JitterDuration(f.cfg.Latency.Chmod))
		fl.node.mode = mode
		f.gen++
		t.Trace(sim.Event{Kind: sim.EvAttrChange, Label: "fchmod", Path: fl.path, Arg: int64(mode)})
		fl.node.isem().Release(t)
		return nil
	}()
	f.exit(t, OpChmod, fl.path, err)
	f.guardAfter(t, OpChmod, fl.path, "", credOf(t), err)
	return err
}

// Sync flushes the file's dirty pages to storage, always blocking on I/O
// for a sampled service time. It does not hold the inode semaphore while
// waiting, so other namespace operations can proceed — which is exactly
// what makes an fsync-ing victim easy prey on a uniprocessor.
func (fl *File) Sync(t *sim.Task) error {
	f := fl.fs
	f.enter(t, OpWrite, fl.path)
	err := func() error {
		if fl.closed {
			return pathErr("fsync", fl.path, EBADF)
		}
		t.Compute(t.Kernel().JitterDuration(f.cfg.Latency.SyscallEntry))
		stall := f.cfg.Latency.StallMedian
		if !t.Kernel().ChooserActive() {
			stall = t.Kernel().LogNormalDuration(f.cfg.Latency.StallMedian, 0.5)
		}
		t.BlockIO(stall)
		return nil
	}()
	f.exit(t, OpWrite, fl.path, err)
	return err
}

// Close releases the file description. If the file was unlinked while
// open, the deferred physical truncation is paid here, while holding the
// inode semaphore — as the final iput does in a real kernel.
func (fl *File) Close(t *sim.Task) error {
	f := fl.fs
	f.enter(t, OpClose, fl.path)
	err := func() error {
		cred := credOf(t)
		if err := f.guardBefore(t, OpClose, fl.path, "", cred); err != nil {
			return err
		}
		if fl.closed {
			return pathErr("close", fl.path, EBADF)
		}
		fl.closed = true
		node := fl.node
		t.Compute(t.Kernel().JitterDuration(f.cfg.Latency.Close))
		node.openCount--
		if node.openCount == 0 && node.nlink == 0 && node.unlinked {
			node.isem().Acquire(t)
			f.truncateLocked(t, node)
			f.freeInode(node)
			node.isem().Release(t)
		}
		return nil
	}()
	f.exit(t, OpClose, fl.path, err)
	f.guardAfter(t, OpClose, fl.path, "", credOf(t), err)
	return err
}

func credOf(t *sim.Task) Cred {
	p := t.Process()
	return Cred{UID: p.UID, GID: p.GID}
}
