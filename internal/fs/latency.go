package fs

import "time"

// LatencyProfile calibrates the CPU cost of each file-system operation and
// the storage-stall model. The base numbers are expressed for a
// 3.2 GHz-class machine (the paper's multi-core, §6.2); Scale derives
// profiles for slower processors.
//
// The values are calibrated so that the microsecond figures the paper
// reports emerge from the simulation: a ~4 µs stat, a vi window that grows
// ≈16 µs per KB written, an unlink whose duration is dominated by
// truncation, and a rename whose directory-semaphore hold delays concurrent
// lookups of the same name.
type LatencyProfile struct {
	// SyscallEntry is the fixed kernel entry/exit overhead per syscall.
	SyscallEntry time.Duration
	// Lookup is the per-path-component dentry lookup cost.
	Lookup time.Duration
	// StatAttr is the cost of copying out inode attributes.
	StatAttr time.Duration

	// Create is the cost of allocating an inode and inserting a dentry.
	Create time.Duration
	// OpenExisting is the cost of opening an existing file.
	OpenExisting time.Duration
	// Close is the cost of closing a file descriptor (excluding any
	// deferred truncation of an unlinked file).
	Close time.Duration

	// WriteBase and WritePerKB model buffered (page-cache) writes.
	WriteBase  time.Duration
	WritePerKB time.Duration
	// ReadBase and ReadPerKB model cached reads.
	ReadBase  time.Duration
	ReadPerKB time.Duration

	// UnlinkDetach is the cost of removing the directory entry (the first
	// phase of unlink, after which the parent directory lock is released).
	UnlinkDetach time.Duration
	// TruncBase and TruncPerKB model physically truncating the file, the
	// dominant cost of unlink (§7: "The main part of unlink is spent
	// physically truncating the file").
	TruncBase  time.Duration
	TruncPerKB time.Duration

	// Symlink is the cost of creating a symbolic link.
	Symlink time.Duration
	// Readlink is the cost of reading a link target.
	Readlink time.Duration

	// RenamePre is rename work before the directory locks are taken,
	// RenameSwap is the dentry-swap phase performed while holding them
	// (the commit point is at its end), RenamePost is cleanup after the
	// locks are released.
	RenamePre  time.Duration
	RenameSwap time.Duration
	RenamePost time.Duration

	// Chmod and Chown are attribute-change costs (charged while holding
	// the target inode's semaphore).
	Chmod time.Duration
	Chown time.Duration
	// Mkdir is the directory-creation cost.
	Mkdir time.Duration

	// WriteStallProbPerKB is the per-KB probability that a buffered write
	// stalls on storage (dirty-page throttling). On a uniprocessor such a
	// stall suspends the victim inside its vulnerability window — one of
	// the paper's §4.1 success sources.
	WriteStallProbPerKB float64
	// StallMedian is the median stall length (log-normal, sigma 0.7).
	StallMedian time.Duration
}

// DefaultProfile returns the 3.2 GHz-class calibration.
func DefaultProfile() LatencyProfile {
	return LatencyProfile{
		SyscallEntry: 300 * time.Nanosecond,
		Lookup:       700 * time.Nanosecond,
		StatAttr:     600 * time.Nanosecond,

		Create:       4 * time.Microsecond,
		OpenExisting: 2 * time.Microsecond,
		Close:        1500 * time.Nanosecond,

		WriteBase:  2 * time.Microsecond,
		WritePerKB: 800 * time.Nanosecond,
		ReadBase:   1500 * time.Nanosecond,
		ReadPerKB:  500 * time.Nanosecond,

		UnlinkDetach: 2500 * time.Nanosecond,
		TruncBase:    2 * time.Microsecond,
		TruncPerKB:   600 * time.Nanosecond,

		Symlink:  2500 * time.Nanosecond,
		Readlink: time.Microsecond,

		RenamePre:  2 * time.Microsecond,
		RenameSwap: 4 * time.Microsecond,
		RenamePost: 7 * time.Microsecond,

		Chmod: 1800 * time.Nanosecond,
		Chown: 2200 * time.Nanosecond,
		Mkdir: 4 * time.Microsecond,

		WriteStallProbPerKB: 0,
		StallMedian:         4 * time.Millisecond,
	}
}

// Scale returns a copy of the profile with every CPU cost multiplied by
// factor (e.g. 1.88 for a 1.7 GHz machine relative to the 3.2 GHz base).
// Storage-stall parameters are unchanged: disks do not get slower because
// the CPU does.
func (p LatencyProfile) Scale(factor float64) LatencyProfile {
	s := func(d time.Duration) time.Duration {
		return time.Duration(float64(d) * factor)
	}
	q := p
	q.SyscallEntry = s(p.SyscallEntry)
	q.Lookup = s(p.Lookup)
	q.StatAttr = s(p.StatAttr)
	q.Create = s(p.Create)
	q.OpenExisting = s(p.OpenExisting)
	q.Close = s(p.Close)
	q.WriteBase = s(p.WriteBase)
	q.WritePerKB = s(p.WritePerKB)
	q.ReadBase = s(p.ReadBase)
	q.ReadPerKB = s(p.ReadPerKB)
	q.UnlinkDetach = s(p.UnlinkDetach)
	q.TruncBase = s(p.TruncBase)
	q.TruncPerKB = s(p.TruncPerKB)
	q.Symlink = s(p.Symlink)
	q.Readlink = s(p.Readlink)
	q.RenamePre = s(p.RenamePre)
	q.RenameSwap = s(p.RenameSwap)
	q.RenamePost = s(p.RenamePost)
	q.Chmod = s(p.Chmod)
	q.Chown = s(p.Chown)
	q.Mkdir = s(p.Mkdir)
	return q
}

// perKB multiplies a per-KB cost by a byte count.
func perKB(perKB time.Duration, bytes int64) time.Duration {
	return time.Duration(float64(perKB) * float64(bytes) / 1024.0)
}
