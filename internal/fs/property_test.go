package fs

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"tocttou/internal/sim"
)

// modelFile mirrors what the simulated FS should believe about one name.
type modelFile struct {
	typ    FileType
	uid    int
	gid    int
	mode   Mode
	size   int64
	target string
}

// TestNamespaceAgainstModel drives a random operation sequence against
// both the simulated FS and a trivial reference model of a flat directory,
// then cross-checks every name after each operation. This is the
// property-based safety net for the namespace semantics all the attack
// dynamics depend on.
func TestNamespaceAgainstModel(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			runNamespaceModel(t, seed, 400)
		})
	}
}

func runNamespaceModel(t *testing.T, seed int64, steps int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	k := sim.New(sim.Config{CPUs: 1, Quantum: time.Second, Seed: seed})
	f := New(Config{Latency: DefaultProfile()})
	f.MustMkdirAll("/d", 0o777, 0, 0)
	f.MustWriteFile("/ext", 64, 0o644, 0, 0)

	model := map[string]*modelFile{}
	names := []string{"a", "b", "c", "dd", "e"}
	path := func(n string) string { return "/d/" + n }

	p := k.NewProcess("fuzzer", 0, 0)
	k.Spawn(p, "fuzz", func(task *sim.Task) {
		for i := 0; i < steps; i++ {
			n := names[rng.Intn(len(names))]
			switch rng.Intn(7) {
			case 0: // create
				fh, err := f.Open(task, path(n), OWrite|OCreate|OTrunc, 0o644)
				if err != nil {
					if model[n] != nil && model[n].typ == TypeDir {
						continue
					}
					if errors.Is(err, ELOOP) {
						continue // created through a dangling/looping symlink
					}
					if m := model[n]; m != nil && m.typ == TypeSymlink {
						continue // followed the link elsewhere; model stays flat
					}
					t.Fatalf("step %d: create %s: %v", i, n, err)
				}
				size := int64(rng.Intn(8192))
				if err := fh.Write(task, size); err != nil {
					t.Fatalf("step %d: write: %v", i, err)
				}
				if err := fh.Close(task); err != nil {
					t.Fatalf("step %d: close: %v", i, err)
				}
				switch m := model[n]; {
				case m == nil:
					model[n] = &modelFile{typ: TypeRegular, uid: 0, gid: 0, mode: 0o644, size: size}
				case m.typ == TypeRegular:
					// O_TRUNC replaced content in place; the inode (and
					// any hard links to it) keeps uid/mode.
					m.size = size
				}
			case 1: // unlink
				err := f.Unlink(task, path(n))
				if model[n] == nil {
					if !errors.Is(err, ENOENT) {
						t.Fatalf("step %d: unlink missing %s: err=%v, want ENOENT", i, n, err)
					}
				} else if err != nil {
					t.Fatalf("step %d: unlink %s: %v", i, n, err)
				} else {
					delete(model, n)
				}
			case 2: // symlink to /ext
				err := f.Symlink(task, "/ext", path(n))
				if model[n] != nil {
					if !errors.Is(err, EEXIST) {
						t.Fatalf("step %d: symlink over %s: err=%v, want EEXIST", i, n, err)
					}
				} else if err != nil {
					t.Fatalf("step %d: symlink %s: %v", i, n, err)
				} else {
					model[n] = &modelFile{typ: TypeSymlink, uid: 0, gid: 0, mode: 0o777, target: "/ext", size: 4}
				}
			case 3: // rename
				m2 := names[rng.Intn(len(names))]
				err := f.Rename(task, path(n), path(m2))
				switch {
				case model[n] == nil:
					if !errors.Is(err, ENOENT) {
						t.Fatalf("step %d: rename missing %s: err=%v", i, n, err)
					}
				case err != nil:
					t.Fatalf("step %d: rename %s->%s: %v", i, n, m2, err)
				default:
					model[m2] = model[n] // same inode moves
					if m2 != n {
						delete(model, n)
					}
				}
			case 4: // chown (no follow for symlinks in the model: use Lstat semantics via regular chown only on non-symlinks)
				if m := model[n]; m != nil && m.typ == TypeRegular {
					uid := rng.Intn(3) * 1000
					if err := f.Chown(task, path(n), uid, uid); err != nil {
						t.Fatalf("step %d: chown %s: %v", i, n, err)
					}
					m.uid, m.gid = uid, uid
				}
			case 5: // chmod
				if m := model[n]; m != nil && m.typ == TypeRegular {
					mode := Mode(0o600 + rng.Intn(0o200))
					if err := f.Chmod(task, path(n), mode); err != nil {
						t.Fatalf("step %d: chmod %s: %v", i, n, err)
					}
					m.mode = mode
				}
			case 6: // hard link
				m2 := names[rng.Intn(len(names))]
				err := f.Link(task, path(n), path(m2))
				switch {
				case model[n] == nil:
					if !errors.Is(err, ENOENT) {
						t.Fatalf("step %d: link missing %s: err=%v", i, n, err)
					}
				case model[m2] != nil:
					if !errors.Is(err, EEXIST) {
						t.Fatalf("step %d: link onto %s: err=%v", i, m2, err)
					}
				case err != nil:
					t.Fatalf("step %d: link %s->%s: %v", i, n, m2, err)
				default:
					model[m2] = model[n] // hard links share the inode
				}
			}
			checkModel(t, task, f, model, names, path, i)
			if t.Failed() {
				return
			}
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func checkModel(t *testing.T, task *sim.Task, f *FS, model map[string]*modelFile, names []string, path func(string) string, step int) {
	t.Helper()
	for _, n := range names {
		info, err := f.Lstat(task, path(n))
		m := model[n]
		if m == nil {
			if !errors.Is(err, ENOENT) {
				t.Errorf("step %d: %s should be absent, got %+v err=%v", step, n, info, err)
			}
			continue
		}
		if err != nil {
			t.Errorf("step %d: %s should exist: %v", step, n, err)
			continue
		}
		if info.Type != m.typ {
			t.Errorf("step %d: %s type = %v, want %v", step, n, info.Type, m.typ)
		}
		if m.typ == TypeRegular {
			if info.Size != m.size {
				t.Errorf("step %d: %s size = %d, want %d", step, n, info.Size, m.size)
			}
			if info.UID != m.uid {
				t.Errorf("step %d: %s uid = %d, want %d", step, n, info.UID, m.uid)
			}
			if info.Mode != m.mode {
				t.Errorf("step %d: %s mode = %o, want %o", step, n, info.Mode, m.mode)
			}
		}
		if m.typ == TypeSymlink && info.Target != m.target {
			t.Errorf("step %d: %s target = %q, want %q", step, n, info.Target, m.target)
		}
	}
}

// TestConcurrentNamespaceStress hammers one directory from several threads
// on several CPUs: the invariant is that the FS never deadlocks, never
// corrupts the tree (root stays resolvable), and inode accounting stays
// consistent at the end.
func TestConcurrentNamespaceStress(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		k := sim.New(sim.Config{CPUs: 4, Quantum: time.Millisecond, Seed: seed})
		f := New(Config{Latency: DefaultProfile()})
		f.MustMkdirAll("/d", 0o777, 0, 0)
		p := k.NewProcess("stress", 0, 0)
		for w := 0; w < 4; w++ {
			w := w
			k.Spawn(p, fmt.Sprintf("w%d", w), func(task *sim.Task) {
				rng := rand.New(rand.NewSource(seed*100 + int64(w)))
				name := fmt.Sprintf("/d/f%d", w)
				other := fmt.Sprintf("/d/f%d", (w+1)%4)
				for i := 0; i < 200; i++ {
					switch rng.Intn(5) {
					case 0:
						if fh, err := f.Open(task, name, OWrite|OCreate, 0o644); err == nil {
							_ = fh.Write(task, int64(rng.Intn(4096)))
							_ = fh.Close(task)
						}
					case 1:
						_ = f.Unlink(task, name)
					case 2:
						_ = f.Symlink(task, other, name)
					case 3:
						_ = f.Rename(task, name, other)
					case 4:
						_, _ = f.Stat(task, other)
					}
				}
			})
		}
		if err := k.Run(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if _, err := f.LookupInfo("/d"); err != nil {
			t.Fatalf("seed %d: directory lost: %v", seed, err)
		}
		if f.InodeCount() < 2 {
			t.Fatalf("seed %d: inode accounting broken: %d", seed, f.InodeCount())
		}
	}
}

// TestTimedResolverMatchesOracle cross-checks the charged, lock-aware
// resolver against the untimed fixture resolver on randomized trees with
// symlinks: both must agree on existence and identity for every probe.
func TestTimedResolverMatchesOracle(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		k := sim.New(sim.Config{CPUs: 1, Quantum: time.Second, Seed: seed})
		f := New(Config{Latency: DefaultProfile()})

		// Random tree: directories, files, and symlinks to random paths.
		var paths []string
		dirs := []string{"/"}
		for i := 0; i < 40; i++ {
			parent := dirs[rng.Intn(len(dirs))]
			name := fmt.Sprintf("n%d", i)
			p := parent + name
			if parent != "/" {
				p = parent + "/" + name
			}
			switch rng.Intn(3) {
			case 0:
				f.MustMkdirAll(p, 0o755, 0, 0)
				dirs = append(dirs, p)
			case 1:
				f.MustWriteFile(p, int64(rng.Intn(1000)), 0o644, 0, 0)
			case 2:
				target := "/nowhere"
				if len(paths) > 0 {
					target = paths[rng.Intn(len(paths))]
				}
				f.MustSymlink(target, p, 0, 0)
			}
			paths = append(paths, p)
		}

		p := k.NewProcess("probe", 0, 0)
		k.Spawn(p, "probe", func(task *sim.Task) {
			for _, probe := range paths {
				timedInfo, timedErr := f.Stat(task, probe)
				oracleInfo, oracleErr := f.LookupInfo(probe)
				if (timedErr == nil) != (oracleErr == nil) {
					t.Errorf("seed %d: %s: timed err %v vs oracle err %v",
						seed, probe, timedErr, oracleErr)
					continue
				}
				if timedErr == nil && timedInfo.Ino != oracleInfo.Ino {
					t.Errorf("seed %d: %s: timed ino %d vs oracle ino %d",
						seed, probe, timedInfo.Ino, oracleInfo.Ino)
				}
				// ELOOP classification must agree too.
				if timedErr != nil && errors.Is(timedErr, ELOOP) != errors.Is(oracleErr, ELOOP) {
					t.Errorf("seed %d: %s: loop classification differs: %v vs %v",
						seed, probe, timedErr, oracleErr)
				}
			}
		})
		if err := k.Run(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

// TestCrossDirectoryRenameNoDeadlock drives opposing renames between two
// directories from two CPUs: the ino-ordered parent locking must never
// ABBA-deadlock.
func TestCrossDirectoryRenameNoDeadlock(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		k := sim.New(sim.Config{CPUs: 2, Quantum: time.Millisecond, Seed: seed})
		f := New(Config{Latency: DefaultProfile()})
		f.MustMkdirAll("/a", 0o777, 0, 0)
		f.MustMkdirAll("/b", 0o777, 0, 0)
		f.MustWriteFile("/a/x", 16, 0o644, 0, 0)
		f.MustWriteFile("/b/y", 16, 0o644, 0, 0)
		p := k.NewProcess("movers", 0, 0)
		k.Spawn(p, "ab", func(task *sim.Task) {
			for i := 0; i < 100; i++ {
				_ = f.Rename(task, "/a/x", "/b/x")
				_ = f.Rename(task, "/b/x", "/a/x")
			}
		})
		k.Spawn(p, "ba", func(task *sim.Task) {
			for i := 0; i < 100; i++ {
				_ = f.Rename(task, "/b/y", "/a/y")
				_ = f.Rename(task, "/a/y", "/b/y")
			}
		})
		if err := k.Run(); err != nil {
			t.Fatalf("seed %d: %v (ABBA deadlock?)", seed, err)
		}
	}
}
