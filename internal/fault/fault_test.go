package fault

import (
	"errors"
	"testing"
	"time"

	"tocttou/internal/fs"
	"tocttou/internal/sim"
)

// inTask runs fn as a single root thread on a throwaway kernel, for the
// injector methods that need a *sim.Task (tracing).
func inTask(t *testing.T, fn func(*sim.Task)) {
	t.Helper()
	k := sim.New(sim.Config{CPUs: 1, Quantum: time.Millisecond, Seed: 1})
	p := k.NewProcess("test", 0, 0)
	k.Spawn(p, "main", fn)
	if err := k.Run(); err != nil {
		t.Fatalf("kernel: %v", err)
	}
}

func TestPlanValidate(t *testing.T) {
	cases := []struct {
		name string
		plan Plan
		bad  string // offending rate name, "" = valid
	}{
		{"zero", Plan{}, ""},
		{"all max", Plan{FSRate: 1, SemIntrRate: 1, KillVictimRate: 1, KillAttackerRate: 1}, ""},
		{"fs negative", Plan{FSRate: -0.1}, "FSRate"},
		{"fs above one", Plan{FSRate: 1.5}, "FSRate"},
		{"sem above one", Plan{SemIntrRate: 2}, "SemIntrRate"},
		{"kill victim negative", Plan{KillVictimRate: -1}, "KillVictimRate"},
		{"kill attacker above one", Plan{KillAttackerRate: 1.01}, "KillAttackerRate"},
	}
	for _, c := range cases {
		err := c.plan.Validate()
		if c.bad == "" {
			if err != nil {
				t.Errorf("%s: Validate() = %v, want nil", c.name, err)
			}
			continue
		}
		var re *RateError
		if !errors.As(err, &re) {
			t.Errorf("%s: Validate() = %v, want *RateError", c.name, err)
			continue
		}
		if re.Name != c.bad {
			t.Errorf("%s: RateError.Name = %q, want %q", c.name, re.Name, c.bad)
		}
	}
}

func TestPlanEnabled(t *testing.T) {
	if (Plan{}).Enabled() {
		t.Error("zero plan reports Enabled")
	}
	// A seed alone injects nothing: seeded-but-rateless plans must stay on
	// the fault-free fast path.
	if (Plan{Seed: 99, SemIntrDelay: time.Microsecond}).Enabled() {
		t.Error("rateless plan reports Enabled")
	}
	for _, p := range []Plan{
		{FSRate: 0.01},
		{SemIntrRate: 0.01},
		{KillVictimRate: 0.01},
		{KillAttackerRate: 0.01},
	} {
		if !p.Enabled() {
			t.Errorf("plan %+v reports disabled", p)
		}
	}
}

func TestMixSeedSpread(t *testing.T) {
	// Round seeds differ by a fixed stride in real campaigns; the mixed
	// stream seeds must still be pairwise distinct.
	const stride = 1_000_003
	seen := make(map[int64]bool)
	for i := int64(0); i < 1000; i++ {
		s := mixSeed(42, 7001+i*stride)
		if seen[s] {
			t.Fatalf("mixSeed collision at round %d", i)
		}
		seen[s] = true
	}
	if mixSeed(1, 100) == mixSeed(2, 100) {
		t.Error("plan seed does not perturb the stream")
	}
}

func TestDrawKillDeterministic(t *testing.T) {
	plan := Plan{KillVictimRate: 0.5, KillWindow: time.Millisecond}
	a := plan.NewInjector(31)
	b := plan.NewInjector(31)
	for i := 0; i < 200; i++ {
		ad, ak := a.DrawKill(0.5)
		bd, bk := b.DrawKill(0.5)
		if ad != bd || ak != bk {
			t.Fatalf("draw %d diverged: (%v,%v) vs (%v,%v)", i, ad, ak, bd, bk)
		}
		if ak && ad >= time.Millisecond {
			t.Fatalf("draw %d: instant %v outside the kill window", i, ad)
		}
	}
}

func TestZeroRateDrawsConsumeNothing(t *testing.T) {
	// A zero-rate DrawKill and a rateless SemBlocked must not advance the
	// stream: the next real draw has to match an injector that skipped
	// them entirely.
	plan := Plan{KillAttackerRate: 0.5}
	a := plan.NewInjector(77)
	b := plan.NewInjector(77)
	for i := 0; i < 50; i++ {
		a.DrawKill(0)
	}
	if _, ok := a.SemBlocked(nil, "inode"); ok {
		t.Fatal("rateless SemBlocked armed an interruption")
	}
	for i := 0; i < 100; i++ {
		ad, ak := a.DrawKill(0.5)
		bd, bk := b.DrawKill(0.5)
		if ad != bd || ak != bk {
			t.Fatalf("draw %d diverged after zero-rate draws: (%v,%v) vs (%v,%v)", i, ad, ak, bd, bk)
		}
	}
}

func TestInjectOpErrnosFitOperation(t *testing.T) {
	inTask(t, func(task *sim.Task) {
		cases := []struct {
			op   fs.Op
			want []fs.Errno
		}{
			{fs.OpWrite, []fs.Errno{fs.ENOSPC, fs.EIO}},
			{fs.OpCreate, []fs.Errno{fs.ENOSPC, fs.EIO}},
			{fs.OpOpen, []fs.Errno{fs.EMFILE, fs.EIO}},
			{fs.OpStat, []fs.Errno{fs.EIO}},
			{fs.OpUnlink, []fs.Errno{fs.EIO}},
		}
		for _, c := range cases {
			in := Plan{FSRate: 1}.NewInjector(5)
			seen := make(map[fs.Errno]int)
			for i := 0; i < 64; i++ {
				err := in.InjectOp(task, c.op, "/victim")
				if err == nil {
					t.Fatalf("%v: FSRate=1 injected nothing", c.op)
				}
				var pe *fs.PathError
				if !errors.As(err, &pe) {
					t.Fatalf("%v: injected %T, want *fs.PathError", c.op, err)
				}
				ok := false
				for _, e := range c.want {
					if errors.Is(err, e) {
						seen[e]++
						ok = true
					}
				}
				if !ok {
					t.Fatalf("%v: injected errno %v, want one of %v", c.op, pe.Err, c.want)
				}
			}
			for _, e := range c.want {
				if seen[e] == 0 {
					t.Errorf("%v: errno %v never drawn in 64 injections", c.op, e)
				}
			}
			if got := in.Counters.FSErrors; got != 64 {
				t.Errorf("%v: FSErrors = %d, want 64", c.op, got)
			}
		}
	})
}

func TestInjectOpRespectsOpFilter(t *testing.T) {
	inTask(t, func(task *sim.Task) {
		in := Plan{FSRate: 1, FSOps: []fs.Op{fs.OpOpen}}.NewInjector(9)
		if err := in.InjectOp(task, fs.OpWrite, "/x"); err != nil {
			t.Fatalf("filtered-out op injected: %v", err)
		}
		if err := in.InjectOp(task, fs.OpOpen, "/x"); err == nil {
			t.Fatal("listed op not injected at FSRate=1")
		}
		if in.Counters.FSErrors != 1 {
			t.Errorf("FSErrors = %d, want 1", in.Counters.FSErrors)
		}
	})
}

func TestSemBlockedDelayDefaults(t *testing.T) {
	in := Plan{SemIntrRate: 1}.NewInjector(3)
	d, ok := in.SemBlocked(nil, "inode")
	if !ok || d != DefaultSemIntrDelay {
		t.Errorf("SemBlocked = (%v, %v), want (%v, true)", d, ok, DefaultSemIntrDelay)
	}
	in = Plan{SemIntrRate: 1, SemIntrDelay: 3 * time.Microsecond}.NewInjector(3)
	if d, _ := in.SemBlocked(nil, "inode"); d != 3*time.Microsecond {
		t.Errorf("SemBlocked delay = %v, want 3µs", d)
	}
	in.SemInterrupted(nil)
	if in.Counters.SemInterrupts != 1 {
		t.Errorf("SemInterrupts = %d, want 1", in.Counters.SemInterrupts)
	}
}

func TestCountersAddAndTotal(t *testing.T) {
	var c Counters
	c.Add(Counters{FSErrors: 1, SemInterrupts: 2, Kills: 3, Restarts: 4})
	c.Add(Counters{FSErrors: 10})
	want := Counters{FSErrors: 11, SemInterrupts: 2, Kills: 3, Restarts: 4}
	if c != want {
		t.Errorf("Counters = %+v, want %+v", c, want)
	}
	if c.Total() != 20 {
		t.Errorf("Total = %d, want 20", c.Total())
	}
}

func TestRestartDelayOrDefault(t *testing.T) {
	if d := (Plan{}).NewInjector(1).RestartDelayOrDefault(); d != DefaultKillWindow/10 {
		t.Errorf("default restart delay = %v, want %v", d, DefaultKillWindow/10)
	}
	in := Plan{RestartDelay: 5 * time.Millisecond}.NewInjector(1)
	if d := in.RestartDelayOrDefault(); d != 5*time.Millisecond {
		t.Errorf("restart delay = %v, want 5ms", d)
	}
}
