// Package fault is the deterministic, seed-driven fault-injection layer.
// A Plan describes which faults a round may suffer — operation-level errno
// failures in internal/fs, EINTR-style interruptions of semaphore waits in
// internal/sim, and mid-round kills (with optional restart) of the victim
// or attacker process — and NewInjector instantiates it for one round with
// a dedicated RNG stream.
//
// Determinism: the injector's stream is seeded from (Plan.Seed, roundSeed)
// through a splitmix64-style mixer and is consumed only by the injector's
// own decisions, in simulation order. It never touches the kernel RNG, the
// per-round scheduling stream, or the noise stream, so (a) two runs of the
// same round with the same plan make identical injections, and (b) a plan
// with every rate at zero consumes nothing and is bit-identical to running
// without a plan at all. See DESIGN.md's "Fault injection" chapter.
package fault

import (
	"math/rand"
	"time"

	"tocttou/internal/fs"
	"tocttou/internal/sim"
)

// DefaultKillWindow bounds the virtual-time instant of an injected kill
// when Plan.KillWindow is zero: kills land uniformly in [0, window).
const DefaultKillWindow = 200 * time.Millisecond

// DefaultSemIntrDelay is the virtual time between a thread blocking on an
// interruptible semaphore wait and the injected signal delivery, when
// Plan.SemIntrDelay is zero.
const DefaultSemIntrDelay = 50 * time.Microsecond

// Plan describes the faults one round may suffer. The zero value injects
// nothing and is exactly equivalent to running without fault injection.
type Plan struct {
	// Seed perturbs the per-round fault stream; rounds of one campaign
	// additionally mix in their own round seed, so every round draws an
	// independent deterministic stream.
	Seed int64

	// FSRate is the probability that any single eligible fs operation
	// fails with an injected errno (EIO, and ENOSPC/EMFILE where they fit
	// the operation). Range [0, 1].
	FSRate float64
	// FSOps restricts injection to these operations; empty means every
	// operation is eligible.
	FSOps []fs.Op

	// SemIntrRate is the probability that a blocked interruptible
	// semaphore wait has an EINTR-style interruption scheduled against it.
	// Range [0, 1].
	SemIntrRate float64
	// SemIntrDelay is the virtual time after blocking at which the
	// interruption is delivered (0 = DefaultSemIntrDelay). Waits that win
	// the semaphore earlier are not interrupted.
	SemIntrDelay time.Duration

	// KillVictimRate and KillAttackerRate are the per-round probabilities
	// that the victim (resp. attacker) process is killed mid-round, at a
	// uniform instant within KillWindow. Range [0, 1].
	KillVictimRate   float64
	KillAttackerRate float64
	// KillWindow bounds the kill instant (0 = DefaultKillWindow).
	KillWindow time.Duration
	// Restart relaunches a killed victim from the top of its program
	// after RestartDelay, modeling a supervised daemon; a killed attacker
	// always stays dead.
	Restart bool
	// RestartDelay is the virtual time between the kill and the restart
	// (0 = DefaultKillWindow/10).
	RestartDelay time.Duration
}

// Enabled reports whether the plan can inject anything at all. A disabled
// plan never allocates an injector, keeping fault-free rounds on the exact
// pre-fault code path.
func (p Plan) Enabled() bool {
	return p.FSRate > 0 || p.SemIntrRate > 0 || p.KillVictimRate > 0 || p.KillAttackerRate > 0
}

// Validate rejects out-of-range rates with a descriptive error.
func (p Plan) Validate() error {
	for _, r := range []struct {
		name string
		v    float64
	}{
		{"FSRate", p.FSRate},
		{"SemIntrRate", p.SemIntrRate},
		{"KillVictimRate", p.KillVictimRate},
		{"KillAttackerRate", p.KillAttackerRate},
	} {
		if r.v < 0 || r.v > 1 {
			return &RateError{Name: r.name, Value: r.v}
		}
	}
	return nil
}

// RateError reports a fault rate outside [0, 1].
type RateError struct {
	Name  string
	Value float64
}

// Error implements error.
func (e *RateError) Error() string {
	return "fault: " + e.Name + " must be in [0, 1]"
}

// Counters tallies the faults one round actually delivered. The struct is
// comparable and additive so campaign aggregation can fold it like every
// other per-round metric.
type Counters struct {
	// FSErrors counts operations failed with an injected errno.
	FSErrors int64
	// SemInterrupts counts EINTR interruptions actually delivered to
	// blocked semaphore waits (armed-but-stale deliveries do not count).
	SemInterrupts int64
	// Kills counts processes killed mid-round.
	Kills int64
	// Restarts counts victim relaunches after a kill.
	Restarts int64
}

// Add accumulates o into c.
func (c *Counters) Add(o Counters) {
	c.FSErrors += o.FSErrors
	c.SemInterrupts += o.SemInterrupts
	c.Kills += o.Kills
	c.Restarts += o.Restarts
}

// Total returns the number of faults of any kind.
func (c Counters) Total() int64 {
	return c.FSErrors + c.SemInterrupts + c.Kills + c.Restarts
}

// Injector is one round's instantiation of a Plan: a dedicated RNG stream
// plus the delivered-fault tally. It implements fs.FaultHook and
// sim.Interrupter. Not safe for concurrent use — one injector serves
// exactly one round on one worker, like the kernel it rides in.
type Injector struct {
	plan   Plan
	rng    *rand.Rand
	opMask uint32

	// Counters tallies what this round's injections delivered.
	Counters Counters
}

var (
	_ fs.FaultHook    = (*Injector)(nil)
	_ sim.Interrupter = (*Injector)(nil)
)

// NewInjector instantiates the plan for one round. The stream seed mixes
// the plan seed with the round seed so every (plan, round) pair draws an
// independent sequence, disjoint by construction from the kernel's
// scheduling stream (a separate generator that never shares state).
func (p Plan) NewInjector(roundSeed int64) *Injector {
	var mask uint32
	if len(p.FSOps) == 0 {
		mask = ^uint32(0)
	} else {
		for _, op := range p.FSOps {
			mask |= 1 << uint(op)
		}
	}
	return &Injector{
		plan:   p,
		rng:    rand.New(rand.NewSource(mixSeed(p.Seed, roundSeed))),
		opMask: mask,
	}
}

// mixSeed combines the plan and round seeds through a splitmix64 finalizer
// so nearby round seeds (which differ by a fixed stride) still produce
// uncorrelated fault streams.
func mixSeed(planSeed, roundSeed int64) int64 {
	z := uint64(planSeed)*0x9E3779B97F4A7C15 + uint64(roundSeed)
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z)
}

// Plan returns the plan the injector was built from.
func (in *Injector) Plan() Plan { return in.plan }

// InjectOp implements fs.FaultHook: with probability FSRate an eligible
// operation fails with an errno chosen for the operation kind. The
// injected failure is traced as an EvFault event and counted.
func (in *Injector) InjectOp(t *sim.Task, op fs.Op, path string) error {
	if in.plan.FSRate <= 0 || in.opMask&(1<<uint(op)) == 0 {
		return nil
	}
	if in.rng.Float64() >= in.plan.FSRate {
		return nil
	}
	errno := in.errnoFor(op)
	in.Counters.FSErrors++
	t.Trace(sim.Event{Kind: sim.EvFault, Label: "fs:" + errno.Error(), Path: path, Arg: int64(errno)})
	return &fs.PathError{Op: op.String(), Path: path, Err: errno}
}

// errnoFor picks the injected errno for an operation: writes run out of
// space or hit media errors, opens exhaust descriptors or hit media
// errors, everything else is a media error.
func (in *Injector) errnoFor(op fs.Op) fs.Errno {
	switch op {
	case fs.OpWrite, fs.OpCreate:
		if in.rng.Intn(2) == 0 {
			return fs.ENOSPC
		}
		return fs.EIO
	case fs.OpOpen:
		if in.rng.Intn(2) == 0 {
			return fs.EMFILE
		}
		return fs.EIO
	default:
		return fs.EIO
	}
}

// SemBlocked implements sim.Interrupter: with probability SemIntrRate the
// wait gets an interruption scheduled SemIntrDelay into the future.
func (in *Injector) SemBlocked(th *sim.Thread, sem string) (time.Duration, bool) {
	if in.plan.SemIntrRate <= 0 {
		return 0, false
	}
	if in.rng.Float64() >= in.plan.SemIntrRate {
		return 0, false
	}
	d := in.plan.SemIntrDelay
	if d <= 0 {
		d = DefaultSemIntrDelay
	}
	return d, true
}

// SemInterrupted implements sim.Interrupter, counting interruptions that
// were actually delivered.
func (in *Injector) SemInterrupted(th *sim.Thread) { in.Counters.SemInterrupts++ }

// DrawKill decides whether a process with the given per-round kill rate
// dies this round, and at which virtual-time instant. The two RNG draws
// (fire, instant) are consumed only when rate > 0, and the instant draw
// only when the kill fires, so disabling kills leaves the stream for the
// other fault kinds unchanged.
func (in *Injector) DrawKill(rate float64) (time.Duration, bool) {
	if rate <= 0 {
		return 0, false
	}
	if in.rng.Float64() >= rate {
		return 0, false
	}
	window := in.plan.KillWindow
	if window <= 0 {
		window = DefaultKillWindow
	}
	return time.Duration(in.rng.Int63n(int64(window))), true
}

// RestartDelayOrDefault returns the plan's restart delay with the default
// applied.
func (in *Injector) RestartDelayOrDefault() time.Duration {
	if in.plan.RestartDelay > 0 {
		return in.plan.RestartDelay
	}
	return DefaultKillWindow / 10
}
