package report

import (
	"fmt"
	"io"
	"strings"

	"tocttou/internal/metrics"
	"tocttou/internal/stats"
)

// meanSD formats a summary as "mean±sd", or "-" when empty.
func meanSD(s stats.Summary) string {
	if s.N() == 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f±%.1f", s.Mean(), s.Stdev())
}

// KernelMetricsTable renders the per-round kernel counter summaries of a
// set of sweep points, one row per point. labels and pts run in parallel.
func KernelMetricsTable(w io.Writer, title string, labels []string, pts []metrics.Point) error {
	tbl := &Table{
		Title: title,
		Headers: []string{
			"point", "rounds", "dispatch", "preempt", "trap", "tick",
			"sem-blk", "sem-wait µs", "busy µs", "idle µs",
		},
	}
	for i, p := range pts {
		tbl.AddRow(
			labels[i],
			fmt.Sprintf("%d", p.Rounds),
			meanSD(p.Dispatches),
			meanSD(p.Preemptions),
			meanSD(p.Traps),
			meanSD(p.Ticks),
			meanSD(p.SemBlocks),
			meanSD(p.SemWaitUs),
			meanSD(p.BusyUs),
			meanSD(p.IdleUs),
		)
	}
	return tbl.Render(w)
}

// LatencyMetricsTable renders the trace-derived latency summaries (window
// length, detection latency D, laxity L) of a set of sweep points.
func LatencyMetricsTable(w io.Writer, title string, labels []string, pts []metrics.Point) error {
	tbl := &Table{
		Title: title,
		Headers: []string{
			"point", "windows", "window µs", "races", "D µs", "L µs",
		},
	}
	for i, p := range pts {
		tbl.AddRow(
			labels[i],
			fmt.Sprintf("%d", p.WindowUs.N()),
			meanSD(p.WindowUs),
			fmt.Sprintf("%d", p.DUs.N()),
			meanSD(p.DUs),
			meanSD(p.LUs),
		)
	}
	return tbl.Render(w)
}

// FaultMetricsTable renders the per-round injected-fault summaries of a
// set of sweep points (see internal/fault); call it only when at least
// one point actually delivered faults.
func FaultMetricsTable(w io.Writer, title string, labels []string, pts []metrics.Point) error {
	tbl := &Table{
		Title: title,
		Headers: []string{
			"point", "fs-err", "eintr", "kills", "restarts",
		},
	}
	for i, p := range pts {
		tbl.AddRow(
			labels[i],
			meanSD(p.FaultFSErrors),
			meanSD(p.FaultSemInterrupts),
			meanSD(p.FaultKills),
			meanSD(p.FaultRestarts),
		)
	}
	return tbl.Render(w)
}

// RenderHist draws a log₂ latency histogram as labeled count bars. Empty
// buckets between the first and last populated ones still print, so the
// distribution's shape (including gaps) is visible.
func RenderHist(w io.Writer, title string, h metrics.Hist) error {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (n=%d)\n", title, h.N())
	if h.N() == 0 {
		b.WriteString("  (no samples)\n")
		_, err := io.WriteString(w, b.String())
		return err
	}
	lo, hi := -1, -1
	maxCount := h.Neg
	if h.Sub > maxCount {
		maxCount = h.Sub
	}
	for i, c := range h.Buckets {
		if c == 0 {
			continue
		}
		if lo < 0 {
			lo = i
		}
		hi = i
		if c > maxCount {
			maxCount = c
		}
	}
	const barWidth = 40
	bar := func(c int64) string {
		n := int(c * barWidth / maxCount)
		if c > 0 && n == 0 {
			n = 1
		}
		return strings.Repeat("#", n)
	}
	row := func(label string, c int64) {
		fmt.Fprintf(&b, "  %16s %8d %s\n", label, c, bar(c))
	}
	if h.Neg > 0 {
		row("< 0", h.Neg)
	}
	if h.Sub > 0 || lo == 0 {
		row("[0, 1)", h.Sub)
	}
	for i := lo; i >= 0 && i <= hi; i++ {
		label := fmt.Sprintf("[%.0f, %.0f)", metrics.BucketLo(i), metrics.BucketHi(i))
		if i == metrics.HistBuckets-1 {
			label = fmt.Sprintf("≥ %.0f", metrics.BucketLo(i))
		}
		row(label, h.Buckets[i])
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// MetricsSection renders the standard observability block for a set of
// sweep points: the kernel counter table, and — when any point carries
// trace-derived latencies — the latency table plus histograms of the
// window length, detection latency D, and laxity L pooled across points
// (histogram counts merge exactly; pooling loses no information).
func MetricsSection(w io.Writer, labels []string, pts []metrics.Point) error {
	if _, err := fmt.Fprintf(w, "\nKernel metrics (per-round mean±sd, all µs virtual time)\n\n"); err != nil {
		return err
	}
	if err := KernelMetricsTable(w, "", labels, pts); err != nil {
		return err
	}
	faulted := false
	for i := range pts {
		if pts[i].Faulted() {
			faulted = true
			break
		}
	}
	if faulted {
		// Only faulty campaigns grow the section; fault-free output stays
		// byte-identical to the pre-fault renderer.
		if _, err := fmt.Fprintf(w, "\nInjected faults (per-round mean±sd)\n\n"); err != nil {
			return err
		}
		if err := FaultMetricsTable(w, "", labels, pts); err != nil {
			return err
		}
	}
	traced := false
	for i := range pts {
		if pts[i].Traced() {
			traced = true
			break
		}
	}
	if !traced {
		_, err := fmt.Fprintf(w, "\n(no traced rounds: window/D/L latencies unavailable)\n")
		return err
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	if err := LatencyMetricsTable(w, "", labels, pts); err != nil {
		return err
	}
	var window, d, l metrics.Hist
	for i := range pts {
		window.Merge(pts[i].WindowHist)
		d.Merge(pts[i].DHist)
		l.Merge(pts[i].LHist)
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	if err := RenderHist(w, "vulnerability window (µs, log₂ buckets, pooled)", window); err != nil {
		return err
	}
	if err := RenderHist(w, "detection latency D (µs, log₂ buckets, pooled)", d); err != nil {
		return err
	}
	return RenderHist(w, "laxity L (µs, log₂ buckets, pooled)", l)
}
