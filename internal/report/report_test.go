package report

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tbl := &Table{
		Title:   "Table 1",
		Headers: []string{"metric", "average", "stdev"},
	}
	tbl.AddRow("L (µs)", "61.6", "3.78")
	tbl.AddRow("D (µs)", "41.1", "2.73")
	var buf bytes.Buffer
	if err := tbl.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Table 1", "metric", "61.6", "2.73", "---"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Errorf("lines = %d, want 5", len(lines))
	}
}

func TestTableColumnsAligned(t *testing.T) {
	tbl := &Table{Headers: []string{"a", "bbbbbb"}}
	tbl.AddRow("xxxxxxxxxx", "y")
	var buf bytes.Buffer
	if err := tbl.Render(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	// The second column must start at the same offset in each line.
	idx := strings.Index(lines[0], "bbbbbb")
	if strings.Index(lines[2], "y") != idx {
		t.Errorf("columns misaligned:\n%s", buf.String())
	}
}

func TestTableCSV(t *testing.T) {
	tbl := &Table{Headers: []string{"name", "value"}}
	tbl.AddRow("plain", "1")
	tbl.AddRow("with,comma", `has "quotes"`)
	var buf bytes.Buffer
	if err := tbl.CSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `"with,comma"`) {
		t.Errorf("comma cell not quoted: %s", out)
	}
	if !strings.Contains(out, `"has ""quotes"""`) {
		t.Errorf("quote cell not escaped: %s", out)
	}
	if !strings.HasPrefix(out, "name,value\n") {
		t.Errorf("header wrong: %s", out)
	}
}

func TestChartRender(t *testing.T) {
	c := &Chart{
		Title: "success rate", XLabel: "KB", YLabel: "%",
		Xs: []float64{100, 200, 300},
		Series: []Series{
			{Name: "measured", Ys: []float64{2, 8, 18}},
			{Name: "model", Ys: []float64{1.8, 7, 16}},
		},
	}
	var buf bytes.Buffer
	if err := c.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"success rate", "*=measured", "o=model", "100", "300"} {
		if !strings.Contains(out, want) {
			t.Errorf("chart missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Error("chart missing data marks")
	}
}

func TestChartEmpty(t *testing.T) {
	c := &Chart{Title: "empty"}
	var buf bytes.Buffer
	if err := c.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "no data") {
		t.Errorf("empty chart output: %q", buf.String())
	}
}

func TestChartHandlesNaN(t *testing.T) {
	c := &Chart{
		Xs:     []float64{1, 2},
		Series: []Series{{Name: "s", Ys: []float64{math.NaN(), 5}}},
	}
	var buf bytes.Buffer
	if err := c.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "*") {
		t.Error("valid point must still render")
	}
}

func TestChartAnchorsAtZero(t *testing.T) {
	c := &Chart{
		Xs:     []float64{1, 2},
		Series: []Series{{Name: "s", Ys: []float64{50, 60}}},
	}
	var buf bytes.Buffer
	if err := c.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "0.0 |") {
		t.Errorf("y axis must include zero:\n%s", buf.String())
	}
}

func TestBarChartRender(t *testing.T) {
	bc := &BarChart{
		Title: "Fig 11", Unit: "µs",
		Bars: []Bar{
			{Label: "500KB sequential", Segments: []Segment{
				{Name: "stat", Start: 0, End: 5},
				{Name: "unlink", Start: 9, End: 496},
				{Name: "symlink", Start: 496, End: 505},
			}},
			{Label: "500KB parallel", Segments: []Segment{
				{Name: "stat", Start: 0, End: 5},
				{Name: "unlink", Start: 9, End: 495},
				{Name: "symlink", Start: 10, End: 14},
			}},
		},
	}
	var buf bytes.Buffer
	if err := bc.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Fig 11", "sequential", "parallel", "unlink", "scale: 0 .. 505 µs"} {
		if !strings.Contains(out, want) {
			t.Errorf("bar chart missing %q:\n%s", want, out)
		}
	}
}

func TestBarChartEmptyScale(t *testing.T) {
	bc := &BarChart{Bars: []Bar{{Label: "x"}}}
	var buf bytes.Buffer
	if err := bc.Render(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestTableRowWiderThanHeaders(t *testing.T) {
	tbl := &Table{Headers: []string{"only"}}
	tbl.AddRow("a", "b", "c")
	var buf bytes.Buffer
	if err := tbl.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "c") {
		t.Errorf("extra cells must render: %q", buf.String())
	}
	buf.Reset()
	if err := tbl.CSV(&buf); err != nil {
		t.Fatal(err)
	}
}
