// Package report renders experiment results as the paper presents them:
// plain-text tables (Tables 1 and 2), series charts over a swept parameter
// (Figures 6 and 7), grouped horizontal bars (Figure 11), and CSV for
// external plotting.
package report

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Table is a simple left-aligned text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render writes the table to w. Rows wider than the header row get
// unpadded trailing columns rather than panicking.
func (t *Table) Render(w io.Writer) error {
	cols := len(t.Headers)
	for _, row := range t.Rows {
		if len(row) > cols {
			cols = len(row)
		}
	}
	widths := make([]int, cols)
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// CSV writes headers and rows as comma-separated values.
func (t *Table) CSV(w io.Writer) error {
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	write := func(cells []string) error {
		out := make([]string, len(cells))
		for i, c := range cells {
			out[i] = esc(c)
		}
		_, err := fmt.Fprintln(w, strings.Join(out, ","))
		return err
	}
	if err := write(t.Headers); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := write(row); err != nil {
			return err
		}
	}
	return nil
}

// Series is one named line of (x, y) points sharing the X values of the
// chart it belongs to.
type Series struct {
	Name string
	Ys   []float64
}

// Chart renders one or more series over shared X values as a text chart,
// in the spirit of the paper's Figures 6 and 7.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	Xs     []float64
	Series []Series
	// Height is the number of chart rows (default 16).
	Height int
}

// Render draws the chart to w with one column per X value.
func (c *Chart) Render(w io.Writer) error {
	if len(c.Xs) == 0 || len(c.Series) == 0 {
		_, err := fmt.Fprintln(w, c.Title+" (no data)")
		return err
	}
	height := c.Height
	if height <= 0 {
		height = 16
	}
	ymin, ymax := math.Inf(1), math.Inf(-1)
	for _, s := range c.Series {
		for _, y := range s.Ys {
			if math.IsNaN(y) {
				continue
			}
			ymin = math.Min(ymin, y)
			ymax = math.Max(ymax, y)
		}
	}
	if math.IsInf(ymin, 1) {
		ymin, ymax = 0, 1
	}
	if ymin > 0 {
		ymin = 0 // anchor at zero like the paper's figures
	}
	if ymax == ymin {
		ymax = ymin + 1
	}

	marks := []byte{'*', 'o', '+', 'x', '#'}
	colw := 6
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", len(c.Xs)*colw))
	}
	for si, s := range c.Series {
		mark := marks[si%len(marks)]
		for xi, y := range s.Ys {
			if math.IsNaN(y) {
				continue
			}
			row := int(float64(height-1) * (y - ymin) / (ymax - ymin))
			if row < 0 {
				row = 0
			}
			if row > height-1 {
				row = height - 1
			}
			col := xi*colw + colw/2
			grid[height-1-row][col] = mark
		}
	}

	var b strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&b, "%s\n", c.Title)
	}
	legend := make([]string, len(c.Series))
	for i, s := range c.Series {
		legend[i] = fmt.Sprintf("%c=%s", marks[i%len(marks)], s.Name)
	}
	fmt.Fprintf(&b, "%s vs %s   [%s]\n", c.YLabel, c.XLabel, strings.Join(legend, " "))
	for r, line := range grid {
		yTop := ymax - (ymax-ymin)*float64(r)/float64(height-1)
		fmt.Fprintf(&b, "%10.1f |%s\n", yTop, string(line))
	}
	fmt.Fprintf(&b, "%10s +%s\n", "", strings.Repeat("-", len(c.Xs)*colw))
	var xrow strings.Builder
	for _, x := range c.Xs {
		xrow.WriteString(fmt.Sprintf("%*.0f", colw, x))
	}
	fmt.Fprintf(&b, "%10s  %s\n", "", xrow.String())
	_, err := io.WriteString(w, b.String())
	return err
}

// Bar is one labeled horizontal bar made of consecutive segments.
type Bar struct {
	Label    string
	Segments []Segment
}

// Segment is a named interval within a bar.
type Segment struct {
	Name  string
	Start float64
	End   float64
}

// BarChart renders horizontal bars with proportional segment placement —
// the shape of the paper's Figure 11.
type BarChart struct {
	Title string
	Unit  string
	Bars  []Bar
	Width int
}

// Render draws the bars to w.
func (bc *BarChart) Render(w io.Writer) error {
	width := bc.Width
	if width <= 0 {
		width = 80
	}
	maxEnd := 0.0
	for _, bar := range bc.Bars {
		for _, s := range bar.Segments {
			if s.End > maxEnd {
				maxEnd = s.End
			}
		}
	}
	if maxEnd == 0 {
		maxEnd = 1
	}
	var b strings.Builder
	if bc.Title != "" {
		fmt.Fprintf(&b, "%s\n", bc.Title)
	}
	fmt.Fprintf(&b, "scale: 0 .. %.0f %s\n", maxEnd, bc.Unit)
	for _, bar := range bc.Bars {
		row := []byte(strings.Repeat(" ", width))
		for _, s := range bar.Segments {
			c0 := int(s.Start / maxEnd * float64(width-1))
			c1 := int(s.End / maxEnd * float64(width-1))
			if c1 <= c0 {
				c1 = c0 + 1
			}
			for i := c0; i < c1 && i < width; i++ {
				row[i] = '='
			}
			for i := 0; i < len(s.Name) && c0+i < c1 && c0+i < width; i++ {
				row[c0+i] = s.Name[i]
			}
		}
		fmt.Fprintf(&b, "%-22s |%s|\n", bar.Label, string(row))
		for _, s := range bar.Segments {
			fmt.Fprintf(&b, "%22s   %-10s %9.1f .. %9.1f %s\n", "", s.Name, s.Start, s.End, bc.Unit)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}
