package report

import "fmt"

// Formatting helpers shared by experiment renderers. All output is plain
// ASCII with fixed precision, so rendered tables are stable across
// platforms and usable as golden files.

// Percent renders a probability as a fixed-precision percentage.
func Percent(p float64) string { return fmt.Sprintf("%.2f%%", p*100) }

// Prob renders a probability with six decimal places — enough to compare
// an exact schedule-space probability against a Monte Carlo estimate
// without drowning the table in digits.
func Prob(p float64) string { return fmt.Sprintf("%.6f", p) }

// Interval renders a confidence interval on a probability.
func Interval(lo, hi float64) string {
	return fmt.Sprintf("[%.4f, %.4f]", lo, hi)
}

// YesNo renders a boolean check ASCII-stably; failures shout.
func YesNo(ok bool) string {
	if ok {
		return "yes"
	}
	return "NO"
}
