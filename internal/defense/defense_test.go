package defense

import (
	"errors"
	"testing"
	"time"

	"tocttou/internal/fs"
	"tocttou/internal/sim"
)

// guardHarness runs two threads (root victim, normal-user attacker)
// against a guarded FS.
func guardHarness(t *testing.T, g *EDGI, victimFn, attackerFn func(*sim.Task, *fs.FS)) *fs.FS {
	t.Helper()
	k := sim.New(sim.Config{CPUs: 2, Quantum: 50 * time.Millisecond, Seed: 3})
	f := fs.New(fs.Config{Latency: fs.DefaultProfile()})
	f.SetGuard(g)
	f.MustMkdirAll("/home/alice", 0o777, 1000, 1000)
	f.MustWriteFile("/home/alice/f", 1024, 0o644, 1000, 1000)
	f.MustMkdirAll("/etc", 0o755, 0, 0)
	f.MustWriteFile("/etc/passwd", 1024, 0o644, 0, 0)
	root := k.NewProcess("victim", 0, 0)
	user := k.NewProcess("attacker", 1000, 1000)
	k.Spawn(root, "victim", func(task *sim.Task) { victimFn(task, f) })
	k.Spawn(user, "attacker", func(task *sim.Task) { attackerFn(task, f) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	return f
}

func TestEnforceDeniesAttackInsideWindow(t *testing.T) {
	g := New(Enforce)
	var unlinkErr error
	guardHarness(t, g,
		func(task *sim.Task, f *fs.FS) {
			// Check: the invariant is established...
			if _, err := f.Stat(task, "/home/alice/f"); err != nil {
				t.Errorf("victim stat: %v", err)
			}
			task.Compute(50 * time.Microsecond) // the window
			// ...use: the window closes.
			if err := f.Chown(task, "/home/alice/f", 1000, 1000); err != nil {
				t.Errorf("victim chown: %v", err)
			}
		},
		func(task *sim.Task, f *fs.FS) {
			task.Compute(10 * time.Microsecond) // inside the window
			unlinkErr = f.Unlink(task, "/home/alice/f")
		})
	if !errors.Is(unlinkErr, fs.EACCES) {
		t.Errorf("attacker unlink err = %v, want EACCES", unlinkErr)
	}
	if g.Violations != 1 || g.Denied != 1 {
		t.Errorf("violations/denied = %d/%d, want 1/1", g.Violations, g.Denied)
	}
}

func TestMonitorCountsButAllows(t *testing.T) {
	g := New(Monitor)
	var unlinkErr error
	guardHarness(t, g,
		func(task *sim.Task, f *fs.FS) {
			_, _ = f.Stat(task, "/home/alice/f")
			task.Compute(50 * time.Microsecond)
			_ = f.Chown(task, "/home/alice/f", 1000, 1000)
		},
		func(task *sim.Task, f *fs.FS) {
			task.Compute(10 * time.Microsecond)
			unlinkErr = f.Unlink(task, "/home/alice/f")
		})
	if unlinkErr != nil {
		t.Errorf("monitor mode must not deny: %v", unlinkErr)
	}
	if g.Violations != 1 || g.Denied != 0 {
		t.Errorf("violations/denied = %d/%d, want 1/0", g.Violations, g.Denied)
	}
}

func TestUseReleasesGuard(t *testing.T) {
	g := New(Enforce)
	var afterErr error
	guardHarness(t, g,
		func(task *sim.Task, f *fs.FS) {
			_, _ = f.Stat(task, "/home/alice/f")
			_ = f.Chown(task, "/home/alice/f", 1000, 1000) // closes the window
		},
		func(task *sim.Task, f *fs.FS) {
			task.Compute(200 * time.Microsecond) // after the window
			afterErr = f.Unlink(task, "/home/alice/f")
		})
	if afterErr != nil {
		t.Errorf("post-window unlink must succeed: %v", afterErr)
	}
}

func TestRenameMovesGuardToNewName(t *testing.T) {
	g := New(Enforce)
	var unlinkErr error
	guardHarness(t, g,
		func(task *sim.Task, f *fs.FS) {
			f.MustWriteFile("/home/alice/.tmp", 64, 0o600, 0, 0)
			if err := f.Rename(task, "/home/alice/.tmp", "/home/alice/f"); err != nil {
				t.Errorf("rename: %v", err)
			}
			task.Compute(50 * time.Microsecond)
			_ = f.Chown(task, "/home/alice/f", 1000, 1000)
		},
		func(task *sim.Task, f *fs.FS) {
			// Wait until the rename syscall (and its After hook, which
			// installs the guard) has completed.
			task.Compute(45 * time.Microsecond)
			unlinkErr = f.Unlink(task, "/home/alice/f")
		})
	if !errors.Is(unlinkErr, fs.EACCES) {
		t.Errorf("unlink of renamed-to name err = %v, want EACCES (gedit's pair)", unlinkErr)
	}
}

func TestNonRootChecksDoNotEstablishGuards(t *testing.T) {
	// The attacker's own stat loop must not let it guard paths against
	// root — that would be a DoS primitive.
	g := New(Enforce)
	guardHarness(t, g,
		func(task *sim.Task, f *fs.FS) {
			task.Compute(20 * time.Microsecond)
		},
		func(task *sim.Task, f *fs.FS) {
			_, _ = f.Stat(task, "/home/alice/f") // attacker "check"
		})
	if g.Established != 0 {
		t.Errorf("established = %d, want 0 (non-root checks ignored)", g.Established)
	}
}

func TestSameProcessMutationAllowed(t *testing.T) {
	g := New(Enforce)
	guardHarness(t, g,
		func(task *sim.Task, f *fs.FS) {
			_, _ = f.Stat(task, "/home/alice/f")
			// The checker itself may modify the binding.
			if err := f.Rename(task, "/home/alice/f", "/home/alice/f2"); err != nil {
				t.Errorf("self rename: %v", err)
			}
		},
		func(task *sim.Task, f *fs.FS) {})
	if g.Denied != 0 {
		t.Errorf("denied = %d, want 0", g.Denied)
	}
}

func TestGuardExpiresAfterTTL(t *testing.T) {
	g := New(Enforce)
	g.ttl = 10 * time.Microsecond
	var unlinkErr error
	guardHarness(t, g,
		func(task *sim.Task, f *fs.FS) {
			_, _ = f.Stat(task, "/home/alice/f")
			task.Compute(5 * time.Millisecond) // never issues the use call promptly
			_ = f.Chown(task, "/home/alice/f", 1000, 1000)
		},
		func(task *sim.Task, f *fs.FS) {
			task.Compute(time.Millisecond) // long after the TTL
			unlinkErr = f.Unlink(task, "/home/alice/f")
		})
	if unlinkErr != nil {
		t.Errorf("expired guard must not deny: %v", unlinkErr)
	}
}

func TestModeString(t *testing.T) {
	if Monitor.String() != "monitor" || Enforce.String() != "enforce" {
		t.Error("mode names wrong")
	}
}

func TestDelayModeSerializesAfterWindow(t *testing.T) {
	g := New(Delay)
	var unlinkErr error
	var unlinkDone, chownDone sim.Time
	guardHarness(t, g,
		func(task *sim.Task, f *fs.FS) {
			_, _ = f.Stat(task, "/home/alice/f")
			task.Compute(60 * time.Microsecond) // the window
			_ = f.Chown(task, "/home/alice/f", 1000, 1000)
			chownDone = task.Now()
		},
		func(task *sim.Task, f *fs.FS) {
			task.Compute(15 * time.Microsecond) // inside the window
			unlinkErr = f.Unlink(task, "/home/alice/f")
			unlinkDone = task.Now()
		})
	if unlinkErr != nil {
		t.Errorf("delay mode must not refuse: %v", unlinkErr)
	}
	if unlinkDone <= chownDone {
		t.Errorf("delayed unlink (%v) must complete after the use (%v)", unlinkDone, chownDone)
	}
	if g.Delayed != 1 || g.Denied != 0 {
		t.Errorf("delayed/denied = %d/%d, want 1/0", g.Delayed, g.Denied)
	}
	if g.DelayedTotal <= 0 {
		t.Error("delay accounting missing")
	}
}

func TestDelayModeRespectsTTL(t *testing.T) {
	g := New(Delay)
	g.ttl = 30 * time.Microsecond
	var unlinkErr error
	var waited sim.Time
	guardHarness(t, g,
		func(task *sim.Task, f *fs.FS) {
			_, _ = f.Stat(task, "/home/alice/f")
			task.Compute(5 * time.Millisecond) // never issues the use promptly
			_ = f.Chown(task, "/home/alice/f", 1000, 1000)
		},
		func(task *sim.Task, f *fs.FS) {
			task.Compute(10 * time.Microsecond)
			start := task.Now()
			unlinkErr = f.Unlink(task, "/home/alice/f")
			waited = sim.Time(task.Now() - start)
		})
	if unlinkErr != nil {
		t.Errorf("unlink after TTL expiry: %v", unlinkErr)
	}
	if time.Duration(waited) > 200*time.Microsecond {
		t.Errorf("delay must be bounded by the TTL, waited %v", time.Duration(waited))
	}
}
